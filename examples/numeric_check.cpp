/**
 * @file
 * Numeric correctness demo: builds a hybrid batch on a paged KV
 * cache and verifies that the three attention algorithms -- naive
 * ground truth, flash-style tiling (the POD prefill device function)
 * and split-KV with log-sum-exp merge (the decode device function) --
 * compute identical outputs, including the chunked-prefill causal
 * semantics the serving scheduler relies on.
 */
#include <cstdio>

#include "attnref/hybrid_ref.h"
#include "common/rng.h"

using namespace pod;
using namespace pod::attnref;

namespace {

void
AppendRandomTokens(PagedKvCache& cache, int seq, int tokens, Rng& rng)
{
    size_t width = static_cast<size_t>(cache.NumKvHeads()) *
                   static_cast<size_t>(cache.HeadDim());
    std::vector<float> k(width);
    std::vector<float> v(width);
    for (int t = 0; t < tokens; ++t) {
        for (size_t i = 0; i < width; ++i) {
            k[i] = static_cast<float>(rng.UniformReal(-1.0, 1.0));
            v[i] = static_cast<float>(rng.UniformReal(-1.0, 1.0));
        }
        cache.AppendToken(seq, k, v);
    }
}

}  // namespace

int
main()
{
    // Llama-3-8B-like head geometry (scaled down head dim for speed).
    kernels::AttnShape shape;
    shape.num_q_heads = 8;
    shape.num_kv_heads = 2;
    shape.head_dim = 64;

    Rng rng(42);
    PagedKvCache cache(/*block_size=*/16, shape.num_kv_heads,
                       shape.head_dim);

    // One prefill request: 384 tokens of context + a 128-token chunk.
    int prefill_seq = cache.AddSequence();
    AppendRandomTokens(cache, prefill_seq, 512, rng);

    // Four decode requests with different context lengths.
    std::vector<int> decode_seqs;
    for (int ctx : {100, 333, 768, 1500}) {
        int seq = cache.AddSequence();
        AppendRandomTokens(cache, seq, ctx, rng);
        decode_seqs.push_back(seq);
    }

    size_t width = static_cast<size_t>(shape.num_q_heads) *
                   static_cast<size_t>(shape.head_dim);
    Matrix prefill_q(128, width);
    prefill_q.FillRandom(rng);
    Matrix decode_q(decode_seqs.size(), width);
    decode_q.FillRandom(rng);

    std::printf("Hybrid batch: 128-token chunk @ 512 context + %zu "
                "decodes on a paged KV cache (block size %d, %d blocks "
                "allocated)\n\n",
                decode_seqs.size(), cache.BlockSize(),
                cache.TotalBlocks());

    HybridRefResult naive = ComputeHybridAttention(
        shape, cache, prefill_q, prefill_seq, decode_q, decode_seqs,
        RefMode::kNaive);
    HybridRefResult flash = ComputeHybridAttention(
        shape, cache, prefill_q, prefill_seq, decode_q, decode_seqs,
        RefMode::kFlash, /*tile_kv=*/64);
    HybridRefResult split = ComputeHybridAttention(
        shape, cache, prefill_q, prefill_seq, decode_q, decode_seqs,
        RefMode::kFlashSplitKv, /*tile_kv=*/64, /*num_splits=*/8);

    double flash_prefill =
        naive.prefill_out.MaxAbsDiff(flash.prefill_out);
    double flash_decode = naive.decode_out.MaxAbsDiff(flash.decode_out);
    double split_prefill =
        naive.prefill_out.MaxAbsDiff(split.prefill_out);
    double split_decode = naive.decode_out.MaxAbsDiff(split.decode_out);

    std::printf("max |diff| vs naive ground truth:\n");
    std::printf("  flash tiled (prefill path):   %.3g / %.3g "
                "(prefill/decode)\n",
                flash_prefill, flash_decode);
    std::printf("  split-KV + merge (decode):    %.3g / %.3g\n",
                split_prefill, split_decode);

    bool ok = flash_prefill < 1e-4 && flash_decode < 1e-4 &&
              split_prefill < 1e-4 && split_decode < 1e-4;
    std::printf("\n%s\n", ok ? "PASS: all three algorithms agree."
                             : "FAIL: algorithms disagree!");
    return ok ? 0 : 1;
}
