/**
 * @file
 * Cluster serving walkthrough: a heterogeneous data-parallel fleet
 * (2x A100 + 1x H100 + 1x RTX A6000) serving one Poisson arrival
 * stream, with requests assigned by a pluggable routing policy.
 *
 * Shows the three cluster-layer concepts end to end:
 *  - replica stepping: each replica is a full ServingEngine (own
 *    scheduler, KV manager, attention memo cache) advanced
 *    iteration-by-iteration by the cluster's discrete-event loop;
 *  - routing: policies see per-replica ReplicaSnapshots (queue depth,
 *    KV pressure, pending decode work) at each request's arrival;
 *  - fleet metrics: per-replica and aggregate TTFT/throughput plus
 *    load-imbalance coefficients.
 */
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "cluster/cluster_engine.h"
#include "common/rng.h"
#include "common/table.h"
#include "serve/trace.h"

int
main(int argc, char** argv)
{
    using namespace pod;
    using namespace pod::cluster;

    int num_requests = argc > 1 ? std::atoi(argv[1]) : 32;

    // ---- fleet composition: mixed GPUs, mixed parallelism ----
    serve::ServingConfig a100;
    a100.model = model::ModelConfig::Llama3_8B();
    a100.tensor_parallel = 2;
    a100.backend = core::Backend::kPod;

    serve::ServingConfig h100 = a100;
    h100.gpu = gpusim::GpuSpec::H100Sxm80GB();

    serve::ServingConfig a6000 = a100;
    a6000.gpu = gpusim::GpuSpec::RtxA6000();
    a6000.tensor_parallel = 1;  // workstation box, no TP partner

    ClusterConfig fleet;
    fleet.replicas = {a100, a100, h100, a6000};

    SchedulerFactory sarathi = [](int) {
        return std::make_unique<serve::SarathiScheduler>(1024);
    };

    // ---- one shared arrival stream, two routing policies ----
    std::printf("Heterogeneous fleet: 2x A100 TP-2, 1x H100 TP-2, "
                "1x RTX A6000 TP-1 (Llama-3-8B, Sarathi+POD)\n");
    std::printf("%d requests, internal-enterprise workload, "
                "2.5 QPS Poisson arrivals\n\n",
                num_requests);

    for (const char* policy : {"round-robin", "least-kv"}) {
        Rng rng(7);
        auto trace = serve::GenerateTrace(
            serve::WorkloadSpec::Internal(), num_requests, 2.5, rng);

        ClusterEngine cluster(fleet, sarathi, MakeRouter(policy));
        ClusterMetricsReport report = cluster.Run(trace);

        std::printf("--- router: %s ---\n", policy);
        Table per_replica({"replica", "gpu", "requests", "req/min",
                           "TTFT P99 (s)", "busy (s)", "KV peak"});
        for (int r = 0; r < report.num_replicas; ++r) {
            const auto& metrics =
                report.per_replica[static_cast<size_t>(r)];
            const auto& util =
                report.utilization[static_cast<size_t>(r)];
            per_replica.AddRow(
                {Table::Int(r),
                 cluster.Replica(r).Config().gpu.name,
                 Table::Int(util.requests_routed),
                 Table::Num(metrics.requests_per_minute, 1),
                 Table::Num(metrics.ttft.Percentile(99), 2),
                 Table::Num(util.busy_time, 1),
                 Table::Pct(util.kv_peak)});
        }
        per_replica.Print(std::cout);
        std::printf("fleet: %.1f req/min, TTFT P50/P99 %.2f/%.2f s, "
                    "TBT P99 %.0f ms, request imbalance CV %.3f, "
                    "token imbalance CV %.3f\n\n",
                    report.fleet.requests_per_minute,
                    report.fleet.ttft.Percentile(50),
                    report.fleet.ttft.Percentile(99),
                    report.fleet.tbt.Percentile(99) * 1e3,
                    report.request_imbalance_cv,
                    report.token_imbalance_cv);
    }

    std::printf("Note how the load-aware policy shifts work toward "
                "the H100 and lightens the A6000,\nflattening the "
                "TTFT tail relative to round-robin.\n");
    return 0;
}
