/**
 * @file
 * Preemption walkthrough: one memory-tight A100 replica under an
 * overload burst, served under the three KV allocation policies
 * (docs/DESIGN.md S2):
 *
 *  - conservative: prompt + maximum output reserved up front; the
 *    queue head-of-line-blocks when the pool is full, so requests
 *    wait but nothing is ever evicted (the pre-redesign default);
 *  - watermark + recompute: vLLM admission on prompt blocks behind a
 *    free-pool watermark; under decode pressure victims are evicted
 *    and later re-run their prefill over prompt + generated tokens;
 *  - watermark + swap: same admission, but victims park their KV in
 *    host memory and pay PCIe transfer time out and back in.
 *
 * The walkthrough prints TTFT/TBT percentiles next to the lifecycle
 * counters the redesign surfaces (preemptions by mode, swap transfer
 * time, requests touched), so the latency cost of each recovery
 * mechanism is directly attributable.
 */
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.h"
#include "serve/engine.h"
#include "serve/scheduler.h"

int
main()
{
    using namespace pod;
    using namespace pod::serve;

    // ---- one overloaded replica: a tiny KV pool ----
    // memory_fraction shrinks the usable HBM so the pool holds only a
    // few thousand KV tokens -- a memory-tight deployment where the
    // admission policy decides everything.
    ServingConfig base;
    base.model = model::ModelConfig::Llama3_8B();
    base.tensor_parallel = 2;
    base.backend = core::Backend::kPod;
    base.memory_fraction = 0.0958;

    std::printf("One A100 replica, Llama-3-8B TP-2, Sarathi+POD "
                "chunk 512.\n");
    std::printf("KV pool shrunk to ~%ld tokens; overload burst: 12 "
                "requests in 0.55 s,\n"
                "prompts 384-640 tokens, outputs 384-672 tokens.\n\n",
                base.KvTokenCapacity());

    // ---- a deterministic overload burst ----
    // Mirrors golden::OverloadTrace() in tests/golden_scenarios.h
    // (examples cannot include tests/); keep the formulas in sync so
    // the walkthrough shows the exact scenario the tests pin.
    std::vector<Request> trace;
    for (int i = 0; i < 12; ++i) {
        Request r;
        r.id = i;
        r.arrival_time = 0.05 * i;
        r.prefill_tokens = 384 + 128 * (i % 3);
        r.decode_tokens = 384 + 96 * (i % 4);
        trace.push_back(r);
    }

    struct PolicyPoint
    {
        const char* label;
        KvPolicy policy;
        PreemptMode mode;
    };
    const PolicyPoint points[] = {
        {"conservative", KvPolicy::kConservative, PreemptMode::kRecompute},
        {"wm-recompute", KvPolicy::kWatermark, PreemptMode::kRecompute},
        {"wm-swap", KvPolicy::kWatermark, PreemptMode::kSwap},
    };

    Table table({"policy", "req/min", "TTFT P50 (s)", "TTFT P99 (s)",
                 "TBT P99 (ms)", "TBT max (ms)", "preempt", "reqs hit",
                 "swap (s)"});
    for (const auto& point : points) {
        ServingConfig config = base;
        config.kv_policy = point.policy;
        config.kv_preempt_mode = point.mode;
        config.kv_watermark = 0.01;

        ServingEngine engine(config,
                             std::make_unique<SarathiScheduler>(512));
        MetricsReport report = engine.Run(trace);
        table.AddRow({point.label,
                      Table::Num(report.requests_per_minute, 1),
                      Table::Num(report.ttft.Percentile(50), 2),
                      Table::Num(report.ttft.Percentile(99), 2),
                      Table::Num(report.tbt.Percentile(99) * 1e3, 1),
                      Table::Num(report.tbt.Max() * 1e3, 1),
                      Table::Int(report.preemptions),
                      Table::Int(report.requests_preempted),
                      Table::Num(report.swap_time_total, 3)});
    }
    table.Print(std::cout);

    std::printf(
        "\nHow to read this:\n"
        " - conservative never preempts: later requests simply wait "
        "for KV,\n   so TTFT grows but decode pacing (TBT) stays "
        "clean.\n"
        " - wm-recompute admits earlier (lower TTFT P50) but evicted "
        "requests\n   re-run their prefill: their next token waits "
        "for a full re-prefill,\n   which lands in the TBT tail.\n"
        " - wm-swap keeps progress but serializes PCIe transfers "
        "into the\n   iteration stream; the swap column is exactly "
        "the transfer time the\n   roofline PCIe model charged.\n"
        "Counters (preempt / reqs hit / swap s) surface in "
        "MetricsReport,\nReplicaSnapshot and ClusterMetricsReport -- "
        "the cluster layer's\npreemption-aware router steers traffic "
        "away from thrashing replicas\nusing the same signals.\n");
    return 0;
}
