/**
 * @file
 * Quickstart: run one hybrid batch through every attention backend
 * and print timing, utilization and energy.
 *
 * This reproduces the paper's headline comparison on a single batch:
 * POD-Attention overlaps the compute-bound prefill with the
 * bandwidth-bound decode on every SM, beating serial execution and
 * all other fusion strategies.
 */
#include <cstdio>
#include <iostream>

#include "core/attention.h"
#include "common/table.h"
#include "common/units.h"
#include "gpusim/gpu_spec.h"

int
main()
{
    using namespace pod;
    using namespace pod::core;

    // Llama-3-8B on 2 A100s (tensor parallel): 16 query heads and
    // 4 KV heads per GPU, head dim 128 (paper Table 4).
    kernels::AttnShape shape;
    shape.num_q_heads = 16;
    shape.num_kv_heads = 4;
    shape.head_dim = 128;

    // Hybrid batch config C1 from paper Table 1: one 12K-token
    // prefill chunk at 12K context plus 220 decodes at 12K context
    // (the "balanced" configuration).
    kernels::HybridBatch batch =
        kernels::HybridBatch::Make(shape, /*chunk_len=*/12288,
                                   /*prefill_kv=*/12288,
                                   /*decode_bs=*/220,
                                   /*decode_ctx=*/12288);

    gpusim::GpuSpec gpu = gpusim::GpuSpec::A100Sxm80GB();
    PodAttention pod(gpu);

    std::printf("Hybrid batch: %s\nGPU: %s\n\n", batch.Describe().c_str(),
                gpu.name.c_str());

    Table table({"backend", "time (ms)", "speedup", "tensor util",
                 "mem util", "energy (J)", "CTAs"});
    double serial_time = 0.0;
    for (Backend backend : AllBackends()) {
        AttnRunResult r = pod.Run(batch, backend);
        if (backend == Backend::kFaSerial) serial_time = r.total_time;
        table.AddRow({BackendName(backend), Table::Num(ToMs(r.total_time), 3),
                      Table::Num(serial_time / r.total_time, 2) + "x",
                      Table::Pct(r.tensor_util), Table::Pct(r.mem_util),
                      Table::Num(r.energy_joules, 3),
                      Table::Int(r.total_ctas)});
    }
    table.Print(std::cout);

    AttnRunResult podr = pod.Run(batch);
    std::printf("\nPOD plan: %d CTAs/SM, prefill tile %dx%d, "
                "%d prefill CTAs (splits=%d), %d decode virtual units "
                "(splits=%d) in %d physical CTAs, policy %d:%d\n",
                podr.pod_plan.ctas_per_sm, podr.pod_plan.prefill_tile.tile_q,
                podr.pod_plan.prefill_tile.tile_kv,
                podr.pod_plan.prefill_ctas, podr.pod_plan.prefill_splits,
                podr.pod_plan.decode_virtual_units,
                podr.pod_plan.decode_splits,
                podr.pod_plan.decode_physical_ctas,
                podr.pod_plan.policy.ratio_a, podr.pod_plan.policy.ratio_b);
    std::printf("Speedup over FA_Serial: %.2fx\n",
                pod.SpeedupOverSerial(batch));
    return 0;
}
