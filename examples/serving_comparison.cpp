/**
 * @file
 * Offline serving comparison: vLLM vs Sarathi vs Sarathi+POD on
 * long-context requests (a scaled-down paper Fig. 12).
 *
 * Demonstrates the serving-level integration of POD-Attention: the
 * same Sarathi-Serve scheduler, with attention executed either by
 * serial FlashAttention kernels or by the fused POD kernel.
 */
#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.h"
#include "serve/engine.h"
#include "serve/trace.h"

int
main(int argc, char** argv)
{
    using namespace pod;
    using namespace pod::serve;

    int num_requests = argc > 1 ? std::atoi(argv[1]) : 48;

    // Llama-3-8B on 2 A100s, 16K-token prompts, 1K outputs, chunk 1K
    // (paper S5.2).
    ServingConfig base;
    base.model = model::ModelConfig::Llama3_8B();
    base.tensor_parallel = 2;

    std::vector<Request> trace = UniformTrace(num_requests, 16384, 1024);

    struct SystemDef
    {
        const char* name;
        core::Backend backend;
        bool vllm_sched;
    };
    const SystemDef systems[] = {
        {"vLLM (original)", core::Backend::kFaSerial, true},
        {"Sarathi", core::Backend::kFaSerial, false},
        {"Sarathi+POD", core::Backend::kPod, false},
    };

    Table table({"system", "req/min", "makespan (s)", "iterations",
                 "P99 TBT (ms)", "stalls>200ms"});
    for (const auto& sys : systems) {
        ServingConfig config = base;
        config.backend = sys.backend;
        std::unique_ptr<Scheduler> sched;
        if (sys.vllm_sched) {
            sched = std::make_unique<VllmScheduler>();
        } else {
            sched = std::make_unique<SarathiScheduler>(1024);
        }
        ServingEngine engine(config, std::move(sched));
        MetricsReport report = engine.Run(trace);
        table.AddRow({sys.name, Table::Num(report.requests_per_minute, 1),
                      Table::Num(report.makespan, 1),
                      Table::Int(report.iterations),
                      Table::Num(report.tbt.Percentile(99) * 1e3, 1),
                      Table::Pct(report.frac_stalled_200ms)});
    }
    std::printf("Offline serving, Llama-3-8B TP-2, %d requests "
                "(16K prefill + 1K decode each):\n\n",
                num_requests);
    table.Print(std::cout);
    return 0;
}
