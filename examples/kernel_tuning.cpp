/**
 * @file
 * Kernel-tuning walkthrough: explores POD-Attention's configuration
 * space on one hybrid batch -- CTAs/SM, scheduling policy and prefill
 * split policy -- and shows how each mechanism contributes to the
 * speedup over serial execution (an interactive version of the
 * paper's S4.2 and sensitivity studies).
 */
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/attention.h"

using namespace pod;
using namespace pod::core;

namespace {

double
RunVariant(const kernels::HybridBatch& batch, const gpusim::GpuSpec& gpu,
           CtasPerSm ctas, SchedPolicy policy, SplitPolicy splits)
{
    AttnRunOptions options;
    options.pod.ctas_per_sm = ctas;
    options.pod.policy = policy;
    options.pod.split_policy = splits;
    return RunAttention(Backend::kPod, batch, gpu, options).total_time;
}

}  // namespace

int
main(int argc, char** argv)
{
    // Configurable batch: chunk, prefill ctx, decode bs, decode ctx.
    int chunk = argc > 1 ? std::atoi(argv[1]) : 2048;
    int prefill_ctx = argc > 2 ? std::atoi(argv[2]) : 16384;
    int decode_bs = argc > 3 ? std::atoi(argv[3]) : 64;
    int decode_ctx = argc > 4 ? std::atoi(argv[4]) : 16384;

    kernels::AttnShape shape;  // Llama-3-8B under TP-2
    shape.num_q_heads = 16;
    shape.num_kv_heads = 4;
    shape.head_dim = 128;
    auto batch = kernels::HybridBatch::Make(shape, chunk, prefill_ctx,
                                            decode_bs, decode_ctx);
    gpusim::GpuSpec gpu = gpusim::GpuSpec::A100Sxm80GB();

    std::printf("Tuning POD-Attention on: %s\n\n",
                batch.Describe().c_str());
    double serial =
        RunAttention(Backend::kFaSerial, batch, gpu).total_time;
    std::printf("FA_Serial reference: %s\n\n",
                FormatTime(serial).c_str());

    Table t({"CTAs/SM", "policy", "prefill splits", "time", "speedup"});
    for (CtasPerSm ctas : {CtasPerSm::kTwo, CtasPerSm::kFour}) {
        for (SchedPolicy policy :
             {SchedPolicy::kProportional, SchedPolicy::kFiftyFifty}) {
            for (SplitPolicy splits :
                 {SplitPolicy::kLimited, SplitPolicy::kVanilla}) {
                double time =
                    RunVariant(batch, gpu, ctas, policy, splits);
                t.AddRow({ctas == CtasPerSm::kTwo ? "2" : "4",
                          SchedPolicyName(policy),
                          SplitPolicyName(splits), FormatTime(time),
                          Table::Num(serial / time, 2) + "x"});
            }
        }
    }
    t.Print(std::cout);

    AttnRunResult best = RunAttention(Backend::kPod, batch, gpu);
    std::printf("\nAuto-tuned: %d CTAs/SM, %d:%d tickets, %d prefill "
                "splits -> %s (%.2fx over serial)\n",
                best.pod_plan.ctas_per_sm, best.pod_plan.policy.ratio_a,
                best.pod_plan.policy.ratio_b,
                best.pod_plan.prefill_splits,
                FormatTime(best.total_time).c_str(),
                serial / best.total_time);
    return 0;
}
