/**
 * @file
 * Unit tests for model configs and the iteration cost model.
 */
#include "model/iteration_cost.h"
#include "model/model_config.h"

#include <gtest/gtest.h>

namespace pod::model {
namespace {

TEST(ModelConfigTest, Presets)
{
    ModelConfig yi = ModelConfig::Yi6B();
    EXPECT_EQ(yi.num_kv_heads, 4);
    ModelConfig l2 = ModelConfig::Llama2_7B();
    EXPECT_EQ(l2.num_kv_heads, 32);  // MHA
    ModelConfig l3 = ModelConfig::Llama3_8B();
    EXPECT_EQ(l3.num_kv_heads, 8);
    // All paper models have 32 query heads and 32 layers (Table 4).
    for (const auto& m : {yi, l2, l3}) {
        EXPECT_EQ(m.num_q_heads, 32);
        EXPECT_EQ(m.num_layers, 32);
        EXPECT_EQ(m.head_dim, 128);
    }
}

TEST(ModelConfigTest, ShapePerGpu)
{
    ModelConfig l3 = ModelConfig::Llama3_8B();
    kernels::AttnShape tp1 = l3.ShapePerGpu(1);
    EXPECT_EQ(tp1.num_q_heads, 32);
    EXPECT_EQ(tp1.num_kv_heads, 8);
    kernels::AttnShape tp2 = l3.ShapePerGpu(2);
    EXPECT_EQ(tp2.num_q_heads, 16);
    EXPECT_EQ(tp2.num_kv_heads, 4);
}

TEST(ModelConfigTest, WeightBytesBallpark)
{
    // Llama-3-8B is ~8B params -> ~16 GB FP16.
    double total = ModelConfig::Llama3_8B().WeightBytesPerGpu(1);
    EXPECT_GT(total, 13e9);
    EXPECT_LT(total, 19e9);
    // TP-2 halves it.
    double half = ModelConfig::Llama3_8B().WeightBytesPerGpu(2);
    EXPECT_NEAR(half, total / 2.0, total * 0.01);
}

TEST(ModelConfigTest, KvBytesPerToken)
{
    // Llama-3-8B TP-1: 2 (K,V) x 2 B x 8 heads x 128 x 32 layers.
    double bytes = ModelConfig::Llama3_8B().KvBytesPerTokenPerGpu(1);
    EXPECT_DOUBLE_EQ(bytes, 2.0 * 2.0 * 8.0 * 128.0 * 32.0);
    double tp2 = ModelConfig::Llama3_8B().KvBytesPerTokenPerGpu(2);
    EXPECT_DOUBLE_EQ(tp2, bytes / 2.0);
}

TEST(ModelConfigDeathTest, RejectsBadTp)
{
    EXPECT_EXIT(ModelConfig::Llama3_8B().Validate(5),
                ::testing::ExitedWithCode(1), "FATAL");
}

TEST(LinearCostsTest, ZeroTokensFree)
{
    LinearCosts costs = ComputeLinearCosts(
        ModelConfig::Llama3_8B(), gpusim::GpuSpec::A100Sxm80GB(), 1, 0);
    EXPECT_DOUBLE_EQ(costs.qkv_proj, 0.0);
    EXPECT_DOUBLE_EQ(costs.ffn, 0.0);
}

TEST(LinearCostsTest, WeightBoundAtSmallBatch)
{
    // At 1 token, GEMMs are weight-read bound: doubling tokens
    // barely changes the time.
    ModelConfig model = ModelConfig::Llama3_8B();
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    LinearCosts one = ComputeLinearCosts(model, spec, 1, 1);
    LinearCosts two = ComputeLinearCosts(model, spec, 1, 2);
    EXPECT_LT(two.ffn, one.ffn * 1.05);
    // At large batch, compute bound: doubling tokens doubles time.
    LinearCosts big = ComputeLinearCosts(model, spec, 1, 4096);
    LinearCosts bigger = ComputeLinearCosts(model, spec, 1, 8192);
    EXPECT_NEAR(bigger.ffn / big.ffn, 2.0, 0.1);
}

TEST(LinearCostsTest, HybridBatchingAmortizesWeights)
{
    // The motivation for hybrid batching (paper S2.1): one batch of
    // prefill+decode tokens reads weights once; separate batches read
    // them twice.
    ModelConfig model = ModelConfig::Llama3_8B();
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    LinearCosts hybrid = ComputeLinearCosts(model, spec, 1, 512 + 64);
    LinearCosts prefill = ComputeLinearCosts(model, spec, 1, 512);
    LinearCosts decode = ComputeLinearCosts(model, spec, 1, 64);
    EXPECT_LT(hybrid.ffn, prefill.ffn + decode.ffn);
}

TEST(LinearCostsTest, TpAddsCommButSplitsCompute)
{
    ModelConfig model = ModelConfig::Llama3_8B();
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    LinearCosts tp1 = ComputeLinearCosts(model, spec, 1, 4096);
    LinearCosts tp2 = ComputeLinearCosts(model, spec, 2, 4096);
    EXPECT_DOUBLE_EQ(tp1.allreduce, 0.0);
    EXPECT_GT(tp2.allreduce, 0.0);
    EXPECT_LT(tp2.ffn, tp1.ffn);
}

TEST(IterationCostTest, BreakdownSumsToTotal)
{
    IterationCostModel cost(ModelConfig::Llama3_8B(),
                            gpusim::GpuSpec::A100Sxm80GB(), 2,
                            core::Backend::kFaSerial);
    auto batch = kernels::HybridBatch::Make(
        ModelConfig::Llama3_8B().ShapePerGpu(2), 1024, 16384, 60, 16384);
    IterationBreakdown b = cost.Cost(batch, 61);
    double sum = b.pre_proj + b.post_proj + b.ffn + b.comm + b.others +
                 b.attn_total;
    EXPECT_NEAR(b.total, sum, 1e-12);
    EXPECT_GT(b.total, 0.0);
    EXPECT_GT(b.attn_total, 0.0);
    // Serial backend splits attention into prefill + decode parts.
    EXPECT_NEAR(b.prefill_attn + b.decode_attn, b.attn_total,
                b.attn_total * 0.05);
}

TEST(IterationCostTest, AttentionDominatesAtLongContext)
{
    // Fig. 4: at 16K context, attention is the majority of the
    // iteration; at 1K it is a small fraction.
    IterationCostModel cost(ModelConfig::Llama3_8B(),
                            gpusim::GpuSpec::A100Sxm80GB(), 2,
                            core::Backend::kFaSerial);
    auto shape = ModelConfig::Llama3_8B().ShapePerGpu(2);

    auto long_batch = kernels::HybridBatch::Make(shape, 1024, 16384, 60,
                                                 16384);
    IterationBreakdown long_b = cost.Cost(long_batch, 61);
    EXPECT_GT(long_b.attn_total / long_b.total, 0.45);

    auto short_batch =
        kernels::HybridBatch::Make(shape, 1024, 1024, 60, 1024);
    IterationBreakdown short_b = cost.Cost(short_batch, 61);
    EXPECT_LT(short_b.attn_total / short_b.total, 0.35);
}

TEST(IterationCostTest, PodBackendFasterAtLongContext)
{
    auto shape = ModelConfig::Llama3_8B().ShapePerGpu(2);
    auto batch =
        kernels::HybridBatch::Make(shape, 2048, 16384, 48, 16384);
    IterationCostModel serial(ModelConfig::Llama3_8B(),
                              gpusim::GpuSpec::A100Sxm80GB(), 2,
                              core::Backend::kFaSerial);
    IterationCostModel pod(ModelConfig::Llama3_8B(),
                           gpusim::GpuSpec::A100Sxm80GB(), 2,
                           core::Backend::kPod);
    EXPECT_LT(pod.Cost(batch, 49).total, serial.Cost(batch, 49).total);
}

TEST(IterationCostTest, EmptyBatchIsFree)
{
    IterationCostModel cost(ModelConfig::Yi6B(),
                            gpusim::GpuSpec::A100Sxm80GB(), 1,
                            core::Backend::kFaSerial);
    kernels::HybridBatch batch;
    batch.shape = ModelConfig::Yi6B().ShapePerGpu(1);
    IterationBreakdown b = cost.Cost(batch, 0);
    EXPECT_DOUBLE_EQ(b.total, 0.0);
}

}  // namespace
}  // namespace pod::model
