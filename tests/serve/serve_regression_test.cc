/**
 * @file
 * Bit-identical regression pin for the serving engine.
 *
 * Runs the fixed 32-request trace from tests/golden_scenarios.h under
 * both schedulers and compares the MetricsReport against exact golden
 * doubles captured from the pre-refactor engine (PR 3). The
 * incremental-accounting refactor (running counters, finished-prefix
 * index) must not change a single scheduling or timing decision.
 *
 * The KvAllocator redesign (PR 5) routes these runs through
 * ConservativeKvAllocator — the default policy — which must
 * reproduce the same goldens: the lifecycle API is
 * behaviour-preserving until the watermark policy is opted into.
 * ConservativePolicyIsDefaultAndGolden pins that explicitly.
 *
 * Since PR 8 the exact goldens pin the EngineCore::kExactOracle sim
 * core; the default analytic core is compared against the oracle run
 * within tolerance bands (AnalyticMatchesOracleWithinBands, bands
 * justified inline and in docs/DESIGN.md S3.2).
 */
#include "serve/engine.h"

#include <gtest/gtest.h>
#include <memory>

#include "../golden_scenarios.h"
#include "serve/scheduler.h"

namespace pod::serve {
namespace {

TEST(ServeRegressionTest, SarathiPodRunIsBitIdenticalToGolden)
{
    ServingConfig config;
    config.backend = core::Backend::kPod;
    config.attn_options.sim.core = gpusim::EngineCore::kExactOracle;
    ServingEngine engine(config, std::make_unique<SarathiScheduler>(512));
    MetricsReport m = engine.Run(golden::ServeTrace());

    EXPECT_EQ(m.num_requests, 32);
    EXPECT_EQ(m.iterations, 469l);
    EXPECT_EQ(m.makespan, 0x1.b4d5596d5db95p+3);  // 13.651043618779832
    EXPECT_EQ(m.requests_per_minute, 0x1.194c13a214841p+7);
    EXPECT_EQ(m.ttft.Percentile(50), 0x1.c1a3eba14db6ep+0);
    EXPECT_EQ(m.ttft.Percentile(99), 0x1.e6b668ac4df2p+1);
    EXPECT_EQ(m.ttft.Max(), 0x1.ed92b4aa71ccp+1);
    EXPECT_EQ(m.tbt.Percentile(50), 0x1.3e23fc3befap-5);
    EXPECT_EQ(m.tbt.Percentile(99), 0x1.b8cb296ddd7p-5);
    EXPECT_EQ(m.tbt.Max(), 0x1.c6d866c51f28p-5);
    EXPECT_EQ(m.latency.Mean(), 0x1.577aa6d3c7625p+2);
    EXPECT_EQ(m.latency.Max(), 0x1.2bada618b8f32p+3);
    EXPECT_EQ(m.frac_stalled_200ms, 0x0p+0);
    EXPECT_EQ(m.frac_stalled_500ms, 0x0p+0);
    EXPECT_EQ(m.mean_batch_tokens, 0x1.3c8f02baad93fp+8);
    EXPECT_EQ(engine.TotalBatchTokens(), 0x1.21f9p+17);  // 148466
    EXPECT_EQ(engine.AttnCacheSize(), 114u);
}

TEST(ServeRegressionTest, VllmFaSerialRunIsBitIdenticalToGolden)
{
    ServingConfig config;
    config.backend = core::Backend::kFaSerial;
    config.attn_options.sim.core = gpusim::EngineCore::kExactOracle;
    ServingEngine engine(config, std::make_unique<VllmScheduler>());
    MetricsReport m = engine.Run(golden::ServeTrace());

    EXPECT_EQ(m.num_requests, 32);
    EXPECT_EQ(m.iterations, 224l);
    EXPECT_EQ(m.makespan, 0x1.d280c7aa72c56p+3);  // 14.578220208079227
    EXPECT_EQ(m.requests_per_minute, 0x1.0768198c97f6dp+7);
    EXPECT_EQ(m.ttft.Percentile(50), 0x1.e544ee0a97a18p+0);
    EXPECT_EQ(m.ttft.Percentile(99), 0x1.b86384f9f9c26p+1);
    EXPECT_EQ(m.ttft.Max(), 0x1.bbaace838ca18p+1);
    EXPECT_EQ(m.tbt.Percentile(50), 0x1.2f64642db64p-6);
    EXPECT_EQ(m.tbt.Percentile(99), 0x1.6282a563df4p-6);
    EXPECT_EQ(m.tbt.Max(), 0x1.4799a353d6ccdp+3);
    EXPECT_EQ(m.latency.Mean(), 0x1.2190e1748d47cp+3);
    EXPECT_EQ(m.latency.Max(), 0x1.a680c7aa72c56p+3);
    EXPECT_EQ(m.frac_stalled_200ms, 0x1.ep-1);  // 0.9375
    EXPECT_EQ(m.frac_stalled_500ms, 0x1.ep-1);
    EXPECT_EQ(m.mean_batch_tokens, 0x1.4b65b6db6db6ep+9);
}

TEST(ServeRegressionTest, ConservativePolicyIsDefaultAndGolden)
{
    // The default config must select the conservative allocator...
    ServingConfig config;
    EXPECT_EQ(config.kv_policy, KvPolicy::kConservative);

    // ...and an explicitly-conservative run must reproduce the PR-3
    // goldens with zero lifecycle activity: same makespan and
    // iteration count as SarathiPodRunIsBitIdenticalToGolden.
    config.backend = core::Backend::kPod;
    config.kv_policy = KvPolicy::kConservative;
    config.attn_options.sim.core = gpusim::EngineCore::kExactOracle;
    ServingEngine engine(config, std::make_unique<SarathiScheduler>(512));
    MetricsReport m = engine.Run(golden::ServeTrace());

    EXPECT_EQ(m.iterations, 469l);
    EXPECT_EQ(m.makespan, 0x1.b4d5596d5db95p+3);  // 13.651043618779832
    EXPECT_EQ(m.ttft.Percentile(99), 0x1.e6b668ac4df2p+1);
    EXPECT_EQ(m.tbt.Max(), 0x1.c6d866c51f28p-5);
    EXPECT_EQ(m.preemptions, 0l);
    EXPECT_EQ(m.preemptions_recompute, 0l);
    EXPECT_EQ(m.preemptions_swap, 0l);
    EXPECT_EQ(m.requests_preempted, 0);
    EXPECT_EQ(m.swap_time_total, 0.0);
    EXPECT_EQ(engine.Allocator().Name(), "conservative");
}

/**
 * The default analytic sim core against the oracle, at the serving
 * layer. Discrete serving behaviour (iteration count, scheduling,
 * stall fractions, attention-cache shape) must be identical: the two
 * cores share every discrete decision, and per-iteration time
 * differences far below the scheduler's decision thresholds must not
 * flip a scheduling step on this trace. Continuous timing metrics
 * carry tolerance bands:
 *
 *  - Band 1e-3 relative on makespan/latency/TTFT/TBT means and
 *    medians. The analytic core freezes each paced unit's average
 *    drain rate between per-SM recomputes, which perturbs a single
 *    attention-kernel time by <= ~2e-4 relative on serving-shaped
 *    (dense-event) kernels; serving metrics are sums/quantiles of
 *    hundreds of such iteration times plus exactly-equal queueing
 *    delays, so the relative error does not grow. Measured drift on
 *    this trace is <= ~2e-4 on means/medians; the band carries ~5x
 *    headroom.
 *  - Band 5e-3 relative on Max() latency fields: the max is a single
 *    order statistic, so per-iteration drift does not average out
 *    and one boundary-crossing iteration moves it wholesale
 *    (measured ~1e-3 on ttft.Max here; the cluster suite uses the
 *    same wider band for tbt.Max).
 */
TEST(ServeRegressionTest, AnalyticMatchesOracleWithinBands)
{
    auto run = [](gpusim::EngineCore sim_core) {
        ServingConfig config;
        config.backend = core::Backend::kPod;
        config.attn_options.sim.core = sim_core;
        ServingEngine engine(config,
                             std::make_unique<SarathiScheduler>(512));
        return engine.Run(golden::ServeTrace());
    };
    MetricsReport a = run(gpusim::EngineCore::kAnalytic);
    MetricsReport o = run(gpusim::EngineCore::kExactOracle);

    EXPECT_EQ(a.num_requests, o.num_requests);
    EXPECT_EQ(a.iterations, o.iterations);

    // Sim-core counter plumbing: the analytic replica must run purely
    // heap-driven; the oracle replica must report only oracle events.
    EXPECT_GT(a.sim_fastpath_events, 0);
    EXPECT_EQ(a.sim_fallback_events, 0);
    EXPECT_EQ(o.sim_fastpath_events, 0);
    EXPECT_GT(o.sim_fallback_events, 0);
    EXPECT_EQ(a.frac_stalled_200ms, o.frac_stalled_200ms);
    EXPECT_EQ(a.frac_stalled_500ms, o.frac_stalled_500ms);
    EXPECT_EQ(a.mean_batch_tokens, o.mean_batch_tokens);

    constexpr double kBand = 1e-3;
    constexpr double kMaxBand = 5e-3;  // Max(): single order statistic
    EXPECT_NEAR(a.makespan, o.makespan, o.makespan * kBand);
    EXPECT_NEAR(a.requests_per_minute, o.requests_per_minute,
                o.requests_per_minute * kBand);
    EXPECT_NEAR(a.ttft.Percentile(50), o.ttft.Percentile(50),
                o.ttft.Percentile(50) * kBand);
    EXPECT_NEAR(a.ttft.Max(), o.ttft.Max(), o.ttft.Max() * kMaxBand);
    EXPECT_NEAR(a.tbt.Percentile(50), o.tbt.Percentile(50),
                o.tbt.Percentile(50) * kBand);
    EXPECT_NEAR(a.tbt.Max(), o.tbt.Max(), o.tbt.Max() * kMaxBand);
    EXPECT_NEAR(a.latency.Mean(), o.latency.Mean(),
                o.latency.Mean() * kBand);
    EXPECT_NEAR(a.latency.Max(), o.latency.Max(),
                o.latency.Max() * kMaxBand);
}

}  // namespace
}  // namespace pod::serve
