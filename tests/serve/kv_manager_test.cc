/**
 * @file
 * Direct unit tests for the raw KV block ledger, including the edge
 * cases hardened while the allocator interface was split out of it:
 * negative token counts (CeilDiv would silently round them to a
 * zero-block reservation), long-overflowing pool capacities,
 * double-free, and zero-capacity pools.
 */
#include "serve/kv_manager.h"

#include <gtest/gtest.h>

#include <climits>
#include <limits>

namespace pod::serve {
namespace {

TEST(BlockKvManagerTest, ReserveAndFree)
{
    BlockKvManager kv(10, 16);
    EXPECT_EQ(kv.BlocksFor(1), 1);
    EXPECT_EQ(kv.BlocksFor(16), 1);
    EXPECT_EQ(kv.BlocksFor(17), 2);
    EXPECT_TRUE(kv.Reserve(1, 100));  // 7 blocks
    EXPECT_EQ(kv.UsedBlocks(), 7);
    EXPECT_FALSE(kv.CanReserve(64));  // needs 4, only 3 free
    EXPECT_TRUE(kv.Reserve(2, 48));   // exactly 3 blocks
    EXPECT_EQ(kv.FreeBlocks(), 0);
    EXPECT_EQ(kv.Free(1), 7);
    EXPECT_EQ(kv.UsedBlocks(), 3);
    EXPECT_NEAR(kv.Utilization(), 0.3, 1e-12);
}

TEST(BlockKvManagerTest, BlocksForBoundaries)
{
    BlockKvManager kv(10, 16);
    EXPECT_EQ(kv.BlocksFor(0), 0);
    // INT_MAX tokens must not overflow the long block count.
    BlockKvManager one_token_blocks(10, 1);
    EXPECT_EQ(one_token_blocks.BlocksFor(INT_MAX),
              static_cast<long>(INT_MAX));
}

TEST(BlockKvManagerTest, ZeroTokenReservationIsTracked)
{
    // A zero-token reservation holds zero blocks but still owns an
    // entry: Free() works exactly once, like any other request.
    BlockKvManager kv(10, 16);
    EXPECT_TRUE(kv.Reserve(7, 0));
    EXPECT_EQ(kv.Held(7), 0);
    EXPECT_EQ(kv.UsedBlocks(), 0);
    EXPECT_EQ(kv.Free(7), 0);
}

TEST(BlockKvManagerTest, GrowAndHeld)
{
    BlockKvManager kv(10, 16);
    EXPECT_EQ(kv.Held(1), 0);  // no reservation yet
    ASSERT_TRUE(kv.Reserve(1, 32));  // 2 blocks
    EXPECT_EQ(kv.Held(1), 2);
    EXPECT_TRUE(kv.Grow(1, 3));
    EXPECT_EQ(kv.Held(1), 5);
    EXPECT_EQ(kv.UsedBlocks(), 5);
    EXPECT_FALSE(kv.Grow(1, 6));  // only 5 free
    EXPECT_EQ(kv.Held(1), 5);    // failed growth changes nothing
    EXPECT_EQ(kv.Free(1), 5);
}

TEST(BlockKvManagerTest, ReserveBlocksExactFootprint)
{
    BlockKvManager kv(10, 16);
    EXPECT_TRUE(kv.ReserveBlocks(3, 10));
    EXPECT_FALSE(kv.ReserveBlocks(4, 1));  // pool exhausted
    EXPECT_EQ(kv.Free(3), 10);
    EXPECT_TRUE(kv.ReserveBlocks(4, 1));
}

TEST(BlockKvManagerDeathTest, DoubleReserve)
{
    BlockKvManager kv(10, 16);
    ASSERT_TRUE(kv.Reserve(1, 16));
    EXPECT_EXIT(kv.Reserve(1, 16), ::testing::ExitedWithCode(1), "FATAL");
}

TEST(BlockKvManagerDeathTest, DoubleFree)
{
    BlockKvManager kv(10, 16);
    ASSERT_TRUE(kv.Reserve(1, 16));
    kv.Free(1);
    EXPECT_EXIT(kv.Free(1), ::testing::ExitedWithCode(1), "FATAL");
}

TEST(BlockKvManagerDeathTest, FreeWithoutReserve)
{
    BlockKvManager kv(10, 16);
    EXPECT_EXIT(kv.Free(42), ::testing::ExitedWithCode(1), "FATAL");
}

TEST(BlockKvManagerDeathTest, ZeroCapacityPool)
{
    EXPECT_EXIT(BlockKvManager(0, 16), ::testing::ExitedWithCode(1),
                "FATAL");
}

TEST(BlockKvManagerDeathTest, NegativeTokenCount)
{
    BlockKvManager kv(10, 16);
    EXPECT_EXIT(kv.BlocksFor(-1), ::testing::ExitedWithCode(1), "FATAL");
    EXPECT_EXIT(kv.Reserve(1, -32), ::testing::ExitedWithCode(1),
                "FATAL");
}

TEST(BlockKvManagerDeathTest, TokenCapacityOverflow)
{
    // total_blocks * block_size must fit in a long.
    EXPECT_EXIT(
        BlockKvManager(std::numeric_limits<long>::max() / 2, 16),
        ::testing::ExitedWithCode(1), "FATAL");
}

TEST(BlockKvManagerDeathTest, GrowWithoutReservation)
{
    BlockKvManager kv(10, 16);
    EXPECT_EXIT(kv.Grow(5, 1), ::testing::ExitedWithCode(1), "FATAL");
}

// ---- shared account (prefix cache; docs/DESIGN.md S2.6) ----

TEST(BlockKvManagerSharedTest, ReserveAndReleaseShared)
{
    BlockKvManager kv(10, 16);
    EXPECT_TRUE(kv.ReserveShared(4));
    EXPECT_EQ(kv.SharedBlocks(), 4);
    EXPECT_EQ(kv.UsedBlocks(), 4);  // shared counts as used
    EXPECT_FALSE(kv.ReserveShared(7));  // only 6 free
    EXPECT_EQ(kv.SharedBlocks(), 4);    // failed reserve is a no-op
    kv.ReleaseShared(3);
    EXPECT_EQ(kv.SharedBlocks(), 1);
    EXPECT_EQ(kv.FreeBlocks(), 9);
    kv.CheckLedger();
}

TEST(BlockKvManagerSharedTest, TransferRelabelsPrivateAsShared)
{
    BlockKvManager kv(10, 16);
    ASSERT_TRUE(kv.ReserveBlocks(1, 6));
    kv.TransferToShared(1, 4);
    EXPECT_EQ(kv.Held(1), 2);
    EXPECT_EQ(kv.SharedBlocks(), 4);
    EXPECT_EQ(kv.UsedBlocks(), 6);  // a relabel, not an allocation
    kv.CheckLedger();

    // A request fully promoted still owns its (empty) entry: Free()
    // works exactly once and frees its remaining private blocks.
    kv.TransferToShared(1, 2);
    EXPECT_EQ(kv.Held(1), 0);
    EXPECT_EQ(kv.Free(1), 0);
    EXPECT_EQ(kv.SharedBlocks(), 6);
    kv.CheckLedger();
}

TEST(BlockKvManagerSharedTest, ShrinkDropsDuplicatePrivateBlocks)
{
    BlockKvManager kv(10, 16);
    ASSERT_TRUE(kv.ReserveBlocks(1, 6));
    kv.Shrink(1, 4);
    EXPECT_EQ(kv.Held(1), 2);
    EXPECT_EQ(kv.FreeBlocks(), 8);
    EXPECT_EQ(kv.SharedBlocks(), 0);  // shrink frees, never shares
    kv.CheckLedger();
}

TEST(BlockKvManagerSharedDeathTest, SharedOverflowAndDoubleFree)
{
    BlockKvManager kv(10, 16);
    ASSERT_TRUE(kv.ReserveShared(4));
    // Releasing more than the account holds is a double-free.
    EXPECT_EXIT(kv.ReleaseShared(5), ::testing::ExitedWithCode(1),
                "FATAL");
    // Transferring more than the request holds is an overflow.
    ASSERT_TRUE(kv.ReserveBlocks(1, 2));
    EXPECT_EXIT(kv.TransferToShared(1, 3), ::testing::ExitedWithCode(1),
                "FATAL");
    EXPECT_EXIT(kv.Shrink(1, 3), ::testing::ExitedWithCode(1), "FATAL");
    // Transfers from a request that never reserved are fatal too.
    EXPECT_EXIT(kv.TransferToShared(9, 1), ::testing::ExitedWithCode(1),
                "FATAL");
}

}  // namespace
}  // namespace pod::serve
