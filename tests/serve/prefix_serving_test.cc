/**
 * @file
 * Engine-level tests for shared-prefix KV reuse (docs/DESIGN.md
 * S2.6):
 *  - the bit-identity pin: enabling the prefix cache on opaque-prompt
 *    workloads (everything the pre-existing generators emit) changes
 *    nothing, byte for byte, across scheduler x policy combinations;
 *  - conservation of prefill work: processed + saved tokens under the
 *    cache equals tokens processed without it;
 *  - end-to-end session serving: hits happen, every request
 *    finishes, and the processed P:D ratio shifts decode-ward;
 *  - the eviction path under a small pool.
 */
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "../golden_scenarios.h"
#include "common/rng.h"
#include "serve/scheduler.h"
#include "serve/trace.h"

namespace pod::serve {
namespace {

/** Every numeric field of two reports must agree exactly. */
void
ExpectBitIdentical(const MetricsReport& a, const MetricsReport& b)
{
    EXPECT_EQ(a.num_requests, b.num_requests);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.requests_per_minute, b.requests_per_minute);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.ttft.Percentile(50), b.ttft.Percentile(50));
    EXPECT_EQ(a.ttft.Percentile(99), b.ttft.Percentile(99));
    EXPECT_EQ(a.ttft.Max(), b.ttft.Max());
    EXPECT_EQ(a.tbt.Percentile(50), b.tbt.Percentile(50));
    EXPECT_EQ(a.tbt.Max(), b.tbt.Max());
    EXPECT_EQ(a.latency.Mean(), b.latency.Mean());
    EXPECT_EQ(a.latency.Max(), b.latency.Max());
    EXPECT_EQ(a.mean_batch_tokens, b.mean_batch_tokens);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.preemptions_recompute, b.preemptions_recompute);
    EXPECT_EQ(a.requests_preempted, b.requests_preempted);
    EXPECT_EQ(a.prefill_tokens_processed, b.prefill_tokens_processed);
    EXPECT_EQ(a.decode_tokens_processed, b.decode_tokens_processed);
}

MetricsReport
RunEngine(ServingConfig config, const std::vector<Request>& trace,
          bool sarathi = true)
{
    config.attn_options.sim.core = gpusim::EngineCore::kExactOracle;
    std::unique_ptr<Scheduler> scheduler;
    if (sarathi) {
        scheduler = std::make_unique<SarathiScheduler>(512);
    } else {
        scheduler = std::make_unique<VllmScheduler>();
    }
    ServingEngine engine(config, std::move(scheduler));
    return engine.Run(trace);
}

TEST(PrefixServingTest, OpaquePromptsKeepEveryPolicyBitIdentical)
{
    // The PR-3/5 golden traces have opaque prompts, so the cache can
    // never hit; with the clamp-to-miss admission path the wrapped
    // allocator must reproduce the plain policies exactly. Paired
    // with the untouched golden regression suites, this pins
    // prefix_cache_enabled=false AND =true to pre-PR behaviour on
    // legacy workloads.
    struct Case
    {
        KvPolicy policy;
        bool sarathi;
        double memory_fraction;
    };
    std::vector<Case> cases = {
        {KvPolicy::kConservative, true, 0.9},
        {KvPolicy::kConservative, false, 0.9},
        {KvPolicy::kWatermark, true, 0.9},
        // Shrunken pool: the watermark path preempts (golden
        // preemption regime), exercising Evict/re-admit with the
        // cache wrapped around it.
        {KvPolicy::kWatermark, true, 0.1},
    };
    for (const Case& c : cases) {
        ServingConfig config;
        config.backend = core::Backend::kPod;
        config.kv_policy = c.policy;
        config.kv_preempt_mode = PreemptMode::kRecompute;
        config.memory_fraction = c.memory_fraction;
        if (c.memory_fraction < 0.5) {
            // Shrunken-pool regime: TP-2 keeps the per-GPU weight
            // share under the reduced usable memory (the preemption
            // golden setup).
            config.tensor_parallel = 2;
        }
        const auto trace = c.memory_fraction < 0.5
                               ? golden::OverloadTrace()
                               : golden::ServeTrace();

        config.prefix_cache_enabled = false;
        MetricsReport off = RunEngine(config, trace, c.sarathi);
        config.prefix_cache_enabled = true;
        MetricsReport on = RunEngine(config, trace, c.sarathi);

        ExpectBitIdentical(off, on);
        // Opaque prompts never even count as lookups.
        EXPECT_EQ(on.prefix_hits, 0);
        EXPECT_EQ(on.prefix_misses, 0);
        EXPECT_EQ(on.prefix_tokens_saved, 0);
        EXPECT_EQ(on.prefix_cached_blocks, 0);
    }
}

TEST(PrefixServingTest, ConservativePrefillWorkIsConserved)
{
    // Under the conservative policy nothing is ever re-prefilled, so
    // the cache's accounting must balance exactly: every prompt token
    // is either processed or served from cache, and decode work is
    // untouched.
    SessionWorkloadSpec spec = SessionWorkloadSpec::Chat();
    spec.system_tokens_min = 512;
    spec.system_tokens_max = 1024;
    spec.max_turns = 3;
    Rng rng(42);
    auto trace = GenerateSessionTrace(spec, 12, 2.0, rng);

    ServingConfig config;
    config.backend = core::Backend::kPod;
    config.prefix_cache_enabled = false;
    MetricsReport off = RunEngine(config, trace);
    config.prefix_cache_enabled = true;
    MetricsReport on = RunEngine(config, trace);

    long submitted = 0;
    for (const Request& r : trace) submitted += r.prefill_tokens;
    EXPECT_EQ(off.prefill_tokens_processed, submitted);
    EXPECT_EQ(on.prefill_tokens_processed + on.prefix_tokens_saved,
              submitted);
    EXPECT_GT(on.prefix_tokens_saved, 0);
    EXPECT_EQ(on.decode_tokens_processed, off.decode_tokens_processed);
    EXPECT_EQ(on.num_requests, off.num_requests);
}

TEST(PrefixServingTest, SessionTraceHitsAndFinishesUnderWatermark)
{
    SessionWorkloadSpec spec = SessionWorkloadSpec::Chat();
    spec.system_tokens_min = 512;
    spec.system_tokens_max = 1024;
    spec.min_turns = 2;
    spec.max_turns = 3;
    Rng rng(7);
    auto trace = GenerateSessionTrace(spec, 10, 2.0, rng);

    ServingConfig config;
    config.backend = core::Backend::kPod;
    config.kv_policy = KvPolicy::kWatermark;
    config.kv_preempt_mode = PreemptMode::kRecompute;
    config.prefix_cache_enabled = true;
    MetricsReport m = RunEngine(config, trace);

    EXPECT_EQ(m.num_requests, static_cast<int>(trace.size()));
    EXPECT_EQ(m.latency.Count(), trace.size());  // everyone finished
    EXPECT_GT(m.prefix_hits, 0);  // turn >= 1 prompts re-hit history
    EXPECT_GT(m.prefix_tokens_saved, 0);
    // The cache converts prefill into decode-shaped work: with hits,
    // processed prefill drops strictly below the submitted total.
    long submitted = 0;
    for (const Request& r : trace) submitted += r.prefill_tokens;
    EXPECT_LT(m.prefill_tokens_processed, submitted);
}

TEST(PrefixServingTest, SmallPoolExercisesCacheEviction)
{
    // A 10x-shrunken pool under a session workload: cached blocks
    // must be reclaimed by LRU eviction (admission gate or decode
    // growth) rather than starving admissions, and the run must
    // still complete every request.
    SessionWorkloadSpec spec = SessionWorkloadSpec::Chat();
    spec.system_tokens_min = 512;
    spec.system_tokens_max = 1024;
    spec.min_turns = 2;
    spec.max_turns = 3;
    spec.decode_mean = 192.0;
    Rng rng(19);
    auto trace = GenerateSessionTrace(spec, 10, 4.0, rng);

    ServingConfig config;
    config.backend = core::Backend::kPod;
    config.tensor_parallel = 2;
    config.kv_policy = KvPolicy::kWatermark;
    config.kv_preempt_mode = PreemptMode::kRecompute;
    config.prefix_cache_enabled = true;
    config.memory_fraction = 0.0958;
    MetricsReport m = RunEngine(config, trace);

    EXPECT_EQ(m.latency.Count(), trace.size());
    EXPECT_GT(m.prefix_hits, 0);
    EXPECT_GT(m.prefix_evicted_blocks, 0);
}

}  // namespace
}  // namespace pod::serve
