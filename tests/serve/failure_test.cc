/**
 * @file
 * Failure-injection tests for the serving layer (docs/DESIGN.md S7):
 * oversized requests, exhausted KV pools, degenerate traces and
 * head-of-line blocking under memory pressure.
 */
#include <gtest/gtest.h>

#include <memory>

#include "serve/engine.h"
#include "serve/kv_allocator.h"
#include "serve/scheduler.h"
#include "serve/trace.h"

namespace pod::serve {
namespace {

ServingConfig
TinyKvConfig()
{
    ServingConfig config;
    config.model = model::ModelConfig::Llama3_8B();
    config.tensor_parallel = 2;
    config.backend = core::Backend::kFaSerial;
    return config;
}

TEST(FailureInjection, RequestLargerThanPoolIsFatal)
{
    // A single request whose prompt + output exceeds the entire KV
    // pool can never be admitted; the scheduler must fail loudly
    // instead of spinning forever.
    ConservativeKvAllocator kv(4, 16);  // 64 tokens total
    std::vector<RequestState> states(1);
    states[0].request = Request{0, 0.0, 1000, 10, {}, -1, 0};
    SarathiScheduler sched(512);
    EXPECT_EXIT(sched.Next(0.0, states, kv, 0),
                ::testing::ExitedWithCode(1), "FATAL");
}

TEST(FailureInjection, OversizedRequestFatalUnderWatermarkToo)
{
    // The watermark policy admits on prompt blocks only, but a
    // request whose worst-case context cannot coexist with the
    // watermark would deadlock the decode-growth path — equally
    // fatal.
    WatermarkKvAllocator kv(4, 16, 0.25, PreemptMode::kRecompute);
    std::vector<RequestState> states(1);
    states[0].request = Request{0, 0.0, 40, 20, {}, -1, 0};  // 60 tok + 1 wm block
    SarathiScheduler sched(512);
    EXPECT_EXIT(sched.Next(0.0, states, kv, 0),
                ::testing::ExitedWithCode(1), "FATAL");
}

TEST(FailureInjection, HeadOfLineBlockingUnderMemoryPressure)
{
    // FCFS admission: a huge request at the head blocks a small one
    // behind it even though the small one would fit (the conservative
    // policy documented in ConservativeKvAllocator).
    ConservativeKvAllocator kv(100, 16);  // 1600 tokens
    // Resident tenant holding 20 blocks.
    RequestState tenant;
    tenant.request = Request{99, 0.0, 310, 10, {}, -1, 0};  // 320 tokens
    ASSERT_TRUE(kv.TryAdmit(tenant));
    std::vector<RequestState> states(2);
    states[0].request = Request{0, 0.0, 1300, 100, {}, -1, 0};  // needs 1400 > free
    states[1].request = Request{1, 0.0, 100, 10, {}, -1, 0};    // would fit
    SarathiScheduler sched(512);
    SchedulingDecision decision = sched.Next(0.0, states, kv, 0);
    EXPECT_FALSE(states[0].Admitted());
    EXPECT_FALSE(states[1].Admitted());
    EXPECT_TRUE(decision.batch.Empty());
    EXPECT_TRUE(decision.admissions.empty());
}

TEST(FailureInjection, PoolDrainsAndRecovers)
{
    // Two requests that cannot be co-resident serialize through the
    // pool; the engine still completes both.
    ServingConfig config = TinyKvConfig();
    // Shrink usable memory so the KV pool only holds ~one request.
    config.memory_fraction = 0.0958;
    long capacity = config.KvTokenCapacity();
    ASSERT_GT(capacity, 2100);
    ASSERT_LT(capacity, 4200);

    ServingEngine engine(config, std::make_unique<SarathiScheduler>(512));
    MetricsReport report = engine.Run(UniformTrace(2, 2048, 32));
    EXPECT_EQ(report.num_requests, 2);
    EXPECT_EQ(report.latency.Count(), 2u);
    // The second request waited for the first to release its blocks.
    EXPECT_GT(report.latency.Max(), report.latency.Min() * 1.5);
}

TEST(FailureInjection, SingleTokenOutputs)
{
    // decode_tokens == 1: the first (and only) token comes from the
    // prefill-completing iteration; no TBT samples exist.
    ServingConfig config = TinyKvConfig();
    ServingEngine engine(config, std::make_unique<SarathiScheduler>(512));
    MetricsReport report = engine.Run(UniformTrace(3, 1024, 1));
    EXPECT_EQ(report.num_requests, 3);
    EXPECT_EQ(report.tbt.Count(), 0u);
    EXPECT_EQ(report.ttft.Count(), 3u);
}

TEST(FailureInjection, BurstArrivalThenSilence)
{
    // All requests arrive in one burst long after t=0; the engine
    // must jump the clock instead of spinning.
    ServingConfig config = TinyKvConfig();
    std::vector<Request> trace = UniformTrace(3, 1024, 8);
    for (auto& r : trace) r.arrival_time = 1000.0;
    ServingEngine engine(config, std::make_unique<SarathiScheduler>(512));
    MetricsReport report = engine.Run(trace);
    EXPECT_GT(report.makespan, 1000.0);
    EXPECT_LT(report.makespan, 1010.0);
    // Latency metrics are relative to arrival, not absolute time.
    EXPECT_LT(report.latency.Max(), 10.0);
}

}  // namespace
}  // namespace pod::serve
