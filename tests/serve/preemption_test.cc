/**
 * @file
 * Watermark admission and preemption semantics (docs/DESIGN.md S2):
 * allocator-level unit tests for the vLLM-style watermark gate,
 * incremental decode growth and swap bookkeeping, plus engine-level
 * tests that an overloaded replica preempts, restores progress
 * (recompute) or charges PCIe transfer time (swap), drains to
 * Done(), and keeps every incremental lifecycle counter equal to a
 * brute-force rescan at every step (mirroring
 * tests/serve/serve_incremental_test.cc).
 */
#include "serve/kv_allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "../golden_scenarios.h"
#include "serve/engine.h"
#include "serve/scheduler.h"

namespace pod::serve {
namespace {

RequestState
MakeState(int id, int prefill_tokens, int decode_tokens)
{
    RequestState state;
    state.request = Request{id, 0.0, prefill_tokens, decode_tokens, {}, -1, 0};
    return state;
}

// ---- allocator unit tests ----

TEST(WatermarkKvAllocatorTest, AdmissionBlockedAtWatermark)
{
    // 100 blocks, 10 reserved as the watermark.
    WatermarkKvAllocator kv(100, 16, 0.10, PreemptMode::kRecompute);
    RequestState a = MakeState(0, 1280, 100);  // prompt = 80 blocks
    EXPECT_TRUE(kv.TryAdmit(a));
    a.phase = Phase::kRunning;
    EXPECT_EQ(kv.Held(0), 80);

    // 20 blocks free: an 11-block prompt would dip below the
    // watermark, a 10-block prompt sits exactly on it.
    RequestState b = MakeState(1, 176, 100);
    EXPECT_FALSE(kv.TryAdmit(b));
    RequestState c = MakeState(2, 160, 100);
    EXPECT_TRUE(kv.TryAdmit(c));
    EXPECT_EQ(kv.FreeBlocks(), 10);
}

TEST(WatermarkKvAllocatorTest, AdmitsOnPromptWhereConservativeBlocks)
{
    // The same request against the same pool: conservative reserves
    // prompt + maximum output and rejects; watermark reserves the
    // prompt only and admits. This is the relaxation that opens the
    // preemption-heavy regime.
    RequestState state = MakeState(0, 320, 1600);  // 20 + 100 blocks

    ConservativeKvAllocator conservative(64, 16);
    EXPECT_FALSE(conservative.TryAdmit(state));

    WatermarkKvAllocator watermark(64, 16, 0.01, PreemptMode::kRecompute);
    EXPECT_TRUE(watermark.TryAdmit(state));
    EXPECT_EQ(watermark.Held(0), 20);  // prompt blocks only
}

TEST(WatermarkKvAllocatorTest, AppendAllocatesAtBlockBoundaries)
{
    WatermarkKvAllocator kv(10, 16, 0.0, PreemptMode::kRecompute);
    RequestState state = MakeState(0, 16, 64);  // prompt = 1 block
    ASSERT_TRUE(kv.TryAdmit(state));
    state.phase = Phase::kRunning;
    EXPECT_EQ(kv.Held(0), 1);

    // First decode token lands at position 16 -> a new block.
    state.prefilled = 16;
    state.decoded = 1;
    ASSERT_TRUE(kv.CanAppend(state));
    kv.Append(state);
    EXPECT_EQ(kv.Held(0), 2);

    // Tokens 17..31 stay inside the second block: no allocation.
    for (state.decoded = 2; state.decoded <= 15; ++state.decoded) {
        ASSERT_TRUE(kv.CanAppend(state));
        kv.Append(state);
        EXPECT_EQ(kv.Held(0), 2);
    }
    // Token at position 32 crosses into a third block.
    state.decoded = 16;
    kv.Append(state);
    EXPECT_EQ(kv.Held(0), 3);
}

TEST(WatermarkKvAllocatorTest, CanAppendFalseOnlyWhenPoolExhausted)
{
    WatermarkKvAllocator kv(3, 16, 0.0, PreemptMode::kRecompute);
    RequestState a = MakeState(0, 16, 64);
    RequestState b = MakeState(1, 32, 64);
    ASSERT_TRUE(kv.TryAdmit(a));
    ASSERT_TRUE(kv.TryAdmit(b));
    a.phase = Phase::kRunning;
    b.phase = Phase::kRunning;
    EXPECT_EQ(kv.FreeBlocks(), 0);

    // `a` needs a new block for its first decode token: blocked.
    a.prefilled = 16;
    a.decoded = 1;
    EXPECT_FALSE(kv.CanAppend(a));

    // Evicting `b` frees the block `a` needs.
    EXPECT_EQ(kv.Evict(b, PreemptMode::kRecompute), 2);
    EXPECT_TRUE(kv.CanAppend(a));
}

TEST(WatermarkKvAllocatorTest, SwapEvictRestoresExactFootprint)
{
    WatermarkKvAllocator kv(10, 16, 0.0, PreemptMode::kSwap);
    RequestState state = MakeState(0, 48, 64);  // 3 blocks
    ASSERT_TRUE(kv.TryAdmit(state));
    state.phase = Phase::kRunning;
    state.prefilled = 48;
    state.decoded = 1;
    kv.Append(state);  // 4th block for the first output token
    ASSERT_EQ(kv.Held(0), 4);

    EXPECT_EQ(kv.Evict(state, PreemptMode::kSwap), 4);
    state.phase = Phase::kPreemptedSwapped;
    EXPECT_EQ(kv.UsedBlocks(), 0);
    EXPECT_EQ(kv.SwappedBlocks(0), 4);

    // Swap-in restores the identical footprint, not a recomputed one.
    EXPECT_TRUE(kv.TryAdmit(state));
    EXPECT_EQ(kv.Held(0), 4);
    EXPECT_EQ(kv.SwappedBlocks(0), 0);
}

TEST(WatermarkKvAllocatorTest, WatermarkHeadroomTracksFreePool)
{
    WatermarkKvAllocator kv(100, 16, 0.10, PreemptMode::kRecompute);
    EXPECT_DOUBLE_EQ(kv.WatermarkHeadroom(), 0.90);
    RequestState state = MakeState(0, 1280, 16);  // 80 blocks
    ASSERT_TRUE(kv.TryAdmit(state));
    EXPECT_NEAR(kv.WatermarkHeadroom(), 0.10, 1e-12);

    ConservativeKvAllocator conservative(100, 16);
    EXPECT_DOUBLE_EQ(conservative.WatermarkHeadroom(), 1.0);
}

// ---- engine-level preemption semantics ----

ServingConfig
OverloadConfig(PreemptMode mode)
{
    ServingConfig config;
    config.model = model::ModelConfig::Llama3_8B();
    config.tensor_parallel = 2;
    config.backend = core::Backend::kFaSerial;
    // Shrink the KV pool to a few thousand tokens so the overload
    // trace actually contends (same trick as failure_test.cc).
    config.memory_fraction = 0.0958;
    config.kv_policy = KvPolicy::kWatermark;
    config.kv_preempt_mode = mode;
    // Coarse buckets keep kernel simulations rare and the test fast.
    config.kv_bucket = 4096;
    config.context_bucket = 4096;
    config.decode_bs_bucket = 32;
    return config;
}

TEST(PreemptionEngineTest, RecomputeOverloadPreemptsAndDrains)
{
    ServingEngine engine(OverloadConfig(PreemptMode::kRecompute),
                         std::make_unique<SarathiScheduler>(512));
    MetricsReport report = engine.Run(golden::OverloadTrace());

    // The acceptance bar: at least one preemption occurred and the
    // engine still drained every request.
    EXPECT_GT(report.preemptions, 0l);
    EXPECT_EQ(report.preemptions, report.preemptions_recompute);
    EXPECT_EQ(report.preemptions_swap, 0l);
    EXPECT_EQ(report.swap_time_total, 0.0);
    EXPECT_GT(report.requests_preempted, 0);
    EXPECT_EQ(report.num_requests, 12);
    EXPECT_EQ(report.latency.Count(), 12u);
    EXPECT_TRUE(engine.Done());

    // Recompute restored prefill progress: a preempted request ended
    // with its prefill re-run over prompt + already-generated tokens.
    long preempt_count_sum = 0;
    bool saw_restored_prefill = false;
    for (const auto& state : engine.States()) {
        EXPECT_TRUE(state.Finished());
        EXPECT_EQ(state.decoded, state.request.decode_tokens);
        EXPECT_EQ(state.prefilled, state.PrefillTarget());
        preempt_count_sum += state.preempt_count;
        if (state.preempt_count > 0 && state.recompute_extra > 0) {
            EXPECT_EQ(state.PrefillTarget(),
                      state.request.prefill_tokens +
                          state.recompute_extra);
            saw_restored_prefill = true;
        }
    }
    EXPECT_TRUE(saw_restored_prefill);
    // Preempted-request counters match the brute-force rescan.
    EXPECT_EQ(report.preemptions, preempt_count_sum);

    // Counters surface through the snapshot.
    ReplicaSnapshot snap = engine.Snapshot();
    EXPECT_EQ(snap.preemptions_recompute, report.preemptions_recompute);
    EXPECT_EQ(snap.preemptions_swap, 0l);
    EXPECT_EQ(snap.preempted, 0);  // all drained
    EXPECT_EQ(snap.swap_time_total, 0.0);
}

TEST(PreemptionEngineTest, SwapChargesTransferTime)
{
    ServingEngine engine(OverloadConfig(PreemptMode::kSwap),
                         std::make_unique<SarathiScheduler>(512));

    // Drive Step() directly so per-iteration swap charges can be
    // cross-checked against the lifetime total.
    auto trace = golden::OverloadTrace();
    std::sort(trace.begin(), trace.end(), ArrivalOrder);
    engine.Reset();
    for (const auto& request : trace) engine.Submit(request);
    double summed_swap_time = 0.0;
    while (!engine.Done()) {
        StepResult result = engine.Step();
        summed_swap_time += result.swap_time;
        // Swap transfers stretch the iteration that performs them.
        EXPECT_LE(result.swap_time, result.duration);
    }
    MetricsReport report = engine.Report();

    EXPECT_GT(report.preemptions_swap, 0l);
    EXPECT_EQ(report.preemptions_recompute, 0l);
    EXPECT_GT(report.swap_time_total, 0.0);
    EXPECT_DOUBLE_EQ(report.swap_time_total, summed_swap_time);
    EXPECT_DOUBLE_EQ(engine.SwapTimeTotal(), summed_swap_time);

    // Swapped requests resume where they left off: no prefill target
    // ever grows under pure swap preemption.
    for (const auto& state : engine.States()) {
        EXPECT_EQ(state.recompute_extra, 0);
        EXPECT_EQ(state.decoded, state.request.decode_tokens);
    }
}

TEST(PreemptionEngineTest, SwapSlowerMakespanThanFreeEviction)
{
    // The transfer charge must be visible end-to-end: the same trace
    // under the same allocator with swap costs a strictly longer
    // makespan than with recompute-free... not comparable in general,
    // but swap time must at least push makespan above the pure
    // iteration sum, which recompute does not inflate.
    ServingEngine swap_engine(OverloadConfig(PreemptMode::kSwap),
                              std::make_unique<SarathiScheduler>(512));
    MetricsReport swap_report =
        swap_engine.Run(golden::OverloadTrace());
    EXPECT_GT(swap_report.swap_time_total, 0.0);
    EXPECT_GT(swap_report.makespan, swap_report.swap_time_total);
}

TEST(PreemptionEngineTest, VllmSchedulerAlsoDrainsUnderWatermark)
{
    ServingEngine engine(OverloadConfig(PreemptMode::kRecompute),
                         std::make_unique<VllmScheduler>());
    MetricsReport report = engine.Run(golden::OverloadTrace());
    EXPECT_EQ(report.num_requests, 12);
    EXPECT_EQ(report.latency.Count(), 12u);
    EXPECT_TRUE(engine.Done());
}

// ---- brute-force invariant under preemption ----

/**
 * The serve_incremental_test.cc oracle, extended with the preempted
 * phase: every lifecycle counter the O(1) snapshot reports must
 * equal a full rescan of the request states.
 */
void
BruteForceExpectations(const ServingEngine& engine,
                       const ReplicaSnapshot& snap)
{
    const auto& states = engine.States();
    const KvAllocator& alloc = engine.Allocator();
    const auto* watermark =
        dynamic_cast<const WatermarkKvAllocator*>(&alloc);
    int waiting = 0;
    int running = 0;
    int preempted = 0;
    long prefill_pending = 0;
    long decode_pending = 0;
    long preempt_events = 0;
    long pending_blocks = 0;  // unadmitted + preempted latent demand
    double next_event = std::numeric_limits<double>::infinity();
    bool runnable = false;
    for (const auto& state : states) {
        preempt_events += state.preempt_count;
        if (state.Finished()) continue;
        if (state.Admitted() || state.Preempted() ||
            state.request.arrival_time <= engine.Now()) {
            runnable = true;
        } else {
            next_event = std::min(next_event, state.request.arrival_time);
        }
        if (state.Admitted()) {
            ++running;
            decode_pending += state.request.decode_tokens - state.decoded;
        } else if (state.phase == Phase::kPreemptedRecompute) {
            ++preempted;
            pending_blocks += alloc.BlocksFor(state.PrefillTarget());
        } else if (state.phase == Phase::kPreemptedSwapped) {
            ++preempted;
            ASSERT_NE(watermark, nullptr);
            pending_blocks += watermark->SwappedBlocks(state.request.id);
        } else {
            if (state.request.arrival_time <= engine.Now()) ++waiting;
            pending_blocks += alloc.BlocksFor(
                state.request.prefill_tokens + state.request.decode_tokens);
        }
        prefill_pending += state.PrefillTarget() - state.prefilled;
    }
    // kv_pressure counts reserved blocks plus every queued AND
    // preempted request's latent re-reservation demand.
    EXPECT_DOUBLE_EQ(
        snap.kv_pressure,
        alloc.Utilization() + static_cast<double>(pending_blocks) /
                                  static_cast<double>(alloc.TotalBlocks()));
    EXPECT_EQ(snap.waiting, waiting);
    EXPECT_EQ(snap.running, running);
    EXPECT_EQ(snap.preempted, preempted);
    EXPECT_EQ(snap.prefill_tokens_pending, prefill_pending);
    EXPECT_EQ(snap.decode_tokens_pending, decode_pending);
    EXPECT_EQ(snap.preemptions_recompute + snap.preemptions_swap,
              preempt_events);
    EXPECT_EQ(snap.outstanding,
              static_cast<int>(states.size()) - snap.finished);
    EXPECT_EQ(engine.NextEventTime(),
              runnable ? engine.Now() : next_event);
}

TEST(PreemptionEngineTest, CountersMatchBruteForceEveryStep)
{
    for (PreemptMode mode :
         {PreemptMode::kRecompute, PreemptMode::kSwap}) {
        ServingEngine engine(OverloadConfig(mode),
                             std::make_unique<SarathiScheduler>(512));
        engine.Reset();
        auto trace = golden::OverloadTrace();
        size_t submitted = 0;
        while (submitted < trace.size() || !engine.Done()) {
            // Interleave submissions with steps, as the cluster does.
            while (submitted < trace.size() &&
                   trace[submitted].arrival_time <= engine.Now()) {
                engine.Submit(trace[submitted++]);
            }
            BruteForceExpectations(engine, engine.Snapshot());
            if (!engine.Done()) {
                engine.Step();
            } else if (submitted < trace.size()) {
                engine.Submit(trace[submitted++]);
            }
        }
        BruteForceExpectations(engine, engine.Snapshot());
        ReplicaSnapshot final_snap = engine.Snapshot();
        EXPECT_GT(final_snap.preemptions_recompute +
                      final_snap.preemptions_swap,
                  0l);
    }
}

TEST(PreemptionEngineTest, ConservativeNeverPreemptsOnOverload)
{
    // The same overload trace under the default policy: requests
    // queue instead of thrashing, and every lifecycle counter stays
    // zero — the redesign is opt-in.
    ServingConfig config = OverloadConfig(PreemptMode::kRecompute);
    config.kv_policy = KvPolicy::kConservative;
    ServingEngine engine(config,
                         std::make_unique<SarathiScheduler>(512));
    MetricsReport report = engine.Run(golden::OverloadTrace());
    EXPECT_EQ(report.preemptions, 0l);
    EXPECT_EQ(report.requests_preempted, 0);
    EXPECT_EQ(report.swap_time_total, 0.0);
    EXPECT_EQ(report.num_requests, 12);
}

}  // namespace
}  // namespace pod::serve
