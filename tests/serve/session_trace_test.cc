/**
 * @file
 * Tests for the session-aware workload generator
 * (serve::GenerateSessionTrace): determinism, arrival ordering,
 * multi-turn prefix containment (turn j's prompt is a strict segment
 * prefix of turn j+1's), response-replay sizing, and the Zipf-shared
 * system-prompt pool the prefix cache feeds on.
 */
#include "serve/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "serve/prefix/block_hash.h"

namespace pod::serve {
namespace {

SessionWorkloadSpec
SmallSpec()
{
    SessionWorkloadSpec spec = SessionWorkloadSpec::Chat();
    spec.system_tokens_min = 256;
    spec.system_tokens_max = 512;
    spec.num_system_prompts = 4;
    spec.min_turns = 1;
    spec.max_turns = 4;
    return spec;
}

/** Requests of one session ordered by turn. */
std::map<int, std::vector<const Request*>>
BySession(const std::vector<Request>& trace)
{
    std::map<int, std::vector<const Request*>> sessions;
    for (const Request& r : trace) {
        sessions[r.session_id].push_back(&r);
    }
    for (auto& [id, turns] : sessions) {
        (void)id;
        std::sort(turns.begin(), turns.end(),
                  [](const Request* a, const Request* b) {
                      return a->turn < b->turn;
                  });
    }
    return sessions;
}

TEST(SessionTraceTest, SameSeedSameTrace)
{
    Rng a(7), b(7);
    auto ta = GenerateSessionTrace(SmallSpec(), 12, 2.0, a);
    auto tb = GenerateSessionTrace(SmallSpec(), 12, 2.0, b);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].id, tb[i].id);
        EXPECT_EQ(ta[i].arrival_time, tb[i].arrival_time);
        EXPECT_EQ(ta[i].prefill_tokens, tb[i].prefill_tokens);
        EXPECT_EQ(ta[i].decode_tokens, tb[i].decode_tokens);
        EXPECT_EQ(ta[i].session_id, tb[i].session_id);
        EXPECT_EQ(ta[i].turn, tb[i].turn);
        ASSERT_EQ(ta[i].prompt.size(), tb[i].prompt.size());
        for (size_t s = 0; s < ta[i].prompt.size(); ++s) {
            EXPECT_EQ(ta[i].prompt[s].content_id,
                      tb[i].prompt[s].content_id);
            EXPECT_EQ(ta[i].prompt[s].tokens, tb[i].prompt[s].tokens);
        }
    }
}

TEST(SessionTraceTest, ArrivalOrderedWithSequentialIds)
{
    Rng rng(11);
    auto trace = GenerateSessionTrace(SmallSpec(), 16, 4.0, rng);
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, static_cast<int>(i));
        if (i > 0) {
            EXPECT_GE(trace[i].arrival_time, trace[i - 1].arrival_time);
        }
        // Prompt segments must sum to the prefill length.
        int sum = 0;
        for (const PromptSegment& seg : trace[i].prompt) {
            sum += seg.tokens;
        }
        EXPECT_EQ(sum, trace[i].prefill_tokens);
        EXPECT_GE(trace[i].decode_tokens, 1);
    }
}

TEST(SessionTraceTest, TurnPromptsAreStrictPrefixExtensions)
{
    Rng rng(13);
    SessionWorkloadSpec spec = SmallSpec();
    spec.min_turns = 2;  // guarantee multi-turn sessions
    auto trace = GenerateSessionTrace(spec, 10, 2.0, rng);
    auto sessions = BySession(trace);
    int multi_turn = 0;
    for (const auto& [id, turns] : sessions) {
        (void)id;
        for (size_t j = 0; j + 1 < turns.size(); ++j) {
            ++multi_turn;
            const Request* cur = turns[j];
            const Request* next = turns[j + 1];
            EXPECT_EQ(cur->turn + 1, next->turn);
            EXPECT_LE(cur->arrival_time, next->arrival_time);
            // Turn j: [sys][u0][r0]...[uj]; turn j+1 appends [rj] and
            // [u_{j+1}], so the segment list extends by exactly two.
            ASSERT_EQ(cur->prompt.size() + 2, next->prompt.size());
            for (size_t s = 0; s < cur->prompt.size(); ++s) {
                EXPECT_EQ(cur->prompt[s].content_id,
                          next->prompt[s].content_id);
                EXPECT_EQ(cur->prompt[s].tokens, next->prompt[s].tokens);
            }
            // The replayed response is sized by this turn's decode.
            const PromptSegment& resp = next->prompt[cur->prompt.size()];
            EXPECT_EQ(resp.tokens, cur->decode_tokens);

            // Block-hash view: the earlier turn's chain is a strict
            // prefix of the later one's — exactly what the radix
            // cache and affinity router key on.
            auto hc = prefix::BlockHashes(*cur, 16);
            auto hn = prefix::BlockHashes(*next, 16);
            ASSERT_LE(hc.size(), hn.size());
            for (size_t h = 0; h < hc.size(); ++h) {
                EXPECT_EQ(hc[h], hn[h]);
            }
        }
    }
    EXPECT_GT(multi_turn, 0);
}

TEST(SessionTraceTest, ShareRatioControlsOpeningSegmentReuse)
{
    const int sessions = 64;

    // share 1: every session opens with one of the 4 pool prompts,
    // and two sessions drawing the same prompt agree on its content
    // id AND length.
    Rng shared_rng(17);
    SessionWorkloadSpec spec = SmallSpec();
    spec.share_ratio = 1.0;
    auto shared = GenerateSessionTrace(spec, sessions, 0.0, shared_rng);
    std::set<uint64_t> opening_ids;
    std::map<uint64_t, int> opening_tokens;
    for (const Request& r : shared) {
        ASSERT_FALSE(r.prompt.empty());
        opening_ids.insert(r.prompt[0].content_id);
        auto [it, inserted] = opening_tokens.emplace(
            r.prompt[0].content_id, r.prompt[0].tokens);
        EXPECT_EQ(it->second, r.prompt[0].tokens);
        (void)inserted;
    }
    EXPECT_LE(opening_ids.size(), 4u);
    EXPECT_GE(opening_ids.size(), 2u);  // 64 sessions hit > 1 prompt

    // share 0: every session's opening segment is unique.
    Rng unique_rng(17);
    spec.share_ratio = 0.0;
    auto unique = GenerateSessionTrace(spec, sessions, 0.0, unique_rng);
    auto by_session = BySession(unique);
    std::set<uint64_t> unique_ids;
    for (const auto& [id, turns] : by_session) {
        (void)id;
        unique_ids.insert(turns[0]->prompt[0].content_id);
    }
    EXPECT_EQ(unique_ids.size(), by_session.size());
}

TEST(SessionTraceTest, ZipfSkewFavorsTheHeadPrompt)
{
    // With a strong skew the most popular prompt must dominate: its
    // weight is 1 / sum_k (1/(k+1)^3) > 0.8 of the pool at s=3.
    SessionWorkloadSpec spec = SmallSpec();
    spec.share_ratio = 1.0;
    spec.zipf_s = 3.0;
    Rng rng(23);
    auto trace = GenerateSessionTrace(spec, 96, 0.0, rng);
    auto sessions = BySession(trace);
    std::map<uint64_t, int> counts;
    for (const auto& [id, turns] : sessions) {
        (void)id;
        ++counts[turns[0]->prompt[0].content_id];
    }
    int top = 0;
    for (const auto& [cid, n] : counts) {
        (void)cid;
        top = std::max(top, n);
    }
    EXPECT_GT(top, static_cast<int>(sessions.size()) / 2);
}

TEST(SessionTraceTest, ZeroQpsStartsEverySessionAtTimeZero)
{
    SessionWorkloadSpec spec = SmallSpec();
    Rng rng(29);
    auto trace = GenerateSessionTrace(spec, 8, 0.0, rng);
    auto sessions = BySession(trace);
    EXPECT_EQ(sessions.size(), 8u);
    for (const auto& [id, turns] : sessions) {
        (void)id;
        EXPECT_EQ(turns[0]->arrival_time, 0.0);
    }
}

TEST(SessionTraceDeathTest, RejectsInvalidSpecs)
{
    Rng rng(1);
    SessionWorkloadSpec spec = SmallSpec();
    EXPECT_EXIT(GenerateSessionTrace(spec, 0, 1.0, rng),
                ::testing::ExitedWithCode(1), "FATAL");
    spec.share_ratio = 1.5;
    EXPECT_EXIT(GenerateSessionTrace(spec, 4, 1.0, rng),
                ::testing::ExitedWithCode(1), "FATAL");
    spec = SmallSpec();
    spec.min_turns = 0;
    EXPECT_EXIT(GenerateSessionTrace(spec, 4, 1.0, rng),
                ::testing::ExitedWithCode(1), "FATAL");
}

}  // namespace
}  // namespace pod::serve
