/**
 * @file
 * Invariant tests for the O(1) incremental queue/KV accounting
 * (PR 3): at every step of a mixed online trace, the counter-built
 * ReplicaSnapshot and NextEventTime() must equal what a brute-force
 * scan over all request states computes — the exact algorithm the
 * pre-refactor engine ran. Also covers the attention memo-cache
 * hit/miss counters surfaced through the snapshot.
 */
#include "serve/engine.h"

#include <gtest/gtest.h>
#include <limits>
#include <memory>
#include <vector>

#include "serve/scheduler.h"

namespace pod::serve {
namespace {

ServingConfig
SmallConfig()
{
    ServingConfig config;
    config.backend = core::Backend::kFaSerial;
    // Coarse buckets keep kernel simulations rare and the test fast.
    config.kv_bucket = 4096;
    config.context_bucket = 4096;
    config.decode_bs_bucket = 32;
    return config;
}

std::vector<Request>
MixedTrace()
{
    std::vector<Request> trace;
    for (int i = 0; i < 24; ++i) {
        Request r;
        r.id = i;
        r.arrival_time = 0.4 * i;
        r.prefill_tokens = 700 + 900 * (i % 5) + (i % 6 == 0 ? 7000 : 0);
        r.decode_tokens = 8 + 23 * (i % 4);
        trace.push_back(r);
    }
    return trace;
}

/** The pre-refactor full-scan snapshot, kept as the test oracle. */
void
BruteForceExpectations(const ServingEngine& engine,
                       const ReplicaSnapshot& snap)
{
    const auto& states = engine.States();
    int waiting = 0;
    int running = 0;
    int preempted = 0;
    long prefill_pending = 0;
    long decode_pending = 0;
    double next_event = std::numeric_limits<double>::infinity();
    bool runnable = false;
    for (const auto& state : states) {
        if (state.Finished()) continue;
        if (state.Admitted() || state.Preempted() ||
            state.request.arrival_time <= engine.Now()) {
            runnable = true;
        } else {
            next_event =
                std::min(next_event, state.request.arrival_time);
        }
        if (state.Admitted()) {
            ++running;
            decode_pending +=
                state.request.decode_tokens - state.decoded;
        } else if (state.Preempted()) {
            ++preempted;
        } else if (state.request.arrival_time <= engine.Now()) {
            ++waiting;
        }
        prefill_pending += state.PrefillTarget() - state.prefilled;
    }
    EXPECT_EQ(snap.waiting, waiting);
    EXPECT_EQ(snap.running, running);
    EXPECT_EQ(snap.preempted, preempted);
    EXPECT_EQ(snap.prefill_tokens_pending, prefill_pending);
    EXPECT_EQ(snap.decode_tokens_pending, decode_pending);
    EXPECT_EQ(snap.outstanding,
              static_cast<int>(states.size()) - snap.finished);
    EXPECT_EQ(engine.NextEventTime(),
              runnable ? engine.Now() : next_event);
}

TEST(ServeIncrementalTest, SnapshotMatchesBruteForceScanEveryStep)
{
    ServingEngine engine(SmallConfig(),
                         std::make_unique<SarathiScheduler>(1024));
    engine.Reset();
    auto trace = MixedTrace();
    size_t submitted = 0;

    while (submitted < trace.size() || !engine.Done()) {
        // Interleave submissions with steps, as the cluster loop does.
        while (submitted < trace.size() &&
               trace[submitted].arrival_time <= engine.Now()) {
            engine.Submit(trace[submitted++]);
        }
        BruteForceExpectations(engine, engine.Snapshot());
        if (!engine.Done()) {
            engine.Step();
        } else if (submitted < trace.size()) {
            engine.Submit(trace[submitted++]);
        }
    }
    BruteForceExpectations(engine, engine.Snapshot());
    EXPECT_EQ(engine.NextEventTime(),
              std::numeric_limits<double>::infinity());
}

TEST(ServeIncrementalTest, SnapshotMatchesBruteForceUnderVllm)
{
    ServingEngine engine(SmallConfig(),
                         std::make_unique<VllmScheduler>());
    engine.Reset();
    for (const Request& r : MixedTrace()) engine.Submit(r);
    while (!engine.Done()) {
        BruteForceExpectations(engine, engine.Snapshot());
        engine.Step();
    }
    BruteForceExpectations(engine, engine.Snapshot());
}

TEST(ServeIncrementalTest, CacheCountersTrackLookups)
{
    ServingEngine engine(SmallConfig(),
                         std::make_unique<SarathiScheduler>(1024));
    engine.Run(MixedTrace());

    // Every miss inserts exactly one cache entry.
    EXPECT_EQ(engine.AttnCacheMisses(),
              static_cast<long>(engine.AttnCacheSize()));
    // The repetitive decode phases must mostly hit.
    EXPECT_GT(engine.AttnCacheHits(), engine.AttnCacheMisses());

    ReplicaSnapshot snap = engine.Snapshot();
    EXPECT_EQ(snap.attn_cache_entries,
              static_cast<long>(engine.AttnCacheSize()));
    EXPECT_EQ(snap.attn_cache_hits, engine.AttnCacheHits());
    EXPECT_EQ(snap.attn_cache_misses, engine.AttnCacheMisses());
}

}  // namespace
}  // namespace pod::serve
