/**
 * @file
 * Unit tests for the shared-prefix KV reuse subsystem
 * (docs/DESIGN.md S2.6): chained block hashing, the radix prefix
 * cache's match/insert/split/evict mechanics, the prefix-caching
 * allocator's admission accounting, and a randomized copy-on-write
 * oracle that audits every ledger invariant after every operation.
 */
#include "serve/prefix/prefix_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "serve/prefix/block_hash.h"
#include "serve/prefix/prefix_allocator.h"

namespace pod::serve::prefix {
namespace {

constexpr int kBlock = 16;

/** A request whose prompt is `segments`, sized to their sum. */
Request
SegmentedRequest(int id, std::vector<PromptSegment> segments,
                 int decode_tokens = 8)
{
    Request r;
    r.id = id;
    r.decode_tokens = decode_tokens;
    for (const PromptSegment& s : segments) r.prefill_tokens += s.tokens;
    r.prompt = std::move(segments);
    return r;
}

RequestState
QueuedState(const Request& r)
{
    RequestState state;
    state.request = r;
    return state;
}

// ---- block hashing ----

TEST(BlockHashTest, OpaquePromptHasNoHashes)
{
    Request r;
    r.prefill_tokens = 256;
    EXPECT_TRUE(BlockHashes(r, kBlock).empty());
}

TEST(BlockHashTest, OnlyFullBlocksAreHashed)
{
    Request r = SegmentedRequest(0, {{ContentId("sys", 1), 33}});
    EXPECT_EQ(BlockHashes(r, kBlock).size(), 2u);  // 33 = 2*16 + 1
    Request exact = SegmentedRequest(1, {{ContentId("sys", 1), 32}});
    EXPECT_EQ(BlockHashes(exact, kBlock).size(), 2u);
    Request tiny = SegmentedRequest(2, {{ContentId("sys", 1), 15}});
    EXPECT_TRUE(BlockHashes(tiny, kBlock).empty());
}

TEST(BlockHashTest, DeterministicAndSegmentationSensitive)
{
    Request a = SegmentedRequest(0, {{ContentId("sys", 1), 64}});
    EXPECT_EQ(BlockHashes(a, kBlock), BlockHashes(a, kBlock));

    // The same content id split at a different boundary is different
    // content (the segment list is the identity, not a byte stream).
    Request b = SegmentedRequest(
        1, {{ContentId("sys", 1), 32}, {ContentId("sys", 1), 32}});
    EXPECT_NE(BlockHashes(a, kBlock), BlockHashes(b, kBlock));
}

TEST(BlockHashTest, ChainingSharesExactlyTheCommonPrefix)
{
    uint64_t sys = ContentId("sys", 7);
    Request a = SegmentedRequest(0, {{sys, 64}, {ContentId("u", 1), 64}});
    Request b = SegmentedRequest(1, {{sys, 64}, {ContentId("u", 2), 64}});
    auto ha = BlockHashes(a, kBlock);
    auto hb = BlockHashes(b, kBlock);
    ASSERT_EQ(ha.size(), 8u);
    ASSERT_EQ(hb.size(), 8u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(ha[i], hb[i]);
    // Chaining keeps the streams distinct forever after divergence.
    for (int i = 4; i < 8; ++i) EXPECT_NE(ha[i], hb[i]);
}

TEST(BlockHashTest, SegmentSpanningBlockBoundary)
{
    // Same content either side of a block boundary must chain the
    // same whether it arrives as one segment or two aligned ones
    // is NOT required (segments are identities); but a single
    // segment's hash stream must be self-consistent under prefix
    // extension: a longer prompt extends, never rewrites.
    uint64_t sys = ContentId("sys", 3);
    Request shorter = SegmentedRequest(0, {{sys, 40}});
    Request longer =
        SegmentedRequest(1, {{sys, 40}, {ContentId("u", 9), 40}});
    auto hs = BlockHashes(shorter, kBlock);
    auto hl = BlockHashes(longer, kBlock);
    ASSERT_EQ(hs.size(), 2u);
    ASSERT_EQ(hl.size(), 5u);
    EXPECT_EQ(hs[0], hl[0]);
    EXPECT_EQ(hs[1], hl[1]);
}

TEST(BlockHashDeathTest, SegmentSumMustMatchPrefill)
{
    Request r = SegmentedRequest(0, {{ContentId("sys", 1), 64}});
    r.prefill_tokens = 65;  // segments sum to 64
    EXPECT_EXIT(BlockHashes(r, kBlock), ::testing::ExitedWithCode(1),
                "FATAL");
}

// ---- radix cache ----

/** Hash chain of `blocks` blocks, sharing content with others built
 * from the same ids. */
std::vector<uint64_t>
Chain(std::vector<uint64_t> content_ids, int blocks_per_segment = 4)
{
    std::vector<PromptSegment> segments;
    for (uint64_t id : content_ids) {
        segments.push_back({id, blocks_per_segment * kBlock});
    }
    static int next_id = 1000;
    Request r = SegmentedRequest(next_id++, std::move(segments));
    return BlockHashes(r, kBlock);
}

TEST(PrefixCacheTest, EmptyCacheMatchesNothing)
{
    PrefixCache cache;
    EXPECT_EQ(cache.MatchBlocks(Chain({ContentId("a", 1)}), 100), 0);
    EXPECT_EQ(cache.TotalBlocks(), 0);
    EXPECT_EQ(cache.EvictableBlocks(), 0);
    cache.CheckIntegrity();
}

TEST(PrefixCacheTest, InsertThenMatchAndCap)
{
    PrefixCache cache;
    auto h = Chain({ContentId("a", 1), ContentId("b", 1)});  // 8 blocks
    cache.InsertAndRef(1, h);
    EXPECT_EQ(cache.TotalBlocks(), 8);
    EXPECT_EQ(cache.RefBlocks(1), 8);
    EXPECT_EQ(cache.EvictableBlocks(), 0);  // referenced = not evictable
    EXPECT_EQ(cache.MatchBlocks(h, 100), 8);
    EXPECT_EQ(cache.MatchBlocks(h, 3), 3);  // cap respected mid-run
    cache.CheckIntegrity();
}

TEST(PrefixCacheTest, AcquireSplitsAtCoverageBoundary)
{
    PrefixCache cache;
    auto full = Chain({ContentId("a", 1), ContentId("b", 1)});
    cache.InsertAndRef(1, full);

    // A second request hits only the first 3 blocks: the 8-block run
    // splits, both halves keep request 1's reference, and the shared
    // gauge counts exactly the 3 doubly-held blocks.
    cache.Acquire(2, full, 3);
    EXPECT_EQ(cache.RefBlocks(2), 3);
    EXPECT_EQ(cache.Stats().shared_blocks, 3);
    EXPECT_EQ(cache.TotalBlocks(), 8);  // splits never change size
    cache.CheckIntegrity();

    cache.Release(2, full);
    EXPECT_EQ(cache.RefBlocks(2), 0);
    EXPECT_EQ(cache.Stats().shared_blocks, 0);
    cache.CheckIntegrity();
}

TEST(PrefixCacheTest, DivergingChainsShareThePrefixNodes)
{
    PrefixCache cache;
    uint64_t sys = ContentId("sys", 1);
    auto a = Chain({sys, ContentId("u", 1)});
    auto b = Chain({sys, ContentId("u", 2)});
    cache.InsertAndRef(1, a);
    cache.InsertAndRef(2, b);
    // 4 shared prefix blocks + two 4-block suffixes.
    EXPECT_EQ(cache.TotalBlocks(), 12);
    EXPECT_EQ(cache.Stats().shared_blocks, 4);
    EXPECT_EQ(cache.MatchBlocks(a, 100), 8);
    EXPECT_EQ(cache.MatchBlocks(b, 100), 8);
    cache.CheckIntegrity();
}

TEST(PrefixCacheTest, ReleaseMakesBlocksEvictableNotGone)
{
    PrefixCache cache;
    auto h = Chain({ContentId("a", 1)});
    cache.InsertAndRef(1, h);
    cache.Release(1, h);
    EXPECT_EQ(cache.TotalBlocks(), 4);
    EXPECT_EQ(cache.EvictableBlocks(), 4);
    EXPECT_EQ(cache.MatchBlocks(h, 100), 4);  // still a hit
    // Double release is a harmless no-op.
    cache.Release(1, h);
    cache.CheckIntegrity();
}

TEST(PrefixCacheTest, EvictLruTakesOldestDeadSubtreeFirst)
{
    PrefixCache cache;
    auto old_chain = Chain({ContentId("old", 1)});
    auto new_chain = Chain({ContentId("new", 1)});
    cache.InsertAndRef(1, old_chain);
    cache.InsertAndRef(2, new_chain);
    cache.Release(1, old_chain);
    cache.Release(2, new_chain);

    EXPECT_EQ(cache.EvictLru(1), 4);  // whole-run granularity
    EXPECT_EQ(cache.MatchBlocks(old_chain, 100), 0);  // oldest went
    EXPECT_EQ(cache.MatchBlocks(new_chain, 100), 4);
    EXPECT_EQ(cache.Stats().evicted_blocks, 4);
    cache.CheckIntegrity();

    // Nothing evictable -> eviction returns what it could free.
    cache.Acquire(3, new_chain, 4);
    EXPECT_EQ(cache.EvictLru(100), 0);
    cache.CheckIntegrity();
}

TEST(PrefixCacheTest, EvictionNeverTouchesReferencedPrefix)
{
    PrefixCache cache;
    uint64_t sys = ContentId("sys", 1);
    auto full = Chain({sys, ContentId("u", 1)});
    cache.InsertAndRef(1, full);
    cache.Release(1, full);
    // Re-reference only the 4-block prefix; the suffix stays dead.
    cache.Acquire(2, full, 4);
    EXPECT_EQ(cache.EvictableBlocks(), 4);
    EXPECT_EQ(cache.EvictLru(100), 4);  // only the suffix
    EXPECT_EQ(cache.MatchBlocks(full, 100), 4);
    EXPECT_EQ(cache.RefBlocks(2), 4);
    cache.CheckIntegrity();
}

TEST(PrefixCacheTest, InsertAfterPartialHitDedupsAndExtends)
{
    PrefixCache cache;
    uint64_t sys = ContentId("sys", 1);
    auto first = Chain({sys});                       // 4 blocks
    auto second = Chain({sys, ContentId("u", 2)});   // 8 blocks
    cache.InsertAndRef(1, first);

    // Request 2 admitted with a 4-block hit, then completes prefill.
    cache.Acquire(2, second, 4);
    PrefixCache::InsertResult result = cache.InsertAndRef(2, second);
    EXPECT_EQ(result.new_blocks, 4);    // its unique suffix
    EXPECT_EQ(result.dedup_blocks, 0);  // prefix was prior coverage
    EXPECT_EQ(cache.RefBlocks(2), 8);
    cache.CheckIntegrity();

    // Request 3 missed at admission (cold cache for it), but by
    // prefill completion request 2 already cached everything: all 8
    // blocks dedup.
    auto third = second;
    result = cache.InsertAndRef(3, third);
    EXPECT_EQ(result.new_blocks, 0);
    EXPECT_EQ(result.dedup_blocks, 8);
    cache.CheckIntegrity();
}

TEST(PrefixCacheDeathTest, DoubleAcquireIsFatal)
{
    PrefixCache cache;
    auto h = Chain({ContentId("a", 1)});
    cache.InsertAndRef(1, h);
    cache.Acquire(2, h, 2);
    EXPECT_EXIT(cache.Acquire(2, h, 2), ::testing::ExitedWithCode(1),
                "FATAL");
}

// ---- prefix-caching allocator ----

std::unique_ptr<PrefixCachingKvAllocator>
WatermarkAlloc(long total_blocks, double watermark = 0.0)
{
    return std::make_unique<PrefixCachingKvAllocator>(
        KvPolicy::kWatermark, total_blocks, kBlock, watermark,
        PreemptMode::kRecompute);
}

TEST(PrefixAllocatorTest, SecondAdmissionHitsTheCachedPrefix)
{
    auto alloc = WatermarkAlloc(64);
    uint64_t sys = ContentId("sys", 1);
    Request a = SegmentedRequest(1, {{sys, 64}, {ContentId("u", 1), 36}});
    Request b = SegmentedRequest(2, {{sys, 64}, {ContentId("u", 2), 36}});

    RequestState sa = QueuedState(a);
    ASSERT_TRUE(alloc->TryAdmit(sa));
    EXPECT_EQ(alloc->LastAdmitCachedTokens(), 0);  // cold cache
    EXPECT_EQ(alloc->Held(1), alloc->BlocksFor(100));
    sa.phase = Phase::kRunning;
    sa.prefilled = 100;
    alloc->OnPrefillComplete(sa);
    // 6 full blocks promoted to shared; the partial tail block stays
    // private.
    EXPECT_EQ(alloc->Cache().TotalBlocks(), 6);
    EXPECT_EQ(alloc->Held(1), alloc->BlocksFor(100) - 6);
    alloc->AuditLedger();

    RequestState sb = QueuedState(b);
    ASSERT_TRUE(alloc->TryAdmit(sb));
    // b shares the 4 system-prompt blocks; its 5th block diverges.
    EXPECT_EQ(alloc->LastAdmitCachedTokens(), 4 * kBlock);
    EXPECT_EQ(alloc->Held(2), alloc->BlocksFor(100) - 4);
    const PrefixCacheStats* stats = alloc->PrefixStats();
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->hits, 1);
    EXPECT_EQ(stats->misses, 1);
    EXPECT_EQ(stats->prefill_tokens_saved, 4 * kBlock);
    alloc->AuditLedger();

    // Both done: every block either returns to the pool or stays
    // cached at refcount 0.
    alloc->Release(1);
    alloc->Release(2);
    alloc->AuditLedger();
    EXPECT_EQ(alloc->FreeBlocks() + alloc->Cache().TotalBlocks(),
              alloc->TotalBlocks());
}

TEST(PrefixAllocatorTest, FullHitIsClampedToKeepOnePrefillToken)
{
    auto alloc = WatermarkAlloc(64);
    Request a = SegmentedRequest(1, {{ContentId("sys", 1), 64}});
    RequestState sa = QueuedState(a);
    ASSERT_TRUE(alloc->TryAdmit(sa));
    sa.prefilled = 64;
    alloc->OnPrefillComplete(sa);
    alloc->AuditLedger();

    // Identical prompt: all 4 blocks are cached, but the match is
    // clamped to 3 so at least one prompt token still prefills.
    Request b = a;
    b.id = 2;
    RequestState sb = QueuedState(b);
    ASSERT_TRUE(alloc->TryAdmit(sb));
    EXPECT_EQ(alloc->LastAdmitCachedTokens(), 3 * kBlock);
    EXPECT_GE(alloc->Held(2), 1);
    alloc->AuditLedger();
}

TEST(PrefixAllocatorTest, AdmissionGateEvictsDeadCacheBlocks)
{
    // Pool of 12 blocks. Request 1 fills 8 (prompt 96 = 6 blocks,
    // 2 decode blocks under watermark growth headroom), caches 6,
    // finishes. A second, unrelated prompt needing 10 blocks only
    // fits if the gate reclaims the dead cached blocks.
    auto alloc = WatermarkAlloc(12);
    Request a = SegmentedRequest(1, {{ContentId("sys", 1), 96}}, 16);
    RequestState sa = QueuedState(a);
    ASSERT_TRUE(alloc->TryAdmit(sa));
    sa.prefilled = 96;
    alloc->OnPrefillComplete(sa);
    alloc->Release(1);
    alloc->AuditLedger();
    EXPECT_EQ(alloc->Cache().TotalBlocks(), 6);
    ASSERT_EQ(alloc->FreeBlocks(), 6);

    Request b = SegmentedRequest(2, {{ContentId("other", 1), 160}}, 8);
    RequestState sb = QueuedState(b);
    ASSERT_TRUE(alloc->TryAdmit(sb));  // needs 10 of 12 blocks
    EXPECT_GE(alloc->PrefixStats()->evicted_blocks, 4);
    alloc->AuditLedger();
}

TEST(PrefixAllocatorTest, RecomputeReadmissionRematchesItsOwnBlocks)
{
    auto alloc = WatermarkAlloc(64);
    Request a = SegmentedRequest(1, {{ContentId("sys", 1), 96}}, 32);
    RequestState sa = QueuedState(a);
    ASSERT_TRUE(alloc->TryAdmit(sa));
    sa.phase = Phase::kRunning;
    sa.prefilled = 96;
    alloc->OnPrefillComplete(sa);
    sa.decoded = 8;
    alloc->AuditLedger();

    // Preempt: private blocks free, cache references drop, cached
    // blocks stay.
    alloc->Evict(sa, PreemptMode::kRecompute);
    sa.phase = Phase::kPreemptedRecompute;
    sa.recompute_extra = sa.decoded;
    sa.prefilled = 0;
    alloc->AuditLedger();
    EXPECT_EQ(alloc->Cache().TotalBlocks(), 6);
    EXPECT_EQ(alloc->Cache().EvictableBlocks(), 6);

    // Re-admission hits its own still-cached prompt.
    ASSERT_TRUE(alloc->TryAdmit(sa));
    EXPECT_EQ(alloc->LastAdmitCachedTokens(), 6 * kBlock);
    alloc->AuditLedger();

    // The re-run prefill completes again; promotion is idempotent.
    sa.phase = Phase::kRunning;
    sa.prefilled = sa.PrefillTarget();
    alloc->OnPrefillComplete(sa);
    alloc->AuditLedger();
    EXPECT_EQ(alloc->Cache().TotalBlocks(), 6);
}

TEST(PrefixAllocatorDeathTest, SwapPreemptionIsRejected)
{
    EXPECT_EXIT(PrefixCachingKvAllocator(KvPolicy::kWatermark, 64, kBlock,
                                         0.01, PreemptMode::kSwap),
                ::testing::ExitedWithCode(1), "FATAL");
    auto alloc = WatermarkAlloc(64);
    Request a = SegmentedRequest(1, {{ContentId("sys", 1), 64}});
    RequestState sa = QueuedState(a);
    ASSERT_TRUE(alloc->TryAdmit(sa));
    EXPECT_EXIT(alloc->Evict(sa, PreemptMode::kSwap),
                ::testing::ExitedWithCode(1), "FATAL");
}

// ---- randomized copy-on-write oracle ----

/**
 * Drives the watermark+prefix allocator through the full request
 * lifecycle with randomized shared-prefix prompts, preemptions and
 * cache churn on a small pool, auditing every cross-structure
 * invariant after every single operation: the pool ledger (private +
 * shared + free == capacity, no leak / double-free possible), the
 * radix tree's incremental counters, the cache-vs-shared-account
 * lockstep, and per-request coverage.
 */
TEST(PrefixCowOracleTest, RandomizedLifecycleNeverLeaksOrDoubleFrees)
{
    constexpr long kPool = 48;
    constexpr int kRequests = 40;
    constexpr int kSteps = 12000;

    Rng rng(0xC0117E57);
    auto alloc = WatermarkAlloc(kPool, 0.05);

    // Prompts: Zipf-ish choice over 3 shared system prompts (or a
    // unique preamble), plus a unique user tail. Sizes keep every
    // request well under the pool so CheckFits always passes.
    std::vector<RequestState> states;
    for (int i = 0; i < kRequests; ++i) {
        std::vector<PromptSegment> segments;
        int pick = static_cast<int>(rng.UniformInt(0, 3));
        int sys_tokens = 32 + 16 * pick;
        if (pick < 3) {
            segments.push_back({ContentId("sys", pick), sys_tokens});
        } else {
            segments.push_back({ContentId("uniq", i), sys_tokens});
        }
        segments.push_back({ContentId("user", i),
                            static_cast<int>(rng.UniformInt(8, 64))});
        Request r = SegmentedRequest(i, std::move(segments),
                                     rng.UniformInt(4, 48));
        states.push_back(QueuedState(r));
        alloc->CheckFits(states.back());
    }

    auto audit = [&]() {
        alloc->AuditLedger();
        long held = 0;
        for (const RequestState& s : states) {
            held += alloc->Held(s.request.id);
        }
        // Conservation: private + cached + free == capacity.
        ASSERT_EQ(held + alloc->Cache().TotalBlocks() +
                      alloc->FreeBlocks(),
                  alloc->TotalBlocks());
    };

    int finished = 0;
    long preemptions = 0;
    long admit_failures = 0;
    for (int step = 0; step < kSteps && finished < kRequests; ++step) {
        RequestState& s = states[static_cast<size_t>(
            rng.UniformInt(0, kRequests - 1))];
        if (s.Finished()) continue;

        if (s.phase == Phase::kQueued ||
            s.phase == Phase::kPreemptedRecompute) {
            if (alloc->TryAdmit(s)) {
                s.phase = Phase::kRunning;
                s.prefilled = alloc->LastAdmitCachedTokens();
            } else {
                ++admit_failures;
            }
        } else if (!s.PrefillDone()) {
            // Chunked prefill progress.
            s.prefilled = std::min(
                s.PrefillTarget(),
                s.prefilled + static_cast<int>(rng.UniformInt(8, 48)));
            if (s.PrefillDone()) alloc->OnPrefillComplete(s);
        } else if (rng.Bernoulli(0.1)) {
            // Random preemption, like the scheduler under pressure.
            alloc->Evict(s, PreemptMode::kRecompute);
            s.phase = Phase::kPreemptedRecompute;
            s.recompute_extra = s.decoded;
            s.prefilled = 0;
            ++preemptions;
        } else if (s.decoded < s.request.decode_tokens) {
            if (alloc->CanAppend(s)) {
                alloc->Append(s);
                ++s.decoded;
                if (s.decoded >= s.request.decode_tokens) {
                    alloc->Release(s.request.id);
                    s.phase = Phase::kFinished;
                    ++finished;
                }
            } else {
                // Stuck: evict someone running (maybe itself).
                std::vector<RequestState*> running;
                for (RequestState& v : states) {
                    if (v.Admitted()) running.push_back(&v);
                }
                ASSERT_FALSE(running.empty());
                RequestState* victim = running[static_cast<size_t>(
                    rng.UniformInt(0,
                                   static_cast<int>(running.size()) - 1))];
                alloc->Evict(*victim, PreemptMode::kRecompute);
                victim->phase = Phase::kPreemptedRecompute;
                victim->recompute_extra = victim->decoded;
                victim->prefilled = 0;
                ++preemptions;
            }
        }
        audit();
    }

    // The workload must actually have exercised the contended paths.
    EXPECT_GT(finished, kRequests / 2);
    EXPECT_GT(preemptions + admit_failures, 0);
    EXPECT_GT(alloc->PrefixStats()->hits, 0);

    // Drain everything still holding blocks.
    for (RequestState& s : states) {
        if (s.Admitted()) {
            alloc->Release(s.request.id);
            s.phase = Phase::kFinished;
        }
        audit();
    }
    // Only cached (refcount-0) blocks remain in use; all evictable.
    EXPECT_EQ(alloc->FreeBlocks() + alloc->Cache().TotalBlocks(),
              alloc->TotalBlocks());
    EXPECT_EQ(alloc->Cache().EvictableBlocks(),
              alloc->Cache().TotalBlocks());
}

/** Same oracle shape under the conservative base: no preemption, no
 * watermark, full up-front reservations. */
TEST(PrefixCowOracleTest, ConservativeBaseLifecycle)
{
    constexpr long kPool = 40;
    constexpr int kRequests = 24;
    Rng rng(0x5EED);
    PrefixCachingKvAllocator alloc(KvPolicy::kConservative, kPool, kBlock,
                                   0.0, PreemptMode::kRecompute);

    std::vector<RequestState> states;
    for (int i = 0; i < kRequests; ++i) {
        std::vector<PromptSegment> segments;
        segments.push_back({ContentId("sys", i % 2), 64});
        segments.push_back({ContentId("user", i),
                            static_cast<int>(rng.UniformInt(4, 40))});
        states.push_back(
            QueuedState(SegmentedRequest(i, std::move(segments),
                                         rng.UniformInt(2, 24))));
    }

    int finished = 0;
    int steps = 0;
    while (finished < kRequests && steps++ < 10000) {
        RequestState& s = states[static_cast<size_t>(
            rng.UniformInt(0, kRequests - 1))];
        if (s.Finished()) continue;
        if (s.phase == Phase::kQueued) {
            if (alloc.TryAdmit(s)) {
                s.phase = Phase::kRunning;
                s.prefilled = alloc.LastAdmitCachedTokens();
            }
        } else if (!s.PrefillDone()) {
            s.prefilled = s.PrefillTarget();
            alloc.OnPrefillComplete(s);
        } else {
            // Conservative reservations cover every decode token.
            ASSERT_TRUE(alloc.CanAppend(s));
            alloc.Append(s);
            if (++s.decoded >= s.request.decode_tokens) {
                alloc.Release(s.request.id);
                s.phase = Phase::kFinished;
                ++finished;
            }
        }
        alloc.AuditLedger();
        long held = 0;
        for (const RequestState& v : states) {
            held += alloc.Held(v.request.id);
        }
        ASSERT_EQ(held + alloc.Cache().TotalBlocks() + alloc.FreeBlocks(),
                  alloc.TotalBlocks());
    }
    EXPECT_EQ(finished, kRequests);
    EXPECT_GT(alloc.PrefixStats()->hits, 0);
}

}  // namespace
}  // namespace pod::serve::prefix
