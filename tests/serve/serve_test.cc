/**
 * @file
 * Unit tests for the serving substrate: KV accounting, traces,
 * schedulers and the engine's end-to-end behaviour (vLLM stalls vs
 * Sarathi stall-freedom, POD's improvement).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "serve/engine.h"
#include "serve/kv_allocator.h"
#include "serve/scheduler.h"
#include "serve/trace.h"

namespace pod::serve {
namespace {

// BlockKvManager unit tests live in tests/serve/kv_manager_test.cc;
// allocator-policy tests in tests/serve/preemption_test.cc.

TEST(TraceTest, UniformTrace)
{
    auto trace = UniformTrace(5, 1000, 100);
    ASSERT_EQ(trace.size(), 5u);
    for (const auto& r : trace) {
        EXPECT_EQ(r.prefill_tokens, 1000);
        EXPECT_EQ(r.decode_tokens, 100);
        EXPECT_DOUBLE_EQ(r.arrival_time, 0.0);
    }
}

TEST(TraceTest, PdRatioTrace)
{
    auto trace = PdRatioTrace(3, 16500, 10.0);
    for (const auto& r : trace) {
        EXPECT_NEAR(static_cast<double>(r.prefill_tokens) /
                        r.decode_tokens,
                    10.0, 0.5);
        EXPECT_NEAR(r.prefill_tokens + r.decode_tokens, 16500, 2);
    }
}

TEST(TraceTest, GeneratedStatisticsMatchSpec)
{
    Rng rng(7);
    WorkloadSpec spec = WorkloadSpec::Internal();
    auto trace = GenerateTrace(spec, 4000, 1.0, rng);
    double prefill_sum = 0.0;
    double decode_sum = 0.0;
    double prev_arrival = -1.0;
    for (const auto& r : trace) {
        prefill_sum += r.prefill_tokens;
        decode_sum += r.decode_tokens;
        EXPECT_GE(r.arrival_time, prev_arrival);
        prev_arrival = r.arrival_time;
        EXPECT_GE(r.prefill_tokens, spec.prefill_min);
        EXPECT_LE(r.prefill_tokens, spec.prefill_max);
    }
    // Clamping biases the means slightly; generous tolerances.
    EXPECT_NEAR(prefill_sum / 4000.0, spec.prefill_mean,
                spec.prefill_mean * 0.12);
    EXPECT_NEAR(decode_sum / 4000.0, spec.decode_mean,
                spec.decode_mean * 0.15);
    // Poisson at 1 QPS: ~4000 s span.
    EXPECT_NEAR(trace.back().arrival_time, 4000.0, 400.0);
}

TEST(TraceTest, SameSeedReproducesIdenticalTrace)
{
    // The cluster benches compare routers on "the same" trace; that
    // only means something if generation is bit-deterministic.
    WorkloadSpec spec = WorkloadSpec::Internal();
    Rng rng_a(42);
    Rng rng_b(42);
    auto trace_a = GenerateTrace(spec, 500, 2.0, rng_a);
    auto trace_b = GenerateTrace(spec, 500, 2.0, rng_b);
    ASSERT_EQ(trace_a.size(), trace_b.size());
    for (size_t i = 0; i < trace_a.size(); ++i) {
        EXPECT_EQ(trace_a[i].id, trace_b[i].id);
        EXPECT_EQ(trace_a[i].arrival_time, trace_b[i].arrival_time);
        EXPECT_EQ(trace_a[i].prefill_tokens, trace_b[i].prefill_tokens);
        EXPECT_EQ(trace_a[i].decode_tokens, trace_b[i].decode_tokens);
    }
}

TEST(TraceTest, DifferentSeedsChangeArrivals)
{
    WorkloadSpec spec = WorkloadSpec::Internal();
    Rng rng_a(42);
    Rng rng_b(43);
    auto trace_a = GenerateTrace(spec, 200, 2.0, rng_a);
    auto trace_b = GenerateTrace(spec, 200, 2.0, rng_b);
    int differing_arrivals = 0;
    for (size_t i = 0; i < trace_a.size(); ++i) {
        if (trace_a[i].arrival_time != trace_b[i].arrival_time) {
            ++differing_arrivals;
        }
    }
    // Poisson gaps from distinct streams: essentially all differ.
    EXPECT_GT(differing_arrivals, 150);
}

TEST(TraceTest, ArxivHasMoreDecodes)
{
    Rng rng(8);
    auto internal =
        GenerateTrace(WorkloadSpec::Internal(), 2000, 0.0, rng);
    auto arxiv = GenerateTrace(WorkloadSpec::Arxiv(), 2000, 0.0, rng);
    double internal_decode = 0.0;
    double arxiv_decode = 0.0;
    for (const auto& r : internal) internal_decode += r.decode_tokens;
    for (const auto& r : arxiv) arxiv_decode += r.decode_tokens;
    // Paper: arXiv has ~42% more decode tokens per request.
    EXPECT_GT(arxiv_decode / internal_decode, 1.2);
}

// ---- scheduler unit tests ----

std::vector<RequestState>
MakeStates(const std::vector<Request>& requests)
{
    std::vector<RequestState> states(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        states[i].request = requests[i];
    }
    return states;
}

TEST(VllmSchedulerTest, PrefillPriorityPausesDecodes)
{
    ConservativeKvAllocator kv(100000, 16);
    auto states = MakeStates(UniformTrace(2, 1000, 10));
    VllmScheduler sched;

    // First iteration: both prompts prefill together (whole prompts).
    SchedulingDecision d1 = sched.Next(0.0, states, kv, 0);
    EXPECT_EQ(d1.admissions.size(), 2u);
    ASSERT_EQ(d1.batch.prefills.size(), 2u);
    EXPECT_EQ(d1.batch.prefills[0].chunk_len, 1000);
    EXPECT_TRUE(d1.batch.decodes.empty());
    states[0].prefilled = 1000;
    states[0].decoded = 1;
    states[1].prefilled = 1000;
    states[1].decoded = 1;

    // Now decodes run...
    ScheduledBatch b2 = sched.Next(1.0, states, kv, 0).batch;
    EXPECT_TRUE(b2.prefills.empty());
    EXPECT_EQ(b2.decodes.size(), 2u);

    // ...until a new request arrives: prefill preempts decodes.
    states.push_back(RequestState{});
    states.back().request = Request{2, 0.5, 800, 10, {}, -1, 0};
    ScheduledBatch b3 = sched.Next(2.0, states, kv, 0).batch;
    ASSERT_EQ(b3.prefills.size(), 1u);
    EXPECT_EQ(b3.prefills[0].chunk_len, 800);
    EXPECT_TRUE(b3.decodes.empty());  // the generation stall
}

TEST(SarathiSchedulerTest, BudgetSharedBetweenDecodesAndChunk)
{
    ConservativeKvAllocator kv(100000, 16);
    auto states = MakeStates(UniformTrace(3, 2000, 50));
    // Requests 1,2 already decoding; request 0 waiting to prefill.
    states[1].prefilled = 2000;
    states[1].decoded = 1;
    states[2].prefilled = 2000;
    states[2].decoded = 5;
    SarathiScheduler sched(512);

    ScheduledBatch batch = sched.Next(0.0, states, kv, 0).batch;
    EXPECT_EQ(batch.decodes.size(), 2u);
    ASSERT_EQ(batch.prefills.size(), 1u);
    // Chunk fills the remaining budget: 512 - 2 decodes.
    EXPECT_EQ(batch.prefills[0].chunk_len, 510);
    EXPECT_EQ(batch.TotalTokens(), 512);
}

TEST(SarathiSchedulerTest, MultipleChunksFillBudget)
{
    ConservativeKvAllocator kv(100000, 16);
    auto states = MakeStates(UniformTrace(3, 300, 10));
    SarathiScheduler sched(1024);
    ScheduledBatch batch = sched.Next(0.0, states, kv, 0).batch;
    // 300+300+300 = 900 <= 1024: all three prompts chunk in.
    EXPECT_EQ(batch.prefills.size(), 3u);
    EXPECT_EQ(batch.TotalTokens(), 900);
}

TEST(SarathiSchedulerTest, AdmissionBlocksOnKv)
{
    // Pool fits only the first request (prompt+decode reservation).
    ConservativeKvAllocator kv(70, 16);  // 1120 tokens
    auto states = MakeStates(UniformTrace(2, 1000, 100));
    SarathiScheduler sched(512);
    SchedulingDecision decision = sched.Next(0.0, states, kv, 0);
    EXPECT_TRUE(states[0].Admitted());
    EXPECT_FALSE(states[1].Admitted());
    ASSERT_EQ(decision.admissions.size(), 1u);
    ASSERT_EQ(decision.batch.prefills.size(), 1u);
    EXPECT_EQ(decision.batch.prefills[0].req_index, 0);
}

TEST(SchedulerTest, FutureArrivalsInvisible)
{
    ConservativeKvAllocator kv(100000, 16);
    std::vector<Request> reqs = UniformTrace(1, 100, 10);
    reqs[0].arrival_time = 50.0;
    auto states = MakeStates(reqs);
    SarathiScheduler sched(512);
    EXPECT_TRUE(sched.Next(0.0, states, kv, 0).batch.Empty());
    EXPECT_FALSE(sched.Next(50.0, states, kv, 0).batch.Empty());
}

// ---- engine end-to-end tests ----

ServingConfig
SmallConfig(core::Backend backend)
{
    ServingConfig config;
    config.model = model::ModelConfig::Llama3_8B();
    config.tensor_parallel = 2;
    config.backend = backend;
    return config;
}

TEST(ServingEngineTest, CompletesAllRequests)
{
    ServingEngine engine(SmallConfig(core::Backend::kFaSerial),
                         std::make_unique<SarathiScheduler>(512));
    MetricsReport report = engine.Run(UniformTrace(4, 4096, 64));
    EXPECT_EQ(report.num_requests, 4);
    EXPECT_GT(report.makespan, 0.0);
    EXPECT_GT(report.iterations, 0);
    EXPECT_EQ(report.ttft.Count(), 4u);
    EXPECT_EQ(report.latency.Count(), 4u);
    // 4 requests x 63 post-first tokens of TBT samples.
    EXPECT_EQ(report.tbt.Count(), 4u * 63u);
    EXPECT_GT(report.requests_per_minute, 0.0);
}

TEST(ServingEngineTest, TokenConservation)
{
    ServingEngine engine(SmallConfig(core::Backend::kFaSerial),
                         std::make_unique<SarathiScheduler>(256));
    auto trace = UniformTrace(3, 2000, 32);
    MetricsReport report = engine.Run(trace);
    double expected_tokens = 3.0 * (2000.0 + 32.0 - 1.0);
    EXPECT_NEAR(report.mean_batch_tokens * report.iterations,
                expected_tokens, 1.0);
}

TEST(ServingEngineTest, VllmStallsSarathiDoesNot)
{
    Rng rng(11);
    auto trace = GenerateTrace(WorkloadSpec::Internal(), 12, 0.3, rng);

    ServingEngine vllm(SmallConfig(core::Backend::kFaSerial),
                       std::make_unique<VllmScheduler>());
    MetricsReport vllm_report = vllm.Run(trace);

    ServingEngine sarathi(SmallConfig(core::Backend::kFaSerial),
                          std::make_unique<SarathiScheduler>(1024));
    MetricsReport sarathi_report = sarathi.Run(trace);

    // vLLM: most requests see a stall; Sarathi: almost none
    // (paper S5.3.2).
    EXPECT_GT(vllm_report.frac_stalled_200ms, 0.5);
    EXPECT_LT(sarathi_report.frac_stalled_200ms, 0.2);
    // vLLM achieves lower median TTFT.
    EXPECT_LT(vllm_report.ttft.Median(), sarathi_report.ttft.Median());
    // Sarathi's worst-case TBT is far below vLLM's multi-second
    // generation stalls.
    EXPECT_LT(sarathi_report.tbt.Max(), vllm_report.tbt.Max() * 0.5);
}

TEST(ServingEngineTest, PodImprovesSarathi)
{
    auto trace = UniformTrace(8, 16384, 128);
    ServingEngine sarathi(SmallConfig(core::Backend::kFaSerial),
                          std::make_unique<SarathiScheduler>(1024));
    MetricsReport base = sarathi.Run(trace);
    ServingEngine pod(SmallConfig(core::Backend::kPod),
                      std::make_unique<SarathiScheduler>(1024));
    MetricsReport boosted = pod.Run(trace);
    EXPECT_GT(boosted.requests_per_minute, base.requests_per_minute);
    EXPECT_LE(boosted.tbt.Percentile(99), base.tbt.Percentile(99) * 1.05);
}

TEST(ServingEngineTest, AttnCacheReused)
{
    ServingEngine engine(SmallConfig(core::Backend::kFaSerial),
                         std::make_unique<SarathiScheduler>(512));
    engine.Run(UniformTrace(6, 4096, 128));
    // Far fewer cache entries than iterations.
    EXPECT_LT(engine.AttnCacheSize(), 400u);
    EXPECT_GT(engine.AttnCacheSize(), 0u);
}

TEST(ServingEngineTest, AttnCacheDisabledIsBitIdenticalAndEmpty)
{
    // The cache memoizes a pure function of the *bucketed* signature
    // (bucketing happens before the lookup), so disabling it may only
    // cost time, never change a result — the invariant that makes the
    // cache's value measurable (BM_ServeMemoCache) without a fidelity
    // trade.
    auto trace = UniformTrace(6, 4096, 96);
    ServingEngine cached(SmallConfig(core::Backend::kFaSerial),
                         std::make_unique<SarathiScheduler>(512));
    MetricsReport with_cache = cached.Run(trace);

    ServingConfig config = SmallConfig(core::Backend::kFaSerial);
    config.attn_cache_enabled = false;
    ServingEngine uncached(config,
                           std::make_unique<SarathiScheduler>(512));
    MetricsReport without_cache = uncached.Run(trace);

    EXPECT_EQ(with_cache.makespan, without_cache.makespan);
    EXPECT_EQ(with_cache.iterations, without_cache.iterations);
    EXPECT_EQ(with_cache.mean_batch_tokens,
              without_cache.mean_batch_tokens);
    EXPECT_EQ(with_cache.ttft.Sum(), without_cache.ttft.Sum());
    EXPECT_EQ(with_cache.tbt.Sum(), without_cache.tbt.Sum());
    EXPECT_EQ(with_cache.latency.Sum(), without_cache.latency.Sum());

    // Off = no entries, no hits; every lookup is a simulation (miss).
    EXPECT_EQ(uncached.AttnCacheSize(), 0u);
    EXPECT_EQ(uncached.AttnCacheHits(), 0);
    EXPECT_EQ(uncached.AttnCacheMisses(),
              cached.AttnCacheHits() + cached.AttnCacheMisses());
}

TEST(ServingEngineTest, StepLoopBitIdenticalToRun)
{
    // The Step() extraction must not perturb Run(): driving an
    // identical engine iteration-by-iteration over a fixed-seed trace
    // reproduces Run()'s metrics bit-for-bit.
    Rng rng(123);
    auto trace = GenerateTrace(WorkloadSpec::Internal(), 10, 0.5, rng);

    ServingEngine run_engine(SmallConfig(core::Backend::kFaSerial),
                             std::make_unique<SarathiScheduler>(512));
    MetricsReport run_report = run_engine.Run(trace);

    ServingEngine step_engine(SmallConfig(core::Backend::kFaSerial),
                              std::make_unique<SarathiScheduler>(512));
    auto sorted = trace;
    std::sort(sorted.begin(), sorted.end(), ArrivalOrder);
    step_engine.Reset();
    for (const auto& request : sorted) step_engine.Submit(request);
    while (!step_engine.Done()) step_engine.Step();
    MetricsReport step_report = step_engine.Report();

    // Exact equality, not EXPECT_NEAR: both paths must execute the
    // same float operations in the same order.
    EXPECT_EQ(run_report.makespan, step_report.makespan);
    EXPECT_EQ(run_report.iterations, step_report.iterations);
    EXPECT_EQ(run_report.mean_batch_tokens, step_report.mean_batch_tokens);
    ASSERT_EQ(run_report.ttft.Count(), step_report.ttft.Count());
    for (size_t i = 0; i < run_report.ttft.Samples().size(); ++i) {
        EXPECT_EQ(run_report.ttft.Samples()[i],
                  step_report.ttft.Samples()[i]);
    }
    ASSERT_EQ(run_report.tbt.Count(), step_report.tbt.Count());
    EXPECT_EQ(run_report.tbt.Sum(), step_report.tbt.Sum());
    EXPECT_EQ(run_report.latency.Sum(), step_report.latency.Sum());
}

TEST(ServingEngineTest, SnapshotTracksQueueAndKv)
{
    ServingEngine engine(SmallConfig(core::Backend::kFaSerial),
                         std::make_unique<SarathiScheduler>(512));
    ReplicaSnapshot empty = engine.Snapshot();
    EXPECT_EQ(empty.submitted, 0);
    EXPECT_EQ(empty.outstanding, 0);
    EXPECT_EQ(empty.kv_utilization, 0.0);
    EXPECT_GT(empty.kv_total_blocks, 0);

    Request request{0, 0.0, 4096, 64, {}, -1, 0};
    engine.Submit(request);
    ReplicaSnapshot queued = engine.Snapshot();
    EXPECT_EQ(queued.submitted, 1);
    EXPECT_EQ(queued.waiting, 1);
    EXPECT_EQ(queued.running, 0);
    EXPECT_EQ(queued.outstanding, 1);
    EXPECT_EQ(queued.prefill_tokens_pending, 4096);
    // Not yet admitted: pressure counts the future reservation,
    // utilization does not.
    EXPECT_EQ(queued.kv_utilization, 0.0);
    EXPECT_GT(queued.kv_pressure, 0.0);

    StepResult first = engine.Step();
    EXPECT_TRUE(first.progressed);
    EXPECT_EQ(first.batch_tokens, 512);
    ReplicaSnapshot running = engine.Snapshot();
    EXPECT_EQ(running.waiting, 0);
    EXPECT_EQ(running.running, 1);
    EXPECT_GT(running.kv_utilization, 0.0);
    EXPECT_EQ(running.prefill_tokens_pending, 4096 - 512);
    EXPECT_EQ(running.iterations, 1);

    while (!engine.Done()) engine.Step();
    ReplicaSnapshot done = engine.Snapshot();
    EXPECT_EQ(done.finished, 1);
    EXPECT_EQ(done.outstanding, 0);
    EXPECT_EQ(done.kv_utilization, 0.0);  // blocks freed
    EXPECT_EQ(engine.NextEventTime(),
              std::numeric_limits<double>::infinity());
}

TEST(MetricsTest, ZeroRequestRunIsFiniteZeros)
{
    // An idle replica in a cluster produces an empty report; nothing
    // may divide by zero or emit NaN.
    MetricsReport report = CollectMetrics({}, 0.0, 0, 0.0);
    EXPECT_EQ(report.num_requests, 0);
    EXPECT_EQ(report.requests_per_minute, 0.0);
    EXPECT_EQ(report.mean_batch_tokens, 0.0);
    EXPECT_EQ(report.frac_stalled_200ms, 0.0);
    EXPECT_TRUE(std::isfinite(report.ttft.Percentile(50)));
    EXPECT_TRUE(std::isfinite(report.ttft.Percentile(99)));
    EXPECT_TRUE(std::isfinite(report.tbt.Percentile(99)));
    EXPECT_TRUE(std::isfinite(report.latency.Mean()));
    EXPECT_TRUE(std::isfinite(report.tbt.Stddev()));
}

TEST(MetricsTest, SingleRequestRunIsFinite)
{
    std::vector<RequestState> states(1);
    states[0].request = Request{0, 0.0, 100, 1, {}, -1, 0};
    states[0].prefilled = 100;
    states[0].decoded = 1;
    states[0].phase = Phase::kFinished;
    states[0].first_token_time = 0.5;
    states[0].last_token_time = 0.5;
    states[0].finish_time = 0.5;
    MetricsReport report = CollectMetrics(states, 0.5, 3, 101.0);
    EXPECT_EQ(report.num_requests, 1);
    EXPECT_TRUE(std::isfinite(report.requests_per_minute));
    EXPECT_GT(report.requests_per_minute, 0.0);
    // One TTFT sample, zero TBT samples: percentiles interpolate over
    // a single point / an empty set without NaN.
    EXPECT_EQ(report.ttft.Count(), 1u);
    EXPECT_EQ(report.tbt.Count(), 0u);
    EXPECT_EQ(report.ttft.Percentile(50), 0.5);
    EXPECT_EQ(report.ttft.Percentile(99), 0.5);
    EXPECT_TRUE(std::isfinite(report.tbt.Percentile(99)));
    EXPECT_TRUE(std::isfinite(report.frac_stalled_200ms));
}

TEST(ServingConfigTest, KvCapacityPositiveAndScales)
{
    ServingConfig tp1 = SmallConfig(core::Backend::kFaSerial);
    tp1.tensor_parallel = 1;
    ServingConfig tp2 = SmallConfig(core::Backend::kFaSerial);
    long cap1 = tp1.KvTokenCapacity();
    long cap2 = tp2.KvTokenCapacity();
    EXPECT_GT(cap1, 100000);
    // TP-2 halves weights and halves per-token KV: capacity grows.
    EXPECT_GT(cap2, cap1);
}

}  // namespace
}  // namespace pod::serve
