/**
 * @file
 * Unit tests for the console table / CSV writer.
 */
#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace pod {
namespace {

TEST(Table, PrintAligned)
{
    Table t({"name", "value"});
    t.AddRow({"alpha", "1"});
    t.AddRow({"b", "22"});
    std::ostringstream os;
    t.Print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.RowCount(), 2u);
}

TEST(Table, Csv)
{
    Table t({"a", "b"});
    t.AddRow({"x,y", "plain"});
    std::ostringstream os;
    t.PrintCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",plain\n");
}

TEST(Table, CsvQuoteEscaping)
{
    Table t({"a"});
    t.AddRow({"say \"hi\""});
    std::ostringstream os;
    t.PrintCsv(os);
    EXPECT_EQ(os.str(), "a\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::Num(2.0, 0), "2");
    EXPECT_EQ(Table::Int(42), "42");
    EXPECT_EQ(Table::Int(-7), "-7");
    EXPECT_EQ(Table::Pct(0.123, 1), "12.3%");
}

}  // namespace
}  // namespace pod
