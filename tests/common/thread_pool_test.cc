/**
 * @file
 * Tests for the fork/join worker pool behind the parallel cluster
 * engine: the barrier contract (every task of an epoch completes
 * before ParallelFor returns, and epochs never overlap), exception
 * propagation from workers, pool reuse across many epochs, the
 * degenerate zero-task / one-task / one-thread paths, and the
 * work-stealing ParallelForTasks contract (requeue until done, one
 * execution of an index at a time, LPT seeding, steal accounting).
 * This file is part of the TSan CI net (`common.` filter).
 */
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pod {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(97);
        for (auto& h : hits) h.store(0);
        pool.ParallelFor(97, [&](int i) {
            hits[static_cast<size_t>(i)].fetch_add(1);
        });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPoolTest, BarrierCompletesEpochBeforeReturning)
{
    // The determinism-critical property (docs/DESIGN.md S8): when
    // ParallelFor returns, every task has fully executed and its
    // writes are visible to the caller — so a later epoch can never
    // observe or race a predecessor's in-flight task.
    ThreadPool pool(4);
    std::vector<int> values(64, 0);  // plain ints: visibility is the
                                     // barrier's job, not atomics'
    for (int epoch = 1; epoch <= 8; ++epoch) {
        pool.ParallelFor(64, [&, epoch](int i) {
            // Each task sees the *previous* epoch fully applied.
            EXPECT_EQ(values[static_cast<size_t>(i)], epoch - 1);
            values[static_cast<size_t>(i)] = epoch;
        });
        long sum = std::accumulate(values.begin(), values.end(), 0l);
        EXPECT_EQ(sum, 64l * epoch);
    }
}

TEST(ThreadPoolTest, TaskOrderWithinOneThreadIsIndexOrder)
{
    // With a single executing thread the claim order is the index
    // order — the inline degenerate path the serial engines rely on.
    ThreadPool pool(1);
    std::vector<int> order;
    pool.ParallelFor(16, [&](int i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, PropagatesWorkerExceptionAndStaysUsable)
{
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.ParallelFor(32,
                         [&](int i) {
                             if (i == 7) {
                                 throw std::runtime_error("task 7");
                             }
                             completed.fetch_add(1);
                         }),
        std::runtime_error);
    // The failing epoch still ran its other tasks to the barrier...
    EXPECT_EQ(completed.load(), 31);
    // ...and the pool is reusable afterwards.
    std::atomic<int> after{0};
    pool.ParallelFor(8, [&](int) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPoolTest, PropagatesExceptionFromInlinePath)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.ParallelFor(
                     4, [](int) { throw std::logic_error("inline"); }),
                 std::logic_error);
}

TEST(ThreadPoolTest, ReuseAcrossManyEpochsIsDeterministic)
{
    // A simulation issues hundreds of thousands of barriers on one
    // pool; accumulate a per-slot sum over many epochs and check the
    // closed form — any lost wakeup, double-claim or skipped index
    // breaks it.
    ThreadPool pool(4);
    constexpr int kSlots = 33;
    constexpr int kEpochs = 500;
    std::vector<long> sums(kSlots, 0);
    for (int e = 0; e < kEpochs; ++e) {
        pool.ParallelFor(kSlots, [&](int i) {
            sums[static_cast<size_t>(i)] += i + 1;
        });
    }
    for (int i = 0; i < kSlots; ++i) {
        EXPECT_EQ(sums[static_cast<size_t>(i)],
                  static_cast<long>(kEpochs) * (i + 1));
    }
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.ParallelFor(0, [&](int) { ran = true; });
    EXPECT_FALSE(ran);
    pool.ParallelFor(-3, [&](int) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleTaskRunsInlineOnCaller)
{
    ThreadPool pool(4);
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.ParallelFor(1, [&](int) { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, MoreThreadsThanTasks)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(3, [&](int i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ResolveThreadsClampsToHardware)
{
    EXPECT_EQ(ThreadPool::ResolveThreads(3), 3);
    EXPECT_GE(ThreadPool::ResolveThreads(0), 1);
    EXPECT_GE(ThreadPool::ResolveThreads(-1), 1);
}

TEST(ThreadPoolTest, RejectsNonPositiveThreadCount)
{
    EXPECT_DEATH(ThreadPool(0), "at least one thread");
}

TEST(ThreadPoolTest, ProfilingCountsTasksAndBusyTime)
{
    ThreadPool pool(4);
    pool.EnableProfiling(true);
    std::atomic<long> total{0};
    pool.ParallelFor(64, [&](int i) { total.fetch_add(i); });
    pool.ParallelFor(64, [&](int i) { total.fetch_add(i); });

    const auto& profile = pool.Profile();
    ASSERT_EQ(profile.size(), 4u);
    long tasks = 0;
    for (const auto& stat : profile) {
        tasks += stat.tasks;
        EXPECT_GE(stat.busy, 0.0);
        EXPECT_GE(stat.barrier_wait, 0.0);
    }
    EXPECT_EQ(tasks, 128);

    pool.ResetProfile();
    for (const auto& stat : pool.Profile()) {
        EXPECT_EQ(stat.tasks, 0);
        EXPECT_DOUBLE_EQ(stat.busy, 0.0);
        EXPECT_DOUBLE_EQ(stat.barrier_wait, 0.0);
    }
}

TEST(ThreadPoolTest, ProfilingAttributesBarrierWaitToFastThreads)
{
    // One deliberately slow task: the other executing threads finish
    // their (empty) share early and must be charged barrier-wait time
    // roughly matching the straggler — the measurement the ROADMAP
    // work-stealing item needs.
    ThreadPool pool(2);
    pool.EnableProfiling(true);
    pool.ParallelFor(2, [&](int i) {
        if (i == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });
    const auto& profile = pool.Profile();
    ASSERT_EQ(profile.size(), 2u);
    double total_busy = 0.0;
    double total_wait = 0.0;
    for (const auto& stat : profile) {
        total_busy += stat.busy;
        total_wait += stat.barrier_wait;
    }
    // The straggler contributes >= 20 ms busy; the other thread waits
    // for it (timing slop keeps the bound loose).
    EXPECT_GE(total_busy, 0.015);
    EXPECT_GE(total_wait, 0.010);
}

TEST(ThreadPoolTest, ProfilingOffRecordsNothing)
{
    ThreadPool pool(2);
    pool.ParallelFor(8, [](int) {});
    for (const auto& stat : pool.Profile()) {
        EXPECT_EQ(stat.tasks, 0);
        EXPECT_DOUBLE_EQ(stat.busy, 0.0);
        EXPECT_DOUBLE_EQ(stat.barrier_wait, 0.0);
    }
}

TEST(ThreadPoolTest, ProfilingInlinePathChargesCaller)
{
    ThreadPool pool(1);
    pool.EnableProfiling(true);
    pool.ParallelFor(5, [](int) {});
    const auto& profile = pool.Profile();
    ASSERT_EQ(profile.size(), 1u);
    EXPECT_EQ(profile[0].tasks, 5);
    EXPECT_GE(profile[0].busy, 0.0);
}

// ---- ParallelForTasks (work-stealing mode) ----

/** Seeds with uniform estimates for n indices. */
std::vector<ThreadPool::SeededTask>
UniformSeeds(int n, double estimate = 1.0)
{
    std::vector<ThreadPool::SeededTask> seeds;
    for (int i = 0; i < n; ++i) seeds.push_back({i, estimate});
    return seeds;
}

TEST(ThreadPoolTest, TasksRequeueUntilDoneExactExecutionCounts)
{
    // The requeue contract: task(i) runs once per slice until it
    // returns true — here index i needs (i % 5) + 1 slices, at every
    // thread count including the inline path.
    constexpr int kTasks = 23;
    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> runs(kTasks);
        for (auto& r : runs) r.store(0);
        pool.ParallelForTasks(UniformSeeds(kTasks), [&](int i) {
            const int nth =
                runs[static_cast<size_t>(i)].fetch_add(1) + 1;
            return nth == (i % 5) + 1;
        });
        for (int i = 0; i < kTasks; ++i) {
            EXPECT_EQ(runs[static_cast<size_t>(i)].load(),
                      (i % 5) + 1)
                << "index " << i << " with " << threads << " threads";
        }
    }
}

TEST(ThreadPoolTest, TasksSlicesOfOneIndexNeverOverlap)
{
    // The determinism-critical half of the contract: one index is
    // never executed by two threads at once — a task exists exactly
    // once in the system (queued or executing), so its slice sequence
    // is serialized even when it migrates between threads. The
    // in-flight flag would trip (and TSan would flag the handoff) if
    // a requeued slice could overlap its successor.
    constexpr int kTasks = 12;
    constexpr int kSlices = 200;
    ThreadPool pool(4);
    std::vector<std::atomic<bool>> in_flight(kTasks);
    std::vector<std::atomic<int>> runs(kTasks);
    for (auto& f : in_flight) f.store(false);
    for (auto& r : runs) r.store(0);
    std::atomic<int> overlaps{0};
    pool.ParallelForTasks(UniformSeeds(kTasks), [&](int i) {
        const auto s = static_cast<size_t>(i);
        if (in_flight[s].exchange(true)) overlaps.fetch_add(1);
        const int nth = runs[s].fetch_add(1) + 1;
        in_flight[s].store(false);
        return nth == kSlices;
    });
    EXPECT_EQ(overlaps.load(), 0);
    for (const auto& r : runs) EXPECT_EQ(r.load(), kSlices);
}

TEST(ThreadPoolTest, TasksInlinePathRunsInSeededLptOrder)
{
    // One thread: tasks run to completion one after another in
    // descending-estimate order, ties keeping caller order.
    ThreadPool pool(1);
    std::vector<int> order;
    pool.ParallelForTasks(
        {{0, 1.0}, {1, 5.0}, {2, 3.0}, {3, 3.0}},
        [&](int i) {
            order.push_back(i);
            return order.size() % 2 == 0;  // every task takes 2 slices
        });
    const std::vector<int> expected = {1, 1, 2, 2, 3, 3, 0, 0};
    EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, TasksPropagateExceptionAndNeverRequeueThrower)
{
    ThreadPool pool(3);
    constexpr int kTasks = 16;
    std::vector<std::atomic<int>> runs(kTasks);
    for (auto& r : runs) r.store(0);
    EXPECT_THROW(
        pool.ParallelForTasks(
            UniformSeeds(kTasks),
            [&](int i) {
                const int nth =
                    runs[static_cast<size_t>(i)].fetch_add(1) + 1;
                if (i == 7 && nth == 2) {
                    throw std::runtime_error("slice 2 of task 7");
                }
                return nth == 3;
            }),
        std::runtime_error);
    // The thrower stopped at its throwing slice (counts as finished,
    // never requeued); every other task still ran all 3 slices.
    for (int i = 0; i < kTasks; ++i) {
        EXPECT_EQ(runs[static_cast<size_t>(i)].load(), i == 7 ? 2 : 3);
    }
    // The pool stays reusable.
    std::atomic<int> after{0};
    pool.ParallelForTasks(UniformSeeds(8), [&](int) {
        after.fetch_add(1);
        return true;
    });
    EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPoolTest, TasksExceptionFromInlinePathPropagates)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.ParallelForTasks(
                     UniformSeeds(4),
                     [](int) -> bool {
                         throw std::logic_error("inline slice");
                     }),
                 std::logic_error);
}

TEST(ThreadPoolTest, TasksZeroIsANoOpAndSingleRunsInline)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.ParallelForTasks({}, [&](int) {
        ran = true;
        return true;
    });
    EXPECT_FALSE(ran);

    std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    int slices = 0;
    pool.ParallelForTasks({{5, 2.0}}, [&](int i) {
        EXPECT_EQ(i, 5);
        ran_on = std::this_thread::get_id();
        return ++slices == 3;
    });
    EXPECT_EQ(ran_on, caller);
    EXPECT_EQ(slices, 3);
}

TEST(ThreadPoolTest, TasksZeroEstimatesStillCompleteEverywhere)
{
    // All-zero estimates exercise the seeding floor (spread instead
    // of piling onto one deque); correctness must not care.
    ThreadPool pool(4);
    constexpr int kTasks = 31;
    std::vector<std::atomic<int>> runs(kTasks);
    for (auto& r : runs) r.store(0);
    pool.ParallelForTasks(UniformSeeds(kTasks, 0.0), [&](int i) {
        return runs[static_cast<size_t>(i)].fetch_add(1) + 1 == 2;
    });
    for (const auto& r : runs) EXPECT_EQ(r.load(), 2);
}

TEST(ThreadPoolTest, TasksReuseAcrossManyEpochsIsDeterministic)
{
    // The stealing analogue of the 500-epoch ParallelFor test: shared
    // non-atomic state per index, mutated across requeued slices and
    // epochs — the barrier plus the one-execution-at-a-time contract
    // make this safe, and TSan verifies the handoffs.
    ThreadPool pool(4);
    constexpr int kSlots = 17;
    constexpr int kEpochs = 250;
    std::vector<long> sums(kSlots, 0);
    std::vector<int> slices(kSlots, 0);
    for (int e = 0; e < kEpochs; ++e) {
        std::vector<ThreadPool::SeededTask> seeds;
        for (int i = 0; i < kSlots; ++i) {
            seeds.push_back({i, static_cast<double>(kSlots - i)});
        }
        pool.ParallelForTasks(seeds, [&](int i) {
            const auto s = static_cast<size_t>(i);
            sums[s] += i + 1;
            return ++slices[s] % 3 == 0;  // 3 slices per epoch
        });
    }
    for (int i = 0; i < kSlots; ++i) {
        EXPECT_EQ(sums[static_cast<size_t>(i)],
                  3l * kEpochs * (i + 1));
    }
}

TEST(ThreadPoolTest, TasksStealWhenOwnDequeEmpties)
{
    // Deterministic steal setup with 2 threads and estimates
    // {10, 9, 8}: LPT packs deque0 = [t0], deque1 = [t1, t2]. The
    // thread that runs t1 blocks until t2 has executed — which can
    // only happen if the other thread, its own deque drained, steals
    // t2 from the back of deque1. A broken steal path times out here
    // rather than deadlocking.
    ThreadPool pool(2);
    pool.EnableProfiling(true);
    std::atomic<bool> t2_ran{false};
    bool timed_out = false;
    pool.ParallelForTasks(
        {{0, 10.0}, {1, 9.0}, {2, 8.0}},
        [&](int i) {
            if (i == 2) t2_ran.store(true);
            if (i == 1) {
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
                while (!t2_ran.load()) {
                    if (std::chrono::steady_clock::now() > deadline) {
                        timed_out = true;
                        break;
                    }
                    std::this_thread::yield();
                }
            }
            return true;
        });
    EXPECT_FALSE(timed_out) << "t2 was never stolen";
    long steals = 0;
    for (const auto& stat : pool.Profile()) steals += stat.steals;
    EXPECT_GE(steals, 1);
}

TEST(ThreadPoolTest, TasksProfilingCountsEverySliceOnce)
{
    ThreadPool pool(4);
    pool.EnableProfiling(true);
    constexpr int kTasks = 20;
    std::atomic<long> executions{0};
    pool.ParallelForTasks(UniformSeeds(kTasks), [&](int) {
        executions.fetch_add(1);
        return true;
    });
    pool.ParallelForTasks(UniformSeeds(kTasks), [&](int) {
        return executions.fetch_add(1) % 2 == 0;
    });
    long tasks = 0;
    for (const auto& stat : pool.Profile()) {
        tasks += stat.tasks;
        EXPECT_GE(stat.busy, 0.0);
        EXPECT_GE(stat.steal_busy, 0.0);
        EXPECT_GE(stat.barrier_wait, 0.0);
        EXPECT_GE(stat.steals, 0);
    }
    EXPECT_EQ(tasks, executions.load());
}

TEST(ThreadPoolTest, ProfileSnapshotIsImmutableAcrossLaterEpochs)
{
    // Profile() returns a copy taken under the pool mutex — the
    // epoch-stamp fix: a snapshot held across later rounds must stay
    // frozen (the old by-reference accessor was a live view that the
    // next epoch's worker folds mutated under the reader).
    ThreadPool pool(4);
    pool.EnableProfiling(true);
    pool.ParallelForTasks(UniformSeeds(8), [](int) { return true; });
    const std::vector<telemetry::ThreadStat> snapshot = pool.Profile();
    long snap_tasks = 0;
    for (const auto& stat : snapshot) snap_tasks += stat.tasks;
    EXPECT_EQ(snap_tasks, 8);

    for (int e = 0; e < 50; ++e) {
        pool.ParallelForTasks(UniformSeeds(8),
                              [](int) { return true; });
        pool.ParallelFor(8, [](int) {});
    }
    long snap_tasks_after = 0;
    for (const auto& stat : snapshot) snap_tasks_after += stat.tasks;
    EXPECT_EQ(snap_tasks_after, 8);

    long live_tasks = 0;
    for (const auto& stat : pool.Profile()) live_tasks += stat.tasks;
    EXPECT_EQ(live_tasks, 8 + 50 * 16);
}

}  // namespace
}  // namespace pod
