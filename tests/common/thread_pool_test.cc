/**
 * @file
 * Tests for the fork/join worker pool behind the parallel cluster
 * engine: the barrier contract (every task of an epoch completes
 * before ParallelFor returns, and epochs never overlap), exception
 * propagation from workers, pool reuse across many epochs, and the
 * degenerate zero-task / one-task / one-thread paths.
 */
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pod {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(97);
        for (auto& h : hits) h.store(0);
        pool.ParallelFor(97, [&](int i) {
            hits[static_cast<size_t>(i)].fetch_add(1);
        });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPoolTest, BarrierCompletesEpochBeforeReturning)
{
    // The determinism-critical property (docs/DESIGN.md S8): when
    // ParallelFor returns, every task has fully executed and its
    // writes are visible to the caller — so a later epoch can never
    // observe or race a predecessor's in-flight task.
    ThreadPool pool(4);
    std::vector<int> values(64, 0);  // plain ints: visibility is the
                                     // barrier's job, not atomics'
    for (int epoch = 1; epoch <= 8; ++epoch) {
        pool.ParallelFor(64, [&, epoch](int i) {
            // Each task sees the *previous* epoch fully applied.
            EXPECT_EQ(values[static_cast<size_t>(i)], epoch - 1);
            values[static_cast<size_t>(i)] = epoch;
        });
        long sum = std::accumulate(values.begin(), values.end(), 0l);
        EXPECT_EQ(sum, 64l * epoch);
    }
}

TEST(ThreadPoolTest, TaskOrderWithinOneThreadIsIndexOrder)
{
    // With a single executing thread the claim order is the index
    // order — the inline degenerate path the serial engines rely on.
    ThreadPool pool(1);
    std::vector<int> order;
    pool.ParallelFor(16, [&](int i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, PropagatesWorkerExceptionAndStaysUsable)
{
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.ParallelFor(32,
                         [&](int i) {
                             if (i == 7) {
                                 throw std::runtime_error("task 7");
                             }
                             completed.fetch_add(1);
                         }),
        std::runtime_error);
    // The failing epoch still ran its other tasks to the barrier...
    EXPECT_EQ(completed.load(), 31);
    // ...and the pool is reusable afterwards.
    std::atomic<int> after{0};
    pool.ParallelFor(8, [&](int) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPoolTest, PropagatesExceptionFromInlinePath)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.ParallelFor(
                     4, [](int) { throw std::logic_error("inline"); }),
                 std::logic_error);
}

TEST(ThreadPoolTest, ReuseAcrossManyEpochsIsDeterministic)
{
    // A simulation issues hundreds of thousands of barriers on one
    // pool; accumulate a per-slot sum over many epochs and check the
    // closed form — any lost wakeup, double-claim or skipped index
    // breaks it.
    ThreadPool pool(4);
    constexpr int kSlots = 33;
    constexpr int kEpochs = 500;
    std::vector<long> sums(kSlots, 0);
    for (int e = 0; e < kEpochs; ++e) {
        pool.ParallelFor(kSlots, [&](int i) {
            sums[static_cast<size_t>(i)] += i + 1;
        });
    }
    for (int i = 0; i < kSlots; ++i) {
        EXPECT_EQ(sums[static_cast<size_t>(i)],
                  static_cast<long>(kEpochs) * (i + 1));
    }
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.ParallelFor(0, [&](int) { ran = true; });
    EXPECT_FALSE(ran);
    pool.ParallelFor(-3, [&](int) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleTaskRunsInlineOnCaller)
{
    ThreadPool pool(4);
    std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.ParallelFor(1, [&](int) { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, MoreThreadsThanTasks)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(3, [&](int i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ResolveThreadsClampsToHardware)
{
    EXPECT_EQ(ThreadPool::ResolveThreads(3), 3);
    EXPECT_GE(ThreadPool::ResolveThreads(0), 1);
    EXPECT_GE(ThreadPool::ResolveThreads(-1), 1);
}

TEST(ThreadPoolTest, RejectsNonPositiveThreadCount)
{
    EXPECT_DEATH(ThreadPool(0), "at least one thread");
}

TEST(ThreadPoolTest, ProfilingCountsTasksAndBusyTime)
{
    ThreadPool pool(4);
    pool.EnableProfiling(true);
    std::atomic<long> total{0};
    pool.ParallelFor(64, [&](int i) { total.fetch_add(i); });
    pool.ParallelFor(64, [&](int i) { total.fetch_add(i); });

    const auto& profile = pool.Profile();
    ASSERT_EQ(profile.size(), 4u);
    long tasks = 0;
    for (const auto& stat : profile) {
        tasks += stat.tasks;
        EXPECT_GE(stat.busy, 0.0);
        EXPECT_GE(stat.barrier_wait, 0.0);
    }
    EXPECT_EQ(tasks, 128);

    pool.ResetProfile();
    for (const auto& stat : pool.Profile()) {
        EXPECT_EQ(stat.tasks, 0);
        EXPECT_DOUBLE_EQ(stat.busy, 0.0);
        EXPECT_DOUBLE_EQ(stat.barrier_wait, 0.0);
    }
}

TEST(ThreadPoolTest, ProfilingAttributesBarrierWaitToFastThreads)
{
    // One deliberately slow task: the other executing threads finish
    // their (empty) share early and must be charged barrier-wait time
    // roughly matching the straggler — the measurement the ROADMAP
    // work-stealing item needs.
    ThreadPool pool(2);
    pool.EnableProfiling(true);
    pool.ParallelFor(2, [&](int i) {
        if (i == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });
    const auto& profile = pool.Profile();
    ASSERT_EQ(profile.size(), 2u);
    double total_busy = 0.0;
    double total_wait = 0.0;
    for (const auto& stat : profile) {
        total_busy += stat.busy;
        total_wait += stat.barrier_wait;
    }
    // The straggler contributes >= 20 ms busy; the other thread waits
    // for it (timing slop keeps the bound loose).
    EXPECT_GE(total_busy, 0.015);
    EXPECT_GE(total_wait, 0.010);
}

TEST(ThreadPoolTest, ProfilingOffRecordsNothing)
{
    ThreadPool pool(2);
    pool.ParallelFor(8, [](int) {});
    for (const auto& stat : pool.Profile()) {
        EXPECT_EQ(stat.tasks, 0);
        EXPECT_DOUBLE_EQ(stat.busy, 0.0);
        EXPECT_DOUBLE_EQ(stat.barrier_wait, 0.0);
    }
}

TEST(ThreadPoolTest, ProfilingInlinePathChargesCaller)
{
    ThreadPool pool(1);
    pool.EnableProfiling(true);
    pool.ParallelFor(5, [](int) {});
    const auto& profile = pool.Profile();
    ASSERT_EQ(profile.size(), 1u);
    EXPECT_EQ(profile[0].tasks, 5);
    EXPECT_GE(profile[0].busy, 0.0);
}

}  // namespace
}  // namespace pod
