/**
 * @file
 * Unit tests for SampleStats and GeoMean.
 */
#include "common/stats.h"

#include <gtest/gtest.h>

namespace pod {
namespace {

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.Count(), 0u);
    EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.Min(), 0.0);
    EXPECT_DOUBLE_EQ(s.Max(), 0.0);
    EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.FractionAbove(1.0), 0.0);
}

TEST(SampleStats, BasicMoments)
{
    SampleStats s;
    s.AddAll({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.Count(), 4u);
    EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.Min(), 1.0);
    EXPECT_DOUBLE_EQ(s.Max(), 4.0);
    EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
    EXPECT_NEAR(s.Stddev(), 1.1180339887, 1e-9);
}

TEST(SampleStats, PercentileInterpolation)
{
    SampleStats s;
    s.AddAll({10.0, 20.0, 30.0, 40.0, 50.0});
    EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.Percentile(100), 50.0);
    EXPECT_DOUBLE_EQ(s.Percentile(50), 30.0);
    EXPECT_DOUBLE_EQ(s.Percentile(25), 20.0);
    // Between order statistics: 10% of the way from 10 to 20 at p=2.5.
    EXPECT_NEAR(s.Percentile(2.5), 11.0, 1e-9);
}

TEST(SampleStats, PercentileUnsortedInput)
{
    SampleStats s;
    s.AddAll({50.0, 10.0, 40.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(s.Median(), 30.0);
    // Adding after a sort must re-sort.
    s.Add(5.0);
    EXPECT_DOUBLE_EQ(s.Min(), 5.0);
    EXPECT_DOUBLE_EQ(s.Percentile(0), 5.0);
}

TEST(SampleStats, FractionAbove)
{
    SampleStats s;
    s.AddAll({0.1, 0.2, 0.3, 0.4});
    EXPECT_DOUBLE_EQ(s.FractionAbove(0.25), 0.5);
    EXPECT_DOUBLE_EQ(s.FractionAbove(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.FractionAbove(0.4), 0.0);
}

TEST(SampleStats, ClearResets)
{
    SampleStats s;
    s.Add(1.0);
    s.Clear();
    EXPECT_EQ(s.Count(), 0u);
    EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(SampleStats, SingleSample)
{
    SampleStats s;
    s.Add(7.0);
    EXPECT_DOUBLE_EQ(s.Percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
    EXPECT_DOUBLE_EQ(s.Percentile(100), 7.0);
    EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

TEST(SampleStats, SummaryMentionsCount)
{
    SampleStats s;
    s.AddAll({1.0, 2.0});
    EXPECT_NE(s.Summary().find("n=2"), std::string::npos);
}

TEST(GeoMean, Basics)
{
    EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(GeoMean({4.0}), 4.0);
    EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(GeoMean({2.0, 8.0}), 4.0, 1e-12);
}

}  // namespace
}  // namespace pod
