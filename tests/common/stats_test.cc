/**
 * @file
 * Unit tests for SampleStats, HistogramStats and GeoMean.
 */
#include "common/stats.h"

#include <gtest/gtest.h>

namespace pod {
namespace {

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.Count(), 0u);
    EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.Min(), 0.0);
    EXPECT_DOUBLE_EQ(s.Max(), 0.0);
    EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(s.FractionAbove(1.0), 0.0);
}

TEST(SampleStats, BasicMoments)
{
    SampleStats s;
    s.AddAll({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.Count(), 4u);
    EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.Min(), 1.0);
    EXPECT_DOUBLE_EQ(s.Max(), 4.0);
    EXPECT_DOUBLE_EQ(s.Sum(), 10.0);
    EXPECT_NEAR(s.Stddev(), 1.1180339887, 1e-9);
}

TEST(SampleStats, PercentileInterpolation)
{
    SampleStats s;
    s.AddAll({10.0, 20.0, 30.0, 40.0, 50.0});
    EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
    EXPECT_DOUBLE_EQ(s.Percentile(100), 50.0);
    EXPECT_DOUBLE_EQ(s.Percentile(50), 30.0);
    EXPECT_DOUBLE_EQ(s.Percentile(25), 20.0);
    // Between order statistics: 10% of the way from 10 to 20 at p=2.5.
    EXPECT_NEAR(s.Percentile(2.5), 11.0, 1e-9);
}

TEST(SampleStats, PercentileUnsortedInput)
{
    SampleStats s;
    s.AddAll({50.0, 10.0, 40.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(s.Median(), 30.0);
    // Adding after a sort must re-sort.
    s.Add(5.0);
    EXPECT_DOUBLE_EQ(s.Min(), 5.0);
    EXPECT_DOUBLE_EQ(s.Percentile(0), 5.0);
}

TEST(SampleStats, FractionAbove)
{
    SampleStats s;
    s.AddAll({0.1, 0.2, 0.3, 0.4});
    EXPECT_DOUBLE_EQ(s.FractionAbove(0.25), 0.5);
    EXPECT_DOUBLE_EQ(s.FractionAbove(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.FractionAbove(0.4), 0.0);
}

TEST(SampleStats, ClearResets)
{
    SampleStats s;
    s.Add(1.0);
    s.Clear();
    EXPECT_EQ(s.Count(), 0u);
    EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(SampleStats, SingleSample)
{
    SampleStats s;
    s.Add(7.0);
    EXPECT_DOUBLE_EQ(s.Percentile(0), 7.0);
    EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
    EXPECT_DOUBLE_EQ(s.Percentile(100), 7.0);
    EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
}

TEST(SampleStats, SummaryMentionsCount)
{
    SampleStats s;
    s.AddAll({1.0, 2.0});
    EXPECT_NE(s.Summary().find("n=2"), std::string::npos);
}

TEST(HistogramStats, EmptyIsZero)
{
    HistogramStats h(0.0, 10.0, 5);
    EXPECT_EQ(h.Count(), 0);
    EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.Min(), 0.0);
    EXPECT_DOUBLE_EQ(h.Max(), 0.0);
    EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramStats, ExactMomentsBinnedCounts)
{
    HistogramStats h(0.0, 10.0, 5);
    h.Add(1.0);  // bin 0
    h.Add(3.0);  // bin 1
    h.Add(3.5);  // bin 1
    h.Add(9.0);  // bin 4
    EXPECT_EQ(h.Count(), 4);
    EXPECT_DOUBLE_EQ(h.Mean(), 4.125);
    EXPECT_DOUBLE_EQ(h.Min(), 1.0);
    EXPECT_DOUBLE_EQ(h.Max(), 9.0);
    EXPECT_DOUBLE_EQ(h.Sum(), 16.5);
    ASSERT_EQ(h.Bins().size(), 5u);
    EXPECT_EQ(h.Bins()[0], 1);
    EXPECT_EQ(h.Bins()[1], 2);
    EXPECT_EQ(h.Bins()[2], 0);
    EXPECT_EQ(h.Bins()[4], 1);
    EXPECT_EQ(h.Underflow(), 0);
    EXPECT_EQ(h.Overflow(), 0);
}

TEST(HistogramStats, UnderflowOverflowStillCounted)
{
    HistogramStats h(0.0, 1.0, 4);
    h.Add(-5.0);
    h.Add(0.5);
    h.Add(3.0);
    EXPECT_EQ(h.Count(), 3);
    EXPECT_EQ(h.Underflow(), 1);
    EXPECT_EQ(h.Overflow(), 1);
    EXPECT_DOUBLE_EQ(h.Min(), -5.0);
    EXPECT_DOUBLE_EQ(h.Max(), 3.0);
    // Percentiles clamp to the exact observed range.
    EXPECT_DOUBLE_EQ(h.Percentile(0), -5.0);
    EXPECT_DOUBLE_EQ(h.Percentile(100), 3.0);
}

TEST(HistogramStats, PercentileWithinBinWidth)
{
    // 1000 uniform samples: every bin-estimated percentile must land
    // within one bin width of the exact order statistic.
    HistogramStats h(0.0, 1.0, 100);
    SampleStats exact;
    for (int i = 0; i < 1000; ++i) {
        double v = (i * 7919 % 1000) / 1000.0;
        h.Add(v);
        exact.Add(v);
    }
    const double bin_width = 1.0 / 100;
    for (double p : {1.0, 10.0, 50.0, 90.0, 99.0}) {
        EXPECT_NEAR(h.Percentile(p), exact.Percentile(p), bin_width)
            << "p=" << p;
    }
}

TEST(HistogramStats, BoundaryValuesLandInExpectedBins)
{
    HistogramStats h(0.0, 10.0, 5);
    h.Add(0.0);   // inclusive lower edge -> bin 0
    h.Add(2.0);   // bin edge -> bin 1
    h.Add(10.0);  // exclusive upper edge -> overflow
    EXPECT_EQ(h.Bins()[0], 1);
    EXPECT_EQ(h.Bins()[1], 1);
    EXPECT_EQ(h.Overflow(), 1);
    EXPECT_DOUBLE_EQ(h.BinLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.BinHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(h.BinLow(4), 8.0);
}

TEST(HistogramStats, MergeMatchesCombinedStream)
{
    HistogramStats a(0.0, 10.0, 10);
    HistogramStats b(0.0, 10.0, 10);
    HistogramStats combined(0.0, 10.0, 10);
    for (int i = 0; i < 50; ++i) {
        double v = (i * 13 % 100) / 10.0;
        (i % 2 == 0 ? a : b).Add(v);
        combined.Add(v);
    }
    a.Merge(b);
    EXPECT_EQ(a.Count(), combined.Count());
    EXPECT_DOUBLE_EQ(a.Sum(), combined.Sum());
    EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
    EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
    EXPECT_EQ(a.Bins(), combined.Bins());
    EXPECT_DOUBLE_EQ(a.Percentile(50), combined.Percentile(50));
}

TEST(HistogramStats, ClearKeepsGeometry)
{
    HistogramStats h(0.0, 4.0, 4);
    h.Add(1.0);
    h.Add(9.0);
    h.Clear();
    EXPECT_EQ(h.Count(), 0);
    EXPECT_EQ(h.Overflow(), 0);
    h.Add(3.5);
    EXPECT_EQ(h.Bins()[3], 1);
}

TEST(HistogramStats, SummaryMentionsCount)
{
    HistogramStats h(0.0, 1.0, 2);
    h.Add(0.25);
    h.Add(0.75);
    EXPECT_NE(h.Summary().find("n=2"), std::string::npos);
}

TEST(GeoMean, Basics)
{
    EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(GeoMean({4.0}), 4.0);
    EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(GeoMean({2.0, 8.0}), 4.0, 1e-12);
}

}  // namespace
}  // namespace pod
