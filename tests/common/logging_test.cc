/**
 * @file
 * Unit tests for the logging channels.
 */
#include "common/logging.h"

#include <gtest/gtest.h>

namespace pod {
namespace {

TEST(Logging, LevelRoundTrip)
{
    LogLevel original = GetLogLevel();
    SetLogLevel(LogLevel::kDebug);
    EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
    SetLogLevel(LogLevel::kSilent);
    EXPECT_EQ(GetLogLevel(), LogLevel::kSilent);
    SetLogLevel(original);
}

TEST(Logging, WarnInformDebugDoNotCrash)
{
    LogLevel original = GetLogLevel();
    SetLogLevel(LogLevel::kDebug);
    Warn("test warning %d", 1);
    Inform("test info %s", "x");
    Debug("test debug %.2f", 3.14);
    SetLogLevel(original);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(Panic("intentional test panic"), "PANIC");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(Fatal("intentional test fatal"),
                ::testing::ExitedWithCode(1), "FATAL");
}

TEST(LoggingDeathTest, AssertMacroFires)
{
    EXPECT_DEATH(POD_ASSERT(1 == 2), "assertion failed");
}

TEST(LoggingDeathTest, AssertMsgMacroFires)
{
    EXPECT_DEATH(POD_ASSERT_MSG(false, "value was %d", 3),
                 "value was 3");
}

TEST(Logging, AssertPassesOnTrue)
{
    POD_ASSERT(1 + 1 == 2);
    POD_ASSERT_MSG(true, "unused %d", 0);
}

}  // namespace
}  // namespace pod
