/**
 * @file
 * Unit tests for the logging channels, including the thread-safety
 * contract: concurrent emission never interleaves mid-line.
 */
#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace pod {
namespace {

TEST(Logging, LevelRoundTrip)
{
    LogLevel original = GetLogLevel();
    SetLogLevel(LogLevel::kDebug);
    EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
    SetLogLevel(LogLevel::kSilent);
    EXPECT_EQ(GetLogLevel(), LogLevel::kSilent);
    SetLogLevel(original);
}

TEST(Logging, WarnInformDebugDoNotCrash)
{
    LogLevel original = GetLogLevel();
    SetLogLevel(LogLevel::kDebug);
    Warn("test warning %d", 1);
    Inform("test info %s", "x");
    Debug("test debug %.2f", 3.14);
    SetLogLevel(original);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(Panic("intentional test panic"), "PANIC");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(Fatal("intentional test fatal"),
                ::testing::ExitedWithCode(1), "FATAL");
}

TEST(LoggingDeathTest, AssertMacroFires)
{
    EXPECT_DEATH(POD_ASSERT(1 == 2), "assertion failed");
}

TEST(LoggingDeathTest, AssertMsgMacroFires)
{
    EXPECT_DEATH(POD_ASSERT_MSG(false, "value was %d", 3),
                 "value was 3");
}

TEST(Logging, AssertPassesOnTrue)
{
    POD_ASSERT(1 + 1 == 2);
    POD_ASSERT_MSG(true, "unused %d", 0);
}

TEST(Logging, ConcurrentEmissionKeepsLinesIntact)
{
    // Hammer Warn() from several threads and check that every captured
    // stderr line is exactly one whole message: each line parses as
    // "[warn] t<thread> i<count> #" with the trailing marker present,
    // and all messages arrive. Pre-fix logging used multiple stdio
    // calls per message, which interleaves under this load.
    LogLevel original = GetLogLevel();
    SetLogLevel(LogLevel::kWarn);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 200;
    ::testing::internal::CaptureStderr();
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([t] {
                for (int i = 0; i < kPerThread; ++i) {
                    Warn("t%d i%d #", t, i);
                }
            });
        }
        for (auto& thread : threads) thread.join();
    }
    std::string captured = ::testing::internal::GetCapturedStderr();
    SetLogLevel(original);

    int messages = 0;
    std::istringstream lines(captured);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty()) continue;
        ++messages;
        int t = -1;
        int i = -1;
        char marker = 0;
        ASSERT_EQ(std::sscanf(line.c_str(), "[warn] t%d i%d %c", &t,
                              &i, &marker),
                  3)
            << "garbled line: \"" << line << "\"";
        EXPECT_EQ(marker, '#') << "truncated line: \"" << line << "\"";
        EXPECT_GE(t, 0);
        EXPECT_LT(t, kThreads);
        EXPECT_GE(i, 0);
        EXPECT_LT(i, kPerThread);
    }
    EXPECT_EQ(messages, kThreads * kPerThread);
}

}  // namespace
}  // namespace pod
