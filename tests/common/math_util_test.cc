/**
 * @file
 * Unit tests for integer/floating math helpers.
 */
#include "common/math_util.h"

#include <gtest/gtest.h>

namespace pod {
namespace {

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(CeilDiv(0, 4), 0);
    EXPECT_EQ(CeilDiv(1, 4), 1);
    EXPECT_EQ(CeilDiv(4, 4), 1);
    EXPECT_EQ(CeilDiv(5, 4), 2);
    EXPECT_EQ(CeilDiv(16384, 128), 128);
    EXPECT_EQ(CeilDiv<int64_t>(1'000'000'007, 2), 500'000'004);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(RoundUp(0, 16), 0);
    EXPECT_EQ(RoundUp(1, 16), 16);
    EXPECT_EQ(RoundUp(16, 16), 16);
    EXPECT_EQ(RoundUp(17, 16), 32);
}

TEST(MathUtil, RoundDown)
{
    EXPECT_EQ(RoundDown(0, 16), 0);
    EXPECT_EQ(RoundDown(15, 16), 0);
    EXPECT_EQ(RoundDown(16, 16), 16);
    EXPECT_EQ(RoundDown(31, 16), 16);
}

TEST(MathUtil, Clamp)
{
    EXPECT_EQ(Clamp(5, 0, 10), 5);
    EXPECT_EQ(Clamp(-5, 0, 10), 0);
    EXPECT_EQ(Clamp(15, 0, 10), 10);
    EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtil, ApproxEqual)
{
    EXPECT_TRUE(ApproxEqual(1.0, 1.0));
    EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(ApproxEqual(1.0, 1.001));
    EXPECT_TRUE(ApproxEqual(1e12, 1e12 + 1.0));
    EXPECT_TRUE(ApproxEqual(0.0, 0.0));
    EXPECT_FALSE(ApproxEqual(0.0, 1.0));
}

}  // namespace
}  // namespace pod
