/**
 * @file
 * Unit tests for the deterministic RNG wrapper.
 */
#include "common/rng.h"

#include <gtest/gtest.h>

namespace pod {
namespace {

TEST(Rng, DeterministicWithSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) {
            ++same;
        }
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.UniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, UniformRealBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.UniformReal(0.5, 1.5);
        EXPECT_GE(v, 0.5);
        EXPECT_LT(v, 1.5);
    }
}

TEST(Rng, ExponentialMean)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += rng.Exponential(2.0);
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, LogNormalMoments)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        sum += rng.LogNormalByMoments(10.0, 3.0);
    }
    EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng rng(17);
    std::vector<double> weights = {0.0, 1.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        counts[rng.Weighted(weights)] += 1;
    }
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(19);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.Bernoulli(0.25)) ++heads;
    }
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.01);
}

}  // namespace
}  // namespace pod
