/**
 * @file
 * Unit tests for the telemetry layer (docs/OBSERVABILITY.md): the
 * named metric registry (handle-based updates, kind checking,
 * name-sorted deterministic export), FormatDouble round-tripping, the
 * sim-time TraceRecorder, the Chrome trace-event exporter, and the
 * gpusim kernel-span adapter.
 */
#include "common/telemetry/registry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/telemetry/profiler.h"
#include "common/telemetry/trace.h"
#include "gpusim/sim_result.h"
#include "gpusim/trace_export.h"

namespace pod::telemetry {
namespace {

// ---------------------------------------------------------- registry

TEST(MetricRegistry, CounterHandleUpdatesSlot)
{
    MetricRegistry registry;
    Counter c = registry.GetCounter("test.counter");
    c.Add();
    c.Add(41);
    EXPECT_EQ(c.Value(), 42);
    // Re-registering the same name returns the same slot.
    Counter again = registry.GetCounter("test.counter");
    again.Add(8);
    EXPECT_EQ(c.Value(), 50);
    EXPECT_EQ(registry.Size(), 1u);
}

TEST(MetricRegistry, GaugeLastWriteWins)
{
    MetricRegistry registry;
    Gauge g = registry.GetGauge("test.gauge");
    g.Set(1.5);
    g.Set(-2.25);
    EXPECT_DOUBLE_EQ(g.Value(), -2.25);
}

TEST(MetricRegistry, HistogramHandleAccumulates)
{
    MetricRegistry registry;
    Histogram h = registry.GetHistogram("test.hist", 0.0, 10.0, 10);
    h.Add(1.0);
    h.Add(9.5);
    EXPECT_EQ(h.Stats().Count(), 2);
    EXPECT_DOUBLE_EQ(h.Stats().Max(), 9.5);
}

TEST(MetricRegistry, HandlesSurviveRegistryGrowth)
{
    // Slots live in a deque: handles taken early must stay valid as
    // hundreds of later registrations grow the table.
    MetricRegistry registry;
    Counter first = registry.GetCounter("aaa.first");
    for (int i = 0; i < 500; ++i) {
        registry.GetCounter("filler." + std::to_string(i));
    }
    first.Add(7);
    EXPECT_EQ(registry.GetCounter("aaa.first").Value(), 7);
}

TEST(MetricRegistryDeathTest, KindMismatchIsFatal)
{
    MetricRegistry registry;
    registry.GetCounter("test.name");
    EXPECT_DEATH(registry.GetGauge("test.name"), "kind");
}

TEST(MetricRegistry, RowsAreNameSorted)
{
    MetricRegistry registry;
    registry.AddCounter("zebra", 1);
    registry.SetGauge("alpha", 2.0);
    registry.AddCounter("middle", 3);
    std::vector<MetricRegistry::Row> rows = registry.Rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].name, "alpha");
    EXPECT_EQ(rows[1].name, "middle");
    EXPECT_EQ(rows[2].name, "zebra");
    EXPECT_EQ(rows[1].counter, 3);
    EXPECT_DOUBLE_EQ(rows[0].gauge, 2.0);
}

TEST(MetricRegistry, JsonAndCsvExportsAreDeterministic)
{
    // Same content registered in different orders must export
    // identical bytes (Rows() sorts by name).
    MetricRegistry a;
    a.AddCounter("x.count", 3);
    a.SetGauge("a.value", 0.1);
    MetricRegistry b;
    b.SetGauge("a.value", 0.1);
    b.AddCounter("x.count", 3);

    std::ostringstream ja, jb, ca, cb;
    a.WriteJson(ja);
    b.WriteJson(jb);
    a.WriteCsv(ca);
    b.WriteCsv(cb);
    EXPECT_EQ(ja.str(), jb.str());
    EXPECT_EQ(ca.str(), cb.str());
    EXPECT_NE(ja.str().find("\"metrics\""), std::string::npos);
    EXPECT_NE(ca.str().find("name,kind"), std::string::npos);
}

TEST(MetricRegistry, JsonIncludesHistogramSummary)
{
    MetricRegistry registry;
    Histogram h = registry.GetHistogram("lat", 0.0, 1.0, 4);
    h.Add(0.3);
    h.Add(0.7);
    std::ostringstream out;
    registry.WriteJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
    EXPECT_NE(json.find("\"bins\""), std::string::npos);
}

TEST(FormatDouble, RoundTripsExactly)
{
    for (double v : {0.0, 1.0, -2.5, 0.1, 1.0 / 3.0, 1e-300, 123456.789,
                     9.951304347826087e-1}) {
        std::string s = FormatDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

// ------------------------------------------------------------- trace

TEST(TraceRecorder, RecordsEventsInOrder)
{
    TraceRecorder recorder(1, "replica0");
    recorder.Instant(EventKind::kArrival, 0.5,
                     TraceRecorder::RequestTrack(3), 128, 16);
    recorder.Span(EventKind::kIteration, 0.5, 0.01,
                  TraceRecorder::kEngineTrack, 128, 0);
    ASSERT_EQ(recorder.Events().size(), 2u);
    EXPECT_EQ(recorder.Events()[0].kind, EventKind::kArrival);
    EXPECT_EQ(recorder.Events()[0].tid, 4);
    EXPECT_EQ(recorder.Events()[0].a0, 128);
    EXPECT_DOUBLE_EQ(recorder.Events()[1].dur, 0.01);
    EXPECT_EQ(recorder.Pid(), 1);
    EXPECT_EQ(recorder.ProcessName(), "replica0");
}

TEST(TraceRecorder, InternNameDeduplicates)
{
    TraceRecorder recorder(0, "p");
    int a = recorder.InternName("attn_prefill");
    int b = recorder.InternName("attn_decode");
    int a2 = recorder.InternName("attn_prefill");
    EXPECT_EQ(a, a2);
    EXPECT_NE(a, b);
    ASSERT_EQ(recorder.Names().size(), 2u);
    EXPECT_EQ(recorder.Names()[static_cast<size_t>(a)], "attn_prefill");
}

TEST(TraceRecorder, ClearKeepsIdentityDropsEvents)
{
    TraceRecorder recorder(2, "p");
    recorder.Instant(EventKind::kFinish, 1.0, 0);
    recorder.InternName("k");
    recorder.Clear();
    EXPECT_TRUE(recorder.Events().empty());
    EXPECT_TRUE(recorder.Names().empty());
    EXPECT_EQ(recorder.Pid(), 2);
}

TEST(EventKind, NamesAndSpanFlags)
{
    EXPECT_STREQ(EventKindName(EventKind::kPrefillChunk),
                 "prefill_chunk");
    EXPECT_STREQ(EventKindName(EventKind::kRoute), "route");
    EXPECT_TRUE(EventKindIsSpan(EventKind::kIteration));
    EXPECT_TRUE(EventKindIsSpan(EventKind::kKernel));
    EXPECT_FALSE(EventKindIsSpan(EventKind::kDecodeToken));
}

TEST(WriteChromeTrace, MergesRecordersDeterministically)
{
    TraceRecorder router(0, "cluster");
    TraceRecorder replica(1, "replica0");
    router.Instant(EventKind::kRoute, 0.25, 0, 7, 0);
    replica.Instant(EventKind::kArrival, 0.25,
                    TraceRecorder::RequestTrack(7), 64, 8);
    replica.Span(EventKind::kIteration, 0.25, 0.0125, 0, 64, 0);

    std::ostringstream a, b;
    WriteChromeTrace(a, {&router, &replica});
    WriteChromeTrace(b, {&router, &replica});
    EXPECT_EQ(a.str(), b.str());

    const std::string json = a.str();
    // Envelope and metadata.
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"cluster\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"replica0\""), std::string::npos);
    // Sim seconds -> trace microseconds (round-trip %g formatting).
    EXPECT_NE(json.find("\"ts\":2.5e+05"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":1.25e+04"), std::string::npos);
    // Instants carry thread scope, spans are complete events.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(WriteChromeTrace, TieBreaksByRecorderOrder)
{
    // Two events at the same ts in different recorders: the recorder
    // passed first must export first, independent of insertion
    // interleaving — the property the cluster merge relies on.
    TraceRecorder first(0, "a");
    TraceRecorder second(1, "b");
    second.Instant(EventKind::kFinish, 1.0, 0);
    first.Instant(EventKind::kFinish, 1.0, 0);
    std::ostringstream out;
    WriteChromeTrace(out, {&first, &second});
    const std::string json = out.str();
    size_t pid0 = json.find("\"ph\":\"i\",\"pid\":0");
    size_t pid1 = json.find("\"ph\":\"i\",\"pid\":1");
    ASSERT_NE(pid0, std::string::npos);
    ASSERT_NE(pid1, std::string::npos);
    EXPECT_LT(pid0, pid1);
}

// --------------------------------------------------------- profiler

TEST(Profiler, WallClockIsMonotonic)
{
    double a = WallSeconds();
    double b = WallSeconds();
    EXPECT_GE(b, a);
}

TEST(Profiler, FillRegistryPublishesPhaseAndThreadStats)
{
    ClusterProfile profile;
    profile.advance.seconds = 1.5;
    profile.advance.count = 10;
    profile.pool_rounds = 10;
    profile.threads.push_back(ThreadStat{1.0, 0.25, 32});
    profile.threads.push_back(ThreadStat{0.75, 0.5, 16});

    MetricRegistry registry;
    profile.FillRegistry(registry, "profile.");
    EXPECT_TRUE(registry.Contains("profile.advance.seconds"));
    EXPECT_TRUE(registry.Contains("profile.thread0.busy_seconds"));
    EXPECT_TRUE(
        registry.Contains("profile.thread1.barrier_wait_seconds"));

    std::string summary = profile.Summary();
    EXPECT_NE(summary.find("advance"), std::string::npos);
    EXPECT_NE(summary.find("thread"), std::string::npos);
}

// ------------------------------------------------- gpusim adapter

TEST(ExportKernelSpans, OneSpanPerKernelWithInternedNames)
{
    gpusim::SimResult result;
    result.kernels.push_back(
        gpusim::KernelTiming{"attn_prefill", 0.0, 0.002});
    result.kernels.push_back(
        gpusim::KernelTiming{"attn_decode", 0.002, 0.0035});
    result.kernels.push_back(
        gpusim::KernelTiming{"attn_prefill", 0.0035, 0.004});

    TraceRecorder recorder(1, "gpu");
    gpusim::ExportKernelSpans(result, recorder, 10.0);

    ASSERT_EQ(recorder.Events().size(), 3u);
    EXPECT_EQ(recorder.Names().size(), 2u);  // names deduplicated
    const TraceEvent& e0 = recorder.Events()[0];
    EXPECT_EQ(e0.kind, EventKind::kKernel);
    EXPECT_DOUBLE_EQ(e0.ts, 10.0);
    EXPECT_DOUBLE_EQ(e0.dur, 0.002);
    EXPECT_EQ(recorder.Names()[static_cast<size_t>(e0.name_ref)],
              "attn_prefill");
    // Interned display names surface in the export.
    std::ostringstream out;
    WriteChromeTrace(out, {&recorder});
    EXPECT_NE(out.str().find("\"name\":\"attn_decode\""),
              std::string::npos);
}

}  // namespace
}  // namespace pod::telemetry
