/**
 * @file
 * Tests of the attention backend dispatcher, including the paper's
 * headline property: POD-Attention never under-performs serial
 * execution (S5.1), verified over a parameterized sweep of hybrid
 * batches.
 */
#include "core/attention.h"

#include <gtest/gtest.h>

namespace pod::core {
namespace {

kernels::AttnShape
Llama3Tp2()
{
    kernels::AttnShape shape;
    shape.num_q_heads = 16;
    shape.num_kv_heads = 4;
    shape.head_dim = 128;
    return shape;
}

kernels::AttnShape
Yi6B()
{
    kernels::AttnShape shape;
    shape.num_q_heads = 32;
    shape.num_kv_heads = 4;
    shape.head_dim = 128;
    return shape;
}

TEST(RunAttention, AllBackendsProduceSaneResults)
{
    auto batch =
        kernels::HybridBatch::Make(Llama3Tp2(), 1024, 8192, 64, 8192);
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    for (Backend backend : AllBackends()) {
        AttnRunResult result = RunAttention(backend, batch, spec);
        EXPECT_GT(result.total_time, 0.0) << BackendName(backend);
        EXPECT_GT(result.energy_joules, 0.0) << BackendName(backend);
        EXPECT_GT(result.total_ctas, 0) << BackendName(backend);
        EXPECT_GE(result.tensor_util, 0.0);
        EXPECT_LE(result.tensor_util, 1.0 + 1e-9);
        EXPECT_GE(result.mem_util, 0.0);
        EXPECT_LE(result.mem_util, 1.0 + 1e-9);
        EXPECT_LE(result.useful_tensor_util,
                  result.tensor_util + 1e-9)
            << BackendName(backend);
    }
}

TEST(RunAttention, DegenerateBatches)
{
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    auto prefill_only =
        kernels::HybridBatch::Make(Llama3Tp2(), 2048, 2048, 0, 0);
    auto decode_only =
        kernels::HybridBatch::Make(Llama3Tp2(), 0, 0, 32, 4096);
    for (Backend backend : AllBackends()) {
        AttnRunResult p = RunAttention(backend, prefill_only, spec);
        EXPECT_GT(p.total_time, 0.0);
        EXPECT_GT(p.prefill_time, 0.0);
        EXPECT_DOUBLE_EQ(p.decode_time, 0.0);
        AttnRunResult d = RunAttention(backend, decode_only, spec);
        EXPECT_GT(d.total_time, 0.0);
        EXPECT_GT(d.decode_time, 0.0);
        EXPECT_DOUBLE_EQ(d.prefill_time, 0.0);
    }
}

TEST(RunAttention, PodOverlapsPrefillAndDecode)
{
    // Balanced batch (paper Table 1 C1): the fused kernel finishes
    // well before the serial sum of its parts.
    auto batch =
        kernels::HybridBatch::Make(Llama3Tp2(), 12288, 12288, 220, 12288);
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    AttnRunResult serial = RunAttention(Backend::kFaSerial, batch, spec);
    AttnRunResult pod = RunAttention(Backend::kPod, batch, spec);
    EXPECT_LT(pod.total_time, serial.total_time * 0.8);
    // Both resources busy simultaneously in the fused kernel.
    EXPECT_GT(pod.mem_util, serial.mem_util);
}

TEST(RunAttention, PodReducesEnergy)
{
    auto batch =
        kernels::HybridBatch::Make(Yi6B(), 2048, 16384, 54, 16384);
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    AttnRunResult serial = RunAttention(Backend::kFaSerial, batch, spec);
    AttnRunResult pod = RunAttention(Backend::kPod, batch, spec);
    EXPECT_LT(pod.energy_joules, serial.energy_joules);
}

TEST(RunAttention, ExhaustiveAutotuneAtLeastAsGood)
{
    auto batch =
        kernels::HybridBatch::Make(Yi6B(), 1024, 8192, 48, 8192);
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    AttnRunOptions two;
    two.pod.ctas_per_sm = CtasPerSm::kTwo;
    AttnRunOptions four;
    four.pod.ctas_per_sm = CtasPerSm::kFour;
    AttnRunOptions best;
    best.pod.ctas_per_sm = CtasPerSm::kExhaustive;
    double t2 = RunAttention(Backend::kPod, batch, spec, two).total_time;
    double t4 = RunAttention(Backend::kPod, batch, spec, four).total_time;
    double tb = RunAttention(Backend::kPod, batch, spec, best).total_time;
    EXPECT_LE(tb, std::min(t2, t4) + 1e-12);
}

TEST(RunAttention, FiBatchedDegradesAtLongContext)
{
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    // Long context: FI_Batched pays padded compute + group re-reads.
    auto long_ctx =
        kernels::HybridBatch::Make(Llama3Tp2(), 1024, 16384, 64, 16384);
    double serial =
        RunAttention(Backend::kFaSerial, long_ctx, spec).total_time;
    double batched =
        RunAttention(Backend::kFiBatched, long_ctx, spec).total_time;
    EXPECT_GT(batched, serial * 1.1);
}

TEST(PodAttentionApi, RunAndSpeedup)
{
    PodAttention pod(gpusim::GpuSpec::A100Sxm80GB());
    auto batch =
        kernels::HybridBatch::Make(Llama3Tp2(), 12288, 12288, 128, 12288);
    AttnRunResult result = pod.Run(batch);
    EXPECT_EQ(result.backend, Backend::kPod);
    EXPECT_GT(result.pod_plan.prefill_ctas, 0);
    double speedup = pod.SpeedupOverSerial(batch);
    EXPECT_GT(speedup, 1.0);
}

TEST(RunAttention, PersistentVariantOnPar)
{
    // Paper S4.4: the persistent-threads strategy, combined with
    // SM-aware scheduling, performs on par with CTA-parallel fusion.
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    for (int bs : {48, 128}) {
        auto batch = kernels::HybridBatch::Make(Llama3Tp2(), 2048, 12288,
                                                bs, 12288);
        AttnRunOptions persistent;
        persistent.pod.persistent = true;
        double tp =
            RunAttention(Backend::kPod, batch, spec, persistent)
                .total_time;
        double tc = RunAttention(Backend::kPod, batch, spec).total_time;
        double serial =
            RunAttention(Backend::kFaSerial, batch, spec).total_time;
        EXPECT_LT(tp, serial) << "bs=" << bs;
        EXPECT_NEAR(tp / tc, 1.0, 0.15) << "bs=" << bs;
    }
}

TEST(BackendNames, AllDistinct)
{
    auto backends = AllBackends();
    EXPECT_EQ(backends.size(), 6u);
    for (size_t i = 0; i < backends.size(); ++i) {
        for (size_t j = i + 1; j < backends.size(); ++j) {
            EXPECT_STRNE(BackendName(backends[i]),
                         BackendName(backends[j]));
        }
    }
}

/**
 * The paper's key claim (S5.1): "unlike other alternatives,
 * POD-Attention never under-performs serial execution" -- checked
 * over a sweep of batch compositions (context length x chunk size x
 * decode batch size), with a small tolerance for simulation noise.
 */
class PodNeverSlowerTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(PodNeverSlowerTest, PodVsSerial)
{
    auto [ctx, chunk, decode_bs] = GetParam();
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    auto batch = kernels::HybridBatch::Make(Llama3Tp2(), chunk, ctx,
                                            decode_bs, ctx);
    double serial =
        RunAttention(Backend::kFaSerial, batch, spec).total_time;
    double pod = RunAttention(Backend::kPod, batch, spec).total_time;
    EXPECT_LE(pod, serial * 1.03)
        << "ctx=" << ctx << " chunk=" << chunk << " bs=" << decode_bs;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PodNeverSlowerTest,
    ::testing::Combine(::testing::Values(4096, 8192, 16384),  // context
                       ::testing::Values(512, 1024, 2048),    // chunk
                       ::testing::Values(8, 32, 96, 200)));   // decode bs

}  // namespace
}  // namespace pod::core
