/**
 * @file
 * Unit tests for POD-Attention kernel assembly: plan resolution,
 * CTAs/SM heuristic, split limiting, virtual CTA packing and policy
 * instantiation.
 */
#include "core/pod_kernel.h"

#include <gtest/gtest.h>

#include "gpusim/engine.h"

namespace pod::core {
namespace {

kernels::AttnShape
Llama3Tp2()
{
    kernels::AttnShape shape;
    shape.num_q_heads = 16;
    shape.num_kv_heads = 4;
    shape.head_dim = 128;
    return shape;
}

TEST(ChooseCtasPerSmTest, ForcedSettings)
{
    auto batch = kernels::HybridBatch::Make(Llama3Tp2(), 512, 16384, 64,
                                            16384);
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    PodOptions options;
    options.ctas_per_sm = CtasPerSm::kTwo;
    EXPECT_EQ(ChooseCtasPerSm(batch, spec, options), 2);
    options.ctas_per_sm = CtasPerSm::kFour;
    EXPECT_EQ(ChooseCtasPerSm(batch, spec, options), 4);
}

TEST(ChooseCtasPerSmTest, HeuristicFollowsDominance)
{
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    PodOptions options;  // auto

    // Long full prefill + few decodes: prefill dominates -> 2.
    auto prefill_heavy =
        kernels::HybridBatch::Make(Llama3Tp2(), 16384, 16384, 16, 4096);
    EXPECT_EQ(ChooseCtasPerSm(prefill_heavy, spec, options), 2);

    // Small chunk + many long decodes: decode dominates -> 4.
    auto decode_heavy =
        kernels::HybridBatch::Make(Llama3Tp2(), 512, 4096, 200, 16384);
    EXPECT_EQ(ChooseCtasPerSm(decode_heavy, spec, options), 4);
}

TEST(BuildPodKernelTest, PlanBasics)
{
    auto batch = kernels::HybridBatch::Make(Llama3Tp2(), 512, 16384, 64,
                                            16384);
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    PodOptions options;
    PodPlan plan;
    gpusim::KernelDesc kernel = BuildPodKernel(batch, spec, options, &plan);

    EXPECT_TRUE(plan.ctas_per_sm == 2 || plan.ctas_per_sm == 4);
    EXPECT_GT(plan.prefill_ctas, 0);
    EXPECT_GT(plan.decode_physical_ctas, 0);
    EXPECT_EQ(plan.decode_virtual_units,
              64 * 4 * plan.decode_splits);  // bs x kv_heads x splits
    // Virtual packing: 4 units per physical CTA.
    EXPECT_EQ(plan.decode_physical_ctas,
              (plan.decode_virtual_units + 3) / 4);
    EXPECT_EQ(kernel.cta_count, plan.TotalCtas());
    EXPECT_EQ(kernel.max_ctas_per_sm, plan.ctas_per_sm);
    // The fused footprint matches the prefill tile.
    EXPECT_DOUBLE_EQ(
        plan.resources.shared_mem_bytes,
        plan.prefill_tile.SmemBytes(batch.shape.head_dim));
}

TEST(BuildPodKernelTest, LimitedSplitsAreLimited)
{
    auto batch = kernels::HybridBatch::Make(Llama3Tp2(), 512, 16384, 64,
                                            16384);
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();

    PodOptions limited;
    limited.split_policy = SplitPolicy::kLimited;
    limited.ctas_per_sm = CtasPerSm::kTwo;
    PodPlan lim_plan;
    BuildPodKernel(batch, spec, limited, &lim_plan);

    PodOptions vanilla = limited;
    vanilla.split_policy = SplitPolicy::kVanilla;
    PodPlan van_plan;
    BuildPodKernel(batch, spec, vanilla, &van_plan);

    EXPECT_LT(lim_plan.prefill_splits, van_plan.prefill_splits);
    // Limited: prefill CTAs fit in two waves of SMs.
    EXPECT_LE(lim_plan.prefill_ctas, 2 * spec.num_sms);
    // Splits add memory traffic (partials + merge).
    EXPECT_GT(van_plan.mem_bytes, lim_plan.mem_bytes);
}

TEST(BuildPodKernelTest, FiftyFiftyPolicy)
{
    auto batch =
        kernels::HybridBatch::Make(Llama3Tp2(), 1024, 8192, 32, 8192);
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    PodOptions options;
    options.policy = SchedPolicy::kFiftyFifty;
    PodPlan plan;
    BuildPodKernel(batch, spec, options, &plan);
    EXPECT_EQ(plan.policy.ratio_a, 1);
    EXPECT_EQ(plan.policy.ratio_b, 1);
}

TEST(BuildPodKernelTest, WorkConservation)
{
    // Everything the plan promises is dispatched by the kernel.
    auto batch =
        kernels::HybridBatch::Make(Llama3Tp2(), 1024, 4096, 24, 8192);
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    PodOptions options;
    PodPlan plan;
    gpusim::KernelDesc kernel = BuildPodKernel(batch, spec, options, &plan);

    gpusim::FluidEngine engine(spec);
    gpusim::SimResult result = engine.RunKernel(kernel);
    EXPECT_EQ(result.Op(gpusim::OpClass::kPrefill).unit_count,
              plan.prefill_ctas);
    EXPECT_EQ(result.Op(gpusim::OpClass::kDecode).unit_count,
              plan.decode_virtual_units);
    double served =
        result.Op(gpusim::OpClass::kPrefill).tensor_flops +
        result.Op(gpusim::OpClass::kDecode).tensor_flops;
    EXPECT_NEAR(served, plan.issued_tensor_flops,
                plan.issued_tensor_flops * 1e-6);
}

TEST(BuildPodKernelDeathTest, RequiresBothOps)
{
    gpusim::GpuSpec spec = gpusim::GpuSpec::A100Sxm80GB();
    PodOptions options;
    auto prefill_only =
        kernels::HybridBatch::Make(Llama3Tp2(), 512, 512, 0, 0);
    EXPECT_EXIT(BuildPodKernel(prefill_only, spec, options),
                ::testing::ExitedWithCode(1), "FATAL");
}

TEST(PodConfigNames, Printable)
{
    EXPECT_STREQ(SchedPolicyName(SchedPolicy::kProportional),
                 "proportional");
    EXPECT_STREQ(SchedPolicyName(SchedPolicy::kFiftyFifty), "50:50");
    EXPECT_STREQ(SplitPolicyName(SplitPolicy::kLimited), "limited");
    EXPECT_STREQ(SplitPolicyName(SplitPolicy::kVanilla), "vanilla");
}

}  // namespace
}  // namespace pod::core
