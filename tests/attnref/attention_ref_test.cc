/**
 * @file
 * Numeric tests: the flash-style tiled and split-KV algorithms must
 * reproduce naive attention exactly (to FP32 tolerance) across
 * shapes, tiles, splits and causal offsets.
 */
#include "attnref/attention_ref.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace pod::attnref {
namespace {

constexpr double kTol = 2e-5;

struct Problem
{
    Matrix q, k, v;
};

Problem
RandomProblem(size_t m, size_t n, size_t d, uint64_t seed)
{
    Rng rng(seed);
    Problem p{Matrix(m, d), Matrix(n, d), Matrix(n, d)};
    p.q.FillRandom(rng);
    p.k.FillRandom(rng);
    p.v.FillRandom(rng);
    return p;
}

TEST(NaiveAttention, UniformValuesGiveUniformOutput)
{
    // All V rows identical: attention output equals that row for any
    // softmax weights.
    Problem p = RandomProblem(4, 16, 8, 1);
    for (size_t r = 0; r < p.v.Rows(); ++r) {
        for (size_t c = 0; c < p.v.Cols(); ++c) {
            p.v.At(r, c) = static_cast<float>(c);
        }
    }
    Matrix out = NaiveAttention(p.q, p.k, p.v, 12, true, 0.35f);
    for (size_t r = 0; r < out.Rows(); ++r) {
        for (size_t c = 0; c < out.Cols(); ++c) {
            EXPECT_NEAR(out.At(r, c), static_cast<float>(c), kTol);
        }
    }
}

TEST(NaiveAttention, SingleKeyIsIdentity)
{
    Problem p = RandomProblem(3, 1, 8, 2);
    Matrix out = NaiveAttention(p.q, p.k, p.v, 0, false, 1.0f);
    for (size_t r = 0; r < out.Rows(); ++r) {
        for (size_t c = 0; c < out.Cols(); ++c) {
            EXPECT_NEAR(out.At(r, c), p.v.At(0, c), kTol);
        }
    }
}

TEST(NaiveAttention, CausalMaskLimitsAttention)
{
    // With pos_offset 0, row 0 sees only key 0.
    Problem p = RandomProblem(2, 8, 4, 3);
    Matrix out = NaiveAttention(p.q, p.k, p.v, 0, true, 0.5f);
    for (size_t c = 0; c < 4; ++c) {
        EXPECT_NEAR(out.At(0, c), p.v.At(0, c), kTol);
    }
}

TEST(NaiveAttention, LargeScoreStability)
{
    // Large dot products must not overflow thanks to max-subtraction.
    Problem p = RandomProblem(2, 16, 8, 4);
    for (auto& x : p.q.Data()) x *= 50.0f;
    for (auto& x : p.k.Data()) x *= 50.0f;
    Matrix out = NaiveAttention(p.q, p.k, p.v, 15, true, 1.0f);
    for (float x : out.Data()) {
        EXPECT_TRUE(std::isfinite(x));
    }
}

TEST(FlashTiled, MatchesNaiveNonCausal)
{
    Problem p = RandomProblem(16, 100, 32, 5);
    Matrix naive = NaiveAttention(p.q, p.k, p.v, 0, false, 0.17f);
    Matrix flash =
        FlashAttentionTiled(p.q, p.k, p.v, 0, false, 0.17f, 8, 16);
    EXPECT_LT(naive.MaxAbsDiff(flash), kTol);
}

TEST(FlashTiled, MatchesNaiveCausalWithOffset)
{
    // Chunked prefill: 16 queries, 80 prior tokens (offset 80).
    Problem p = RandomProblem(16, 96, 32, 6);
    Matrix naive = NaiveAttention(p.q, p.k, p.v, 80, true, 0.17f);
    Matrix flash =
        FlashAttentionTiled(p.q, p.k, p.v, 80, true, 0.17f, 4, 7);
    EXPECT_LT(naive.MaxAbsDiff(flash), kTol);
}

TEST(SplitKv, SingleSplitMatchesPartial)
{
    Problem p = RandomProblem(4, 64, 16, 7);
    SplitPartial partial = FlashAttentionPartial(p.q, p.k, p.v, 0, 64, 60,
                                                 true, 0.25f, 16);
    Matrix merged = MergeSplitPartials({partial});
    Matrix naive = NaiveAttention(p.q, p.k, p.v, 60, true, 0.25f);
    EXPECT_LT(naive.MaxAbsDiff(merged), kTol);
}

TEST(SplitKv, MergeMatchesNaive)
{
    Problem p = RandomProblem(4, 100, 16, 8);
    std::vector<SplitPartial> partials;
    int boundaries[] = {0, 30, 64, 100};
    for (int s = 0; s < 3; ++s) {
        partials.push_back(FlashAttentionPartial(
            p.q, p.k, p.v, boundaries[s], boundaries[s + 1], 96, true,
            0.25f, 13));
    }
    Matrix merged = MergeSplitPartials(partials);
    Matrix naive = NaiveAttention(p.q, p.k, p.v, 96, true, 0.25f);
    EXPECT_LT(naive.MaxAbsDiff(merged), kTol);
}

TEST(SplitKv, EmptySplitsAreNeutral)
{
    Problem p = RandomProblem(2, 32, 8, 9);
    SplitPartial full = FlashAttentionPartial(p.q, p.k, p.v, 0, 32, 31,
                                              true, 0.3f, 8);
    SplitPartial empty = FlashAttentionPartial(p.q, p.k, p.v, 32, 32, 31,
                                               true, 0.3f, 8);
    Matrix merged = MergeSplitPartials({full, empty});
    Matrix naive = NaiveAttention(p.q, p.k, p.v, 31, true, 0.3f);
    EXPECT_LT(naive.MaxAbsDiff(merged), kTol);
}

TEST(SplitKv, RowsBeyondCausalReachAreZero)
{
    // A split entirely after the causal limit contributes nothing.
    Problem p = RandomProblem(2, 64, 8, 10);
    SplitPartial after = FlashAttentionPartial(p.q, p.k, p.v, 32, 64,
                                               /*pos_offset=*/8, true,
                                               0.3f, 8);
    for (float lse : after.lse) {
        EXPECT_TRUE(std::isinf(lse) && lse < 0);
    }
}

/**
 * Property sweep: tiled and split-KV agree with naive across shapes,
 * tile sizes, split counts and offsets.
 */
class RefEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(RefEquivalenceTest, AllAlgorithmsAgree)
{
    auto [m, n, tile_kv, splits] = GetParam();
    Problem p = RandomProblem(static_cast<size_t>(m),
                              static_cast<size_t>(n), 16,
                              static_cast<uint64_t>(m * 1000 + n));
    int pos_offset = n - m;  // chunk occupies the sequence tail
    float scale = 0.25f;

    Matrix naive = NaiveAttention(p.q, p.k, p.v, pos_offset, true, scale);
    Matrix flash = FlashAttentionTiled(p.q, p.k, p.v, pos_offset, true,
                                       scale, 8, tile_kv);
    EXPECT_LT(naive.MaxAbsDiff(flash), kTol);

    std::vector<SplitPartial> partials;
    for (int s = 0; s < splits; ++s) {
        int begin = n * s / splits;
        int end = n * (s + 1) / splits;
        partials.push_back(FlashAttentionPartial(
            p.q, p.k, p.v, begin, end, pos_offset, true, scale, tile_kv));
    }
    Matrix merged = MergeSplitPartials(partials);
    EXPECT_LT(naive.MaxAbsDiff(merged), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RefEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 5, 16),       // queries
                       ::testing::Values(16, 33, 128),    // keys
                       ::testing::Values(1, 7, 32),       // tile_kv
                       ::testing::Values(1, 2, 5)));      // splits

}  // namespace
}  // namespace pod::attnref
