/**
 * @file
 * Tests of the paged KV cache and the multi-head hybrid-batch numeric
 * driver: GQA mapping, mode equivalence, and the chunked-prefill
 * consistency invariant (processing a prompt in chunks must equal
 * processing it whole).
 */
#include "attnref/hybrid_ref.h"

#include <gtest/gtest.h>

#include "attnref/attention_ref.h"
#include "common/rng.h"

namespace pod::attnref {
namespace {

constexpr double kTol = 2e-5;

kernels::AttnShape
SmallShape()
{
    kernels::AttnShape shape;
    shape.num_q_heads = 4;
    shape.num_kv_heads = 2;
    shape.head_dim = 8;
    return shape;
}

/** Append `tokens` random tokens to a cache sequence. */
void
AppendRandomTokens(PagedKvCache& cache, int seq, int tokens, Rng& rng)
{
    size_t width = static_cast<size_t>(cache.NumKvHeads()) *
                   static_cast<size_t>(cache.HeadDim());
    std::vector<float> k(width);
    std::vector<float> v(width);
    for (int t = 0; t < tokens; ++t) {
        for (size_t i = 0; i < width; ++i) {
            k[i] = static_cast<float>(rng.UniformReal(-1.0, 1.0));
            v[i] = static_cast<float>(rng.UniformReal(-1.0, 1.0));
        }
        cache.AppendToken(seq, k, v);
    }
}

Matrix
RandomQueries(int rows, const kernels::AttnShape& shape, Rng& rng)
{
    Matrix q(static_cast<size_t>(rows),
             static_cast<size_t>(shape.num_q_heads) *
                 static_cast<size_t>(shape.head_dim));
    q.FillRandom(rng);
    return q;
}

TEST(PagedKv, BlockAllocation)
{
    PagedKvCache cache(4, 2, 8);
    int seq = cache.AddSequence();
    EXPECT_EQ(cache.SeqLen(seq), 0);
    Rng rng(1);
    AppendRandomTokens(cache, seq, 4, rng);
    EXPECT_EQ(cache.SeqLen(seq), 4);
    EXPECT_EQ(cache.SeqBlocks(seq), 1);
    AppendRandomTokens(cache, seq, 1, rng);
    EXPECT_EQ(cache.SeqBlocks(seq), 2);
    EXPECT_EQ(cache.TotalBlocks(), 2);
}

TEST(PagedKv, GatherRoundTrip)
{
    PagedKvCache cache(3, 2, 4);
    int seq = cache.AddSequence();
    // Append tokens with recognizable values.
    for (int t = 0; t < 7; ++t) {
        std::vector<float> k(8);
        std::vector<float> v(8);
        for (int h = 0; h < 2; ++h) {
            for (int c = 0; c < 4; ++c) {
                k[static_cast<size_t>(h * 4 + c)] =
                    static_cast<float>(100 * h + 10 * t + c);
                v[static_cast<size_t>(h * 4 + c)] =
                    -static_cast<float>(100 * h + 10 * t + c);
            }
        }
        cache.AppendToken(seq, k, v);
    }
    Matrix k1 = cache.GatherK(seq, 1);
    ASSERT_EQ(k1.Rows(), 7u);
    ASSERT_EQ(k1.Cols(), 4u);
    EXPECT_FLOAT_EQ(k1.At(5, 2), 152.0f);
    Matrix v0 = cache.GatherV(seq, 0);
    EXPECT_FLOAT_EQ(v0.At(6, 3), -63.0f);
}

TEST(PagedKv, IndependentSequences)
{
    PagedKvCache cache(4, 1, 4);
    int a = cache.AddSequence();
    int b = cache.AddSequence();
    Rng rng(2);
    AppendRandomTokens(cache, a, 5, rng);
    AppendRandomTokens(cache, b, 9, rng);
    EXPECT_EQ(cache.SeqLen(a), 5);
    EXPECT_EQ(cache.SeqLen(b), 9);
    EXPECT_EQ(cache.SeqBlocks(a), 2);
    EXPECT_EQ(cache.SeqBlocks(b), 3);
}

TEST(HybridRef, ModesAgree)
{
    kernels::AttnShape shape = SmallShape();
    PagedKvCache cache(4, shape.num_kv_heads, shape.head_dim);
    Rng rng(3);

    int prefill_seq = cache.AddSequence();
    AppendRandomTokens(cache, prefill_seq, 24, rng);  // 16 ctx + 8 chunk

    std::vector<int> decode_seqs;
    for (int i = 0; i < 3; ++i) {
        int seq = cache.AddSequence();
        AppendRandomTokens(cache, seq, 10 + 7 * i, rng);
        decode_seqs.push_back(seq);
    }

    Matrix prefill_q = RandomQueries(8, shape, rng);
    Matrix decode_q = RandomQueries(3, shape, rng);

    HybridRefResult naive = ComputeHybridAttention(
        shape, cache, prefill_q, prefill_seq, decode_q, decode_seqs,
        RefMode::kNaive);
    HybridRefResult flash = ComputeHybridAttention(
        shape, cache, prefill_q, prefill_seq, decode_q, decode_seqs,
        RefMode::kFlash, /*tile_kv=*/5);
    HybridRefResult split = ComputeHybridAttention(
        shape, cache, prefill_q, prefill_seq, decode_q, decode_seqs,
        RefMode::kFlashSplitKv, /*tile_kv=*/8, /*num_splits=*/3);

    EXPECT_LT(naive.prefill_out.MaxAbsDiff(flash.prefill_out), kTol);
    EXPECT_LT(naive.decode_out.MaxAbsDiff(flash.decode_out), kTol);
    EXPECT_LT(naive.prefill_out.MaxAbsDiff(split.prefill_out), kTol);
    EXPECT_LT(naive.decode_out.MaxAbsDiff(split.decode_out), kTol);
}

TEST(HybridRef, GqaMapping)
{
    // With 2 kv heads and 4 q heads, q heads {0,1} must read kv head
    // 0: make kv head 1's values enormous; heads 0,1 outputs must
    // stay small.
    kernels::AttnShape shape = SmallShape();
    PagedKvCache cache(4, 2, shape.head_dim);
    Rng rng(4);
    int seq = cache.AddSequence();
    size_t width = 2u * static_cast<size_t>(shape.head_dim);
    for (int t = 0; t < 6; ++t) {
        std::vector<float> k(width);
        std::vector<float> v(width);
        for (size_t i = 0; i < width; ++i) {
            k[i] = static_cast<float>(rng.UniformReal(-1.0, 1.0));
            bool head1 = i >= static_cast<size_t>(shape.head_dim);
            v[i] = head1 ? 1000.0f
                         : static_cast<float>(rng.UniformReal(-1.0, 1.0));
        }
        cache.AppendToken(seq, k, v);
    }
    Matrix decode_q = RandomQueries(1, shape, rng);
    HybridRefResult out = ComputeHybridAttention(
        shape, cache, Matrix(), 0, decode_q, {seq}, RefMode::kNaive);
    // q heads 0/1 -> kv head 0 (small); q heads 2/3 -> kv head 1.
    for (int c = 0; c < 2 * shape.head_dim; ++c) {
        EXPECT_LT(std::abs(out.decode_out.At(0, static_cast<size_t>(c))),
                  10.0f);
    }
    for (int c = 2 * shape.head_dim; c < 4 * shape.head_dim; ++c) {
        EXPECT_NEAR(out.decode_out.At(0, static_cast<size_t>(c)), 1000.0f,
                    1.0f);
    }
}

TEST(HybridRef, ChunkedPrefillEqualsWholePrefill)
{
    // Processing a 24-token prompt as chunks of 8 must give each
    // chunk the same outputs as computing the whole prompt at once --
    // the correctness foundation of chunked prefills (paper S2.1).
    kernels::AttnShape shape = SmallShape();
    PagedKvCache cache(4, shape.num_kv_heads, shape.head_dim);
    Rng rng(5);
    int seq = cache.AddSequence();
    AppendRandomTokens(cache, seq, 24, rng);
    Matrix all_q = RandomQueries(24, shape, rng);

    // Whole-prompt prefill (kv already contains all 24 tokens).
    HybridRefResult whole = ComputeHybridAttention(
        shape, cache, all_q, seq, Matrix(), {}, RefMode::kNaive);

    // Chunked: recompute per chunk against a cache truncated to the
    // chunk's reach. Build fresh caches containing only the visible
    // prefix.
    for (int chunk_idx = 0; chunk_idx < 3; ++chunk_idx) {
        int begin = chunk_idx * 8;
        int end = begin + 8;
        PagedKvCache prefix(4, shape.num_kv_heads, shape.head_dim);
        int pseq = prefix.AddSequence();
        // Copy the first `end` tokens from the full cache.
        for (int t = 0; t < end; ++t) {
            std::vector<float> k;
            std::vector<float> v;
            for (int h = 0; h < shape.num_kv_heads; ++h) {
                Matrix kh = cache.GatherK(seq, h);
                Matrix vh = cache.GatherV(seq, h);
                for (int c = 0; c < shape.head_dim; ++c) {
                    k.push_back(kh.At(static_cast<size_t>(t),
                                      static_cast<size_t>(c)));
                    v.push_back(vh.At(static_cast<size_t>(t),
                                      static_cast<size_t>(c)));
                }
            }
            prefix.AppendToken(pseq, k, v);
        }
        Matrix chunk_q = all_q.Slice(static_cast<size_t>(begin),
                                     static_cast<size_t>(end));
        HybridRefResult chunked = ComputeHybridAttention(
            shape, prefix, chunk_q, pseq, Matrix(), {}, RefMode::kFlash,
            /*tile_kv=*/4);
        Matrix expected = whole.prefill_out.Slice(
            static_cast<size_t>(begin), static_cast<size_t>(end));
        EXPECT_LT(expected.MaxAbsDiff(chunked.prefill_out), kTol)
            << "chunk " << chunk_idx;
    }
}

TEST(HybridRef, DecodeOnlyAndPrefillOnly)
{
    kernels::AttnShape shape = SmallShape();
    PagedKvCache cache(4, shape.num_kv_heads, shape.head_dim);
    Rng rng(6);
    int seq = cache.AddSequence();
    AppendRandomTokens(cache, seq, 12, rng);

    Matrix decode_q = RandomQueries(1, shape, rng);
    HybridRefResult decode_only = ComputeHybridAttention(
        shape, cache, Matrix(), 0, decode_q, {seq}, RefMode::kFlash);
    EXPECT_EQ(decode_only.prefill_out.Rows(), 0u);
    EXPECT_EQ(decode_only.decode_out.Rows(), 1u);

    Matrix prefill_q = RandomQueries(12, shape, rng);
    HybridRefResult prefill_only = ComputeHybridAttention(
        shape, cache, prefill_q, seq, Matrix(), {}, RefMode::kFlash);
    EXPECT_EQ(prefill_only.prefill_out.Rows(), 12u);
    EXPECT_EQ(prefill_only.decode_out.Rows(), 0u);
}

TEST(MatrixTest, SliceAndDiff)
{
    Matrix a(4, 2);
    for (size_t r = 0; r < 4; ++r) {
        a.At(r, 0) = static_cast<float>(r);
        a.At(r, 1) = static_cast<float>(2 * r);
    }
    Matrix s = a.Slice(1, 3);
    ASSERT_EQ(s.Rows(), 2u);
    EXPECT_FLOAT_EQ(s.At(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(s.At(1, 1), 4.0f);

    Matrix b = a;
    b.At(2, 1) += 0.5f;
    EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
}

}  // namespace
}  // namespace pod::attnref
