/**
 * @file
 * Unit tests for the S3.3 fusion case-study micro-benchmark (Fig. 7).
 */
#include "kernels/micro.h"

#include <gtest/gtest.h>

namespace pod::kernels {
namespace {

gpusim::SimOptions
NoOverhead()
{
    gpusim::SimOptions opts;
    opts.kernel_launch_overhead = 0.0;
    return opts;
}

gpusim::GpuSpec
Gpu()
{
    return gpusim::GpuSpec::A100Sxm80GB();
}

TEST(Micro, CalibrationBalancedAt100Iters)
{
    MicroParams params;
    params.compute_iters = 100;
    params.memory_iters = 100;
    double serial =
        RunMicroStrategy(FusionStrategy::kSerial, params, Gpu(),
                         NoOverhead());
    double oracle =
        RunMicroStrategy(FusionStrategy::kOracle, params, Gpu(),
                         NoOverhead());
    // Both kernels calibrated to ~1 ms: serial ~2 ms, oracle ~1 ms.
    EXPECT_NEAR(serial, 2e-3, 0.2e-3);
    EXPECT_NEAR(oracle, 1e-3, 0.1e-3);
}

TEST(Micro, SerialIsSumOracleIsMax)
{
    MicroParams params;
    params.compute_iters = 150;
    params.memory_iters = 100;
    double serial = RunMicroStrategy(FusionStrategy::kSerial, params,
                                     Gpu(), NoOverhead());
    double oracle = RunMicroStrategy(FusionStrategy::kOracle, params,
                                     Gpu(), NoOverhead());
    EXPECT_NEAR(serial, 2.5e-3, 0.25e-3);
    EXPECT_NEAR(oracle, 1.5e-3, 0.15e-3);
}

TEST(Micro, SmAwareNearOracle)
{
    MicroParams params;
    for (int iters : {60, 100, 160}) {
        params.compute_iters = iters;
        double sm_aware = RunMicroStrategy(FusionStrategy::kSmAwareCta,
                                           params, Gpu(), NoOverhead());
        double oracle = RunMicroStrategy(FusionStrategy::kOracle, params,
                                         Gpu(), NoOverhead());
        double serial = RunMicroStrategy(FusionStrategy::kSerial, params,
                                         Gpu(), NoOverhead());
        EXPECT_GE(sm_aware, oracle * 0.99);
        // Within 25% of the oracle, far better than serial.
        EXPECT_LE(sm_aware, oracle * 1.25) << "iters=" << iters;
        EXPECT_LT(sm_aware, serial * 0.75) << "iters=" << iters;
    }
}

TEST(Micro, StrategyOrderingMatchesPaper)
{
    // At the balanced point: serial slowest; streams/CTA marginal;
    // intra-thread in between; SM-aware close to optimal (Fig. 7).
    MicroParams params;
    params.compute_iters = 100;
    params.memory_iters = 100;
    auto run = [&](FusionStrategy s) {
        return RunMicroStrategy(s, params, Gpu(), NoOverhead());
    };
    double serial = run(FusionStrategy::kSerial);
    double streams = run(FusionStrategy::kStreams);
    double cta = run(FusionStrategy::kCtaParallel);
    double intra = run(FusionStrategy::kIntraThread);
    double sm_aware = run(FusionStrategy::kSmAwareCta);
    double oracle = run(FusionStrategy::kOracle);

    // Band: 1e-9 relative. At the balanced point SM-aware ties the
    // optimal oracle exactly; the two cores round the final drain
    // differently by a few ulp (1e-15 relative here), so the tie must
    // not be compared strictly.
    EXPECT_LE(oracle, sm_aware * (1.0 + 1e-9));
    EXPECT_LT(sm_aware, intra);
    EXPECT_LT(intra, serial);
    // Streams and naive CTA-parallel beat serial by much less than
    // SM-aware scheduling does (no co-location guarantee).
    EXPECT_LE(streams, serial * 1.02);
    EXPECT_GT(streams, serial * 0.85);
    EXPECT_LE(cta, serial * 1.02);
    EXPECT_GT(cta, sm_aware * 1.15);
}

TEST(Micro, MonotonicInComputeIters)
{
    MicroParams params;
    double prev = 0.0;
    for (int iters : {40, 80, 120, 160, 200}) {
        params.compute_iters = iters;
        double t = RunMicroStrategy(FusionStrategy::kSmAwareCta, params,
                                    Gpu(), NoOverhead());
        EXPECT_GE(t, prev * 0.999);
        prev = t;
    }
}

TEST(Micro, StrategyNames)
{
    EXPECT_STREQ(FusionStrategyName(FusionStrategy::kSerial), "Serial");
    EXPECT_STREQ(FusionStrategyName(FusionStrategy::kOracle), "Optimal");
    EXPECT_STREQ(FusionStrategyName(FusionStrategy::kSmAwareCta),
                 "SM-aware CTA");
}

TEST(MicroDeathTest, RejectsNonPositiveIters)
{
    MicroParams params;
    params.compute_iters = 0;
    EXPECT_EXIT(RunMicroStrategy(FusionStrategy::kSerial, params, Gpu()),
                ::testing::ExitedWithCode(1), "FATAL");
}

}  // namespace
}  // namespace pod::kernels
