/**
 * @file
 * Unit tests for hybrid-batch problem descriptions.
 */
#include "kernels/attn_types.h"

#include <gtest/gtest.h>

namespace pod::kernels {
namespace {

TEST(AttnShape, GroupSize)
{
    AttnShape shape;
    shape.num_q_heads = 32;
    shape.num_kv_heads = 4;
    EXPECT_EQ(shape.GroupSize(), 8);
    shape.num_kv_heads = 32;
    EXPECT_EQ(shape.GroupSize(), 1);
}

TEST(AttnShapeDeathTest, RejectsNonDividingHeads)
{
    AttnShape shape;
    shape.num_q_heads = 30;
    shape.num_kv_heads = 4;
    EXPECT_EXIT(shape.Validate(), ::testing::ExitedWithCode(1), "FATAL");
}

TEST(PrefillItem, QueryOffset)
{
    PrefillItem p{512, 4096};
    EXPECT_EQ(p.QueryOffset(), 3584);
    PrefillItem full{4096, 4096};
    EXPECT_EQ(full.QueryOffset(), 0);
}

TEST(PrefillItemDeathTest, KvMustIncludeChunk)
{
    PrefillItem p{512, 256};
    EXPECT_EXIT(p.Validate(), ::testing::ExitedWithCode(1), "FATAL");
}

TEST(DecodeItem, UniformAndTotals)
{
    DecodeItem d = DecodeItem::Uniform(5, 1000);
    EXPECT_EQ(d.BatchSize(), 5);
    EXPECT_EQ(d.TotalContext(), 5000);
}

TEST(HybridBatch, MakeAndDescribe)
{
    AttnShape shape;
    shape.num_q_heads = 16;
    shape.num_kv_heads = 4;
    HybridBatch batch = HybridBatch::Make(shape, 512, 4096, 10, 8192);
    batch.Validate();
    EXPECT_TRUE(batch.HasPrefill());
    EXPECT_TRUE(batch.HasDecode());
    std::string desc = batch.Describe();
    EXPECT_NE(desc.find("chunk=512"), std::string::npos);
    EXPECT_NE(desc.find("bs=10"), std::string::npos);
}

TEST(HybridBatch, DegenerateForms)
{
    AttnShape shape;
    shape.num_q_heads = 8;
    shape.num_kv_heads = 8;
    HybridBatch prefill_only = HybridBatch::Make(shape, 512, 512, 0, 0);
    prefill_only.Validate();
    EXPECT_FALSE(prefill_only.HasDecode());

    HybridBatch decode_only = HybridBatch::Make(shape, 0, 0, 4, 1024);
    decode_only.Validate();
    EXPECT_FALSE(decode_only.HasPrefill());
}

TEST(HybridBatchDeathTest, RejectsEmpty)
{
    AttnShape shape;
    HybridBatch batch;
    batch.shape = shape;
    EXPECT_EXIT(batch.Validate(), ::testing::ExitedWithCode(1), "FATAL");
}

}  // namespace
}  // namespace pod::kernels
