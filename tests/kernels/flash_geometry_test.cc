/**
 * @file
 * Unit tests for the FlashAttention-style geometry builders: grid
 * sizes, FLOP/byte accounting, causal masking, padding redundancy and
 * split heuristics.
 */
#include "kernels/flash_geometry.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace pod::kernels {
namespace {

AttnShape
Shape(int q_heads, int kv_heads, int d = 128)
{
    AttnShape shape;
    shape.num_q_heads = q_heads;
    shape.num_kv_heads = kv_heads;
    shape.head_dim = d;
    return shape;
}

GeomOptions
Opts(TileConfig tile, int splits = 1)
{
    GeomOptions opts;
    opts.tile = tile;
    opts.num_splits = splits;
    return opts;
}

TEST(PrefillGeometry, GridSize)
{
    // 8 q heads, chunk 512 at tile 128 -> 4 q tiles per head.
    UnitGeometry geom = BuildPrefillUnits(
        Shape(8, 2), PrefillItem{512, 512}, Opts(PrefillTileLarge()));
    EXPECT_EQ(geom.units.size(), 8u * 4u);
}

TEST(PrefillGeometry, GridSizeWithSplits)
{
    UnitGeometry geom = BuildPrefillUnits(
        Shape(8, 2), PrefillItem{512, 4096}, Opts(PrefillTileLarge(), 3));
    EXPECT_EQ(geom.units.size(), 8u * 4u * 3u);
}

TEST(PrefillGeometry, UsefulFlopsAreCausallyExact)
{
    // Single head, chunk 128 == kv 128, tile 128: useful scores are
    // the causal triangle: sum_{i=1..128} i = 128*129/2.
    UnitGeometry geom = BuildPrefillUnits(
        Shape(1, 1, 64), PrefillItem{128, 128}, Opts(PrefillTileLarge()));
    double expected_scores = 128.0 * 129.0 / 2.0;
    EXPECT_NEAR(geom.useful_tensor_flops, 4.0 * expected_scores * 64.0,
                1.0);
    // Issued covers the full padded tile: 128 x 128 scores.
    EXPECT_NEAR(geom.issued_tensor_flops, 4.0 * 128.0 * 128.0 * 64.0, 1.0);
}

TEST(PrefillGeometry, ChunkedPrefillSeesPriorContext)
{
    // Chunk 128 with 4096 of prior context: every query row attends
    // at least the 3968-token prefix.
    UnitGeometry geom = BuildPrefillUnits(
        Shape(1, 1, 64), PrefillItem{128, 4096}, Opts(PrefillTileLarge()));
    double prefix_scores = 128.0 * (4096.0 - 128.0);
    EXPECT_GT(geom.useful_tensor_flops, 4.0 * prefix_scores * 64.0);
    // And memory traffic covers the whole 4K context (both K and V).
    EXPECT_GT(geom.mem_bytes, 4096.0 * 64.0 * 2.0 * 2.0 * 0.5);
}

TEST(PrefillGeometry, SplitsPreserveTotalWork)
{
    UnitGeometry one = BuildPrefillUnits(
        Shape(4, 4), PrefillItem{256, 8192}, Opts(PrefillTileLarge(), 1));
    UnitGeometry four = BuildPrefillUnits(
        Shape(4, 4), PrefillItem{256, 8192}, Opts(PrefillTileLarge(), 4));
    EXPECT_NEAR(four.issued_tensor_flops, one.issued_tensor_flops,
                one.issued_tensor_flops * 1e-9);
    EXPECT_NEAR(four.useful_tensor_flops, one.useful_tensor_flops,
                one.useful_tensor_flops * 1e-9);
    // Splits add partial-output and merge traffic.
    EXPECT_GT(four.mem_bytes, one.mem_bytes);
}

TEST(PrefillGeometry, SharedMemoryMatchesTile)
{
    UnitGeometry geom = BuildPrefillUnits(
        Shape(2, 2), PrefillItem{128, 128}, Opts(PrefillTileLarge()));
    // (128 + 2*64) * 128 * 2B = 64 KiB.
    EXPECT_DOUBLE_EQ(geom.resources.shared_mem_bytes, 65536.0);
    EXPECT_EQ(geom.resources.threads, 256);
}

TEST(DecodeGeometry, GridIsBatchTimesKvHeads)
{
    UnitGeometry geom = BuildDecodeUnits(
        Shape(32, 4), DecodeItem::Uniform(10, 4096), Opts(DecodeTileFa()));
    EXPECT_EQ(geom.units.size(), 10u * 4u);
}

TEST(DecodeGeometry, PaddingRedundancyScalesWithTile)
{
    // GQA group 8: useful rows 8, padded to the QSL tile.
    AttnShape shape = Shape(32, 4);
    UnitGeometry t64 = BuildDecodeUnits(
        shape, DecodeItem::Uniform(4, 4096), Opts(DecodeTileFa()));
    UnitGeometry t16 = BuildDecodeUnits(
        shape, DecodeItem::Uniform(4, 4096), Opts(DecodeTilePod()));
    EXPECT_NEAR(t64.issued_tensor_flops / t16.issued_tensor_flops, 4.0,
                1e-6);
    // Useful work identical; memory nearly identical.
    EXPECT_NEAR(t64.useful_tensor_flops, t16.useful_tensor_flops, 1.0);
    EXPECT_NEAR(t64.mem_bytes, t16.mem_bytes, t64.mem_bytes * 0.01);
}

TEST(DecodeGeometry, IssuedAtLeastUseful)
{
    UnitGeometry geom = BuildDecodeUnits(
        Shape(32, 8), DecodeItem::Uniform(7, 1000), Opts(DecodeTilePod()));
    EXPECT_GE(geom.issued_tensor_flops, geom.useful_tensor_flops);
}

TEST(DecodeGeometry, MemoryDominatedByKv)
{
    int ctx = 16384;
    UnitGeometry geom = BuildDecodeUnits(
        Shape(32, 4), DecodeItem::Uniform(1, ctx), Opts(DecodeTileFa()));
    double kv_bytes = 4.0 * ctx * 128.0 * 2.0 * 2.0;  // 4 kv heads
    EXPECT_GT(geom.mem_bytes, kv_bytes);
    EXPECT_LT(geom.mem_bytes, kv_bytes * 1.1);
}

TEST(DecodeGeometry, MixedContextLengths)
{
    DecodeItem decode;
    decode.context_lens = {1024, 2048, 4096};
    UnitGeometry geom =
        BuildDecodeUnits(Shape(8, 2), decode, Opts(DecodeTilePod()));
    EXPECT_EQ(geom.units.size(), 3u * 2u);
    // Unit work scales with context: last request's units the largest.
    double first = geom.units[0].TotalMemBytes();
    double last = geom.units[4].TotalMemBytes();
    EXPECT_GT(last, first * 3.5);
}

TEST(DecodeAsPrefillGeometry, GroupRedundantTraffic)
{
    AttnShape shape = Shape(32, 4);  // group 8
    UnitGeometry decode = BuildDecodeUnits(
        shape, DecodeItem::Uniform(4, 8192), Opts(DecodeTilePod()));
    UnitGeometry batched = BuildDecodeAsPrefillUnits(
        shape, DecodeItem::Uniform(4, 8192), Opts(PrefillTileLarge()));
    // One unit per q head (not per kv head).
    EXPECT_EQ(batched.units.size(), 4u * 32u);
    // The prefill path issues far more padded compute...
    EXPECT_GT(batched.issued_tensor_flops,
              4.0 * decode.issued_tensor_flops);
    // ...and more DRAM traffic (group re-reads, partly L2-absorbed).
    EXPECT_GT(batched.mem_bytes, decode.mem_bytes * 1.2);
}

TEST(KvDramFactorTest, Bounds)
{
    EXPECT_DOUBLE_EQ(KvDramFactor(1, 0.12), 1.0);
    // Two reads at miss fraction 0.5: (1 + 0.5) / 2.
    EXPECT_DOUBLE_EQ(KvDramFactor(2, 0.5), 0.75);
    // Many reads converge to the miss fraction.
    EXPECT_NEAR(KvDramFactor(1000, 0.12), 0.12, 0.01);
    // Factor never exceeds 1 nor drops below the miss fraction.
    for (int reads = 1; reads <= 64; reads *= 2) {
        double f = KvDramFactor(reads, 0.12);
        EXPECT_LE(f, 1.0);
        EXPECT_GE(f, 0.12);
    }
}

TEST(SplitHeuristics, FlashDecodingFillsDevice)
{
    // 32 base CTAs, target 108: needs 4 splits.
    EXPECT_EQ(FlashDecodingSplits(32, 100000, 108), 4);
    // Already enough CTAs: no splits.
    EXPECT_EQ(FlashDecodingSplits(880, 100000, 108), 1);
    // Context bound: can't split 300 tokens 4 ways at 256 min.
    EXPECT_EQ(FlashDecodingSplits(32, 300, 108), 1);
    // Max splits cap.
    EXPECT_EQ(FlashDecodingSplits(1, 1 << 20, 10000, 256, 16), 16);
    EXPECT_EQ(FlashDecodingSplits(0, 100, 108), 1);
}

TEST(SplitHeuristics, VanillaVsLimited)
{
    // Paper Table 8 configuration: Llama-3-8B TP-2 (16 q heads),
    // chunk 512, ctx 16K -> 64 base CTAs on 108 SMs.
    int base = 64;
    int vanilla = VanillaPrefillSplits(base, 16384, 108);
    int limited = LimitedPrefillSplits(base, 16384, 108);
    EXPECT_GT(vanilla, limited);
    EXPECT_EQ(limited, 3);  // floor(2*108/64)
    EXPECT_GE(vanilla, 8);
    // Limited never exceeds two waves of SMs.
    EXPECT_LE(limited * base, 2 * 108);
}

TEST(SplitHeuristics, LimitedShortContext)
{
    // Tiny context: no room to split at all.
    EXPECT_EQ(LimitedPrefillSplits(4, 128, 108), 1);
    // Large base: one split.
    EXPECT_EQ(LimitedPrefillSplits(1024, 16384, 108), 1);
}

TEST(PrefillGeometry, PhasesBounded)
{
    GeomOptions opts = Opts(PrefillTileLarge());
    opts.phases_per_unit = 4;
    UnitGeometry geom = BuildPrefillUnits(Shape(2, 2),
                                          PrefillItem{1024, 16384}, opts);
    for (const auto& unit : geom.units) {
        EXPECT_LE(unit.phases.size(), 4u);
        EXPECT_GE(unit.phases.size(), 1u);
    }
}

TEST(PrefillGeometry, UnitMetadata)
{
    UnitGeometry geom = BuildPrefillUnits(
        Shape(2, 2), PrefillItem{128, 128}, Opts(PrefillTileLarge()));
    for (const auto& unit : geom.units) {
        EXPECT_EQ(unit.op, gpusim::OpClass::kPrefill);
        EXPECT_EQ(unit.warps, 8);
        EXPECT_GT(unit.mem_bw_cap, 0.0);
    }
}

TEST(DecodeGeometry, UnitMetadata)
{
    UnitGeometry geom = BuildDecodeUnits(
        Shape(8, 2), DecodeItem::Uniform(2, 512), Opts(DecodeTileVirtual()));
    for (const auto& unit : geom.units) {
        EXPECT_EQ(unit.op, gpusim::OpClass::kDecode);
        EXPECT_EQ(unit.warps, 1);
    }
}

/** Property sweep: work accounting is consistent across shapes. */
class GeometryPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(GeometryPropertyTest, AccountingInvariants)
{
    auto [q_heads, kv_heads, chunk, ctx] = GetParam();
    AttnShape shape = Shape(q_heads, kv_heads);
    UnitGeometry prefill = BuildPrefillUnits(
        shape, PrefillItem{chunk, ctx}, Opts(PrefillTileLarge()));
    UnitGeometry decode = BuildDecodeUnits(
        shape, DecodeItem::Uniform(4, ctx), Opts(DecodeTilePod()));

    for (const UnitGeometry* geom : {&prefill, &decode}) {
        EXPECT_GE(geom->issued_tensor_flops, geom->useful_tensor_flops);
        EXPECT_GT(geom->mem_bytes, 0.0);
        double sum_tensor = 0.0;
        double sum_mem = 0.0;
        for (const auto& unit : geom->units) {
            sum_tensor += unit.TotalTensorFlops();
            sum_mem += unit.TotalMemBytes();
        }
        EXPECT_NEAR(sum_tensor, geom->issued_tensor_flops,
                    geom->issued_tensor_flops * 1e-9 + 1.0);
        EXPECT_NEAR(sum_mem, geom->mem_bytes, geom->mem_bytes * 1e-9 + 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometryPropertyTest,
    ::testing::Combine(::testing::Values(8, 16, 32),   // q heads
                       ::testing::Values(1, 4, 8),     // kv heads
                       ::testing::Values(128, 512, 1000),  // chunk
                       ::testing::Values(2048, 16384)));   // ctx

}  // namespace
}  // namespace pod::kernels
