/**
 * @file
 * Unit tests for baseline attention kernel assembly (simple, batched,
 * HFuse).
 */
#include "kernels/attn_kernels.h"

#include <gtest/gtest.h>

#include "gpusim/engine.h"
#include "gpusim/gpu_spec.h"

namespace pod::kernels {
namespace {

AttnShape
Shape4x2()
{
    AttnShape shape;
    shape.num_q_heads = 4;
    shape.num_kv_heads = 2;
    shape.head_dim = 64;
    return shape;
}

UnitGeometry
SmallPrefill()
{
    GeomOptions opts;
    opts.tile = PrefillTileLarge();
    return BuildPrefillUnits(Shape4x2(), PrefillItem{256, 1024}, opts);
}

UnitGeometry
SmallDecode()
{
    GeomOptions opts;
    opts.tile = DecodeTileFa();
    return BuildDecodeUnits(Shape4x2(), DecodeItem::Uniform(3, 1024), opts);
}

TEST(SimpleKernel, OneCtaPerUnit)
{
    UnitGeometry geom = SmallPrefill();
    gpusim::KernelDesc kernel = MakeSimpleKernel("k", geom);
    EXPECT_EQ(kernel.cta_count, static_cast<int>(geom.units.size()));
    EXPECT_EQ(kernel.resources.threads, geom.resources.threads);
    // Every CTA carries exactly one unit.
    for (int i = 0; i < kernel.cta_count; ++i) {
        EXPECT_EQ(kernel.assign(i, 0).units.size(), 1u);
    }
}

TEST(BatchedKernel, InterleavesBothSides)
{
    UnitGeometry prefill = SmallPrefill();
    GeomOptions opts;
    opts.tile = PrefillTileLarge();
    UnitGeometry decode =
        BuildDecodeAsPrefillUnits(Shape4x2(), DecodeItem::Uniform(3, 1024),
                                  opts);
    gpusim::KernelDesc kernel =
        MakeBatchedPrefillKernel("b", prefill, decode);
    EXPECT_EQ(kernel.cta_count, static_cast<int>(prefill.units.size() +
                                                 decode.units.size()));
    int prefill_seen = 0;
    int decode_seen = 0;
    for (int i = 0; i < kernel.cta_count; ++i) {
        auto work = kernel.assign(i, 0);
        ASSERT_EQ(work.units.size(), 1u);
        if (work.units[0].op == gpusim::OpClass::kPrefill) ++prefill_seen;
        else ++decode_seen;
    }
    EXPECT_EQ(prefill_seen, static_cast<int>(prefill.units.size()));
    EXPECT_EQ(decode_seen, static_cast<int>(decode.units.size()));
}

TEST(HFuseKernel, GridIsMaxAndResourcesAreSum)
{
    UnitGeometry prefill = SmallPrefill();  // 8 units
    UnitGeometry decode = SmallDecode();    // 6 units
    gpusim::KernelDesc kernel = MakeHFuseKernel("h", prefill, decode);
    EXPECT_EQ(kernel.cta_count,
              static_cast<int>(
                  std::max(prefill.units.size(), decode.units.size())));
    EXPECT_EQ(kernel.resources.threads, prefill.resources.threads +
                                            decode.resources.threads);
    EXPECT_DOUBLE_EQ(kernel.resources.shared_mem_bytes,
                     prefill.resources.shared_mem_bytes +
                         decode.resources.shared_mem_bytes);
    // Paired CTAs host two units; the tail hosts one.
    size_t pairs = std::min(prefill.units.size(), decode.units.size());
    for (int i = 0; i < kernel.cta_count; ++i) {
        size_t expect =
            static_cast<size_t>(i) < pairs ? 2u : 1u;
        EXPECT_EQ(kernel.assign(i, 0).units.size(), expect);
    }
}

TEST(HFuseKernel, StragglerHoldsResources)
{
    // One fused CTA with a fast memory unit and a slow compute unit:
    // a queued second CTA cannot start until the slow unit finishes
    // (the straggler problem, paper S3.1).
    gpusim::GpuSpec spec = gpusim::GpuSpec::TestGpu8Sm();
    spec.num_sms = 1;

    gpusim::WorkUnit slow;
    slow.op = gpusim::OpClass::kPrefill;
    slow.warps = 4;
    slow.phases.push_back(gpusim::Phase{2e9, 0.0, 0.0});  // 2 ms alone
    gpusim::WorkUnit fast;
    fast.op = gpusim::OpClass::kDecode;
    fast.warps = 4;
    fast.phases.push_back(gpusim::Phase{0.0, 0.0, 1.6e6});  // 0.1 ms

    gpusim::CtaWork fused;
    fused.units = {slow, fast};
    gpusim::CtaWork follow;
    follow.units = {fast};

    // The CTA occupies the whole SM (1024 threads).
    gpusim::KernelDesc kernel = gpusim::KernelDesc::FromWorks(
        "h", gpusim::CtaResources{1024, 0.0}, {fused, follow});
    gpusim::SimOptions opts;
    opts.kernel_launch_overhead = 0.0;
    gpusim::FluidEngine engine(spec, opts);
    gpusim::SimResult result = engine.RunKernel(kernel);
    // Follow-up CTA had to wait 2 ms for the straggler.
    EXPECT_GT(result.total_time, 2e-3);
}

TEST(HFuseKernelDeathTest, RejectsEmpty)
{
    UnitGeometry empty_a;
    UnitGeometry empty_b;
    EXPECT_EXIT(MakeHFuseKernel("h", empty_a, empty_b),
                ::testing::ExitedWithCode(1), "FATAL");
}

}  // namespace
}  // namespace pod::kernels
