/**
 * @file
 * Unit tests for tile configurations: shared-memory footprints,
 * thread counts, and the occupancy identities POD relies on
 * (paper S4.2.1-S4.2.3).
 */
#include "kernels/tile.h"

#include <gtest/gtest.h>

#include "gpusim/gpu_spec.h"

namespace pod::kernels {
namespace {

TEST(TileConfig, SmemFormula)
{
    // (tile_q + 2*tile_kv) * d * 2B.
    TileConfig tile{128, 64, 8};
    EXPECT_DOUBLE_EQ(tile.SmemBytes(128), (128.0 + 128.0) * 128.0 * 2.0);
    EXPECT_DOUBLE_EQ(tile.SmemBytes(64), (128.0 + 128.0) * 64.0 * 2.0);
}

TEST(TileConfig, Threads)
{
    EXPECT_EQ(PrefillTileLarge().Threads(), 256);
    EXPECT_EQ(PrefillTileSmall().Threads(), 128);
    EXPECT_EQ(DecodeTileVirtual().Threads(), 32);
}

TEST(TileConfig, TwoLargePrefillCtasFitPerSm)
{
    // The 2-CTAs/SM configuration must actually fit two large-tile
    // prefill CTAs in an A100 SM's shared memory.
    gpusim::GpuSpec a100 = gpusim::GpuSpec::A100Sxm80GB();
    double smem = PrefillTileLarge().SmemBytes(128);
    EXPECT_LE(2.0 * smem, a100.shared_mem_per_sm);
    EXPECT_GT(3.0 * smem, a100.shared_mem_per_sm);  // but not three
}

TEST(TileConfig, FourSmallPrefillCtasFitPerSm)
{
    gpusim::GpuSpec a100 = gpusim::GpuSpec::A100Sxm80GB();
    double smem = PrefillTileSmall().SmemBytes(128);
    EXPECT_LE(4.0 * smem, a100.shared_mem_per_sm);
}

TEST(TileConfig, VirtualDecodeCtaSmallerThanPrefill)
{
    // Paper S4.2.3: virtual decode CTAs are hand-balanced so that a
    // physical decode CTA (several virtual ones) matches the prefill
    // footprint; each virtual CTA alone must be well below it. (The
    // fused kernel assembly pins the physical decode footprint to the
    // prefill tile's, see BuildPodKernel.)
    double prefill = PrefillTileLarge().SmemBytes(128);
    double virt = DecodeTileVirtual().SmemBytes(128);
    EXPECT_LT(virt, prefill * 0.6);
}

TEST(TileConfig, PodDecodeTileIsCutlassMinimum)
{
    // QSL 16 is the CUTLASS minimum for A100 tensor ops (S4.2.1).
    EXPECT_EQ(DecodeTilePod().tile_q, 16);
    EXPECT_EQ(DecodeTileVirtual().tile_q, 16);
    // FA's decode tile is in the paper's quoted 64-128 range.
    EXPECT_GE(DecodeTileFa().tile_q, 64);
    EXPECT_LE(DecodeTileFa().tile_q, 128);
}

}  // namespace
}  // namespace pod::kernels
