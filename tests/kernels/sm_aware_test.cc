/**
 * @file
 * Unit tests for SM-aware CTA scheduling (paper Fig. 9) and the naive
 * CTA-parallel baseline.
 */
#include "kernels/sm_aware.h"

#include <gtest/gtest.h>

#include <map>

#include "gpusim/engine.h"
#include "gpusim/gpu_spec.h"

namespace pod::kernels {
namespace {

using gpusim::CtaResources;
using gpusim::CtaWork;
using gpusim::FluidEngine;
using gpusim::GpuSpec;
using gpusim::KernelDesc;
using gpusim::OpClass;
using gpusim::Phase;
using gpusim::SimOptions;
using gpusim::WorkUnit;

CtaWork
TaggedCta(OpClass op, double work = 1e8)
{
    WorkUnit unit;
    unit.op = op;
    unit.warps = 4;
    unit.phases.push_back(Phase{0.0, work, 0.0});
    CtaWork cta;
    cta.units.push_back(unit);
    return cta;
}

std::vector<CtaWork>
Tagged(OpClass op, int n)
{
    return std::vector<CtaWork>(static_cast<size_t>(n), TaggedCta(op));
}

SimOptions
NoOverhead()
{
    SimOptions opts;
    opts.kernel_launch_overhead = 0.0;
    return opts;
}

TEST(SmAwarePolicy, ProportionalReducesToSmallTerms)
{
    // The paper's example: 50 prefill + 100 decode -> 1:2.
    SmAwarePolicy p = SmAwarePolicy::Proportional(50, 100, 4);
    EXPECT_EQ(p.ratio_a, 1);
    EXPECT_EQ(p.ratio_b, 2);
}

TEST(SmAwarePolicy, ProportionalBalanced)
{
    SmAwarePolicy p = SmAwarePolicy::Proportional(256, 220, 4);
    EXPECT_EQ(p.ratio_a, 1);
    EXPECT_EQ(p.ratio_b, 1);
}

TEST(SmAwarePolicy, ProportionalSkewed)
{
    SmAwarePolicy p = SmAwarePolicy::Proportional(300, 100, 4);
    EXPECT_EQ(p.ratio_a, 3);
    EXPECT_EQ(p.ratio_b, 1);
}

TEST(SmAwarePolicy, DegenerateCounts)
{
    SmAwarePolicy a = SmAwarePolicy::Proportional(0, 10, 4);
    EXPECT_GE(a.ratio_b, 1);
    SmAwarePolicy b = SmAwarePolicy::Proportional(10, 0, 4);
    EXPECT_GE(b.ratio_a, 1);
}

TEST(SmAware, AllWorkDispatchedExactlyOnce)
{
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    KernelDesc kernel = MakeSmAwareKernel(
        "fused", CtaResources{128, 0.0}, Tagged(OpClass::kPrefill, 20),
        Tagged(OpClass::kDecode, 12), SmAwarePolicy::FiftyFifty(),
        spec.num_sms);
    EXPECT_EQ(kernel.cta_count, 32);
    FluidEngine engine(spec, NoOverhead());
    gpusim::SimResult result = engine.RunKernel(kernel);
    EXPECT_EQ(result.Op(OpClass::kPrefill).unit_count, 20);
    EXPECT_EQ(result.Op(OpClass::kDecode).unit_count, 12);
}

TEST(SmAware, FiftyFiftyCoLocatesOnEverySm)
{
    // 8 SMs, 2 CTA slots each (1024-thread CTAs on a 2048-thread SM
    // would be 2... use 512-thread CTAs and cap at 2 per SM).
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    // Track which ops land per SM via the assign callback by op
    // accounting: with 8 prefill + 8 decode CTAs and 2 slots per SM,
    // 50:50 must put exactly one of each on every SM.
    auto state = std::make_shared<std::map<int, std::pair<int, int>>>();

    KernelDesc inner = MakeSmAwareKernel(
        "fused", CtaResources{512, 0.0}, Tagged(OpClass::kPrefill, 8),
        Tagged(OpClass::kDecode, 8), SmAwarePolicy::FiftyFifty(),
        spec.num_sms, /*max_ctas_per_sm=*/2);
    // Wrap the assign to record (sm -> op counts).
    auto base_assign = inner.assign;
    inner.assign = [state, base_assign](int idx, int sm) {
        CtaWork work = base_assign(idx, sm);
        auto& entry = (*state)[sm];
        if (work.units[0].op == OpClass::kPrefill) entry.first++;
        else entry.second++;
        return work;
    };

    FluidEngine engine(spec, NoOverhead());
    engine.RunKernel(inner);
    ASSERT_EQ(state->size(), 8u);
    for (const auto& [sm, counts] : *state) {
        EXPECT_EQ(counts.first, 1) << "SM " << sm;
        EXPECT_EQ(counts.second, 1) << "SM " << sm;
    }
}

TEST(SmAware, OverflowSwitchesOp)
{
    // Far more decode than prefill CTAs at 1:1 tickets: once prefill
    // runs out, prefill tickets must fall through to decode.
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    KernelDesc kernel = MakeSmAwareKernel(
        "fused", CtaResources{128, 0.0}, Tagged(OpClass::kPrefill, 2),
        Tagged(OpClass::kDecode, 30), SmAwarePolicy::FiftyFifty(),
        spec.num_sms);
    FluidEngine engine(spec, NoOverhead());
    gpusim::SimResult result = engine.RunKernel(kernel);
    EXPECT_EQ(result.Op(OpClass::kPrefill).unit_count, 2);
    EXPECT_EQ(result.Op(OpClass::kDecode).unit_count, 30);
    EXPECT_EQ(result.total_ctas, 32);
}

TEST(SmAware, CoLocationBeatsSerialOnMixedWork)
{
    // Compute-heavy op A + memory-heavy op B: SM-aware fusion should
    // clearly beat running them serially.
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    auto compute_cta = []() {
        WorkUnit unit;
        unit.op = OpClass::kCompute;
        unit.warps = 16;
        unit.phases.push_back(Phase{0.0, 0.5e9, 0.0});
        CtaWork cta;
        cta.units.push_back(unit);
        return cta;
    };
    auto memory_cta = []() {
        WorkUnit unit;
        unit.op = OpClass::kMemory;
        unit.warps = 16;
        unit.phases.push_back(Phase{0.0, 0.0, 8e6});
        CtaWork cta;
        cta.units.push_back(unit);
        return cta;
    };
    std::vector<CtaWork> comp(16, compute_cta());
    std::vector<CtaWork> mem(16, memory_cta());

    FluidEngine engine(spec, NoOverhead());
    KernelDesc fused = MakeSmAwareKernel(
        "fused", CtaResources{512, 0.0}, comp, mem,
        SmAwarePolicy::FiftyFifty(), spec.num_sms, 2);
    double fused_time = engine.RunKernel(fused).total_time;

    KernelDesc ka = gpusim::KernelDesc::FromWorks(
        "a", CtaResources{512, 0.0}, comp);
    KernelDesc kb = gpusim::KernelDesc::FromWorks(
        "b", CtaResources{512, 0.0}, mem);
    double serial_time =
        engine.Run({gpusim::KernelLaunch{ka, 0},
                    gpusim::KernelLaunch{kb, 0}})
            .total_time;

    EXPECT_LT(fused_time, serial_time * 0.75);
}

TEST(CtaParallel, StaticInterleaveKeepsAllWork)
{
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    KernelDesc kernel = MakeCtaParallelKernel(
        "naive", CtaResources{128, 0.0}, Tagged(OpClass::kPrefill, 10),
        Tagged(OpClass::kDecode, 20));
    EXPECT_EQ(kernel.cta_count, 30);
    FluidEngine engine(spec, NoOverhead());
    gpusim::SimResult result = engine.RunKernel(kernel);
    EXPECT_EQ(result.Op(OpClass::kPrefill).unit_count, 10);
    EXPECT_EQ(result.Op(OpClass::kDecode).unit_count, 20);
}

TEST(CtaParallel, ProportionalInterleaveOrder)
{
    // 1:2 mix -> pattern A B B A B B ...
    KernelDesc kernel = MakeCtaParallelKernel(
        "naive", CtaResources{128, 0.0}, Tagged(OpClass::kPrefill, 2),
        Tagged(OpClass::kDecode, 4));
    std::vector<OpClass> order;
    for (int i = 0; i < kernel.cta_count; ++i) {
        order.push_back(kernel.assign(i, 0).units[0].op);
    }
    std::vector<OpClass> expected = {
        OpClass::kPrefill, OpClass::kDecode, OpClass::kDecode,
        OpClass::kPrefill, OpClass::kDecode, OpClass::kDecode};
    EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace pod::kernels
