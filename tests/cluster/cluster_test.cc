/**
 * @file
 * Tests for the cluster serving layer: the discrete-event loop over
 * replica engines, fleet metrics, heterogeneous fleets, and the
 * single-replica equivalence guarantee.
 */
#include "cluster/cluster_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "serve/trace.h"

namespace pod::cluster {
namespace {

serve::ServingConfig
BaseConfig()
{
    serve::ServingConfig config;
    config.model = model::ModelConfig::Llama3_8B();
    config.tensor_parallel = 2;
    config.backend = core::Backend::kFaSerial;
    return config;
}

SchedulerFactory
SarathiFactory(int token_budget)
{
    return [token_budget](int) {
        return std::make_unique<serve::SarathiScheduler>(token_budget);
    };
}

TEST(ClusterEngineTest, SingleReplicaBitIdenticalToServingEngine)
{
    // A one-replica cluster is just a ServingEngine with routing
    // overhead; its metrics must match Run() bit-for-bit.
    Rng rng(77);
    auto trace =
        serve::GenerateTrace(serve::WorkloadSpec::Internal(), 8, 0.4, rng);

    serve::ServingEngine solo(
        BaseConfig(), std::make_unique<serve::SarathiScheduler>(512));
    serve::MetricsReport solo_report = solo.Run(trace);

    ClusterEngine cluster(ClusterConfig::Homogeneous(BaseConfig(), 1),
                          SarathiFactory(512),
                          std::make_unique<RoundRobinRouter>());
    ClusterMetricsReport report = cluster.Run(trace);

    EXPECT_EQ(report.fleet.makespan, solo_report.makespan);
    EXPECT_EQ(report.fleet.iterations, solo_report.iterations);
    EXPECT_EQ(report.fleet.ttft.Sum(), solo_report.ttft.Sum());
    EXPECT_EQ(report.fleet.tbt.Sum(), solo_report.tbt.Sum());
    EXPECT_EQ(report.fleet.latency.Sum(), solo_report.latency.Sum());
    EXPECT_EQ(report.request_imbalance_cv, 0.0);
}

TEST(ClusterEngineTest, AllRequestsFinishAcrossReplicas)
{
    Rng rng(5);
    auto trace =
        serve::GenerateTrace(serve::WorkloadSpec::Arxiv(), 12, 1.0, rng);
    ClusterEngine cluster(ClusterConfig::Homogeneous(BaseConfig(), 3),
                          SarathiFactory(512),
                          std::make_unique<LeastOutstandingRouter>());
    ClusterMetricsReport report = cluster.Run(trace);

    EXPECT_EQ(report.num_replicas, 3);
    EXPECT_EQ(report.fleet.num_requests, 12);
    EXPECT_EQ(report.fleet.ttft.Count(), 12u);
    int per_replica_sum = 0;
    int routed_sum = 0;
    for (int r = 0; r < 3; ++r) {
        per_replica_sum += report.per_replica[static_cast<size_t>(r)]
                               .num_requests;
        routed_sum +=
            report.utilization[static_cast<size_t>(r)].requests_routed;
    }
    EXPECT_EQ(per_replica_sum, 12);
    EXPECT_EQ(routed_sum, 12);
    EXPECT_TRUE(std::isfinite(report.request_imbalance_cv));
    EXPECT_TRUE(std::isfinite(report.token_imbalance_cv));
}

TEST(ClusterEngineTest, ThroughputScalesWithReplicas)
{
    auto trace = serve::UniformTrace(8, 8192, 64);
    ClusterEngine one(ClusterConfig::Homogeneous(BaseConfig(), 1),
                      SarathiFactory(1024),
                      std::make_unique<RoundRobinRouter>());
    ClusterEngine two(ClusterConfig::Homogeneous(BaseConfig(), 2),
                      SarathiFactory(1024),
                      std::make_unique<RoundRobinRouter>());
    ClusterMetricsReport r1 = one.Run(trace);
    ClusterMetricsReport r2 = two.Run(trace);
    EXPECT_GT(r2.fleet.requests_per_minute,
              r1.fleet.requests_per_minute * 1.5);
}

TEST(ClusterEngineTest, RoundRobinBalancesUniformLoadPerfectly)
{
    auto trace = serve::UniformTrace(8, 4096, 32);
    ClusterEngine cluster(ClusterConfig::Homogeneous(BaseConfig(), 2),
                          SarathiFactory(1024),
                          std::make_unique<RoundRobinRouter>());
    ClusterMetricsReport report = cluster.Run(trace);
    EXPECT_EQ(report.utilization[0].requests_routed, 4);
    EXPECT_EQ(report.utilization[1].requests_routed, 4);
    EXPECT_EQ(report.request_imbalance_cv, 0.0);
    // Identical requests on identical replicas: token load even too.
    EXPECT_NEAR(report.token_imbalance_cv, 0.0, 1e-12);
}

TEST(ClusterEngineTest, KvUtilizationSampled)
{
    auto trace = serve::UniformTrace(6, 8192, 64);
    ClusterEngine cluster(ClusterConfig::Homogeneous(BaseConfig(), 2),
                          SarathiFactory(1024),
                          std::make_unique<LeastKvPressureRouter>());
    ClusterMetricsReport report = cluster.Run(trace);
    for (const auto& u : report.utilization) {
        EXPECT_GT(u.kv_peak, 0.0);
        EXPECT_GT(u.kv_mean, 0.0);
        EXPECT_LE(u.kv_mean, u.kv_peak);
        EXPECT_GT(u.busy_time, 0.0);
        EXPECT_GT(u.tokens_processed, 0.0);
    }
}

TEST(ClusterEngineTest, HeterogeneousFleetFasterGpuDoesMoreWork)
{
    // A100 + H100 fleet under least-outstanding routing: the H100
    // drains its queue faster, so it ends up serving more requests.
    ClusterConfig config;
    config.replicas.push_back(BaseConfig());
    serve::ServingConfig h100 = BaseConfig();
    h100.gpu = gpusim::GpuSpec::H100Sxm80GB();
    config.replicas.push_back(h100);

    ClusterEngine cluster(config, SarathiFactory(512),
                          std::make_unique<LeastOutstandingRouter>());
    // Staggered arrivals: later routing decisions see queue depths,
    // which reflect how fast each GPU drains.
    auto trace = serve::UniformTrace(12, 8192, 128);
    for (size_t i = 0; i < trace.size(); ++i) {
        trace[i].arrival_time = static_cast<double>(i) * 0.25;
    }
    ClusterMetricsReport report = cluster.Run(trace);

    EXPECT_EQ(report.fleet.num_requests, 12);
    EXPECT_GT(report.utilization[1].requests_routed,
              report.utilization[0].requests_routed);
    // Per-replica mean latency reflects the hardware gap.
    EXPECT_LT(report.per_replica[1].latency.Mean(),
              report.per_replica[0].latency.Mean());
}

TEST(ClusterEngineTest, FleetMetricsAggregatePerReplicaReports)
{
    auto trace = serve::UniformTrace(6, 4096, 32);
    ClusterEngine cluster(ClusterConfig::Homogeneous(BaseConfig(), 3),
                          SarathiFactory(1024),
                          std::make_unique<RoundRobinRouter>());
    ClusterMetricsReport report = cluster.Run(trace);
    long iteration_sum = 0;
    size_t ttft_sum = 0;
    for (const auto& replica : report.per_replica) {
        iteration_sum += replica.iterations;
        ttft_sum += replica.ttft.Count();
    }
    EXPECT_EQ(report.fleet.iterations, iteration_sum);
    EXPECT_EQ(report.fleet.ttft.Count(), ttft_sum);
    // Fleet makespan is the max, not the sum, of replica makespans.
    double max_replica_makespan = 0.0;
    for (const auto& replica : report.per_replica) {
        max_replica_makespan =
            std::max(max_replica_makespan, replica.makespan);
    }
    EXPECT_EQ(report.fleet.makespan, max_replica_makespan);
}

TEST(ClusterEngineTest, RepeatedRunsBitIdentical)
{
    // Run() must reset replica AND router state: a stale round-robin
    // cursor would shift every assignment of the second run.
    Rng rng(9);
    auto trace =
        serve::GenerateTrace(serve::WorkloadSpec::Internal(), 7, 0.5, rng);
    ClusterEngine cluster(ClusterConfig::Homogeneous(BaseConfig(), 3),
                          SarathiFactory(512),
                          std::make_unique<RoundRobinRouter>());
    ClusterMetricsReport first = cluster.Run(trace);
    ClusterMetricsReport second = cluster.Run(trace);
    EXPECT_EQ(first.fleet.makespan, second.fleet.makespan);
    EXPECT_EQ(first.fleet.ttft.Sum(), second.fleet.ttft.Sum());
    for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(first.utilization[static_cast<size_t>(r)]
                      .requests_routed,
                  second.utilization[static_cast<size_t>(r)]
                      .requests_routed);
    }
}

TEST(ClusterEngineTest, WatermarkFleetSurfacesPreemptionCounters)
{
    // An overloaded 2-replica watermark fleet must preempt, drain,
    // and roll the lifecycle counters up into ClusterMetricsReport
    // (fleet + per-replica), satisfying the end-to-end acceptance
    // path for the preemption redesign.
    serve::ServingConfig config = BaseConfig();
    config.memory_fraction = 0.0958;  // few-thousand-token KV pool
    config.kv_policy = serve::KvPolicy::kWatermark;
    config.kv_preempt_mode = serve::PreemptMode::kSwap;
    config.kv_bucket = 4096;
    config.context_bucket = 4096;
    config.decode_bs_bucket = 32;

    std::vector<serve::Request> trace;
    for (int i = 0; i < 20; ++i) {
        serve::Request r;
        r.id = i;
        r.arrival_time = 0.05 * i;
        r.prefill_tokens = 384 + 128 * (i % 3);
        r.decode_tokens = 384 + 96 * (i % 4);
        trace.push_back(r);
    }

    ClusterEngine cluster(ClusterConfig::Homogeneous(config, 2),
                          SarathiFactory(512),
                          std::make_unique<PreemptionAwareRouter>());
    ClusterMetricsReport report = cluster.Run(trace);

    EXPECT_EQ(report.fleet.num_requests, 20);
    EXPECT_EQ(report.fleet.latency.Count(), 20u);
    EXPECT_GT(report.preemptions, 0l);
    EXPECT_EQ(report.preemptions_swap, report.preemptions);
    EXPECT_EQ(report.preemptions_recompute, 0l);
    EXPECT_GT(report.swap_time_total, 0.0);
    // Fleet MetricsReport mirrors the rollup.
    EXPECT_EQ(report.fleet.preemptions, report.preemptions);
    EXPECT_EQ(report.fleet.preemptions_swap, report.preemptions_swap);
    EXPECT_EQ(report.fleet.swap_time_total, report.swap_time_total);
    // Per-replica reports sum to the fleet counters.
    long per_replica_preemptions = 0;
    for (const auto& replica : report.per_replica) {
        per_replica_preemptions += replica.preemptions;
    }
    EXPECT_EQ(per_replica_preemptions, report.preemptions);
}

TEST(ClusterEngineDeathTest, EmptyFleetIsFatal)
{
    EXPECT_EXIT(ClusterConfig::Homogeneous(BaseConfig(), 0),
                ::testing::ExitedWithCode(1), "FATAL");
}

}  // namespace
}  // namespace pod::cluster
