/**
 * @file
 * Exact (bit-identical) comparison helpers for cluster runs, shared
 * by the parallel regression and randomized equivalence suites.
 *
 * Every floating-point comparison is EXPECT_EQ — exact equality, no
 * tolerance. The parallel engine's claim is not "close to serial",
 * it is "the same computation" (docs/DESIGN.md S8), so any ULP of
 * drift is a real scheduling/ordering bug and must fail.
 */
#ifndef POD_TESTS_CLUSTER_REPORT_COMPARE_H
#define POD_TESTS_CLUSTER_REPORT_COMPARE_H

#include <gtest/gtest.h>

#include "cluster/cluster_engine.h"
#include "cluster/cluster_metrics.h"
#include "serve/metrics.h"
#include "serve/request.h"

namespace pod::cluster::test {

inline void
ExpectSamplesEqual(const SampleStats& expected, const SampleStats& got,
                   const char* what)
{
    ASSERT_EQ(expected.Count(), got.Count()) << what;
    const auto& a = expected.Samples();
    const auto& b = got.Samples();
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << what << " sample " << i;
    }
}

inline void
ExpectMetricsEqual(const serve::MetricsReport& expected,
                   const serve::MetricsReport& got, const char* what)
{
    EXPECT_EQ(expected.num_requests, got.num_requests) << what;
    EXPECT_EQ(expected.makespan, got.makespan) << what;
    EXPECT_EQ(expected.requests_per_minute, got.requests_per_minute)
        << what;
    EXPECT_EQ(expected.iterations, got.iterations) << what;
    ExpectSamplesEqual(expected.ttft, got.ttft, what);
    ExpectSamplesEqual(expected.tbt, got.tbt, what);
    ExpectSamplesEqual(expected.latency, got.latency, what);
    EXPECT_EQ(expected.frac_stalled_200ms, got.frac_stalled_200ms)
        << what;
    EXPECT_EQ(expected.frac_stalled_500ms, got.frac_stalled_500ms)
        << what;
    EXPECT_EQ(expected.mean_batch_tokens, got.mean_batch_tokens) << what;
    EXPECT_EQ(expected.preemptions, got.preemptions) << what;
    EXPECT_EQ(expected.preemptions_recompute, got.preemptions_recompute)
        << what;
    EXPECT_EQ(expected.preemptions_swap, got.preemptions_swap) << what;
    EXPECT_EQ(expected.requests_preempted, got.requests_preempted)
        << what;
    EXPECT_EQ(expected.swap_time_total, got.swap_time_total) << what;
}

/** Field-by-field equality of two whole cluster reports. */
inline void
ExpectReportsEqual(const ClusterMetricsReport& expected,
                   const ClusterMetricsReport& got)
{
    EXPECT_EQ(expected.router, got.router);
    EXPECT_EQ(expected.num_replicas, got.num_replicas);
    ExpectMetricsEqual(expected.fleet, got.fleet, "fleet");
    ASSERT_EQ(expected.per_replica.size(), got.per_replica.size());
    for (size_t r = 0; r < expected.per_replica.size(); ++r) {
        SCOPED_TRACE(::testing::Message() << "replica " << r);
        ExpectMetricsEqual(expected.per_replica[r], got.per_replica[r],
                           "per_replica");
    }
    ASSERT_EQ(expected.utilization.size(), got.utilization.size());
    for (size_t r = 0; r < expected.utilization.size(); ++r) {
        SCOPED_TRACE(::testing::Message() << "utilization " << r);
        const ReplicaUtilization& a = expected.utilization[r];
        const ReplicaUtilization& b = got.utilization[r];
        EXPECT_EQ(a.kv_peak, b.kv_peak);
        EXPECT_EQ(a.kv_mean, b.kv_mean);
        EXPECT_EQ(a.busy_time, b.busy_time);
        EXPECT_EQ(a.requests_routed, b.requests_routed);
        EXPECT_EQ(a.tokens_processed, b.tokens_processed);
        EXPECT_EQ(a.attn_cache_hits, b.attn_cache_hits);
        EXPECT_EQ(a.attn_cache_misses, b.attn_cache_misses);
    }
    EXPECT_EQ(expected.request_imbalance_cv, got.request_imbalance_cv);
    EXPECT_EQ(expected.token_imbalance_cv, got.token_imbalance_cv);
    EXPECT_EQ(expected.attn_cache_hits, got.attn_cache_hits);
    EXPECT_EQ(expected.attn_cache_misses, got.attn_cache_misses);
    EXPECT_EQ(expected.preemptions, got.preemptions);
    EXPECT_EQ(expected.preemptions_recompute, got.preemptions_recompute);
    EXPECT_EQ(expected.preemptions_swap, got.preemptions_swap);
    EXPECT_EQ(expected.swap_time_total, got.swap_time_total);
}

/**
 * Per-request completion records: every replica must hold the same
 * requests in the same submission order with identical lifecycle
 * outcomes and token timings.
 */
inline void
ExpectStatesEqual(const ClusterEngine& expected,
                  const ClusterEngine& got)
{
    ASSERT_EQ(expected.NumReplicas(), got.NumReplicas());
    for (int r = 0; r < expected.NumReplicas(); ++r) {
        SCOPED_TRACE(::testing::Message() << "replica " << r);
        const auto& a = expected.Replica(r).States();
        const auto& b = got.Replica(r).States();
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            SCOPED_TRACE(::testing::Message()
                         << "request slot " << i << " (id "
                         << a[i].request.id << ")");
            EXPECT_EQ(a[i].request.id, b[i].request.id);
            EXPECT_EQ(a[i].phase, b[i].phase);
            EXPECT_EQ(a[i].prefilled, b[i].prefilled);
            EXPECT_EQ(a[i].decoded, b[i].decoded);
            EXPECT_EQ(a[i].recompute_extra, b[i].recompute_extra);
            EXPECT_EQ(a[i].preempt_count, b[i].preempt_count);
            EXPECT_EQ(a[i].first_token_time, b[i].first_token_time);
            EXPECT_EQ(a[i].last_token_time, b[i].last_token_time);
            EXPECT_EQ(a[i].finish_time, b[i].finish_time);
            ASSERT_EQ(a[i].tbt.size(), b[i].tbt.size());
            for (size_t t = 0; t < a[i].tbt.size(); ++t) {
                EXPECT_EQ(a[i].tbt[t], b[i].tbt[t]) << "tbt " << t;
            }
        }
    }
}

}  // namespace pod::cluster::test

#endif  // POD_TESTS_CLUSTER_REPORT_COMPARE_H
