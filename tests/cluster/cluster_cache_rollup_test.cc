/**
 * @file
 * Tests for the fleet-level attention memo-cache rollup: per-replica
 * hit/miss counters surfaced in ClusterMetricsReport and their
 * fleet-wide sums (docs/DESIGN.md S5.4 observability).
 */
#include "cluster/cluster_engine.h"

#include <gtest/gtest.h>
#include <memory>

#include "cluster/router.h"
#include "serve/scheduler.h"

namespace pod::cluster {
namespace {

std::vector<serve::Request>
SmallTrace()
{
    std::vector<serve::Request> trace;
    for (int i = 0; i < 20; ++i) {
        serve::Request r;
        r.id = i;
        r.arrival_time = 0.2 * i;
        r.prefill_tokens = 600 + 500 * (i % 4);
        r.decode_tokens = 10 + 15 * (i % 3);
        trace.push_back(r);
    }
    return trace;
}

TEST(ClusterCacheRollupTest, FleetCountersSumPerReplicaCounters)
{
    serve::ServingConfig base;
    base.backend = core::Backend::kFaSerial;
    base.kv_bucket = 4096;
    base.context_bucket = 4096;
    base.decode_bs_bucket = 32;

    ClusterEngine engine(
        ClusterConfig::Homogeneous(base, 2),
        [](int) { return std::make_unique<serve::SarathiScheduler>(1024); },
        MakeRouter("round-robin"));
    ClusterMetricsReport report = engine.Run(SmallTrace());

    ASSERT_EQ(report.utilization.size(), 2u);
    long entries = 0;
    long hits = 0;
    long misses = 0;
    for (int r = 0; r < 2; ++r) {
        const ReplicaUtilization& u =
            report.utilization[static_cast<size_t>(r)];
        // Each replica simulated work, so its cache saw lookups, and
        // every miss created exactly one entry.
        EXPECT_GT(u.attn_cache_misses, 0);
        EXPECT_EQ(u.attn_cache_entries, u.attn_cache_misses);
        EXPECT_EQ(u.attn_cache_entries,
                  static_cast<long>(engine.Replica(r).AttnCacheSize()));
        entries += u.attn_cache_entries;
        hits += u.attn_cache_hits;
        misses += u.attn_cache_misses;
    }
    EXPECT_EQ(report.attn_cache_entries, entries);
    EXPECT_EQ(report.attn_cache_hits, hits);
    EXPECT_EQ(report.attn_cache_misses, misses);
    EXPECT_GT(report.AttnCacheHitRate(), 0.0);
    EXPECT_LT(report.AttnCacheHitRate(), 1.0);

    // Snapshot exposes the same (lifetime) counters for routing-time
    // visibility; after a single run they equal the per-run deltas.
    serve::ReplicaSnapshot snap = engine.Replica(0).Snapshot();
    EXPECT_EQ(snap.attn_cache_hits,
              report.utilization[0].attn_cache_hits);
    EXPECT_EQ(snap.attn_cache_misses,
              report.utilization[0].attn_cache_misses);

    // A second run of the same engine reports only its own lookups:
    // the memo caches are warm, so this identical trace misses
    // nothing, and the rollup must not double-count run one.
    ClusterMetricsReport second = engine.Run(SmallTrace());
    EXPECT_EQ(second.attn_cache_misses, 0);
    // Identical trace, warm cache: run two performs the same lookup
    // sequence, so its hits equal run one's total lookups.
    EXPECT_EQ(second.attn_cache_hits,
              report.attn_cache_hits + report.attn_cache_misses);
    EXPECT_EQ(second.attn_cache_entries, report.attn_cache_entries);
    EXPECT_EQ(second.AttnCacheHitRate(), 1.0);
}

TEST(ClusterCacheRollupTest, HitRateIsZeroWithoutLookups)
{
    ReplicaUtilization u;
    EXPECT_EQ(u.AttnCacheHitRate(), 0.0);
    ClusterMetricsReport r;
    EXPECT_EQ(r.AttnCacheHitRate(), 0.0);
}

}  // namespace
}  // namespace pod::cluster
