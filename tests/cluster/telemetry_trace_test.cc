/**
 * @file
 * Trace schema-sanity and determinism tests (docs/OBSERVABILITY.md):
 *
 *  - Schema: the exported Chrome trace is valid JSON (checked by a
 *    minimal parser, no external deps), every per-track event stream
 *    is monotone in sim time, spans carry non-negative durations that
 *    stay inside the run, and each traced request's lifecycle is
 *    well-formed (one arrival, admits precede finishes, exactly one
 *    finish).
 *  - Determinism: trace bytes are identical across thread counts
 *    {1, 2, 4} and across repeated runs — the sim-time trace is a
 *    pure function of the scenario, never of the thread schedule.
 *  - Zero-cost-when-off: a tracing-enabled engine produces the exact
 *    same report as an untraced one (tracing only observes).
 */
#include "cluster/cluster_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../golden_scenarios.h"
#include "cluster/router.h"
#include "common/telemetry/trace.h"
#include "report_compare.h"
#include "serve/scheduler.h"

namespace pod::cluster {
namespace {

using pod::cluster::test::ExpectReportsEqual;

// --------------------------------------------------- minimal JSON
// Just enough of a recursive-descent parser to reject structural
// breakage (unbalanced braces, bad escapes, malformed numbers) in the
// exporter's output; semantic checks run on the raw event buffers.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& text) : text_(text) {}

    bool Valid()
    {
        pos_ = 0;
        bool ok = Value();
        SkipWs();
        return ok && pos_ == text_.size();
    }

  private:
    void SkipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool Literal(const char* word)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0) return false;
        pos_ += len;
        return true;
    }

    bool String()
    {
        if (text_[pos_] != '"') return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size()) return false;
        ++pos_;  // closing quote
        return true;
    }

    bool Number()
    {
        size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        bool digits = false;
        auto eat_digits = [&] {
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                digits = true;
            }
        };
        eat_digits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eat_digits();
        }
        if (digits && pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+')) {
                ++pos_;
            }
            bool exp_digits = false;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                exp_digits = true;
            }
            if (!exp_digits) return false;
        }
        return digits && pos_ > start;
    }

    bool Value()
    {
        SkipWs();
        if (pos_ >= text_.size()) return false;
        char c = text_[pos_];
        if (c == '{') return Object();
        if (c == '[') return Array();
        if (c == '"') return String();
        if (c == 't') return Literal("true");
        if (c == 'f') return Literal("false");
        if (c == 'n') return Literal("null");
        return Number();
    }

    bool Object()
    {
        ++pos_;  // '{'
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            SkipWs();
            if (!String()) return false;
            SkipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') return false;
            ++pos_;
            if (!Value()) return false;
            SkipWs();
            if (pos_ >= text_.size()) return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool Array()
    {
        ++pos_;  // '['
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!Value()) return false;
            SkipWs();
            if (pos_ >= text_.size()) return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
};

// ------------------------------------------------------- fixtures

SchedulerFactory
Sarathi()
{
    return [](int) {
        return std::make_unique<serve::SarathiScheduler>(512);
    };
}

serve::ServingConfig
BaseConfig()
{
    serve::ServingConfig config;
    config.backend = core::Backend::kFaSerial;
    config.kv_bucket = 4096;
    config.context_bucket = 4096;
    config.decode_bs_bucket = 32;
    config.chunk_bucket = 256;
    return config;
}

/** Memory-tight watermark fleet: exercises preempt/restore events. */
serve::ServingConfig
WatermarkConfig()
{
    serve::ServingConfig config = BaseConfig();
    config.tensor_parallel = 2;
    config.memory_fraction = 0.0958;
    config.kv_policy = serve::KvPolicy::kWatermark;
    config.kv_preempt_mode = serve::PreemptMode::kSwap;
    return config;
}

std::unique_ptr<ClusterEngine>
TracedCluster(const serve::ServingConfig& base, int replicas,
              int threads)
{
    auto cluster = std::make_unique<ClusterEngine>(
        ClusterConfig::Homogeneous(base, replicas), Sarathi(),
        MakeRouter("least-kv"), threads);
    cluster->EnableTracing();
    return cluster;
}

std::string
ExportedTrace(ClusterEngine& cluster)
{
    std::ostringstream out;
    cluster.WriteChromeTrace(out);
    return out.str();
}

// ---------------------------------------------------------- tests

TEST(TelemetryTrace, ExportIsValidJson)
{
    auto cluster = TracedCluster(BaseConfig(), 2, 1);
    cluster->Run(golden::ServeTrace());
    std::string json = ExportedTrace(*cluster);
    EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TelemetryTrace, PreemptionSceneIsValidJsonWithLifecycleEvents)
{
    auto cluster = TracedCluster(WatermarkConfig(), 2, 1);
    ClusterMetricsReport report = cluster->Run(golden::OverloadTrace(16));
    ASSERT_GT(report.preemptions, 0)
        << "scenario must exercise the preemption path";
    std::string json = ExportedTrace(*cluster);
    EXPECT_TRUE(JsonChecker(json).Valid());
    EXPECT_NE(json.find("\"preempt_swap\""), std::string::npos);
    EXPECT_NE(json.find("\"restore\""), std::string::npos);
}

TEST(TelemetryTrace, PerTrackSimTimeIsMonotonic)
{
    auto cluster = TracedCluster(BaseConfig(), 2, 1);
    cluster->Run(golden::ServeTrace());
    for (const auto& recorder : cluster->Recorders()) {
        std::map<int32_t, double> last_ts;
        for (const auto& e : recorder.Events()) {
            auto it = last_ts.find(e.tid);
            if (it != last_ts.end()) {
                EXPECT_GE(e.ts, it->second)
                    << "pid " << recorder.Pid() << " tid " << e.tid;
            }
            last_ts[e.tid] = e.ts;
            EXPECT_GE(e.dur, 0.0);
            EXPECT_TRUE(telemetry::EventKindIsSpan(e.kind) ||
                        e.dur == 0.0);
        }
    }
}

TEST(TelemetryTrace, RequestLifecyclesAreWellFormed)
{
    auto cluster = TracedCluster(WatermarkConfig(), 2, 1);
    cluster->Run(golden::OverloadTrace(16));
    int total_finishes = 0;
    for (const auto& recorder : cluster->Recorders()) {
        if (recorder.Pid() == 0) continue;  // router process
        // tid -> (arrivals, admits, finishes) per request track.
        std::map<int32_t, std::vector<int>> counts;
        for (const auto& e : recorder.Events()) {
            if (e.tid == telemetry::TraceRecorder::kEngineTrack) {
                continue;
            }
            auto& c = counts[e.tid];
            c.resize(3, 0);
            using EK = telemetry::EventKind;
            if (e.kind == EK::kArrival) {
                ++c[0];
                EXPECT_EQ(c[1], 0) << "arrival after admit";
            } else if (e.kind == EK::kAdmit) {
                ++c[1];
            } else if (e.kind == EK::kFinish) {
                ++c[2];
                ++total_finishes;
            } else {
                EXPECT_EQ(c[2], 0)
                    << "event after finish on tid " << e.tid;
            }
        }
        for (const auto& [tid, c] : counts) {
            EXPECT_EQ(c[0], 1) << "arrivals on tid " << tid;
            EXPECT_GE(c[1], 1) << "admits on tid " << tid;
            EXPECT_EQ(c[2], 1) << "finishes on tid " << tid;
        }
    }
    EXPECT_EQ(total_finishes, 16);  // every request finished once
}

TEST(TelemetryTrace, RouterRecordsEveryArrivalOnce)
{
    auto trace = golden::ServeTrace();
    auto cluster = TracedCluster(BaseConfig(), 2, 1);
    cluster->Run(trace);
    // Route instants appear in the order Run() consumes arrivals.
    std::sort(trace.begin(), trace.end(), serve::ArrivalOrder);
    const auto& router = cluster->Recorders().front();
    ASSERT_EQ(router.Pid(), 0);
    ASSERT_EQ(router.Events().size(), trace.size());
    for (size_t i = 0; i < router.Events().size(); ++i) {
        const auto& e = router.Events()[i];
        EXPECT_EQ(e.kind, telemetry::EventKind::kRoute);
        EXPECT_EQ(e.a0, trace[i].id);
        EXPECT_GE(e.a1, 0);
        EXPECT_LT(e.a1, 2);
        EXPECT_EQ(e.ts, trace[i].arrival_time);
    }
}

TEST(TelemetryTrace, IterationSpansCoverPrefillChunks)
{
    auto cluster = TracedCluster(BaseConfig(), 2, 1);
    cluster->Run(golden::ServeTrace());
    for (const auto& recorder : cluster->Recorders()) {
        if (recorder.Pid() == 0) continue;
        // Chunk spans ride the same [start, start+dur] window as the
        // iteration that executed them.
        std::vector<const telemetry::TraceEvent*> iterations;
        for (const auto& e : recorder.Events()) {
            if (e.kind == telemetry::EventKind::kIteration) {
                iterations.push_back(&e);
            }
        }
        ASSERT_FALSE(iterations.empty());
        for (const auto& e : recorder.Events()) {
            if (e.kind != telemetry::EventKind::kPrefillChunk) continue;
            bool covered = false;
            for (const auto* it : iterations) {
                if (e.ts == it->ts && e.dur == it->dur) {
                    covered = true;
                    break;
                }
            }
            EXPECT_TRUE(covered)
                << "orphan prefill chunk at ts=" << e.ts;
        }
    }
}

TEST(TelemetryTrace, BytesIdenticalAcrossThreadCounts)
{
    // The ISSUE's headline determinism claim: per-replica buffers are
    // written only by the owning worker and merged in recorder order,
    // so the exported bytes never depend on the thread schedule.
    auto oracle = TracedCluster(WatermarkConfig(), 3, 1);
    ClusterMetricsReport oracle_report =
        oracle->Run(golden::OverloadTrace(16));
    const std::string oracle_bytes = ExportedTrace(*oracle);

    for (int threads : {2, 4}) {
        auto parallel = TracedCluster(WatermarkConfig(), 3, threads);
        ClusterMetricsReport report =
            parallel->Run(golden::OverloadTrace(16));
        SCOPED_TRACE(::testing::Message() << threads << " threads");
        ExpectReportsEqual(oracle_report, report);
        EXPECT_EQ(oracle_bytes, ExportedTrace(*parallel));
    }
}

TEST(TelemetryTrace, BytesIdenticalAcrossRepeatedRuns)
{
    auto cluster = TracedCluster(BaseConfig(), 2, 2);
    cluster->Run(golden::ServeTrace());
    const std::string first = ExportedTrace(*cluster);
    cluster->Run(golden::ServeTrace());
    EXPECT_EQ(first, ExportedTrace(*cluster));
}

TEST(TelemetryTrace, TracingDoesNotPerturbResults)
{
    // Tracing only observes: an instrumented run must produce the
    // exact report an untraced engine produces (the property that
    // lets the exact-golden regression nets run unchanged).
    ClusterEngine plain(ClusterConfig::Homogeneous(BaseConfig(), 2),
                        Sarathi(), MakeRouter("least-kv"), 1);
    ClusterMetricsReport expected = plain.Run(golden::ServeTrace());

    auto traced = TracedCluster(BaseConfig(), 2, 1);
    ClusterMetricsReport got = traced->Run(golden::ServeTrace());
    ExpectReportsEqual(expected, got);
}

TEST(TelemetryTrace, ProfilingDoesNotPerturbResultsEither)
{
    ClusterEngine plain(ClusterConfig::Homogeneous(BaseConfig(), 2),
                        Sarathi(), MakeRouter("least-kv"), 1);
    ClusterMetricsReport expected = plain.Run(golden::ServeTrace());

    ClusterEngine profiled(ClusterConfig::Homogeneous(BaseConfig(), 2),
                           Sarathi(), MakeRouter("least-kv"), 2);
    profiled.EnableProfiling(true);
    ClusterMetricsReport got = profiled.Run(golden::ServeTrace());
    ExpectReportsEqual(expected, got);

    // The profile itself reports the advance work and per-thread
    // splits (host time, so only sanity-checked).
    const telemetry::ClusterProfile& profile = profiled.Profile();
    EXPECT_GT(profile.run.seconds, 0.0);
    EXPECT_GT(profile.pool_rounds, 0);
    ASSERT_EQ(profile.threads.size(), 2u);
    long tasks = 0;
    for (const auto& t : profile.threads) tasks += t.tasks;
    EXPECT_GT(tasks, 0);
}

}  // namespace
}  // namespace pod::cluster
