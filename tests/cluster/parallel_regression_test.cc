/**
 * @file
 * Serial-oracle regression net for parallel deterministic cluster
 * execution (docs/DESIGN.md S8): every golden scenario from
 * tests/golden_scenarios.h, run under every router, at thread counts
 * {1, 2, 4, hardware_concurrency}, must produce a
 * ClusterMetricsReport and per-request completion records that
 * compare *exactly equal* — bit-identical doubles, not approximately
 * — to the single-threaded oracle. Also pins the replica-RNG
 * discipline: streams are derived from (cluster seed, replica index)
 * and reseeded serially, so their state is independent of the thread
 * schedule.
 */
#include "cluster/cluster_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../golden_scenarios.h"
#include "cluster/router.h"
#include "report_compare.h"
#include "serve/scheduler.h"

namespace pod::cluster {
namespace {

using pod::cluster::test::ExpectReportsEqual;
using pod::cluster::test::ExpectStatesEqual;

/** Thread counts the net sweeps (deduplicated, order-preserving). */
std::vector<int>
ThreadCounts()
{
    int hw = ThreadPool::ResolveThreads(0);
    std::vector<int> counts = {1, 2, 4, hw};
    std::vector<int> unique;
    for (int c : counts) {
        if (std::find(unique.begin(), unique.end(), c) == unique.end()) {
            unique.push_back(c);
        }
    }
    return unique;
}

SchedulerFactory
Sarathi(int token_budget)
{
    return [token_budget](int) {
        return std::make_unique<serve::SarathiScheduler>(token_budget);
    };
}

/** One golden scenario: fleet composition + trace. */
struct Scenario
{
    std::string name;
    ClusterConfig config;
    int token_budget = 512;
    std::vector<serve::Request> trace;
};

/**
 * Coarse memo-cache buckets for every scenario: the net compares
 * serial vs parallel (both sides share the bucketing), so cost-model
 * resolution is irrelevant and warm caches keep the
 * 5-scenario x 5-router x 4-thread-count sweep fast enough for the
 * sanitizer jobs.
 */
void
CoarsenBuckets(serve::ServingConfig& config)
{
    config.kv_bucket = 4096;
    config.context_bucket = 4096;
    config.decode_bs_bucket = 32;
    config.chunk_bucket = 256;
}

/** ServeTrace on a homogeneous 2-replica A100 fleet. */
Scenario
ServeTraceFleet()
{
    serve::ServingConfig base;
    base.backend = core::Backend::kFaSerial;
    CoarsenBuckets(base);
    Scenario s;
    s.name = "serve-trace";
    s.config = ClusterConfig::Homogeneous(base, 2);
    s.trace = golden::ServeTrace();
    return s;
}

/**
 * ClusterTrace on the heterogeneous A100+H100+A6000 POD fleet —
 * the same composition the exact-golden cluster regression pins, so
 * this scenario also transitively anchors parallel runs to the PR 3
 * golden literals.
 */
Scenario
HeterogeneousFleet()
{
    serve::ServingConfig base;
    base.backend = core::Backend::kPod;
    CoarsenBuckets(base);
    Scenario s;
    s.name = "heterogeneous";
    s.config.replicas.assign(3, base);
    s.config.replicas[1].gpu = gpusim::GpuSpec::H100Sxm80GB();
    s.config.replicas[2].gpu = gpusim::GpuSpec::RtxA6000();
    s.token_budget = 1024;
    s.trace = golden::ClusterTrace();
    return s;
}

/**
 * OverloadTrace on a memory-tight watermark fleet: the regime where
 * replicas evict and re-admit requests, so the parallel engine must
 * reproduce every lifecycle transition (and, under kSwap, the PCIe
 * transfer time) exactly.
 */
Scenario
WatermarkOverloadFleet(serve::PreemptMode mode)
{
    serve::ServingConfig base;
    base.backend = core::Backend::kFaSerial;
    base.tensor_parallel = 2;       // weights must fit the tight pool
    base.memory_fraction = 0.0958;  // few-thousand-token KV pool
    base.kv_policy = serve::KvPolicy::kWatermark;
    base.kv_preempt_mode = mode;
    CoarsenBuckets(base);
    Scenario s;
    s.name = mode == serve::PreemptMode::kSwap ? "overload-swap"
                                               : "overload-recompute";
    s.config = ClusterConfig::Homogeneous(base, 2);
    s.trace = golden::OverloadTrace(16);
    return s;
}

/** A one-replica fleet: the degenerate path where every router is
 * the identity and the pool advances a single replica. */
Scenario
SingleReplicaFleet()
{
    serve::ServingConfig base;
    base.backend = core::Backend::kFaSerial;
    CoarsenBuckets(base);
    Scenario s;
    s.name = "single-replica";
    s.config = ClusterConfig::Homogeneous(base, 1);
    s.trace = golden::ServeTrace();
    return s;
}

void
RunScenarioSweep(const Scenario& scenario)
{
    for (const std::string& router : RouterNames()) {
        SCOPED_TRACE("router " + router);
        ClusterEngine oracle(scenario.config,
                             Sarathi(scenario.token_budget),
                             MakeRouter(router), /*num_threads=*/1);
        ClusterMetricsReport expected = oracle.Run(scenario.trace);

        for (int threads : ThreadCounts()) {
            SCOPED_TRACE(::testing::Message() << "threads " << threads);
            ClusterEngine parallel(scenario.config,
                                   Sarathi(scenario.token_budget),
                                   MakeRouter(router), threads);
            ClusterMetricsReport got = parallel.Run(scenario.trace);
            ExpectReportsEqual(expected, got);
            ExpectStatesEqual(oracle, parallel);
        }
    }
}

TEST(ParallelRegressionTest, ServeTraceBitIdenticalAcrossThreadCounts)
{
    RunScenarioSweep(ServeTraceFleet());
}

TEST(ParallelRegressionTest,
     HeterogeneousClusterTraceBitIdenticalAcrossThreadCounts)
{
    RunScenarioSweep(HeterogeneousFleet());
}

TEST(ParallelRegressionTest,
     WatermarkSwapOverloadBitIdenticalAcrossThreadCounts)
{
    RunScenarioSweep(WatermarkOverloadFleet(serve::PreemptMode::kSwap));
}

TEST(ParallelRegressionTest,
     WatermarkRecomputeOverloadBitIdenticalAcrossThreadCounts)
{
    RunScenarioSweep(
        WatermarkOverloadFleet(serve::PreemptMode::kRecompute));
}

TEST(ParallelRegressionTest,
     SingleReplicaDegeneratePathBitIdenticalAcrossThreadCounts)
{
    RunScenarioSweep(SingleReplicaFleet());
}

TEST(ParallelRegressionTest, RepeatedParallelRunsAreIdentical)
{
    // One engine, run twice at an oversubscribed thread count: memo
    // caches are warm on the second run and the thread schedule is
    // certainly different, yet the simulation must not move. (Cache
    // hit/miss splits legitimately differ between a cold and a warm
    // run, so compare the metrics, not the cache gauges.)
    Scenario s = HeterogeneousFleet();
    ClusterEngine engine(s.config, Sarathi(s.token_budget),
                         MakeRouter("least-kv"), /*num_threads=*/4);
    ClusterMetricsReport first = engine.Run(s.trace);
    ClusterMetricsReport second = engine.Run(s.trace);
    pod::cluster::test::ExpectMetricsEqual(first.fleet, second.fleet,
                                           "fleet");
    ASSERT_EQ(first.utilization.size(), second.utilization.size());
    for (size_t r = 0; r < first.utilization.size(); ++r) {
        EXPECT_EQ(first.utilization[r].requests_routed,
                  second.utilization[r].requests_routed);
        EXPECT_EQ(first.utilization[r].busy_time,
                  second.utilization[r].busy_time);
        EXPECT_EQ(first.utilization[r].tokens_processed,
                  second.utilization[r].tokens_processed);
        EXPECT_EQ(first.utilization[r].kv_peak,
                  second.utilization[r].kv_peak);
        EXPECT_EQ(first.utilization[r].kv_mean,
                  second.utilization[r].kv_mean);
    }
    EXPECT_EQ(first.request_imbalance_cv, second.request_imbalance_cv);
    EXPECT_EQ(first.token_imbalance_cv, second.token_imbalance_cv);
}

// ---- replica-RNG audit (docs/DESIGN.md S8) ----

TEST(ParallelRegressionTest, ReplicaRngStreamsAreDistinctPerReplica)
{
    Scenario s = ServeTraceFleet();
    ClusterEngine engine(s.config, Sarathi(512),
                         MakeRouter("round-robin"));
    // SplitMix64-derived seeds: adjacent replicas must not produce
    // the correlated draws a `seed + index` derivation would.
    EXPECT_NE(engine.ReplicaRng(0).UniformInt(0, 1u << 30),
              engine.ReplicaRng(1).UniformInt(0, 1u << 30));
}

TEST(ParallelRegressionTest,
     ReplicaRngReseedingIsIndependentOfThreadSchedule)
{
    // The pin for the RNG-ownership audit: after a Run() at any
    // thread count, every replica stream must sit at exactly the
    // same state — Run() reseeds the streams serially in
    // replica-index order from ClusterConfig::seed, and no code on
    // the worker threads may share or consume another replica's
    // stream. If any thread-schedule-dependent draw creeps in, the
    // post-run draws below diverge.
    Scenario s = HeterogeneousFleet();
    std::vector<std::vector<int64_t>> draws;
    for (int threads : ThreadCounts()) {
        ClusterEngine engine(s.config, Sarathi(s.token_budget),
                             MakeRouter("least-kv"), threads);
        (void)engine.Run(s.trace);
        std::vector<int64_t> per_replica;
        for (int r = 0; r < engine.NumReplicas(); ++r) {
            for (int d = 0; d < 4; ++d) {
                per_replica.push_back(
                    engine.ReplicaRng(r).UniformInt(0, 1ll << 40));
            }
        }
        draws.push_back(std::move(per_replica));
    }
    for (size_t i = 1; i < draws.size(); ++i) {
        EXPECT_EQ(draws[0], draws[i])
            << "replica RNG state diverged at thread count sweep "
            << i;
    }
}

TEST(ParallelRegressionTest, ClusterSeedChangesReplicaStreams)
{
    Scenario s = ServeTraceFleet();
    ClusterConfig reseeded = s.config;
    reseeded.seed = 12345;
    ClusterEngine a(s.config, Sarathi(512), MakeRouter("round-robin"));
    ClusterEngine b(reseeded, Sarathi(512), MakeRouter("round-robin"));
    EXPECT_NE(a.ReplicaRng(0).UniformInt(0, 1ll << 40),
              b.ReplicaRng(0).UniformInt(0, 1ll << 40));
}

}  // namespace
}  // namespace pod::cluster
