/**
 * @file
 * Unit tests for the routing policies over hand-built snapshots.
 */
#include "cluster/router.h"

#include <gtest/gtest.h>

#include "serve/prefix/block_hash.h"

namespace pod::cluster {
namespace {

serve::ReplicaSnapshot
Snap(int id, int outstanding, double kv_pressure,
     long decode_tokens_pending)
{
    serve::ReplicaSnapshot snap;
    snap.replica_id = id;
    snap.outstanding = outstanding;
    snap.kv_pressure = kv_pressure;
    snap.decode_tokens_pending = decode_tokens_pending;
    return snap;
}

serve::Request
Req(int prefill_tokens)
{
    serve::Request request;
    request.id = 0;
    request.prefill_tokens = prefill_tokens;
    request.decode_tokens = 64;
    return request;
}

TEST(RoundRobinRouterTest, CyclesThroughReplicas)
{
    RoundRobinRouter router;
    std::vector<serve::ReplicaSnapshot> replicas = {
        Snap(0, 9, 0.9, 900), Snap(1, 0, 0.0, 0), Snap(2, 5, 0.5, 500)};
    EXPECT_EQ(router.Route(Req(100), replicas), 0);
    EXPECT_EQ(router.Route(Req(100), replicas), 1);
    EXPECT_EQ(router.Route(Req(100), replicas), 2);
    EXPECT_EQ(router.Route(Req(100), replicas), 0);
}

TEST(LeastOutstandingRouterTest, PicksShortestQueueKvPressureTies)
{
    LeastOutstandingRouter router;
    std::vector<serve::ReplicaSnapshot> replicas = {
        Snap(0, 4, 0.1, 0), Snap(1, 2, 0.9, 0), Snap(2, 2, 0.2, 0)};
    // Queue-depth tie between 1 and 2 resolves by KV pressure.
    EXPECT_EQ(router.Route(Req(100), replicas), 2);
    replicas[1].kv_pressure = 0.2;  // full tie -> lowest index
    EXPECT_EQ(router.Route(Req(100), replicas), 1);
    replicas[2].outstanding = 1;
    EXPECT_EQ(router.Route(Req(100), replicas), 2);
}

TEST(LeastKvPressureRouterTest, PicksLowestPressure)
{
    LeastKvPressureRouter router;
    std::vector<serve::ReplicaSnapshot> replicas = {
        Snap(0, 1, 0.8, 0), Snap(1, 9, 0.2, 0), Snap(2, 0, 0.5, 0)};
    // Ignores request counts entirely: replica 1 has the most
    // requests but the least reserved-KV load.
    EXPECT_EQ(router.Route(Req(100), replicas), 1);
}

TEST(PrefillAwareRouterTest, LongPromptsAvoidDecodeHeavyReplicas)
{
    PrefillAwareRouter router(/*long_prompt_threshold=*/4096);
    std::vector<serve::ReplicaSnapshot> replicas = {
        Snap(0, 1, 0.1, 5000), Snap(1, 6, 0.6, 100),
        Snap(2, 3, 0.3, 2000)};
    // Long prompt: replica 1 has the least pending decode work even
    // though its queue is deepest.
    EXPECT_EQ(router.Route(Req(8192), replicas), 1);
    // Short prompt: falls back to least-outstanding (replica 0).
    EXPECT_EQ(router.Route(Req(512), replicas), 0);
}

TEST(PreemptionAwareRouterTest, AvoidsThrashingReplicas)
{
    PreemptionAwareRouter router;
    std::vector<serve::ReplicaSnapshot> replicas = {
        Snap(0, 1, 0.1, 100), Snap(1, 9, 0.9, 900),
        Snap(2, 3, 0.3, 300)};
    replicas[0].preempted = 2;  // actively thrashing
    replicas[1].preempted = 0;
    replicas[2].preempted = 1;
    replicas[0].kv_watermark_headroom = 0.8;
    replicas[1].kv_watermark_headroom = 0.05;
    replicas[2].kv_watermark_headroom = 0.4;
    // Replica 1 wins despite the deepest queue: nothing evicted.
    EXPECT_EQ(router.Route(Req(100), replicas), 1);

    // Preemption tie: the most watermark headroom wins.
    replicas[1].preempted = 1;
    replicas[2].preempted = 1;
    replicas[0].preempted = 1;
    EXPECT_EQ(router.Route(Req(100), replicas), 0);
}

TEST(PrefixAffinityRouterTest, SteersSharedPrefixesToOneReplica)
{
    PrefixAffinityRouter router(16);
    std::vector<serve::ReplicaSnapshot> replicas = {
        Snap(0, 0, 0.6, 0), Snap(1, 0, 0.1, 0), Snap(2, 0, 0.3, 0)};

    auto with_prompt = [](uint64_t sys, uint64_t user) {
        serve::Request request;
        request.prefill_tokens = 128;
        request.decode_tokens = 32;
        request.prompt = {{sys, 64}, {user, 64}};
        return request;
    };
    uint64_t sys = serve::prefix::ContentId("sys", 1);

    // Cold start: no prefix anywhere -> least KV pressure.
    int first = router.Route(with_prompt(sys, 100), replicas);
    EXPECT_EQ(first, 1);

    // Same system prompt follows the prefix even though replica 1 is
    // now the most pressured.
    replicas[1].kv_pressure = 0.9;
    EXPECT_EQ(router.Route(with_prompt(sys, 101), replicas), 1);

    // A different system prompt sees no match and places by pressure.
    uint64_t other = serve::prefix::ContentId("sys", 2);
    EXPECT_EQ(router.Route(with_prompt(other, 102), replicas), 2);

    // Opaque prompts always fall back to least KV pressure.
    serve::Request opaque;
    opaque.prefill_tokens = 128;
    opaque.decode_tokens = 32;
    EXPECT_EQ(router.Route(opaque, replicas), 2);

    // Reset forgets the routed prefixes: back to the cold path.
    router.Reset();
    replicas[1].kv_pressure = 0.1;
    EXPECT_EQ(router.Route(with_prompt(sys, 103), replicas), 1);
}

TEST(PrefixAffinityRouterTest, LongestMatchBeatsShorterOnes)
{
    PrefixAffinityRouter router(16);
    std::vector<serve::ReplicaSnapshot> replicas = {
        Snap(0, 0, 0.0, 0), Snap(1, 0, 0.5, 0)};
    uint64_t sys = serve::prefix::ContentId("sys", 7);

    // Replica 0 saw only the system prompt; replica 1 saw a full
    // two-segment conversation. (Force placement by pressure.)
    serve::Request short_req;
    short_req.prefill_tokens = 64;
    short_req.decode_tokens = 8;
    short_req.prompt = {{sys, 64}};
    EXPECT_EQ(router.Route(short_req, replicas), 0);

    serve::Request long_req;
    long_req.prefill_tokens = 128;
    long_req.decode_tokens = 8;
    long_req.prompt = {{sys, 64}, {serve::prefix::ContentId("u", 1), 64}};
    replicas[0].kv_pressure = 1.0;  // pressure would say replica 1...
    EXPECT_EQ(router.Route(long_req, replicas), 0);  // ...prefix wins

    // Now replica 0 holds the full 8-block chain; a request matching
    // all of it prefers replica 0 over any shorter match elsewhere.
    serve::Request replay = long_req;
    EXPECT_EQ(router.Route(replay, replicas), 0);
}

TEST(MakeRouterTest, BuildsEveryNamedPolicy)
{
    for (const std::string& name : RouterNames()) {
        auto router = MakeRouter(name);
        ASSERT_NE(router, nullptr);
        EXPECT_EQ(router->Name(), name);
    }
}

TEST(MakeRouterDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(MakeRouter("random-spray"),
                ::testing::ExitedWithCode(1), "unknown router");
}

}  // namespace
}  // namespace pod::cluster
