/**
 * @file
 * Bit-identical regression pin for the cluster event loop.
 *
 * Runs the fixed 48-request trace from tests/golden_scenarios.h over
 * a heterogeneous 3-replica fleet (A100 + H100 + A6000) under two
 * routers and compares fleet metrics against exact golden doubles
 * captured from the pre-refactor engine (PR 3). The O(active) loop
 * refactor must route every request to the same replica at the same
 * instant as the scan-everything loop did.
 *
 * Since PR 8 the exact goldens pin the EngineCore::kExactOracle sim
 * core; the default analytic core is compared against the oracle
 * within tolerance bands (AnalyticMatchesOracleWithinBands below,
 * bands justified inline and in docs/DESIGN.md S3.2).
 */
#include "cluster/cluster_engine.h"

#include <gtest/gtest.h>
#include <memory>

#include "../golden_scenarios.h"
#include "cluster/router.h"
#include "serve/scheduler.h"

namespace pod::cluster {
namespace {

ClusterMetricsReport
RunGoldenFleet(const std::string& router,
               gpusim::EngineCore sim_core = gpusim::EngineCore::kExactOracle)
{
    serve::ServingConfig base;
    base.backend = core::Backend::kPod;
    base.attn_options.sim.core = sim_core;
    ClusterConfig config;
    config.replicas.assign(3, base);
    config.replicas[1].gpu = gpusim::GpuSpec::H100Sxm80GB();
    config.replicas[2].gpu = gpusim::GpuSpec::RtxA6000();
    ClusterEngine engine(
        config,
        [](int) { return std::make_unique<serve::SarathiScheduler>(1024); },
        MakeRouter(router));
    return engine.Run(golden::ClusterTrace());
}

TEST(ClusterRegressionTest, LeastKvRunIsBitIdenticalToGolden)
{
    ClusterMetricsReport rep = RunGoldenFleet("least-kv");
    const serve::MetricsReport& m = rep.fleet;

    EXPECT_EQ(m.num_requests, 48);
    EXPECT_EQ(m.iterations, 1397l);
    EXPECT_EQ(m.makespan, 0x1.36ee66916293p+3);  // 9.7166016425659052
    EXPECT_EQ(m.requests_per_minute, 0x1.2866617f5ea76p+8);
    EXPECT_EQ(m.ttft.Percentile(50), 0x1.114689b48p-3);
    EXPECT_EQ(m.ttft.Percentile(99), 0x1.64dac2d86de98p-1);
    EXPECT_EQ(m.ttft.Max(), 0x1.651cc1f3a5a4p-1);
    EXPECT_EQ(m.tbt.Percentile(50), 0x1.44a2b7d6bfb8p-7);
    EXPECT_EQ(m.tbt.Percentile(99), 0x1.54ea810a6b5p-4);
    EXPECT_EQ(m.tbt.Max(), 0x1.2adafd41bebcp-3);
    EXPECT_EQ(m.latency.Mean(), 0x1.4d8640ae412c7p+0);
    EXPECT_EQ(m.latency.Max(), 0x1.16d582e91f3ep+2);
    EXPECT_EQ(m.frac_stalled_200ms, 0x0p+0);
    EXPECT_EQ(m.frac_stalled_500ms, 0x0p+0);
    EXPECT_EQ(m.mean_batch_tokens, 0x1.e49aa9b078364p+6);
    EXPECT_EQ(rep.request_imbalance_cv, 0x1.8a85c24f70659p-2);
    EXPECT_EQ(rep.token_imbalance_cv, 0x1.2fb13b5473b24p-1);
    ASSERT_EQ(rep.utilization.size(), 3u);
    EXPECT_EQ(rep.utilization[0].requests_routed, 17);
    EXPECT_EQ(rep.utilization[0].tokens_processed, 0x1.a85ep+15);
    EXPECT_EQ(rep.utilization[0].kv_peak, 0x1.5990666103bbfp-5);
    EXPECT_EQ(rep.utilization[0].kv_mean, 0x1.48e7eda7b996ep-6);
    EXPECT_EQ(rep.utilization[1].requests_routed, 23);
    EXPECT_EQ(rep.utilization[1].tokens_processed, 0x1.8068p+16);
    EXPECT_EQ(rep.utilization[1].kv_peak, 0x1.5e9ce636614b9p-5);
    EXPECT_EQ(rep.utilization[1].kv_mean, 0x1.4f837b835d49ap-6);
    EXPECT_EQ(rep.utilization[2].requests_routed, 8);
    EXPECT_EQ(rep.utilization[2].tokens_processed, 0x1.0224p+14);
    EXPECT_EQ(rep.utilization[2].kv_peak, 0x1.3c1f713c1f714p-5);
    EXPECT_EQ(rep.utilization[2].kv_mean, 0x1.ae56be894351ap-6);
}

TEST(ClusterRegressionTest, PrefillAwareRunIsBitIdenticalToGolden)
{
    ClusterMetricsReport rep = RunGoldenFleet("prefill-aware");
    const serve::MetricsReport& m = rep.fleet;

    EXPECT_EQ(m.num_requests, 48);
    EXPECT_EQ(m.iterations, 1368l);
    EXPECT_EQ(m.makespan, 0x1.49f0d3ec8e833p+3);  // 10.310647928261551
    EXPECT_EQ(m.requests_per_minute, 0x1.1752a9108ba0cp+8);
    EXPECT_EQ(m.ttft.Percentile(50), 0x1.f04d7663334ap-4);
    EXPECT_EQ(m.ttft.Percentile(99), 0x1.8f124682bb306p+0);
    EXPECT_EQ(m.ttft.Max(), 0x1.c47fc76acb54p+0);
    EXPECT_EQ(m.tbt.Percentile(50), 0x1.3ce37d5fcf7p-7);
    EXPECT_EQ(m.tbt.Percentile(99), 0x1.2338cad93acep-3);
    EXPECT_EQ(m.tbt.Max(), 0x1.84ed43809304p-3);
    EXPECT_EQ(m.latency.Mean(), 0x1.4f3717ef1a27p+0);
    EXPECT_EQ(m.latency.Max(), 0x1.73e5e9277f4f4p+2);
    EXPECT_EQ(m.frac_stalled_200ms, 0x0p+0);
    EXPECT_EQ(m.frac_stalled_500ms, 0x0p+0);
    EXPECT_EQ(m.mean_batch_tokens, 0x1.eee08fb823ee1p+6);
    EXPECT_EQ(rep.request_imbalance_cv, 0x1.2d52500834e58p-1);
    EXPECT_EQ(rep.token_imbalance_cv, 0x1.f55abdbb6dde8p-2);
    ASSERT_EQ(rep.utilization.size(), 3u);
    EXPECT_EQ(rep.utilization[0].requests_routed, 12);
    EXPECT_EQ(rep.utilization[0].tokens_processed, 0x1.82dap+15);
    EXPECT_EQ(rep.utilization[0].kv_peak, 0x1.8c0d64b6ab583p-5);
    EXPECT_EQ(rep.utilization[0].kv_mean, 0x1.6ba822bc0a89cp-6);
    EXPECT_EQ(rep.utilization[1].requests_routed, 29);
    EXPECT_EQ(rep.utilization[1].tokens_processed, 0x1.6bebp+16);
    EXPECT_EQ(rep.utilization[1].kv_peak, 0x1.9596c7f45c123p-5);
    EXPECT_EQ(rep.utilization[1].kv_mean, 0x1.3c9803e0adcedp-6);
    EXPECT_EQ(rep.utilization[2].requests_routed, 7);
    EXPECT_EQ(rep.utilization[2].tokens_processed, 0x1.9f2p+14);
    EXPECT_EQ(rep.utilization[2].kv_peak, 0x1.93a6c593a6c59p-4);
    EXPECT_EQ(rep.utilization[2].kv_mean, 0x1.e4852753e8d06p-6);
}

/**
 * The default analytic sim core against the oracle, at the fleet
 * layer. Routing is driven entirely by discrete replica state
 * (request counts, KV occupancy at admission boundaries), so every
 * request must land on the same replica under both cores; fleet
 * timing aggregates carry a 1e-3 relative band, same argument as the
 * serve-layer AnalyticMatchesOracleWithinBands: per-kernel drift is
 * <= ~2e-4 relative (pinned in tests/gpusim/analytic_oracle_test.cc)
 * and fleet metrics aggregate it without amplification. Extreme
 * order statistics (tbt.Max is a single iteration picked out of
 * ~1400, where per-iteration drift is not averaged away) carry a
 * wider 5e-3 band; measured drift there is ~1.2e-3.
 */
TEST(ClusterRegressionTest, AnalyticMatchesOracleWithinBands)
{
    for (const char* router : {"least-kv", "prefill-aware"}) {
        ClusterMetricsReport a =
            RunGoldenFleet(router, gpusim::EngineCore::kAnalytic);
        ClusterMetricsReport o =
            RunGoldenFleet(router, gpusim::EngineCore::kExactOracle);

        EXPECT_EQ(a.fleet.num_requests, o.fleet.num_requests) << router;
        EXPECT_EQ(a.fleet.iterations, o.fleet.iterations) << router;
        ASSERT_EQ(a.utilization.size(), o.utilization.size()) << router;
        long a_tokens = 0, o_tokens = 0;
        for (size_t i = 0; i < a.utilization.size(); ++i) {
            EXPECT_EQ(a.utilization[i].requests_routed,
                      o.utilization[i].requests_routed)
                << router << " replica " << i;
            a_tokens += static_cast<long>(a.utilization[i].tokens_processed);
            o_tokens += static_cast<long>(o.utilization[i].tokens_processed);
        }
        EXPECT_EQ(a_tokens, o_tokens) << router;

        constexpr double kBand = 1e-3;
        EXPECT_NEAR(a.fleet.makespan, o.fleet.makespan,
                    o.fleet.makespan * kBand)
            << router;
        EXPECT_NEAR(a.fleet.ttft.Percentile(99), o.fleet.ttft.Percentile(99),
                    o.fleet.ttft.Percentile(99) * kBand)
            << router;
        constexpr double kMaxBand = 5e-3;  // extreme order statistic
        EXPECT_NEAR(a.fleet.tbt.Max(), o.fleet.tbt.Max(),
                    o.fleet.tbt.Max() * kMaxBand)
            << router;
        EXPECT_NEAR(a.fleet.latency.Mean(), o.fleet.latency.Mean(),
                    o.fleet.latency.Mean() * kBand)
            << router;
    }
}

}  // namespace
}  // namespace pod::cluster
