/**
 * @file
 * Serial-oracle determinism net for the work-stealing advance phase
 * (docs/DESIGN.md S8.4): heterogeneous golden scenarios, run under
 * every router at thread counts {1, 2, 4, hardware_concurrency} and
 * slice sizes {1, 64, unbounded}, must produce reports and
 * per-request completion records that compare *exactly equal* —
 * bit-identical doubles — to the single-threaded single-shot oracle.
 * Slice size and advance mode are scheduling knobs: they may only
 * change which thread runs which part of a replica's window, never
 * any simulated quantity. A single-shot control at every thread
 * count pins the PR 6 baseline path alongside.
 */
#include "cluster/cluster_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../golden_scenarios.h"
#include "cluster/router.h"
#include "report_compare.h"
#include "serve/scheduler.h"

namespace pod::cluster {
namespace {

using pod::cluster::test::ExpectReportsEqual;
using pod::cluster::test::ExpectStatesEqual;

SchedulerFactory
Sarathi(int token_budget)
{
    return [token_budget](int) {
        return std::make_unique<serve::SarathiScheduler>(token_budget);
    };
}

/** Coarse memo-cache buckets: both sides of every comparison share
 * the bucketing, so resolution is irrelevant and warm caches keep the
 * sweep fast enough for the sanitizer jobs. */
void
CoarsenBuckets(serve::ServingConfig& config)
{
    config.kv_bucket = 4096;
    config.context_bucket = 4096;
    config.decode_bs_bucket = 32;
    config.chunk_bucket = 256;
}

struct Scenario
{
    std::string name;
    ClusterConfig config;
    int token_budget = 1024;
    std::vector<serve::Request> trace;
};

/** The PR 6 net's heterogeneous A100+H100+A6000 fleet: uneven
 * per-replica windows are exactly what stealing reschedules. */
Scenario
HeterogeneousFleet()
{
    serve::ServingConfig base;
    base.backend = core::Backend::kPod;
    CoarsenBuckets(base);
    Scenario s;
    s.name = "heterogeneous";
    s.config.replicas.assign(3, base);
    s.config.replicas[1].gpu = gpusim::GpuSpec::H100Sxm80GB();
    s.config.replicas[2].gpu = gpusim::GpuSpec::RtxA6000();
    s.trace = golden::ClusterTrace();
    return s;
}

/**
 * An offline burst on an 8-replica mixed H100/A6000 fleet: every
 * request queued at t = 0, so the whole drain is one advance window
 * — the deepest slice chains and the most steal opportunities the
 * engine ever sees, mirroring bench_cluster_scaling's heterogeneous
 * axis in miniature.
 */
Scenario
OfflineBurstMixedFleet()
{
    serve::ServingConfig base;
    base.backend = core::Backend::kFaSerial;
    CoarsenBuckets(base);
    Scenario s;
    s.name = "offline-burst-mixed";
    s.config.replicas.assign(8, base);
    for (size_t r = 0; r < s.config.replicas.size(); ++r) {
        s.config.replicas[r].gpu = r % 2 == 0
                                       ? gpusim::GpuSpec::H100Sxm80GB()
                                       : gpusim::GpuSpec::RtxA6000();
    }
    for (int i = 0; i < 64; ++i) {
        serve::Request r;
        r.id = i;
        r.arrival_time = 0.0;
        r.prefill_tokens = 256 + 613 * (i % 8) + (i % 9 == 0 ? 4000 : 0);
        r.decode_tokens = 8 + 23 * (i % 7);
        s.trace.push_back(r);
    }
    return s;
}

/** Watermark overload: preemption/restore lifecycle transitions must
 * survive slicing at every granularity (a slice boundary can land
 * between an eviction and its re-admission). */
Scenario
WatermarkOverloadFleet()
{
    serve::ServingConfig base;
    base.backend = core::Backend::kFaSerial;
    base.tensor_parallel = 2;
    base.memory_fraction = 0.0958;
    base.kv_policy = serve::KvPolicy::kWatermark;
    base.kv_preempt_mode = serve::PreemptMode::kSwap;
    CoarsenBuckets(base);
    Scenario s;
    s.name = "overload-swap";
    s.config = ClusterConfig::Homogeneous(base, 2);
    s.token_budget = 512;
    s.trace = golden::OverloadTrace(16);
    return s;
}

/** One engine variant of the sweep. */
struct Variant
{
    AdvanceMode mode;
    int threads;
    int slice_events;  // <= 0 = unbounded
};

std::vector<Variant>
Variants()
{
    const int hw = ThreadPool::ResolveThreads(0);
    std::vector<Variant> variants;
    // Slice-size sweep at 2 and 4 threads (1 and 64 force requeues;
    // 0 = whole-window slices, the pure-LPT schedule).
    for (int threads : {2, 4}) {
        for (int slice : {1, 64, 0}) {
            variants.push_back(
                {AdvanceMode::kWorkStealing, threads, slice});
        }
    }
    // Degenerate and oversubscribed thread counts at default slicing.
    variants.push_back({AdvanceMode::kWorkStealing, 1, 64});
    variants.push_back({AdvanceMode::kWorkStealing, hw, 64});
    // Single-shot control: the PR 6 baseline stays pinned too.
    for (int threads : {2, 4}) {
        variants.push_back({AdvanceMode::kSingleShot, threads, 0});
    }
    return variants;
}

void
RunScenarioSweep(const Scenario& scenario)
{
    for (const std::string& router : RouterNames()) {
        SCOPED_TRACE("router " + router);
        ClusterConfig oracle_config = scenario.config;
        oracle_config.advance_mode = AdvanceMode::kSingleShot;
        ClusterEngine oracle(oracle_config,
                             Sarathi(scenario.token_budget),
                             MakeRouter(router), /*num_threads=*/1);
        ClusterMetricsReport expected = oracle.Run(scenario.trace);

        for (const Variant& v : Variants()) {
            SCOPED_TRACE(::testing::Message()
                         << (v.mode == AdvanceMode::kWorkStealing
                                 ? "steal"
                                 : "single-shot")
                         << " threads " << v.threads << " slice "
                         << v.slice_events);
            ClusterConfig config = scenario.config;
            config.advance_mode = v.mode;
            config.advance_slice_events = v.slice_events;
            ClusterEngine parallel(config,
                                   Sarathi(scenario.token_budget),
                                   MakeRouter(router), v.threads);
            ClusterMetricsReport got = parallel.Run(scenario.trace);
            ExpectReportsEqual(expected, got);
            ExpectStatesEqual(oracle, parallel);
        }
    }
}

TEST(StealRegressionTest,
     HeterogeneousFleetBitIdenticalAcrossModesAndSlices)
{
    RunScenarioSweep(HeterogeneousFleet());
}

TEST(StealRegressionTest,
     OfflineBurstMixedFleetBitIdenticalAcrossModesAndSlices)
{
    RunScenarioSweep(OfflineBurstMixedFleet());
}

TEST(StealRegressionTest,
     WatermarkOverloadBitIdenticalAcrossModesAndSlices)
{
    RunScenarioSweep(WatermarkOverloadFleet());
}

TEST(StealRegressionTest, SliceSizeOneMatchesUnboundedExactly)
{
    // Direct steal-vs-steal pin with maximal scheduling divergence:
    // slice 1 (a deque round-trip per Step) against whole-window
    // slices, same fleet, same threads.
    Scenario s = OfflineBurstMixedFleet();
    ClusterConfig fine = s.config;
    fine.advance_slice_events = 1;
    ClusterConfig unbounded = s.config;
    unbounded.advance_slice_events = 0;
    ClusterEngine a(fine, Sarathi(s.token_budget),
                    MakeRouter("least-outstanding"), 4);
    ClusterEngine b(unbounded, Sarathi(s.token_budget),
                    MakeRouter("least-outstanding"), 4);
    ClusterMetricsReport ra = a.Run(s.trace);
    ClusterMetricsReport rb = b.Run(s.trace);
    ExpectReportsEqual(ra, rb);
    ExpectStatesEqual(a, b);
}

TEST(StealRegressionTest, TracingIsBitIdenticalUnderStealing)
{
    // The sim-time trace must also be schedule-independent: recorders
    // are written by whichever thread runs a slice, so a migrating
    // chain writes one replica's recorder from several threads —
    // serialized by the slice contract. Compare merged trace bytes
    // against the serial oracle's.
    Scenario s = HeterogeneousFleet();
    ClusterConfig oracle_config = s.config;
    oracle_config.advance_mode = AdvanceMode::kSingleShot;
    ClusterEngine oracle(oracle_config, Sarathi(s.token_budget),
                         MakeRouter("round-robin"), 1);
    oracle.EnableTracing();
    (void)oracle.Run(s.trace);

    ClusterConfig config = s.config;
    config.advance_slice_events = 1;
    ClusterEngine parallel(config, Sarathi(s.token_budget),
                           MakeRouter("round-robin"), 4);
    parallel.EnableTracing();
    (void)parallel.Run(s.trace);

    std::ostringstream serial_trace;
    std::ostringstream parallel_trace;
    oracle.WriteChromeTrace(serial_trace);
    parallel.WriteChromeTrace(parallel_trace);
    EXPECT_EQ(serial_trace.str(), parallel_trace.str());
}

}  // namespace
}  // namespace pod::cluster
