/**
 * @file
 * Randomized serial/parallel equivalence stress: ~50 seeded random
 * fleet configurations (replica count, heterogeneous GPU specs,
 * arrival rate, router, watermark on/off, preempt mode, scheduler
 * budget, thread count) each run through the serial oracle and the
 * parallel engine and compared field-by-field, bit-exactly.
 *
 * Every configuration is generated from common/rng.h with a fixed
 * seed, and the full configuration is attached to the assertion
 * scope — a mismatch log line contains everything needed to
 * reproduce the failing case standalone.
 */
#include "cluster/cluster_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "common/rng.h"
#include "report_compare.h"
#include "serve/scheduler.h"
#include "serve/trace.h"

namespace pod::cluster {
namespace {

using pod::cluster::test::ExpectReportsEqual;
using pod::cluster::test::ExpectStatesEqual;

constexpr uint64_t kSuiteSeed = 0xC0FFEE2026ull;
constexpr int kNumConfigs = 50;

struct StressConfig
{
    uint64_t cluster_seed = 0;
    int num_replicas = 1;
    std::vector<int> gpu_picks;  // 0=A100, 1=H100, 2=A6000
    std::string router;
    int token_budget = 512;
    bool watermark = false;
    bool swap_mode = false;
    double memory_fraction = 0.9;
    int num_requests = 0;
    double qps = 0.0;  // 0 = offline (all arrivals at t=0)
    int threads = 2;
    bool single_shot = false;  // advance mode (PR 6 baseline path)
    int slice_events = 64;     // <= 0 = unbounded

    std::string
    Describe() const
    {
        std::ostringstream os;
        os << "cluster_seed=" << cluster_seed
           << " replicas=" << num_replicas << " gpus=[";
        for (size_t i = 0; i < gpu_picks.size(); ++i) {
            os << (i ? "," : "") << gpu_picks[i];
        }
        os << "] router=" << router << " token_budget=" << token_budget
           << " watermark=" << watermark << " swap=" << swap_mode
           << " memory_fraction=" << memory_fraction
           << " requests=" << num_requests << " qps=" << qps
           << " threads=" << threads
           << " mode=" << (single_shot ? "single-shot" : "steal")
           << " slice=" << slice_events;
        return os.str();
    }
};

StressConfig
DrawConfig(Rng& rng, int index)
{
    StressConfig c;
    c.cluster_seed = static_cast<uint64_t>(
        rng.UniformInt(1, 1ll << 40));
    c.num_replicas = static_cast<int>(rng.UniformInt(1, 4));
    for (int r = 0; r < c.num_replicas; ++r) {
        c.gpu_picks.push_back(static_cast<int>(rng.UniformInt(0, 2)));
    }
    const auto routers = RouterNames();
    c.router = routers[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(routers.size()) - 1))];
    c.token_budget =
        static_cast<int>(256 * rng.UniformInt(1, 4));  // 256..1024
    c.watermark = rng.Bernoulli(0.4);
    if (c.watermark) {
        c.swap_mode = rng.Bernoulli(0.5);
        // Tight pool so the watermark allocator actually preempts.
        // A100s only: smaller presets cannot fit the model weights
        // under a pool this tight (the engine rejects the config).
        c.memory_fraction = rng.UniformReal(0.096, 0.12);
        for (int& pick : c.gpu_picks) pick = 0;
    }
    c.num_requests = static_cast<int>(rng.UniformInt(6, 20));
    c.qps = rng.Bernoulli(0.5) ? rng.UniformReal(1.0, 8.0) : 0.0;
    c.threads = static_cast<int>(rng.UniformInt(2, 5));
    // Mostly the work-stealing default (with a spread of slice
    // granularities, including pathological 1 and unbounded 0); keep
    // a single-shot minority so the PR 6 path stays under stress too.
    // Drawn from a side stream so these scheduling-only knobs don't
    // shift the main stream's trace draws (which are shaped to keep
    // the preemption-coverage canary below satisfied).
    Rng side(c.cluster_seed ^ 0x51ED5EEDull);
    c.single_shot = side.Bernoulli(0.25);
    if (!c.single_shot) {
        constexpr int kSlices[] = {1, 2, 16, 64, 0};
        c.slice_events =
            kSlices[static_cast<size_t>(side.UniformInt(0, 4))];
    }
    (void)index;
    return c;
}

gpusim::GpuSpec
PickGpu(int pick)
{
    switch (pick) {
        case 1: return gpusim::GpuSpec::H100Sxm80GB();
        case 2: return gpusim::GpuSpec::RtxA6000();
        default: return gpusim::GpuSpec::A100Sxm80GB();
    }
}

ClusterConfig
BuildFleet(const StressConfig& c)
{
    serve::ServingConfig base;
    base.backend = core::Backend::kFaSerial;
    base.tensor_parallel = 2;
    // Coarse memo buckets: the stress suite cares about lifecycle
    // equivalence, not cost-model resolution, and warm caches keep
    // 100 cluster runs fast enough for sanitizer jobs.
    base.kv_bucket = 4096;
    base.context_bucket = 4096;
    base.decode_bs_bucket = 32;
    base.chunk_bucket = 256;
    if (c.watermark) {
        base.kv_policy = serve::KvPolicy::kWatermark;
        base.kv_preempt_mode = c.swap_mode
                                   ? serve::PreemptMode::kSwap
                                   : serve::PreemptMode::kRecompute;
        base.memory_fraction = c.memory_fraction;
    }
    ClusterConfig fleet = ClusterConfig::Homogeneous(base,
                                                     c.num_replicas);
    fleet.seed = c.cluster_seed;
    fleet.advance_mode = c.single_shot ? AdvanceMode::kSingleShot
                                       : AdvanceMode::kWorkStealing;
    fleet.advance_slice_events = c.slice_events;
    for (int r = 0; r < c.num_replicas; ++r) {
        fleet.replicas[static_cast<size_t>(r)].gpu =
            PickGpu(c.gpu_picks[static_cast<size_t>(r)]);
    }
    return fleet;
}

std::vector<serve::Request>
BuildTrace(const StressConfig& c, Rng& rng)
{
    // Overload-shaped lengths when the pool is tight (so watermark
    // configs really preempt), moderate otherwise; arrivals either
    // offline (all t=0) or Poisson at the drawn rate.
    std::vector<serve::Request> trace;
    double now = 0.0;
    for (int i = 0; i < c.num_requests; ++i) {
        serve::Request r;
        r.id = i;
        if (c.qps > 0.0) now += rng.Exponential(c.qps);
        r.arrival_time = now;
        if (c.watermark) {
            r.prefill_tokens =
                static_cast<int>(rng.UniformInt(256, 640));
            r.decode_tokens =
                static_cast<int>(rng.UniformInt(256, 640));
        } else {
            r.prefill_tokens =
                static_cast<int>(rng.UniformInt(64, 4096));
            r.decode_tokens = static_cast<int>(rng.UniformInt(8, 128));
        }
        trace.push_back(r);
    }
    return trace;
}

SchedulerFactory
Sarathi(int token_budget)
{
    return [token_budget](int) {
        return std::make_unique<serve::SarathiScheduler>(token_budget);
    };
}

TEST(ParallelStressTest, RandomConfigsSerialParallelEquivalent)
{
    Rng rng(kSuiteSeed);
    int preempting_configs = 0;
    for (int i = 0; i < kNumConfigs; ++i) {
        StressConfig c = DrawConfig(rng, i);
        // The trace draws ride the same suite RNG, after the config
        // draws, so config i's inputs are a pure function of
        // (kSuiteSeed, i-prefix) and reproduce from the log.
        std::vector<serve::Request> trace = BuildTrace(c, rng);
        SCOPED_TRACE("config " + std::to_string(i) + ": " +
                     c.Describe());

        ClusterConfig fleet = BuildFleet(c);
        ClusterEngine oracle(fleet, Sarathi(c.token_budget),
                             MakeRouter(c.router), /*num_threads=*/1);
        ClusterMetricsReport expected = oracle.Run(trace);

        ClusterEngine parallel(fleet, Sarathi(c.token_budget),
                               MakeRouter(c.router), c.threads);
        ClusterMetricsReport got = parallel.Run(trace);

        ExpectReportsEqual(expected, got);
        ExpectStatesEqual(oracle, parallel);
        if (expected.preemptions > 0) ++preempting_configs;
        if (HasFatalFailure()) return;
    }
    // The sweep must actually exercise the preemption lifecycle, not
    // just conservative fleets — if trace shaping drifts and no
    // config preempts, this suite has silently lost its hardest
    // coverage.
    EXPECT_GT(preempting_configs, 3);
}

}  // namespace
}  // namespace pod::cluster
