/**
 * @file
 * Fixed-seed scenarios for the bit-identical regression tests that
 * pin the simulator hot paths across refactors (gpusim engine, serve
 * stepping loop, cluster event loop). Each builder is fully
 * deterministic and avoids libm-dependent trace generation so the
 * golden values hold on any IEEE-754 platform.
 *
 * The golden literals in the *_regression_test.cc files were captured
 * from the pre-refactor engines (PR 3); a mismatch means the refactor
 * changed simulation *behaviour*, not just its speed.
 */
#ifndef POD_TESTS_GOLDEN_SCENARIOS_H
#define POD_TESTS_GOLDEN_SCENARIOS_H

#include <memory>
#include <utility>
#include <vector>

#include "gpusim/work.h"
#include "serve/request.h"

namespace pod::golden {

/**
 * A five-kernel, two-stream launch set exercising every engine path:
 * multi-wave dispatch, an empty kernel, per-unit bandwidth caps,
 * multi-unit CTAs (straggler retirement), per-kernel CTA residency
 * limits, and a persistent refill kernel.
 */
inline std::vector<gpusim::KernelLaunch>
GpusimLaunches()
{
    using namespace gpusim;
    std::vector<KernelLaunch> launches;

    // Kernel A (stream 0): hybrid compute, > 1 wave of CTAs, 1-3
    // phases per unit with slightly varied demands.
    {
        std::vector<CtaWork> works;
        for (int i = 0; i < 180; ++i) {
            CtaWork w;
            WorkUnit u;
            u.op = OpClass::kPrefill;
            u.warps = 8;
            int phases = 1 + (i % 3);
            for (int p = 0; p < phases; ++p) {
                Phase ph;
                ph.tensor_flops = 1e9 + 3e6 * ((i * 7 + p) % 11);
                ph.cuda_flops = 2e8 + 1e6 * ((i * 5 + p) % 7);
                ph.mem_bytes = 4e6 + 1e4 * ((i * 3 + p) % 13);
                u.phases.push_back(ph);
            }
            w.units.push_back(std::move(u));
            works.push_back(std::move(w));
        }
        KernelDesc k = KernelDesc::FromWorks(
            "A_hybrid", CtaResources{256, 32768.0}, std::move(works));
        launches.push_back(KernelLaunch{std::move(k), 0});
    }

    // Kernel B (stream 0): empty kernel, completes at its ready time.
    {
        KernelDesc k;
        k.name = "B_empty";
        k.cta_count = 0;
        launches.push_back(KernelLaunch{std::move(k), 0});
    }

    // Kernel C (stream 0): memory-bound with explicit per-unit
    // bandwidth caps.
    {
        std::vector<CtaWork> works;
        for (int i = 0; i < 96; ++i) {
            CtaWork w;
            WorkUnit u;
            u.op = OpClass::kMemory;
            u.warps = 4;
            u.mem_bw_cap = 30e9 + 1e9 * (i % 5);
            Phase ph;
            ph.mem_bytes = 6e6 + 2e4 * (i % 17);
            ph.cuda_flops = 1e6;
            u.phases.push_back(ph);
            w.units.push_back(std::move(u));
            works.push_back(std::move(w));
        }
        KernelDesc k = KernelDesc::FromWorks(
            "C_memory", CtaResources{128, 8192.0}, std::move(works));
        launches.push_back(KernelLaunch{std::move(k), 0});
    }

    // Kernel D (stream 1): two units per CTA (virtual-CTA straggler
    // retirement) and a per-kernel residency limit.
    {
        std::vector<CtaWork> works;
        for (int i = 0; i < 120; ++i) {
            CtaWork w;
            for (int uidx = 0; uidx < 2; ++uidx) {
                WorkUnit u;
                u.op = uidx == 0 ? OpClass::kDecode : OpClass::kCompute;
                u.warps = uidx == 0 ? 2 : 6;
                Phase ph;
                ph.tensor_flops = 3e8 + 2e6 * ((i + uidx) % 9);
                ph.cuda_flops = 5e7;
                ph.mem_bytes = 2e6 + 1e4 * ((i * 2 + uidx) % 5);
                u.phases.push_back(ph);
                ph.tensor_flops /= 2.0;
                ph.mem_bytes /= 4.0;
                u.phases.push_back(ph);
                w.units.push_back(std::move(u));
            }
            works.push_back(std::move(w));
        }
        KernelDesc k = KernelDesc::FromWorks(
            "D_virtual", CtaResources{192, 16384.0}, std::move(works));
        k.max_ctas_per_sm = 2;
        launches.push_back(KernelLaunch{std::move(k), 1});
    }

    // Kernel E (stream 1): persistent refill kernel; 24 lanes drain a
    // shared queue of 90 work items.
    {
        auto queue = std::make_shared<std::vector<gpusim::WorkUnit>>();
        for (int i = 0; i < 90; ++i) {
            WorkUnit u;
            u.op = i % 3 == 0 ? OpClass::kDecode : OpClass::kOther;
            u.warps = 4;
            Phase ph;
            ph.tensor_flops = 1e8 + 1e6 * (i % 13);
            ph.cuda_flops = 2e7 + 5e5 * (i % 3);
            ph.mem_bytes = 1e6 + 3e4 * (i % 7);
            u.phases.push_back(ph);
            queue->push_back(std::move(u));
        }
        auto cursor = std::make_shared<size_t>(24);  // first 24 pre-assigned

        KernelDesc k;
        k.name = "E_persistent";
        k.resources = CtaResources{128, 4096.0};
        k.cta_count = 24;
        k.assign = [queue](int cta_index, int /*sm_id*/) {
            CtaWork w;
            w.units.push_back((*queue)[static_cast<size_t>(cta_index)]);
            return w;
        };
        k.refill = [queue, cursor](int /*sm_id*/, gpusim::OpClass /*op*/,
                                   gpusim::WorkUnit* next) {
            if (*cursor >= queue->size()) return false;
            *next = (*queue)[(*cursor)++];
            return true;
        };
        launches.push_back(KernelLaunch{std::move(k), 1});
    }

    return launches;
}

/**
 * A deterministic 32-request trace (no libm draws): staggered
 * arrivals, heavy-tailed prompts that stress KV admission, and varied
 * decode lengths.
 */
inline std::vector<serve::Request>
ServeTrace()
{
    std::vector<serve::Request> trace;
    for (int i = 0; i < 32; ++i) {
        serve::Request r;
        r.id = i;
        r.arrival_time = 0.25 * i + 0.125 * (i % 4);
        r.prefill_tokens = 512 + 731 * (i % 7) + (i % 5 == 0 ? 9000 : 0);
        r.decode_tokens = 16 + 37 * (i % 6);
        trace.push_back(r);
    }
    return trace;
}

/**
 * A deterministic overload trace for the preemption tests: a fast
 * burst of moderate prompts with long decode chains. Paired with a
 * shrunken KV pool (ServingConfig::memory_fraction ~ 0.1), the
 * watermark allocator admits several requests on prompt blocks alone
 * and then runs out of room as their decodes grow — the regime where
 * vLLM preempts. examples/preemption.cpp mirrors this formula
 * inline (examples cannot include tests/); keep the two in sync.
 */
inline std::vector<serve::Request>
OverloadTrace(int count = 12)
{
    std::vector<serve::Request> trace;
    for (int i = 0; i < count; ++i) {
        serve::Request r;
        r.id = i;
        r.arrival_time = 0.05 * i;
        r.prefill_tokens = 384 + 128 * (i % 3);
        r.decode_tokens = 384 + 96 * (i % 4);
        trace.push_back(r);
    }
    return trace;
}

/** A denser 48-request variant for the cluster regression. */
inline std::vector<serve::Request>
ClusterTrace()
{
    std::vector<serve::Request> trace;
    for (int i = 0; i < 48; ++i) {
        serve::Request r;
        r.id = i;
        r.arrival_time = 0.125 * i + 0.0625 * (i % 3);
        r.prefill_tokens = 384 + 577 * (i % 9) + (i % 7 == 0 ? 6000 : 0);
        r.decode_tokens = 12 + 29 * (i % 5);
        trace.push_back(r);
    }
    return trace;
}

}  // namespace pod::golden

#endif  // POD_TESTS_GOLDEN_SCENARIOS_H
