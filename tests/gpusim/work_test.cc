/**
 * @file
 * Unit tests for work descriptions.
 */
#include "gpusim/work.h"

#include <gtest/gtest.h>

namespace pod::gpusim {
namespace {

TEST(Work, PhaseEmpty)
{
    EXPECT_TRUE((Phase{0.0, 0.0, 0.0}).Empty());
    EXPECT_FALSE((Phase{1.0, 0.0, 0.0}).Empty());
    EXPECT_FALSE((Phase{0.0, 1.0, 0.0}).Empty());
    EXPECT_FALSE((Phase{0.0, 0.0, 1.0}).Empty());
}

TEST(Work, UnitTotals)
{
    WorkUnit unit;
    unit.phases.push_back(Phase{1.0, 2.0, 3.0});
    unit.phases.push_back(Phase{10.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(unit.TotalTensorFlops(), 11.0);
    EXPECT_DOUBLE_EQ(unit.TotalCudaFlops(), 22.0);
    EXPECT_DOUBLE_EQ(unit.TotalMemBytes(), 33.0);
}

TEST(Work, CtaTotalsAcrossUnits)
{
    WorkUnit a;
    a.phases.push_back(Phase{1.0, 0.0, 5.0});
    WorkUnit b;
    b.phases.push_back(Phase{2.0, 0.0, 7.0});
    CtaWork work;
    work.units = {a, b};
    EXPECT_DOUBLE_EQ(work.TotalTensorFlops(), 3.0);
    EXPECT_DOUBLE_EQ(work.TotalMemBytes(), 12.0);
}

TEST(Work, FromWorksIndexesCorrectly)
{
    std::vector<CtaWork> works(3);
    for (int i = 0; i < 3; ++i) {
        WorkUnit u;
        u.phases.push_back(Phase{static_cast<double>(i + 1), 0.0, 0.0});
        works[static_cast<size_t>(i)].units.push_back(u);
    }
    KernelDesc kernel = KernelDesc::FromWorks(
        "k", CtaResources{128, 0.0}, works);
    EXPECT_EQ(kernel.cta_count, 3);
    EXPECT_DOUBLE_EQ(kernel.assign(0, 99).TotalTensorFlops(), 1.0);
    EXPECT_DOUBLE_EQ(kernel.assign(2, 0).TotalTensorFlops(), 3.0);
}

TEST(Work, OpClassNames)
{
    EXPECT_STREQ(OpClassName(OpClass::kPrefill), "prefill");
    EXPECT_STREQ(OpClassName(OpClass::kDecode), "decode");
    EXPECT_STREQ(OpClassName(OpClass::kCompute), "compute");
    EXPECT_STREQ(OpClassName(OpClass::kMemory), "memory");
    EXPECT_STREQ(OpClassName(OpClass::kOther), "other");
}

}  // namespace
}  // namespace pod::gpusim
