/**
 * @file
 * Unit tests for the closed-form analytic integrator, at tolerances
 * far tighter than the randomized cross-check suite
 * (analytic_oracle_test.cc) can use.
 *
 * The trick: on a single-SM device every event touches the only SM,
 * so the analytic core re-derives rates at exactly the oracle's event
 * density and the lazy-materialization relaxation vanishes. Whenever
 * the pacing cap is inert (compute-bound or memory-only work), both
 * cores then compute identical rate sequences and must agree to
 * floating-point noise (1e-9 relative here) on every continuous
 * field — phase transitions, refill boundaries and water-fill
 * contention included. Any looseness at this tolerance is an
 * integrator bug, not model drift.
 *
 * Where pacing binds, the cores intentionally differ in trajectory
 * (average-rate vs instantaneous-cap freeze, docs/DESIGN.md S3.2) but
 * both must finish a memory-bound unit exactly at its memory horizon,
 * which is hand-computable: that pins the closed-form completion keys
 * to the physics, not just to the other core.
 *
 * AllocateMaxMin's undersubscribed shortcut is covered directly at
 * the bottom: the shortcut must be bit-identical to the sorted
 * water-fill it skips, and the margin boundary must fall back to the
 * exact path.
 */
#include "gpusim/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/water_fill.h"

namespace pod::gpusim {
namespace {

constexpr double kTightRel = 1e-9;
constexpr double kTightAbs = 1e-12;

double
Tight(double oracle_value)
{
    double mag = oracle_value < 0.0 ? -oracle_value : oracle_value;
    return kTightAbs + mag * kTightRel;
}

/** A100 shrunk to one SM: every event lands on SM 0. */
GpuSpec
OneSmSpec()
{
    GpuSpec spec = GpuSpec::A100Sxm80GB();
    spec.num_sms = 1;
    return spec;
}

SimResult
RunOn(const GpuSpec& spec, EngineCore core,
      const std::vector<KernelLaunch>& launches)
{
    SimOptions opt;
    opt.core = core;
    opt.record_cta_times = true;
    opt.kernel_launch_overhead = 0.0;
    FluidEngine engine(spec, opt);
    return engine.Run(launches);
}

/** Compare every continuous field at floating-point tolerance. */
void
ExpectTightMatch(const SimResult& a, const SimResult& o)
{
    EXPECT_EQ(a.total_ctas, o.total_ctas);
    EXPECT_GT(a.analytic_fastpath_events, 0);
    EXPECT_EQ(a.oracle_fallback_events, 0);
    EXPECT_NEAR(a.total_time, o.total_time, Tight(o.total_time));
    ASSERT_EQ(a.kernels.size(), o.kernels.size());
    for (size_t k = 0; k < o.kernels.size(); ++k) {
        EXPECT_NEAR(a.kernels[k].end_time, o.kernels[k].end_time,
                    Tight(o.kernels[k].end_time))
            << "kernel " << k;
    }
    EXPECT_NEAR(a.tensor_util, o.tensor_util, Tight(o.tensor_util));
    EXPECT_NEAR(a.cuda_util, o.cuda_util, Tight(o.cuda_util));
    EXPECT_NEAR(a.mem_util, o.mem_util, Tight(o.mem_util));
    EXPECT_NEAR(a.energy_joules, o.energy_joules,
                Tight(o.energy_joules));
    for (int op = 0; op < kNumOpClasses; ++op) {
        const OpStats& ao = a.per_op[op];
        const OpStats& oo = o.per_op[op];
        EXPECT_EQ(ao.unit_count, oo.unit_count) << "op " << op;
        EXPECT_NEAR(ao.tensor_flops, oo.tensor_flops,
                    Tight(oo.tensor_flops))
            << "op " << op;
        EXPECT_NEAR(ao.mem_bytes, oo.mem_bytes, Tight(oo.mem_bytes))
            << "op " << op;
        EXPECT_NEAR(ao.busy_time, oo.busy_time, Tight(oo.busy_time))
            << "op " << op;
        EXPECT_NEAR(ao.finish_time, oo.finish_time,
                    Tight(oo.finish_time))
            << "op " << op;
    }
    ASSERT_EQ(a.cta_finish_times.size(), o.cta_finish_times.size());
    for (size_t i = 0; i < o.cta_finish_times.size(); ++i) {
        EXPECT_NEAR(a.cta_finish_times[i], o.cta_finish_times[i],
                    Tight(o.cta_finish_times[i]))
            << "cta " << i;
    }
}

/** Compute-bound phase: memory drains long before tensor work, so
 *  the pacing cap min(cap, rem_x*r_mem/rem_m) sits far above the
 *  throughput cap and never binds in either core. */
Phase
ComputePhase(double tensor_flops, double cuda_flops)
{
    Phase ph;
    ph.tensor_flops = tensor_flops;
    ph.cuda_flops = cuda_flops;
    ph.mem_bytes = 1e5;
    return ph;
}

Phase
MemPhase(double mem_bytes)
{
    Phase ph;
    ph.mem_bytes = mem_bytes;
    return ph;
}

KernelDesc
MakeKernel(const std::string& name, std::vector<CtaWork> works)
{
    CtaResources res;
    res.threads = 128;
    res.shared_mem_bytes = 0.0;
    return KernelDesc::FromWorks(name, res, std::move(works));
}

CtaWork
OneUnitCta(OpClass op, int warps, std::vector<Phase> phases)
{
    WorkUnit u;
    u.op = op;
    u.warps = warps;
    u.phases = std::move(phases);
    CtaWork w;
    w.units.push_back(std::move(u));
    return w;
}

TEST(AnalyticIntegratorTest, SingleSmComputeBoundContentionIsExact)
{
    // Six compute-bound units contending for one SM's tensor and CUDA
    // throughput: the water-fill reallocates on every completion, and
    // with pacing inert both cores must walk the same rate sequence.
    GpuSpec spec = OneSmSpec();
    auto build = [] {
        std::vector<CtaWork> works;
        for (int i = 0; i < 6; ++i) {
            works.push_back(OneUnitCta(
                i % 2 == 0 ? OpClass::kPrefill : OpClass::kDecode,
                4 + i, {ComputePhase(1e9 + 2e8 * i, 5e7 * (i + 1))}));
        }
        return std::vector<KernelLaunch>{
            KernelLaunch{MakeKernel("contention", std::move(works)), 0}};
    };
    SimResult a = RunOn(spec, EngineCore::kAnalytic, build());
    SimResult o = RunOn(spec, EngineCore::kExactOracle, build());
    ExpectTightMatch(a, o);
}

TEST(AnalyticIntegratorTest, SingleSmMemoryOnlyUnitsAreExact)
{
    // Memory-only units: completions are keyed in memory virtual time
    // S, and the per-SM bandwidth share changes at every drain.
    GpuSpec spec = OneSmSpec();
    auto build = [] {
        std::vector<CtaWork> works;
        for (int i = 0; i < 4; ++i) {
            works.push_back(OneUnitCta(OpClass::kDecode, 2 + 2 * i,
                                       {MemPhase(1e7 * (i + 1))}));
        }
        return std::vector<KernelLaunch>{
            KernelLaunch{MakeKernel("mem_only", std::move(works)), 0}};
    };
    SimResult a = RunOn(spec, EngineCore::kAnalytic, build());
    SimResult o = RunOn(spec, EngineCore::kExactOracle, build());
    ExpectTightMatch(a, o);
}

TEST(AnalyticIntegratorTest, PhaseTransitionsAreExact)
{
    // Phases flip the bound dimension (compute -> memory -> compute):
    // each transition retires one dim set and loads the next, and the
    // integrator must re-key both heaps at the exact boundary.
    GpuSpec spec = OneSmSpec();
    auto build = [] {
        std::vector<CtaWork> works;
        works.push_back(OneUnitCta(
            OpClass::kPrefill, 8,
            {ComputePhase(2e9, 1e8), MemPhase(4e7),
             ComputePhase(5e8, 2e8)}));
        works.push_back(OneUnitCta(
            OpClass::kDecode, 4,
            {MemPhase(2e7), ComputePhase(1e9, 5e7)}));
        return std::vector<KernelLaunch>{
            KernelLaunch{MakeKernel("phases", std::move(works)), 0}};
    };
    SimResult a = RunOn(spec, EngineCore::kAnalytic, build());
    SimResult o = RunOn(spec, EngineCore::kExactOracle, build());
    ExpectTightMatch(a, o);
}

TEST(AnalyticIntegratorTest, RefillBoundariesAreExact)
{
    // Persistent-lane refill: a drained lane pulls the next item at
    // the completion instant. The refill decision is discrete (shared
    // machinery) but the completion that triggers it comes from the
    // integrator's heap key, so a mistimed key would shift every
    // subsequent item.
    GpuSpec spec = OneSmSpec();
    auto build = [] {
        std::vector<CtaWork> works;
        for (int i = 0; i < 2; ++i) {
            works.push_back(OneUnitCta(OpClass::kDecode, 6,
                                       {ComputePhase(8e8, 4e7)}));
        }
        KernelDesc kd = MakeKernel("refill", std::move(works));
        auto budget = std::make_shared<int>(5);
        kd.refill = [budget](int /*sm_id*/, OpClass lane_op,
                             WorkUnit* next) {
            if (*budget <= 0) return false;
            --*budget;
            WorkUnit u;
            u.op = lane_op;
            u.warps = 6;
            u.phases = {ComputePhase(6e8, 3e7)};
            *next = u;
            return true;
        };
        return std::vector<KernelLaunch>{KernelLaunch{std::move(kd), 0}};
    };
    SimResult a = RunOn(spec, EngineCore::kAnalytic, build());
    SimResult o = RunOn(spec, EngineCore::kExactOracle, build());
    EXPECT_EQ(a.total_ctas, o.total_ctas);
    ExpectTightMatch(a, o);
}

TEST(AnalyticIntegratorTest, UndersubscribedShortcutIsExact)
{
    // One two-warp unit demands half the SM's tensor throughput: the
    // undersubscribed shortcut hands it its cap without sorting, and
    // the closed-form completion is rem / cap. A second run with two
    // such units sits exactly at capacity, forcing the exact sorted
    // water-fill path; both must match the oracle to rounding.
    GpuSpec spec = OneSmSpec();
    for (int nunits = 1; nunits <= 2; ++nunits) {
        SCOPED_TRACE("units=" + std::to_string(nunits));
        auto build = [nunits] {
            std::vector<CtaWork> works;
            for (int i = 0; i < nunits; ++i) {
                works.push_back(OneUnitCta(OpClass::kPrefill, 2,
                                           {ComputePhase(1e9, 0.0)}));
            }
            return std::vector<KernelLaunch>{
                KernelLaunch{MakeKernel("under", std::move(works)), 0}};
        };
        SimResult a = RunOn(spec, EngineCore::kAnalytic, build());
        SimResult o = RunOn(spec, EngineCore::kExactOracle, build());
        ExpectTightMatch(a, o);
    }
}

TEST(AnalyticIntegratorTest, PacedUnitCompletesAtMemoryHorizon)
{
    // Pacing binds hard: 1e9 tensor FLOPs would drain in ~0.5 ms at
    // full rate, but 2.4e9 memory bytes at warps*warp_bandwidth_cap =
    // 4 * 6 GB/s take exactly 0.1 s. The average-rate core and the
    // instantaneous-cap oracle follow different tensor trajectories
    // here, but both must finish the unit at the memory horizon —
    // the pacing freeze may never move a memory-bound completion.
    GpuSpec spec = OneSmSpec();
    auto build = [] {
        std::vector<CtaWork> works;
        WorkUnit u;
        u.op = OpClass::kDecode;
        u.warps = 4;
        Phase ph;
        ph.tensor_flops = 1e9;
        ph.mem_bytes = 2.4e9;
        u.phases = {ph};
        CtaWork w;
        w.units.push_back(std::move(u));
        works.push_back(std::move(w));
        return std::vector<KernelLaunch>{
            KernelLaunch{MakeKernel("paced", std::move(works)), 0}};
    };
    const double horizon = 2.4e9 / (4 * OneSmSpec().warp_bandwidth_cap);
    SimResult a = RunOn(spec, EngineCore::kAnalytic, build());
    SimResult o = RunOn(spec, EngineCore::kExactOracle, build());
    EXPECT_NEAR(a.total_time, horizon, Tight(horizon));
    EXPECT_NEAR(o.total_time, horizon, Tight(horizon));
    // Served totals are conserved regardless of trajectory shape.
    double a_flops = 0.0;
    double o_flops = 0.0;
    for (int op = 0; op < kNumOpClasses; ++op) {
        a_flops += a.per_op[op].tensor_flops;
        o_flops += o.per_op[op].tensor_flops;
    }
    EXPECT_NEAR(a_flops, o_flops, Tight(o_flops));
}

// ---- AllocateMaxMin undersubscribed-shortcut edge cases ----

std::map<int, double>
Allocate(std::vector<std::pair<double, int>> caps, double demand_sum,
         double capacity)
{
    constexpr double kMargin = 1.0 - 1e-12;  // engine's margin
    std::map<int, double> rates;
    AllocateMaxMin(caps, demand_sum, capacity, kMargin,
                   [&rates](int uid, double rate) { rates[uid] = rate; });
    return rates;
}

TEST(AllocateMaxMinTest, ShortcutMatchesFullWaterFill)
{
    // Under capacity the shortcut hands out caps without sorting;
    // that must be bit-identical to what the sorted water-fill
    // computes, since no demand can bind the fair share.
    std::vector<std::pair<double, int>> caps = {
        {30.0, 2}, {10.0, 1}, {25.0, 3}};
    auto shortcut = Allocate(caps, 65.0, 100.0);
    std::map<int, double> full;
    SortCaps(caps);
    WaterFill(caps, 100.0, [&full](int uid, double rate) {
        full[uid] = rate;
    });
    EXPECT_EQ(shortcut, full);
}

TEST(AllocateMaxMinTest, ExactCapacityFallsBackToWaterFill)
{
    // demand_sum == capacity exceeds capacity * (1 - 1e-12): the
    // shortcut must NOT fire, and the exact fill saturates everyone.
    auto rates = Allocate({{50.0, 1}, {50.0, 2}}, 100.0, 100.0);
    EXPECT_DOUBLE_EQ(rates[1], 50.0);
    EXPECT_DOUBLE_EQ(rates[2], 50.0);
}

TEST(AllocateMaxMinTest, OversubscribedClipsToFairShare)
{
    auto rates = Allocate({{80.0, 1}, {80.0, 2}, {10.0, 3}}, 170.0,
                          100.0);
    EXPECT_DOUBLE_EQ(rates[3], 10.0);  // small demand fully served
    EXPECT_DOUBLE_EQ(rates[1], 45.0);  // slack split between the rest
    EXPECT_DOUBLE_EQ(rates[2], 45.0);
}

TEST(AllocateMaxMinTest, SummationNoiseCannotFlipAllocations)
{
    // A demand_sum perturbed one ulp above the margin boundary runs
    // the exact path and still produces cap allocations when nothing
    // binds: the margin exists so rounding can only ever choose
    // between two identical answers.
    std::vector<std::pair<double, int>> caps = {{60.0, 1}, {39.0, 2}};
    double noisy_sum = 100.0 * (1.0 - 5e-13);  // inside margin band
    auto rates = Allocate(caps, noisy_sum, 100.0);
    EXPECT_DOUBLE_EQ(rates[1], 60.0);
    EXPECT_DOUBLE_EQ(rates[2], 39.0);
}

}  // namespace
}  // namespace pod::gpusim
