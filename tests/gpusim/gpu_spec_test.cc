/**
 * @file
 * Unit tests for GpuSpec presets and validation.
 */
#include "gpusim/gpu_spec.h"

#include <gtest/gtest.h>

namespace pod::gpusim {
namespace {

TEST(GpuSpec, A100Preset)
{
    GpuSpec spec = GpuSpec::A100Sxm80GB();
    spec.Validate();
    EXPECT_EQ(spec.num_sms, 108);
    // Effective tensor throughput must stay below peak but above half.
    EXPECT_LT(spec.TotalTensorFlops(), 312e12);
    EXPECT_GT(spec.TotalTensorFlops(), 150e12);
    EXPECT_LT(spec.hbm_bandwidth, 2039e9);
    EXPECT_GT(spec.hbm_capacity, 70.0 * 1024 * 1024 * 1024);
}

TEST(GpuSpec, TestGpuPreset)
{
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.Validate();
    EXPECT_EQ(spec.num_sms, 8);
    EXPECT_DOUBLE_EQ(spec.TotalTensorFlops(), 8e12);
}

TEST(GpuSpec, BandwidthHierarchySane)
{
    GpuSpec spec = GpuSpec::A100Sxm80GB();
    // warp cap < SM cap < total bandwidth.
    EXPECT_LT(spec.warp_bandwidth_cap, spec.sm_bandwidth_cap);
    EXPECT_LT(spec.sm_bandwidth_cap, spec.hbm_bandwidth);
    // All SMs at their cap must be able to oversubscribe HBM, or
    // decode kernels could never saturate bandwidth.
    EXPECT_GT(spec.sm_bandwidth_cap * spec.num_sms, spec.hbm_bandwidth);
}

TEST(GpuSpecDeathTest, ValidateRejectsNonsense)
{
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.num_sms = 0;
    EXPECT_EXIT(spec.Validate(), ::testing::ExitedWithCode(1), "FATAL");
}

}  // namespace
}  // namespace pod::gpusim
