/**
 * @file
 * Unit tests for GpuSpec presets and validation.
 */
#include "gpusim/gpu_spec.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/iteration_cost.h"
#include "model/model_config.h"

namespace pod::gpusim {
namespace {

TEST(GpuSpec, A100Preset)
{
    GpuSpec spec = GpuSpec::A100Sxm80GB();
    spec.Validate();
    EXPECT_EQ(spec.num_sms, 108);
    // Effective tensor throughput must stay below peak but above half.
    EXPECT_LT(spec.TotalTensorFlops(), 312e12);
    EXPECT_GT(spec.TotalTensorFlops(), 150e12);
    EXPECT_LT(spec.hbm_bandwidth, 2039e9);
    EXPECT_GT(spec.hbm_capacity, 70.0 * 1024 * 1024 * 1024);
}

TEST(GpuSpec, TestGpuPreset)
{
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.Validate();
    EXPECT_EQ(spec.num_sms, 8);
    EXPECT_DOUBLE_EQ(spec.TotalTensorFlops(), 8e12);
}

TEST(GpuSpec, BandwidthHierarchySane)
{
    GpuSpec spec = GpuSpec::A100Sxm80GB();
    // warp cap < SM cap < total bandwidth.
    EXPECT_LT(spec.warp_bandwidth_cap, spec.sm_bandwidth_cap);
    EXPECT_LT(spec.sm_bandwidth_cap, spec.hbm_bandwidth);
    // All SMs at their cap must be able to oversubscribe HBM, or
    // decode kernels could never saturate bandwidth.
    EXPECT_GT(spec.sm_bandwidth_cap * spec.num_sms, spec.hbm_bandwidth);
}

TEST(GpuSpec, H100Preset)
{
    GpuSpec spec = GpuSpec::H100Sxm80GB();
    spec.Validate();
    EXPECT_EQ(spec.num_sms, 132);
    // Effective throughput below the 989 TFLOPS dense peak but well
    // above the A100's effective number.
    EXPECT_LT(spec.TotalTensorFlops(), 989e12);
    EXPECT_GT(spec.TotalTensorFlops(),
              GpuSpec::A100Sxm80GB().TotalTensorFlops() * 2.0);
    EXPECT_LT(spec.hbm_bandwidth, 3352e9);
    EXPECT_GT(spec.hbm_bandwidth,
              GpuSpec::A100Sxm80GB().hbm_bandwidth * 1.5);
    // Same bandwidth-hierarchy invariants the A100 preset obeys.
    EXPECT_LT(spec.warp_bandwidth_cap, spec.sm_bandwidth_cap);
    EXPECT_LT(spec.sm_bandwidth_cap, spec.hbm_bandwidth);
    EXPECT_GT(spec.sm_bandwidth_cap * spec.num_sms, spec.hbm_bandwidth);
}

TEST(GpuSpec, RtxA6000Preset)
{
    GpuSpec spec = GpuSpec::RtxA6000();
    spec.Validate();
    EXPECT_EQ(spec.num_sms, 84);
    // Workstation part: below the A100 on every axis that matters.
    GpuSpec a100 = GpuSpec::A100Sxm80GB();
    EXPECT_LT(spec.TotalTensorFlops(), a100.TotalTensorFlops());
    EXPECT_LT(spec.hbm_bandwidth, a100.hbm_bandwidth);
    EXPECT_LT(spec.hbm_capacity, a100.hbm_capacity);
    EXPECT_GT(spec.hbm_capacity, 40.0 * 1024 * 1024 * 1024);
    EXPECT_LT(spec.warp_bandwidth_cap, spec.sm_bandwidth_cap);
    EXPECT_LT(spec.sm_bandwidth_cap, spec.hbm_bandwidth);
    EXPECT_GT(spec.sm_bandwidth_cap * spec.num_sms, spec.hbm_bandwidth);
}

TEST(GpuSpec, IterationCostsFiniteAndOrderedAcrossSpecs)
{
    // The kernel simulator must produce finite, strictly ordered
    // iteration costs across the three real presets: faster silicon
    // => cheaper iteration, for both attention backends.
    auto batch = kernels::HybridBatch::Make(
        model::ModelConfig::Llama3_8B().ShapePerGpu(1), 1024, 12288, 48,
        12288);
    for (core::Backend backend :
         {core::Backend::kFaSerial, core::Backend::kPod}) {
        model::IterationCostModel h100(model::ModelConfig::Llama3_8B(),
                                       GpuSpec::H100Sxm80GB(), 1,
                                       backend);
        model::IterationCostModel a100(model::ModelConfig::Llama3_8B(),
                                       GpuSpec::A100Sxm80GB(), 1,
                                       backend);
        model::IterationCostModel a6000(model::ModelConfig::Llama3_8B(),
                                        GpuSpec::RtxA6000(), 1, backend);
        double t_h100 = h100.Cost(batch, 49).total;
        double t_a100 = a100.Cost(batch, 49).total;
        double t_a6000 = a6000.Cost(batch, 49).total;
        EXPECT_TRUE(std::isfinite(t_h100));
        EXPECT_TRUE(std::isfinite(t_a100));
        EXPECT_TRUE(std::isfinite(t_a6000));
        EXPECT_GT(t_h100, 0.0);
        EXPECT_LT(t_h100, t_a100);
        EXPECT_LT(t_a100, t_a6000);
    }
}

TEST(GpuSpecDeathTest, ValidateRejectsNonsense)
{
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.num_sms = 0;
    EXPECT_EXIT(spec.Validate(), ::testing::ExitedWithCode(1), "FATAL");
}

}  // namespace
}  // namespace pod::gpusim
