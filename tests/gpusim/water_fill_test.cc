/**
 * @file
 * Direct unit tests of the max-min fair water-filling allocator and
 * of the engine's placement randomness (PickSm jitter) — previously
 * exercised only indirectly through full simulations.
 */
#include "gpusim/water_fill.h"

#include <gtest/gtest.h>
#include <map>
#include <utility>
#include <vector>

#include "gpusim/engine.h"

namespace pod::gpusim {
namespace {

/** Run WaterFill and collect the allocations by unit id. */
std::map<int, double>
Fill(std::vector<std::pair<double, int>> caps, double capacity)
{
    std::map<int, double> rates;
    WaterFill(caps, capacity, [&rates](int uid, double rate) {
        rates[uid] = rate;
    });
    return rates;
}

TEST(WaterFillTest, EmptyDemandsAllocateNothing)
{
    std::map<int, double> rates = Fill({}, 100.0);
    EXPECT_TRUE(rates.empty());
}

TEST(WaterFillTest, ZeroCapDemandsReceiveZero)
{
    // Zero-cap demands sit at the front of the ascending order and
    // must absorb nothing, leaving full capacity to real demands.
    auto rates = Fill({{0.0, 1}, {0.0, 2}, {40.0, 3}}, 100.0);
    EXPECT_EQ(rates[1], 0.0);
    EXPECT_EQ(rates[2], 0.0);
    EXPECT_EQ(rates[3], 40.0);
}

TEST(WaterFillTest, UndersubscribedGivesEveryoneTheirCap)
{
    auto rates = Fill({{10.0, 1}, {20.0, 2}, {30.0, 3}}, 100.0);
    EXPECT_EQ(rates[1], 10.0);
    EXPECT_EQ(rates[2], 20.0);
    EXPECT_EQ(rates[3], 30.0);
}

TEST(WaterFillTest, CapacityExhaustionSplitsFairShare)
{
    // All caps exceed the fair share: everyone is clipped to it.
    auto rates = Fill({{100.0, 1}, {100.0, 2}, {100.0, 3}, {100.0, 4}},
                      100.0);
    for (int uid = 1; uid <= 4; ++uid) {
        EXPECT_DOUBLE_EQ(rates[uid], 25.0);
    }
}

TEST(WaterFillTest, EqualCapsAtExactCapacitySaturate)
{
    // Sum of equal caps == capacity exactly: each gets its cap and
    // the pool is exhausted with nothing left over.
    auto rates = Fill({{25.0, 1}, {25.0, 2}, {25.0, 3}, {25.0, 4}},
                      100.0);
    double total = 0.0;
    for (int uid = 1; uid <= 4; ++uid) {
        EXPECT_DOUBLE_EQ(rates[uid], 25.0);
        total += rates[uid];
    }
    EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST(WaterFillTest, SmallDemandSlackRaisesLargerShares)
{
    // Max-min fairness: the 10-cap demand's slack (vs the naive 100/3
    // share) flows to the two big demands, which then split the
    // remainder evenly.
    auto rates = Fill({{10.0, 1}, {500.0, 2}, {500.0, 3}}, 100.0);
    EXPECT_DOUBLE_EQ(rates[1], 10.0);
    EXPECT_DOUBLE_EQ(rates[2], 45.0);
    EXPECT_DOUBLE_EQ(rates[3], 45.0);
}

TEST(WaterFillTest, AllocationsNeverExceedCapOrCapacity)
{
    std::vector<std::pair<double, int>> caps = {
        {3.0, 1}, {7.0, 2}, {11.0, 3}, {13.0, 4}, {29.0, 5}};
    auto rates = Fill(caps, 20.0);
    double total = 0.0;
    for (const auto& [cap, uid] : caps) {
        EXPECT_LE(rates[uid], cap);
        total += rates[uid];
    }
    EXPECT_LE(total, 20.0 + 1e-12);
}

// ---- PickSm placement-jitter determinism ----

/**
 * A kernel whose per-CTA work varies and whose CTAs share SMs in
 * pairs: jitter then changes which works contend for the same SM's
 * cores, which is visible in completion times (with one CTA per
 * identical SM, jitter would only permute interchangeable slots).
 */
KernelDesc
AsymmetricKernel(int ctas)
{
    std::vector<CtaWork> works;
    for (int i = 0; i < ctas; ++i) {
        CtaWork w;
        WorkUnit u;
        u.op = OpClass::kCompute;
        u.warps = 8;
        Phase ph;
        ph.tensor_flops = 5e8 + 4e7 * i;
        ph.cuda_flops = 1e7;
        ph.mem_bytes = 1e6;
        u.phases.push_back(ph);
        w.units.push_back(std::move(u));
        works.push_back(std::move(w));
    }
    KernelDesc k = KernelDesc::FromWorks(
        "asymmetric", CtaResources{512, 32768.0}, std::move(works));
    k.max_ctas_per_sm = 2;
    return k;
}

TEST(PickSmJitterTest, FixedSeedIsBitwiseReproducible)
{
    SimOptions opt;
    opt.seed = 1234;
    opt.placement_jitter = 0.5;
    opt.record_cta_times = true;

    GpuSpec spec = GpuSpec::A100Sxm80GB();
    SimResult a = FluidEngine(spec, opt).RunKernel(AsymmetricKernel(300));
    SimResult b = FluidEngine(spec, opt).RunKernel(AsymmetricKernel(300));

    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.energy_joules, b.energy_joules);
    ASSERT_EQ(a.cta_finish_times.size(), b.cta_finish_times.size());
    for (size_t i = 0; i < a.cta_finish_times.size(); ++i) {
        EXPECT_EQ(a.cta_finish_times[i], b.cta_finish_times[i]);
    }
}

TEST(PickSmJitterTest, SeedChangesPlacementUnderJitter)
{
    GpuSpec spec = GpuSpec::A100Sxm80GB();
    std::vector<double> totals;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        SimOptions opt;
        opt.seed = seed;
        opt.placement_jitter = 0.5;
        totals.push_back(FluidEngine(spec, opt)
                             .RunKernel(AsymmetricKernel(300))
                             .total_time);
    }
    // With jitter active and asymmetric work, at least one of eight
    // seeds lands a different schedule.
    bool any_different = false;
    for (double t : totals) {
        if (t != totals.front()) any_different = true;
    }
    EXPECT_TRUE(any_different);
}

TEST(PickSmJitterTest, ZeroJitterIgnoresSeed)
{
    GpuSpec spec = GpuSpec::A100Sxm80GB();
    SimOptions a;
    a.seed = 1;
    SimOptions b;
    b.seed = 999;  // different seed, jitter disabled
    double ta =
        FluidEngine(spec, a).RunKernel(AsymmetricKernel(200)).total_time;
    double tb =
        FluidEngine(spec, b).RunKernel(AsymmetricKernel(200)).total_time;
    EXPECT_EQ(ta, tb);
}

}  // namespace
}  // namespace pod::gpusim
