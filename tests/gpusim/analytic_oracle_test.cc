/**
 * @file
 * Randomized analytic/oracle equivalence stress for the fluid engine.
 *
 * ~40 seeded random workloads (kernel count, stream layout, CTA
 * counts, phase shapes, warp counts, per-unit bandwidth caps,
 * residency limits, SM-aware assignment, persistent refill, placement
 * jitter, launch overhead) each run through the closed-form analytic
 * core and the stepwise ExactOracle core, then compared:
 *
 *  - every discrete field bit-exactly (CTA counts, per-op unit
 *    counts): the cores share all placement/dispatch/refill
 *    decisions, so any integer divergence is a bug, not drift;
 *  - every continuous field within a documented tolerance band.
 *
 * Tolerance bands (justified in docs/DESIGN.md S3.2). The analytic
 * core freezes each paced unit's average drain rate between the
 * events that touch its SM; the oracle re-derives the instantaneous
 * pacing cap at every global event, so the oracle's own trajectory
 * depends on its event density — it is not the continuum limit, and
 * no o(N)-per-event core can track it exactly. The bands below cover
 * exactly that relaxation and nothing else: forcing the analytic core
 * to recompute every SM at every event (matching the oracle's
 * refresh density) collapses every field in this suite to ~1e-14,
 * which pins all remaining drift on the documented rate freeze, not
 * on the shared discrete machinery.
 *
 *  - kWorkBand = 1e-9 on per-op served work (flops/bytes): the
 *    average-rate freeze changes when work is served, never how much;
 *    conservation is exact by construction (measured max 2.9e-14,
 *    band is pure float headroom).
 *  - kAggBand = 8e-2 on aggregate times, utilizations, energy and
 *    per-op busy/finish times: measured max across this adversarial
 *    sweep is 5.1e-2 (kernel end times), with most workloads under
 *    1e-3; serving-shaped workloads (dense event streams) sit near
 *    the oracle and reuse a 1e-3 band in the serve/cluster suites.
 *  - kCtaBand = 4e-1 on per-CTA completion times: order statistics.
 *    A completion shifted by the rate freeze can cross an occupancy
 *    boundary and re-time an entire later dispatch wave, so per-unit
 *    drift is chaotically amplified (measured max 2.6e-1 element-wise
 *    AND on the sorted distribution) while every aggregate above
 *    stays tight.
 *  - kAbsFloor = 1e-12 s absolute: times below a picosecond are
 *    dominated by representation noise, not model drift.
 *
 * Every workload is generated from common/rng.h with a fixed suite
 * seed, and the full configuration is attached to the assertion scope
 * so a mismatch log line reproduces the failing case standalone.
 */
#include "gpusim/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pod::gpusim {
namespace {

constexpr uint64_t kSuiteSeed = 0xAB5010'2026ull;
constexpr int kNumWorkloads = 40;

constexpr double kWorkBand = 1e-9;
constexpr double kAggBand = 8e-2;
constexpr double kCtaBand = 4e-1;
constexpr double kAbsFloor = 1e-12;

double
Band(double oracle_value, double rel_band)
{
    double mag = oracle_value < 0.0 ? -oracle_value : oracle_value;
    return kAbsFloor + mag * rel_band;
}

struct WorkloadConfig
{
    uint64_t sim_seed = 1;
    int gpu_pick = 0;  // 0=A100, 1=H100, 2=A6000
    double jitter = 0.0;
    double launch_overhead = 0.0;
    int num_kernels = 1;
    int num_streams = 1;
    bool use_refill = false;

    std::string
    Describe() const
    {
        std::ostringstream os;
        os << "sim_seed=" << sim_seed << " gpu=" << gpu_pick
           << " jitter=" << jitter
           << " launch_overhead=" << launch_overhead
           << " kernels=" << num_kernels << " streams=" << num_streams
           << " refill=" << use_refill;
        return os.str();
    }
};

WorkloadConfig
DrawConfig(Rng& rng)
{
    WorkloadConfig c;
    c.sim_seed = static_cast<uint64_t>(rng.UniformInt(1, 1ll << 40));
    c.gpu_pick = static_cast<int>(rng.UniformInt(0, 2));
    c.jitter = rng.Bernoulli(0.5) ? rng.UniformReal(0.05, 0.35) : 0.0;
    c.launch_overhead = rng.Bernoulli(0.5) ? 3e-6 : 0.0;
    c.num_kernels = static_cast<int>(rng.UniformInt(1, 5));
    c.num_streams = static_cast<int>(rng.UniformInt(1, 3));
    c.use_refill = rng.Bernoulli(0.3);
    return c;
}

GpuSpec
PickGpu(int pick)
{
    switch (pick) {
        case 1: return GpuSpec::H100Sxm80GB();
        case 2: return GpuSpec::RtxA6000();
        default: return GpuSpec::A100Sxm80GB();
    }
}

WorkUnit
DrawUnit(Rng& rng)
{
    WorkUnit u;
    u.op = static_cast<OpClass>(rng.UniformInt(0, kNumOpClasses - 1));
    u.warps = static_cast<int>(rng.UniformInt(2, 12));
    if (rng.Bernoulli(0.25)) {
        u.mem_bw_cap = rng.UniformReal(20e9, 120e9);
    }
    int phases = static_cast<int>(rng.UniformInt(1, 3));
    for (int p = 0; p < phases; ++p) {
        Phase ph;
        // Mix compute-bound, memory-bound and balanced phases so both
        // the pacing cap and the undersubscribed shortcut see work.
        double kind = rng.UniformReal(0.0, 1.0);
        if (kind < 0.4) {
            ph.tensor_flops = rng.UniformReal(1e8, 4e9);
            ph.cuda_flops = rng.UniformReal(1e7, 4e8);
            ph.mem_bytes = rng.UniformReal(1e5, 8e6);
        } else if (kind < 0.7) {
            ph.cuda_flops = rng.UniformReal(1e6, 1e8);
            ph.mem_bytes = rng.UniformReal(4e6, 6e7);
        } else {
            ph.tensor_flops = rng.UniformReal(1e8, 1e9);
            ph.cuda_flops = rng.UniformReal(1e7, 1e8);
            ph.mem_bytes = rng.UniformReal(1e6, 2e7);
        }
        u.phases.push_back(ph);
    }
    return u;
}

/**
 * Builds the launch set for a config. Called once per engine run so
 * stateful refill closures never leak state across the two cores; the
 * same (config, kSuiteSeed-derived) RNG stream makes both builds
 * identical.
 */
std::vector<KernelLaunch>
BuildLaunches(const WorkloadConfig& c)
{
    Rng rng(c.sim_seed ^ 0x9E3779B97F4A7C15ull);
    std::vector<KernelLaunch> launches;
    for (int k = 0; k < c.num_kernels; ++k) {
        // Refill kernels are homogeneous (single op class, fixed
        // refill shape): lane completion order is not identical
        // across cores inside the tolerance band, so order-sensitive
        // draws or mixed-op lanes would turn timing drift into
        // work-assignment divergence — a test artifact, not an
        // engine property.
        bool refill_kernel = c.use_refill && k == 0;
        OpClass kernel_op = static_cast<OpClass>(
            rng.UniformInt(0, kNumOpClasses - 1));
        int cta_count = static_cast<int>(rng.UniformInt(4, 160));
        std::vector<CtaWork> works;
        for (int i = 0; i < cta_count; ++i) {
            CtaWork w;
            int units = rng.Bernoulli(0.2)
                            ? static_cast<int>(rng.UniformInt(2, 3))
                            : 1;
            for (int u = 0; u < units; ++u) {
                w.units.push_back(DrawUnit(rng));
                if (refill_kernel) w.units.back().op = kernel_op;
            }
            works.push_back(std::move(w));
        }
        CtaResources res;
        res.threads = static_cast<int>(64 * rng.UniformInt(1, 4));
        res.shared_mem_bytes = 1024.0 * rng.UniformInt(0, 48);
        KernelDesc kd = KernelDesc::FromWorks(
            "rand_" + std::to_string(k), res, std::move(works));
        if (rng.Bernoulli(0.3)) {
            kd.max_ctas_per_sm = static_cast<int>(rng.UniformInt(1, 4));
        }
        if (refill_kernel) {
            // Persistent-lane refill: completed lanes pull up to
            // budget extra items. The budget counter lives in the
            // closure, so a fresh BuildLaunches gives each engine run
            // its own.
            auto budget = std::make_shared<int>(
                static_cast<int>(rng.UniformInt(8, 64)));
            auto item = std::make_shared<WorkUnit>(DrawUnit(rng));
            item->op = kernel_op;
            kd.refill = [budget, item](int /*sm_id*/, OpClass lane_op,
                                       WorkUnit* next) {
                if (*budget <= 0) return false;
                --*budget;
                *next = *item;
                next->op = lane_op;
                return true;
            };
        }
        int stream = static_cast<int>(
            rng.UniformInt(0, c.num_streams - 1));
        launches.push_back(KernelLaunch{std::move(kd), stream});
    }
    return launches;
}

SimResult
RunCore(const WorkloadConfig& c, EngineCore core)
{
    SimOptions opt;
    opt.seed = c.sim_seed;
    opt.placement_jitter = c.jitter;
    opt.kernel_launch_overhead = c.launch_overhead;
    opt.record_cta_times = true;
    opt.core = core;
    FluidEngine engine(PickGpu(c.gpu_pick), opt);
    return engine.Run(BuildLaunches(c));
}

void
ExpectResultsWithinBands(const SimResult& a, const SimResult& o)
{
    // Discrete trajectory: bit-exact.
    EXPECT_EQ(a.total_ctas, o.total_ctas);
    ASSERT_EQ(a.kernels.size(), o.kernels.size());
    for (int op = 0; op < kNumOpClasses; ++op) {
        EXPECT_EQ(a.per_op[op].unit_count, o.per_op[op].unit_count)
            << "op " << op;
    }

    // Counter discipline: the analytic core must run heap-driven with
    // no defensive full-rescan fallbacks; the oracle is all fallback.
    EXPECT_GT(a.analytic_fastpath_events, 0);
    EXPECT_EQ(a.oracle_fallback_events, 0);
    EXPECT_EQ(o.analytic_fastpath_events, 0);
    EXPECT_GT(o.oracle_fallback_events, 0);

    // Served work: conserved exactly (kWorkBand is float headroom).
    for (int op = 0; op < kNumOpClasses; ++op) {
        const OpStats& ao = a.per_op[op];
        const OpStats& oo = o.per_op[op];
        EXPECT_NEAR(ao.tensor_flops, oo.tensor_flops,
                    Band(oo.tensor_flops, kWorkBand))
            << "op " << op;
        EXPECT_NEAR(ao.cuda_flops, oo.cuda_flops,
                    Band(oo.cuda_flops, kWorkBand))
            << "op " << op;
        EXPECT_NEAR(ao.mem_bytes, oo.mem_bytes,
                    Band(oo.mem_bytes, kWorkBand))
            << "op " << op;
    }

    // Aggregate trajectory: banded by the pacing relaxation.
    EXPECT_NEAR(a.total_time, o.total_time,
                Band(o.total_time, kAggBand));
    for (size_t k = 0; k < o.kernels.size(); ++k) {
        EXPECT_NEAR(a.kernels[k].start_time, o.kernels[k].start_time,
                    Band(o.kernels[k].start_time, kAggBand))
            << "kernel " << k;
        EXPECT_NEAR(a.kernels[k].end_time, o.kernels[k].end_time,
                    Band(o.kernels[k].end_time, kAggBand))
            << "kernel " << k;
    }
    EXPECT_NEAR(a.tensor_util, o.tensor_util,
                Band(o.tensor_util, kAggBand));
    EXPECT_NEAR(a.cuda_util, o.cuda_util, Band(o.cuda_util, kAggBand));
    EXPECT_NEAR(a.mem_util, o.mem_util, Band(o.mem_util, kAggBand));
    EXPECT_NEAR(a.energy_joules, o.energy_joules,
                Band(o.energy_joules, kAggBand));
    for (int op = 0; op < kNumOpClasses; ++op) {
        const OpStats& ao = a.per_op[op];
        const OpStats& oo = o.per_op[op];
        EXPECT_NEAR(ao.busy_time, oo.busy_time,
                    Band(oo.busy_time, kAggBand))
            << "op " << op;
        EXPECT_NEAR(ao.finish_time, oo.finish_time,
                    Band(oo.finish_time, kAggBand))
            << "op " << op;
    }

    // Per-unit (per-CTA) completion times: the cores dispatch CTAs in
    // the same order, so completion vectors correspond index-by-index.
    // Wide band: per-unit order statistics, chaotically amplified (see
    // file header).
    ASSERT_EQ(a.cta_finish_times.size(), o.cta_finish_times.size());
    int reported = 0;
    for (size_t i = 0; i < o.cta_finish_times.size(); ++i) {
        double diff = a.cta_finish_times[i] - o.cta_finish_times[i];
        if (diff < 0.0) diff = -diff;
        if (diff <= Band(o.cta_finish_times[i], kCtaBand)) continue;
        EXPECT_NEAR(a.cta_finish_times[i], o.cta_finish_times[i],
                    Band(o.cta_finish_times[i], kCtaBand))
            << "cta " << i;
        if (++reported >= 5) break;  // cap log flood on systematic drift
    }
}

TEST(AnalyticOracleTest, RandomWorkloadsAgreeWithinBands)
{
    Rng rng(kSuiteSeed);
    for (int i = 0; i < kNumWorkloads; ++i) {
        WorkloadConfig c = DrawConfig(rng);
        SCOPED_TRACE("workload " + std::to_string(i) + ": " +
                     c.Describe());
        SimResult a = RunCore(c, EngineCore::kAnalytic);
        SimResult o = RunCore(c, EngineCore::kExactOracle);
        ExpectResultsWithinBands(a, o);
        if (HasFatalFailure()) return;
    }
}

}  // namespace
}  // namespace pod::gpusim
