/**
 * @file
 * Unit tests for the fluid GPU execution engine: exact timings on the
 * deterministic test GPU, occupancy limits, wave quantization,
 * streams, stragglers and resource contention.
 */
#include "gpusim/engine.h"

#include <gtest/gtest.h>

#include "gpusim/gpu_spec.h"

namespace pod::gpusim {
namespace {

/** A convenient zero-overhead option set for exact-time tests. */
SimOptions
NoOverhead()
{
    SimOptions opts;
    opts.kernel_launch_overhead = 0.0;
    return opts;
}

/** Build a single-unit CTA with one phase. */
CtaWork
SimpleCta(double tensor, double cuda, double mem, int warps = 4,
          OpClass op = OpClass::kOther)
{
    WorkUnit unit;
    unit.phases.push_back(Phase{tensor, cuda, mem});
    unit.warps = warps;
    unit.op = op;
    CtaWork work;
    work.units.push_back(unit);
    return work;
}

KernelDesc
OneCtaKernel(double tensor, double cuda, double mem, int warps = 4)
{
    CtaResources res;
    res.threads = warps * 32;
    res.shared_mem_bytes = 0.0;
    return KernelDesc::FromWorks("k", res,
                                 {SimpleCta(tensor, cuda, mem, warps)});
}

TEST(FluidEngine, SingleComputeCtaExactTime)
{
    // Test GPU: 1e12 tensor FLOP/s per SM, 4 warps saturate.
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result = engine.RunKernel(OneCtaKernel(1e9, 0.0, 0.0));
    EXPECT_NEAR(result.total_time, 1e-3, 1e-9);
    EXPECT_EQ(result.total_ctas, 1);
}

TEST(FluidEngine, SingleMemoryCtaLimitedByWarpCap)
{
    // 4 warps x 4 GB/s per warp = 16 GB/s for one CTA.
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result = engine.RunKernel(OneCtaKernel(0.0, 0.0, 16e6));
    EXPECT_NEAR(result.total_time, 1e-3, 1e-9);
}

TEST(FluidEngine, SingleWarpUnitHasQuarterBandwidth)
{
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result =
        engine.RunKernel(OneCtaKernel(0.0, 0.0, 16e6, /*warps=*/1));
    EXPECT_NEAR(result.total_time, 4e-3, 1e-9);
}

TEST(FluidEngine, ComputeAndMemoryOverlapWithinPhase)
{
    // 1e9 tensor FLOPs (1 ms) and 8e6 bytes (0.5 ms at 16 GB/s)
    // proceed concurrently: total is max, not sum.
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result = engine.RunKernel(OneCtaKernel(1e9, 0.0, 8e6));
    EXPECT_NEAR(result.total_time, 1e-3, 1e-9);
}

TEST(FluidEngine, PhasesSerializeWithinUnit)
{
    WorkUnit unit;
    unit.phases.push_back(Phase{1e9, 0.0, 0.0});   // 1 ms compute
    unit.phases.push_back(Phase{0.0, 0.0, 16e6});  // 1 ms memory
    unit.warps = 4;
    CtaWork work;
    work.units.push_back(unit);
    KernelDesc kernel = KernelDesc::FromWorks("k", CtaResources{128, 0.0},
                                              {work});
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    // Barrier between phases: no overlap across them.
    EXPECT_NEAR(result.total_time, 2e-3, 1e-9);
}

TEST(FluidEngine, TwoUnitsInOneCtaProgressIndependently)
{
    // HFuse-style CTA: one compute unit (1 ms) + one memory unit
    // (0.5 ms). Both run concurrently; CTA retires at 1 ms.
    WorkUnit compute;
    compute.phases.push_back(Phase{1e9, 0.0, 0.0});
    compute.warps = 4;
    WorkUnit memory;
    memory.phases.push_back(Phase{0.0, 0.0, 8e6});
    memory.warps = 4;
    CtaWork work;
    work.units.push_back(compute);
    work.units.push_back(memory);
    KernelDesc kernel = KernelDesc::FromWorks("k", CtaResources{256, 0.0},
                                              {work});
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    EXPECT_NEAR(result.total_time, 1e-3, 1e-9);
}

TEST(FluidEngine, TensorSharingOnOneSm)
{
    // Two 4-warp compute CTAs forced onto one SM (8-SM GPU, 16 CTAs
    // would spread; instead use max_ctas_per_sm trick with a 1-SM GPU).
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.num_sms = 1;
    std::vector<CtaWork> works = {SimpleCta(1e9, 0.0, 0.0),
                                  SimpleCta(1e9, 0.0, 0.0)};
    KernelDesc kernel =
        KernelDesc::FromWorks("k", CtaResources{128, 0.0}, works);
    FluidEngine engine(spec, NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    // Both CTAs can each use the full SM (4 warps saturate) but must
    // share: 2e9 FLOPs at 1e12 FLOP/s -> 2 ms.
    EXPECT_NEAR(result.total_time, 2e-3, 1e-9);
}

TEST(FluidEngine, WaveQuantization)
{
    // 8 SMs, 1 CTA per SM by thread occupancy (1024 threads each).
    // 8 CTAs -> one wave (1 ms); 9 CTAs -> two waves (2 ms).
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    auto make = [&](int n) {
        std::vector<CtaWork> works;
        for (int i = 0; i < n; ++i) {
            works.push_back(SimpleCta(1e9, 0.0, 0.0));
        }
        return KernelDesc::FromWorks("k", CtaResources{1024, 0.0},
                                     std::move(works));
    };
    FluidEngine engine(spec, NoOverhead());
    EXPECT_NEAR(engine.RunKernel(make(8)).total_time, 1e-3, 1e-9);
    EXPECT_NEAR(engine.RunKernel(make(9)).total_time, 2e-3, 1e-9);
}

TEST(FluidEngine, GlobalBandwidthSaturation)
{
    // 8 SMs x 2 CTAs x 16 GB/s per-CTA want = 256 GB/s want, but the
    // SM cap (16 GB/s) binds per SM -> 8 x 16 = 128 GB/s want, then
    // the global cap 64 GB/s halves it. 16 CTAs x 16e6 B = 256e6 B
    // at 64 GB/s -> 4 ms.
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    std::vector<CtaWork> works;
    for (int i = 0; i < 16; ++i) {
        works.push_back(SimpleCta(0.0, 0.0, 16e6));
    }
    KernelDesc kernel =
        KernelDesc::FromWorks("k", CtaResources{128, 0.0}, works);
    FluidEngine engine(spec, NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    EXPECT_NEAR(result.total_time, 4e-3, 1e-9);
    EXPECT_NEAR(result.mem_util, 1.0, 1e-6);
}

TEST(FluidEngine, StreamsSerializeWithinStream)
{
    KernelDesc a = OneCtaKernel(1e9, 0.0, 0.0);
    KernelDesc b = OneCtaKernel(1e9, 0.0, 0.0);
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result =
        engine.Run({KernelLaunch{a, 0}, KernelLaunch{b, 0}});
    EXPECT_NEAR(result.total_time, 2e-3, 1e-9);
    EXPECT_NEAR(result.kernels[1].start_time, 1e-3, 1e-9);
}

TEST(FluidEngine, DifferentStreamsOverlap)
{
    // Compute-only kernel and memory-only kernel on different streams
    // overlap nearly perfectly on an idle GPU.
    KernelDesc a = OneCtaKernel(1e9, 0.0, 0.0);
    KernelDesc b = OneCtaKernel(0.0, 0.0, 16e6);
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result =
        engine.Run({KernelLaunch{a, 0}, KernelLaunch{b, 1}});
    EXPECT_NEAR(result.total_time, 1e-3, 1e-9);
}

TEST(FluidEngine, SharedMemoryLimitsOccupancy)
{
    // Each CTA needs 64 KiB of the 128 KiB SM -> 2 CTAs per SM.
    // 1-SM GPU, 4 CTAs of 1 ms each -> 2 waves -> 2 ms.
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.num_sms = 1;
    std::vector<CtaWork> works;
    for (int i = 0; i < 4; ++i) {
        // Use 1-warp units so two resident CTAs don't contend (each
        // can draw at most 1/4 of the SM's tensor throughput).
        works.push_back(SimpleCta(0.25e9, 0.0, 0.0, /*warps=*/1));
    }
    KernelDesc kernel = KernelDesc::FromWorks(
        "k", CtaResources{32, 64.0 * 1024.0}, std::move(works));
    FluidEngine engine(spec, NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    EXPECT_NEAR(result.total_time, 2e-3, 1e-9);
}

TEST(FluidEngine, MaxCtasPerSmKernelLimit)
{
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.num_sms = 1;
    std::vector<CtaWork> works;
    for (int i = 0; i < 2; ++i) {
        works.push_back(SimpleCta(0.25e9, 0.0, 0.0, /*warps=*/1));
    }
    KernelDesc kernel =
        KernelDesc::FromWorks("k", CtaResources{32, 0.0}, std::move(works));
    kernel.max_ctas_per_sm = 1;
    FluidEngine engine(spec, NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    // Serialized by the kernel's own CTA/SM limit.
    EXPECT_NEAR(result.total_time, 2e-3, 1e-9);
}

TEST(FluidEngine, SmAwareAssignSeesSmId)
{
    // The assign callback must receive the SM the CTA landed on.
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    std::vector<int> seen_sms;
    KernelDesc kernel;
    kernel.name = "dynamic";
    kernel.resources = CtaResources{1024, 0.0};
    kernel.cta_count = 8;
    kernel.assign = [&seen_sms](int /*idx*/, int sm_id) {
        seen_sms.push_back(sm_id);
        return SimpleCta(1e6, 0.0, 0.0);
    };
    FluidEngine engine(spec, NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    EXPECT_EQ(result.total_ctas, 8);
    ASSERT_EQ(seen_sms.size(), 8u);
    // 1024-thread CTAs: exactly one per SM, so all SMs distinct.
    std::sort(seen_sms.begin(), seen_sms.end());
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(seen_sms[static_cast<size_t>(i)], i);
    }
}

TEST(FluidEngine, PerOpAccounting)
{
    std::vector<CtaWork> works = {
        SimpleCta(1e9, 0.0, 0.0, 4, OpClass::kPrefill),
        SimpleCta(0.0, 0.0, 16e6, 4, OpClass::kDecode),
    };
    KernelDesc kernel =
        KernelDesc::FromWorks("k", CtaResources{128, 0.0}, works);
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    EXPECT_NEAR(result.Op(OpClass::kPrefill).tensor_flops, 1e9, 1.0);
    EXPECT_NEAR(result.Op(OpClass::kDecode).mem_bytes, 16e6, 1.0);
    EXPECT_EQ(result.Op(OpClass::kPrefill).unit_count, 1);
    EXPECT_EQ(result.Op(OpClass::kDecode).unit_count, 1);
    EXPECT_GT(result.Op(OpClass::kPrefill).finish_time, 0.0);
}

TEST(FluidEngine, UtilizationBounds)
{
    std::vector<CtaWork> works;
    for (int i = 0; i < 32; ++i) {
        works.push_back(SimpleCta(1e8, 1e6, 1e6));
    }
    KernelDesc kernel =
        KernelDesc::FromWorks("k", CtaResources{128, 0.0}, works);
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    EXPECT_GT(result.tensor_util, 0.0);
    EXPECT_LE(result.tensor_util, 1.0 + 1e-9);
    EXPECT_GT(result.mem_util, 0.0);
    EXPECT_LE(result.mem_util, 1.0 + 1e-9);
    EXPECT_GT(result.energy_joules, 0.0);
}

TEST(FluidEngine, LaunchOverheadDelaysExecution)
{
    SimOptions opts;
    opts.kernel_launch_overhead = 1e-4;
    FluidEngine engine(GpuSpec::TestGpu8Sm(), opts);
    SimResult result = engine.RunKernel(OneCtaKernel(1e9, 0.0, 0.0));
    EXPECT_NEAR(result.total_time, 1e-3 + 1e-4, 1e-9);
}

TEST(FluidEngine, EmptyKernelCompletes)
{
    KernelDesc kernel;
    kernel.name = "empty";
    kernel.cta_count = 0;
    FluidEngine engine(GpuSpec::TestGpu8Sm(), NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    EXPECT_GE(result.total_time, 0.0);
    EXPECT_EQ(result.total_ctas, 0);
}

TEST(FluidEngine, BackfillAfterCompletion)
{
    // 1-SM GPU, one long CTA and one short CTA in the kernel, then a
    // second kernel CTA backfills as soon as the short one retires.
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.num_sms = 1;
    spec.max_threads_per_sm = 256;  // room for two 128-thread CTAs
    std::vector<CtaWork> first = {SimpleCta(0.0, 0.0, 4e6, 1),
                                  SimpleCta(0.0, 0.0, 16e6, 1)};
    std::vector<CtaWork> second = {SimpleCta(0.0, 0.0, 4e6, 1)};
    KernelDesc a = KernelDesc::FromWorks("a", CtaResources{128, 0.0},
                                         std::move(first));
    KernelDesc b = KernelDesc::FromWorks("b", CtaResources{128, 0.0},
                                         std::move(second));
    FluidEngine engine(spec, NoOverhead());
    SimResult result = engine.Run({KernelLaunch{a, 0}, KernelLaunch{b, 1}});
    // Unit bandwidth: 1 warp = 4 GB/s. First kernel: 1 ms and 4 ms
    // units. b's CTA (1 ms) starts when the 1 ms CTA retires and
    // finishes at 2 ms, well before a's 4 ms CTA.
    EXPECT_NEAR(result.kernels[1].end_time, 2e-3, 1e-6);
    EXPECT_NEAR(result.total_time, 4e-3, 1e-6);
}

TEST(FluidEngine, DeterministicWithSeed)
{
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    std::vector<CtaWork> works;
    for (int i = 0; i < 40; ++i) {
        works.push_back(SimpleCta(1e8 * (1 + i % 3), 0.0, 1e6 * (i % 5)));
    }
    KernelDesc kernel =
        KernelDesc::FromWorks("k", CtaResources{128, 0.0}, works);
    SimOptions opts = NoOverhead();
    opts.placement_jitter = 0.3;
    opts.seed = 42;
    FluidEngine e1(spec, opts);
    FluidEngine e2(spec, opts);
    EXPECT_DOUBLE_EQ(e1.RunKernel(kernel).total_time,
                     e2.RunKernel(kernel).total_time);
}

TEST(FluidEngine, RefillChainsWorkOnOneLane)
{
    // Persistent-threads support: a single CTA lane executes three
    // queued 1 ms work items back to back via refill, holding its
    // resources throughout.
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.num_sms = 1;
    auto remaining = std::make_shared<int>(2);

    KernelDesc kernel;
    kernel.name = "persistent";
    kernel.resources = CtaResources{1024, 0.0};
    kernel.cta_count = 1;
    kernel.assign = [](int, int) { return SimpleCta(1e9, 0.0, 0.0); };
    kernel.refill = [remaining](int, OpClass, WorkUnit* next) {
        if (*remaining == 0) return false;
        --*remaining;
        WorkUnit unit;
        unit.warps = 4;
        unit.phases.push_back(Phase{1e9, 0.0, 0.0});
        *next = unit;
        return true;
    };
    FluidEngine engine(spec, NoOverhead());
    SimResult result = engine.RunKernel(kernel);
    EXPECT_NEAR(result.total_time, 3e-3, 1e-9);
    EXPECT_EQ(result.total_ctas, 1);
}

TEST(FluidEngine, RefillKeepsResourcesOccupied)
{
    // While a persistent CTA refills, a second kernel's CTA cannot
    // enter the SM.
    GpuSpec spec = GpuSpec::TestGpu8Sm();
    spec.num_sms = 1;
    auto remaining = std::make_shared<int>(1);

    KernelDesc persistent;
    persistent.name = "persistent";
    persistent.resources = CtaResources{1024, 0.0};
    persistent.cta_count = 1;
    persistent.assign = [](int, int) { return SimpleCta(1e9, 0.0, 0.0); };
    persistent.refill = [remaining](int, OpClass, WorkUnit* next) {
        if (*remaining == 0) return false;
        --*remaining;
        WorkUnit unit;
        unit.warps = 4;
        unit.phases.push_back(Phase{1e9, 0.0, 0.0});
        *next = unit;
        return true;
    };
    KernelDesc other = OneCtaKernel(1e9, 0.0, 0.0);
    other.resources.threads = 1024;

    FluidEngine engine(spec, NoOverhead());
    SimResult result = engine.Run(
        {KernelLaunch{persistent, 0}, KernelLaunch{other, 1}});
    // other starts only after both persistent work items (2 ms).
    EXPECT_NEAR(result.kernels[1].start_time, 2e-3, 1e-9);
    EXPECT_NEAR(result.total_time, 3e-3, 1e-9);
}

}  // namespace
}  // namespace pod::gpusim
