/**
 * @file
 * Bit-identical regression pin for the fluid engine.
 *
 * Runs the fixed five-kernel scenario from tests/golden_scenarios.h
 * through the EngineCore::kExactOracle core and compares every
 * SimResult field against exact golden doubles captured from the
 * pre-refactor engine (PR 3). EXPECT_EQ on doubles is deliberate: the
 * oracle core is the project's ground truth and must never change
 * simulated behaviour at all, only its cost. The scenario avoids
 * libm, so the literals are stable on any IEEE-754 platform.
 *
 * The default analytic core is NOT bit-identical by design; its
 * agreement with the oracle is pinned by the tolerance-banded tests
 * in analytic_oracle_test.cc (bands justified in docs/DESIGN.md
 * S3.2).
 */
#include "gpusim/engine.h"

#include <gtest/gtest.h>

#include "../golden_scenarios.h"

namespace pod::gpusim {
namespace {

double
CtaFinishSum(const SimResult& r)
{
    double sum = 0.0;
    for (double t : r.cta_finish_times) sum += t;
    return sum;
}

double
CtaFinishMax(const SimResult& r)
{
    double mx = 0.0;
    for (double t : r.cta_finish_times) mx = std::max(mx, t);
    return mx;
}

TEST(EngineRegressionTest, JitteredRunIsBitIdenticalToGolden)
{
    SimOptions opt;
    opt.seed = 7;
    opt.placement_jitter = 0.25;
    opt.record_cta_times = true;
    opt.core = EngineCore::kExactOracle;
    FluidEngine engine(GpuSpec::A100Sxm80GB(), opt);
    SimResult r = engine.Run(golden::GpusimLaunches());

    EXPECT_EQ(r.total_time, 0x1.b4a98a23f76bap-7);  // 0.013325874759114387
    EXPECT_EQ(r.analytic_fastpath_events, 0);
    EXPECT_GT(r.oracle_fallback_events, 0);
    ASSERT_EQ(r.kernels.size(), 5u);
    EXPECT_EQ(r.kernels[0].start_time, 0x1.92a737110e454p-19);
    EXPECT_EQ(r.kernels[0].end_time, 0x1.a779ab21c825p-7);
    EXPECT_EQ(r.kernels[1].start_time, 0x1.a792d5953935ep-7);
    EXPECT_EQ(r.kernels[1].end_time, 0x1.a792d5953935ep-7);
    EXPECT_EQ(r.kernels[2].start_time, 0x1.a792d5953935ep-7);
    EXPECT_EQ(r.kernels[2].end_time, 0x1.b4a98a23f76bap-7);
    EXPECT_EQ(r.kernels[3].start_time, 0x1.92a737110e454p-19);
    EXPECT_EQ(r.kernels[3].end_time, 0x1.375004327ab1dp-8);
    EXPECT_EQ(r.kernels[4].start_time, 0x1.378259195cd3ap-8);
    EXPECT_EQ(r.kernels[4].end_time, 0x1.98bb9fe0fc812p-8);
    EXPECT_EQ(r.tensor_util, 0x1.701486434112dp-3);
    EXPECT_EQ(r.cuda_util, 0x1.16b871c0d0539p-1);
    EXPECT_EQ(r.mem_util, 0x1.e8ca732392e7dp-4);
    EXPECT_EQ(r.energy_joules, 0x1.1a8b861e0d8f5p+1);
    EXPECT_EQ(r.total_ctas, 420);
    EXPECT_EQ(r.per_op[0].tensor_flops, 0x1.543fd7fbffda9p+38);
    EXPECT_EQ(r.per_op[0].cuda_flops, 0x1.103e84dfffe6ep+36);
    EXPECT_EQ(r.per_op[0].mem_bytes, 0x1.5c6c2abffffc8p+30);
    EXPECT_EQ(r.per_op[0].busy_time, 0x1.a76080ae57141p-7);
    EXPECT_EQ(r.per_op[0].finish_time, 0x1.a779ab21c825p-7);
    EXPECT_EQ(r.per_op[0].unit_count, 180);
    EXPECT_EQ(r.per_op[1].tensor_flops, 0x1.b481d59800115p+35);
    EXPECT_EQ(r.per_op[1].cuda_flops, 0x1.77825efffff8p+33);
    EXPECT_EQ(r.per_op[1].mem_bytes, 0x1.401009000001dp+28);
    EXPECT_EQ(r.per_op[1].busy_time, 0x1.96c8bb993de09p-8);
    EXPECT_EQ(r.per_op[1].finish_time, 0x1.972d656702243p-8);
    EXPECT_EQ(r.per_op[1].unit_count, 150);
    EXPECT_EQ(r.per_op[2].tensor_flops, 0x1.9ced136ffffb2p+35);
    EXPECT_EQ(r.per_op[2].cuda_flops, 0x1.65a0bbffffec4p+33);
    EXPECT_EQ(r.per_op[2].mem_bytes, 0x1.20f69bfffff9p+28);
    EXPECT_EQ(r.per_op[2].busy_time, 0x1.371daf4b989p-8);
    EXPECT_EQ(r.per_op[2].finish_time, 0x1.375004327ab1dp-8);
    EXPECT_EQ(r.per_op[2].unit_count, 120);
    EXPECT_EQ(r.per_op[3].tensor_flops, 0x0p+0);
    EXPECT_EQ(r.per_op[3].cuda_flops, 0x1.6e36000000012p+26);
    EXPECT_EQ(r.per_op[3].mem_bytes, 0x1.19aaef0000022p+29);
    EXPECT_EQ(r.per_op[3].busy_time, 0x1.a2d691d7c6c23p-12);
    EXPECT_EQ(r.per_op[3].finish_time, 0x1.b4a98a23f76bap-7);
    EXPECT_EQ(r.per_op[3].unit_count, 96);
    EXPECT_EQ(r.per_op[4].tensor_flops, 0x1.7b15e6000002p+32);
    EXPECT_EQ(r.per_op[4].cuda_flops, 0x1.28d4c5000004p+30);
    EXPECT_EQ(r.per_op[4].mem_bytes, 0x1.f2f65ffffffecp+25);
    EXPECT_EQ(r.per_op[4].busy_time, 0x1.84e51b1e7eb4ap-10);
    EXPECT_EQ(r.per_op[4].finish_time, 0x1.98bb9fe0fc812p-8);
    EXPECT_EQ(r.per_op[4].unit_count, 60);
    ASSERT_EQ(r.cta_finish_times.size(), 420u);
    EXPECT_EQ(CtaFinishSum(r), 0x1.98b338cd00fc8p+1);
    EXPECT_EQ(CtaFinishMax(r), 0x1.b4a98a23f76bap-7);
    EXPECT_EQ(r.cta_finish_times.front(), 0x1.9f36e8dd3a594p-9);
    EXPECT_EQ(r.cta_finish_times.back(), 0x1.b4a98a23f76bap-7);
}

TEST(EngineRegressionTest, DeterministicRunIsBitIdenticalToGolden)
{
    SimOptions opt;
    opt.core = EngineCore::kExactOracle;
    FluidEngine engine(GpuSpec::A100Sxm80GB(), opt);
    SimResult r = engine.Run(golden::GpusimLaunches());

    EXPECT_EQ(r.total_time, 0x1.7db6d717c6b8fp-7);  // 0.011648993516748777
    ASSERT_EQ(r.kernels.size(), 5u);
    EXPECT_EQ(r.kernels[0].start_time, 0x1.92a737110e454p-19);
    EXPECT_EQ(r.kernels[0].end_time, 0x1.721128c5df07p-7);
    EXPECT_EQ(r.kernels[1].start_time, 0x1.722a53395017ep-7);
    EXPECT_EQ(r.kernels[1].end_time, 0x1.722a53395017ep-7);
    EXPECT_EQ(r.kernels[2].start_time, 0x1.722a53395017ep-7);
    EXPECT_EQ(r.kernels[2].end_time, 0x1.7db6d717c6b8fp-7);
    EXPECT_EQ(r.kernels[3].start_time, 0x1.92a737110e454p-19);
    EXPECT_EQ(r.kernels[3].end_time, 0x1.0375bc508befap-8);
    EXPECT_EQ(r.kernels[4].start_time, 0x1.03a811376e117p-8);
    EXPECT_EQ(r.kernels[4].end_time, 0x1.59bb5f94e0d0ap-8);
    EXPECT_EQ(r.tensor_util, 0x1.a510ca5340f4dp-3);
    EXPECT_EQ(r.cuda_util, 0x1.3ed7ae79ccf1cp-1);
    EXPECT_EQ(r.mem_util, 0x1.1793890b5ab18p-3);
    EXPECT_EQ(r.energy_joules, 0x1.073a332bc470bp+1);
    EXPECT_EQ(r.total_ctas, 420);
    EXPECT_EQ(r.per_op[0].tensor_flops, 0x1.543fd7fbfff9ap+38);
    EXPECT_EQ(r.per_op[0].cuda_flops, 0x1.103e84dfffe85p+36);
    EXPECT_EQ(r.per_op[0].mem_bytes, 0x1.5c6c2ac00008dp+30);
    EXPECT_EQ(r.per_op[0].busy_time, 0x1.71f7fe526df62p-7);
    EXPECT_EQ(r.per_op[0].finish_time, 0x1.721128c5df07p-7);
    EXPECT_EQ(r.per_op[0].unit_count, 180);
    EXPECT_EQ(r.per_op[1].tensor_flops, 0x1.b481d598001a6p+35);
    EXPECT_EQ(r.per_op[1].cuda_flops, 0x1.77825effffdb2p+33);
    EXPECT_EQ(r.per_op[1].mem_bytes, 0x1.4010090000008p+28);
    EXPECT_EQ(r.per_op[1].busy_time, 0x1.584d3975caf9dp-8);
    EXPECT_EQ(r.per_op[1].finish_time, 0x1.58b1e3438f3d6p-8);
    EXPECT_EQ(r.per_op[1].unit_count, 150);
    EXPECT_EQ(r.per_op[2].tensor_flops, 0x1.9ced136ffffdep+35);
    EXPECT_EQ(r.per_op[2].cuda_flops, 0x1.65a0bbffffa13p+33);
    EXPECT_EQ(r.per_op[2].mem_bytes, 0x1.20f69bffffff2p+28);
    EXPECT_EQ(r.per_op[2].busy_time, 0x1.03436769a9cdep-8);
    EXPECT_EQ(r.per_op[2].finish_time, 0x1.0375bc508befap-8);
    EXPECT_EQ(r.per_op[2].unit_count, 120);
    EXPECT_EQ(r.per_op[3].tensor_flops, 0x0p+0);
    EXPECT_EQ(r.per_op[3].cuda_flops, 0x1.6e36000000004p+26);
    EXPECT_EQ(r.per_op[3].mem_bytes, 0x1.19aaeefffffdp+29);
    EXPECT_EQ(r.per_op[3].busy_time, 0x1.71907bced4272p-12);
    EXPECT_EQ(r.per_op[3].finish_time, 0x1.7db6d717c6b8fp-7);
    EXPECT_EQ(r.per_op[3].unit_count, 96);
    EXPECT_EQ(r.per_op[4].tensor_flops, 0x1.7b15e60000041p+32);
    EXPECT_EQ(r.per_op[4].cuda_flops, 0x1.28d4c5000007dp+30);
    EXPECT_EQ(r.per_op[4].mem_bytes, 0x1.f2f6600000004p+25);
    EXPECT_EQ(r.per_op[4].busy_time, 0x1.584d3975caf7cp-10);
    EXPECT_EQ(r.per_op[4].finish_time, 0x1.59bb5f94e0d0ap-8);
    EXPECT_EQ(r.per_op[4].unit_count, 60);
    EXPECT_EQ(r.cta_finish_times.size(), 0u);
}

}  // namespace
}  // namespace pod::gpusim
