/**
 * @file
 * Attention kernel tile configurations (paper S4.2.1).
 *
 * A tile is the (query rows x KV rows) block a CTA stages in shared
 * memory per inner iteration. Tile choice drives the trade-offs the
 * paper studies: large query tiles amortize tensor-core work for
 * prefill but pad decode's one-token queries into redundant compute;
 * shared-memory footprint scales with both dimensions and bounds CTA
 * occupancy.
 */
#ifndef POD_KERNELS_TILE_H
#define POD_KERNELS_TILE_H

namespace pod::kernels {

/** Tile shape and CTA sizing for a flash-style attention kernel. */
struct TileConfig
{
    /** Query-sequence-length tile dimension (QSL, paper Fig. 10). */
    int tile_q = 128;

    /** KV tile dimension. */
    int tile_kv = 64;

    /** Warps per CTA executing this tile. */
    int warps = 8;

    /** Threads per CTA. */
    int Threads() const { return warps * 32; }

    /**
     * Shared memory footprint in bytes: Q tile plus double-buffered
     * K and V tiles, FP16.
     */
    double
    SmemBytes(int head_dim) const
    {
        return (static_cast<double>(tile_q) + 2.0 * tile_kv) * head_dim *
               2.0;
    }
};

/** FA-2 prefill tile: 128x64, 8 warps (2 CTAs/SM on A100). */
inline TileConfig
PrefillTileLarge()
{
    return TileConfig{128, 64, 8};
}

/** Compact prefill tile for POD's 4-CTAs/SM configuration: 64x32. */
inline TileConfig
PrefillTileSmall()
{
    return TileConfig{64, 32, 4};
}

/** FlashAttention decode tile (QSL 64; paper S4.2.1: FA uses 64-128). */
inline TileConfig
DecodeTileFa()
{
    return TileConfig{64, 64, 4};
}

/**
 * POD decode tile: QSL 16, the CUTLASS minimum for A100 tensor ops,
 * minimizing redundant padded compute (paper S4.2.1).
 */
inline TileConfig
DecodeTilePod()
{
    return TileConfig{16, 64, 4};
}

/** One-warp virtual decode CTA tile (paper S4.2.3). */
inline TileConfig
DecodeTileVirtual()
{
    return TileConfig{16, 64, 1};
}

}  // namespace pod::kernels

#endif  // POD_KERNELS_TILE_H
