/**
 * @file
 * SM-aware CTA scheduling: runtime operation binding (paper S4.1).
 *
 * A fused kernel is launched with enough identical CTAs for both
 * operations. Each CTA decides *after* the hardware scheduler places
 * it on an SM whether to run op A or op B, by taking a ticket from a
 * per-SM counter (paper Fig. 9): co-location of the two ops on every
 * SM is thereby guaranteed regardless of hardware placement. This is
 * the generic machinery; POD-Attention instantiates it with prefill
 * and decode work, and the S3.3 micro-benchmark with compute and
 * memory kernels.
 */
#ifndef POD_KERNELS_SM_AWARE_H
#define POD_KERNELS_SM_AWARE_H

#include <string>
#include <vector>

#include "gpusim/work.h"

namespace pod::kernels {

/**
 * Ticket policy: of every (ratio_a + ratio_b) consecutive CTAs
 * arriving on one SM, the first ratio_a run op A.
 *
 * 50:50 -> {1, 1}; proportional -> {count_a, count_b} (paper S4.1).
 */
struct SmAwarePolicy
{
    int ratio_a = 1;
    int ratio_b = 1;

    /** The paper's 50:50 allocation. */
    static SmAwarePolicy FiftyFifty() { return SmAwarePolicy{1, 1}; }

    /**
     * The paper's proportional allocation, reduced to small terms.
     *
     * Tickets are taken per SM, so the ratio must cycle within the
     * few CTAs resident on one SM: 50 prefill and 100 decode CTAs
     * become 1:2 (the paper's own example), not 50:100. The reduced
     * ratio (a+b <= max_sum) closest to count_a/(count_a+count_b) is
     * chosen.
     */
    static SmAwarePolicy Proportional(int count_a, int count_b,
                                      int max_sum = 8);
};

/**
 * Build a fused kernel whose CTAs bind to op A or op B at dispatch
 * time via SM-aware scheduling.
 *
 * @param name kernel name.
 * @param resources uniform per-CTA footprint (max of both ops,
 *        hand-balanced as in paper S4.3).
 * @param works_a CTA work list of op A.
 * @param works_b CTA work list of op B.
 * @param policy ticket policy.
 * @param num_sms SM count of the target device (per-SM counters).
 * @param max_ctas_per_sm resident-CTA cap (paper S4.2.2; 0 = none).
 */
gpusim::KernelDesc MakeSmAwareKernel(std::string name,
                                     gpusim::CtaResources resources,
                                     std::vector<gpusim::CtaWork> works_a,
                                     std::vector<gpusim::CtaWork> works_b,
                                     SmAwarePolicy policy, int num_sms,
                                     int max_ctas_per_sm = 0);

/**
 * Build a naive CTA-parallel fused kernel for comparison: op A and
 * op B CTAs are statically interleaved proportionally in dispatch
 * order, with no SM awareness -- co-location is accidental
 * (paper S3.1, "CTA-parallel").
 */
gpusim::KernelDesc MakeCtaParallelKernel(std::string name,
                                         gpusim::CtaResources resources,
                                         std::vector<gpusim::CtaWork> works_a,
                                         std::vector<gpusim::CtaWork> works_b,
                                         int max_ctas_per_sm = 0);

}  // namespace pod::kernels

#endif  // POD_KERNELS_SM_AWARE_H
