/**
 * @file
 * Work-unit geometry of FlashAttention-style kernels.
 *
 * These builders translate attention problems into the CTA grids,
 * FLOP counts and DRAM traffic the real kernels produce:
 *
 *  - prefill: FA-2 grid = q_heads x ceil(chunk/tile_q) x splits, with
 *    causal masking against the full prior context of the chunk and
 *    optional FlashDecoding-style KV splits (used by FA for chunked
 *    prefills, paper S4.2.4);
 *  - decode: FlashDecoding grid = batch x kv_heads x splits, the GQA
 *    group padded to the QSL tile (redundant tensor work, S4.2.1);
 *  - decode-as-prefill: decode tokens fed through the prefill kernel,
 *    the FI_Batched strategy the paper shows collapsing at long
 *    context (S5.1).
 *
 * Issued vs. useful FLOPs are tracked separately: issued includes
 * tile padding (what the tensor pipes execute and profilers report);
 * useful is the causally-exact minimum (what Fig. 1 utilization
 * reflects).
 */
#ifndef POD_KERNELS_FLASH_GEOMETRY_H
#define POD_KERNELS_FLASH_GEOMETRY_H

#include <vector>

#include "gpusim/work.h"
#include "kernels/attn_types.h"
#include "kernels/tile.h"

namespace pod::kernels {

/** Options shared by the geometry builders. */
struct GeomOptions
{
    /** Tile configuration. */
    TileConfig tile;

    /** KV-dimension splits (FlashDecoding; 1 = no split). */
    int num_splits = 1;

    /** Max barrier-delimited phases per work unit. */
    int phases_per_unit = 4;

    /**
     * Per-unit achievable memory bandwidth (bytes/s). Flash kernels
     * keep many async copies in flight; 16 GB/s per CTA reproduces
     * the batch-size-dependent HBM saturation of Fig. 10b on A100.
     */
    double unit_mem_bw_cap = 16e9;

    /**
     * Fraction of *repeated* KV-cache reads that miss L2 and reach
     * DRAM. KV tiles are re-read once per query tile and per GQA
     * group member; the 40 MB A100 L2 absorbs most repeats. The first
     * read always pays DRAM. Calibration constant (docs/DESIGN.md S5.5).
     */
    double l2_miss_fraction = 0.12;
};

/**
 * Effective DRAM fraction of KV traffic when the same KV range is
 * read `total_reads` times: the first read misses, later reads miss
 * with probability l2_miss_fraction.
 */
double KvDramFactor(int total_reads, double l2_miss_fraction);

/** Geometry of one kernel side (prefill or decode). */
struct UnitGeometry
{
    /** One work unit per CTA (or per virtual CTA for POD decode). */
    std::vector<gpusim::WorkUnit> units;

    /** Per-CTA resource footprint when launched stand-alone. */
    gpusim::CtaResources resources;

    /** Tensor FLOPs actually needed (causally exact, no padding). */
    double useful_tensor_flops = 0.0;

    /** Tensor FLOPs issued including tile padding. */
    double issued_tensor_flops = 0.0;

    /** Total DRAM traffic in bytes. */
    double mem_bytes = 0.0;
};

/**
 * Build prefill work units: one per (q head, query tile, split).
 */
UnitGeometry BuildPrefillUnits(const AttnShape& shape,
                               const PrefillItem& prefill,
                               const GeomOptions& options);

/**
 * Build decode work units: one per (request, kv head, split).
 */
UnitGeometry BuildDecodeUnits(const AttnShape& shape,
                              const DecodeItem& decode,
                              const GeomOptions& options);

/**
 * Build decode work processed by a *prefill* kernel (FI_Batched):
 * each request's single-token query is padded to the prefill QSL
 * tile, issuing tile_q/group times more tensor work than needed.
 */
UnitGeometry BuildDecodeAsPrefillUnits(const AttnShape& shape,
                                       const DecodeItem& decode,
                                       const GeomOptions& options);

/**
 * FlashDecoding split heuristic: smallest split count that fills the
 * device with at least `target_ctas` CTAs, bounded so each split
 * still covers `min_kv_per_split` KV tokens, and capped at
 * `max_splits`.
 *
 * @param base_ctas CTA count at one split.
 * @param min_context smallest KV length being split.
 */
int FlashDecodingSplits(int base_ctas, int min_context, int target_ctas,
                        int min_kv_per_split = 256, int max_splits = 16);

/**
 * POD's decode split choice: the largest split count that does NOT
 * overflow `slot_budget` work units (floor semantics). Overshooting
 * the budget would leave a straggler wave of decode CTAs running
 * nearly alone after the bulk finishes, wiping out the fusion gain on
 * decode-dominated batches.
 */
int PodDecodeSplits(int base_units, int min_context, int slot_budget,
                    int min_kv_per_split = 256, int max_splits = 16);

/**
 * Vanilla (un-limited) prefill split count used by FlashAttention for
 * chunked prefills: splits until each CTA covers roughly 1K KV
 * tokens. POD's limited policy (paper S4.2.4) instead caps prefill
 * CTAs at two full waves; see LimitedPrefillSplits.
 */
int VanillaPrefillSplits(int base_ctas, int kv_len, int num_sms);

/** POD's limited prefill splits: at most two waves of SMs (S4.2.4). */
int LimitedPrefillSplits(int base_ctas, int kv_len, int num_sms);

}  // namespace pod::kernels

#endif  // POD_KERNELS_FLASH_GEOMETRY_H
