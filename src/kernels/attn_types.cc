/**
 * @file
 * Validation and convenience constructors for attention problem types.
 */
#include "kernels/attn_types.h"

#include <cstdio>

#include "common/logging.h"

namespace pod::kernels {

void
AttnShape::Validate() const
{
    POD_CHECK_ARG(num_q_heads > 0, "need at least one query head");
    POD_CHECK_ARG(num_kv_heads > 0, "need at least one KV head");
    POD_CHECK_ARG(num_q_heads % num_kv_heads == 0,
                  "query heads must be a multiple of KV heads (GQA)");
    POD_CHECK_ARG(head_dim > 0, "head dimension must be positive");
}

void
PrefillItem::Validate() const
{
    POD_CHECK_ARG(chunk_len > 0, "prefill chunk must be non-empty");
    POD_CHECK_ARG(kv_len >= chunk_len,
                  "kv_len must include the chunk itself");
}

int64_t
DecodeItem::TotalContext() const
{
    int64_t total = 0;
    for (int len : context_lens) total += len;
    return total;
}

DecodeItem
DecodeItem::Uniform(int batch_size, int context_len)
{
    DecodeItem item;
    item.context_lens.assign(static_cast<size_t>(batch_size), context_len);
    return item;
}

void
DecodeItem::Validate() const
{
    for (int len : context_lens) {
        POD_CHECK_ARG(len > 0, "decode context length must be positive");
    }
}

void
HybridBatch::Validate() const
{
    shape.Validate();
    for (const auto& p : prefills) p.Validate();
    decode.Validate();
    POD_CHECK_ARG(HasPrefill() || HasDecode(),
                  "hybrid batch must contain some work");
}

std::string
HybridBatch::Describe() const
{
    char buf[160];
    int chunk = prefills.empty() ? 0 : prefills[0].chunk_len;
    int pkv = prefills.empty() ? 0 : prefills[0].kv_len;
    double avg_ctx = 0.0;
    if (decode.BatchSize() > 0) {
        avg_ctx = static_cast<double>(decode.TotalContext()) /
                  decode.BatchSize();
    }
    std::snprintf(buf, sizeof(buf),
                  "prefill(chunk=%d kv=%d) decode(bs=%d avg_ctx=%.0f) "
                  "heads(q=%d kv=%d d=%d)",
                  chunk, pkv, decode.BatchSize(), avg_ctx,
                  shape.num_q_heads, shape.num_kv_heads, shape.head_dim);
    return std::string(buf);
}

HybridBatch
HybridBatch::Make(AttnShape shape, int chunk_len, int prefill_kv,
                  int decode_bs, int decode_ctx)
{
    HybridBatch batch;
    batch.shape = shape;
    if (chunk_len > 0) {
        batch.prefills.push_back(PrefillItem{chunk_len, prefill_kv});
    }
    if (decode_bs > 0) {
        batch.decode = DecodeItem::Uniform(decode_bs, decode_ctx);
    }
    return batch;
}

}  // namespace pod::kernels
