/**
 * @file
 * Kernel assembly for the baseline attention strategies.
 *
 * These functions wrap UnitGeometry work lists into simulator
 * KernelDescs for the execution strategies the paper compares
 * against: standalone prefill/decode kernels (FA/FI serial and
 * streams), the FI_Batched single-kernel strategy, and HFuse-style
 * warp-parallel fusion with its straggler semantics (paper S3).
 */
#ifndef POD_KERNELS_ATTN_KERNELS_H
#define POD_KERNELS_ATTN_KERNELS_H

#include <string>

#include "gpusim/work.h"
#include "kernels/flash_geometry.h"

namespace pod::kernels {

/**
 * Wrap a geometry into a plain kernel: one CTA per work unit, CTAs
 * dispatched in unit order.
 */
gpusim::KernelDesc MakeSimpleKernel(std::string name,
                                    const UnitGeometry& geom);

/**
 * FI_Batched: a single prefill-tile kernel computing both the prefill
 * chunk and the (padded) decode tokens. CTAs are interleaved
 * round-robin between the two unit lists, as a ragged-batch prefill
 * kernel would emit them.
 */
gpusim::KernelDesc MakeBatchedPrefillKernel(std::string name,
                                            const UnitGeometry& prefill,
                                            const UnitGeometry& decode);

/**
 * HFuse-style horizontal (warp-parallel) fusion: CTA i hosts prefill
 * unit i and decode unit i side by side; the grid is
 * max(prefill, decode) CTAs and every CTA reserves the *sum* of both
 * footprints for its entire lifetime. A CTA retires only when its
 * slowest unit finishes -- the straggler problem (paper S3.1).
 */
gpusim::KernelDesc MakeHFuseKernel(std::string name,
                                   const UnitGeometry& prefill,
                                   const UnitGeometry& decode);

}  // namespace pod::kernels

#endif  // POD_KERNELS_ATTN_KERNELS_H
