/**
 * @file
 * The paper's S3.3 concurrent-execution case study (Fig. 7).
 *
 * A compute-bound kernel (repeated scalar multiplies) and a
 * memory-bound kernel (repeated three-array adds), each with a
 * barrier after every iteration, are executed with each candidate
 * fusion strategy: serial, kernel-parallel (streams), naive
 * CTA-parallel, intra-thread fusion, SM-aware CTA scheduling, and the
 * perfect-overlap oracle.
 */
#ifndef POD_KERNELS_MICRO_H
#define POD_KERNELS_MICRO_H

#include "gpusim/engine.h"
#include "gpusim/gpu_spec.h"

namespace pod::kernels {

/** Fusion strategies of Table 2 / Fig. 7. */
enum class FusionStrategy : int {
    kSerial = 0,       ///< One kernel after the other.
    kStreams = 1,      ///< Kernel-parallel via two CUDA streams.
    kCtaParallel = 2,  ///< Static CTA split, no SM awareness.
    kIntraThread = 3,  ///< Instruction interleaving within threads.
    kSmAwareCta = 4,   ///< POD's SM-aware CTA scheduling.
    kOracle = 5,       ///< Perfect overlap: max of the two kernels.
};

/** Printable strategy name. */
const char* FusionStrategyName(FusionStrategy strategy);

/** Micro-benchmark parameters. */
struct MicroParams
{
    /** Iterations of the compute kernel (x axis of Fig. 7). */
    int compute_iters = 100;

    /** Iterations of the memory kernel. */
    int memory_iters = 100;

    /** CTAs per kernel; 0 = 2 x num_sms (fills the device). */
    int ctas = 0;

    /**
     * CUDA FLOPs per compute iteration per CTA; 0 auto-calibrates so
     * 100 iterations take 1 ms with the device full.
     */
    double flops_per_iter = 0.0;

    /** Bytes per memory iteration per CTA; 0 auto-calibrates as above. */
    double bytes_per_iter = 0.0;

    /**
     * Fraction of a fused iteration's memory traffic that intra-thread
     * fusion can hide under compute; the barrier after each iteration
     * prevents hiding the rest (paper S3.1, "Intra-thread").
     */
    double intra_thread_overlap = 0.4;
};

/**
 * Execute the micro-benchmark with one strategy and return the total
 * runtime in seconds.
 */
double RunMicroStrategy(FusionStrategy strategy, const MicroParams& params,
                        const gpusim::GpuSpec& spec,
                        const gpusim::SimOptions& sim_options =
                            gpusim::SimOptions());

}  // namespace pod::kernels

#endif  // POD_KERNELS_MICRO_H
