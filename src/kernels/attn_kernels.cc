/**
 * @file
 * Implementation of baseline attention kernel assembly.
 */
#include "kernels/attn_kernels.h"

#include <algorithm>

#include "common/logging.h"

namespace pod::kernels {

gpusim::KernelDesc
MakeSimpleKernel(std::string name, const UnitGeometry& geom)
{
    std::vector<gpusim::CtaWork> works;
    works.reserve(geom.units.size());
    for (const auto& unit : geom.units) {
        gpusim::CtaWork work;
        work.units.push_back(unit);
        works.push_back(std::move(work));
    }
    return gpusim::KernelDesc::FromWorks(std::move(name), geom.resources,
                                         std::move(works));
}

gpusim::KernelDesc
MakeBatchedPrefillKernel(std::string name, const UnitGeometry& prefill,
                         const UnitGeometry& decode)
{
    // Both sides were built with the same (prefill) tile, so their
    // footprints match; take the larger to be safe.
    gpusim::CtaResources res;
    res.threads =
        std::max(prefill.resources.threads, decode.resources.threads);
    res.shared_mem_bytes = std::max(prefill.resources.shared_mem_bytes,
                                    decode.resources.shared_mem_bytes);

    // Interleave proportionally, approximating the CTA order a
    // ragged-batch prefill kernel produces (requests in submission
    // order: chunk first, then decode rows, tiled across heads).
    std::vector<gpusim::CtaWork> works;
    works.reserve(prefill.units.size() + decode.units.size());
    size_t np = prefill.units.size();
    size_t nd = decode.units.size();
    size_t ip = 0;
    size_t id = 0;
    while (ip < np || id < nd) {
        // Emit from the side that is behind its proportional quota.
        bool take_prefill;
        if (ip >= np) {
            take_prefill = false;
        } else if (id >= nd) {
            take_prefill = true;
        } else {
            take_prefill = ip * nd <= id * np;
        }
        gpusim::CtaWork work;
        if (take_prefill) {
            work.units.push_back(prefill.units[ip++]);
        } else {
            work.units.push_back(decode.units[id++]);
        }
        works.push_back(std::move(work));
    }
    return gpusim::KernelDesc::FromWorks(std::move(name), res,
                                         std::move(works));
}

gpusim::KernelDesc
MakeHFuseKernel(std::string name, const UnitGeometry& prefill,
                const UnitGeometry& decode)
{
    // HFuse reserves the union of both kernels' resources in every
    // CTA of the fused grid, whether or not both sides have work.
    gpusim::CtaResources res;
    res.threads = prefill.resources.threads + decode.resources.threads;
    res.shared_mem_bytes = prefill.resources.shared_mem_bytes +
                           decode.resources.shared_mem_bytes;

    size_t n = std::max(prefill.units.size(), decode.units.size());
    POD_CHECK_ARG(n > 0, "HFuse kernel needs at least one work unit");
    std::vector<gpusim::CtaWork> works;
    works.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        gpusim::CtaWork work;
        if (i < prefill.units.size()) {
            work.units.push_back(prefill.units[i]);
        }
        if (i < decode.units.size()) {
            work.units.push_back(decode.units[i]);
        }
        works.push_back(std::move(work));
    }
    return gpusim::KernelDesc::FromWorks(std::move(name), res,
                                         std::move(works));
}

}  // namespace pod::kernels
