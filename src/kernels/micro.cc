/**
 * @file
 * Implementation of the S3.3 fusion case-study micro-benchmark.
 */
#include "kernels/micro.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "kernels/sm_aware.h"

namespace pod::kernels {

namespace {

/** Threads per micro CTA: large CTAs, two resident per SM. */
constexpr int kMicroThreads = 1024;

/** Resolved (auto-calibrated) parameters. */
struct Resolved
{
    int ctas;
    double flops_per_iter;
    double bytes_per_iter;
};

Resolved
ResolveParams(const MicroParams& params, const gpusim::GpuSpec& spec)
{
    Resolved r;
    r.ctas = params.ctas > 0 ? params.ctas : 2 * spec.num_sms;
    // Calibrate so that 100 iterations take 1 ms with the device
    // fully occupied -- matching the paper's "at 100 compute
    // iterations, both operations consume equal time" setup.
    const double t0 = 1e-3;
    const double iters0 = 100.0;
    r.flops_per_iter =
        params.flops_per_iter > 0.0
            ? params.flops_per_iter
            : spec.TotalCudaFlops() * t0 / (r.ctas * iters0);
    r.bytes_per_iter = params.bytes_per_iter > 0.0
                           ? params.bytes_per_iter
                           : spec.hbm_bandwidth * t0 / (r.ctas * iters0);
    return r;
}

/** One compute-kernel CTA: compute_iters barrier-delimited multiplies. */
gpusim::CtaWork
ComputeCta(const Resolved& r, int iters)
{
    gpusim::WorkUnit unit;
    unit.op = gpusim::OpClass::kCompute;
    unit.warps = kMicroThreads / 32;
    unit.phases.reserve(static_cast<size_t>(iters));
    for (int i = 0; i < iters; ++i) {
        unit.phases.push_back(gpusim::Phase{0.0, r.flops_per_iter, 0.0});
    }
    gpusim::CtaWork work;
    work.units.push_back(std::move(unit));
    return work;
}

/** One memory-kernel CTA: memory_iters barrier-delimited array adds. */
gpusim::CtaWork
MemoryCta(const Resolved& r, int iters)
{
    gpusim::WorkUnit unit;
    unit.op = gpusim::OpClass::kMemory;
    unit.warps = kMicroThreads / 32;
    unit.phases.reserve(static_cast<size_t>(iters));
    for (int i = 0; i < iters; ++i) {
        unit.phases.push_back(gpusim::Phase{0.0, 0.0, r.bytes_per_iter});
    }
    gpusim::CtaWork work;
    work.units.push_back(std::move(unit));
    return work;
}

std::vector<gpusim::CtaWork>
Replicate(const gpusim::CtaWork& work, int n)
{
    return std::vector<gpusim::CtaWork>(static_cast<size_t>(n), work);
}

gpusim::CtaResources
MicroResources()
{
    return gpusim::CtaResources{kMicroThreads, 0.0};
}

/**
 * Intra-thread fused CTA: each iteration interleaves the compute
 * multiply with a slice of the memory add. Only `overlap` of the
 * memory traffic hides under the compute; the barrier forces the
 * remainder to run exposed (paper S3.1). Leftover iterations of the
 * longer op run pure.
 */
gpusim::CtaWork
IntraThreadCta(const Resolved& r, int compute_iters, int memory_iters,
               double overlap)
{
    gpusim::WorkUnit unit;
    unit.op = gpusim::OpClass::kOther;
    unit.warps = kMicroThreads / 32;
    int fused = std::min(compute_iters, memory_iters);
    for (int i = 0; i < fused; ++i) {
        unit.phases.push_back(gpusim::Phase{
            0.0, r.flops_per_iter, overlap * r.bytes_per_iter});
        unit.phases.push_back(gpusim::Phase{
            0.0, 0.0, (1.0 - overlap) * r.bytes_per_iter});
    }
    for (int i = fused; i < compute_iters; ++i) {
        unit.phases.push_back(gpusim::Phase{0.0, r.flops_per_iter, 0.0});
    }
    for (int i = fused; i < memory_iters; ++i) {
        unit.phases.push_back(gpusim::Phase{0.0, 0.0, r.bytes_per_iter});
    }
    gpusim::CtaWork work;
    work.units.push_back(std::move(unit));
    return work;
}

}  // namespace

const char*
FusionStrategyName(FusionStrategy strategy)
{
    switch (strategy) {
      case FusionStrategy::kSerial: return "Serial";
      case FusionStrategy::kStreams: return "Kernel (Streams)";
      case FusionStrategy::kCtaParallel: return "CTA";
      case FusionStrategy::kIntraThread: return "Intra-thread";
      case FusionStrategy::kSmAwareCta: return "SM-aware CTA";
      case FusionStrategy::kOracle: return "Optimal";
    }
    return "unknown";
}

double
RunMicroStrategy(FusionStrategy strategy, const MicroParams& params,
                 const gpusim::GpuSpec& spec,
                 const gpusim::SimOptions& sim_options)
{
    POD_CHECK_ARG(params.compute_iters > 0 && params.memory_iters > 0,
                  "iteration counts must be positive");
    Resolved r = ResolveParams(params, spec);
    gpusim::FluidEngine engine(spec, sim_options);

    gpusim::KernelDesc compute_kernel = gpusim::KernelDesc::FromWorks(
        "micro_compute", MicroResources(),
        Replicate(ComputeCta(r, params.compute_iters), r.ctas));
    gpusim::KernelDesc memory_kernel = gpusim::KernelDesc::FromWorks(
        "micro_memory", MicroResources(),
        Replicate(MemoryCta(r, params.memory_iters), r.ctas));

    switch (strategy) {
      case FusionStrategy::kSerial: {
        return engine
            .Run({gpusim::KernelLaunch{compute_kernel, 0},
                  gpusim::KernelLaunch{memory_kernel, 0}})
            .total_time;
      }
      case FusionStrategy::kStreams: {
        return engine
            .Run({gpusim::KernelLaunch{compute_kernel, 0},
                  gpusim::KernelLaunch{memory_kernel, 1}})
            .total_time;
      }
      case FusionStrategy::kCtaParallel: {
        gpusim::KernelDesc fused = MakeCtaParallelKernel(
            "micro_cta_fused", MicroResources(),
            Replicate(ComputeCta(r, params.compute_iters), r.ctas),
            Replicate(MemoryCta(r, params.memory_iters), r.ctas));
        return engine.RunKernel(fused).total_time;
      }
      case FusionStrategy::kIntraThread: {
        gpusim::KernelDesc fused = gpusim::KernelDesc::FromWorks(
            "micro_intra_thread", MicroResources(),
            Replicate(IntraThreadCta(r, params.compute_iters,
                                     params.memory_iters,
                                     params.intra_thread_overlap),
                      r.ctas));
        return engine.RunKernel(fused).total_time;
      }
      case FusionStrategy::kSmAwareCta: {
        gpusim::KernelDesc fused = MakeSmAwareKernel(
            "micro_sm_aware", MicroResources(),
            Replicate(ComputeCta(r, params.compute_iters), r.ctas),
            Replicate(MemoryCta(r, params.memory_iters), r.ctas),
            SmAwarePolicy::FiftyFifty(), spec.num_sms);
        return engine.RunKernel(fused).total_time;
      }
      case FusionStrategy::kOracle: {
        double tc = engine.RunKernel(compute_kernel).total_time;
        double tm = engine.RunKernel(memory_kernel).total_time;
        return std::max(tc, tm);
      }
    }
    Panic("unknown fusion strategy");
}

}  // namespace pod::kernels
