/**
 * @file
 * Implementation of the FlashAttention-style geometry builders.
 */
#include "kernels/flash_geometry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace pod::kernels {

namespace {

/**
 * Distribute a unit's total demands over its barrier-delimited
 * phases. Flash kernels iterate KV tiles with a barrier per tile; we
 * coalesce those iterations into at most `max_phases` phases with
 * uniform rates, which preserves timing under piecewise-constant
 * contention while keeping simulation cost low.
 */
void
FillPhases(gpusim::WorkUnit& unit, double tensor, double cuda, double mem,
           int kv_tiles, int max_phases)
{
    int n = std::max(1, std::min(max_phases, kv_tiles));
    unit.phases.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        gpusim::Phase phase;
        phase.tensor_flops = tensor / n;
        phase.cuda_flops = cuda / n;
        phase.mem_bytes = mem / n;
        unit.phases.push_back(phase);
    }
}

/**
 * Output-related DRAM traffic per unit: direct FP16 writes without
 * splits; FP32 partial accumulators plus the merge kernel's reads and
 * final write, amortized per split, otherwise. The split-KV merge
 * traffic is the bandwidth cost behind POD's limited-split policy
 * (paper S4.2.4, Table 8).
 */
double
OutputBytes(int rows, int head_dim, int splits)
{
    double direct = rows * head_dim * kElemBytes;
    if (splits <= 1) {
        return direct;
    }
    double partial_write = rows * (head_dim + 1) * kAccumBytes;
    double merge_read = partial_write;  // each partial is read back once
    double merge_write_share = direct / splits;
    return partial_write + merge_read + merge_write_share;
}

}  // namespace

double
KvDramFactor(int total_reads, double l2_miss_fraction)
{
    if (total_reads <= 1) return 1.0;
    double reads = static_cast<double>(total_reads);
    return (1.0 + (reads - 1.0) * l2_miss_fraction) / reads;
}

UnitGeometry
BuildPrefillUnits(const AttnShape& shape, const PrefillItem& prefill,
                  const GeomOptions& options)
{
    shape.Validate();
    prefill.Validate();
    POD_CHECK_ARG(options.num_splits >= 1, "splits must be >= 1");

    const TileConfig& tile = options.tile;
    const int d = shape.head_dim;
    const int splits = options.num_splits;
    const int q_tiles = CeilDiv(prefill.chunk_len, tile.tile_q);
    const int offset = prefill.QueryOffset();

    UnitGeometry geom;
    geom.resources.threads = tile.Threads();
    geom.resources.shared_mem_bytes = tile.SmemBytes(d);
    geom.units.reserve(static_cast<size_t>(shape.num_q_heads) * q_tiles *
                       splits);

    // Each KV-head's cache is read once per query tile and per GQA
    // group member; later reads mostly hit L2.
    double kv_dram = KvDramFactor(q_tiles * shape.GroupSize(),
                                  options.l2_miss_fraction);

    for (int head = 0; head < shape.num_q_heads; ++head) {
        for (int qt = 0; qt < q_tiles; ++qt) {
            int q_start = qt * tile.tile_q;
            int q_rows = std::min(tile.tile_q, prefill.chunk_len - q_start);
            // Keys visible to the tile's last row (causal reach).
            int reach = std::min(prefill.kv_len, offset + q_start + q_rows);
            int reach_padded = RoundUp(reach, tile.tile_kv);

            // Causally exact score count for this tile: row r attends
            // offset + q_start + r + 1 keys.
            double useful_scores =
                static_cast<double>(q_rows) * (offset + q_start) +
                0.5 * q_rows * (q_rows + 1.0);

            for (int s = 0; s < splits; ++s) {
                double slice = static_cast<double>(reach_padded) / splits;
                double issued = 4.0 * tile.tile_q * slice * d;
                double useful = 4.0 * useful_scores * d / splits;
                double cuda = kSoftmaxFlopsPerScore * tile.tile_q * slice;
                double mem =
                    slice * d * 2.0 * kElemBytes * kv_dram +  // K+V
                    q_rows * d * kElemBytes +                 // Q
                    OutputBytes(q_rows, d, splits);

                gpusim::WorkUnit unit;
                unit.op = gpusim::OpClass::kPrefill;
                unit.warps = tile.warps;
                unit.mem_bw_cap = options.unit_mem_bw_cap;
                FillPhases(unit, issued, cuda, mem,
                           CeilDiv(reach_padded, tile.tile_kv * splits),
                           options.phases_per_unit);
                geom.units.push_back(std::move(unit));

                geom.issued_tensor_flops += issued;
                geom.useful_tensor_flops += useful;
                geom.mem_bytes += mem;
            }
        }
    }
    return geom;
}

UnitGeometry
BuildDecodeUnits(const AttnShape& shape, const DecodeItem& decode,
                 const GeomOptions& options)
{
    shape.Validate();
    decode.Validate();
    POD_CHECK_ARG(options.num_splits >= 1, "splits must be >= 1");

    const TileConfig& tile = options.tile;
    const int d = shape.head_dim;
    const int splits = options.num_splits;
    const int group = shape.GroupSize();

    UnitGeometry geom;
    geom.resources.threads = tile.Threads();
    geom.resources.shared_mem_bytes = tile.SmemBytes(d);
    geom.units.reserve(decode.context_lens.size() *
                       static_cast<size_t>(shape.num_kv_heads) * splits);

    // The GQA group's rows are padded up to the QSL tile: everything
    // beyond `group` rows is redundant compute competing with
    // co-located prefill (paper S4.2.1). Groups larger than the tile
    // span multiple row tiles.
    int padded_rows = RoundUp(group, tile.tile_q);

    for (int ctx : decode.context_lens) {
        int ctx_padded = RoundUp(ctx, tile.tile_kv);
        for (int kv_head = 0; kv_head < shape.num_kv_heads; ++kv_head) {
            for (int s = 0; s < splits; ++s) {
                double slice = static_cast<double>(ctx_padded) / splits;
                double issued = 4.0 * padded_rows * slice * d;
                double useful =
                    4.0 * group * (static_cast<double>(ctx) / splits) * d;
                double cuda = kSoftmaxFlopsPerScore * padded_rows * slice;
                double mem = slice * d * 2.0 * kElemBytes +   // K+V
                             group * d * kElemBytes +         // Q
                             OutputBytes(group, d, splits);

                gpusim::WorkUnit unit;
                unit.op = gpusim::OpClass::kDecode;
                unit.warps = tile.warps;
                unit.mem_bw_cap = options.unit_mem_bw_cap;
                FillPhases(unit, issued, cuda, mem,
                           CeilDiv(ctx_padded, tile.tile_kv * splits),
                           options.phases_per_unit);
                geom.units.push_back(std::move(unit));

                geom.issued_tensor_flops += issued;
                geom.useful_tensor_flops += useful;
                geom.mem_bytes += mem;
            }
        }
    }
    return geom;
}

UnitGeometry
BuildDecodeAsPrefillUnits(const AttnShape& shape, const DecodeItem& decode,
                          const GeomOptions& options)
{
    shape.Validate();
    decode.Validate();

    const TileConfig& tile = options.tile;
    const int d = shape.head_dim;

    UnitGeometry geom;
    geom.resources.threads = tile.Threads();
    geom.resources.shared_mem_bytes = tile.SmemBytes(d);
    geom.units.reserve(decode.context_lens.size() *
                       static_cast<size_t>(shape.num_q_heads));

    // The prefill kernel parallelizes over *query* heads, so each of
    // the GQA group's q heads re-reads its KV head's cache (partly
    // served by L2), on top of tile_q x padded compute. Both
    // interfere with the co-running prefill -- the FI_Batched
    // pathology (paper S5.1, Fig. 11).
    double kv_dram =
        KvDramFactor(shape.GroupSize(), options.l2_miss_fraction);
    for (int ctx : decode.context_lens) {
        int ctx_padded = RoundUp(ctx, tile.tile_kv);
        for (int head = 0; head < shape.num_q_heads; ++head) {
            double issued = 4.0 * tile.tile_q * ctx_padded * d;
            double useful = 4.0 * 1.0 * ctx * d;
            double cuda = kSoftmaxFlopsPerScore * tile.tile_q * ctx_padded;
            double mem = static_cast<double>(ctx_padded) * d * 2.0 *
                             kElemBytes * kv_dram +
                         d * kElemBytes +  // one query row
                         OutputBytes(1, d, 1);

            gpusim::WorkUnit unit;
            unit.op = gpusim::OpClass::kDecode;
            unit.warps = tile.warps;
            unit.mem_bw_cap = options.unit_mem_bw_cap;
            FillPhases(unit, issued, cuda, mem,
                       CeilDiv(ctx_padded, tile.tile_kv),
                       options.phases_per_unit);
            geom.units.push_back(std::move(unit));

            geom.issued_tensor_flops += issued;
            geom.useful_tensor_flops += useful;
            geom.mem_bytes += mem;
        }
    }
    return geom;
}

int
FlashDecodingSplits(int base_ctas, int min_context, int target_ctas,
                    int min_kv_per_split, int max_splits)
{
    if (base_ctas <= 0) return 1;
    int splits = CeilDiv(std::max(1, target_ctas), base_ctas);
    splits = Clamp(splits, 1, max_splits);
    int ctx_bound = std::max(1, min_context / std::max(1, min_kv_per_split));
    return Clamp(splits, 1, ctx_bound);
}

int
PodDecodeSplits(int base_units, int min_context, int slot_budget,
                int min_kv_per_split, int max_splits)
{
    if (base_units <= 0) return 1;
    int splits = std::max(1, slot_budget / base_units);
    splits = Clamp(splits, 1, max_splits);
    int ctx_bound = std::max(1, min_context / std::max(1, min_kv_per_split));
    return Clamp(splits, 1, ctx_bound);
}

int
VanillaPrefillSplits(int base_ctas, int kv_len, int num_sms)
{
    if (base_ctas <= 0) return 1;
    // FA splits chunked prefills until each CTA covers ~1K KV tokens,
    // bounded by eight waves of SMs.
    int splits = CeilDiv(kv_len, 1024);
    int wave_cap = std::max(1, (8 * num_sms) / base_ctas);
    return Clamp(splits, 1, std::min(wave_cap, 32));
}

int
LimitedPrefillSplits(int base_ctas, int kv_len, int num_sms)
{
    if (base_ctas <= 0) return 1;
    // At most two full waves of prefill CTAs (paper S4.2.4).
    int splits = std::max(1, (2 * num_sms) / base_ctas);
    int ctx_bound = std::max(1, kv_len / 256);
    return std::min(splits, ctx_bound);
}

}  // namespace pod::kernels
