/**
 * @file
 * Problem descriptions for hybrid-batch attention.
 *
 * A hybrid batch (paper S2.1, Table 1) contains at most one chunked
 * prefill and any number of decode requests. Shapes are per-GPU:
 * tensor parallelism divides query and KV heads before these
 * structures are built.
 */
#ifndef POD_KERNELS_ATTN_TYPES_H
#define POD_KERNELS_ATTN_TYPES_H

#include <cstdint>
#include <string>
#include <vector>

namespace pod::kernels {

/** Bytes per stored element (FP16 KV cache and activations). */
inline constexpr double kElemBytes = 2.0;

/** Bytes per accumulator element (FP32 split-KV partials). */
inline constexpr double kAccumBytes = 4.0;

/** CUDA-core FLOPs charged per attention score element (softmax,
 * scaling, masking). */
inline constexpr double kSoftmaxFlopsPerScore = 6.0;

/** Per-GPU attention head geometry. */
struct AttnShape
{
    /** Query heads on this GPU. */
    int num_q_heads = 32;

    /** KV heads on this GPU (GQA: num_q_heads / num_kv_heads per group). */
    int num_kv_heads = 8;

    /** Head dimension. */
    int head_dim = 128;

    /** Query heads per KV head (GQA group size). */
    int
    GroupSize() const
    {
        return num_q_heads / num_kv_heads;
    }

    /** Validate; Fatal on inconsistent values. */
    void Validate() const;
};

/** One chunked prefill in a hybrid batch. */
struct PrefillItem
{
    /**
     * Number of new query tokens processed this iteration
     * (the prefill chunk size, paper S2.1).
     */
    int chunk_len = 0;

    /**
     * Total KV length visible to the chunk's last token, i.e. all
     * previously processed context plus this chunk. Queries attend
     * causally: token i of the chunk sees kv_len - chunk_len + i + 1
     * keys.
     */
    int kv_len = 0;

    /** Query position offset of the chunk's first token. */
    int QueryOffset() const { return kv_len - chunk_len; }

    void Validate() const;
};

/** The decode side of a hybrid batch. */
struct DecodeItem
{
    /** KV context length per decode request (one query token each). */
    std::vector<int> context_lens;

    /** Number of decode requests. */
    int BatchSize() const { return static_cast<int>(context_lens.size()); }

    /** Sum of all context lengths. */
    int64_t TotalContext() const;

    /** Uniform-context convenience constructor. */
    static DecodeItem Uniform(int batch_size, int context_len);

    void Validate() const;
};

/** A full hybrid batch: at most one prefill chunk plus decodes. */
struct HybridBatch
{
    AttnShape shape;

    /** Prefill chunks (usually zero or one; Sarathi-style batching). */
    std::vector<PrefillItem> prefills;

    /** Decode requests. */
    DecodeItem decode;

    bool HasPrefill() const { return !prefills.empty(); }
    bool HasDecode() const { return decode.BatchSize() > 0; }

    void Validate() const;

    /** Short human-readable description for logs and tables. */
    std::string Describe() const;

    /** Convenience: one prefill chunk + uniform decodes. */
    static HybridBatch Make(AttnShape shape, int chunk_len, int prefill_kv,
                            int decode_bs, int decode_ctx);
};

}  // namespace pod::kernels

#endif  // POD_KERNELS_ATTN_TYPES_H
