/**
 * @file
 * Implementation of SM-aware and naive CTA-parallel fused kernels.
 */
#include "kernels/sm_aware.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace pod::kernels {

namespace {

/** Mutable scheduling state shared by all CTAs of a fused kernel,
 * mirroring the device-memory counters of paper Fig. 9. */
struct SchedState
{
    /** Per-SM ticket counters (sm_ctr in Fig. 9). */
    std::vector<int> sm_counter;

    /** Next CTA id per op (cta_assign in Fig. 9). */
    int cta_assign[2] = {0, 0};

    std::vector<gpusim::CtaWork> works[2];
    SmAwarePolicy policy;
};

}  // namespace

SmAwarePolicy
SmAwarePolicy::Proportional(int count_a, int count_b, int max_sum)
{
    if (count_a <= 0) return SmAwarePolicy{1, std::max(1, max_sum - 1)};
    if (count_b <= 0) return SmAwarePolicy{std::max(1, max_sum - 1), 1};
    double target = static_cast<double>(count_a) / (count_a + count_b);
    SmAwarePolicy best{1, 1};
    double best_err = 1e9;
    for (int sum = 2; sum <= std::max(2, max_sum); ++sum) {
        for (int a = 1; a < sum; ++a) {
            double err = target - static_cast<double>(a) / sum;
            if (err < 0) err = -err;
            // Prefer smaller sums on ties (faster cycling per SM).
            if (err < best_err - 1e-12) {
                best_err = err;
                best = SmAwarePolicy{a, sum - a};
            }
        }
    }
    return best;
}

gpusim::KernelDesc
MakeSmAwareKernel(std::string name, gpusim::CtaResources resources,
                  std::vector<gpusim::CtaWork> works_a,
                  std::vector<gpusim::CtaWork> works_b, SmAwarePolicy policy,
                  int num_sms, int max_ctas_per_sm)
{
    POD_CHECK_ARG(num_sms > 0, "need the device SM count");
    POD_CHECK_ARG(policy.ratio_a > 0 && policy.ratio_b > 0,
                  "policy ratios must be positive");

    auto state = std::make_shared<SchedState>();
    state->sm_counter.assign(static_cast<size_t>(num_sms), 0);
    state->works[0] = std::move(works_a);
    state->works[1] = std::move(works_b);
    state->policy = policy;

    gpusim::KernelDesc desc;
    desc.name = std::move(name);
    desc.resources = resources;
    desc.cta_count = static_cast<int>(state->works[0].size() +
                                      state->works[1].size());
    desc.max_ctas_per_sm = max_ctas_per_sm;
    desc.assign = [state](int /*cta_index*/, int sm_id) -> gpusim::CtaWork {
        SchedState& s = *state;
        POD_ASSERT(sm_id >= 0 &&
                   sm_id < static_cast<int>(s.sm_counter.size()));

        // Fig. 9 lines 5-8: take a ticket on this SM and pick the op.
        int ratio = s.policy.ratio_a + s.policy.ratio_b;
        int ticket = s.sm_counter[static_cast<size_t>(sm_id)]++ % ratio;
        int op = (ticket < s.policy.ratio_a) ? 0 : 1;

        // Fig. 9 lines 10-18: claim the next CTA id for the op; if
        // the op has no CTAs left, switch to the other op.
        int cta_id = s.cta_assign[op]++;
        if (cta_id >= static_cast<int>(s.works[op].size())) {
            op = 1 - op;
            cta_id = s.cta_assign[op]++;
        }
        POD_ASSERT_MSG(cta_id < static_cast<int>(s.works[op].size()),
                       "fused kernel over-dispatched op %d", op);
        return s.works[op][static_cast<size_t>(cta_id)];
    };
    return desc;
}

gpusim::KernelDesc
MakeCtaParallelKernel(std::string name, gpusim::CtaResources resources,
                      std::vector<gpusim::CtaWork> works_a,
                      std::vector<gpusim::CtaWork> works_b,
                      int max_ctas_per_sm)
{
    // Static proportional interleaving by blockIdx; where a CTA runs
    // is entirely up to the hardware scheduler.
    std::vector<gpusim::CtaWork> works;
    works.reserve(works_a.size() + works_b.size());
    size_t na = works_a.size();
    size_t nb = works_b.size();
    size_t ia = 0;
    size_t ib = 0;
    while (ia < na || ib < nb) {
        bool take_a;
        if (ia >= na) {
            take_a = false;
        } else if (ib >= nb) {
            take_a = true;
        } else {
            take_a = ia * nb <= ib * na;
        }
        works.push_back(take_a ? std::move(works_a[ia++])
                               : std::move(works_b[ib++]));
    }
    gpusim::KernelDesc desc = gpusim::KernelDesc::FromWorks(
        std::move(name), resources, std::move(works));
    desc.max_ctas_per_sm = max_ctas_per_sm;
    return desc;
}

}  // namespace pod::kernels
