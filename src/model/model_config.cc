/**
 * @file
 * Model presets and derived sizes.
 */
#include "model/model_config.h"

#include <algorithm>

#include "common/logging.h"

namespace pod::model {

kernels::AttnShape
ModelConfig::ShapePerGpu(int tensor_parallel) const
{
    Validate(tensor_parallel);
    kernels::AttnShape shape;
    shape.num_q_heads = num_q_heads / tensor_parallel;
    // GQA KV heads are replicated when tp exceeds the KV head count;
    // the paper's configurations always have kv_heads >= tp.
    shape.num_kv_heads = std::max(1, num_kv_heads / tensor_parallel);
    shape.head_dim = head_dim;
    return shape;
}

double
ModelConfig::WeightBytesPerGpu(int tensor_parallel) const
{
    Validate(tensor_parallel);
    double h = hidden_dim;
    double qkv = h * (num_q_heads + 2.0 * num_kv_heads) * head_dim;
    double out = static_cast<double>(num_q_heads) * head_dim * h;
    double ffn = 3.0 * h * ffn_dim;  // gate, up, down
    double per_layer = (qkv + out + ffn) / tensor_parallel;
    double embed = 2.0 * h * vocab_size / tensor_parallel;  // in + lm head
    return (per_layer * num_layers + embed) * 2.0;          // FP16
}

double
ModelConfig::KvBytesPerTokenPerGpu(int tensor_parallel) const
{
    Validate(tensor_parallel);
    double kv_heads_per_gpu =
        std::max(1, num_kv_heads / tensor_parallel);
    // K and V, FP16, every layer.
    return 2.0 * 2.0 * kv_heads_per_gpu * head_dim * num_layers;
}

void
ModelConfig::Validate(int tensor_parallel) const
{
    POD_CHECK_ARG(tensor_parallel >= 1, "tensor parallel must be >= 1");
    POD_CHECK_ARG(num_q_heads % tensor_parallel == 0,
                  "query heads must divide evenly across GPUs");
    POD_CHECK_ARG(hidden_dim > 0 && num_layers > 0 && ffn_dim > 0 &&
                      vocab_size > 0,
                  "model dimensions must be positive");
    POD_CHECK_ARG(num_q_heads % num_kv_heads == 0,
                  "query heads must be a multiple of KV heads");
}

ModelConfig
ModelConfig::Yi6B()
{
    ModelConfig config;
    config.name = "Yi-6B";
    config.hidden_dim = 4096;
    config.num_layers = 32;
    config.num_q_heads = 32;
    config.num_kv_heads = 4;
    config.head_dim = 128;
    config.ffn_dim = 11008;
    config.vocab_size = 64000;
    return config;
}

ModelConfig
ModelConfig::Llama2_7B()
{
    ModelConfig config;
    config.name = "Llama-2-7B";
    config.hidden_dim = 4096;
    config.num_layers = 32;
    config.num_q_heads = 32;
    config.num_kv_heads = 32;  // MHA
    config.head_dim = 128;
    config.ffn_dim = 11008;
    config.vocab_size = 32000;
    return config;
}

ModelConfig
ModelConfig::Llama3_8B()
{
    ModelConfig config;
    config.name = "Llama-3-8B";
    config.hidden_dim = 4096;
    config.num_layers = 32;
    config.num_q_heads = 32;
    config.num_kv_heads = 8;
    config.head_dim = 128;
    config.ffn_dim = 14336;
    config.vocab_size = 128256;
    return config;
}

}  // namespace pod::model
