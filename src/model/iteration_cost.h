/**
 * @file
 * Per-iteration cost model for hybrid-batch LLM inference.
 *
 * Linear operations (projections, FFN, logits) use a roofline model:
 * time = max(FLOPs / GEMM throughput, bytes / HBM bandwidth), where
 * bytes include the per-iteration weight reads that hybrid batching
 * amortizes across prefill and decode tokens (paper S2.1). Attention
 * uses the kernel simulator through the configured backend. Tensor
 * parallelism divides heads and weights across GPUs and adds ring
 * all-reduce traffic on NVLink.
 */
#ifndef POD_MODEL_ITERATION_COST_H
#define POD_MODEL_ITERATION_COST_H

#include "core/attention.h"
#include "gpusim/gpu_spec.h"
#include "kernels/attn_types.h"
#include "model/model_config.h"

namespace pod::model {

/** Breakdown of one iteration's runtime (Fig. 4 categories). */
struct IterationBreakdown
{
    double pre_proj = 0.0;      ///< QKV projection.
    double prefill_attn = 0.0;  ///< Prefill attention.
    double decode_attn = 0.0;   ///< Decode attention.
    double post_proj = 0.0;     ///< Attention output projection.
    double ffn = 0.0;           ///< Gated FFN.
    double comm = 0.0;          ///< TP all-reduce.
    double others = 0.0;        ///< Norms, rope, sampling, logits.

    /** Combined attention time (fused backends report only this). */
    double attn_total = 0.0;

    /** Total iteration latency. */
    double total = 0.0;
};

/** Linear-op roofline costs for one layer at a given token count. */
struct LinearCosts
{
    double qkv_proj = 0.0;
    double out_proj = 0.0;
    double ffn = 0.0;
    double allreduce = 0.0;  ///< both per-layer all-reduces
    double elementwise = 0.0;
};

/**
 * Compute one layer's linear-op costs for `tokens` batch tokens.
 */
LinearCosts ComputeLinearCosts(const ModelConfig& model,
                               const gpusim::GpuSpec& spec,
                               int tensor_parallel, int tokens);

/**
 * Iteration-level cost model bound to a model, device, parallelism
 * degree and attention backend.
 */
class IterationCostModel
{
  public:
    IterationCostModel(ModelConfig model, gpusim::GpuSpec spec,
                       int tensor_parallel, core::Backend backend,
                       core::AttnRunOptions attn_options =
                           core::AttnRunOptions());

    /**
     * Cost of one iteration executing a hybrid batch.
     * @param batch per-GPU attention problem (heads already divided
     *        by tensor parallelism; use Model().ShapePerGpu()).
     * @param logit_tokens rows needing logits (sampled tokens).
     */
    IterationBreakdown Cost(const kernels::HybridBatch& batch,
                            int logit_tokens) const;

    /** Attention-only time for a batch (per layer), seconds. */
    double AttentionLayerTime(const kernels::HybridBatch& batch) const;

    const ModelConfig& Model() const { return model_; }
    const gpusim::GpuSpec& Spec() const { return spec_; }
    int TensorParallel() const { return tensor_parallel_; }
    core::Backend BackendKind() const { return backend_; }

  private:
    ModelConfig model_;
    gpusim::GpuSpec spec_;
    int tensor_parallel_;
    core::Backend backend_;
    core::AttnRunOptions attn_options_;
};

}  // namespace pod::model

#endif  // POD_MODEL_ITERATION_COST_H
