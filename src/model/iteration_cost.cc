/**
 * @file
 * Implementation of the iteration cost model.
 */
#include "model/iteration_cost.h"

#include <algorithm>

#include "common/logging.h"

namespace pod::model {

namespace {

/**
 * Large dense GEMMs reach a higher fraction of tensor-core peak than
 * attention-shaped tiles; the GpuSpec's effective throughput is
 * calibrated for attention, so linear ops get this boost
 * (calibration constant, docs/DESIGN.md S5.5).
 */
constexpr double kGemmEfficiencyBoost = 1.2;

/** Fixed per-layer latency for rope/norm kernel launches etc. */
constexpr double kPerLayerOverhead = 4e-6;

/** All-reduce base latency per invocation. */
constexpr double kAllReduceLatency = 8e-6;

/** Roofline time of one GEMM on one GPU. */
double
GemmTime(const gpusim::GpuSpec& spec, double flops, double weight_bytes,
         double activation_bytes)
{
    double compute = flops / (spec.TotalTensorFlops() *
                              kGemmEfficiencyBoost);
    double memory = (weight_bytes + activation_bytes) / spec.hbm_bandwidth;
    return std::max(compute, memory);
}

}  // namespace

LinearCosts
ComputeLinearCosts(const ModelConfig& model, const gpusim::GpuSpec& spec,
                   int tensor_parallel, int tokens)
{
    model.Validate(tensor_parallel);
    POD_CHECK_ARG(tokens >= 0, "token count must be >= 0");
    LinearCosts costs;
    if (tokens == 0) return costs;

    const double tp = tensor_parallel;
    const double t = tokens;
    const double h = model.hidden_dim;
    const double qkv_out =
        (model.num_q_heads + 2.0 * model.num_kv_heads) * model.head_dim;
    const double o_in =
        static_cast<double>(model.num_q_heads) * model.head_dim;
    const double act = t * h * 2.0;  // FP16 activations in/out

    costs.qkv_proj = GemmTime(spec, 2.0 * t * h * qkv_out / tp,
                              h * qkv_out * 2.0 / tp, act);
    costs.out_proj = GemmTime(spec, 2.0 * t * o_in * h / tp,
                              o_in * h * 2.0 / tp, act);
    // Gated FFN: gate + up + down projections.
    costs.ffn = GemmTime(spec, 3.0 * 2.0 * t * h * model.ffn_dim / tp,
                         3.0 * h * model.ffn_dim * 2.0 / tp, 2.0 * act);

    if (tensor_parallel > 1) {
        // Two ring all-reduces per layer (after attention output and
        // after the FFN): each moves 2(tp-1)/tp of the activations.
        double bytes = 2.0 * (tp - 1.0) / tp * act;
        costs.allreduce =
            2.0 * (bytes / spec.nvlink_bandwidth + kAllReduceLatency);
    }

    // Elementwise work (two norms, rope, residuals): a handful of
    // activation-sized memory passes.
    costs.elementwise = 6.0 * act / spec.hbm_bandwidth + kPerLayerOverhead;
    return costs;
}

IterationCostModel::IterationCostModel(ModelConfig model,
                                       gpusim::GpuSpec spec,
                                       int tensor_parallel,
                                       core::Backend backend,
                                       core::AttnRunOptions attn_options)
    : model_(std::move(model)),
      spec_(std::move(spec)),
      tensor_parallel_(tensor_parallel),
      backend_(backend),
      attn_options_(attn_options)
{
    model_.Validate(tensor_parallel_);
    spec_.Validate();
}

double
IterationCostModel::AttentionLayerTime(
    const kernels::HybridBatch& batch) const
{
    if (!batch.HasPrefill() && !batch.HasDecode()) return 0.0;
    core::AttnRunResult result =
        core::RunAttention(backend_, batch, spec_, attn_options_);
    return result.total_time;
}

IterationBreakdown
IterationCostModel::Cost(const kernels::HybridBatch& batch,
                         int logit_tokens) const
{
    IterationBreakdown breakdown;
    int tokens = batch.decode.BatchSize();
    for (const auto& p : batch.prefills) tokens += p.chunk_len;
    if (tokens == 0) return breakdown;

    LinearCosts linear =
        ComputeLinearCosts(model_, spec_, tensor_parallel_, tokens);
    const int layers = model_.num_layers;
    breakdown.pre_proj = linear.qkv_proj * layers;
    breakdown.post_proj = linear.out_proj * layers;
    breakdown.ffn = linear.ffn * layers;
    breakdown.comm = linear.allreduce * layers;
    breakdown.others = linear.elementwise * layers;

    // Attention: all layers share the batch geometry, so one kernel
    // simulation covers each layer.
    if (batch.HasPrefill() || batch.HasDecode()) {
        core::AttnRunResult attn =
            core::RunAttention(backend_, batch, spec_, attn_options_);
        breakdown.attn_total = attn.total_time * layers;
        // Serial backends expose per-op completion; fused backends
        // attribute everything to the overlap window.
        if (backend_ == core::Backend::kFaSerial ||
            backend_ == core::Backend::kFiSerial) {
            breakdown.prefill_attn = attn.prefill_time * layers;
            breakdown.decode_attn =
                (attn.total_time - attn.prefill_time) * layers;
        } else {
            breakdown.prefill_attn = 0.0;
            breakdown.decode_attn = 0.0;
        }
    }

    // Logits for sampled rows (decode tokens + a finishing prefill).
    if (logit_tokens > 0) {
        double logits = GemmTime(
            spec_,
            2.0 * static_cast<double>(logit_tokens) * model_.hidden_dim *
                model_.vocab_size / tensor_parallel_,
            static_cast<double>(model_.hidden_dim) * model_.vocab_size *
                2.0 / tensor_parallel_,
            static_cast<double>(logit_tokens) * model_.vocab_size * 2.0);
        breakdown.others += logits;
    }

    breakdown.total = breakdown.pre_proj + breakdown.post_proj +
                      breakdown.ffn + breakdown.comm + breakdown.others +
                      breakdown.attn_total;
    return breakdown;
}

}  // namespace pod::model
