/**
 * @file
 * LLM architecture descriptions for the models the paper evaluates
 * (Table 4): Yi-6B, Llama-2-7B and Llama-3-8B.
 */
#ifndef POD_MODEL_MODEL_CONFIG_H
#define POD_MODEL_MODEL_CONFIG_H

#include <string>

#include "kernels/attn_types.h"

namespace pod::model {

/** Transformer architecture parameters. */
struct ModelConfig
{
    std::string name = "model";

    /** Hidden (embedding) dimension. */
    int hidden_dim = 4096;

    /** Transformer layers. */
    int num_layers = 32;

    /** Query heads (whole model, before tensor parallelism). */
    int num_q_heads = 32;

    /** KV heads (GQA). */
    int num_kv_heads = 8;

    /** Head dimension. */
    int head_dim = 128;

    /** FFN intermediate dimension (gated: gate+up+down projections). */
    int ffn_dim = 14336;

    /** Vocabulary size (logits GEMM). */
    int vocab_size = 128256;

    /** Per-GPU attention shape under tensor parallelism. */
    kernels::AttnShape ShapePerGpu(int tensor_parallel) const;

    /** Per-GPU weight footprint in bytes (FP16). */
    double WeightBytesPerGpu(int tensor_parallel) const;

    /** Per-GPU KV-cache bytes for one token across all layers. */
    double KvBytesPerTokenPerGpu(int tensor_parallel) const;

    /** Validate; Fatal on inconsistency. */
    void Validate(int tensor_parallel) const;

    /** Yi-6B: 32 q heads, 4 KV heads (paper: 1 A100). */
    static ModelConfig Yi6B();

    /** Llama-2-7B: MHA, 32 KV heads (paper: 2 A100s, TP). */
    static ModelConfig Llama2_7B();

    /** Llama-3-8B: 8 KV heads (paper: 2 A100s, TP). */
    static ModelConfig Llama3_8B();
};

}  // namespace pod::model

#endif  // POD_MODEL_MODEL_CONFIG_H
