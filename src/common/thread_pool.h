/**
 * @file
 * A small persistent worker pool with a fork/join ParallelFor — the
 * execution substrate of the parallel cluster engine
 * (docs/DESIGN.md S8).
 *
 * Design constraints, in order:
 *  1. Determinism-friendly: ParallelFor is a barrier. Every task of
 *     one call completes (and its writes are visible to the caller)
 *     before the call returns; no task of a later call can overlap a
 *     task of an earlier one. Callers that give each index a disjoint
 *     slice of state therefore get bit-identical results at any
 *     thread count, including 1.
 *  2. Reusable across epochs: workers are spawned once and parked on
 *     a condition variable between calls, so a simulation issuing
 *     hundreds of thousands of small barriers pays wakeup cost, not
 *     thread-spawn cost.
 *  3. Honest failure: an exception thrown by any task is captured and
 *     rethrown from ParallelFor on the calling thread after the
 *     barrier (first-capture wins; the remaining indices still run,
 *     keeping the pool reusable afterwards).
 */
#ifndef POD_COMMON_THREAD_POOL_H
#define POD_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/telemetry/profiler.h"

namespace pod {

/**
 * Persistent fork/join worker pool.
 *
 * `num_threads` counts *executing* threads: the calling thread
 * participates in every ParallelFor, so a pool of N spawns N-1
 * workers. A pool of 1 spawns none and runs every task inline on the
 * caller — the degenerate path the serial engines use, with zero
 * synchronization.
 *
 * Not itself thread-safe: one thread drives a given pool (concurrent
 * ParallelFor calls on one pool are a caller bug).
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads total executing threads, >= 1. Values above
     *        the hardware concurrency are allowed (useful for
     *        schedule-stress tests) but oversubscribe.
     */
    explicit ThreadPool(int num_threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int NumThreads() const { return num_threads_; }

    /**
     * Run task(0) .. task(count - 1), each exactly once, distributed
     * over the pool; returns only when all have completed (the
     * barrier). Indices are claimed dynamically, so per-index
     * ordering across threads is unspecified — tasks must not depend
     * on each other. Rethrows the first exception a task raised.
     */
    void ParallelFor(int count, const std::function<void(int)>& task);

    /**
     * Convenience clamp for a thread-count knob: 0 (or less) means
     * "all hardware threads", and the result is always >= 1 even when
     * hardware_concurrency() reports 0 (permitted by the standard).
     */
    static int ResolveThreads(int requested);

    /**
     * Toggle per-thread wall-clock profiling (docs/OBSERVABILITY.md).
     * When on, every ParallelFor splits each executing thread's time
     * into task-execution (`busy`) and end-of-epoch idle
     * (`barrier_wait` — from its last task finishing to the epoch's
     * last task finishing). When off (default), no clock is read.
     * Call only between ParallelFor calls, from the driving thread.
     */
    void EnableProfiling(bool on);

    /**
     * Per-executing-thread profile accumulated since the last
     * ResetProfile(); index 0 is the calling thread. All-zero unless
     * EnableProfiling(true). Read only between ParallelFor calls.
     */
    const std::vector<telemetry::ThreadStat>& Profile() const
    {
        return profile_;
    }

    void ResetProfile();

  private:
    void WorkerLoop(int slot);

    /** Claim indices until the epoch's range is exhausted. */
    void RunTasks(int slot);

    const int num_threads_;

    std::mutex mu_;
    std::condition_variable work_cv_;   ///< workers wait for an epoch
    std::condition_variable done_cv_;   ///< caller waits for workers

    // Epoch state (guarded by mu_ except where noted).
    const std::function<void(int)>* task_ = nullptr;
    int count_ = 0;
    std::atomic<int> next_{0};          ///< next unclaimed index
    int workers_done_ = 0;              ///< workers finished this epoch
    long epoch_ = 0;
    bool stop_ = false;
    std::exception_ptr error_;

    // Profiling state (see EnableProfiling). `finish_time_[slot]` is
    // written by its owning thread under mu_ during the epoch and
    // read by the caller after the barrier.
    bool profiling_ = false;
    std::vector<telemetry::ThreadStat> profile_;
    std::vector<double> finish_time_;

    std::vector<std::thread> workers_;
};

}  // namespace pod

#endif  // POD_COMMON_THREAD_POOL_H
