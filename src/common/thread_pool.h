/**
 * @file
 * A small persistent worker pool with two fork/join entry points —
 * the execution substrate of the parallel cluster engine
 * (docs/DESIGN.md S8): `ParallelFor` (one indivisible task per index,
 * dynamic claiming) and `ParallelForTasks` (resumable tasks on
 * per-thread deques with cost-guided seeding and work stealing).
 *
 * Design constraints, in order:
 *  1. Determinism-friendly: both entry points are barriers. Every
 *     task of one call completes (and its writes are visible to the
 *     caller) before the call returns; no task of a later call can
 *     overlap a task of an earlier one; and one task index is never
 *     executed by two threads at once — a resumable task migrates
 *     between threads only across slice boundaries, through a mutex.
 *     Callers that give each index a disjoint slice of state
 *     therefore get bit-identical results at any thread count,
 *     including 1.
 *  2. Reusable across epochs: workers are spawned once and parked on
 *     a condition variable between calls, so a simulation issuing
 *     hundreds of thousands of small barriers pays wakeup cost, not
 *     thread-spawn cost.
 *  3. Honest failure: an exception thrown by any task is captured and
 *     rethrown from the entry point on the calling thread after the
 *     barrier (first-capture wins; the remaining indices still run,
 *     keeping the pool reusable afterwards).
 */
#ifndef POD_COMMON_THREAD_POOL_H
#define POD_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/telemetry/profiler.h"

namespace pod {

/**
 * Persistent fork/join worker pool.
 *
 * `num_threads` counts *executing* threads: the calling thread
 * participates in every ParallelFor, so a pool of N spawns N-1
 * workers. A pool of 1 spawns none and runs every task inline on the
 * caller — the degenerate path the serial engines use, with zero
 * synchronization.
 *
 * Not itself thread-safe: one thread drives a given pool (concurrent
 * ParallelFor calls on one pool are a caller bug).
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads total executing threads, >= 1. Values above
     *        the hardware concurrency are allowed (useful for
     *        schedule-stress tests) but oversubscribe.
     */
    explicit ThreadPool(int num_threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int NumThreads() const { return num_threads_; }

    /**
     * Run task(0) .. task(count - 1), each exactly once, distributed
     * over the pool; returns only when all have completed (the
     * barrier). Indices are claimed dynamically, so per-index
     * ordering across threads is unspecified — tasks must not depend
     * on each other. Rethrows the first exception a task raised.
     */
    void ParallelFor(int count, const std::function<void(int)>& task);

    /**
     * One unit of resubmittable work for ParallelForTasks:
     * `estimated_work` is a relative cost estimate in arbitrary
     * units used only for scheduling (longest-processing-time-first
     * seeding) — it never affects which work runs, only where.
     */
    struct SeededTask
    {
        int index = 0;
        double estimated_work = 0.0;
    };

    /**
     * Work-stealing counterpart of ParallelFor for *resumable* tasks.
     * `task(index)` runs one bounded slice of task `index` and
     * returns true when that task is finished; returning false
     * requeues it (to the front of the executing thread's own deque,
     * so the executor continues its chain with locality while the
     * tail stays exposed to thieves).
     *
     * Scheduling: tasks are sorted by descending `estimated_work`
     * (stable, so ties keep caller order) and dealt greedily onto the
     * least-loaded per-thread deque (LPT) so the fattest task starts
     * first instead of last. An owner pops its own deque from the
     * front; a thread whose deque is empty steals from the back of
     * another's (Chase-Lev orientation, mutex-guarded — slice
     * granularity is coarse enough that lock cost is noise and the
     * mutex keeps the handoff trivially race-free under TSan).
     *
     * Contract (the determinism story, docs/DESIGN.md S8.4):
     *  - every task index runs until its callable returns true;
     *  - slices of one index never overlap in time — each task exists
     *    exactly once in the system (queued or executing), so its
     *    slice sequence is serialized no matter which threads run it,
     *    and each cross-thread migration is ordered by a deque mutex;
     *  - a slice that throws counts as finished (never requeued);
     *    the first exception is rethrown after the barrier, all other
     *    tasks still complete, and the pool stays reusable — same
     *    semantics as ParallelFor. With num_threads == 1 (or a single
     *    task) everything runs inline on the caller in seeded order
     *    and exceptions propagate directly.
     */
    void ParallelForTasks(const std::vector<SeededTask>& tasks,
                          const std::function<bool(int)>& task);

    /**
     * Convenience clamp for a thread-count knob: 0 (or less) means
     * "all hardware threads", and the result is always >= 1 even when
     * hardware_concurrency() reports 0 (permitted by the standard).
     */
    static int ResolveThreads(int requested);

    /**
     * Toggle per-thread wall-clock profiling (docs/OBSERVABILITY.md).
     * When on, every epoch splits each executing thread's time into
     * own-work execution (`busy`), stolen-slice execution
     * (`steal_busy`, ParallelForTasks only) and end-of-epoch idle
     * (`barrier_wait` — from its last task finishing to the epoch's
     * last task finishing). When off (default), no clock is read.
     * Call only between epochs, from the driving thread.
     */
    void EnableProfiling(bool on);

    /**
     * Snapshot of the per-executing-thread profile accumulated since
     * the last ResetProfile(); index 0 is the calling thread.
     * All-zero unless EnableProfiling(true).
     *
     * Returned by value, copied under the pool mutex: the previous
     * by-reference accessor handed out a live view that the workers'
     * end-of-epoch folds mutate, so holding it across a later
     * ParallelFor / ParallelForTasks round was a data race — easy to
     * hit under work stealing, where threads leave an epoch at
     * staggered times. The snapshot is coherent (taken between the
     * epoch's final fold and the next epoch's first).
     */
    std::vector<telemetry::ThreadStat> Profile() const;

    void ResetProfile();

  private:
    /** One thread's task queue: front = owner end, back = thief end. */
    struct StealDeque
    {
        std::mutex mu;
        std::deque<int> items;
    };

    void WorkerLoop(int slot);

    /** Claim indices until the epoch's range is exhausted. */
    void RunTasks(int slot);

    /**
     * Pop own deque front / steal from others' backs until no queued
     * work remains anywhere (ParallelForTasks epochs).
     */
    void RunStealTasks(int slot);

    const int num_threads_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;   ///< workers wait for an epoch
    std::condition_variable done_cv_;   ///< caller waits for workers

    // Epoch state (guarded by mu_ except where noted).
    const std::function<void(int)>* task_ = nullptr;
    int count_ = 0;
    std::atomic<int> next_{0};          ///< next unclaimed index
    int workers_done_ = 0;              ///< workers finished this epoch
    long epoch_ = 0;
    bool stealing_ = false;             ///< current epoch's mode
    bool stop_ = false;
    std::exception_ptr error_;

    // Work-stealing state. The caller seeds `deques_` under mu_
    // before publishing the epoch (workers acquire mu_ to observe the
    // epoch, ordering the seed writes); afterwards each deque is
    // touched only under its own mutex. `sorted_` and `load_` are
    // caller-only scratch kept hot across epochs.
    const std::function<bool(int)>* resumable_ = nullptr;
    std::vector<std::unique_ptr<StealDeque>> deques_;
    std::vector<SeededTask> sorted_;
    std::vector<double> load_;

    // Profiling state (see EnableProfiling). `finish_time_[slot]` is
    // written by its owning thread under mu_ during the epoch and
    // read by the caller after the barrier.
    bool profiling_ = false;
    std::vector<telemetry::ThreadStat> profile_;
    std::vector<double> finish_time_;

    std::vector<std::thread> workers_;
};

}  // namespace pod

#endif  // POD_COMMON_THREAD_POOL_H
