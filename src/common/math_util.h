/**
 * @file
 * Small integer and floating-point math helpers shared across modules.
 */
#ifndef POD_COMMON_MATH_UTIL_H
#define POD_COMMON_MATH_UTIL_H

#include <cstdint>
#include <type_traits>

namespace pod {

/** Integer ceiling division for non-negative operands. */
template <typename T>
constexpr T
CeilDiv(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

/** Round a up to the nearest multiple of b. */
template <typename T>
constexpr T
RoundUp(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return CeilDiv(a, b) * b;
}

/** Round a down to the nearest multiple of b. */
template <typename T>
constexpr T
RoundDown(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a / b) * b;
}

/** Clamp v into [lo, hi]. */
template <typename T>
constexpr T
Clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** True if |a - b| <= tol * max(1, |a|, |b|). */
inline bool
ApproxEqual(double a, double b, double tol = 1e-9)
{
    double scale = 1.0;
    double fa = a < 0 ? -a : a;
    double fb = b < 0 ? -b : b;
    if (fa > scale) scale = fa;
    if (fb > scale) scale = fb;
    double diff = a - b;
    if (diff < 0) diff = -diff;
    return diff <= tol * scale;
}

}  // namespace pod

#endif  // POD_COMMON_MATH_UTIL_H
