/**
 * @file
 * Summary statistics and percentile accumulators used by the
 * benchmarks and the serving metrics collector.
 */
#ifndef POD_COMMON_STATS_H
#define POD_COMMON_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace pod {

/**
 * Accumulates scalar samples and reports summary statistics.
 *
 * Samples are retained so exact percentiles can be computed; suitable
 * for the sample counts this library handles (millions at most).
 */
class SampleStats
{
  public:
    /** Add one sample. */
    void Add(double value);

    /** Add many samples. */
    void AddAll(const std::vector<double>& values);

    /** Number of samples recorded. */
    size_t Count() const { return samples_.size(); }

    /** Arithmetic mean (0 if empty). */
    double Mean() const;

    /** Population standard deviation (0 if fewer than 2 samples). */
    double Stddev() const;

    /** Minimum sample (0 if empty). */
    double Min() const;

    /** Maximum sample (0 if empty). */
    double Max() const;

    /** Sum of all samples. */
    double Sum() const;

    /**
     * Exact percentile via linear interpolation between order
     * statistics. @param p in [0, 100].
     */
    double Percentile(double p) const;

    /** Median, shorthand for Percentile(50). */
    double Median() const { return Percentile(50.0); }

    /** Fraction of samples strictly greater than the threshold. */
    double FractionAbove(double threshold) const;

    /** Access to raw samples (sorted on demand internally). */
    const std::vector<double>& Samples() const { return samples_; }

    /** Reset to empty. */
    void Clear();

    /** One-line human-readable summary. */
    std::string Summary() const;

  private:
    /** Sort the retained samples if new ones arrived since last sort. */
    void EnsureSorted() const;

    std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Fixed-bin histogram accumulator for million-sample telemetry.
 *
 * Unlike SampleStats it retains no samples: Add() is O(1) and the
 * footprint is the bin array, so it suits counters that see one
 * sample per simulated token or iteration. Percentiles are estimated
 * by linear interpolation inside the covering bin (error bounded by
 * the bin width); exact min/max/mean are tracked alongside.
 *
 * Samples below `lo` or at/above `hi` land in dedicated underflow /
 * overflow bins and still count toward the moments and percentiles
 * (clamped to the observed min/max).
 */
class HistogramStats
{
  public:
    /**
     * @param lo inclusive lower bound of the binned range.
     * @param hi exclusive upper bound, > lo.
     * @param num_bins number of equal-width bins, >= 1.
     */
    HistogramStats(double lo, double hi, int num_bins);

    /** Record one sample. O(1), no allocation. */
    void Add(double value);

    long Count() const { return count_; }

    /** Arithmetic mean (0 if empty). Exact, not bin-estimated. */
    double Mean() const;

    /** Minimum sample (0 if empty). Exact. */
    double Min() const;

    /** Maximum sample (0 if empty). Exact. */
    double Max() const;

    /** Sum of all samples. Exact. */
    double Sum() const { return sum_; }

    /** Samples below the binned range. */
    long Underflow() const { return underflow_; }

    /** Samples at or above the binned range. */
    long Overflow() const { return overflow_; }

    /**
     * Estimated percentile (p in [0, 100]) by linear interpolation
     * within the covering bin; clamped to the exact observed
     * [Min(), Max()]. 0 if empty.
     */
    double Percentile(double p) const;

    /** Per-bin counts (excludes the underflow/overflow bins). */
    const std::vector<long>& Bins() const { return bins_; }

    /** Inclusive lower edge of bin i. */
    double BinLow(int i) const;

    /** Exclusive upper edge of bin i. */
    double BinHigh(int i) const { return BinLow(i + 1); }

    /**
     * Fold another histogram in. The two must have identical bin
     * geometry (lo, hi, bin count).
     */
    void Merge(const HistogramStats& other);

    /** Reset to empty, keeping the bin geometry. */
    void Clear();

    /** One-line human-readable summary. */
    std::string Summary() const;

  private:
    double lo_;
    double hi_;
    double bin_width_;
    std::vector<long> bins_;
    long underflow_ = 0;
    long overflow_ = 0;
    long count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double GeoMean(const std::vector<double>& values);

}  // namespace pod

#endif  // POD_COMMON_STATS_H
