/**
 * @file
 * Summary statistics and percentile accumulators used by the
 * benchmarks and the serving metrics collector.
 */
#ifndef POD_COMMON_STATS_H
#define POD_COMMON_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace pod {

/**
 * Accumulates scalar samples and reports summary statistics.
 *
 * Samples are retained so exact percentiles can be computed; suitable
 * for the sample counts this library handles (millions at most).
 */
class SampleStats
{
  public:
    /** Add one sample. */
    void Add(double value);

    /** Add many samples. */
    void AddAll(const std::vector<double>& values);

    /** Number of samples recorded. */
    size_t Count() const { return samples_.size(); }

    /** Arithmetic mean (0 if empty). */
    double Mean() const;

    /** Population standard deviation (0 if fewer than 2 samples). */
    double Stddev() const;

    /** Minimum sample (0 if empty). */
    double Min() const;

    /** Maximum sample (0 if empty). */
    double Max() const;

    /** Sum of all samples. */
    double Sum() const;

    /**
     * Exact percentile via linear interpolation between order
     * statistics. @param p in [0, 100].
     */
    double Percentile(double p) const;

    /** Median, shorthand for Percentile(50). */
    double Median() const { return Percentile(50.0); }

    /** Fraction of samples strictly greater than the threshold. */
    double FractionAbove(double threshold) const;

    /** Access to raw samples (sorted on demand internally). */
    const std::vector<double>& Samples() const { return samples_; }

    /** Reset to empty. */
    void Clear();

    /** One-line human-readable summary. */
    std::string Summary() const;

  private:
    /** Sort the retained samples if new ones arrived since last sort. */
    void EnsureSorted() const;

    std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double GeoMean(const std::vector<double>& values);

}  // namespace pod

#endif  // POD_COMMON_STATS_H
