/**
 * @file
 * Implementation of the console table / CSV writer.
 */
#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace pod {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    POD_CHECK_ARG(!headers_.empty(), "table needs at least one column");
}

void
Table::AddRow(std::vector<std::string> cells)
{
    POD_CHECK_ARG(cells.size() == headers_.size(),
                  "row width must match header count");
    rows_.push_back(std::move(cells));
}

void
Table::Print(std::ostream& os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto print_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                for (size_t pad = row[c].size(); pad < widths[c] + 2; ++pad) {
                    os << ' ';
                }
            }
        }
        os << '\n';
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    for (size_t i = 0; i < total; ++i) os << '-';
    os << '\n';
    for (const auto& row : rows_) {
        print_row(row);
    }
}

namespace {

/** Quote a CSV cell if it contains separators or quotes. */
std::string
CsvEscape(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos) {
        return cell;
    }
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') out += "\"\"";
        else out += ch;
    }
    out += '"';
    return out;
}

}  // namespace

void
Table::PrintCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << CsvEscape(row[c]);
            if (c + 1 < row.size()) os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
}

bool
Table::WriteCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        Warn("could not open %s for writing", path.c_str());
        return false;
    }
    PrintCsv(out);
    return static_cast<bool>(out);
}

std::string
Table::Num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
}

std::string
Table::Int(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return std::string(buf);
}

std::string
Table::Pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return std::string(buf);
}

}  // namespace pod
