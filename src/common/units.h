/**
 * @file
 * Unit constants and formatting helpers.
 *
 * The library's internal units are: seconds for time, bytes for data,
 * FLOPs for compute work, bytes/second and FLOP/s for rates.
 */
#ifndef POD_COMMON_UNITS_H
#define POD_COMMON_UNITS_H

#include <cstdint>
#include <string>

namespace pod {

// -------- data sizes --------
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

// -------- compute rates --------
inline constexpr double kTeraFlops = 1e12;
inline constexpr double kGigaFlops = 1e9;

// -------- time --------
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;

/** Convert seconds to milliseconds. */
inline constexpr double ToMs(double seconds) { return seconds * 1e3; }

/** Convert seconds to microseconds. */
inline constexpr double ToUs(double seconds) { return seconds * 1e6; }

/** Format seconds as an adaptive human string ("1.23 ms"). */
std::string FormatTime(double seconds);

/** Format a byte count as an adaptive human string ("1.5 GiB"). */
std::string FormatBytes(double bytes);

/** Format a rate (unit/s) with an SI prefix ("312 T", "1.9 G"). */
std::string FormatRate(double per_second, const char* unit);

}  // namespace pod

#endif  // POD_COMMON_UNITS_H
