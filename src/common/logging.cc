/**
 * @file
 * Implementation of the logging channels.
 */
#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace pod {

namespace {

LogLevel ReadInitialLevel()
{
    const char* env = std::getenv("POD_LOG_LEVEL");
    if (env == nullptr) {
        return LogLevel::kWarn;
    }
    int v = std::atoi(env);
    if (v < 0) v = 0;
    if (v > 4) v = 4;
    return static_cast<LogLevel>(v);
}

LogLevel& MutableLevel()
{
    static LogLevel level = ReadInitialLevel();
    return level;
}

void VEmit(const char* tag, const char* fmt, va_list args)
{
    std::fprintf(stderr, "[%s] ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

}  // namespace

LogLevel
GetLogLevel()
{
    return MutableLevel();
}

void
SetLogLevel(LogLevel level)
{
    MutableLevel() = level;
}

void
Panic(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VEmit("PANIC", fmt, args);
    va_end(args);
    std::abort();
}

void
Fatal(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VEmit("FATAL", fmt, args);
    va_end(args);
    std::exit(1);
}

void
Warn(const char* fmt, ...)
{
    if (GetLogLevel() < LogLevel::kWarn) return;
    va_list args;
    va_start(args, fmt);
    VEmit("warn", fmt, args);
    va_end(args);
}

void
Inform(const char* fmt, ...)
{
    if (GetLogLevel() < LogLevel::kInfo) return;
    va_list args;
    va_start(args, fmt);
    VEmit("info", fmt, args);
    va_end(args);
}

void
Debug(const char* fmt, ...)
{
    if (GetLogLevel() < LogLevel::kDebug) return;
    va_list args;
    va_start(args, fmt);
    VEmit("debug", fmt, args);
    va_end(args);
}

}  // namespace pod
