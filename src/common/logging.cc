/**
 * @file
 * Implementation of the logging channels.
 *
 * Thread safety: the serving stack emits warnings from worker-pool
 * threads (the parallel cluster engine, docs/DESIGN.md S8), so each
 * message is formatted into a private buffer and written to stderr as
 * a single fwrite under a process-wide mutex — concurrent messages
 * serialize whole, never interleaving mid-line
 * (tests/common/logging_test.cc::ConcurrentEmissionKeepsLinesIntact).
 * The level itself is atomic so readers on pool threads race-freely
 * observe runtime SetLogLevel() calls.
 */
#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pod {

namespace {

LogLevel
ReadInitialLevel()
{
    const char* env = std::getenv("POD_LOG_LEVEL");
    if (env == nullptr) {
        return LogLevel::kWarn;
    }
    int v = std::atoi(env);
    if (v < 0) v = 0;
    if (v > 4) v = 4;
    return static_cast<LogLevel>(v);
}

std::atomic<int>&
AtomicLevel()
{
    static std::atomic<int> level{static_cast<int>(ReadInitialLevel())};
    return level;
}

std::mutex&
EmitMutex()
{
    static std::mutex mu;
    return mu;
}

void
VEmit(const char* tag, const char* fmt, va_list args)
{
    // Format the whole line privately, then write it in one locked
    // call: a message from another thread can precede or follow this
    // one but never split it.
    char buf[1024];
    int off = std::snprintf(buf, sizeof(buf), "[%s] ", tag);
    if (off < 0) off = 0;
    int body = std::vsnprintf(buf + off, sizeof(buf) - 1 -
                                             static_cast<size_t>(off),
                              fmt, args);
    size_t len = body < 0 ? static_cast<size_t>(off)
                          : std::min(sizeof(buf) - 1,
                                     static_cast<size_t>(off + body));
    buf[len] = '\n';

    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fwrite(buf, 1, len + 1, stderr);
    std::fflush(stderr);
}

}  // namespace

LogLevel
GetLogLevel()
{
    return static_cast<LogLevel>(
        AtomicLevel().load(std::memory_order_relaxed));
}

void
SetLogLevel(LogLevel level)
{
    AtomicLevel().store(static_cast<int>(level),
                        std::memory_order_relaxed);
}

void
Panic(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VEmit("PANIC", fmt, args);
    va_end(args);
    std::abort();
}

void
Fatal(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VEmit("FATAL", fmt, args);
    va_end(args);
    std::exit(1);
}

void
Warn(const char* fmt, ...)
{
    if (GetLogLevel() < LogLevel::kWarn) return;
    va_list args;
    va_start(args, fmt);
    VEmit("warn", fmt, args);
    va_end(args);
}

void
Inform(const char* fmt, ...)
{
    if (GetLogLevel() < LogLevel::kInfo) return;
    va_list args;
    va_start(args, fmt);
    VEmit("info", fmt, args);
    va_end(args);
}

void
Debug(const char* fmt, ...)
{
    if (GetLogLevel() < LogLevel::kDebug) return;
    va_list args;
    va_start(args, fmt);
    VEmit("debug", fmt, args);
    va_end(args);
}

}  // namespace pod
