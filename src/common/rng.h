/**
 * @file
 * Deterministic, seedable random number generation.
 *
 * All stochastic behaviour in the library (hardware CTA placement
 * tie-breaking, workload generation, Poisson arrivals) flows through
 * this wrapper so experiments are reproducible bit-for-bit given a seed.
 */
#ifndef POD_COMMON_RNG_H
#define POD_COMMON_RNG_H

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace pod {

/**
 * A seedable pseudo-random generator with convenience draws.
 *
 * Thin wrapper over std::mt19937_64; copyable so simulations can fork
 * deterministic sub-streams.
 */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed seed). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    UniformInt(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    UniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    Bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    /** Exponentially distributed inter-arrival gap with the given rate. */
    double
    Exponential(double rate)
    {
        std::exponential_distribution<double> dist(rate);
        return dist(engine_);
    }

    /** Normal draw. */
    double
    Normal(double mean, double stddev)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /**
     * Log-normal draw parameterized by the desired mean and standard
     * deviation of the resulting distribution (not of the underlying
     * normal), convenient for skewed context-length distributions.
     */
    double LogNormalByMoments(double mean, double stddev);

    /** Pick an index in [0, weights.size()) with the given weights. */
    size_t Weighted(const std::vector<double>& weights);

    /** Shuffle a vector in place. */
    template <typename T>
    void
    Shuffle(std::vector<T>& v)
    {
        std::shuffle(v.begin(), v.end(), engine_);
    }

    /** Access the raw engine (for std distributions). */
    std::mt19937_64& Engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace pod

#endif  // POD_COMMON_RNG_H
