/**
 * @file
 * Implementation of non-inline Rng draws.
 */
#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pod {

double
Rng::LogNormalByMoments(double mean, double stddev)
{
    POD_CHECK_ARG(mean > 0.0, "log-normal mean must be positive");
    // Convert target moments to the underlying normal's (mu, sigma).
    double variance = stddev * stddev;
    double sigma2 = std::log(1.0 + variance / (mean * mean));
    double mu = std::log(mean) - 0.5 * sigma2;
    std::lognormal_distribution<double> dist(mu, std::sqrt(sigma2));
    return dist(engine_);
}

size_t
Rng::Weighted(const std::vector<double>& weights)
{
    POD_CHECK_ARG(!weights.empty(), "weights must be non-empty");
    double total = 0.0;
    for (double w : weights) {
        POD_CHECK_ARG(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    POD_CHECK_ARG(total > 0.0, "weights must not all be zero");
    double r = UniformReal(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc) {
            return i;
        }
    }
    return weights.size() - 1;
}

}  // namespace pod
