/**
 * @file
 * Implementation of unit formatting helpers.
 */
#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace pod {

std::string
FormatTime(double seconds)
{
    char buf[64];
    double abs = std::fabs(seconds);
    if (abs >= 1.0) {
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    } else if (abs >= 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
    } else if (abs >= 1e-6) {
        std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f ns", seconds * 1e9);
    }
    return std::string(buf);
}

std::string
FormatBytes(double bytes)
{
    char buf[64];
    double abs = std::fabs(bytes);
    if (abs >= kGiB) {
        std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / kGiB);
    } else if (abs >= kMiB) {
        std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / kMiB);
    } else if (abs >= kKiB) {
        std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / kKiB);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
    }
    return std::string(buf);
}

std::string
FormatRate(double per_second, const char* unit)
{
    char buf[64];
    double abs = std::fabs(per_second);
    if (abs >= 1e12) {
        std::snprintf(buf, sizeof(buf), "%.2f T%s/s", per_second / 1e12,
                      unit);
    } else if (abs >= 1e9) {
        std::snprintf(buf, sizeof(buf), "%.2f G%s/s", per_second / 1e9,
                      unit);
    } else if (abs >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.2f M%s/s", per_second / 1e6,
                      unit);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f %s/s", per_second, unit);
    }
    return std::string(buf);
}

}  // namespace pod
