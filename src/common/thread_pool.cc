/**
 * @file
 * Implementation of the persistent fork/join pool.
 */
#include "common/thread_pool.h"

#include "common/logging.h"

namespace pod {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads)
{
    POD_CHECK_ARG(num_threads >= 1,
                  "thread pool needs at least one thread");
    workers_.reserve(static_cast<size_t>(num_threads - 1));
    for (int i = 0; i < num_threads - 1; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
}

int
ThreadPool::ResolveThreads(int requested)
{
    if (requested >= 1) return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

void
ThreadPool::RunTasks()
{
    // Dynamic index claiming: fine for this library's use, where a
    // "task" is advancing one replica for a whole time window (coarse
    // and uneven), so stealing granularity matters more than locality.
    int i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) <
           count_) {
        try {
            (*task_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_) error_ = std::current_exception();
        }
    }
}

void
ThreadPool::WorkerLoop()
{
    long seen_epoch = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                return stop_ || epoch_ != seen_epoch;
            });
            if (stop_) return;
            seen_epoch = epoch_;
        }
        RunTasks();
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++workers_done_;
        }
        done_cv_.notify_one();
    }
}

void
ThreadPool::ParallelFor(int count, const std::function<void(int)>& task)
{
    if (count <= 0) return;
    if (num_threads_ == 1 || count == 1) {
        // Inline degenerate path: no synchronization, exceptions
        // propagate directly.
        for (int i = 0; i < count; ++i) task(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        task_ = &task;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        workers_done_ = 0;
        error_ = nullptr;
        ++epoch_;
    }
    work_cv_.notify_all();

    RunTasks();  // the caller is one of the executing threads

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] {
            return workers_done_ ==
                   static_cast<int>(workers_.size());
        });
        task_ = nullptr;
        error = error_;
        error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
}

}  // namespace pod
