/**
 * @file
 * Implementation of the persistent fork/join pool.
 */
#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace pod {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads)
{
    POD_CHECK_ARG(num_threads >= 1,
                  "thread pool needs at least one thread");
    profile_.assign(static_cast<size_t>(num_threads),
                    telemetry::ThreadStat{});
    finish_time_.assign(static_cast<size_t>(num_threads), 0.0);
    deques_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
        deques_.push_back(std::make_unique<StealDeque>());
    }
    workers_.reserve(static_cast<size_t>(num_threads - 1));
    for (int i = 0; i < num_threads - 1; ++i) {
        workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
}

int
ThreadPool::ResolveThreads(int requested)
{
    if (requested >= 1) return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

void
ThreadPool::EnableProfiling(bool on)
{
    // The mutex pairs this write with the workers' epoch-wait
    // acquisition; the contract (call between ParallelFor rounds from
    // the driving thread) rules out mid-epoch toggles.
    std::lock_guard<std::mutex> lock(mu_);
    profiling_ = on;
}

std::vector<telemetry::ThreadStat>
ThreadPool::Profile() const
{
    // Copy under mu_: a by-reference view handed out between epochs
    // would be mutated by the next epoch's worker folds while the
    // holder reads it. A locked snapshot makes any interleaving of
    // reads and rounds safe.
    std::lock_guard<std::mutex> lock(mu_);
    return profile_;
}

void
ThreadPool::ResetProfile()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& stat : profile_) stat = telemetry::ThreadStat{};
}

void
ThreadPool::RunTasks(int slot)
{
    // Dynamic index claiming: fine for this library's use, where a
    // "task" is advancing one replica for a whole time window (coarse
    // and uneven), so stealing granularity matters more than locality.
    const bool prof = profiling_;
    double busy = 0.0;
    long tasks = 0;
    int i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) <
           count_) {
        const double t0 = prof ? telemetry::WallSeconds() : 0.0;
        try {
            (*task_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_) error_ = std::current_exception();
        }
        if (prof) {
            busy += telemetry::WallSeconds() - t0;
            ++tasks;
        }
    }
    if (prof) {
        // Timestamp the moment this thread ran out of work; after the
        // barrier the caller turns it into barrier-wait time.
        const double finished = telemetry::WallSeconds();
        const auto s = static_cast<size_t>(slot);
        std::lock_guard<std::mutex> lock(mu_);
        profile_[s].busy += busy;
        profile_[s].tasks += tasks;
        finish_time_[s] = finished;
    }
}

void
ThreadPool::RunStealTasks(int slot)
{
    const bool prof = profiling_;
    double busy = 0.0;
    double steal_busy = 0.0;
    long tasks = 0;
    long steals = 0;
    StealDeque& own = *deques_[static_cast<size_t>(slot)];
    while (true) {
        int index = -1;
        bool stolen = false;
        {
            std::lock_guard<std::mutex> lock(own.mu);
            if (!own.items.empty()) {
                index = own.items.front();
                own.items.pop_front();
            }
        }
        if (index < 0) {
            // Own deque drained: scan the neighbours round-robin and
            // steal from the thief end (the victim's smallest
            // remaining estimate — its owner keeps the fat front).
            for (int k = 1; k < num_threads_ && index < 0; ++k) {
                StealDeque& victim =
                    *deques_[static_cast<size_t>((slot + k) %
                                                 num_threads_)];
                std::lock_guard<std::mutex> lock(victim.mu);
                if (!victim.items.empty()) {
                    index = victim.items.back();
                    victim.items.pop_back();
                    stolen = true;
                }
            }
        }
        if (index < 0) {
            // Nothing queued anywhere. Any still-unfinished task is
            // executing on some thread right now, and a not-done
            // slice requeues to the *front of its executor's own
            // deque* — the executor pops it straight back, so no
            // durable work can reappear for us. Leaving the epoch is
            // safe and keeps idle threads parked instead of spinning.
            break;
        }
        const double t0 = prof ? telemetry::WallSeconds() : 0.0;
        bool done = true;
        try {
            done = (*resumable_)(index);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_) error_ = std::current_exception();
            // A throwing slice counts as finished: requeuing it would
            // likely rethrow forever. `done` stays true.
        }
        if (prof) {
            const double dt = telemetry::WallSeconds() - t0;
            if (stolen) {
                steal_busy += dt;
                ++steals;
            } else {
                busy += dt;
            }
            ++tasks;
        }
        if (!done) {
            std::lock_guard<std::mutex> lock(own.mu);
            own.items.push_front(index);
        }
    }
    if (prof) {
        const double finished = telemetry::WallSeconds();
        const auto s = static_cast<size_t>(slot);
        std::lock_guard<std::mutex> lock(mu_);
        profile_[s].busy += busy;
        profile_[s].steal_busy += steal_busy;
        profile_[s].tasks += tasks;
        profile_[s].steals += steals;
        finish_time_[s] = finished;
    }
}

void
ThreadPool::WorkerLoop(int slot)
{
    long seen_epoch = 0;
    while (true) {
        bool stealing;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                return stop_ || epoch_ != seen_epoch;
            });
            if (stop_) return;
            seen_epoch = epoch_;
            stealing = stealing_;
        }
        if (stealing) {
            RunStealTasks(slot);
        } else {
            RunTasks(slot);
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++workers_done_;
        }
        done_cv_.notify_one();
    }
}

void
ThreadPool::ParallelFor(int count, const std::function<void(int)>& task)
{
    if (count <= 0) return;
    if (num_threads_ == 1 || count == 1) {
        // Inline degenerate path: no synchronization, exceptions
        // propagate directly. Everything is caller busy time.
        const bool prof = profiling_;
        const double t0 = prof ? telemetry::WallSeconds() : 0.0;
        for (int i = 0; i < count; ++i) task(i);
        if (prof) {
            profile_[0].busy += telemetry::WallSeconds() - t0;
            profile_[0].tasks += count;
        }
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        task_ = &task;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        workers_done_ = 0;
        stealing_ = false;
        error_ = nullptr;
        ++epoch_;
    }
    work_cv_.notify_all();

    RunTasks(0);  // the caller is one of the executing threads

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] {
            return workers_done_ ==
                   static_cast<int>(workers_.size());
        });
        task_ = nullptr;
        error = error_;
        error_ = nullptr;
        if (profiling_) {
            // Every executing thread has stamped finish_time_ by now
            // (workers increment workers_done_ only after RunTasks);
            // the gap to the epoch's end is its barrier wait.
            const double epoch_end = telemetry::WallSeconds();
            for (size_t s = 0; s < profile_.size(); ++s) {
                profile_[s].barrier_wait += epoch_end - finish_time_[s];
            }
        }
    }
    if (error) std::rethrow_exception(error);
}

void
ThreadPool::ParallelForTasks(const std::vector<SeededTask>& tasks,
                             const std::function<bool(int)>& task)
{
    if (tasks.empty()) return;

    // LPT order: descending estimate, stable so ties keep caller
    // order — scheduling stays deterministic for a given input.
    sorted_.assign(tasks.begin(), tasks.end());
    std::stable_sort(sorted_.begin(), sorted_.end(),
                     [](const SeededTask& a, const SeededTask& b) {
                         return a.estimated_work > b.estimated_work;
                     });

    if (num_threads_ == 1 || tasks.size() == 1) {
        // Inline degenerate path: each task runs to completion in
        // seeded order on the caller; exceptions propagate directly.
        const bool prof = profiling_;
        const double t0 = prof ? telemetry::WallSeconds() : 0.0;
        long executions = 0;
        for (const SeededTask& t : sorted_) {
            bool done = false;
            while (!done) {
                done = task(t.index);
                ++executions;
            }
        }
        if (prof) {
            profile_[0].busy += telemetry::WallSeconds() - t0;
            profile_[0].tasks += executions;
        }
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        // Greedy LPT bin-packing: each task (fattest first) onto the
        // currently least-loaded deque. Owners pop from the front, so
        // every thread starts on its fattest seed. The floor keeps
        // all-zero estimates spreading round-robin instead of piling
        // onto deque 0.
        load_.assign(static_cast<size_t>(num_threads_), 0.0);
        for (const SeededTask& t : sorted_) {
            size_t best = 0;
            for (size_t s = 1; s < load_.size(); ++s) {
                if (load_[s] < load_[best]) best = s;
            }
            deques_[best]->items.push_back(t.index);
            load_[best] += std::max(t.estimated_work, 1.0);
        }
        resumable_ = &task;
        workers_done_ = 0;
        stealing_ = true;
        error_ = nullptr;
        ++epoch_;
    }
    work_cv_.notify_all();

    RunStealTasks(0);  // the caller is one of the executing threads

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] {
            return workers_done_ ==
                   static_cast<int>(workers_.size());
        });
        resumable_ = nullptr;
        stealing_ = false;
        error = error_;
        error_ = nullptr;
        if (profiling_) {
            const double epoch_end = telemetry::WallSeconds();
            for (size_t s = 0; s < profile_.size(); ++s) {
                profile_[s].barrier_wait += epoch_end - finish_time_[s];
            }
        }
    }
    if (error) std::rethrow_exception(error);
}

}  // namespace pod
