/**
 * @file
 * Implementation of the persistent fork/join pool.
 */
#include "common/thread_pool.h"

#include "common/logging.h"

namespace pod {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads)
{
    POD_CHECK_ARG(num_threads >= 1,
                  "thread pool needs at least one thread");
    profile_.assign(static_cast<size_t>(num_threads),
                    telemetry::ThreadStat{});
    finish_time_.assign(static_cast<size_t>(num_threads), 0.0);
    workers_.reserve(static_cast<size_t>(num_threads - 1));
    for (int i = 0; i < num_threads - 1; ++i) {
        workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
}

int
ThreadPool::ResolveThreads(int requested)
{
    if (requested >= 1) return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

void
ThreadPool::EnableProfiling(bool on)
{
    // The mutex pairs this write with the workers' epoch-wait
    // acquisition; the contract (call between ParallelFor rounds from
    // the driving thread) rules out mid-epoch toggles.
    std::lock_guard<std::mutex> lock(mu_);
    profiling_ = on;
}

void
ThreadPool::ResetProfile()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& stat : profile_) stat = telemetry::ThreadStat{};
}

void
ThreadPool::RunTasks(int slot)
{
    // Dynamic index claiming: fine for this library's use, where a
    // "task" is advancing one replica for a whole time window (coarse
    // and uneven), so stealing granularity matters more than locality.
    const bool prof = profiling_;
    double busy = 0.0;
    long tasks = 0;
    int i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) <
           count_) {
        const double t0 = prof ? telemetry::WallSeconds() : 0.0;
        try {
            (*task_)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_) error_ = std::current_exception();
        }
        if (prof) {
            busy += telemetry::WallSeconds() - t0;
            ++tasks;
        }
    }
    if (prof) {
        // Timestamp the moment this thread ran out of work; after the
        // barrier the caller turns it into barrier-wait time.
        const double finished = telemetry::WallSeconds();
        const auto s = static_cast<size_t>(slot);
        std::lock_guard<std::mutex> lock(mu_);
        profile_[s].busy += busy;
        profile_[s].tasks += tasks;
        finish_time_[s] = finished;
    }
}

void
ThreadPool::WorkerLoop(int slot)
{
    long seen_epoch = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                return stop_ || epoch_ != seen_epoch;
            });
            if (stop_) return;
            seen_epoch = epoch_;
        }
        RunTasks(slot);
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++workers_done_;
        }
        done_cv_.notify_one();
    }
}

void
ThreadPool::ParallelFor(int count, const std::function<void(int)>& task)
{
    if (count <= 0) return;
    if (num_threads_ == 1 || count == 1) {
        // Inline degenerate path: no synchronization, exceptions
        // propagate directly. Everything is caller busy time.
        const bool prof = profiling_;
        const double t0 = prof ? telemetry::WallSeconds() : 0.0;
        for (int i = 0; i < count; ++i) task(i);
        if (prof) {
            profile_[0].busy += telemetry::WallSeconds() - t0;
            profile_[0].tasks += count;
        }
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        task_ = &task;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        workers_done_ = 0;
        error_ = nullptr;
        ++epoch_;
    }
    work_cv_.notify_all();

    RunTasks(0);  // the caller is one of the executing threads

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [&] {
            return workers_done_ ==
                   static_cast<int>(workers_.size());
        });
        task_ = nullptr;
        error = error_;
        error_ = nullptr;
        if (profiling_) {
            // Every executing thread has stamped finish_time_ by now
            // (workers increment workers_done_ only after RunTasks);
            // the gap to the epoch's end is its barrier wait.
            const double epoch_end = telemetry::WallSeconds();
            for (size_t s = 0; s < profile_.size(); ++s) {
                profile_[s].barrier_wait += epoch_end - finish_time_[s];
            }
        }
    }
    if (error) std::rethrow_exception(error);
}

}  // namespace pod
