/**
 * @file
 * Sim-time tracing: fixed-size event records appended to preallocated
 * per-replica buffers, exported as Chrome trace-event JSON that
 * Perfetto loads directly (docs/OBSERVABILITY.md).
 *
 * Timestamps are *simulation* seconds, never wall clock, so a trace
 * is a pure function of the simulated scenario: per-replica buffers
 * are written only by the worker advancing that replica (the same
 * disjoint-state discipline as the metric accumulators,
 * docs/DESIGN.md S8) and the exporter merges them in a deterministic
 * order, making trace bytes identical at every thread count —
 * enforced by tests/cluster/telemetry_trace_test.cc.
 *
 * Recording is null-pointer gated: components hold a
 * `TraceRecorder*` that defaults to nullptr, and every emission site
 * is `if (trace_) ...`, so the disabled path costs one predictable
 * branch and the exact-golden regression nets run unchanged.
 */
#ifndef POD_COMMON_TELEMETRY_TRACE_H
#define POD_COMMON_TELEMETRY_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pod::telemetry {

/**
 * Event vocabulary (the taxonomy in docs/OBSERVABILITY.md). Spans
 * carry a duration; instants mark a point in sim time.
 */
enum class EventKind : uint8_t {
    // Request lifecycle (request tracks).
    kArrival,           ///< instant: request joined the replica queue
    kAdmit,             ///< instant: KV reserved, request running
    kPrefillChunk,      ///< span: one prefill chunk processed
    kDecodeToken,       ///< instant: one output token produced
    kPreemptRecompute,  ///< instant: evicted, context to re-prefill
    kPreemptSwap,       ///< instant: evicted, KV swapped to host
    kRestore,           ///< instant: re-admitted after preemption
    kFinish,            ///< instant: all output tokens produced

    // Engine execution (engine track 0).
    kIteration,         ///< span: one scheduler iteration

    // Cluster (router process 0).
    kRoute,             ///< instant: arrival routed to a replica

    // GPU simulator (gpusim::ExportKernelSpans).
    kKernel,            ///< span: one kernel launch
};

/** Stable lowercase event name ("prefill_chunk", "route", ...). */
const char* EventKindName(EventKind kind);

/** True if the kind is a span (carries a duration). */
bool EventKindIsSpan(EventKind kind);

/** One recorded event. Fixed-size: no per-event allocation. */
struct TraceEvent
{
    double ts = 0.0;      ///< sim-time seconds
    double dur = 0.0;     ///< span duration (0 for instants)
    int32_t tid = 0;      ///< track within the process
    int32_t name_ref = -1;  ///< interned name override (-1: kind name)
    EventKind kind = EventKind::kArrival;
    int64_t a0 = 0;       ///< kind-specific argument
    int64_t a1 = 0;       ///< kind-specific argument
};

/**
 * Append-only event buffer for one trace process (a replica, the
 * cluster router, or a standalone engine). Owned by exactly one
 * writer at a time; the cluster engine gives each replica its own
 * recorder so tracing needs no locks.
 */
class TraceRecorder
{
  public:
    /** Chrome tid of the engine/iteration track. */
    static constexpr int kEngineTrack = 0;

    /** Chrome tid of a request's track. */
    static int RequestTrack(int request_id) { return request_id + 1; }

    /**
     * @param pid Chrome process id (cluster convention: 0 = router,
     *        replica r = r + 1).
     * @param process_name shown as the Perfetto process name.
     * @param reserve_events preallocated capacity; the buffer grows
     *        beyond it if a scenario outruns the estimate.
     */
    explicit TraceRecorder(int pid, std::string process_name,
                           size_t reserve_events = 4096);

    int Pid() const { return pid_; }

    const std::string& ProcessName() const { return process_name_; }

    /** Record a span [ts, ts + dur]. */
    void
    Span(EventKind kind, double ts, double dur, int tid, int64_t a0 = 0,
         int64_t a1 = 0)
    {
        Push(kind, ts, dur, tid, -1, a0, a1);
    }

    /** Record an instant event. */
    void
    Instant(EventKind kind, double ts, int tid, int64_t a0 = 0,
            int64_t a1 = 0)
    {
        Push(kind, ts, 0.0, tid, -1, a0, a1);
    }

    /** Record a span with an interned display name (kernel spans). */
    void
    NamedSpan(EventKind kind, int name_ref, double ts, double dur,
              int tid, int64_t a0 = 0, int64_t a1 = 0)
    {
        Push(kind, ts, dur, tid, name_ref, a0, a1);
    }

    /**
     * Intern a display name, returning its reference for NamedSpan.
     * Names are deduplicated; interning order must be deterministic
     * (it is part of the exported bytes).
     */
    int InternName(const std::string& name);

    const std::vector<TraceEvent>& Events() const { return events_; }

    const std::vector<std::string>& Names() const { return names_; }

    /** Drop all events (and interned names), keeping the capacity. */
    void Clear();

  private:
    void
    Push(EventKind kind, double ts, double dur, int tid, int name_ref,
         int64_t a0, int64_t a1)
    {
        TraceEvent e;
        e.ts = ts;
        e.dur = dur;
        e.tid = tid;
        e.name_ref = name_ref;
        e.kind = kind;
        e.a0 = a0;
        e.a1 = a1;
        events_.push_back(e);
    }

    int pid_;
    std::string process_name_;
    std::vector<TraceEvent> events_;
    std::vector<std::string> names_;
};

/**
 * Merge recorders into one Chrome trace-event JSON document
 * (Perfetto-loadable). Sim-time seconds map to the trace `ts`/`dur`
 * microsecond fields. Output is deterministic: metadata rows sorted
 * by (pid, tid), events stably sorted by ts with ties broken by the
 * recorders' order in `recorders` and then recording order — so two
 * runs with identical per-recorder streams export identical bytes.
 */
void WriteChromeTrace(std::ostream& out,
                      const std::vector<const TraceRecorder*>& recorders);

}  // namespace pod::telemetry

#endif  // POD_COMMON_TELEMETRY_TRACE_H
