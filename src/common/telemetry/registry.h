/**
 * @file
 * Named metric registry: the uniform, enumerable surface for every
 * counter, gauge and histogram the simulator reports
 * (docs/OBSERVABILITY.md).
 *
 * Registration (by dotted name, e.g. "serve.preempt.recompute") is a
 * cold-path hash lookup; updates go through small value-type handles
 * that hold a stable slot pointer, so a hot loop pays one pointer
 * write per update and never touches the name table. Slots live in a
 * std::deque, so handles stay valid as the registry grows.
 *
 * Naming scheme (docs/OBSERVABILITY.md): lowercase dotted segments,
 * `<layer>.<subsystem>.<metric>[.<unit>]`, with per-instance metrics
 * carrying an index segment ("cluster.replica3.busy_seconds").
 * Enumeration is name-sorted, so exports are deterministic regardless
 * of registration order.
 */
#ifndef POD_COMMON_TELEMETRY_REGISTRY_H
#define POD_COMMON_TELEMETRY_REGISTRY_H

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"

namespace pod::telemetry {

/** What a registry slot holds. */
enum class MetricKind {
    kCounter,    ///< Monotonic integer count.
    kGauge,      ///< Last-written scalar.
    kHistogram,  ///< Fixed-bin HistogramStats distribution.
};

/** Human-readable kind name ("counter", "gauge", "histogram"). */
const char* MetricKindName(MetricKind kind);

class MetricRegistry;

/** Handle to a monotonically increasing integer metric. */
class Counter
{
  public:
    Counter() = default;

    void Add(long delta = 1) { *value_ += delta; }

    long Value() const { return *value_; }

  private:
    friend class MetricRegistry;
    explicit Counter(long* value) : value_(value) {}
    long* value_ = nullptr;
};

/** Handle to a last-write-wins scalar metric. */
class Gauge
{
  public:
    Gauge() = default;

    void Set(double value) { *value_ = value; }

    double Value() const { return *value_; }

  private:
    friend class MetricRegistry;
    explicit Gauge(double* value) : value_(value) {}
    double* value_ = nullptr;
};

/** Handle to a fixed-bin histogram metric. */
class Histogram
{
  public:
    Histogram() = default;

    void Add(double value) { stats_->Add(value); }

    const HistogramStats& Stats() const { return *stats_; }

  private:
    friend class MetricRegistry;
    explicit Histogram(HistogramStats* stats) : stats_(stats) {}
    HistogramStats* stats_ = nullptr;
};

/**
 * Owns the metric slots. Not thread-safe: under the parallel cluster
 * engine each worker-side component owns a private registry (or
 * private handles into per-replica slots) and results are folded at
 * the barrier, mirroring the ReplicaAccum discipline.
 */
class MetricRegistry
{
  public:
    /**
     * Find-or-register a counter. Re-registering an existing name
     * returns a handle to the same slot; registering a name that
     * exists with a different kind is fatal.
     */
    Counter GetCounter(const std::string& name);

    /** Find-or-register a gauge. */
    Gauge GetGauge(const std::string& name);

    /** Find-or-register a histogram with the given bin geometry. */
    Histogram GetHistogram(const std::string& name, double lo, double hi,
                           int num_bins);

    /** Convenience: register-and-add in one call (cold paths only). */
    void AddCounter(const std::string& name, long delta);

    /** Convenience: register-and-set in one call (cold paths only). */
    void SetGauge(const std::string& name, double value);

    /** Number of registered metrics. */
    size_t Size() const { return slots_.size(); }

    bool Contains(const std::string& name) const;

    /** One enumerated metric row. */
    struct Row
    {
        std::string name;
        MetricKind kind = MetricKind::kCounter;
        long counter = 0;                        ///< kCounter
        double gauge = 0.0;                      ///< kGauge
        const HistogramStats* histogram = nullptr;  ///< kHistogram
    };

    /** All metrics, sorted by name (deterministic export order). */
    std::vector<Row> Rows() const;

    /**
     * Machine-readable JSON dump: {"metrics": [{...}, ...]} with one
     * object per metric, name-sorted. Doubles are formatted
     * round-trip (%.17g), so equal values always serialize equally.
     */
    void WriteJson(std::ostream& out) const;

    /**
     * CSV dump: header then `name,kind,value` rows (histograms emit
     * count/mean/p50/p99/min/max columns), name-sorted.
     */
    void WriteCsv(std::ostream& out) const;

    /** Drop every metric (handles into this registry become invalid). */
    void Clear();

  private:
    struct Slot
    {
        std::string name;
        MetricKind kind;
        long counter = 0;
        double gauge = 0.0;
        HistogramStats histogram{0.0, 1.0, 1};
    };

    Slot& FindOrCreate(const std::string& name, MetricKind kind);

    std::deque<Slot> slots_;  ///< deque: stable addresses for handles
    std::unordered_map<std::string, size_t> index_;
};

/**
 * Format a double deterministically for telemetry output: shortest
 * round-trip decimal ("%.17g" trimmed), never locale-dependent.
 */
std::string FormatDouble(double v);

}  // namespace pod::telemetry

#endif  // POD_COMMON_TELEMETRY_REGISTRY_H
