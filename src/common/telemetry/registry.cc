/**
 * @file
 * Implementation of the metric registry and its JSON/CSV exporters.
 */
#include "common/telemetry/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/logging.h"

namespace pod::telemetry {

const char*
MetricKindName(MetricKind kind)
{
    switch (kind) {
        case MetricKind::kCounter: return "counter";
        case MetricKind::kGauge: return "gauge";
        case MetricKind::kHistogram: return "histogram";
    }
    return "unknown";
}

std::string
FormatDouble(double v)
{
    // Shortest decimal that round-trips: deterministic for a given
    // bit pattern, so byte-identical runs serialize byte-identically.
    char buf[64];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v) break;
    }
    return std::string(buf);
}

namespace {

/** Escape a string for a JSON literal (names are plain, but be safe). */
std::string
JsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

MetricRegistry::Slot&
MetricRegistry::FindOrCreate(const std::string& name, MetricKind kind)
{
    POD_CHECK_ARG(!name.empty(), "metric name must be non-empty");
    auto it = index_.find(name);
    if (it != index_.end()) {
        Slot& slot = slots_[it->second];
        POD_CHECK_ARG(slot.kind == kind,
                      "metric re-registered with a different kind");
        return slot;
    }
    index_.emplace(name, slots_.size());
    slots_.emplace_back();
    slots_.back().name = name;
    slots_.back().kind = kind;
    return slots_.back();
}

Counter
MetricRegistry::GetCounter(const std::string& name)
{
    return Counter(&FindOrCreate(name, MetricKind::kCounter).counter);
}

Gauge
MetricRegistry::GetGauge(const std::string& name)
{
    return Gauge(&FindOrCreate(name, MetricKind::kGauge).gauge);
}

Histogram
MetricRegistry::GetHistogram(const std::string& name, double lo,
                             double hi, int num_bins)
{
    auto it = index_.find(name);
    if (it == index_.end()) {
        Slot& slot = FindOrCreate(name, MetricKind::kHistogram);
        slot.histogram = HistogramStats(lo, hi, num_bins);
        return Histogram(&slot.histogram);
    }
    Slot& slot = slots_[it->second];
    POD_CHECK_ARG(slot.kind == MetricKind::kHistogram,
                  "metric re-registered with a different kind");
    return Histogram(&slot.histogram);
}

void
MetricRegistry::AddCounter(const std::string& name, long delta)
{
    GetCounter(name).Add(delta);
}

void
MetricRegistry::SetGauge(const std::string& name, double value)
{
    GetGauge(name).Set(value);
}

bool
MetricRegistry::Contains(const std::string& name) const
{
    return index_.find(name) != index_.end();
}

std::vector<MetricRegistry::Row>
MetricRegistry::Rows() const
{
    std::vector<Row> rows;
    rows.reserve(slots_.size());
    for (const Slot& slot : slots_) {
        Row row;
        row.name = slot.name;
        row.kind = slot.kind;
        row.counter = slot.counter;
        row.gauge = slot.gauge;
        row.histogram = &slot.histogram;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.name < b.name; });
    return rows;
}

void
MetricRegistry::WriteJson(std::ostream& out) const
{
    out << "{\"metrics\":[";
    bool first = true;
    for (const Row& row : Rows()) {
        if (!first) out << ",";
        first = false;
        out << "\n  {\"name\":\"" << JsonEscape(row.name)
            << "\",\"kind\":\"" << MetricKindName(row.kind) << "\"";
        switch (row.kind) {
            case MetricKind::kCounter:
                out << ",\"value\":" << row.counter;
                break;
            case MetricKind::kGauge:
                out << ",\"value\":" << FormatDouble(row.gauge);
                break;
            case MetricKind::kHistogram: {
                const HistogramStats& h = *row.histogram;
                out << ",\"count\":" << h.Count()
                    << ",\"mean\":" << FormatDouble(h.Mean())
                    << ",\"p50\":" << FormatDouble(h.Percentile(50))
                    << ",\"p99\":" << FormatDouble(h.Percentile(99))
                    << ",\"min\":" << FormatDouble(h.Min())
                    << ",\"max\":" << FormatDouble(h.Max())
                    << ",\"underflow\":" << h.Underflow()
                    << ",\"overflow\":" << h.Overflow() << ",\"bins\":[";
                for (size_t i = 0; i < h.Bins().size(); ++i) {
                    if (i > 0) out << ",";
                    out << h.Bins()[i];
                }
                out << "]";
                break;
            }
        }
        out << "}";
    }
    out << "\n]}\n";
}

void
MetricRegistry::WriteCsv(std::ostream& out) const
{
    out << "name,kind,value,count,mean,p50,p99,min,max\n";
    for (const Row& row : Rows()) {
        out << row.name << "," << MetricKindName(row.kind) << ",";
        switch (row.kind) {
            case MetricKind::kCounter:
                out << row.counter << ",,,,,,\n";
                break;
            case MetricKind::kGauge:
                out << FormatDouble(row.gauge) << ",,,,,,\n";
                break;
            case MetricKind::kHistogram: {
                const HistogramStats& h = *row.histogram;
                out << "," << h.Count() << "," << FormatDouble(h.Mean())
                    << "," << FormatDouble(h.Percentile(50)) << ","
                    << FormatDouble(h.Percentile(99)) << ","
                    << FormatDouble(h.Min()) << ","
                    << FormatDouble(h.Max()) << "\n";
                break;
            }
        }
    }
}

void
MetricRegistry::Clear()
{
    slots_.clear();
    index_.clear();
}

}  // namespace pod::telemetry
