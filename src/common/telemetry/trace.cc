/**
 * @file
 * Implementation of the sim-time trace recorder and the Chrome
 * trace-event JSON exporter.
 */
#include "common/telemetry/trace.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/telemetry/registry.h"

namespace pod::telemetry {

namespace {

/** Per-kind argument labels (nullptr = argument unused). */
struct KindInfo
{
    const char* name;
    bool is_span;
    const char* a0;
    const char* a1;
};

const KindInfo&
Info(EventKind kind)
{
    static const KindInfo kInfos[] = {
        {"arrival", false, "prefill", "decode"},
        {"admit", false, "prefill_target", nullptr},
        {"prefill_chunk", true, "chunk", "kv_after"},
        {"decode_token", false, "decoded", nullptr},
        {"preempt_recompute", false, "blocks", nullptr},
        {"preempt_swap", false, "blocks", nullptr},
        {"restore", false, "blocks", "swap"},
        {"finish", false, "decoded", nullptr},
        {"iteration", true, "tokens", "decodes"},
        {"route", false, "request", "replica"},
        {"kernel", true, "ctas", nullptr},
    };
    return kInfos[static_cast<size_t>(kind)];
}

/** Seconds of sim time -> Chrome microseconds, round-trip formatted. */
std::string
TsString(double seconds)
{
    return FormatDouble(seconds * 1e6);
}

}  // namespace

const char*
EventKindName(EventKind kind)
{
    return Info(kind).name;
}

bool
EventKindIsSpan(EventKind kind)
{
    return Info(kind).is_span;
}

TraceRecorder::TraceRecorder(int pid, std::string process_name,
                             size_t reserve_events)
    : pid_(pid), process_name_(std::move(process_name))
{
    events_.reserve(reserve_events);
}

int
TraceRecorder::InternName(const std::string& name)
{
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) return static_cast<int>(i);
    }
    names_.push_back(name);
    return static_cast<int>(names_.size()) - 1;
}

void
TraceRecorder::Clear()
{
    events_.clear();
    names_.clear();
}

void
WriteChromeTrace(std::ostream& out,
                 const std::vector<const TraceRecorder*>& recorders)
{
    out << "{\"traceEvents\":[";
    bool first = true;
    auto emit_prefix = [&]() -> std::ostream& {
        if (!first) out << ",";
        first = false;
        out << "\n";
        return out;
    };

    // ---- metadata: process and thread names, sorted by (pid, tid) ----
    std::map<int, const TraceRecorder*> by_pid;
    for (const TraceRecorder* rec : recorders) {
        POD_CHECK_ARG(rec != nullptr, "null trace recorder");
        POD_CHECK_ARG(by_pid.emplace(rec->Pid(), rec).second,
                      "duplicate trace pid");
    }
    for (const auto& [pid, rec] : by_pid) {
        emit_prefix() << "{\"ph\":\"M\",\"pid\":" << pid
                      << ",\"name\":\"process_name\",\"args\":{\"name\":\""
                      << rec->ProcessName() << "\"}}";
        std::set<int32_t> tids;
        for (const TraceEvent& e : rec->Events()) tids.insert(e.tid);
        for (int32_t tid : tids) {
            emit_prefix() << "{\"ph\":\"M\",\"pid\":" << pid
                          << ",\"tid\":" << tid
                          << ",\"name\":\"thread_name\",\"args\":"
                             "{\"name\":\"";
            if (tid == TraceRecorder::kEngineTrack) {
                out << (pid == 0 ? "router" : "engine");
            } else {
                out << "req " << tid - 1;
            }
            out << "\"}}";
        }
    }

    // ---- events: stable-sorted by ts; ties keep (recorder, record)
    // order, so identical per-recorder streams merge identically ----
    struct Ref
    {
        double ts;
        size_t rec;
        size_t idx;
    };
    std::vector<Ref> refs;
    size_t total = 0;
    for (const TraceRecorder* rec : recorders) {
        total += rec->Events().size();
    }
    refs.reserve(total);
    for (size_t r = 0; r < recorders.size(); ++r) {
        const auto& events = recorders[r]->Events();
        for (size_t i = 0; i < events.size(); ++i) {
            refs.push_back(Ref{events[i].ts, r, i});
        }
    }
    std::stable_sort(refs.begin(), refs.end(),
                     [](const Ref& a, const Ref& b) { return a.ts < b.ts; });

    for (const Ref& ref : refs) {
        const TraceRecorder& rec = *recorders[ref.rec];
        const TraceEvent& e = rec.Events()[ref.idx];
        const KindInfo& info = Info(e.kind);
        const char* name = info.name;
        if (e.name_ref >= 0) {
            name = rec.Names()[static_cast<size_t>(e.name_ref)].c_str();
        }
        emit_prefix() << "{\"ph\":\"" << (info.is_span ? "X" : "i")
                      << "\",\"pid\":" << rec.Pid() << ",\"tid\":"
                      << e.tid << ",\"name\":\"" << name
                      << "\",\"cat\":\"" << info.name << "\",\"ts\":"
                      << TsString(e.ts);
        if (info.is_span) {
            out << ",\"dur\":" << TsString(e.dur);
        } else {
            out << ",\"s\":\"t\"";
        }
        if (info.a0 != nullptr) {
            out << ",\"args\":{\"" << info.a0 << "\":" << e.a0;
            if (info.a1 != nullptr) {
                out << ",\"" << info.a1 << "\":" << e.a1;
            }
            out << "}";
        }
        out << "}";
    }

    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace pod::telemetry
