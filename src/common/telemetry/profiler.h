/**
 * @file
 * Wall-clock profiling primitives for the parallel execution
 * substrate (docs/OBSERVABILITY.md): per-phase timers for the cluster
 * plan/advance/route loop and per-thread busy vs barrier-wait
 * accounting for the worker pool.
 *
 * These measure *host* time, not sim time, so they are inherently
 * non-deterministic and are kept strictly out of the sim-time trace:
 * they surface through the metric registry under `profile.*` names
 * and through printed summaries. Profiling is opt-in; when off, the
 * pool and cluster loop skip every clock read (a single branch), so
 * the exact-golden nets and the --long-smoke budget are unaffected.
 */
#ifndef POD_COMMON_TELEMETRY_PROFILER_H
#define POD_COMMON_TELEMETRY_PROFILER_H

#include <string>
#include <vector>

#include "common/telemetry/registry.h"

namespace pod::telemetry {

/** Monotonic wall clock in seconds (steady_clock). */
double WallSeconds();

/** Accumulated wall time of one named phase. */
struct PhaseStat
{
    double seconds = 0.0;
    long count = 0;

    void
    Accumulate(double start_seconds)
    {
        seconds += WallSeconds() - start_seconds;
        ++count;
    }
};

/**
 * One executing thread's split of an epoch-structured parallel
 * region: `busy` is time spent running tasks claimed from its own
 * share (static index range or own deque), `barrier_wait` is time
 * between finishing its share and the epoch's last task completing.
 * Under the work-stealing mode (docs/DESIGN.md S8.4) `steal_busy`
 * separates time spent executing slices stolen from another thread's
 * deque — work that under single-shot scheduling would have been
 * barrier wait — and `steals` counts those stolen executions. The
 * three time buckets are disjoint: busy + steal_busy + barrier_wait
 * covers the thread's epoch residency. `tasks` counts every task
 * execution (each work-stealing slice counts once, stolen or not).
 *
 * New fields go after `tasks`: aggregate initialization
 * (`ThreadStat{busy, wait, tasks}`) is part of the de-facto API.
 */
struct ThreadStat
{
    double busy = 0.0;
    double barrier_wait = 0.0;
    long tasks = 0;
    double steal_busy = 0.0;
    long steals = 0;
};

/** Profile of one ClusterEngine run (docs/DESIGN.md S8 loop). */
struct ClusterProfile
{
    /** Parallel-advance phase, pool barrier included. */
    PhaseStat advance;

    /** Serial snapshot + route phase. */
    PhaseStat route;

    /** Whole Run() call. */
    PhaseStat run;

    /** ParallelFor rounds actually dispatched (pre-scan hits skip). */
    long pool_rounds = 0;

    /** Per-executing-thread busy/wait, index 0 = the caller. */
    std::vector<ThreadStat> threads;

    /**
     * Publish under `<prefix>advance.seconds`,
     * `<prefix>thread<i>.busy_seconds`, ... plus pool-wide rollups
     * (`<prefix>pool.busy_seconds`, `.steal_seconds`,
     * `.barrier_wait_seconds`, `.barrier_wait_fraction`, `.steals`,
     * `.tasks`) summed over threads (docs/OBSERVABILITY.md naming
     * scheme; prefix normally "profile.").
     */
    void FillRegistry(MetricRegistry& registry,
                      const std::string& prefix) const;

    /** Multi-line human-readable summary. */
    std::string Summary() const;
};

}  // namespace pod::telemetry

#endif  // POD_COMMON_TELEMETRY_PROFILER_H
