/**
 * @file
 * Implementation of the wall-clock profiling helpers.
 */
#include "common/telemetry/profiler.h"

#include <chrono>
#include <cstdio>

namespace pod::telemetry {

double
WallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
ClusterProfile::FillRegistry(MetricRegistry& registry,
                             const std::string& prefix) const
{
    registry.SetGauge(prefix + "advance.seconds", advance.seconds);
    registry.AddCounter(prefix + "advance.rounds", advance.count);
    registry.SetGauge(prefix + "route.seconds", route.seconds);
    registry.AddCounter(prefix + "route.rounds", route.count);
    registry.SetGauge(prefix + "run.seconds", run.seconds);
    registry.AddCounter(prefix + "pool.rounds", pool_rounds);
    double pool_busy = 0.0;
    double pool_steal = 0.0;
    double pool_wait = 0.0;
    long pool_steals = 0;
    long pool_tasks = 0;
    for (size_t i = 0; i < threads.size(); ++i) {
        const std::string base = prefix + "thread" + std::to_string(i);
        registry.SetGauge(base + ".busy_seconds", threads[i].busy);
        registry.SetGauge(base + ".steal_seconds",
                          threads[i].steal_busy);
        registry.SetGauge(base + ".barrier_wait_seconds",
                          threads[i].barrier_wait);
        registry.AddCounter(base + ".tasks", threads[i].tasks);
        registry.AddCounter(base + ".steals", threads[i].steals);
        pool_busy += threads[i].busy;
        pool_steal += threads[i].steal_busy;
        pool_wait += threads[i].barrier_wait;
        pool_steals += threads[i].steals;
        pool_tasks += threads[i].tasks;
    }
    if (!threads.empty()) {
        const double pool_total = pool_busy + pool_steal + pool_wait;
        registry.SetGauge(prefix + "pool.busy_seconds", pool_busy);
        registry.SetGauge(prefix + "pool.steal_seconds", pool_steal);
        registry.SetGauge(prefix + "pool.barrier_wait_seconds",
                          pool_wait);
        registry.SetGauge(
            prefix + "pool.barrier_wait_fraction",
            pool_total > 0.0 ? pool_wait / pool_total : 0.0);
        registry.AddCounter(prefix + "pool.steals", pool_steals);
        registry.AddCounter(prefix + "pool.tasks", pool_tasks);
    }
}

std::string
ClusterProfile::Summary() const
{
    std::string out;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "run %.3fs: advance %.3fs over %ld rounds "
                  "(%ld dispatched to the pool), route %.3fs over %ld "
                  "rounds\n",
                  run.seconds, advance.seconds, advance.count,
                  pool_rounds, route.seconds, route.count);
    out += buf;
    for (size_t i = 0; i < threads.size(); ++i) {
        const ThreadStat& t = threads[i];
        double total = t.busy + t.steal_busy + t.barrier_wait;
        std::snprintf(buf, sizeof(buf),
                      "  thread %zu%s: busy %.3fs, stolen %.3fs, "
                      "barrier wait %.3fs (%.1f%% idle), %ld tasks "
                      "(%ld stolen)\n",
                      i, i == 0 ? " (caller)" : "", t.busy,
                      t.steal_busy, t.barrier_wait,
                      total > 0.0 ? 100.0 * t.barrier_wait / total : 0.0,
                      t.tasks, t.steals);
        out += buf;
    }
    return out;
}

}  // namespace pod::telemetry
