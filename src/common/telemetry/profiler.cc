/**
 * @file
 * Implementation of the wall-clock profiling helpers.
 */
#include "common/telemetry/profiler.h"

#include <chrono>
#include <cstdio>

namespace pod::telemetry {

double
WallSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
ClusterProfile::FillRegistry(MetricRegistry& registry,
                             const std::string& prefix) const
{
    registry.SetGauge(prefix + "advance.seconds", advance.seconds);
    registry.AddCounter(prefix + "advance.rounds", advance.count);
    registry.SetGauge(prefix + "route.seconds", route.seconds);
    registry.AddCounter(prefix + "route.rounds", route.count);
    registry.SetGauge(prefix + "run.seconds", run.seconds);
    registry.AddCounter(prefix + "pool.rounds", pool_rounds);
    for (size_t i = 0; i < threads.size(); ++i) {
        const std::string base = prefix + "thread" + std::to_string(i);
        registry.SetGauge(base + ".busy_seconds", threads[i].busy);
        registry.SetGauge(base + ".barrier_wait_seconds",
                          threads[i].barrier_wait);
        registry.AddCounter(base + ".tasks", threads[i].tasks);
    }
}

std::string
ClusterProfile::Summary() const
{
    std::string out;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "run %.3fs: advance %.3fs over %ld rounds "
                  "(%ld dispatched to the pool), route %.3fs over %ld "
                  "rounds\n",
                  run.seconds, advance.seconds, advance.count,
                  pool_rounds, route.seconds, route.count);
    out += buf;
    for (size_t i = 0; i < threads.size(); ++i) {
        const ThreadStat& t = threads[i];
        double total = t.busy + t.barrier_wait;
        std::snprintf(buf, sizeof(buf),
                      "  thread %zu%s: busy %.3fs, barrier wait %.3fs "
                      "(%.1f%% idle), %ld tasks\n",
                      i, i == 0 ? " (caller)" : "", t.busy,
                      t.barrier_wait,
                      total > 0.0 ? 100.0 * t.barrier_wait / total : 0.0,
                      t.tasks);
        out += buf;
    }
    return out;
}

}  // namespace pod::telemetry
