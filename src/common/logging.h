/**
 * @file
 * Lightweight logging and error-reporting utilities.
 *
 * Follows the gem5 convention of distinguishing unrecoverable internal
 * errors (Panic) from user-induced fatal conditions (Fatal), plus
 * informational and warning channels gated by a runtime verbosity level.
 */
#ifndef POD_COMMON_LOGGING_H
#define POD_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace pod {

/** Verbosity levels for the logging channels. */
enum class LogLevel : int {
    kSilent = 0,   ///< No output at all.
    kError = 1,    ///< Only errors.
    kWarn = 2,     ///< Errors and warnings.
    kInfo = 3,     ///< Errors, warnings and informational messages.
    kDebug = 4,    ///< Everything, including debug traces.
};

/**
 * Global log level. Initialized from the POD_LOG_LEVEL environment
 * variable (0-4) and adjustable at runtime.
 */
LogLevel GetLogLevel();

/** Override the global log level. */
void SetLogLevel(LogLevel level);

/**
 * Report an unrecoverable internal error (a bug in this library) and
 * abort. Mirrors gem5's panic().
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void Panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a fatal condition caused by invalid user input or
 * configuration and exit(1). Mirrors gem5's fatal().
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void Fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning message (gated at LogLevel::kWarn). */
void Warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message (gated at LogLevel::kInfo). */
void Inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message (gated at LogLevel::kDebug). */
void Debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert a library invariant; on failure, Panic. Active in all build
 * types (use only for cheap checks).
 */
#define POD_ASSERT(cond)                                                   \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::pod::Panic("assertion failed (%s) at %s:%d",                 \
                         #cond, __FILE__, __LINE__);                       \
        }                                                                  \
    } while (0)

/** Assert a library invariant with an explanatory printf message. */
#define POD_ASSERT_MSG(cond, fmt, ...)                                     \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::pod::Panic("assertion failed (%s) at %s:%d: " fmt,           \
                         #cond, __FILE__, __LINE__, __VA_ARGS__);          \
        }                                                                  \
    } while (0)

/** Validate a user-supplied argument; on failure, Fatal. */
#define POD_CHECK_ARG(cond, msg)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::pod::Fatal("invalid argument (%s): %s", #cond, msg);         \
        }                                                                  \
    } while (0)

}  // namespace pod

#endif  // POD_COMMON_LOGGING_H
