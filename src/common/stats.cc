/**
 * @file
 * Implementation of SampleStats.
 */
#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace pod {

void
SampleStats::Add(double value)
{
    samples_.push_back(value);
    sorted_ = false;
}

void
SampleStats::AddAll(const std::vector<double>& values)
{
    samples_.insert(samples_.end(), values.begin(), values.end());
    sorted_ = false;
}

double
SampleStats::Mean() const
{
    if (samples_.empty()) return 0.0;
    return Sum() / static_cast<double>(samples_.size());
}

double
SampleStats::Sum() const
{
    double total = 0.0;
    for (double s : samples_) total += s;
    return total;
}

double
SampleStats::Stddev() const
{
    if (samples_.size() < 2) return 0.0;
    double mean = Mean();
    double acc = 0.0;
    for (double s : samples_) acc += (s - mean) * (s - mean);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double
SampleStats::Min() const
{
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::Max() const
{
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void
SampleStats::EnsureSorted() const
{
    if (!sorted_) {
        auto& mut = const_cast<std::vector<double>&>(samples_);
        std::sort(mut.begin(), mut.end());
        const_cast<bool&>(sorted_) = true;
    }
}

double
SampleStats::Percentile(double p) const
{
    POD_CHECK_ARG(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    if (samples_.size() == 1) return samples_[0];
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
SampleStats::FractionAbove(double threshold) const
{
    if (samples_.empty()) return 0.0;
    size_t n = 0;
    for (double s : samples_) {
        if (s > threshold) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples_.size());
}

void
SampleStats::Clear()
{
    samples_.clear();
    sorted_ = true;
}

std::string
SampleStats::Summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%zu mean=%.4g p50=%.4g p99=%.4g min=%.4g max=%.4g",
                  Count(), Mean(), Percentile(50), Percentile(99), Min(),
                  Max());
    return std::string(buf);
}

double
GeoMean(const std::vector<double>& values)
{
    if (values.empty()) return 0.0;
    double acc = 0.0;
    for (double v : values) {
        POD_CHECK_ARG(v > 0.0, "geometric mean requires positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

}  // namespace pod
