/**
 * @file
 * Implementation of SampleStats.
 */
#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace pod {

void
SampleStats::Add(double value)
{
    samples_.push_back(value);
    sorted_ = false;
}

void
SampleStats::AddAll(const std::vector<double>& values)
{
    samples_.insert(samples_.end(), values.begin(), values.end());
    sorted_ = false;
}

double
SampleStats::Mean() const
{
    if (samples_.empty()) return 0.0;
    return Sum() / static_cast<double>(samples_.size());
}

double
SampleStats::Sum() const
{
    double total = 0.0;
    for (double s : samples_) total += s;
    return total;
}

double
SampleStats::Stddev() const
{
    if (samples_.size() < 2) return 0.0;
    double mean = Mean();
    double acc = 0.0;
    for (double s : samples_) acc += (s - mean) * (s - mean);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double
SampleStats::Min() const
{
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::Max() const
{
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

void
SampleStats::EnsureSorted() const
{
    if (!sorted_) {
        auto& mut = const_cast<std::vector<double>&>(samples_);
        std::sort(mut.begin(), mut.end());
        const_cast<bool&>(sorted_) = true;
    }
}

double
SampleStats::Percentile(double p) const
{
    POD_CHECK_ARG(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
    if (samples_.empty()) return 0.0;
    EnsureSorted();
    if (samples_.size() == 1) return samples_[0];
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
SampleStats::FractionAbove(double threshold) const
{
    if (samples_.empty()) return 0.0;
    size_t n = 0;
    for (double s : samples_) {
        if (s > threshold) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples_.size());
}

void
SampleStats::Clear()
{
    samples_.clear();
    sorted_ = true;
}

std::string
SampleStats::Summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%zu mean=%.4g p50=%.4g p99=%.4g min=%.4g max=%.4g",
                  Count(), Mean(), Percentile(50), Percentile(99), Min(),
                  Max());
    return std::string(buf);
}

HistogramStats::HistogramStats(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi)
{
    POD_CHECK_ARG(hi > lo, "histogram needs hi > lo");
    POD_CHECK_ARG(num_bins >= 1, "histogram needs at least one bin");
    bins_.assign(static_cast<size_t>(num_bins), 0);
    bin_width_ = (hi_ - lo_) / static_cast<double>(num_bins);
}

void
HistogramStats::Add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        if (value < min_) min_ = value;
        if (value > max_) max_ = value;
    }
    ++count_;
    sum_ += value;
    if (value < lo_) {
        ++underflow_;
    } else if (value >= hi_) {
        ++overflow_;
    } else {
        auto bin = static_cast<size_t>((value - lo_) / bin_width_);
        // Guard the floating-point edge where (value - lo_) / width
        // rounds up to the bin count even though value < hi_.
        if (bin >= bins_.size()) bin = bins_.size() - 1;
        ++bins_[bin];
    }
}

double
HistogramStats::Mean() const
{
    if (count_ == 0) return 0.0;
    return sum_ / static_cast<double>(count_);
}

double
HistogramStats::Min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
HistogramStats::Max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
HistogramStats::BinLow(int i) const
{
    return lo_ + bin_width_ * static_cast<double>(i);
}

double
HistogramStats::Percentile(double p) const
{
    POD_CHECK_ARG(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
    if (count_ == 0) return 0.0;
    // Rank in [0, count): the sample index the percentile names.
    double rank = (p / 100.0) * static_cast<double>(count_ - 1);
    double cumulative = static_cast<double>(underflow_);
    if (rank < cumulative) return min_;  // inside the underflow mass
    for (size_t i = 0; i < bins_.size(); ++i) {
        double in_bin = static_cast<double>(bins_[i]);
        if (in_bin > 0.0 && rank < cumulative + in_bin) {
            // Interpolate within the bin, then clamp to the exact
            // observed range so estimates never leave [min, max].
            double frac = (rank - cumulative + 0.5) / in_bin;
            double v = BinLow(static_cast<int>(i)) + frac * bin_width_;
            return std::min(std::max(v, min_), max_);
        }
        cumulative += in_bin;
    }
    return max_;  // inside the overflow mass (or p == 100)
}

void
HistogramStats::Merge(const HistogramStats& other)
{
    POD_CHECK_ARG(lo_ == other.lo_ && hi_ == other.hi_ &&
                      bins_.size() == other.bins_.size(),
                  "histogram merge requires identical bin geometry");
    if (other.count_ == 0) return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    count_ += other.count_;
    sum_ += other.sum_;
}

void
HistogramStats::Clear()
{
    std::fill(bins_.begin(), bins_.end(), 0L);
    underflow_ = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

std::string
HistogramStats::Summary() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "n=%ld mean=%.4g p50~%.4g p99~%.4g min=%.4g max=%.4g "
                  "under=%ld over=%ld",
                  count_, Mean(), Percentile(50), Percentile(99), Min(),
                  Max(), underflow_, overflow_);
    return std::string(buf);
}

double
GeoMean(const std::vector<double>& values)
{
    if (values.empty()) return 0.0;
    double acc = 0.0;
    for (double v : values) {
        POD_CHECK_ARG(v > 0.0, "geometric mean requires positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

}  // namespace pod
