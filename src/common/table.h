/**
 * @file
 * Fixed-width console table and CSV writers used by the benchmark
 * harnesses to print paper-style tables and figure series.
 */
#ifndef POD_COMMON_TABLE_H
#define POD_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace pod {

/**
 * Accumulates rows of string cells and prints them with aligned,
 * fixed-width columns, plus optional CSV export.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void AddRow(std::vector<std::string> cells);

    /** Number of data rows. */
    size_t RowCount() const { return rows_.size(); }

    /** Print as an aligned console table. */
    void Print(std::ostream& os) const;

    /** Print as CSV (headers + rows). */
    void PrintCsv(std::ostream& os) const;

    /** Write CSV to a file path; returns false on I/O error. */
    bool WriteCsv(const std::string& path) const;

    /** Format a double with the given precision as a cell. */
    static std::string Num(double v, int precision = 2);

    /** Format an integer as a cell. */
    static std::string Int(long long v);

    /** Format a percentage ("12.3%"). */
    static std::string Pct(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace pod

#endif  // POD_COMMON_TABLE_H
