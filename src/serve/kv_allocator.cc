/**
 * @file
 * Implementation of the KV allocation policies.
 */
#include "serve/kv_allocator.h"

#include "common/logging.h"
#include "serve/prefix/prefix_allocator.h"

namespace pod::serve {

// ---------------------------------------------------- conservative

ConservativeKvAllocator::ConservativeKvAllocator(long total_blocks,
                                                 int block_size)
    : KvAllocator(total_blocks, block_size)
{
}

bool
ConservativeKvAllocator::TryAdmit(const RequestState& state)
{
    // This policy never evicts, so the only admissible phase is a
    // fresh submission.
    POD_ASSERT(state.phase == Phase::kQueued);
    return pool_.Reserve(state.request.id, state.request.prefill_tokens +
                                               state.request.decode_tokens);
}

bool
ConservativeKvAllocator::CanAppend(const RequestState& state) const
{
    (void)state;
    return true;  // the admission reservation covers every token
}

void
ConservativeKvAllocator::Append(const RequestState& state)
{
    (void)state;  // nothing to grow
}

long
ConservativeKvAllocator::Evict(const RequestState& state, PreemptMode mode)
{
    (void)state;
    (void)mode;
    Panic("ConservativeKvAllocator can never need an eviction");
}

void
ConservativeKvAllocator::CheckFits(const RequestState& state) const
{
    POD_CHECK_ARG(pool_.BlocksFor(state.request.prefill_tokens +
                                  state.request.decode_tokens) <=
                      pool_.TotalBlocks(),
                  "request larger than the entire KV pool");
}

// ------------------------------------------------------- watermark

WatermarkKvAllocator::WatermarkKvAllocator(long total_blocks,
                                           int block_size,
                                           double watermark,
                                           PreemptMode preempt_mode)
    : KvAllocator(total_blocks, block_size),
      watermark_(watermark),
      preempt_mode_(preempt_mode),
      watermark_blocks_(static_cast<long>(watermark * total_blocks))
{
    POD_CHECK_ARG(watermark >= 0.0 && watermark < 1.0,
                  "kv_watermark must be in [0, 1)");
}

bool
WatermarkKvAllocator::TryAdmit(const RequestState& state)
{
    const int id = state.request.id;
    long needed;
    if (state.phase == Phase::kPreemptedSwapped) {
        // Swap-in restores the exact evicted footprint.
        auto it = swapped_out_.find(id);
        POD_ASSERT(it != swapped_out_.end());
        needed = it->second;
    } else {
        // Fresh or recompute-restored context: blocks for the
        // prompt (plus any generated tokens a recompute rebuilds);
        // decode growth comes later through Append().
        needed = pool_.BlocksFor(state.PrefillTarget());
    }
    // vLLM's watermark rule: admit only if the pool stays above the
    // watermark afterwards, so short bursts of decode growth do not
    // immediately preempt what was just admitted.
    if (pool_.FreeBlocks() - needed < watermark_blocks_) return false;
    bool ok = pool_.ReserveBlocks(id, needed);
    POD_ASSERT(ok);  // the watermark check implies it fits
    if (state.phase == Phase::kPreemptedSwapped) swapped_out_.erase(id);
    return true;
}

long
WatermarkKvAllocator::AppendNeed(const RequestState& state) const
{
    return pool_.BlocksFor(state.ContextLen() + 1) -
           pool_.Held(state.request.id);
}

bool
WatermarkKvAllocator::CanAppend(const RequestState& state) const
{
    long need = AppendNeed(state);
    return need <= 0 || pool_.FreeBlocks() >= need;
}

void
WatermarkKvAllocator::Append(const RequestState& state)
{
    long need = AppendNeed(state);
    if (need <= 0) return;
    bool ok = pool_.Grow(state.request.id, need);
    POD_ASSERT_MSG(ok, "Append() without CanAppend() on request %d",
                   state.request.id);
}

long
WatermarkKvAllocator::Evict(const RequestState& state, PreemptMode mode)
{
    long blocks = pool_.Free(state.request.id);
    if (mode == PreemptMode::kSwap) {
        swapped_out_[state.request.id] = blocks;
    }
    return blocks;
}

void
WatermarkKvAllocator::CheckFits(const RequestState& state) const
{
    // The worst-case on-device footprint is the full context (prompt
    // + all output tokens); if that cannot coexist with the admission
    // watermark even in an empty pool, the request would starve the
    // scheduler forever.
    POD_CHECK_ARG(pool_.BlocksFor(state.request.prefill_tokens +
                                  state.request.decode_tokens) +
                          watermark_blocks_ <=
                      pool_.TotalBlocks(),
                  "request larger than the KV pool minus the "
                  "admission watermark");
}

long
WatermarkKvAllocator::SwappedBlocks(int request_id) const
{
    auto it = swapped_out_.find(request_id);
    return it != swapped_out_.end() ? it->second : 0;
}

// --------------------------------------------------------- factory

std::unique_ptr<KvAllocator>
MakeKvAllocator(KvPolicy policy, long total_blocks, int block_size,
                double watermark, PreemptMode preempt_mode,
                bool prefix_cache_enabled)
{
    if (prefix_cache_enabled) {
        return std::make_unique<prefix::PrefixCachingKvAllocator>(
            policy, total_blocks, block_size, watermark, preempt_mode);
    }
    switch (policy) {
        case KvPolicy::kConservative:
            return std::make_unique<ConservativeKvAllocator>(total_blocks,
                                                             block_size);
        case KvPolicy::kWatermark:
            return std::make_unique<WatermarkKvAllocator>(
                total_blocks, block_size, watermark, preempt_mode);
    }
    Panic("unknown KvPolicy");
}

}  // namespace pod::serve
