/**
 * @file
 * Implementation of KV block accounting.
 */
#include "serve/kv_manager.h"

#include <limits>

#include "common/logging.h"

namespace pod::serve {

BlockKvManager::BlockKvManager(long total_blocks, int block_size)
    : total_blocks_(total_blocks), block_size_(block_size)
{
    POD_CHECK_ARG(total_blocks > 0, "KV pool must be non-empty");
    POD_CHECK_ARG(block_size >= 1, "block size must be >= 1");
    // Guard the pool's token capacity against long overflow: callers
    // multiply total_blocks * block_size when sizing transfers and
    // pressure figures.
    POD_CHECK_ARG(total_blocks <=
                      std::numeric_limits<long>::max() / block_size,
                  "KV pool token capacity overflows long");
}

long
BlockKvManager::BlocksFor(int tokens) const
{
    // CeilDiv is only defined for non-negative operands; a negative
    // token count would silently round to a zero-block reservation.
    POD_CHECK_ARG(tokens >= 0, "token count must be >= 0");
    return CeilDiv(static_cast<long>(tokens),
                   static_cast<long>(block_size_));
}

bool
BlockKvManager::CanReserve(int tokens) const
{
    return BlocksFor(tokens) <= FreeBlocks();
}

bool
BlockKvManager::Reserve(int request_id, int tokens)
{
    return ReserveBlocks(request_id, BlocksFor(tokens));
}

bool
BlockKvManager::ReserveBlocks(int request_id, long blocks)
{
    POD_CHECK_ARG(blocks >= 0, "block count must be >= 0");
    POD_CHECK_ARG(reserved_.find(request_id) == reserved_.end(),
                  "request already holds a reservation");
    if (blocks > FreeBlocks()) return false;
    reserved_[request_id] = blocks;
    used_blocks_ += blocks;
    return true;
}

bool
BlockKvManager::Grow(int request_id, long extra_blocks)
{
    POD_CHECK_ARG(extra_blocks >= 0, "block count must be >= 0");
    auto it = reserved_.find(request_id);
    POD_CHECK_ARG(it != reserved_.end(), "request holds no reservation");
    if (extra_blocks > FreeBlocks()) return false;
    it->second += extra_blocks;
    used_blocks_ += extra_blocks;
    return true;
}

long
BlockKvManager::Held(int request_id) const
{
    auto it = reserved_.find(request_id);
    return it != reserved_.end() ? it->second : 0;
}

long
BlockKvManager::Free(int request_id)
{
    auto it = reserved_.find(request_id);
    POD_CHECK_ARG(it != reserved_.end(), "request holds no reservation");
    long blocks = it->second;
    used_blocks_ -= blocks;
    reserved_.erase(it);
    return blocks;
}

bool
BlockKvManager::ReserveShared(long blocks)
{
    POD_CHECK_ARG(blocks >= 0, "block count must be >= 0");
    if (blocks > FreeBlocks()) return false;
    shared_blocks_ += blocks;
    used_blocks_ += blocks;
    return true;
}

void
BlockKvManager::ReleaseShared(long blocks)
{
    POD_CHECK_ARG(blocks >= 0, "block count must be >= 0");
    POD_CHECK_ARG(blocks <= shared_blocks_,
                  "shared account holds fewer blocks than released");
    shared_blocks_ -= blocks;
    used_blocks_ -= blocks;
}

void
BlockKvManager::TransferToShared(int request_id, long blocks)
{
    POD_CHECK_ARG(blocks >= 0, "block count must be >= 0");
    auto it = reserved_.find(request_id);
    POD_CHECK_ARG(it != reserved_.end(), "request holds no reservation");
    POD_CHECK_ARG(blocks <= it->second,
                  "request holds fewer blocks than transferred");
    it->second -= blocks;
    shared_blocks_ += blocks;
    // used_blocks_ unchanged: the blocks only changed owner.
}

void
BlockKvManager::Shrink(int request_id, long blocks)
{
    POD_CHECK_ARG(blocks >= 0, "block count must be >= 0");
    auto it = reserved_.find(request_id);
    POD_CHECK_ARG(it != reserved_.end(), "request holds no reservation");
    POD_CHECK_ARG(blocks <= it->second,
                  "request holds fewer blocks than shrunk");
    it->second -= blocks;
    used_blocks_ -= blocks;
}

void
BlockKvManager::CheckLedger() const
{
    long held = 0;
    for (const auto& [id, blocks] : reserved_) {
        (void)id;
        POD_ASSERT(blocks >= 0);
        held += blocks;
    }
    POD_ASSERT(shared_blocks_ >= 0);
    POD_ASSERT(held + shared_blocks_ == used_blocks_);
    POD_ASSERT(used_blocks_ >= 0 && used_blocks_ <= total_blocks_);
}

}  // namespace pod::serve
