/**
 * @file
 * Implementation of KV block accounting.
 */
#include "serve/kv_manager.h"

#include "common/logging.h"

namespace pod::serve {

BlockKvManager::BlockKvManager(long total_blocks, int block_size)
    : total_blocks_(total_blocks), block_size_(block_size)
{
    POD_CHECK_ARG(total_blocks > 0, "KV pool must be non-empty");
    POD_CHECK_ARG(block_size >= 1, "block size must be >= 1");
}

long
BlockKvManager::BlocksFor(int tokens) const
{
    return CeilDiv(static_cast<long>(tokens),
                   static_cast<long>(block_size_));
}

bool
BlockKvManager::CanReserve(int tokens) const
{
    return BlocksFor(tokens) <= FreeBlocks();
}

bool
BlockKvManager::Reserve(int request_id, int tokens)
{
    POD_CHECK_ARG(reserved_.find(request_id) == reserved_.end(),
                  "request already holds a reservation");
    long blocks = BlocksFor(tokens);
    if (blocks > FreeBlocks()) return false;
    reserved_[request_id] = blocks;
    used_blocks_ += blocks;
    return true;
}

void
BlockKvManager::Free(int request_id)
{
    auto it = reserved_.find(request_id);
    POD_CHECK_ARG(it != reserved_.end(), "request holds no reservation");
    used_blocks_ -= it->second;
    reserved_.erase(it);
}

}  // namespace pod::serve
