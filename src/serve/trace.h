/**
 * @file
 * Synthetic workload traces matching the paper's evaluation
 * workloads (S5: internal enterprise and arXiv-summarization based,
 * plus the offline and P:D-ratio sweeps).
 *
 * The real traces are proprietary / dataset-derived; these generators
 * reproduce the published statistics: mean context length, P:D ratio
 * range, mean decode length and Poisson arrivals (docs/DESIGN.md S2).
 */
#ifndef POD_SERVE_TRACE_H
#define POD_SERVE_TRACE_H

#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/request.h"

namespace pod::serve {

/** Parameters of a synthetic workload. */
struct WorkloadSpec
{
    std::string name = "workload";

    /** Mean / stddev of the (log-normal) prompt length. */
    double prefill_mean = 10500.0;
    double prefill_stddev = 5000.0;
    int prefill_min = 1024;
    int prefill_max = 32768;

    /** Mean / stddev of the (log-normal) output length. */
    double decode_mean = 331.0;
    double decode_stddev = 250.0;
    int decode_min = 16;
    int decode_max = 4096;

    /**
     * Internal enterprise workload (paper S5): mean context 10.5K,
     * P:D ratio 0-40, mean decode 331.
     */
    static WorkloadSpec Internal();

    /**
     * arXiv-summarization workload (paper S5): mean context 9.5K,
     * P:D 0-50, mean decode 470 (42% more decode tokens than
     * Internal).
     */
    static WorkloadSpec Arxiv();
};

/**
 * Generate `count` requests with log-normal prompt/output lengths and
 * Poisson arrivals at rate `qps` (qps <= 0: all arrive at t=0).
 */
std::vector<Request> GenerateTrace(const WorkloadSpec& spec, int count,
                                   double qps, Rng& rng);

/**
 * Offline workload of Fig. 12: `count` identical requests
 * (prefill_tokens, decode_tokens), all queued at t=0.
 */
std::vector<Request> UniformTrace(int count, int prefill_tokens,
                                  int decode_tokens);

/**
 * P:D-ratio sweep workload of Fig. 15: every request totals
 * ~`total_tokens` split so prefill:decode == ratio.
 */
std::vector<Request> PdRatioTrace(int count, int total_tokens,
                                  double pd_ratio);

/**
 * Parameters of a session-structured workload (serve/prefix/): chat
 * sessions opening with a system prompt drawn Zipf-style from a
 * shared pool, then multi-turn exchanges where every turn's prompt
 * re-sends the whole conversation so far. The sharing structure is
 * expressed through Request::prompt segments, which the prefix cache
 * hashes into block identities; every pre-existing generator emits
 * opaque prompts instead, so only session traces can produce cache
 * hits.
 */
struct SessionWorkloadSpec
{
    std::string name = "chat";

    /** Distinct shared system prompts in the pool. */
    int num_system_prompts = 32;

    /** Zipf popularity skew: prompt k is drawn with weight
     * 1 / (k+1)^zipf_s. */
    double zipf_s = 1.1;

    /**
     * Probability a session opens with a pool system prompt. The
     * complement opens with a session-unique preamble (no sharing),
     * so 0 makes every prompt effectively opaque to the cache.
     */
    double share_ratio = 0.5;

    /**
     * System-prompt / preamble length range. Pool prompt k's length
     * is a deterministic function of k (two sessions sharing a
     * prompt must agree on its tokens); unique preambles draw
     * uniformly.
     */
    int system_tokens_min = 1024;
    int system_tokens_max = 4096;

    /** Per-turn user message length (log-normal, clamped). */
    double user_mean = 256.0;
    double user_stddev = 128.0;
    int user_min = 16;
    int user_max = 2048;

    /** Per-turn response length (log-normal, clamped). This is the
     * turn's decode_tokens AND the size of the response segment the
     * next turn's prompt replays. */
    double decode_mean = 256.0;
    double decode_stddev = 128.0;
    int decode_min = 16;
    int decode_max = 1024;

    /** Turns per session (uniform in [min_turns, max_turns]). */
    int min_turns = 1;
    int max_turns = 4;

    /** Mean user think time between a turn's arrival and the next
     * (exponential, seconds). */
    double think_time_mean = 4.0;

    /** Defaults above: a chat-assistant workload with heavyweight
     * system prompts and light per-turn messages. */
    static SessionWorkloadSpec Chat();
};

/**
 * Generate `num_sessions` sessions with Poisson session starts at
 * rate `qps` (qps <= 0: all sessions start at t=0) and exponential
 * think-time gaps between turns. Turn j's prompt is the full
 * conversation prefix [system][user_0][resp_0]...[user_j], so
 * consecutive turns of one session share a growing prefix and
 * sessions sharing a system prompt share its blocks. Requests are
 * returned in arrival order with ids 0..N-1 in that order, and carry
 * session_id / turn for affinity routing.
 */
std::vector<Request> GenerateSessionTrace(const SessionWorkloadSpec& spec,
                                          int num_sessions, double qps,
                                          Rng& rng);

}  // namespace pod::serve

#endif  // POD_SERVE_TRACE_H
