/**
 * @file
 * Synthetic workload traces matching the paper's evaluation
 * workloads (S5: internal enterprise and arXiv-summarization based,
 * plus the offline and P:D-ratio sweeps).
 *
 * The real traces are proprietary / dataset-derived; these generators
 * reproduce the published statistics: mean context length, P:D ratio
 * range, mean decode length and Poisson arrivals (docs/DESIGN.md S2).
 */
#ifndef POD_SERVE_TRACE_H
#define POD_SERVE_TRACE_H

#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/request.h"

namespace pod::serve {

/** Parameters of a synthetic workload. */
struct WorkloadSpec
{
    std::string name = "workload";

    /** Mean / stddev of the (log-normal) prompt length. */
    double prefill_mean = 10500.0;
    double prefill_stddev = 5000.0;
    int prefill_min = 1024;
    int prefill_max = 32768;

    /** Mean / stddev of the (log-normal) output length. */
    double decode_mean = 331.0;
    double decode_stddev = 250.0;
    int decode_min = 16;
    int decode_max = 4096;

    /**
     * Internal enterprise workload (paper S5): mean context 10.5K,
     * P:D ratio 0-40, mean decode 331.
     */
    static WorkloadSpec Internal();

    /**
     * arXiv-summarization workload (paper S5): mean context 9.5K,
     * P:D 0-50, mean decode 470 (42% more decode tokens than
     * Internal).
     */
    static WorkloadSpec Arxiv();
};

/**
 * Generate `count` requests with log-normal prompt/output lengths and
 * Poisson arrivals at rate `qps` (qps <= 0: all arrive at t=0).
 */
std::vector<Request> GenerateTrace(const WorkloadSpec& spec, int count,
                                   double qps, Rng& rng);

/**
 * Offline workload of Fig. 12: `count` identical requests
 * (prefill_tokens, decode_tokens), all queued at t=0.
 */
std::vector<Request> UniformTrace(int count, int prefill_tokens,
                                  int decode_tokens);

/**
 * P:D-ratio sweep workload of Fig. 15: every request totals
 * ~`total_tokens` split so prefill:decode == ratio.
 */
std::vector<Request> PdRatioTrace(int count, int total_tokens,
                                  double pd_ratio);

}  // namespace pod::serve

#endif  // POD_SERVE_TRACE_H
