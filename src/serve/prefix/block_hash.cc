/**
 * @file
 * Implementation of block-granular prompt hashing.
 */
#include "serve/prefix/block_hash.h"

#include <algorithm>

#include "common/logging.h"

namespace pod::serve::prefix {

std::vector<uint64_t>
BlockHashes(const Request& request, int block_size)
{
    POD_CHECK_ARG(block_size >= 1, "block size must be >= 1");
    if (request.prompt.empty()) return {};

    long total = 0;
    for (const PromptSegment& seg : request.prompt) {
        POD_CHECK_ARG(seg.tokens >= 1,
                      "prompt segments must be non-empty");
        total += seg.tokens;
    }
    POD_CHECK_ARG(total == request.prefill_tokens,
                  "prompt segments must sum to prefill_tokens");

    // Fold segment pieces into a running hash; emit it at every block
    // boundary. The running value carries across blocks, which is the
    // chaining: h_k depends on every piece of blocks 0..k.
    const long full_blocks =
        static_cast<long>(request.prefill_tokens) / block_size;
    std::vector<uint64_t> hashes;
    hashes.reserve(static_cast<size_t>(full_blocks));
    uint64_t h = HashTag("pod.prefix.block");
    int filled = 0;
    size_t seg = 0;
    int seg_off = 0;
    while (static_cast<long>(hashes.size()) < full_blocks) {
        const PromptSegment& s = request.prompt[seg];
        int take = std::min(s.tokens - seg_off, block_size - filled);
        h = MixHash(h, s.content_id);
        h = MixHash(h, static_cast<uint64_t>(seg_off));
        h = MixHash(h, static_cast<uint64_t>(take));
        seg_off += take;
        filled += take;
        if (seg_off == s.tokens) {
            ++seg;
            seg_off = 0;
        }
        if (filled == block_size) {
            hashes.push_back(h);
            filled = 0;
        }
    }
    return hashes;
}

}  // namespace pod::serve::prefix
