/**
 * @file
 * Radix tree of cached prompt-block runs with copy-on-write refcounts
 * (vLLM/SGLang-style automatic prefix caching; docs/DESIGN.md S2.6).
 *
 * The tree is keyed on chained block hashes (serve/prefix/
 * block_hash.h): each node holds a path-compressed run of
 * consecutive block hashes, and because the hashes chain, two
 * requests' streams agree exactly up to their longest shared prefix —
 * the tree never needs to merge converging paths.
 *
 * Refcounts are walk-based: a live request referencing K cached
 * blocks holds one reference on every node of the root path covering
 * hashes [0, K). Acquire/Insert split nodes at the request's coverage
 * boundary, so at all times every holder of a node covers its entire
 * run — which is why a mid-run split can hand both halves the
 * original refcount, and why Release can rediscover the referenced
 * path purely by re-walking the hashes. A node with refcount 0 stays
 * cached (a future request can still hit it) until LRU eviction
 * reclaims it under pool pressure; eviction only ever removes
 * refcount-0 leaves with no live descendants, so a shared block is
 * never freed out from under a live request by construction.
 *
 * The cache is pure hash bookkeeping: the block *counts* it caches
 * live in BlockKvManager's shared account, and the owning allocator
 * (serve/prefix/prefix_allocator.h) keeps the two in lockstep
 * (CachedBlocks() == pool.SharedBlocks(), audited by the randomized
 * CoW oracle test).
 */
#ifndef POD_SERVE_PREFIX_PREFIX_CACHE_H
#define POD_SERVE_PREFIX_PREFIX_CACHE_H

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace pod::serve::prefix {

/**
 * Cumulative prefix-cache statistics (the kv_prefix.* telemetry
 * rows, docs/OBSERVABILITY.md). Counters accumulate across Reset();
 * cached/shared_blocks are point-in-time gauges.
 */
struct PrefixCacheStats
{
    /** Admissions of hashable prompts that matched >= 1 block. */
    long hits = 0;

    /** Admissions of hashable prompts that matched nothing. */
    long misses = 0;

    /** Blocks served from cache across all hits. */
    long hit_blocks = 0;

    /** Blocks newly inserted into the tree. */
    long inserted_blocks = 0;

    /** Blocks reclaimed by LRU eviction. */
    long evicted_blocks = 0;

    /** Prefill tokens admissions skipped thanks to cache hits. */
    long prefill_tokens_saved = 0;

    /** Gauge: blocks currently cached in the tree. */
    long cached_blocks = 0;

    /** Gauge: cached blocks referenced by >= 2 live requests. */
    long shared_blocks = 0;

    /** Hits / (hits + misses); 0 when no hashable admissions. */
    double HitRate() const
    {
        long lookups = hits + misses;
        return lookups > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
    }
};

/** Radix prefix cache over chained block hashes. */
class PrefixCache
{
  public:
    PrefixCache();

    /**
     * Longest cached prefix of `hashes`, in blocks, capped at
     * `max_blocks`. Pure query: no refcounts move, no LRU stamps
     * update, no nodes split.
     */
    long MatchBlocks(const std::vector<uint64_t>& hashes,
                     long max_blocks) const;

    /**
     * Take one reference per node on the path covering the first
     * `blocks` hashes for request `id` (its admission-time cache
     * hit). Splits the boundary node so coverage aligns with node
     * boundaries. Fatal if the path is not fully cached or the
     * request already holds references.
     */
    void Acquire(int id, const std::vector<uint64_t>& hashes,
                 long blocks);

    /** Outcome of InsertAndRef. */
    struct InsertResult
    {
        /** Blocks newly created in the tree (the request's private
         * blocks that now become shared). */
        long new_blocks = 0;

        /** Pre-existing cached blocks beyond the request's prior
         * coverage (its private duplicates can be dropped). */
        long dedup_blocks = 0;
    };

    /**
     * Extend the tree with the request's full hash chain (called
     * when its prefill completes) and extend its references to cover
     * every hash. Blocks inside the request's prior coverage keep
     * their existing reference.
     */
    InsertResult InsertAndRef(int id,
                              const std::vector<uint64_t>& hashes);

    /**
     * Drop every reference request `id` holds by re-walking its hash
     * chain (preemption or completion). The nodes stay cached at
     * refcount 0. No-op if the request holds none.
     */
    void Release(int id, const std::vector<uint64_t>& hashes);

    /** Blocks request `id` currently references (0 if none). */
    long RefBlocks(int id) const;

    /**
     * Evict refcount-0 leaf runs, least-recently-used subtree first,
     * until `need` blocks are reclaimed or nothing evictable is
     * left. Returns blocks actually freed. Whole-node granularity
     * (path compression makes runs the natural eviction unit), so
     * the return can overshoot `need`.
     */
    long EvictLru(long need);

    /** Blocks reclaimable right now (refcount-0 subtrees). O(1). */
    long EvictableBlocks() const { return evictable_blocks_; }

    /** Blocks cached in the tree. O(1). */
    long TotalBlocks() const { return stats_.cached_blocks; }

    /** Statistics; the owning allocator also bumps the hit/miss/
     * saved counters through this reference. */
    PrefixCacheStats& Stats() { return stats_; }
    const PrefixCacheStats& Stats() const { return stats_; }

    /**
     * Audit every tree invariant from scratch against the
     * incremental counters: per-node liveness, the evictable/cached/
     * shared gauges, refcount monotonicity along paths, and the sum
     * of per-request coverages vs total refcounts. Fatal on drift.
     * O(tree); test/debug use.
     */
    void CheckIntegrity() const;

  private:
    struct Node
    {
        /** Path-compressed run of consecutive block hashes. */
        std::vector<uint64_t> run;

        Node* parent = nullptr;

        /** Live requests whose coverage includes this whole run. */
        long refcount = 0;

        /** Children whose subtree holds any reference. */
        int live_children = 0;

        /** Monotonic touch stamp (LRU recency; unique per touch). */
        uint64_t last_use = 0;

        /** Keyed by the first hash of the child's run. std::map
         * keeps iteration deterministic for audits and eviction
         * scans. */
        std::map<uint64_t, std::unique_ptr<Node>> children;

        bool Live() const { return refcount > 0 || live_children > 0; }
    };

    /** Split `node` so its run keeps only the first `keep` hashes;
     * the remainder (run tail, children, refcount) moves to a new
     * child. Gauges are unaffected: both halves inherit liveness
     * and sharing. */
    void SplitNode(Node* node, long keep);

    /** refcount transitions with gauge upkeep. */
    void Ref(Node* node);
    void Unref(Node* node);

    /** Remove a dead leaf (refcount 0, no children). */
    void EvictNode(Node* node);

    Node root_;
    uint64_t clock_ = 0;
    PrefixCacheStats stats_;

    /** Coverage (referenced block count) per live request. */
    std::unordered_map<int, long> ref_blocks_;

    /** Blocks in subtrees holding no reference at all. */
    long evictable_blocks_ = 0;
};

}  // namespace pod::serve::prefix

#endif  // POD_SERVE_PREFIX_PREFIX_CACHE_H
