/**
 * @file
 * Prefix-caching KV allocation policy (docs/DESIGN.md S2.6).
 *
 * Wraps either base policy (conservative or watermark) around the
 * radix prefix cache: admission first matches the request's chained
 * block hashes against the cache and only reserves private blocks
 * for the unmatched remainder, so a hit converts prefill work into
 * decode-shaped work (the paper's fig15 P:D shift). When the
 * prompt's prefill completes, its blocks migrate into the pool's
 * shared account and the tree; duplicates already cached by an
 * earlier request are dropped. Under pool pressure — admission gate
 * or decode growth — refcount-0 cache subtrees are LRU-evicted
 * before any running request is preempted.
 *
 * Interaction with the preemption paths: only PreemptMode::kRecompute
 * is supported under the watermark base. Swap would park a victim's
 * *shared* blocks on the host while other live requests still
 * reference them on-device, splitting one block's identity in two;
 * recompute simply drops the references (the nodes stay cached at
 * refcount 0, so re-admission usually re-matches and the recompute
 * is cheap). The scheduler's frontmost-decoder guarantee survives:
 * after evicting every other decoder, all cached blocks not
 * referenced by the frontmost request have refcount 0, so
 * free + evictable >= CheckFits' worst-case footprint.
 */
#ifndef POD_SERVE_PREFIX_PREFIX_ALLOCATOR_H
#define POD_SERVE_PREFIX_PREFIX_ALLOCATOR_H

#include <string>
#include <unordered_map>
#include <vector>

#include "serve/kv_allocator.h"
#include "serve/prefix/prefix_cache.h"

namespace pod::serve::prefix {

/** KvAllocator with vLLM/SGLang-style automatic prefix caching. */
class PrefixCachingKvAllocator : public KvAllocator
{
  public:
    /**
     * @param base_policy admission/growth semantics to wrap
     *        (kConservative: full up-front reservation, never
     *        preempts; kWatermark: vLLM watermark admission +
     *        incremental growth + recompute preemption).
     * @param watermark admission watermark fraction (kWatermark
     *        base only; ignored — forced to 0 — for kConservative).
     * @param preempt_mode must be kRecompute for a kWatermark base.
     */
    PrefixCachingKvAllocator(KvPolicy base_policy, long total_blocks,
                             int block_size, double watermark,
                             PreemptMode preempt_mode);

    bool TryAdmit(const RequestState& state) override;
    bool CanAppend(const RequestState& state) const override;
    void Append(const RequestState& state) override;
    long Evict(const RequestState& state, PreemptMode mode) override;
    void Release(int request_id) override;
    void CheckFits(const RequestState& state) const override;

    PreemptMode preempt_mode() const override
    {
        return PreemptMode::kRecompute;
    }

    double WatermarkFraction() const override { return watermark_; }

    std::string Name() const override;

    int LastAdmitCachedTokens() const override
    {
        return last_admit_cached_tokens_;
    }

    void OnPrefillComplete(const RequestState& state) override;

    const PrefixCacheStats* PrefixStats() const override
    {
        return &cache_.Stats();
    }

    /** The underlying radix tree (tests, benches). */
    const PrefixCache& Cache() const { return cache_; }

    /**
     * Audit every cross-structure invariant: the pool ledger, the
     * tree's internal counters, and the cache-vs-shared-account
     * lockstep (tree blocks == pool shared blocks, per-request
     * coverage == recorded shared cover). Fatal on drift. O(tree).
     */
    void AuditLedger() const;

  private:
    /** Hash chain for a request, computed once and cached by id. */
    const std::vector<uint64_t>& HashesFor(const RequestState& state);

    /** Blocks the next materialized token needs beyond private +
     * cache-covered blocks. */
    long AppendNeed(const RequestState& state) const;

    KvPolicy base_policy_;
    double watermark_;
    long watermark_blocks_;
    PrefixCache cache_;
    int last_admit_cached_tokens_ = 0;

    /** Hash chains of in-flight requests (admission .. release). */
    std::unordered_map<int, std::vector<uint64_t>> hashes_;

    /** Context blocks covered by cache references, per request. */
    std::unordered_map<int, long> shared_cover_;
};

}  // namespace pod::serve::prefix

#endif  // POD_SERVE_PREFIX_PREFIX_ALLOCATOR_H
