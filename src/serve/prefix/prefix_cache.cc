/**
 * @file
 * Implementation of the radix prefix cache.
 */
#include "serve/prefix/prefix_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace pod::serve::prefix {

PrefixCache::PrefixCache() = default;

long
PrefixCache::MatchBlocks(const std::vector<uint64_t>& hashes,
                         long max_blocks) const
{
    long limit = std::min<long>(max_blocks,
                                static_cast<long>(hashes.size()));
    long matched = 0;
    const Node* n = &root_;
    while (matched < limit) {
        auto it = n->children.find(hashes[static_cast<size_t>(matched)]);
        if (it == n->children.end()) break;
        const Node* c = it->second.get();
        long m = 0;
        long cap = std::min<long>(static_cast<long>(c->run.size()),
                                  limit - matched);
        while (m < cap &&
               c->run[static_cast<size_t>(m)] ==
                   hashes[static_cast<size_t>(matched + m)]) {
            ++m;
        }
        matched += m;
        if (m < static_cast<long>(c->run.size())) break;  // divergence
        n = c;
    }
    return matched;
}

void
PrefixCache::SplitNode(Node* node, long keep)
{
    POD_ASSERT(keep >= 1 && keep < static_cast<long>(node->run.size()));
    auto rest = std::make_unique<Node>();
    rest->run.assign(node->run.begin() + keep, node->run.end());
    rest->parent = node;
    rest->refcount = node->refcount;  // every holder covered both halves
    rest->live_children = node->live_children;
    rest->last_use = node->last_use;
    rest->children = std::move(node->children);
    for (auto& [key, child] : rest->children) {
        (void)key;
        child->parent = rest.get();
    }
    node->run.resize(static_cast<size_t>(keep));
    Node* raw = rest.get();
    node->children.clear();
    node->children.emplace(raw->run.front(), std::move(rest));
    node->live_children = raw->Live() ? 1 : 0;
    // Gauges are invariant under a split: cached/shared/evictable all
    // count blocks, and both halves inherit the original refcount and
    // liveness, so the per-block classification is unchanged.
}

void
PrefixCache::Ref(Node* node)
{
    bool was_live = node->Live();
    ++node->refcount;
    if (node->refcount == 2) {
        stats_.shared_blocks += static_cast<long>(node->run.size());
    }
    if (was_live) return;
    evictable_blocks_ -= static_cast<long>(node->run.size());
    for (Node* p = node->parent; p != nullptr; p = p->parent) {
        bool p_was_live = p->Live();
        ++p->live_children;
        if (p_was_live) break;  // ancestors already count p as live
        evictable_blocks_ -= static_cast<long>(p->run.size());
    }
}

void
PrefixCache::Unref(Node* node)
{
    POD_ASSERT(node->refcount > 0);
    if (node->refcount == 2) {
        stats_.shared_blocks -= static_cast<long>(node->run.size());
    }
    --node->refcount;
    if (node->Live()) return;
    evictable_blocks_ += static_cast<long>(node->run.size());
    for (Node* p = node->parent; p != nullptr; p = p->parent) {
        --p->live_children;
        if (p->Live()) break;
        evictable_blocks_ += static_cast<long>(p->run.size());
    }
}

void
PrefixCache::Acquire(int id, const std::vector<uint64_t>& hashes,
                     long blocks)
{
    POD_CHECK_ARG(blocks >= 0 &&
                      blocks <= static_cast<long>(hashes.size()),
                  "acquired blocks exceed the hash chain");
    POD_CHECK_ARG(ref_blocks_.find(id) == ref_blocks_.end(),
                  "request already holds prefix references");
    if (blocks == 0) return;
    Node* n = &root_;
    long pos = 0;
    while (pos < blocks) {
        auto it = n->children.find(hashes[static_cast<size_t>(pos)]);
        POD_ASSERT(it != n->children.end());  // caller matched first
        Node* c = it->second.get();
        long take = std::min<long>(static_cast<long>(c->run.size()),
                                   blocks - pos);
        for (long i = 0; i < take; ++i) {
            POD_ASSERT(c->run[static_cast<size_t>(i)] ==
                       hashes[static_cast<size_t>(pos + i)]);
        }
        if (take < static_cast<long>(c->run.size())) SplitNode(c, take);
        Ref(c);
        c->last_use = ++clock_;
        pos += take;
        n = c;
    }
    ref_blocks_[id] = blocks;
}

PrefixCache::InsertResult
PrefixCache::InsertAndRef(int id, const std::vector<uint64_t>& hashes)
{
    POD_CHECK_ARG(!hashes.empty(), "nothing to insert");
    long prior = 0;
    auto rit = ref_blocks_.find(id);
    if (rit != ref_blocks_.end()) prior = rit->second;
    POD_CHECK_ARG(prior <= static_cast<long>(hashes.size()),
                  "prior coverage exceeds the hash chain");

    InsertResult result;
    Node* n = &root_;
    long pos = 0;
    const long total = static_cast<long>(hashes.size());
    while (pos < total) {
        auto it = n->children.find(hashes[static_cast<size_t>(pos)]);
        if (it == n->children.end()) {
            // Unseen suffix: one path-compressed node holds it all.
            auto node = std::make_unique<Node>();
            node->run.assign(hashes.begin() + pos, hashes.end());
            node->parent = n;
            node->last_use = ++clock_;
            Node* raw = node.get();
            n->children.emplace(raw->run.front(), std::move(node));
            long run_blocks = static_cast<long>(raw->run.size());
            stats_.cached_blocks += run_blocks;
            stats_.inserted_blocks += run_blocks;
            evictable_blocks_ += run_blocks;  // born dead; Ref revives
            result.new_blocks += run_blocks;
            Ref(raw);
            pos = total;
            break;
        }
        Node* c = it->second.get();
        long m = 0;
        long cap = std::min<long>(static_cast<long>(c->run.size()),
                                  total - pos);
        while (m < cap &&
               c->run[static_cast<size_t>(m)] ==
                   hashes[static_cast<size_t>(pos + m)]) {
            ++m;
        }
        POD_ASSERT(m >= 1);  // the child key matched hashes[pos]
        if (m < static_cast<long>(c->run.size())) SplitNode(c, m);
        if (pos >= prior) {
            Ref(c);
            result.dedup_blocks += m;
        } else {
            // Nodes inside prior coverage are already referenced and
            // can never straddle its boundary (splits only refine).
            POD_ASSERT(pos + m <= prior);
        }
        c->last_use = ++clock_;
        pos += m;
        n = c;
    }
    ref_blocks_[id] = total;
    return result;
}

void
PrefixCache::Release(int id, const std::vector<uint64_t>& hashes)
{
    auto it = ref_blocks_.find(id);
    if (it == ref_blocks_.end()) return;
    long blocks = it->second;
    POD_CHECK_ARG(blocks <= static_cast<long>(hashes.size()),
                  "coverage exceeds the hash chain");
    Node* n = &root_;
    long pos = 0;
    while (pos < blocks) {
        auto cit = n->children.find(hashes[static_cast<size_t>(pos)]);
        POD_ASSERT(cit != n->children.end());
        Node* c = cit->second.get();
        // Coverage boundaries always align with node boundaries.
        POD_ASSERT(static_cast<long>(c->run.size()) <= blocks - pos);
        Unref(c);
        c->last_use = ++clock_;  // LRU reflects last activity
        pos += static_cast<long>(c->run.size());
        n = c;
    }
    ref_blocks_.erase(it);
}

long
PrefixCache::RefBlocks(int id) const
{
    auto it = ref_blocks_.find(id);
    return it != ref_blocks_.end() ? it->second : 0;
}

void
PrefixCache::EvictNode(Node* node)
{
    POD_ASSERT(node->children.empty() && !node->Live());
    long run_blocks = static_cast<long>(node->run.size());
    stats_.cached_blocks -= run_blocks;
    stats_.evicted_blocks += run_blocks;
    evictable_blocks_ -= run_blocks;
    Node* parent = node->parent;
    POD_ASSERT(parent != nullptr);  // the root is never evicted
    parent->children.erase(node->run.front());  // destroys node
}

long
PrefixCache::EvictLru(long need)
{
    POD_CHECK_ARG(need >= 0, "eviction demand must be >= 0");
    long freed = 0;
    while (freed < need) {
        // Oldest dead leaf. Parents are stamped on every walk that
        // stamps a child, so last_use is monotone along paths and
        // leaf-first scanning is oldest-subtree-first. O(tree) per
        // eviction; pressure episodes are rare relative to steps.
        Node* victim = nullptr;
        std::vector<Node*> stack;
        stack.push_back(const_cast<Node*>(&root_));
        while (!stack.empty()) {
            Node* n = stack.back();
            stack.pop_back();
            if (n != &root_ && n->children.empty() && !n->Live()) {
                if (victim == nullptr || n->last_use < victim->last_use) {
                    victim = n;
                }
            }
            for (auto& [key, child] : n->children) {
                (void)key;
                stack.push_back(child.get());
            }
        }
        if (victim == nullptr) break;  // nothing evictable left
        freed += static_cast<long>(victim->run.size());
        EvictNode(victim);
    }
    return freed;
}

void
PrefixCache::CheckIntegrity() const
{
    long cached = 0;
    long shared = 0;
    long evictable = 0;
    long ref_weight = 0;  // sum of refcount * run over all nodes

    // Bottom-up audit of liveness and the counter invariants.
    struct Frame
    {
        const Node* node;
        bool expanded;
    };
    std::vector<Frame> stack;
    std::unordered_map<const Node*, bool> live;
    stack.push_back({&root_, false});
    while (!stack.empty()) {
        Frame& f = stack.back();
        if (!f.expanded) {
            f.expanded = true;
            for (const auto& [key, child] : f.node->children) {
                (void)key;
                stack.push_back({child.get(), false});
            }
            continue;
        }
        const Node* n = f.node;
        stack.pop_back();
        int live_children = 0;
        long child_refs = 0;
        for (const auto& [key, child] : n->children) {
            POD_ASSERT(key == child->run.front());
            POD_ASSERT(child->parent == n);
            POD_ASSERT(!child->run.empty());
            if (live.at(child.get())) ++live_children;
            child_refs += child->refcount;
        }
        POD_ASSERT(n->refcount >= 0);
        POD_ASSERT(n->live_children == live_children);
        // Walk-based refcounts: every request referencing a child
        // also references its parent (plus requests ending here).
        if (n != &root_) POD_ASSERT(n->refcount >= child_refs);
        bool n_live = n->refcount > 0 || live_children > 0;
        live[n] = n_live;
        if (n == &root_) continue;
        long run_blocks = static_cast<long>(n->run.size());
        cached += run_blocks;
        if (n->refcount >= 2) shared += run_blocks;
        if (!n_live) evictable += run_blocks;
        ref_weight += n->refcount * run_blocks;
    }

    POD_ASSERT(cached == stats_.cached_blocks);
    POD_ASSERT(shared == stats_.shared_blocks);
    POD_ASSERT(evictable == evictable_blocks_);

    long coverage = 0;
    for (const auto& [id, blocks] : ref_blocks_) {
        (void)id;
        POD_ASSERT(blocks > 0);
        coverage += blocks;
    }
    // Each live request references exactly the nodes covering its
    // blocks, so total coverage equals refcount-weighted tree size.
    POD_ASSERT(coverage == ref_weight);
}

}  // namespace pod::serve::prefix
