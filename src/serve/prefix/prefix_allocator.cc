/**
 * @file
 * Implementation of the prefix-caching KV allocation policy.
 */
#include "serve/prefix/prefix_allocator.h"

#include <algorithm>

#include "common/logging.h"
#include "serve/prefix/block_hash.h"

namespace pod::serve::prefix {

PrefixCachingKvAllocator::PrefixCachingKvAllocator(KvPolicy base_policy,
                                                   long total_blocks,
                                                   int block_size,
                                                   double watermark,
                                                   PreemptMode preempt_mode)
    : KvAllocator(total_blocks, block_size),
      base_policy_(base_policy),
      watermark_(base_policy == KvPolicy::kWatermark ? watermark : 0.0),
      watermark_blocks_(static_cast<long>(watermark_ * total_blocks))
{
    POD_CHECK_ARG(watermark_ >= 0.0 && watermark_ < 1.0,
                  "kv_watermark must be in [0, 1)");
    // Swap would park shared blocks on the host while other live
    // requests still reference them on-device (see the file comment
    // in prefix_allocator.h).
    POD_CHECK_ARG(base_policy == KvPolicy::kConservative ||
                      preempt_mode == PreemptMode::kRecompute,
                  "prefix caching requires recompute preemption");
}

const std::vector<uint64_t>&
PrefixCachingKvAllocator::HashesFor(const RequestState& state)
{
    auto it = hashes_.find(state.request.id);
    if (it == hashes_.end()) {
        it = hashes_
                 .emplace(state.request.id,
                          BlockHashes(state.request, pool_.BlockSize()))
                 .first;
    }
    return it->second;
}

bool
PrefixCachingKvAllocator::TryAdmit(const RequestState& state)
{
    const int id = state.request.id;
    last_admit_cached_tokens_ = 0;
    // Recompute is the only supported preemption, so the swapped
    // phase can never arrive here.
    POD_ASSERT(state.phase != Phase::kPreemptedSwapped);
    if (base_policy_ == KvPolicy::kConservative) {
        POD_ASSERT(state.phase == Phase::kQueued);
    }

    const std::vector<uint64_t>& hashes = HashesFor(state);
    // Never serve the entire prefill from cache: at least one prompt
    // token must actually run so first-token timing stays defined
    // (vLLM clamps a full hit the same way).
    long max_match =
        hashes.empty()
            ? 0
            : std::min<long>(
                  static_cast<long>(hashes.size()),
                  static_cast<long>((state.PrefillTarget() - 1) /
                                    pool_.BlockSize()));
    long matched = max_match > 0 ? cache_.MatchBlocks(hashes, max_match) : 0;

    // The base policy's reservation, minus what the cache covers.
    long policy_blocks =
        base_policy_ == KvPolicy::kConservative
            ? pool_.BlocksFor(state.request.prefill_tokens +
                              state.request.decode_tokens)
            : pool_.BlocksFor(state.PrefillTarget());
    long needed = policy_blocks - matched;
    POD_ASSERT(needed >= 1);  // the clamp leaves >= 1 private block

    if (pool_.FreeBlocks() - needed < watermark_blocks_) {
        // Under the admission gate: reclaim dead cache blocks before
        // giving up. Reference the matched chain first so the LRU
        // sweep cannot eat the very prefix this admission hit.
        long deficit = watermark_blocks_ + needed - pool_.FreeBlocks();
        if (matched > 0) cache_.Acquire(id, hashes, matched);
        pool_.ReleaseShared(cache_.EvictLru(deficit));
        if (pool_.FreeBlocks() - needed < watermark_blocks_) {
            if (matched > 0) cache_.Release(id, hashes);
            return false;
        }
    } else if (matched > 0) {
        cache_.Acquire(id, hashes, matched);
    }

    bool ok = pool_.ReserveBlocks(id, needed);
    POD_ASSERT(ok);  // the gate check implies it fits
    shared_cover_[id] = matched;
    last_admit_cached_tokens_ =
        static_cast<int>(matched) * pool_.BlockSize();

    if (!hashes.empty()) {
        PrefixCacheStats& s = cache_.Stats();
        if (matched > 0) {
            ++s.hits;
            s.hit_blocks += matched;
            s.prefill_tokens_saved += last_admit_cached_tokens_;
        } else {
            ++s.misses;
        }
    }
    return true;
}

long
PrefixCachingKvAllocator::AppendNeed(const RequestState& state) const
{
    auto it = shared_cover_.find(state.request.id);
    long cover = it != shared_cover_.end() ? it->second : 0;
    return pool_.BlocksFor(state.ContextLen() + 1) - cover -
           pool_.Held(state.request.id);
}

bool
PrefixCachingKvAllocator::CanAppend(const RequestState& state) const
{
    // Dead cache subtrees count as headroom: Append() reclaims them
    // before growing, so a block parked at refcount 0 never forces a
    // preemption. Under a conservative base `need` is always <= 0:
    // the admission reserved cache-covered + private blocks for the
    // full context.
    long need = AppendNeed(state);
    return need <= 0 ||
           pool_.FreeBlocks() + cache_.EvictableBlocks() >= need;
}

void
PrefixCachingKvAllocator::Append(const RequestState& state)
{
    long need = AppendNeed(state);
    if (need <= 0) return;
    if (pool_.FreeBlocks() < need) {
        pool_.ReleaseShared(cache_.EvictLru(need - pool_.FreeBlocks()));
    }
    bool ok = pool_.Grow(state.request.id, need);
    POD_ASSERT_MSG(ok, "Append() without CanAppend() on request %d",
                   state.request.id);
}

long
PrefixCachingKvAllocator::Evict(const RequestState& state, PreemptMode mode)
{
    POD_CHECK_ARG(mode == PreemptMode::kRecompute,
                  "prefix caching only supports recompute preemption");
    const int id = state.request.id;
    long blocks = pool_.Free(id);
    auto it = hashes_.find(id);
    if (it != hashes_.end()) cache_.Release(id, it->second);
    shared_cover_.erase(id);
    // hashes_ survives: a recompute re-admission re-matches the same
    // chain without recomputing it.
    return blocks;
}

void
PrefixCachingKvAllocator::Release(int request_id)
{
    pool_.Free(request_id);
    auto it = hashes_.find(request_id);
    if (it != hashes_.end()) {
        cache_.Release(request_id, it->second);
        hashes_.erase(it);
    }
    shared_cover_.erase(request_id);
}

void
PrefixCachingKvAllocator::CheckFits(const RequestState& state) const
{
    // Worst case the whole context is private (nothing shared), so
    // the bound matches the base policy's. Cached blocks never
    // tighten it: any block not referenced by this request alone is
    // evictable once every other holder is preempted.
    POD_CHECK_ARG(pool_.BlocksFor(state.request.prefill_tokens +
                                  state.request.decode_tokens) +
                          watermark_blocks_ <=
                      pool_.TotalBlocks(),
                  "request larger than the KV pool minus the "
                  "admission watermark");
}

void
PrefixCachingKvAllocator::OnPrefillComplete(const RequestState& state)
{
    const int id = state.request.id;
    auto it = hashes_.find(id);
    if (it == hashes_.end() || it->second.empty()) return;
    const std::vector<uint64_t>& hashes = it->second;

    // Promote the prompt's blocks: newly cached runs move from the
    // request's private account into the shared account; runs some
    // earlier request already cached are duplicates, and dropping
    // the private copies is exactly the copy-on-write win. Both fit
    // inside the admission reservation because the hash chain only
    // covers full prompt blocks. Idempotent across a recompute
    // re-prefill: prior coverage keeps its references and only the
    // evicted-meanwhile remainder is re-promoted.
    PrefixCache::InsertResult result = cache_.InsertAndRef(id, hashes);
    if (result.new_blocks > 0) pool_.TransferToShared(id, result.new_blocks);
    if (result.dedup_blocks > 0) pool_.Shrink(id, result.dedup_blocks);
    shared_cover_[id] = static_cast<long>(hashes.size());
}

std::string
PrefixCachingKvAllocator::Name() const
{
    return base_policy_ == KvPolicy::kConservative ? "conservative+prefix"
                                                   : "watermark+prefix";
}

void
PrefixCachingKvAllocator::AuditLedger() const
{
    pool_.CheckLedger();
    cache_.CheckIntegrity();
    POD_ASSERT(cache_.TotalBlocks() == pool_.SharedBlocks());
    for (const auto& [id, cover] : shared_cover_) {
        POD_ASSERT(cache_.RefBlocks(id) == cover);
    }
}

}  // namespace pod::serve::prefix
