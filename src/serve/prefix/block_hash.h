/**
 * @file
 * Content hashes for KV-block-granular prefix identity
 * (docs/DESIGN.md S2.6).
 *
 * Following vLLM's automatic prefix caching, every *full* block of a
 * request's prompt gets a chained content hash: block k's hash folds
 * block k-1's hash together with the identities of the prompt
 * segments covering tokens [k*block_size, (k+1)*block_size). Chaining
 * means two requests' hash streams are equal exactly up to their
 * longest shared prompt prefix and permanently distinct afterwards,
 * so a radix tree keyed on these hashes (serve/prefix/prefix_cache.h)
 * is automatically prefix-closed. The trailing partial block is never
 * hashed — only full blocks are cacheable.
 *
 * All mixing is explicit arithmetic (no std::hash), so hash values —
 * and everything routed or cached by them — are identical across
 * platforms and standard libraries.
 */
#ifndef POD_SERVE_PREFIX_BLOCK_HASH_H
#define POD_SERVE_PREFIX_BLOCK_HASH_H

#include <cstdint>
#include <vector>

#include "serve/request.h"

namespace pod::serve::prefix {

/** SplitMix64 finalizer: fold one value into a running hash. */
inline uint64_t
MixHash(uint64_t h, uint64_t v)
{
    uint64_t z = h + 0x9E3779B97F4A7C15ull + v;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** FNV-1a over a string literal: stable tag -> seed for content ids. */
inline uint64_t
HashTag(const char* tag)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (const char* p = tag; *p != '\0'; ++p) {
        h = (h ^ static_cast<uint64_t>(*p)) * 0x100000001B3ull;
    }
    return h;
}

/** Derive a content id from a tag and up to two indices. */
inline uint64_t
ContentId(const char* tag, uint64_t a, uint64_t b = 0)
{
    return MixHash(MixHash(HashTag(tag), a), b);
}

/**
 * Chained per-block content hashes of a request's prompt, one per
 * full block (prefill_tokens / block_size entries). Empty for opaque
 * prompts (Request::prompt empty). Fatal if the segment lengths do
 * not sum to prefill_tokens.
 */
std::vector<uint64_t> BlockHashes(const Request& request, int block_size);

}  // namespace pod::serve::prefix

#endif  // POD_SERVE_PREFIX_BLOCK_HASH_H
