/**
 * @file
 * Serving metrics: TTFT, TBT, request latency, stalls, throughput
 * (the paper's Tables 5-7 and Figs. 12/15 reporting).
 */
#ifndef POD_SERVE_METRICS_H
#define POD_SERVE_METRICS_H

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/telemetry/registry.h"
#include "serve/request.h"

namespace pod::serve {

/** Aggregate report of one serving run. */
struct MetricsReport
{
    std::string system = "system";
    std::string workload = "workload";

    int num_requests = 0;

    /** Wall time from start to last completion (seconds). */
    double makespan = 0.0;

    /** Offline throughput metric (paper Fig. 12). */
    double requests_per_minute = 0.0;

    long iterations = 0;

    /** Time-to-first-token samples (seconds). */
    SampleStats ttft;

    /** Time-between-tokens samples (seconds), across all requests. */
    SampleStats tbt;

    /** End-to-end request latency samples (seconds). */
    SampleStats latency;

    /** Fraction of requests with at least one TBT > 200 ms. */
    double frac_stalled_200ms = 0.0;

    /** Fraction of requests with at least one TBT > 500 ms. */
    double frac_stalled_500ms = 0.0;

    /** Mean tokens per scheduled batch. */
    double mean_batch_tokens = 0.0;

    // ---- request-lifecycle counters (docs/DESIGN.md S2) ----
    // Always zero under the conservative KV allocator; the watermark
    // allocator's preemption behaviour is pinned by these counters.

    /** Total preemption events (sum of per-request preempt counts). */
    long preemptions = 0;

    /** Preemptions resolved by recomputing the context. */
    long preemptions_recompute = 0;

    /** Preemptions resolved by swapping KV to host memory. */
    long preemptions_swap = 0;

    /** Requests preempted at least once. */
    int requests_preempted = 0;

    /** Total swap-in + swap-out transfer time charged (seconds). */
    double swap_time_total = 0.0;

    // ---- sim-core telemetry (docs/DESIGN.md S3.2) ----
    // Summed over the attention simulations this engine ran (memo-
    // cache misses only; hits cost no sim events).

    /** Events handled by the closed-form analytic sim core. */
    long sim_fastpath_events = 0;

    /** Stepwise-oracle events (fallbacks or ExactOracle runs). */
    long sim_fallback_events = 0;

    // ---- token accounting + prefix cache (docs/DESIGN.md S2.6) ----
    // Processed counts measure work actually executed; with the
    // prefix cache on, processed prefill shrinks by exactly
    // prefix_tokens_saved (the fig15 P:D-ratio shift). The prefix_*
    // fields stay zero when ServingConfig::prefix_cache_enabled is
    // off.

    /** Prefill tokens executed in chunks (cache hits excluded). */
    long prefill_tokens_processed = 0;

    /** Output tokens emitted. */
    long decode_tokens_processed = 0;

    /** Hashable admissions that matched >= 1 cached block. */
    long prefix_hits = 0;

    /** Hashable admissions that matched nothing. */
    long prefix_misses = 0;

    /** Blocks served from cache across all hits. */
    long prefix_hit_blocks = 0;

    /** Cached blocks reclaimed by LRU eviction under pressure. */
    long prefix_evicted_blocks = 0;

    /** Gauge: blocks cached at the end of the run. */
    long prefix_cached_blocks = 0;

    /** Gauge: cached blocks shared by >= 2 requests at the end. */
    long prefix_shared_blocks = 0;

    /** Prefill tokens admissions skipped thanks to cache hits. */
    long prefix_tokens_saved = 0;
};

/** Build a report from final request states. */
MetricsReport CollectMetrics(const std::vector<RequestState>& states,
                             double makespan, long iterations,
                             double total_batch_tokens);

/**
 * Publish a report into a metric registry under `prefix` (e.g.
 * "serve." -> "serve.latency.p99_seconds"), following the
 * docs/OBSERVABILITY.md naming scheme. Counts become counters,
 * scalars gauges; the TTFT/TBT/latency sample sets are summarized as
 * count/mean/p50/p99/max gauges.
 */
void FillRegistry(const MetricsReport& report,
                  telemetry::MetricRegistry& registry,
                  const std::string& prefix = "serve.");

/**
 * Publish SampleStats summary gauges (`<prefix>.count/.mean_seconds/
 * .p50_seconds/.p99_seconds/.max_seconds`). Shared by the serve and
 * cluster registry bridges.
 */
void FillSampleStats(const SampleStats& stats,
                     telemetry::MetricRegistry& registry,
                     const std::string& prefix);

}  // namespace pod::serve

#endif  // POD_SERVE_METRICS_H
