/**
 * @file
 * Pluggable KV-cache allocation policies for the serving engine
 * (docs/DESIGN.md S2).
 *
 * The allocator owns the admission/growth/eviction *policy* over a
 * raw block ledger (serve/kv_manager.h). Two policies ship:
 *
 *  - ConservativeKvAllocator (default): a request reserves blocks for
 *    its full prompt plus maximum output up front, so growth never
 *    allocates and preemption can never be needed. This is the
 *    pre-redesign behaviour, kept bit-identical.
 *  - WatermarkKvAllocator: vLLM semantics. Admission reserves the
 *    prompt only and is gated on a free-block watermark; decode
 *    tokens grow the reservation one block at a time as they
 *    materialize (CanAppend/Append); under pressure the scheduler
 *    evicts victims (Evict), which either re-prefill their context
 *    (recompute) or park their blocks in host memory and pay PCIe
 *    transfer time both ways (swap).
 *
 * Only allocator implementations construct a BlockKvManager; every
 * other layer talks to this interface.
 */
#ifndef POD_SERVE_KV_ALLOCATOR_H
#define POD_SERVE_KV_ALLOCATOR_H

#include <memory>
#include <string>
#include <unordered_map>

#include "serve/kv_manager.h"
#include "serve/request.h"

namespace pod::serve {

namespace prefix {
struct PrefixCacheStats;
}  // namespace prefix

/** How an evicted request's KV is recovered on re-admission. */
enum class PreemptMode {
    kRecompute,  ///< Drop the KV; re-run prefill over the context.
    kSwap,       ///< Park blocks in host memory; PCIe both ways.
};

/** Allocation policy selector (ServingConfig::kv_policy). */
enum class KvPolicy {
    kConservative,  ///< Whole-request up-front reservation (default).
    kWatermark,     ///< vLLM watermark admission + preemption.
};

/** KV allocation-policy interface. */
class KvAllocator
{
  public:
    virtual ~KvAllocator() = default;

    /**
     * Try to move a request into the running set, reserving the
     * blocks the policy requires up front. Handles all admissible
     * phases: kQueued (fresh or recompute-restored context) and
     * kPreemptedSwapped / kPreemptedRecompute (re-admission).
     * @return true and the reservation is made; false leaves the
     *         pool untouched.
     */
    virtual bool TryAdmit(const RequestState& state) = 0;

    /**
     * Can the running request grow by the one token the next
     * iteration materializes (context ContextLen() + 1)?
     */
    virtual bool CanAppend(const RequestState& state) const = 0;

    /**
     * Grow the running request's reservation for that token.
     * Call only after CanAppend() returned true this iteration.
     */
    virtual void Append(const RequestState& state) = 0;

    /**
     * Evict a running request's blocks (preemption). In kSwap mode
     * the footprint is remembered so re-admission restores it
     * exactly; in kRecompute mode it is simply dropped.
     * @return blocks freed (the swap-out transfer size).
     */
    virtual long Evict(const RequestState& state, PreemptMode mode) = 0;

    /** Release a finished request's blocks. */
    virtual void Release(int request_id) { pool_.Free(request_id); }

    /**
     * Prompt tokens the most recent successful TryAdmit() served
     * from a prefix cache (0 for cacheless policies). The scheduler
     * credits them as already-prefilled before building the batch.
     */
    virtual int LastAdmitCachedTokens() const { return 0; }

    /**
     * Hook: the request's prefill just completed (engine progress
     * loop). Prefix-caching policies insert the prompt's blocks into
     * their cache here; the default is a no-op.
     */
    virtual void OnPrefillComplete(const RequestState& state)
    {
        (void)state;
    }

    /** Prefix-cache statistics, or nullptr for cacheless policies. */
    virtual const prefix::PrefixCacheStats* PrefixStats() const
    {
        return nullptr;
    }

    /**
     * Fatal if the request could never be admitted by this policy
     * even against an empty pool (guards the scheduler against
     * spinning forever on an impossible request).
     */
    virtual void CheckFits(const RequestState& state) const = 0;

    /** How this policy prefers to preempt victims. */
    virtual PreemptMode preempt_mode() const { return PreemptMode::kRecompute; }

    /** Admission watermark as a fraction of the pool (0 = none). */
    virtual double WatermarkFraction() const { return 0.0; }

    /** Policy name for reports. */
    virtual std::string Name() const = 0;

    // ---- pool observers (shared ledger) ----
    long BlocksFor(int tokens) const { return pool_.BlocksFor(tokens); }
    long TotalBlocks() const { return pool_.TotalBlocks(); }
    long UsedBlocks() const { return pool_.UsedBlocks(); }
    long FreeBlocks() const { return pool_.FreeBlocks(); }
    int BlockSize() const { return pool_.BlockSize(); }
    double Utilization() const { return pool_.Utilization(); }

    /** Blocks currently reserved on-device by a request. */
    long Held(int request_id) const { return pool_.Held(request_id); }

    /**
     * Free-pool headroom above the admission watermark, as a
     * fraction of the pool. Negative when decode growth has eaten
     * into the watermark reserve (growth is never watermark-gated;
     * only admission is).
     */
    double
    WatermarkHeadroom() const
    {
        return static_cast<double>(FreeBlocks()) / TotalBlocks() -
               WatermarkFraction();
    }

  protected:
    KvAllocator(long total_blocks, int block_size)
        : pool_(total_blocks, block_size)
    {
    }

    BlockKvManager pool_;
};

/**
 * Today's semantics, unchanged: admit only when the full prompt +
 * maximum output fits, so a running request never needs another
 * block. Keeps all pre-redesign goldens bit-identical.
 */
class ConservativeKvAllocator : public KvAllocator
{
  public:
    ConservativeKvAllocator(long total_blocks, int block_size);

    bool TryAdmit(const RequestState& state) override;
    bool CanAppend(const RequestState& state) const override;
    void Append(const RequestState& state) override;
    long Evict(const RequestState& state, PreemptMode mode) override;
    void CheckFits(const RequestState& state) const override;

    std::string Name() const override { return "conservative"; }
};

/**
 * vLLM semantics: watermark-gated prompt-only admission, incremental
 * decode growth, eviction under pressure.
 */
class WatermarkKvAllocator : public KvAllocator
{
  public:
    /**
     * @param watermark fraction of the pool that must stay free
     *        after an admission (vLLM's `watermark`, default 0.01).
     * @param preempt_mode how the scheduler should evict victims.
     */
    WatermarkKvAllocator(long total_blocks, int block_size,
                         double watermark, PreemptMode preempt_mode);

    bool TryAdmit(const RequestState& state) override;
    bool CanAppend(const RequestState& state) const override;
    void Append(const RequestState& state) override;
    long Evict(const RequestState& state, PreemptMode mode) override;
    void CheckFits(const RequestState& state) const override;

    PreemptMode preempt_mode() const override { return preempt_mode_; }
    double WatermarkFraction() const override { return watermark_; }

    std::string Name() const override { return "watermark"; }

    /** Blocks parked in host memory for a swapped-out request. */
    long SwappedBlocks(int request_id) const;

  private:
    /** Blocks the next materialized token needs beyond those held. */
    long AppendNeed(const RequestState& state) const;

    double watermark_;
    PreemptMode preempt_mode_;
    long watermark_blocks_;

    /** Host-side footprints of swapped-out requests. */
    std::unordered_map<int, long> swapped_out_;
};

/**
 * Build the allocator for a policy. `watermark` and `preempt_mode`
 * only apply to KvPolicy::kWatermark. With `prefix_cache_enabled`
 * the policy is wrapped in the radix prefix cache
 * (serve/prefix/prefix_allocator.h; requires PreemptMode::kRecompute
 * under KvPolicy::kWatermark — swap would pin shared blocks).
 */
std::unique_ptr<KvAllocator> MakeKvAllocator(
    KvPolicy policy, long total_blocks, int block_size,
    double watermark, PreemptMode preempt_mode,
    bool prefix_cache_enabled = false);

}  // namespace pod::serve

#endif  // POD_SERVE_KV_ALLOCATOR_H
