/**
 * @file
 * The serving engine: an iteration-level simulator of hybrid-batch
 * LLM inference (Sarathi-Serve / vLLM execution loop).
 *
 * Each iteration: the scheduler forms a batch; linear-op time comes
 * from the roofline model at the batch's exact token count; attention
 * time comes from the kernel simulator through the configured backend
 * (FA kernels for the vLLM/Sarathi baselines, the fused kernel for
 * Sarathi+POD), memoized over bucketed batch signatures so
 * thousand-request traces stay tractable (docs/DESIGN.md S5.4).
 *
 * KV allocation is pluggable (docs/DESIGN.md S2): the scheduler
 * admits, grows and evicts through a KvAllocator, and the engine
 * applies the lifecycle consequences — recompute-preempted requests
 * re-run their prefill, swap-preempted requests charge PCIe transfer
 * time both ways. The conservative policy (default) reproduces the
 * pre-redesign behaviour bit-identically.
 *
 * Queue and KV occupancy are tracked incrementally (PR 3): running
 * counters maintained at Submit/admission/preemption/progress
 * transitions plus a finished-prefix index over the request states
 * make Snapshot() and NextEventTime() O(1) and keep each scheduling
 * pass O(active requests), so cost scales with in-flight work rather
 * than trace length (docs/DESIGN.md S8).
 */
#ifndef POD_SERVE_ENGINE_H
#define POD_SERVE_ENGINE_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/telemetry/trace.h"
#include "core/attention.h"
#include "gpusim/gpu_spec.h"
#include "model/model_config.h"
#include "serve/kv_allocator.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace pod::serve {

/** Serving system configuration. */
struct ServingConfig
{
    model::ModelConfig model = model::ModelConfig::Llama3_8B();
    gpusim::GpuSpec gpu = gpusim::GpuSpec::A100Sxm80GB();
    int tensor_parallel = 1;

    /** Attention backend (kPod for Sarathi+POD). */
    core::Backend backend = core::Backend::kFaSerial;

    /** Attention run options (POD policy etc.). */
    core::AttnRunOptions attn_options;

    /** KV block size in tokens. */
    int kv_block_size = 16;

    /**
     * KV allocation policy (docs/DESIGN.md S2). kConservative
     * reserves prompt + maximum output up front and never preempts;
     * kWatermark models vLLM's watermark admission + preemption.
     */
    KvPolicy kv_policy = KvPolicy::kConservative;

    /**
     * Fraction of the KV pool kept free across admissions
     * (kWatermark only; vLLM's `watermark`).
     */
    double kv_watermark = 0.01;

    /** How preemption victims are evicted (kWatermark only). */
    PreemptMode kv_preempt_mode = PreemptMode::kRecompute;

    /**
     * Shared-prefix KV reuse (docs/DESIGN.md S2.6): wrap the KV
     * policy in the radix prefix cache so admissions serve cached
     * prompt blocks instead of re-prefilling them. Only requests
     * with hashable prompts (Request::prompt) can hit; off (the
     * default) is bit-identical to the unwrapped policy. Requires
     * kRecompute preemption under kWatermark.
     */
    bool prefix_cache_enabled = false;

    /** Fraction of HBM usable for weights + KV. */
    double memory_fraction = 0.9;

    /**
     * Fixed non-GPU time per iteration (scheduler, Python runtime,
     * sampling) -- matches the serving stacks the paper builds on.
     */
    double iteration_overhead = 300e-6;

    /** Bucketing for the attention memo cache. */
    int chunk_bucket = 64;
    int kv_bucket = 1024;
    int decode_bs_bucket = 8;
    int context_bucket = 1024;

    /**
     * Attention memo cache on/off (docs/DESIGN.md S5.4). Bucketing
     * happens before the lookup, so cached and uncached runs are
     * bit-identical — the cache only saves re-simulating a bucketed
     * signature. Off = every lookup simulates (and counts as a miss);
     * the knob exists so the cache's value stays measurable as the
     * analytic core gets cheaper (docs/EXPERIMENTS.md).
     */
    bool attn_cache_enabled = true;

    /** KV pool capacity in tokens (per GPU). */
    long KvTokenCapacity() const;
};

/**
 * Point-in-time view of one replica's queue and KV occupancy,
 * consumed by the cluster layer's routing policies
 * (docs/DESIGN.md S8). All token/request counts refer to requests
 * submitted to this engine, whether or not they have arrived yet.
 * Assembled from running counters in O(1).
 */
struct ReplicaSnapshot
{
    /** Index in the owning cluster (-1 for a standalone engine). */
    int replica_id = -1;

    /** GPU preset serving this replica. */
    std::string gpu_name;

    /** Replica-local clock (end of its last iteration). */
    double now = 0.0;

    int submitted = 0;
    int finished = 0;

    /** Arrived (arrival_time <= now) but never admitted. */
    int waiting = 0;

    /** Admitted and unfinished (holding KV blocks). */
    int running = 0;

    /** Currently preempted (evicted, awaiting re-admission). */
    int preempted = 0;

    /** All unfinished submitted requests (includes future arrivals). */
    int outstanding = 0;

    /** Unprocessed prefill tokens across unfinished requests
     * (includes context a recompute preemption re-runs). */
    long prefill_tokens_pending = 0;

    /** Remaining output tokens across running requests. */
    long decode_tokens_pending = 0;

    /** Fraction of the KV pool reserved by running requests. */
    double kv_utilization = 0.0;

    /**
     * Reserved blocks plus the blocks every not-yet-admitted or
     * currently-preempted request will need, as a fraction of the
     * pool. Can exceed 1 under overload; the least-KV-pressure
     * router minimizes this. Counting preempted requests matters:
     * their evictions just lowered kv_utilization, but their
     * re-admission demand is still queued on this replica.
     */
    double kv_pressure = 0.0;

    /**
     * Free-pool fraction above the allocator's admission watermark
     * (negative when decode growth ate into the reserve). Equals the
     * free fraction under the conservative policy (watermark 0).
     */
    double kv_watermark_headroom = 0.0;

    long kv_free_blocks = 0;
    long kv_total_blocks = 0;

    long iterations = 0;

    // ---- request-lifecycle counters (cumulative; docs/DESIGN.md S2) ----

    /** Recompute preemptions since the last Reset(). */
    long preemptions_recompute = 0;

    /** Swap preemptions since the last Reset(). */
    long preemptions_swap = 0;

    /** Swap-in + swap-out PCIe time charged so far (seconds). */
    double swap_time_total = 0.0;

    /** Attention memo-cache entries (docs/DESIGN.md S5.4). */
    long attn_cache_entries = 0;

    /** Attention memo-cache hits since the engine was constructed. */
    long attn_cache_hits = 0;

    /** Attention memo-cache misses (kernel simulations performed). */
    long attn_cache_misses = 0;

    /** Analytic sim-core events across this replica's simulations. */
    long sim_fastpath_events = 0;

    /** Stepwise-oracle sim events (fallbacks or ExactOracle runs). */
    long sim_fallback_events = 0;

    /** Prefill tokens actually executed in chunks since Reset()
     * (prefix-cache hits excluded — the fig15 P:D numerator). */
    long prefill_tokens_processed = 0;

    /** Output tokens emitted since Reset(). */
    long decode_tokens_processed = 0;

    // ---- prefix cache (all zero when prefix_cache_enabled is off;
    //      docs/OBSERVABILITY.md kv_prefix.* rows) ----
    long prefix_hits = 0;
    long prefix_misses = 0;
    long prefix_hit_blocks = 0;
    long prefix_evicted_blocks = 0;
    long prefix_cached_blocks = 0;
    long prefix_shared_blocks = 0;
    long prefix_tokens_saved = 0;
};

/** Outcome of one ServingEngine::Step() call. */
struct StepResult
{
    /**
     * True if a batch executed. False means the clock only jumped
     * forward to the next queued arrival (no work was runnable).
     */
    bool progressed = false;

    /** Clock when the batch was formed. */
    double start = 0.0;

    /** Iteration latency (0 for an idle jump). */
    double duration = 0.0;

    /** New tokens processed this iteration. */
    int batch_tokens = 0;

    /** Requests that finished this iteration. */
    int completed = 0;

    /** Requests preempted this iteration. */
    int preempted = 0;

    /** Swap transfer time included in `duration` (seconds). */
    double swap_time = 0.0;

    /** KV pool utilization after the step. */
    double kv_utilization = 0.0;
};

/**
 * Runs requests through a scheduler and reports metrics.
 *
 * Two driving modes share one execution path:
 *  - Run(): the classic single-replica mode — sorts a whole trace,
 *    steps to completion, returns the report.
 *  - Reset()/Submit()/Step(): incremental mode for the cluster layer,
 *    which routes requests to replicas mid-simulation and advances
 *    each replica one iteration at a time.
 */
class ServingEngine
{
  public:
    ServingEngine(ServingConfig config,
                  std::unique_ptr<Scheduler> scheduler);

    /**
     * Simulate all requests to completion.
     * Requests are sorted by arrival internally. Equivalent to
     * Reset() + Submit() in arrival order + Step() until Done().
     */
    MetricsReport Run(std::vector<Request> requests);

    /** Clear all request state and rebuild the KV allocator. */
    void Reset();

    /**
     * Add a request to the replica's queue. Submissions must be
     * ordered by arrival time (the admission scan relies on it).
     */
    void Submit(const Request& request);

    /**
     * Advance one scheduler iteration: form a batch at the current
     * clock, apply the scheduler's lifecycle transitions (admissions,
     * restores, preemptions), charge the iteration latency plus any
     * swap transfer time, apply prefill/decode progress. With no
     * runnable work, jumps the clock to the next queued arrival
     * instead (progressed=false). Fatal if called with nothing left
     * to do — guard with Done() / NextEventTime().
     */
    StepResult Step();

    /** All submitted requests finished (true when none submitted). */
    bool Done() const { return finished_ == states_.size(); }

    /**
     * Time of this replica's next actionable event: `Now()` if work
     * is runnable (including preempted requests awaiting
     * re-admission), the earliest queued future arrival otherwise,
     * or +infinity when the queue is drained. O(1).
     */
    double NextEventTime() const;

    /** Queue/KV occupancy view for routing decisions. O(1). */
    ReplicaSnapshot Snapshot() const;

    /**
     * Unprocessed prefill tokens plus remaining decode tokens across
     * unfinished requests — the cluster layer's relative cost
     * estimate for this replica's remaining window
     * (longest-processing-time-first seeding, docs/DESIGN.md S8.4).
     * Scheduling hint only: the value never feeds back into any
     * simulated quantity. O(1).
     */
    long PendingWorkTokens() const
    {
        return prefill_tokens_pending_ + decode_tokens_pending_;
    }

    /** Metrics over the completed run; requires Done(). */
    MetricsReport Report() const;

    /** Replica-local clock. */
    double Now() const { return now_; }

    long Iterations() const { return iterations_; }

    /** Total new tokens processed across all iterations. */
    double TotalBatchTokens() const { return total_batch_tokens_; }

    const std::vector<RequestState>& States() const { return states_; }

    /** The active KV allocation policy. */
    const KvAllocator& Allocator() const { return *kv_; }

    /** Recompute preemptions since the last Reset(). */
    long PreemptionsRecompute() const { return preemptions_recompute_; }

    /** Swap preemptions since the last Reset(). */
    long PreemptionsSwap() const { return preemptions_swap_; }

    /** Swap transfer time charged since the last Reset() (seconds). */
    double SwapTimeTotal() const { return swap_time_total_; }

    /** Attention memo-cache entries created so far. */
    size_t AttnCacheSize() const { return attn_cache_.size(); }

    /** Attention memo-cache hits since construction. */
    long AttnCacheHits() const { return attn_cache_hits_; }

    /** Attention memo-cache misses (kernel simulations performed). */
    long AttnCacheMisses() const { return attn_cache_misses_; }

    /** Analytic sim-core events across this engine's simulations. */
    long SimFastpathEvents() const { return sim_fastpath_events_; }

    /** Stepwise-oracle sim events (fallbacks or ExactOracle runs). */
    long SimFallbackEvents() const { return sim_fallback_events_; }

    /** Prefill tokens actually executed since Reset() (prefix-cache
     * hits excluded). */
    long PrefillTokensProcessed() const
    {
        return prefill_tokens_processed_;
    }

    /** Output tokens emitted since Reset(). */
    long DecodeTokensProcessed() const
    {
        return decode_tokens_processed_;
    }

    const ServingConfig& Config() const { return config_; }

    /**
     * Attach (or detach, with nullptr) a sim-time trace recorder
     * (docs/OBSERVABILITY.md). While attached, the engine records the
     * request-lifecycle event taxonomy — arrival, admission, prefill
     * chunks, decode tokens, preemption/restore, completion — plus
     * one iteration span per Step() onto the recorder, all stamped
     * with sim time. Null (the default) is the zero-cost path: every
     * emission site is a single pointer test. The recorder is not
     * cleared by Reset(); the owner decides when a new capture
     * starts.
     */
    void SetTraceRecorder(telemetry::TraceRecorder* recorder)
    {
        trace_ = recorder;
    }

    const telemetry::TraceRecorder* Trace() const { return trace_; }

  private:
    /** Memoized per-layer attention time for a bucketed signature. */
    double CachedAttnLayerTime(int chunk_len, int kv_len, int decode_bs,
                               int mean_context);

    /** Iteration latency for a scheduled batch. */
    double IterationTime(const ScheduledBatch& batch,
                         const std::vector<RequestState>& states);

    /**
     * Fold scheduler admissions into the running counters. The FCFS
     * admission scan only ever admits a prefix of the unadmitted
     * queue, so the decision's admission list pops queue heads in
     * O(newly admitted).
     */
    void ApplyAdmissions(const SchedulingDecision& decision);

    /**
     * Fold restores and preemptions into the running counters
     * (O(transitions), the preemption analogue of ApplyAdmissions)
     * and return the swap transfer time these transitions charge.
     */
    double ApplyLifecycleTransitions(const SchedulingDecision& decision,
                                     StepResult& result);

    /** Transition one request to kFinished and release its KV. */
    void FinishRequest(RequestState& state, StepResult& result);

    /** Advance the arrived-mark past entries with arrival <= now. */
    void SyncArrivals();

    ServingConfig config_;
    std::unique_ptr<Scheduler> scheduler_;

    /** Sim-time event sink; nullptr (default) disables tracing. */
    telemetry::TraceRecorder* trace_ = nullptr;

    std::unordered_map<uint64_t, double> attn_cache_;
    long attn_cache_hits_ = 0;
    long attn_cache_misses_ = 0;
    long sim_fastpath_events_ = 0;
    long sim_fallback_events_ = 0;

    // ---- stepping state (valid between Reset() and Done()) ----
    std::vector<RequestState> states_;
    std::unique_ptr<KvAllocator> kv_;
    double now_ = 0.0;
    long iterations_ = 0;
    double total_batch_tokens_ = 0.0;
    size_t finished_ = 0;

    /** KV bytes one token occupies on this GPU (swap sizing). */
    double kv_bytes_per_token_ = 0.0;

    /** Swap roofline: min(PCIe, HBM) bandwidth in bytes/s. */
    double swap_bandwidth_ = 1.0;

    // ---- incremental queue/KV accounting (PR 3) ----
    /** states_[i] for i < active_begin_ are all finished. */
    size_t active_begin_ = 0;

    /** One past the highest index ever admitted (FCFS watermark);
     *  bounds the scheduler's batch-building scans. */
    size_t admitted_end_ = 0;

    /**
     * Indices of never-admitted requests in submission (= arrival)
     * order. FCFS admission pops a prefix; entries before
     * arrived_mark_ have arrival_time <= now_.
     */
    std::vector<int> unadmitted_;
    size_t unadmitted_head_ = 0;
    size_t arrived_mark_ = 0;

    /** Admitted and unfinished requests. */
    int running_ = 0;

    /** Currently preempted requests (evicted, not finished). */
    int preempted_now_ = 0;

    /** Unprocessed prefill tokens across unfinished requests. */
    long prefill_tokens_pending_ = 0;

    /** Remaining output tokens across running requests. */
    long decode_tokens_pending_ = 0;

    /** KV blocks the unadmitted queue will eventually reserve. */
    long pending_unadmitted_blocks_ = 0;

    /**
     * KV blocks currently-preempted requests will re-reserve on
     * re-admission (swap footprints / recompute prefill targets).
     * Folded into kv_pressure so routing still sees a thrashing
     * replica's latent demand after its evictions freed the pool.
     */
    long pending_preempted_blocks_ = 0;

    // ---- lifecycle counters (reset by Reset()) ----
    long preemptions_recompute_ = 0;
    long preemptions_swap_ = 0;
    double swap_time_total_ = 0.0;

    /** Prefill tokens executed / output tokens emitted since
     * Reset(). processed + prefix_tokens_saved == submitted prefill
     * work under the conservative policy (no recompute inflation). */
    long prefill_tokens_processed_ = 0;
    long decode_tokens_processed_ = 0;
};

}  // namespace pod::serve

#endif  // POD_SERVE_ENGINE_H
