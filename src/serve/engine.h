/**
 * @file
 * The serving engine: an iteration-level simulator of hybrid-batch
 * LLM inference (Sarathi-Serve / vLLM execution loop).
 *
 * Each iteration: the scheduler forms a batch; linear-op time comes
 * from the roofline model at the batch's exact token count; attention
 * time comes from the kernel simulator through the configured backend
 * (FA kernels for the vLLM/Sarathi baselines, the fused kernel for
 * Sarathi+POD), memoized over bucketed batch signatures so
 * thousand-request traces stay tractable (docs/DESIGN.md S5.4).
 */
#ifndef POD_SERVE_ENGINE_H
#define POD_SERVE_ENGINE_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/attention.h"
#include "gpusim/gpu_spec.h"
#include "model/model_config.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace pod::serve {

/** Serving system configuration. */
struct ServingConfig
{
    model::ModelConfig model = model::ModelConfig::Llama3_8B();
    gpusim::GpuSpec gpu = gpusim::GpuSpec::A100Sxm80GB();
    int tensor_parallel = 1;

    /** Attention backend (kPod for Sarathi+POD). */
    core::Backend backend = core::Backend::kFaSerial;

    /** Attention run options (POD policy etc.). */
    core::AttnRunOptions attn_options;

    /** KV block size in tokens. */
    int kv_block_size = 16;

    /** Fraction of HBM usable for weights + KV. */
    double memory_fraction = 0.9;

    /**
     * Fixed non-GPU time per iteration (scheduler, Python runtime,
     * sampling) -- matches the serving stacks the paper builds on.
     */
    double iteration_overhead = 300e-6;

    /** Bucketing for the attention memo cache. */
    int chunk_bucket = 64;
    int kv_bucket = 1024;
    int decode_bs_bucket = 8;
    int context_bucket = 1024;

    /** KV pool capacity in tokens (per GPU). */
    long KvTokenCapacity() const;
};

/** Runs a trace through a scheduler and reports metrics. */
class ServingEngine
{
  public:
    ServingEngine(ServingConfig config,
                  std::unique_ptr<Scheduler> scheduler);

    /**
     * Simulate all requests to completion.
     * Requests are sorted by arrival internally.
     */
    MetricsReport Run(std::vector<Request> requests);

    /** Attention memo-cache entries created so far. */
    size_t AttnCacheSize() const { return attn_cache_.size(); }

    const ServingConfig& Config() const { return config_; }

  private:
    /** Memoized per-layer attention time for a bucketed signature. */
    double CachedAttnLayerTime(int chunk_len, int kv_len, int decode_bs,
                               int mean_context);

    /** Iteration latency for a scheduled batch. */
    double IterationTime(const ScheduledBatch& batch,
                         const std::vector<RequestState>& states);

    ServingConfig config_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unordered_map<uint64_t, double> attn_cache_;
};

}  // namespace pod::serve

#endif  // POD_SERVE_ENGINE_H
