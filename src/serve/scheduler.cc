/**
 * @file
 * Implementation of the vLLM and Sarathi-Serve schedulers.
 */
#include "serve/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace pod::serve {

namespace {

/**
 * Admit arrived, un-admitted requests FCFS while the KV pool can hold
 * their full prompt + maximum output (conservative reservation; see
 * BlockKvManager). Head-of-line blocking preserved: admission stops
 * at the first request that does not fit.
 */
void
AdmitFcfs(double now, std::vector<RequestState>& requests,
          BlockKvManager& kv, size_t active_begin)
{
    for (size_t i = active_begin; i < requests.size(); ++i) {
        RequestState& state = requests[i];
        if (state.finished || state.admitted) continue;
        if (state.request.arrival_time > now) break;  // sorted by arrival
        int total_tokens =
            state.request.prefill_tokens + state.request.decode_tokens;
        POD_CHECK_ARG(kv.BlocksFor(total_tokens) <= kv.TotalBlocks(),
                      "request larger than the entire KV pool");
        if (!kv.Reserve(state.request.id, total_tokens)) break;
        state.admitted = true;
    }
}

}  // namespace

VllmScheduler::VllmScheduler(int max_batched_tokens, int max_num_seqs)
    : max_batched_tokens_(max_batched_tokens), max_num_seqs_(max_num_seqs)
{
    POD_CHECK_ARG(max_batched_tokens >= 1, "token cap must be >= 1");
    POD_CHECK_ARG(max_num_seqs >= 1, "sequence cap must be >= 1");
}

ScheduledBatch
VllmScheduler::Next(double now, std::vector<RequestState>& requests,
                    BlockKvManager& kv, size_t active_begin)
{
    AdmitFcfs(now, requests, kv, active_begin);
    ScheduledBatch batch;

    // Prefill-prioritizing: if any admitted prompt is unprocessed,
    // run a prefill-only iteration over whole prompts (no chunking).
    int tokens = 0;
    for (size_t i = active_begin; i < requests.size(); ++i) {
        RequestState& state = requests[i];
        if (!state.admitted || state.finished || state.PrefillDone()) {
            continue;
        }
        int remaining = state.request.prefill_tokens - state.prefilled;
        if (!batch.prefills.empty() &&
            (tokens + remaining > max_batched_tokens_ ||
             static_cast<int>(batch.prefills.size()) >= max_num_seqs_)) {
            break;
        }
        batch.prefills.push_back(ScheduledBatch::PrefillChunk{
            static_cast<int>(i), remaining, state.request.prefill_tokens});
        tokens += remaining;
    }
    if (!batch.prefills.empty()) {
        return batch;  // decodes pause: the generation stall (Fig. 2a)
    }

    for (size_t i = active_begin; i < requests.size(); ++i) {
        if (requests[i].admitted && !requests[i].finished &&
            requests[i].DecodePending()) {
            batch.decodes.push_back(static_cast<int>(i));
            if (static_cast<int>(batch.decodes.size()) >= max_num_seqs_) {
                break;
            }
        }
    }
    return batch;
}

SarathiScheduler::SarathiScheduler(int token_budget, int max_num_seqs)
    : token_budget_(token_budget), max_num_seqs_(max_num_seqs)
{
    POD_CHECK_ARG(token_budget >= 1, "token budget must be >= 1");
    POD_CHECK_ARG(max_num_seqs >= 1, "sequence cap must be >= 1");
}

ScheduledBatch
SarathiScheduler::Next(double now, std::vector<RequestState>& requests,
                       BlockKvManager& kv, size_t active_begin)
{
    AdmitFcfs(now, requests, kv, active_begin);
    ScheduledBatch batch;

    // All running decodes join every iteration: stall-free batching.
    for (size_t i = active_begin; i < requests.size(); ++i) {
        if (requests[i].admitted && !requests[i].finished &&
            requests[i].DecodePending()) {
            batch.decodes.push_back(static_cast<int>(i));
            if (static_cast<int>(batch.decodes.size()) >= max_num_seqs_) {
                break;
            }
        }
    }

    // Prefill chunks fill the remaining token budget (paper S2.1).
    int budget =
        std::max(0, token_budget_ - static_cast<int>(batch.decodes.size()));
    for (size_t i = active_begin; i < requests.size() && budget > 0; ++i) {
        RequestState& state = requests[i];
        if (!state.admitted || state.finished || state.PrefillDone()) {
            continue;
        }
        int remaining = state.request.prefill_tokens - state.prefilled;
        int chunk = std::min(budget, remaining);
        batch.prefills.push_back(ScheduledBatch::PrefillChunk{
            static_cast<int>(i), chunk, state.prefilled + chunk});
        budget -= chunk;
    }
    return batch;
}

}  // namespace pod::serve
