/**
 * @file
 * Implementation of the vLLM and Sarathi-Serve schedulers.
 */
#include "serve/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace pod::serve {

namespace {

/**
 * Admission and re-admission, FCFS with head-of-line blocking.
 *
 * One scan in index (= arrival) order over unfinished, non-running
 * requests. Because admission is strictly FCFS, every ever-admitted
 * (hence every preempted) request precedes every never-admitted one,
 * so the scan naturally restores preempted requests before admitting
 * new arrivals — vLLM's rule that waiting requests stay blocked
 * while preempted work exists. Admission stops at the first request
 * the allocator rejects (head-of-line blocking preserved, exactly
 * the pre-redesign AdmitFcfs behaviour under the conservative
 * policy).
 */
void
PlanAdmissions(double now, std::vector<RequestState>& requests,
               KvAllocator& kv, size_t active_begin,
               size_t& admitted_end, SchedulingDecision& decision)
{
    for (size_t i = active_begin; i < requests.size(); ++i) {
        RequestState& state = requests[i];
        if (state.Finished() || state.Admitted()) continue;
        if (state.Preempted()) {
            PreemptMode mode = state.phase == Phase::kPreemptedSwapped
                                   ? PreemptMode::kSwap
                                   : PreemptMode::kRecompute;
            if (!kv.TryAdmit(state)) break;
            state.phase = Phase::kRunning;
            // A prefix hit credits cached prompt tokens as already
            // prefilled; the engine folds the same figure out of its
            // pending-work counters via the recorded transition.
            int cached = kv.LastAdmitCachedTokens();
            if (cached > 0) state.prefilled = cached;
            decision.restores.push_back(SchedulingDecision::Transition{
                static_cast<int>(i), mode, kv.Held(state.request.id),
                cached});
            continue;
        }
        if (state.request.arrival_time > now) break;  // sorted by arrival
        kv.CheckFits(state);
        if (!kv.TryAdmit(state)) break;
        state.phase = Phase::kRunning;
        int cached = kv.LastAdmitCachedTokens();
        if (cached > 0) state.prefilled = cached;
        decision.admissions.push_back(SchedulingDecision::Admission{
            static_cast<int>(i), cached});
        admitted_end = std::max(admitted_end, i + 1);
    }
    // FCFS invariant: everything at or past the watermark was never
    // admitted, so batch-building scans stop there.
    admitted_end = std::min(admitted_end, requests.size());
}

/** Evict one running request and record the transition. */
void
Preempt(std::vector<RequestState>& requests, int req_index,
        KvAllocator& kv, SchedulingDecision& decision)
{
    RequestState& state = requests[static_cast<size_t>(req_index)];
    PreemptMode mode = kv.preempt_mode();
    long blocks = kv.Evict(state, mode);
    state.phase = mode == PreemptMode::kSwap ? Phase::kPreemptedSwapped
                                             : Phase::kPreemptedRecompute;
    decision.preemptions.push_back(
        SchedulingDecision::Transition{req_index, mode, blocks});
}

/**
 * Schedule running decodes, growing each reservation for the token
 * this iteration materializes. When the pool cannot grow, victims
 * are evicted from the back of the *decoding* set (latest arrival =
 * lowest priority among decoders, vLLM's preemption order).
 * Admitted requests still mid-prefill are deliberately exempt from
 * victimhood: their prompt blocks were reserved at admission, they
 * allocate nothing per iteration, and evicting half-processed
 * prefills would burn strictly more recompute work than evicting a
 * decoder frees. The frontmost decoder can always proceed because
 * admission guaranteed its worst-case footprint fits the pool
 * (KvAllocator::CheckFits).
 */
void
ScheduleDecodes(std::vector<RequestState>& requests, KvAllocator& kv,
                size_t active_begin, size_t admitted_end, int max_num_seqs,
                SchedulingDecision& decision)
{
    std::vector<int> running;
    for (size_t i = active_begin; i < admitted_end; ++i) {
        if (requests[i].Admitted() && requests[i].DecodePending()) {
            running.push_back(static_cast<int>(i));
        }
    }
    size_t lo = 0;
    size_t hi = running.size();  // victims pop from the back of [lo, hi)
    while (lo < hi) {
        RequestState& state = requests[static_cast<size_t>(running[lo])];
        while (!kv.CanAppend(state) && hi - lo > 1) {
            --hi;
            Preempt(requests, running[hi], kv, decision);
        }
        if (!kv.CanAppend(state)) {
            Preempt(requests, running[lo], kv, decision);
            ++lo;
            continue;
        }
        kv.Append(state);
        decision.batch.decodes.push_back(running[lo]);
        ++lo;
        if (static_cast<int>(decision.batch.decodes.size()) >=
            max_num_seqs) {
            break;
        }
    }
}

}  // namespace

VllmScheduler::VllmScheduler(int max_batched_tokens, int max_num_seqs)
    : max_batched_tokens_(max_batched_tokens), max_num_seqs_(max_num_seqs)
{
    POD_CHECK_ARG(max_batched_tokens >= 1, "token cap must be >= 1");
    POD_CHECK_ARG(max_num_seqs >= 1, "sequence cap must be >= 1");
}

SchedulingDecision
VllmScheduler::Next(double now, std::vector<RequestState>& requests,
                    KvAllocator& kv, size_t active_begin,
                    size_t& admitted_end)
{
    SchedulingDecision decision;
    PlanAdmissions(now, requests, kv, active_begin, admitted_end,
                   decision);
    ScheduledBatch& batch = decision.batch;

    // Prefill-prioritizing: if any admitted prompt is unprocessed,
    // run a prefill-only iteration over whole prompts (no chunking).
    // Prompt blocks were reserved at admission, so prefill-only
    // iterations never grow the pool and never preempt.
    int tokens = 0;
    for (size_t i = active_begin; i < admitted_end; ++i) {
        RequestState& state = requests[i];
        if (!state.Admitted() || state.PrefillDone()) continue;
        int remaining = state.PrefillTarget() - state.prefilled;
        if (!batch.prefills.empty() &&
            (tokens + remaining > max_batched_tokens_ ||
             static_cast<int>(batch.prefills.size()) >= max_num_seqs_)) {
            break;
        }
        batch.prefills.push_back(ScheduledBatch::PrefillChunk{
            static_cast<int>(i), remaining, state.PrefillTarget()});
        tokens += remaining;
    }
    if (!batch.prefills.empty()) {
        return decision;  // decodes pause: the generation stall (Fig. 2a)
    }

    ScheduleDecodes(requests, kv, active_begin, admitted_end,
                    max_num_seqs_, decision);
    return decision;
}

SarathiScheduler::SarathiScheduler(int token_budget, int max_num_seqs)
    : token_budget_(token_budget), max_num_seqs_(max_num_seqs)
{
    POD_CHECK_ARG(token_budget >= 1, "token budget must be >= 1");
    POD_CHECK_ARG(max_num_seqs >= 1, "sequence cap must be >= 1");
}

SchedulingDecision
SarathiScheduler::Next(double now, std::vector<RequestState>& requests,
                       KvAllocator& kv, size_t active_begin,
                       size_t& admitted_end)
{
    SchedulingDecision decision;
    PlanAdmissions(now, requests, kv, active_begin, admitted_end,
                   decision);
    ScheduledBatch& batch = decision.batch;

    // All running decodes join every iteration: stall-free batching.
    ScheduleDecodes(requests, kv, active_begin, admitted_end,
                    max_num_seqs_, decision);

    // Prefill chunks fill the remaining token budget (paper S2.1).
    // Chunks draw on blocks reserved at admission, so they never
    // allocate — a decode-evicted victim cannot be re-hit here.
    int budget =
        std::max(0, token_budget_ - static_cast<int>(batch.decodes.size()));
    for (size_t i = active_begin; i < admitted_end && budget > 0; ++i) {
        RequestState& state = requests[i];
        if (!state.Admitted() || state.PrefillDone()) continue;
        int remaining = state.PrefillTarget() - state.prefilled;
        int chunk = std::min(budget, remaining);
        batch.prefills.push_back(ScheduledBatch::PrefillChunk{
            static_cast<int>(i), chunk, state.prefilled + chunk});
        budget -= chunk;
    }
    return decision;
}

}  // namespace pod::serve
