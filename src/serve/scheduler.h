/**
 * @file
 * Iteration-level batch schedulers (paper S2.1, Fig. 2).
 *
 * The engine asks the scheduler for the next batch each iteration.
 * Two policies from the paper:
 *
 *  - VllmScheduler: the original vLLM prefill-prioritizing policy.
 *    Whenever prompts wait, it runs a prefill-only iteration over
 *    whole prompts, pausing all decodes (low TTFT, generation stalls
 *    -> high tail TBT).
 *  - SarathiScheduler: chunked prefills + stall-free hybrid batching.
 *    Every iteration carries all running decodes plus prefill chunks
 *    filling the remaining token budget (bounded TBT, higher TTFT).
 *
 * Next() returns a SchedulingDecision: the batch to execute plus the
 * request-lifecycle transitions the scheduler performed against the
 * KvAllocator while forming it — admissions, preempted-request
 * restores, and ordered preemptions. The scheduler mutates only
 * phases and the allocator; the engine applies the progress, counter
 * and timing consequences (docs/DESIGN.md S2).
 */
#ifndef POD_SERVE_SCHEDULER_H
#define POD_SERVE_SCHEDULER_H

#include <memory>
#include <string>
#include <vector>

#include "serve/kv_allocator.h"
#include "serve/request.h"

namespace pod::serve {

/** The batch chosen for one iteration. */
struct ScheduledBatch
{
    /** One prefill chunk of a request. */
    struct PrefillChunk
    {
        /** Index into the engine's request-state array. */
        int req_index = 0;

        /** Tokens of the prompt processed this iteration. */
        int chunk_len = 0;

        /** KV length after this chunk (context the chunk attends). */
        int kv_len_after = 0;
    };

    std::vector<PrefillChunk> prefills;

    /** Request-state indices decoding this iteration. */
    std::vector<int> decodes;

    bool Empty() const { return prefills.empty() && decodes.empty(); }

    /** Total new tokens in this batch. */
    int
    TotalTokens() const
    {
        int tokens = static_cast<int>(decodes.size());
        for (const auto& p : prefills) tokens += p.chunk_len;
        return tokens;
    }
};

/**
 * One scheduler iteration's output: the batch plus every lifecycle
 * transition performed while forming it.
 */
struct SchedulingDecision
{
    /** A request moving between the running set and a preempted /
     * queued phase. `blocks` is the on-device block count moved
     * (the swap transfer size when mode == kSwap). */
    struct Transition
    {
        int req_index = 0;
        PreemptMode mode = PreemptMode::kRecompute;
        long blocks = 0;

        /** Prompt tokens the re-admission served from a prefix cache
         * (already credited to state.prefilled; 0 on preemptions and
         * under cacheless policies). */
        int cached_tokens = 0;
    };

    /** A request entering the running set for the first time. */
    struct Admission
    {
        int req_index = 0;

        /** Prompt tokens served from a prefix cache (already
         * credited to state.prefilled; 0 under cacheless policies). */
        int cached_tokens = 0;
    };

    ScheduledBatch batch;

    /** Queued -> Running, in admission (FCFS) order. */
    std::vector<Admission> admissions;

    /** Preempted* -> Running, in restore order. */
    std::vector<Transition> restores;

    /** Running -> Preempted*, in eviction order. */
    std::vector<Transition> preemptions;
};

/** Scheduler interface. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Choose the next batch and perform admission / restore /
     * eviction against the allocator.
     *
     * Contract on an empty batch: returning an empty batch tells the
     * engine nothing is runnable, so it must coincide with an empty
     * decision (no admissions, restores or preemptions) and no
     * request may be left in a preempted phase — the engine responds
     * by jumping the clock to the next queued arrival and asserts
     * these invariants. Both in-tree schedulers satisfy this
     * structurally (an admitted or restored request always
     * contributes prefill or decode work to the batch).
     *
     * @param now current time (requests with arrival_time > now are
     *        invisible).
     * @param requests all request states (the scheduler moves
     *        phases; the engine applies everything else).
     * @param kv allocation policy for admission control, incremental
     *        growth and eviction.
     * @param active_begin first index that may be unfinished: every
     *        request before it has finished, so scans start there and
     *        stay O(active) on long traces (docs/DESIGN.md S8). Pass
     *        0 to scan everything (no default: default arguments on
     *        virtuals bind by static type and would silently pin
     *        overrides to the base value).
     * @param admitted_end in/out watermark one past the highest index
     *        ever admitted. Admission is strictly FCFS, so every
     *        admitted (running or preempted) request sits below it
     *        and batch-building scans stop there instead of walking
     *        the full submitted backlog — the difference between
     *        O(active) and O(trace) per iteration when a long trace
     *        is queued up front. The scheduler raises it as it
     *        admits. The caller owns the value across iterations and
     *        must reset it to 0 with its request vector.
     */
    virtual SchedulingDecision Next(double now,
                                    std::vector<RequestState>& requests,
                                    KvAllocator& kv, size_t active_begin,
                                    size_t& admitted_end) = 0;

    /**
     * Single-shot convenience (tests, exploratory callers): scans
     * with a throwaway watermark spanning the whole vector.
     */
    SchedulingDecision
    Next(double now, std::vector<RequestState>& requests, KvAllocator& kv,
         size_t active_begin)
    {
        size_t admitted_end = requests.size();
        return Next(now, requests, kv, active_begin, admitted_end);
    }

    /** Policy name for reports. */
    virtual std::string Name() const = 0;
};

/** Original vLLM scheduler (prefill-prioritizing, no chunking). */
class VllmScheduler : public Scheduler
{
  public:
    /**
     * @param max_batched_tokens cap on prefill tokens per iteration.
     * @param max_num_seqs cap on sequences per batch.
     */
    explicit VllmScheduler(int max_batched_tokens = 16384,
                           int max_num_seqs = 256);

    using Scheduler::Next;
    SchedulingDecision Next(double now,
                            std::vector<RequestState>& requests,
                            KvAllocator& kv, size_t active_begin,
                            size_t& admitted_end) override;

    std::string Name() const override { return "vLLM"; }

  private:
    int max_batched_tokens_;
    int max_num_seqs_;
};

/** Sarathi-Serve scheduler (chunked prefills, hybrid batching). */
class SarathiScheduler : public Scheduler
{
  public:
    /**
     * @param token_budget per-iteration token budget; decodes count
     *        one token each, prefill chunks fill the remainder
     *        (the paper's "chunk size").
     * @param max_num_seqs cap on sequences per batch.
     */
    explicit SarathiScheduler(int token_budget = 512,
                              int max_num_seqs = 256);

    using Scheduler::Next;
    SchedulingDecision Next(double now,
                            std::vector<RequestState>& requests,
                            KvAllocator& kv, size_t active_begin,
                            size_t& admitted_end) override;

    std::string Name() const override { return "Sarathi"; }

  private:
    int token_budget_;
    int max_num_seqs_;
};

}  // namespace pod::serve

#endif  // POD_SERVE_SCHEDULER_H
