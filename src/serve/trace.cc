/**
 * @file
 * Implementation of synthetic workload generation.
 */
#include "serve/trace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace pod::serve {

WorkloadSpec
WorkloadSpec::Internal()
{
    WorkloadSpec spec;
    spec.name = "internal";
    spec.prefill_mean = 10500.0;
    spec.prefill_stddev = 5000.0;
    spec.prefill_min = 2048;
    spec.prefill_max = 32768;
    spec.decode_mean = 331.0;
    spec.decode_stddev = 250.0;
    spec.decode_min = 16;
    spec.decode_max = 2048;
    return spec;
}

WorkloadSpec
WorkloadSpec::Arxiv()
{
    WorkloadSpec spec;
    spec.name = "arxiv";
    spec.prefill_mean = 9500.0;
    spec.prefill_stddev = 4500.0;
    spec.prefill_min = 2048;
    spec.prefill_max = 32768;
    spec.decode_mean = 470.0;
    spec.decode_stddev = 350.0;
    spec.decode_min = 32;
    spec.decode_max = 3072;
    return spec;
}

std::vector<Request>
GenerateTrace(const WorkloadSpec& spec, int count, double qps, Rng& rng)
{
    POD_CHECK_ARG(count > 0, "trace needs at least one request");
    std::vector<Request> requests;
    requests.reserve(static_cast<size_t>(count));
    double now = 0.0;
    for (int i = 0; i < count; ++i) {
        Request req;
        req.id = i;
        if (qps > 0.0) {
            now += rng.Exponential(qps);
            req.arrival_time = now;
        }
        req.prefill_tokens = static_cast<int>(Clamp(
            rng.LogNormalByMoments(spec.prefill_mean, spec.prefill_stddev),
            static_cast<double>(spec.prefill_min),
            static_cast<double>(spec.prefill_max)));
        req.decode_tokens = static_cast<int>(Clamp(
            rng.LogNormalByMoments(spec.decode_mean, spec.decode_stddev),
            static_cast<double>(spec.decode_min),
            static_cast<double>(spec.decode_max)));
        requests.push_back(req);
    }
    return requests;
}

std::vector<Request>
UniformTrace(int count, int prefill_tokens, int decode_tokens)
{
    POD_CHECK_ARG(count > 0, "trace needs at least one request");
    POD_CHECK_ARG(prefill_tokens > 0 && decode_tokens > 0,
                  "token counts must be positive");
    std::vector<Request> requests(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        requests[static_cast<size_t>(i)].id = i;
        requests[static_cast<size_t>(i)].prefill_tokens = prefill_tokens;
        requests[static_cast<size_t>(i)].decode_tokens = decode_tokens;
    }
    return requests;
}

std::vector<Request>
PdRatioTrace(int count, int total_tokens, double pd_ratio)
{
    POD_CHECK_ARG(pd_ratio > 0.0, "P:D ratio must be positive");
    std::vector<Request> requests(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        Request& req = requests[static_cast<size_t>(i)];
        req.id = i;
        double decode = total_tokens / (pd_ratio + 1.0);
        req.decode_tokens = std::max(1, static_cast<int>(decode));
        req.prefill_tokens =
            std::max(1, total_tokens - req.decode_tokens);
    }
    return requests;
}

}  // namespace pod::serve
