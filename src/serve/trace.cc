/**
 * @file
 * Implementation of synthetic workload generation.
 */
#include "serve/trace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "serve/prefix/block_hash.h"

namespace pod::serve {

WorkloadSpec
WorkloadSpec::Internal()
{
    WorkloadSpec spec;
    spec.name = "internal";
    spec.prefill_mean = 10500.0;
    spec.prefill_stddev = 5000.0;
    spec.prefill_min = 2048;
    spec.prefill_max = 32768;
    spec.decode_mean = 331.0;
    spec.decode_stddev = 250.0;
    spec.decode_min = 16;
    spec.decode_max = 2048;
    return spec;
}

WorkloadSpec
WorkloadSpec::Arxiv()
{
    WorkloadSpec spec;
    spec.name = "arxiv";
    spec.prefill_mean = 9500.0;
    spec.prefill_stddev = 4500.0;
    spec.prefill_min = 2048;
    spec.prefill_max = 32768;
    spec.decode_mean = 470.0;
    spec.decode_stddev = 350.0;
    spec.decode_min = 32;
    spec.decode_max = 3072;
    return spec;
}

std::vector<Request>
GenerateTrace(const WorkloadSpec& spec, int count, double qps, Rng& rng)
{
    POD_CHECK_ARG(count > 0, "trace needs at least one request");
    std::vector<Request> requests;
    requests.reserve(static_cast<size_t>(count));
    double now = 0.0;
    for (int i = 0; i < count; ++i) {
        Request req;
        req.id = i;
        if (qps > 0.0) {
            now += rng.Exponential(qps);
            req.arrival_time = now;
        }
        req.prefill_tokens = static_cast<int>(Clamp(
            rng.LogNormalByMoments(spec.prefill_mean, spec.prefill_stddev),
            static_cast<double>(spec.prefill_min),
            static_cast<double>(spec.prefill_max)));
        req.decode_tokens = static_cast<int>(Clamp(
            rng.LogNormalByMoments(spec.decode_mean, spec.decode_stddev),
            static_cast<double>(spec.decode_min),
            static_cast<double>(spec.decode_max)));
        requests.push_back(req);
    }
    return requests;
}

std::vector<Request>
UniformTrace(int count, int prefill_tokens, int decode_tokens)
{
    POD_CHECK_ARG(count > 0, "trace needs at least one request");
    POD_CHECK_ARG(prefill_tokens > 0 && decode_tokens > 0,
                  "token counts must be positive");
    std::vector<Request> requests(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        requests[static_cast<size_t>(i)].id = i;
        requests[static_cast<size_t>(i)].prefill_tokens = prefill_tokens;
        requests[static_cast<size_t>(i)].decode_tokens = decode_tokens;
    }
    return requests;
}

std::vector<Request>
PdRatioTrace(int count, int total_tokens, double pd_ratio)
{
    POD_CHECK_ARG(pd_ratio > 0.0, "P:D ratio must be positive");
    std::vector<Request> requests(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        Request& req = requests[static_cast<size_t>(i)];
        req.id = i;
        double decode = total_tokens / (pd_ratio + 1.0);
        req.decode_tokens = std::max(1, static_cast<int>(decode));
        req.prefill_tokens =
            std::max(1, total_tokens - req.decode_tokens);
    }
    return requests;
}

SessionWorkloadSpec
SessionWorkloadSpec::Chat()
{
    return SessionWorkloadSpec{};
}

std::vector<Request>
GenerateSessionTrace(const SessionWorkloadSpec& spec, int num_sessions,
                     double qps, Rng& rng)
{
    POD_CHECK_ARG(num_sessions > 0, "trace needs at least one session");
    POD_CHECK_ARG(spec.num_system_prompts >= 1,
                  "need at least one system prompt");
    POD_CHECK_ARG(spec.share_ratio >= 0.0 && spec.share_ratio <= 1.0,
                  "share_ratio must be in [0, 1]");
    POD_CHECK_ARG(spec.system_tokens_min >= 1 &&
                      spec.system_tokens_max >= spec.system_tokens_min,
                  "system prompt token range is empty");
    POD_CHECK_ARG(spec.min_turns >= 1 &&
                      spec.max_turns >= spec.min_turns,
                  "turn range is empty");
    POD_CHECK_ARG(spec.think_time_mean > 0.0,
                  "think time must be positive");

    // Zipf popularity over the shared pool: weight 1/(k+1)^s.
    std::vector<double> zipf(
        static_cast<size_t>(spec.num_system_prompts));
    for (int k = 0; k < spec.num_system_prompts; ++k) {
        zipf[static_cast<size_t>(k)] =
            1.0 / std::pow(static_cast<double>(k + 1), spec.zipf_s);
    }
    // Pool prompt lengths are a pure function of the prompt index so
    // every session replaying prompt k sends identical content.
    auto pool_tokens = [&spec](int k) {
        uint64_t span = static_cast<uint64_t>(spec.system_tokens_max -
                                              spec.system_tokens_min) +
                        1;
        return spec.system_tokens_min +
               static_cast<int>(
                   prefix::ContentId("sys-len",
                                     static_cast<uint64_t>(k)) %
                   span);
    };

    std::vector<Request> requests;
    double session_start = 0.0;
    for (int m = 0; m < num_sessions; ++m) {
        if (qps > 0.0) session_start += rng.Exponential(qps);

        // Opening context: shared pool prompt or unique preamble.
        PromptSegment opening;
        if (rng.Bernoulli(spec.share_ratio)) {
            int k = static_cast<int>(rng.Weighted(zipf));
            opening.content_id =
                prefix::ContentId("sys", static_cast<uint64_t>(k));
            opening.tokens = pool_tokens(k);
        } else {
            opening.content_id =
                prefix::ContentId("uniq", static_cast<uint64_t>(m));
            opening.tokens = static_cast<int>(
                rng.UniformInt(spec.system_tokens_min,
                               spec.system_tokens_max));
        }

        int turns = static_cast<int>(
            rng.UniformInt(spec.min_turns, spec.max_turns));
        std::vector<PromptSegment> history{opening};
        double arrival = session_start;
        for (int j = 0; j < turns; ++j) {
            int user_tokens = static_cast<int>(Clamp(
                rng.LogNormalByMoments(spec.user_mean, spec.user_stddev),
                static_cast<double>(spec.user_min),
                static_cast<double>(spec.user_max)));
            history.push_back(PromptSegment{
                prefix::ContentId("user", static_cast<uint64_t>(m),
                                  static_cast<uint64_t>(j)),
                user_tokens});

            Request req;
            req.arrival_time = arrival;
            req.prompt = history;
            req.prefill_tokens = 0;
            for (const PromptSegment& seg : req.prompt) {
                req.prefill_tokens += seg.tokens;
            }
            req.decode_tokens = static_cast<int>(Clamp(
                rng.LogNormalByMoments(spec.decode_mean,
                                       spec.decode_stddev),
                static_cast<double>(spec.decode_min),
                static_cast<double>(spec.decode_max)));
            req.session_id = m;
            req.turn = j;
            requests.push_back(std::move(req));

            // The next turn replays this turn's response verbatim.
            history.push_back(PromptSegment{
                prefix::ContentId("resp", static_cast<uint64_t>(m),
                                  static_cast<uint64_t>(j)),
                requests.back().decode_tokens});
            arrival += rng.Exponential(1.0 / spec.think_time_mean);
        }
    }

    // Interleave sessions into one arrival-ordered trace; ids follow
    // arrival order so engine Submit() ordering holds trivially.
    std::stable_sort(requests.begin(), requests.end(),
                     [](const Request& a, const Request& b) {
                         return a.arrival_time < b.arrival_time;
                     });
    for (size_t i = 0; i < requests.size(); ++i) {
        requests[i].id = static_cast<int>(i);
    }
    return requests;
}

}  // namespace pod::serve
