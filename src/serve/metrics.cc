/**
 * @file
 * Implementation of serving metrics collection.
 */
#include "serve/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace pod::serve {

MetricsReport
CollectMetrics(const std::vector<RequestState>& states, double makespan,
               long iterations, double total_batch_tokens)
{
    MetricsReport report;
    report.num_requests = static_cast<int>(states.size());
    report.makespan = makespan;
    report.iterations = iterations;
    if (makespan > 0.0) {
        report.requests_per_minute =
            static_cast<double>(states.size()) / makespan * 60.0;
    }
    if (iterations > 0) {
        report.mean_batch_tokens =
            total_batch_tokens / static_cast<double>(iterations);
    }

    int stalled_200 = 0;
    int stalled_500 = 0;
    for (const auto& state : states) {
        POD_ASSERT(state.Finished());
        report.preemptions += state.preempt_count;
        if (state.preempt_count > 0) ++report.requests_preempted;
        report.ttft.Add(state.first_token_time -
                        state.request.arrival_time);
        report.latency.Add(state.finish_time - state.request.arrival_time);
        double max_tbt = 0.0;
        for (double gap : state.tbt) {
            report.tbt.Add(gap);
            max_tbt = std::max(max_tbt, gap);
        }
        if (max_tbt > 0.2) ++stalled_200;
        if (max_tbt > 0.5) ++stalled_500;
    }
    if (!states.empty()) {
        report.frac_stalled_200ms =
            static_cast<double>(stalled_200) / states.size();
        report.frac_stalled_500ms =
            static_cast<double>(stalled_500) / states.size();
    }
    return report;
}

void
FillSampleStats(const SampleStats& stats,
                telemetry::MetricRegistry& registry,
                const std::string& prefix)
{
    registry.SetGauge(prefix + ".count",
                      static_cast<double>(stats.Count()));
    registry.SetGauge(prefix + ".mean_seconds", stats.Mean());
    registry.SetGauge(prefix + ".p50_seconds", stats.Percentile(50.0));
    registry.SetGauge(prefix + ".p99_seconds", stats.Percentile(99.0));
    registry.SetGauge(prefix + ".max_seconds", stats.Max());
}

void
FillRegistry(const MetricsReport& report,
             telemetry::MetricRegistry& registry,
             const std::string& prefix)
{
    registry.AddCounter(prefix + "requests", report.num_requests);
    registry.AddCounter(prefix + "iterations", report.iterations);
    registry.AddCounter(prefix + "preempt.total", report.preemptions);
    registry.AddCounter(prefix + "preempt.recompute",
                        report.preemptions_recompute);
    registry.AddCounter(prefix + "preempt.swap", report.preemptions_swap);
    registry.AddCounter(prefix + "preempt.requests",
                        report.requests_preempted);
    registry.SetGauge(prefix + "makespan_seconds", report.makespan);
    registry.SetGauge(prefix + "requests_per_minute",
                      report.requests_per_minute);
    registry.SetGauge(prefix + "batch_tokens.mean",
                      report.mean_batch_tokens);
    registry.SetGauge(prefix + "stalled.frac_200ms",
                      report.frac_stalled_200ms);
    registry.SetGauge(prefix + "stalled.frac_500ms",
                      report.frac_stalled_500ms);
    registry.SetGauge(prefix + "swap.total_seconds",
                      report.swap_time_total);
    registry.AddCounter(prefix + "sim_core.fastpath_events",
                        report.sim_fastpath_events);
    registry.AddCounter(prefix + "sim_core.fallback_events",
                        report.sim_fallback_events);
    registry.AddCounter(prefix + "tokens.prefill_processed",
                        report.prefill_tokens_processed);
    registry.AddCounter(prefix + "tokens.decode_processed",
                        report.decode_tokens_processed);
    registry.AddCounter(prefix + "kv_prefix.hits", report.prefix_hits);
    registry.AddCounter(prefix + "kv_prefix.misses",
                        report.prefix_misses);
    registry.AddCounter(prefix + "kv_prefix.hit_blocks",
                        report.prefix_hit_blocks);
    registry.AddCounter(prefix + "kv_prefix.evicted_blocks",
                        report.prefix_evicted_blocks);
    registry.AddCounter(prefix + "kv_prefix.tokens_saved",
                        report.prefix_tokens_saved);
    registry.SetGauge(prefix + "kv_prefix.cached_blocks",
                      static_cast<double>(report.prefix_cached_blocks));
    registry.SetGauge(prefix + "kv_prefix.shared_blocks",
                      static_cast<double>(report.prefix_shared_blocks));
    FillSampleStats(report.ttft, registry, prefix + "ttft");
    FillSampleStats(report.tbt, registry, prefix + "tbt");
    FillSampleStats(report.latency, registry, prefix + "latency");
}

}  // namespace pod::serve
