/**
 * @file
 * Block-based KV cache accounting (PagedAttention-style bookkeeping).
 *
 * BlockKvManager is the raw block ledger: it tracks which request
 * holds how many blocks and nothing else. Admission *policy* — when a
 * reservation may happen, whether requests grow incrementally, who
 * gets evicted under pressure — lives in the KvAllocator
 * implementations (serve/kv_allocator.h), which are the only code
 * that should construct one (docs/DESIGN.md S2).
 */
#ifndef POD_SERVE_KV_MANAGER_H
#define POD_SERVE_KV_MANAGER_H

#include <unordered_map>

#include "common/math_util.h"

namespace pod::serve {

/**
 * Tracks KV block allocation per request. Pure accounting: every
 * operation is a ledger update; misuse (double reserve, double free,
 * freeing an unknown request) is fatal rather than silently absorbed,
 * so policy bugs in the allocators surface at the call site.
 */
class BlockKvManager
{
  public:
    /**
     * @param total_blocks capacity of the device KV pool; must be
     *        >= 1 (a zero-capacity pool would make every admission
     *        path a silent no-op) and small enough that the pool's
     *        token capacity `total_blocks * block_size` fits in a
     *        long.
     * @param block_size tokens per block.
     */
    BlockKvManager(long total_blocks, int block_size);

    /** Blocks needed to hold `tokens` tokens; `tokens` must be >= 0. */
    long BlocksFor(int tokens) const;

    /** True if a reservation of `tokens` tokens would fit now. */
    bool CanReserve(int tokens) const;

    /** Reserve blocks for a request; false if out of capacity. */
    bool Reserve(int request_id, int tokens);

    /**
     * Reserve an explicit block count (swap-in restores a preempted
     * request's exact footprint). False if out of capacity.
     */
    bool ReserveBlocks(int request_id, long blocks);

    /**
     * Grow an existing reservation by `extra_blocks` (incremental
     * decode growth). False if out of capacity; fatal if the request
     * holds no reservation.
     */
    bool Grow(int request_id, long extra_blocks);

    /** Blocks currently held by a request (0 if none reserved). */
    long Held(int request_id) const;

    /**
     * Release a request's blocks and return how many were freed.
     * Fatal on double-free / freeing an unknown request.
     */
    long Free(int request_id);

    // ---- shared account (prefix cache; docs/DESIGN.md S2.6) ----
    // Cached prompt blocks are owned by no single request: they sit
    // in a shared account that counts toward UsedBlocks() like any
    // reservation. The PrefixCache tracks *which* blocks these are
    // and who references them; this ledger only guarantees the counts
    // can never leak or double-free (every transfer is guarded).

    /** Move `blocks` from the free pool into the shared account;
     * false (and no change) if they do not fit. */
    bool ReserveShared(long blocks);

    /** Return `blocks` from the shared account to the free pool.
     * Fatal if the account holds fewer (double-free guard). */
    void ReleaseShared(long blocks);

    /** Re-label `blocks` of a request's private reservation as
     * shared (a freshly prefilled prompt entering the cache). Fatal
     * if the request holds fewer (overflow guard). The request's
     * entry survives even at zero held blocks. */
    void TransferToShared(int request_id, long blocks);

    /** Give back `blocks` of a request's private reservation (its
     * prompt was already cached by someone else, so the duplicate
     * is dropped). Fatal if the request holds fewer. */
    void Shrink(int request_id, long blocks);

    /** Blocks in the shared account. */
    long SharedBlocks() const { return shared_blocks_; }

    /** Audit the ledger: per-request holdings plus the shared
     * account must exactly equal UsedBlocks(). Fatal on drift. */
    void CheckLedger() const;

    long TotalBlocks() const { return total_blocks_; }
    long UsedBlocks() const { return used_blocks_; }
    long FreeBlocks() const { return total_blocks_ - used_blocks_; }
    int BlockSize() const { return block_size_; }

    /** Fraction of the pool in use. */
    double
    Utilization() const
    {
        return total_blocks_ > 0
                   ? static_cast<double>(used_blocks_) / total_blocks_
                   : 0.0;
    }

  private:
    long total_blocks_;
    int block_size_;
    long used_blocks_ = 0;
    long shared_blocks_ = 0;
    std::unordered_map<int, long> reserved_;
};

}  // namespace pod::serve

#endif  // POD_SERVE_KV_MANAGER_H
