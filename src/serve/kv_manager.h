/**
 * @file
 * Block-based KV cache accounting for the serving engine
 * (PagedAttention-style admission control).
 */
#ifndef POD_SERVE_KV_MANAGER_H
#define POD_SERVE_KV_MANAGER_H

#include <unordered_map>

#include "common/math_util.h"

namespace pod::serve {

/**
 * Tracks KV block allocation per request. Admission is conservative:
 * a request reserves blocks for its full prompt plus maximum output
 * up front, so no preemption is ever needed (documented deviation
 * from vLLM's watermark+preemption scheme; docs/DESIGN.md S2).
 */
class BlockKvManager
{
  public:
    /**
     * @param total_blocks capacity of the device KV pool.
     * @param block_size tokens per block.
     */
    BlockKvManager(long total_blocks, int block_size);

    /** Blocks needed to hold `tokens` tokens. */
    long BlocksFor(int tokens) const;

    /** True if a reservation of `tokens` tokens would fit now. */
    bool CanReserve(int tokens) const;

    /** Reserve blocks for a request; false if out of capacity. */
    bool Reserve(int request_id, int tokens);

    /** Release a request's blocks. */
    void Free(int request_id);

    long TotalBlocks() const { return total_blocks_; }
    long UsedBlocks() const { return used_blocks_; }
    long FreeBlocks() const { return total_blocks_ - used_blocks_; }
    int BlockSize() const { return block_size_; }

    /** Fraction of the pool in use. */
    double
    Utilization() const
    {
        return total_blocks_ > 0
                   ? static_cast<double>(used_blocks_) / total_blocks_
                   : 0.0;
    }

  private:
    long total_blocks_;
    int block_size_;
    long used_blocks_ = 0;
    std::unordered_map<int, long> reserved_;
};

}  // namespace pod::serve

#endif  // POD_SERVE_KV_MANAGER_H
