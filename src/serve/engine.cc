/**
 * @file
 * Implementation of the serving engine.
 *
 * The incremental accounting invariants (PR 3, extended for the
 * lifecycle redesign):
 *  - `unadmitted_` holds state indices of never-admitted requests in
 *    submission (= arrival) order. The FCFS admission scan admits a
 *    consecutive prefix (head-of-line blocking stops it), and a
 *    never-admitted request can never finish, so the queue only ever
 *    pops at `unadmitted_head_`. Preempted requests left the queue at
 *    their first admission; their transitions flow through the
 *    SchedulingDecision lists instead.
 *  - `arrived_mark_` splits the queue into arrived (<= now) and
 *    future entries; the clock is monotonic, so it only moves forward.
 *  - Token/block counters are integer sums updated at transitions
 *    (Submit, admission, restore, preemption, chunk/decode progress,
 *    finish), so the O(1) Snapshot() is exactly the value a full
 *    rescan computes.
 * Every invariant is pinned by the bit-identical regression tests in
 * tests/serve/serve_regression_test.cc (conservative policy) and the
 * brute-force invariant tests in tests/serve/serve_incremental_test.cc
 * and tests/serve/preemption_test.cc (watermark policy).
 */
#include "serve/engine.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"
#include "model/iteration_cost.h"
#include "serve/prefix/prefix_cache.h"

namespace pod::serve {

namespace {

/** Round v up to a positive multiple of bucket. */
int
BucketUp(int v, int bucket)
{
    if (v <= 0) return 0;
    return RoundUp(v, bucket);
}

}  // namespace

long
ServingConfig::KvTokenCapacity() const
{
    double usable = gpu.hbm_capacity * memory_fraction -
                    model.WeightBytesPerGpu(tensor_parallel);
    POD_CHECK_ARG(usable > 0, "model weights exceed usable GPU memory");
    return static_cast<long>(
        usable / model.KvBytesPerTokenPerGpu(tensor_parallel));
}

ServingEngine::ServingEngine(ServingConfig config,
                             std::unique_ptr<Scheduler> scheduler)
    : config_(std::move(config)), scheduler_(std::move(scheduler))
{
    POD_CHECK_ARG(scheduler_ != nullptr, "engine needs a scheduler");
    config_.model.Validate(config_.tensor_parallel);
    config_.gpu.Validate();
    Reset();
}

double
ServingEngine::CachedAttnLayerTime(int chunk_len, int kv_len,
                                   int decode_bs, int mean_context)
{
    // Bucket the signature.
    int chunk = BucketUp(chunk_len, config_.chunk_bucket);
    int kv = BucketUp(std::max(kv_len, chunk_len), config_.kv_bucket);
    int dbs = decode_bs <= config_.decode_bs_bucket
                  ? decode_bs
                  : BucketUp(decode_bs, config_.decode_bs_bucket);
    int ctx = BucketUp(std::max(mean_context, 1), config_.context_bucket);
    if (chunk == 0) kv = 0;
    if (dbs == 0) ctx = 0;
    if (chunk == 0 && dbs == 0) return 0.0;

    uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(chunk))
                    << 40) ^
                   (static_cast<uint64_t>(static_cast<uint32_t>(kv))
                    << 20) ^
                   (static_cast<uint64_t>(static_cast<uint32_t>(dbs))
                    << 44) ^
                   (static_cast<uint64_t>(static_cast<uint32_t>(ctx)) *
                    0x9E3779B97F4A7C15ull);
    if (config_.attn_cache_enabled) {
        auto it = attn_cache_.find(key);
        if (it != attn_cache_.end()) {
            ++attn_cache_hits_;
            return it->second;
        }
    }
    ++attn_cache_misses_;

    kernels::HybridBatch batch;
    batch.shape = config_.model.ShapePerGpu(config_.tensor_parallel);
    if (chunk > 0) {
        batch.prefills.push_back(
            kernels::PrefillItem{chunk, std::max(kv, chunk)});
    }
    if (dbs > 0) {
        batch.decode = kernels::DecodeItem::Uniform(dbs, ctx);
    }
    core::AttnRunResult result = core::RunAttention(
        config_.backend, batch, config_.gpu, config_.attn_options);
    sim_fastpath_events_ += result.analytic_fastpath_events;
    sim_fallback_events_ += result.oracle_fallback_events;
    // The simulated time is a pure function of the bucketed signature,
    // so memoizing it (or not) is bit-invisible to results.
    if (config_.attn_cache_enabled) attn_cache_[key] = result.total_time;
    return result.total_time;
}

double
ServingEngine::IterationTime(const ScheduledBatch& batch,
                             const std::vector<RequestState>& states)
{
    // Attention signature: total chunk tokens, max chunk context,
    // decode count and mean decode context.
    int chunk_total = 0;
    int kv_max = 0;
    for (const auto& p : batch.prefills) {
        chunk_total += p.chunk_len;
        kv_max = std::max(kv_max, p.kv_len_after);
    }
    long ctx_sum = 0;
    for (int idx : batch.decodes) {
        ctx_sum += states[static_cast<size_t>(idx)].ContextLen();
    }
    int dbs = static_cast<int>(batch.decodes.size());
    int mean_ctx =
        dbs > 0 ? static_cast<int>(ctx_sum / dbs) : 0;

    double attn_layer =
        CachedAttnLayerTime(chunk_total, kv_max, dbs, mean_ctx);
    double attn = attn_layer * config_.model.num_layers;

    // Linear ops at the exact token count.
    int tokens = batch.TotalTokens();
    model::LinearCosts linear = model::ComputeLinearCosts(
        config_.model, config_.gpu, config_.tensor_parallel, tokens);
    double linear_total =
        (linear.qkv_proj + linear.out_proj + linear.ffn +
         linear.allreduce + linear.elementwise) *
        config_.model.num_layers;

    // Logits for every decode plus prefills completing this iteration.
    int logit_tokens = dbs;
    for (const auto& p : batch.prefills) {
        const RequestState& state = states[static_cast<size_t>(
            p.req_index)];
        if (state.prefilled + p.chunk_len >= state.PrefillTarget()) {
            ++logit_tokens;
        }
    }
    double logits = 0.0;
    if (logit_tokens > 0) {
        // Roofline of the LM-head GEMM.
        double flops = 2.0 * logit_tokens *
                       static_cast<double>(config_.model.hidden_dim) *
                       config_.model.vocab_size / config_.tensor_parallel;
        double bytes = static_cast<double>(config_.model.hidden_dim) *
                           config_.model.vocab_size * 2.0 /
                           config_.tensor_parallel +
                       static_cast<double>(logit_tokens) *
                           config_.model.vocab_size * 2.0;
        logits = std::max(flops / config_.gpu.TotalTensorFlops(),
                          bytes / config_.gpu.hbm_bandwidth);
    }

    return config_.iteration_overhead + linear_total + attn + logits;
}

void
ServingEngine::Reset()
{
    states_.clear();
    now_ = 0.0;
    iterations_ = 0;
    total_batch_tokens_ = 0.0;
    finished_ = 0;
    active_begin_ = 0;
    admitted_end_ = 0;
    unadmitted_.clear();
    unadmitted_head_ = 0;
    arrived_mark_ = 0;
    running_ = 0;
    preempted_now_ = 0;
    prefill_tokens_pending_ = 0;
    decode_tokens_pending_ = 0;
    pending_unadmitted_blocks_ = 0;
    pending_preempted_blocks_ = 0;
    preemptions_recompute_ = 0;
    preemptions_swap_ = 0;
    swap_time_total_ = 0.0;
    prefill_tokens_processed_ = 0;
    decode_tokens_processed_ = 0;
    long kv_tokens = config_.KvTokenCapacity();
    kv_ = MakeKvAllocator(config_.kv_policy,
                          std::max<long>(1, kv_tokens / config_.kv_block_size),
                          config_.kv_block_size, config_.kv_watermark,
                          config_.kv_preempt_mode,
                          config_.prefix_cache_enabled);
    kv_bytes_per_token_ =
        config_.model.KvBytesPerTokenPerGpu(config_.tensor_parallel);
    swap_bandwidth_ =
        std::min(config_.gpu.pcie_bandwidth, config_.gpu.hbm_bandwidth);
}

void
ServingEngine::Submit(const Request& request)
{
    POD_CHECK_ARG(request.prefill_tokens > 0, "request needs a prompt");
    POD_CHECK_ARG(request.decode_tokens >= 1,
                  "request needs at least one output token");
    POD_CHECK_ARG(states_.empty() ||
                      request.arrival_time >=
                          states_.back().request.arrival_time,
                  "submissions must be ordered by arrival time");
    RequestState state;
    state.request = request;
    states_.push_back(state);

    if (trace_) {
        trace_->Instant(telemetry::EventKind::kArrival,
                        request.arrival_time,
                        telemetry::TraceRecorder::RequestTrack(request.id),
                        request.prefill_tokens, request.decode_tokens);
    }

    unadmitted_.push_back(static_cast<int>(states_.size()) - 1);
    prefill_tokens_pending_ += request.prefill_tokens;
    pending_unadmitted_blocks_ +=
        kv_->BlocksFor(request.prefill_tokens + request.decode_tokens);
    SyncArrivals();
}

void
ServingEngine::SyncArrivals()
{
    while (arrived_mark_ < unadmitted_.size() &&
           states_[static_cast<size_t>(unadmitted_[arrived_mark_])]
                   .request.arrival_time <= now_) {
        ++arrived_mark_;
    }
}

void
ServingEngine::ApplyAdmissions(const SchedulingDecision& decision)
{
    for (const auto& a : decision.admissions) {
        const int idx = a.req_index;
        // FCFS admissions are exactly the next unadmitted-queue heads.
        POD_ASSERT(unadmitted_head_ < unadmitted_.size() &&
                   unadmitted_[unadmitted_head_] == idx);
        const RequestState& state = states_[static_cast<size_t>(idx)];
        if (trace_) {
            trace_->Instant(
                telemetry::EventKind::kAdmit, now_,
                telemetry::TraceRecorder::RequestTrack(state.request.id),
                state.PrefillTarget());
        }
        ++running_;
        decode_tokens_pending_ += state.request.decode_tokens;
        // Prompt tokens served from the prefix cache never execute.
        prefill_tokens_pending_ -= a.cached_tokens;
        pending_unadmitted_blocks_ -=
            kv_->BlocksFor(state.request.prefill_tokens +
                           state.request.decode_tokens);
        ++unadmitted_head_;
    }
    // Admission never outruns arrival (FCFS stops at future requests).
    if (arrived_mark_ < unadmitted_head_) arrived_mark_ = unadmitted_head_;
}

double
ServingEngine::ApplyLifecycleTransitions(
    const SchedulingDecision& decision, StepResult& result)
{
    double swap_bytes = 0.0;

    for (const auto& t : decision.restores) {
        RequestState& state = states_[static_cast<size_t>(t.req_index)];
        if (trace_) {
            trace_->Instant(
                telemetry::EventKind::kRestore, now_,
                telemetry::TraceRecorder::RequestTrack(state.request.id),
                t.blocks, t.mode == PreemptMode::kSwap ? 1 : 0);
        }
        ++running_;
        --preempted_now_;
        decode_tokens_pending_ +=
            state.request.decode_tokens - state.decoded;
        // The restore reserved exactly the blocks the preemption
        // queued as latent demand (swap footprint / prefill target).
        // A prefix hit covers part of the target from cache, so the
        // reservation shrank by exactly the cached blocks.
        prefill_tokens_pending_ -= t.cached_tokens;
        pending_preempted_blocks_ -=
            t.blocks + kv_->BlocksFor(t.cached_tokens);
        if (t.mode == PreemptMode::kSwap) {
            swap_bytes += static_cast<double>(t.blocks) *
                          kv_->BlockSize() * kv_bytes_per_token_;
        }
    }

    for (const auto& t : decision.preemptions) {
        RequestState& state = states_[static_cast<size_t>(t.req_index)];
        if (trace_) {
            trace_->Instant(
                t.mode == PreemptMode::kRecompute
                    ? telemetry::EventKind::kPreemptRecompute
                    : telemetry::EventKind::kPreemptSwap,
                now_,
                telemetry::TraceRecorder::RequestTrack(state.request.id),
                t.blocks);
        }
        --running_;
        ++preempted_now_;
        ++state.preempt_count;
        ++result.preempted;
        decode_tokens_pending_ -=
            state.request.decode_tokens - state.decoded;
        if (t.mode == PreemptMode::kRecompute) {
            ++preemptions_recompute_;
            // The context (prompt + generated tokens) must be
            // re-prefilled; fold the restored work into the pending
            // prefill counter.
            prefill_tokens_pending_ -=
                state.PrefillTarget() - state.prefilled;
            state.recompute_extra = state.decoded;
            state.prefilled = 0;
            prefill_tokens_pending_ +=
                state.PrefillTarget() - state.prefilled;
            // Re-admission will reserve the new prefill target.
            pending_preempted_blocks_ +=
                kv_->BlocksFor(state.PrefillTarget());
        } else {
            ++preemptions_swap_;
            // Swap-in will restore the evicted footprint verbatim.
            pending_preempted_blocks_ += t.blocks;
            swap_bytes += static_cast<double>(t.blocks) *
                          kv_->BlockSize() * kv_bytes_per_token_;
        }
    }

    // Roofline of the host transfer: the slower of the PCIe link and
    // HBM feeding it (in practice PCIe-bound).
    double swap_time = swap_bytes / swap_bandwidth_;
    swap_time_total_ += swap_time;
    result.swap_time = swap_time;
    return swap_time;
}

void
ServingEngine::FinishRequest(RequestState& state, StepResult& result)
{
    if (trace_) {
        trace_->Instant(
            telemetry::EventKind::kFinish, now_,
            telemetry::TraceRecorder::RequestTrack(state.request.id),
            state.decoded);
    }
    state.phase = Phase::kFinished;
    state.finish_time = now_;
    kv_->Release(state.request.id);
    ++finished_;
    --running_;
    ++result.completed;
}

StepResult
ServingEngine::Step()
{
    POD_ASSERT(kv_ != nullptr);  // the constructor calls Reset()
    StepResult result;
    result.start = now_;

    SchedulingDecision decision =
        scheduler_->Next(now_, states_, *kv_, active_begin_,
                         admitted_end_);
    ApplyAdmissions(decision);
    double swap_time = ApplyLifecycleTransitions(decision, result);
    const ScheduledBatch& batch = decision.batch;
    if (batch.Empty()) {
        // An empty batch implies no lifecycle activity: admitted and
        // restored requests always contribute work, and preemption
        // only happens while scheduling decodes.
        POD_ASSERT(decision.admissions.empty() &&
                   decision.restores.empty() &&
                   decision.preemptions.empty());
        POD_ASSERT(preempted_now_ == 0);
        // Nothing runnable: jump to the next queued arrival (the
        // first unadmitted entry beyond the arrived mark).
        POD_ASSERT_MSG(arrived_mark_ < unadmitted_.size(),
                       "scheduler stuck with %zu unfinished requests",
                       states_.size() - finished_);
        now_ = states_[static_cast<size_t>(unadmitted_[arrived_mark_])]
                   .request.arrival_time;
        SyncArrivals();
        result.kv_utilization = kv_->Utilization();
        return result;
    }

    // Swap transfers serialize with the iteration (vLLM blocks on
    // them), so they stretch this iteration's latency. Zero under
    // the conservative policy.
    double dt = IterationTime(batch, states_) + swap_time;
    now_ += dt;
    ++iterations_;
    total_batch_tokens_ += batch.TotalTokens();
    if (trace_) {
        trace_->Span(telemetry::EventKind::kIteration, result.start, dt,
                     telemetry::TraceRecorder::kEngineTrack,
                     batch.TotalTokens(),
                     static_cast<int64_t>(batch.decodes.size()));
    }

    // Apply prefill progress.
    for (const auto& p : batch.prefills) {
        RequestState& state = states_[static_cast<size_t>(p.req_index)];
        if (trace_) {
            trace_->Span(
                telemetry::EventKind::kPrefillChunk, result.start, dt,
                telemetry::TraceRecorder::RequestTrack(state.request.id),
                p.chunk_len, p.kv_len_after);
        }
        state.prefilled += p.chunk_len;
        prefill_tokens_pending_ -= p.chunk_len;
        prefill_tokens_processed_ += p.chunk_len;
        POD_ASSERT(state.prefilled <= state.PrefillTarget());
        if (state.PrefillDone()) {
            // The prompt's KV is fully on-device now: a caching
            // allocator promotes its blocks into the prefix cache
            // (no-op for cacheless policies).
            kv_->OnPrefillComplete(state);
            // The completing iteration emits one output token: the
            // first for a fresh prompt, the next for a request whose
            // context a recompute preemption restored.
            if (state.decoded == 0) {
                state.decoded = 1;
                state.first_token_time = now_;
            } else {
                state.decoded += 1;
                state.tbt.push_back(now_ - state.last_token_time);
            }
            decode_tokens_pending_ -= 1;
            decode_tokens_processed_ += 1;
            state.last_token_time = now_;
            if (state.decoded >= state.request.decode_tokens) {
                FinishRequest(state, result);
            }
        }
    }

    // Apply decode progress.
    for (int idx : batch.decodes) {
        RequestState& state = states_[static_cast<size_t>(idx)];
        state.decoded += 1;
        if (trace_) {
            trace_->Instant(
                telemetry::EventKind::kDecodeToken, now_,
                telemetry::TraceRecorder::RequestTrack(state.request.id),
                state.decoded);
        }
        decode_tokens_pending_ -= 1;
        decode_tokens_processed_ += 1;
        state.tbt.push_back(now_ - state.last_token_time);
        state.last_token_time = now_;
        if (state.decoded >= state.request.decode_tokens) {
            FinishRequest(state, result);
        }
    }

    // Maintain the finished-prefix index and the arrived mark.
    while (active_begin_ < states_.size() &&
           states_[active_begin_].Finished()) {
        ++active_begin_;
    }
    SyncArrivals();

    result.progressed = true;
    result.duration = dt;
    result.batch_tokens = batch.TotalTokens();
    result.kv_utilization = kv_->Utilization();
    return result;
}

double
ServingEngine::NextEventTime() const
{
    if (running_ > 0) return now_;
    if (preempted_now_ > 0) return now_;  // awaiting re-admission
    if (arrived_mark_ > unadmitted_head_) return now_;  // waiting work
    if (arrived_mark_ < unadmitted_.size()) {
        return states_[static_cast<size_t>(unadmitted_[arrived_mark_])]
            .request.arrival_time;
    }
    return std::numeric_limits<double>::infinity();
}

ReplicaSnapshot
ServingEngine::Snapshot() const
{
    POD_ASSERT(kv_ != nullptr);  // the constructor calls Reset()
    ReplicaSnapshot snap;
    snap.gpu_name = config_.gpu.name;
    snap.now = now_;
    snap.submitted = static_cast<int>(states_.size());
    snap.finished = static_cast<int>(finished_);
    snap.outstanding = snap.submitted - snap.finished;
    snap.waiting = static_cast<int>(arrived_mark_ - unadmitted_head_);
    snap.running = running_;
    snap.preempted = preempted_now_;
    snap.prefill_tokens_pending = prefill_tokens_pending_;
    snap.decode_tokens_pending = decode_tokens_pending_;
    snap.iterations = iterations_;
    snap.kv_utilization = kv_->Utilization();
    snap.kv_free_blocks = kv_->FreeBlocks();
    snap.kv_total_blocks = kv_->TotalBlocks();
    if (kv_->TotalBlocks() > 0) {
        snap.kv_pressure =
            snap.kv_utilization +
            static_cast<double>(pending_unadmitted_blocks_ +
                                pending_preempted_blocks_) /
                static_cast<double>(kv_->TotalBlocks());
    }
    snap.kv_watermark_headroom = kv_->WatermarkHeadroom();
    snap.preemptions_recompute = preemptions_recompute_;
    snap.preemptions_swap = preemptions_swap_;
    snap.swap_time_total = swap_time_total_;
    snap.attn_cache_entries = static_cast<long>(attn_cache_.size());
    snap.attn_cache_hits = attn_cache_hits_;
    snap.attn_cache_misses = attn_cache_misses_;
    snap.sim_fastpath_events = sim_fastpath_events_;
    snap.sim_fallback_events = sim_fallback_events_;
    snap.prefill_tokens_processed = prefill_tokens_processed_;
    snap.decode_tokens_processed = decode_tokens_processed_;
    if (const prefix::PrefixCacheStats* ps = kv_->PrefixStats()) {
        snap.prefix_hits = ps->hits;
        snap.prefix_misses = ps->misses;
        snap.prefix_hit_blocks = ps->hit_blocks;
        snap.prefix_evicted_blocks = ps->evicted_blocks;
        snap.prefix_cached_blocks = ps->cached_blocks;
        snap.prefix_shared_blocks = ps->shared_blocks;
        snap.prefix_tokens_saved = ps->prefill_tokens_saved;
    }
    return snap;
}

MetricsReport
ServingEngine::Report() const
{
    POD_CHECK_ARG(Done(), "Report() requires all requests finished");
    MetricsReport report =
        CollectMetrics(states_, now_, iterations_, total_batch_tokens_);
    report.system = scheduler_->Name();
    report.preemptions_recompute = preemptions_recompute_;
    report.preemptions_swap = preemptions_swap_;
    report.swap_time_total = swap_time_total_;
    report.sim_fastpath_events = sim_fastpath_events_;
    report.sim_fallback_events = sim_fallback_events_;
    report.prefill_tokens_processed = prefill_tokens_processed_;
    report.decode_tokens_processed = decode_tokens_processed_;
    if (const prefix::PrefixCacheStats* ps = kv_->PrefixStats()) {
        report.prefix_hits = ps->hits;
        report.prefix_misses = ps->misses;
        report.prefix_hit_blocks = ps->hit_blocks;
        report.prefix_evicted_blocks = ps->evicted_blocks;
        report.prefix_cached_blocks = ps->cached_blocks;
        report.prefix_shared_blocks = ps->shared_blocks;
        report.prefix_tokens_saved = ps->prefill_tokens_saved;
    }
    return report;
}

MetricsReport
ServingEngine::Run(std::vector<Request> requests)
{
    POD_CHECK_ARG(!requests.empty(), "need at least one request");
    std::sort(requests.begin(), requests.end(), ArrivalOrder);

    Reset();
    for (const Request& request : requests) Submit(request);
    while (!Done()) Step();
    return Report();
}

}  // namespace pod::serve
