/**
 * @file
 * Implementation of the numeric hybrid-batch attention driver.
 */
#include "attnref/hybrid_ref.h"

#include <cmath>

#include "attnref/attention_ref.h"
#include "common/logging.h"

namespace pod::attnref {

namespace {

/** Extract head h's d columns from a token-major multi-head matrix. */
Matrix
HeadSlice(const Matrix& x, int head, int head_dim)
{
    Matrix out(x.Rows(), static_cast<size_t>(head_dim));
    size_t off = static_cast<size_t>(head) * static_cast<size_t>(head_dim);
    for (size_t r = 0; r < x.Rows(); ++r) {
        for (int c = 0; c < head_dim; ++c) {
            out.At(r, static_cast<size_t>(c)) =
                x.At(r, off + static_cast<size_t>(c));
        }
    }
    return out;
}

/** Write head h's output back into the multi-head layout. */
void
ScatterHead(Matrix& dst, const Matrix& head_out, int head, int head_dim)
{
    size_t off = static_cast<size_t>(head) * static_cast<size_t>(head_dim);
    for (size_t r = 0; r < head_out.Rows(); ++r) {
        for (int c = 0; c < head_dim; ++c) {
            dst.At(r, off + static_cast<size_t>(c)) =
                head_out.At(r, static_cast<size_t>(c));
        }
    }
}

/** One (q-head, sequence) attention with the selected algorithm. */
Matrix
RunOneHead(const Matrix& q_head, const Matrix& k, const Matrix& v,
           int pos_offset, bool causal, float scale, RefMode mode,
           int tile_kv, int num_splits)
{
    switch (mode) {
      case RefMode::kNaive:
        return NaiveAttention(q_head, k, v, pos_offset, causal, scale);
      case RefMode::kFlash:
        return FlashAttentionTiled(q_head, k, v, pos_offset, causal, scale,
                                   /*tile_q=*/64, tile_kv);
      case RefMode::kFlashSplitKv: {
        int n = static_cast<int>(k.Rows());
        int splits = std::max(1, std::min(num_splits, n));
        std::vector<SplitPartial> partials;
        partials.reserve(static_cast<size_t>(splits));
        for (int s = 0; s < splits; ++s) {
            int begin = static_cast<int>(
                static_cast<long>(n) * s / splits);
            int end = static_cast<int>(
                static_cast<long>(n) * (s + 1) / splits);
            partials.push_back(FlashAttentionPartial(
                q_head, k, v, begin, end, pos_offset, causal, scale,
                tile_kv));
        }
        return MergeSplitPartials(partials);
      }
    }
    Panic("unknown RefMode");
}

}  // namespace

HybridRefResult
ComputeHybridAttention(const kernels::AttnShape& shape,
                       const PagedKvCache& cache, const Matrix& prefill_q,
                       int prefill_seq, const Matrix& decode_q,
                       const std::vector<int>& decode_seqs, RefMode mode,
                       int tile_kv, int num_splits)
{
    shape.Validate();
    POD_CHECK_ARG(cache.NumKvHeads() == shape.num_kv_heads,
                  "cache KV heads mismatch");
    POD_CHECK_ARG(cache.HeadDim() == shape.head_dim,
                  "cache head dim mismatch");
    POD_CHECK_ARG(decode_q.Rows() == decode_seqs.size(),
                  "one decode sequence per decode query row");
    size_t width = static_cast<size_t>(shape.num_q_heads) *
                   static_cast<size_t>(shape.head_dim);
    POD_CHECK_ARG(prefill_q.Rows() == 0 || prefill_q.Cols() == width,
                  "prefill queries must be q_heads x head_dim wide");
    POD_CHECK_ARG(decode_q.Rows() == 0 || decode_q.Cols() == width,
                  "decode queries must be q_heads x head_dim wide");

    const int group = shape.GroupSize();
    const float scale =
        1.0f / std::sqrt(static_cast<float>(shape.head_dim));

    HybridRefResult result;
    result.prefill_out = Matrix(prefill_q.Rows(), width);
    result.decode_out = Matrix(decode_q.Rows(), width);

    // ---- prefill chunk: causal against its own sequence ----
    if (prefill_q.Rows() > 0) {
        int kv_len = cache.SeqLen(prefill_seq);
        int chunk = static_cast<int>(prefill_q.Rows());
        POD_CHECK_ARG(kv_len >= chunk,
                      "prefill cache must include the chunk's own K/V");
        int pos_offset = kv_len - chunk;
        for (int h = 0; h < shape.num_q_heads; ++h) {
            int kv_head = h / group;
            Matrix k = cache.GatherK(prefill_seq, kv_head);
            Matrix v = cache.GatherV(prefill_seq, kv_head);
            Matrix q_head = HeadSlice(prefill_q, h, shape.head_dim);
            Matrix out = RunOneHead(q_head, k, v, pos_offset,
                                    /*causal=*/true, scale, mode, tile_kv,
                                    num_splits);
            ScatterHead(result.prefill_out, out, h, shape.head_dim);
        }
    }

    // ---- decodes: one query token against the full cache ----
    for (size_t r = 0; r < decode_q.Rows(); ++r) {
        int seq = decode_seqs[r];
        int kv_len = cache.SeqLen(seq);
        POD_CHECK_ARG(kv_len > 0, "decode sequence has no KV");
        Matrix q_row(1, static_cast<size_t>(shape.head_dim));
        for (int h = 0; h < shape.num_q_heads; ++h) {
            int kv_head = h / group;
            Matrix k = cache.GatherK(seq, kv_head);
            Matrix v = cache.GatherV(seq, kv_head);
            size_t off = static_cast<size_t>(h) *
                         static_cast<size_t>(shape.head_dim);
            for (int c = 0; c < shape.head_dim; ++c) {
                q_row.At(0, static_cast<size_t>(c)) =
                    decode_q.At(r, off + static_cast<size_t>(c));
            }
            // The decode token sits at position kv_len - 1, seeing the
            // whole cache.
            Matrix out = RunOneHead(q_row, k, v, kv_len - 1,
                                    /*causal=*/true, scale, mode, tile_kv,
                                    num_splits);
            for (int c = 0; c < shape.head_dim; ++c) {
                result.decode_out.At(r, off + static_cast<size_t>(c)) =
                    out.At(0, static_cast<size_t>(c));
            }
        }
    }
    return result;
}

}  // namespace pod::attnref
