/**
 * @file
 * Matrix implementation.
 */
#include "attnref/matrix.h"

#include <cmath>

#include "common/logging.h"

namespace pod::attnref {

void
Matrix::FillRandom(Rng& rng)
{
    for (float& v : data_) {
        v = static_cast<float>(rng.UniformReal(-1.0, 1.0));
    }
}

Matrix
Matrix::Slice(size_t begin, size_t end) const
{
    POD_CHECK_ARG(begin <= end && end <= rows_, "slice out of range");
    Matrix out(end - begin, cols_);
    for (size_t r = begin; r < end; ++r) {
        for (size_t c = 0; c < cols_; ++c) {
            out.At(r - begin, c) = At(r, c);
        }
    }
    return out;
}

double
Matrix::MaxAbsDiff(const Matrix& other) const
{
    POD_CHECK_ARG(rows_ == other.rows_ && cols_ == other.cols_,
                  "shape mismatch");
    double max_diff = 0.0;
    for (size_t i = 0; i < data_.size(); ++i) {
        double diff = std::fabs(static_cast<double>(data_[i]) -
                                static_cast<double>(other.data_[i]));
        if (diff > max_diff) max_diff = diff;
    }
    return max_diff;
}

}  // namespace pod::attnref
