/**
 * @file
 * Implementation of the paged KV cache.
 */
#include "attnref/paged_kv.h"

#include "common/logging.h"

namespace pod::attnref {

PagedKvCache::PagedKvCache(int block_size, int num_kv_heads, int head_dim)
    : block_size_(block_size),
      num_kv_heads_(num_kv_heads),
      head_dim_(head_dim)
{
    POD_CHECK_ARG(block_size >= 1, "block size must be >= 1");
    POD_CHECK_ARG(num_kv_heads >= 1, "need at least one KV head");
    POD_CHECK_ARG(head_dim >= 1, "head dim must be >= 1");
}

int
PagedKvCache::AddSequence()
{
    sequences_.push_back(Sequence{});
    return static_cast<int>(sequences_.size()) - 1;
}

void
PagedKvCache::AppendToken(int seq, const std::vector<float>& k,
                          const std::vector<float>& v)
{
    POD_CHECK_ARG(seq >= 0 && seq < static_cast<int>(sequences_.size()),
                  "unknown sequence");
    size_t token_elems =
        static_cast<size_t>(num_kv_heads_) * static_cast<size_t>(head_dim_);
    POD_CHECK_ARG(k.size() == token_elems && v.size() == token_elems,
                  "token K/V must be num_kv_heads x head_dim");

    Sequence& s = sequences_[static_cast<size_t>(seq)];
    if (s.length % block_size_ == 0) {
        // Current block full (or none yet): allocate a fresh block.
        Block block;
        block.k.assign(static_cast<size_t>(block_size_) * token_elems,
                       0.0f);
        block.v.assign(static_cast<size_t>(block_size_) * token_elems,
                       0.0f);
        pool_.push_back(std::move(block));
        s.blocks.push_back(static_cast<int>(pool_.size()) - 1);
        ++total_blocks_;
    }
    Block& block = pool_[static_cast<size_t>(s.blocks.back())];
    size_t slot = static_cast<size_t>(block.used);
    for (size_t i = 0; i < token_elems; ++i) {
        block.k[slot * token_elems + i] = k[i];
        block.v[slot * token_elems + i] = v[i];
    }
    block.used += 1;
    s.length += 1;
}

int
PagedKvCache::SeqLen(int seq) const
{
    POD_CHECK_ARG(seq >= 0 && seq < static_cast<int>(sequences_.size()),
                  "unknown sequence");
    return sequences_[static_cast<size_t>(seq)].length;
}

int
PagedKvCache::SeqBlocks(int seq) const
{
    POD_CHECK_ARG(seq >= 0 && seq < static_cast<int>(sequences_.size()),
                  "unknown sequence");
    return static_cast<int>(
        sequences_[static_cast<size_t>(seq)].blocks.size());
}

Matrix
PagedKvCache::Gather(int seq, int kv_head, bool keys) const
{
    POD_CHECK_ARG(seq >= 0 && seq < static_cast<int>(sequences_.size()),
                  "unknown sequence");
    POD_CHECK_ARG(kv_head >= 0 && kv_head < num_kv_heads_,
                  "kv head out of range");
    const Sequence& s = sequences_[static_cast<size_t>(seq)];
    Matrix out(static_cast<size_t>(s.length),
               static_cast<size_t>(head_dim_));
    size_t token_elems =
        static_cast<size_t>(num_kv_heads_) * static_cast<size_t>(head_dim_);
    size_t head_off =
        static_cast<size_t>(kv_head) * static_cast<size_t>(head_dim_);
    for (int t = 0; t < s.length; ++t) {
        const Block& block =
            pool_[static_cast<size_t>(s.blocks[static_cast<size_t>(
                t / block_size_)])];
        size_t slot = static_cast<size_t>(t % block_size_);
        const std::vector<float>& src = keys ? block.k : block.v;
        for (int c = 0; c < head_dim_; ++c) {
            out.At(static_cast<size_t>(t), static_cast<size_t>(c)) =
                src[slot * token_elems + head_off +
                    static_cast<size_t>(c)];
        }
    }
    return out;
}

Matrix
PagedKvCache::GatherK(int seq, int kv_head) const
{
    return Gather(seq, kv_head, true);
}

Matrix
PagedKvCache::GatherV(int seq, int kv_head) const
{
    return Gather(seq, kv_head, false);
}

}  // namespace pod::attnref
