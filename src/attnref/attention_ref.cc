/**
 * @file
 * Implementation of the single-head attention references.
 */
#include "attnref/attention_ref.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace pod::attnref {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/** Dot product of two d-length rows. */
float
Dot(const float* a, const float* b, size_t d)
{
    float acc = 0.0f;
    for (size_t i = 0; i < d; ++i) acc += a[i] * b[i];
    return acc;
}

/** Index of the last visible key for query row i (may be < 0). */
long
VisibleLimit(size_t row, int pos_offset, bool causal, size_t n)
{
    if (!causal) return static_cast<long>(n) - 1;
    long limit = static_cast<long>(pos_offset) + static_cast<long>(row);
    return std::min(limit, static_cast<long>(n) - 1);
}

}  // namespace

Matrix
NaiveAttention(const Matrix& q, const Matrix& k, const Matrix& v,
               int pos_offset, bool causal, float scale)
{
    POD_CHECK_ARG(q.Cols() == k.Cols() && k.Cols() == v.Cols(),
                  "head dimension mismatch");
    POD_CHECK_ARG(k.Rows() == v.Rows(), "K/V length mismatch");
    POD_CHECK_ARG(pos_offset >= 0, "position offset must be >= 0");

    const size_t m = q.Rows();
    const size_t d = q.Cols();
    Matrix out(m, d);
    std::vector<float> scores;

    for (size_t i = 0; i < m; ++i) {
        long limit = VisibleLimit(i, pos_offset, causal, k.Rows());
        if (limit < 0) continue;  // no visible keys: zero output row
        size_t n_vis = static_cast<size_t>(limit) + 1;
        scores.resize(n_vis);
        float max_score = kNegInf;
        for (size_t j = 0; j < n_vis; ++j) {
            scores[j] = Dot(q.Row(i), k.Row(j), d) * scale;
            max_score = std::max(max_score, scores[j]);
        }
        float denom = 0.0f;
        for (size_t j = 0; j < n_vis; ++j) {
            scores[j] = std::exp(scores[j] - max_score);
            denom += scores[j];
        }
        for (size_t j = 0; j < n_vis; ++j) {
            float w = scores[j] / denom;
            const float* vr = v.Row(j);
            float* orow = out.Row(i);
            for (size_t c = 0; c < d; ++c) orow[c] += w * vr[c];
        }
    }
    return out;
}

Matrix
FlashAttentionTiled(const Matrix& q, const Matrix& k, const Matrix& v,
                    int pos_offset, bool causal, float scale, int tile_q,
                    int tile_kv)
{
    POD_CHECK_ARG(tile_q >= 1 && tile_kv >= 1, "tiles must be >= 1");
    SplitPartial partial = FlashAttentionPartial(
        q, k, v, 0, static_cast<int>(k.Rows()), pos_offset, causal, scale,
        tile_kv);
    // A single full-range split merges to the exact result. tile_q
    // only affects the iteration order, which the partial handles
    // row-independently; it is accepted for interface parity with the
    // kernel geometry.
    (void)tile_q;
    return MergeSplitPartials({partial});
}

SplitPartial
FlashAttentionPartial(const Matrix& q, const Matrix& k, const Matrix& v,
                      int kv_begin, int kv_end, int pos_offset, bool causal,
                      float scale, int tile_kv)
{
    POD_CHECK_ARG(q.Cols() == k.Cols() && k.Cols() == v.Cols(),
                  "head dimension mismatch");
    POD_CHECK_ARG(k.Rows() == v.Rows(), "K/V length mismatch");
    POD_CHECK_ARG(0 <= kv_begin && kv_begin <= kv_end &&
                      kv_end <= static_cast<int>(k.Rows()),
                  "kv range out of bounds");
    POD_CHECK_ARG(tile_kv >= 1, "tile_kv must be >= 1");

    const size_t m = q.Rows();
    const size_t d = q.Cols();
    SplitPartial result;
    result.out = Matrix(m, d);
    result.lse.assign(m, kNegInf);

    // Online softmax state per query row.
    std::vector<float> run_max(m, kNegInf);
    std::vector<float> run_sum(m, 0.0f);
    Matrix acc(m, d);

    for (int tile_start = kv_begin; tile_start < kv_end;
         tile_start += tile_kv) {
        int tile_stop = std::min(tile_start + tile_kv, kv_end);
        for (size_t i = 0; i < m; ++i) {
            long limit = VisibleLimit(i, pos_offset, causal, k.Rows());
            if (limit < tile_start) continue;
            int stop = std::min(tile_stop, static_cast<int>(limit) + 1);

            // Tile-local max for this row.
            float tile_max = kNegInf;
            std::vector<float> s(static_cast<size_t>(stop - tile_start));
            for (int j = tile_start; j < stop; ++j) {
                float score = Dot(q.Row(i), k.Row(static_cast<size_t>(j)),
                                  d) *
                              scale;
                s[static_cast<size_t>(j - tile_start)] = score;
                tile_max = std::max(tile_max, score);
            }
            float new_max = std::max(run_max[i], tile_max);
            // Rescale the running accumulator and sum (the online
            // softmax correction FA applies when the max moves).
            float correction = run_max[i] == kNegInf
                                   ? 0.0f
                                   : std::exp(run_max[i] - new_max);
            run_sum[i] *= correction;
            float* acc_row = acc.Row(i);
            for (size_t c = 0; c < d; ++c) acc_row[c] *= correction;
            // Accumulate the tile.
            for (int j = tile_start; j < stop; ++j) {
                float w =
                    std::exp(s[static_cast<size_t>(j - tile_start)] -
                             new_max);
                run_sum[i] += w;
                const float* vr = v.Row(static_cast<size_t>(j));
                for (size_t c = 0; c < d; ++c) acc_row[c] += w * vr[c];
            }
            run_max[i] = new_max;
        }
    }

    for (size_t i = 0; i < m; ++i) {
        if (run_sum[i] > 0.0f) {
            float inv = 1.0f / run_sum[i];
            const float* acc_row = acc.Row(i);
            float* out_row = result.out.Row(i);
            for (size_t c = 0; c < d; ++c) out_row[c] = acc_row[c] * inv;
            result.lse[i] = run_max[i] + std::log(run_sum[i]);
        }
    }
    return result;
}

Matrix
MergeSplitPartials(const std::vector<SplitPartial>& partials)
{
    POD_CHECK_ARG(!partials.empty(), "need at least one split");
    const size_t m = partials[0].out.Rows();
    const size_t d = partials[0].out.Cols();
    for (const auto& p : partials) {
        POD_CHECK_ARG(p.out.Rows() == m && p.out.Cols() == d &&
                          p.lse.size() == m,
                      "split shape mismatch");
    }

    Matrix out(m, d);
    for (size_t i = 0; i < m; ++i) {
        // Global log-sum-exp across splits.
        float max_lse = kNegInf;
        for (const auto& p : partials) {
            max_lse = std::max(max_lse, p.lse[i]);
        }
        if (max_lse == kNegInf) continue;  // row saw no keys anywhere
        float total = 0.0f;
        for (const auto& p : partials) {
            if (p.lse[i] != kNegInf) {
                total += std::exp(p.lse[i] - max_lse);
            }
        }
        float lse_total = max_lse + std::log(total);
        float* out_row = out.Row(i);
        for (const auto& p : partials) {
            if (p.lse[i] == kNegInf) continue;
            float weight = std::exp(p.lse[i] - lse_total);
            const float* part_row = p.out.Row(i);
            for (size_t c = 0; c < d; ++c) {
                out_row[c] += weight * part_row[c];
            }
        }
    }
    return out;
}

}  // namespace pod::attnref
