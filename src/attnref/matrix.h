/**
 * @file
 * Minimal row-major float matrix used by the numeric reference
 * implementation of attention.
 */
#ifndef POD_ATTNREF_MATRIX_H
#define POD_ATTNREF_MATRIX_H

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace pod::attnref {

/** Dense row-major matrix of floats. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct zero-filled rows x cols. */
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {
    }

    size_t Rows() const { return rows_; }
    size_t Cols() const { return cols_; }

    /** Element access. */
    float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Raw row pointer. */
    float* Row(size_t r) { return data_.data() + r * cols_; }
    const float* Row(size_t r) const { return data_.data() + r * cols_; }

    /** Underlying storage. */
    std::vector<float>& Data() { return data_; }
    const std::vector<float>& Data() const { return data_; }

    /** Fill with uniform random values in [-1, 1). */
    void FillRandom(Rng& rng);

    /** Copy a row range [begin, end) into a new matrix. */
    Matrix Slice(size_t begin, size_t end) const;

    /** Largest absolute element difference against another matrix. */
    double MaxAbsDiff(const Matrix& other) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

}  // namespace pod::attnref

#endif  // POD_ATTNREF_MATRIX_H
