/**
 * @file
 * Single-head attention reference implementations.
 *
 * Three algorithmically distinct paths compute the same function:
 *
 *  1. NaiveAttention -- direct softmax(QK^T)V with a full score
 *     matrix; the ground truth.
 *  2. FlashAttentionTiled -- FA-2 style KV-tile iteration with online
 *     softmax rescaling (running max and running sum), never
 *     materializing the score matrix. This is the algorithm POD's
 *     prefill device function executes.
 *  3. Split-KV (FlashDecoding): partial attention per KV split with a
 *     log-sum-exp carry, merged exactly across splits. This is the
 *     decode device function plus its merge step.
 *
 * Causal masking follows chunked-prefill semantics: queries carry an
 * absolute position offset, so a chunk's token i attends the full
 * prior context plus the first i+1 chunk tokens (paper S2.1).
 */
#ifndef POD_ATTNREF_ATTENTION_REF_H
#define POD_ATTNREF_ATTENTION_REF_H

#include <vector>

#include "attnref/matrix.h"

namespace pod::attnref {

/** Partial attention result of one KV split (FlashDecoding). */
struct SplitPartial
{
    /** Un-normalized (softmax-weighted) output rows, scaled by the
     * split's local softmax. */
    Matrix out;

    /** Per-row log-sum-exp of the split's scores. */
    std::vector<float> lse;
};

/**
 * Ground-truth attention.
 *
 * @param q m x d queries whose absolute positions are
 *        pos_offset .. pos_offset+m-1.
 * @param k n x d keys at absolute positions 0..n-1.
 * @param v n x d values.
 * @param pos_offset absolute position of the first query row.
 * @param causal if true, query row i attends keys with position
 *        <= pos_offset + i.
 * @param scale score scale (typically 1/sqrt(d)).
 */
Matrix NaiveAttention(const Matrix& q, const Matrix& k, const Matrix& v,
                      int pos_offset, bool causal, float scale);

/**
 * FA-2 style tiled attention with online softmax.
 * Matches NaiveAttention to floating-point tolerance for any tile
 * sizes >= 1.
 */
Matrix FlashAttentionTiled(const Matrix& q, const Matrix& k,
                           const Matrix& v, int pos_offset, bool causal,
                           float scale, int tile_q, int tile_kv);

/**
 * Partial attention over the key range [kv_begin, kv_end) with a
 * log-sum-exp carry (one FlashDecoding split).
 */
SplitPartial FlashAttentionPartial(const Matrix& q, const Matrix& k,
                                   const Matrix& v, int kv_begin,
                                   int kv_end, int pos_offset, bool causal,
                                   float scale, int tile_kv);

/**
 * Exact merge of split partials (FlashDecoding reduction): combines
 * per-split outputs with their log-sum-exps.
 */
Matrix MergeSplitPartials(const std::vector<SplitPartial>& partials);

}  // namespace pod::attnref

#endif  // POD_ATTNREF_ATTENTION_REF_H
