/**
 * @file
 * Block-based (paged) KV cache storage, vLLM/PagedAttention style.
 *
 * Tokens of a sequence are stored in fixed-size blocks allocated from
 * a shared pool, so sequences grow without contiguous reservations.
 * The numeric hybrid-attention driver gathers per-head K/V matrices
 * from these blocks; the serving layer reuses the same block
 * accounting for admission control.
 */
#ifndef POD_ATTNREF_PAGED_KV_H
#define POD_ATTNREF_PAGED_KV_H

#include <cstdint>
#include <vector>

#include "attnref/matrix.h"

namespace pod::attnref {

/** Paged K/V storage for one attention layer. */
class PagedKvCache
{
  public:
    /**
     * @param block_size tokens per block.
     * @param num_kv_heads KV heads.
     * @param head_dim head dimension.
     */
    PagedKvCache(int block_size, int num_kv_heads, int head_dim);

    /** Register a new sequence; returns its id. */
    int AddSequence();

    /**
     * Append one token's K and V for every KV head.
     * @param seq sequence id.
     * @param k num_kv_heads x head_dim values, head-major.
     * @param v likewise.
     */
    void AppendToken(int seq, const std::vector<float>& k,
                     const std::vector<float>& v);

    /** Number of tokens stored for a sequence. */
    int SeqLen(int seq) const;

    /** Number of blocks allocated to a sequence. */
    int SeqBlocks(int seq) const;

    /** Total blocks allocated across all sequences. */
    int TotalBlocks() const { return total_blocks_; }

    /** Gather the keys of one (sequence, kv head) as an n x d matrix. */
    Matrix GatherK(int seq, int kv_head) const;

    /** Gather the values of one (sequence, kv head). */
    Matrix GatherV(int seq, int kv_head) const;

    int BlockSize() const { return block_size_; }
    int NumKvHeads() const { return num_kv_heads_; }
    int HeadDim() const { return head_dim_; }

  private:
    struct Block
    {
        /** block_size x (num_kv_heads x head_dim), token-major. */
        std::vector<float> k;
        std::vector<float> v;
        int used = 0;
    };

    struct Sequence
    {
        std::vector<int> blocks;
        int length = 0;
    };

    Matrix Gather(int seq, int kv_head, bool keys) const;

    int block_size_;
    int num_kv_heads_;
    int head_dim_;
    int total_blocks_ = 0;
    std::vector<Block> pool_;
    std::vector<Sequence> sequences_;
};

}  // namespace pod::attnref

#endif  // POD_ATTNREF_PAGED_KV_H
