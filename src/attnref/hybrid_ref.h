/**
 * @file
 * Numeric hybrid-batch attention: the functional counterpart of the
 * POD-Attention kernel.
 *
 * Computes exact multi-head GQA attention for a hybrid batch (one
 * chunked prefill + many decodes) over a paged KV cache, via three
 * interchangeable algorithms: the naive reference, flash-style tiling
 * (the prefill device function), and split-KV with an exact merge
 * (the decode device function). All three agree to floating-point
 * tolerance -- the correctness property the test suite enforces.
 */
#ifndef POD_ATTNREF_HYBRID_REF_H
#define POD_ATTNREF_HYBRID_REF_H

#include <vector>

#include "attnref/matrix.h"
#include "attnref/paged_kv.h"
#include "kernels/attn_types.h"

namespace pod::attnref {

/** Algorithm used for the numeric computation. */
enum class RefMode : int {
    kNaive = 0,        ///< Full score matrix (ground truth).
    kFlash = 1,        ///< Tiled online-softmax (FA-2 structure).
    kFlashSplitKv = 2, ///< Split-KV partials + LSE merge (FlashDecoding).
};

/** Outputs of a hybrid batch, token-major, heads concatenated. */
struct HybridRefResult
{
    /** chunk_len x (q_heads * head_dim). */
    Matrix prefill_out;

    /** decode_batch x (q_heads * head_dim). */
    Matrix decode_out;
};

/**
 * Compute hybrid-batch attention numerically.
 *
 * @param shape head geometry (GQA mapping: q head h reads kv head
 *        h / group).
 * @param cache paged KV cache already containing every sequence's
 *        tokens (including the prefill chunk's own K/V).
 * @param prefill_q chunk_len x (q_heads*d) queries of the chunk; may
 *        be empty (0 rows) for decode-only batches.
 * @param prefill_seq cache sequence of the prefill request (ignored
 *        if prefill_q is empty). The chunk occupies the last
 *        chunk_len positions of the sequence.
 * @param decode_q decode_batch x (q_heads*d), one query row per
 *        decode request; may be empty.
 * @param decode_seqs cache sequence per decode request; each query
 *        attends that sequence's full cache.
 * @param mode algorithm.
 * @param tile_kv KV tile for the flash modes.
 * @param num_splits KV splits for kFlashSplitKv.
 */
HybridRefResult ComputeHybridAttention(
    const kernels::AttnShape& shape, const PagedKvCache& cache,
    const Matrix& prefill_q, int prefill_seq, const Matrix& decode_q,
    const std::vector<int>& decode_seqs, RefMode mode, int tile_kv = 64,
    int num_splits = 4);

}  // namespace pod::attnref

#endif  // POD_ATTNREF_HYBRID_REF_H
