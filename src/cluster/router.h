/**
 * @file
 * Pluggable request-routing policies for the cluster serving layer.
 *
 * A Router picks the replica that will serve each request at its
 * arrival instant, given point-in-time ReplicaSnapshots of every
 * replica's queue and KV occupancy (docs/DESIGN.md S8). Routers are
 * deterministic: ties always break toward the lowest replica index,
 * so cluster runs are reproducible bit-for-bit given a seed.
 */
#ifndef POD_CLUSTER_ROUTER_H
#define POD_CLUSTER_ROUTER_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "serve/engine.h"
#include "serve/request.h"

namespace pod::cluster {

/** Routing-policy interface. */
class Router
{
  public:
    virtual ~Router() = default;

    /**
     * Choose the replica for one arriving request.
     * @param request the arriving request.
     * @param replicas one snapshot per replica, indexed by replica id.
     * @return replica index in [0, replicas.size()).
     */
    virtual int Route(const serve::Request& request,
                      const std::vector<serve::ReplicaSnapshot>&
                          replicas) = 0;

    /**
     * Clear internal state (cursors, counters). Called by
     * ClusterEngine::Run before each simulation so repeated runs of
     * one trace stay bit-identical.
     */
    virtual void Reset() {}

    /** Policy name for reports. */
    virtual std::string Name() const = 0;
};

/** Cycles through replicas in submission order, ignoring load. */
class RoundRobinRouter : public Router
{
  public:
    int Route(const serve::Request& request,
              const std::vector<serve::ReplicaSnapshot>& replicas)
        override;

    void Reset() override { next_ = 0; }

    std::string Name() const override { return "round-robin"; }

  private:
    size_t next_ = 0;
};

/**
 * Picks the replica with the fewest unfinished routed requests
 * (classic least-outstanding-requests load balancing).
 */
class LeastOutstandingRouter : public Router
{
  public:
    int Route(const serve::Request& request,
              const std::vector<serve::ReplicaSnapshot>& replicas)
        override;

    std::string Name() const override { return "least-outstanding"; }
};

/**
 * Picks the replica whose KV pool is least pressured: reserved blocks
 * plus the reservations its queued-but-unadmitted requests will need,
 * normalized by pool size (ReplicaSnapshot::kv_pressure). Because a
 * request's KV reservation is proportional to its prompt + output
 * length, this is token-weighted least-work-left routing — it sees
 * through the heavy-tailed prompt-length distribution that fools
 * count-based policies.
 */
class LeastKvPressureRouter : public Router
{
  public:
    int Route(const serve::Request& request,
              const std::vector<serve::ReplicaSnapshot>& replicas)
        override;

    std::string Name() const override { return "least-kv"; }
};

/**
 * Prefill/decode-affinity routing: long-prompt requests go to the
 * replica with the least outstanding decode work (a long chunked
 * prefill behind many active decodes inflates TTFT, and its chunks
 * steal every iteration's token budget from those decodes); short
 * requests fall back to least-outstanding.
 */
class PrefillAwareRouter : public Router
{
  public:
    /**
     * @param long_prompt_threshold prompts at or above this many
     *        tokens are routed by decode-load instead of queue depth.
     */
    explicit PrefillAwareRouter(int long_prompt_threshold = 8192);

    int Route(const serve::Request& request,
              const std::vector<serve::ReplicaSnapshot>& replicas)
        override;

    std::string Name() const override { return "prefill-aware"; }

  private:
    int long_prompt_threshold_;
};

/**
 * Preemption-pressure routing for fleets running the watermark KV
 * allocator: avoid replicas that are actively thrashing (requests
 * currently evicted and awaiting re-admission), then prefer the
 * replica with the most free-pool headroom above its admission
 * watermark — the direct predictor of whether this request admits
 * without displacing running work. Under the conservative allocator
 * no replica ever preempts, so the policy degrades to
 * most-watermark-headroom (≈ least KV utilization).
 */
class PreemptionAwareRouter : public Router
{
  public:
    int Route(const serve::Request& request,
              const std::vector<serve::ReplicaSnapshot>& replicas)
        override;

    std::string Name() const override { return "preemption-aware"; }
};

/**
 * Prefix-affinity routing for fleets running the prefix cache
 * (docs/DESIGN.md S2.6): steer a request to the replica already
 * holding the longest prefix of its prompt, so shared system prompts
 * and session turns keep hitting one replica's cache instead of
 * re-prefilling on whichever replica is idlest. The router tracks,
 * per replica, the block-hash chains of the prompts it routed there
 * — a model of what each replica's cache holds that needs no feedback
 * channel from the engines. Requests with opaque prompts, and prompts
 * matching nothing anywhere, fall back to least-KV-pressure; among
 * equal matches, lower KV pressure wins.
 */
class PrefixAffinityRouter : public Router
{
  public:
    /** @param block_size must equal the engines' kv_block_size so
     *        the router's hash chains line up with the caches'. */
    explicit PrefixAffinityRouter(int block_size = 16);

    int Route(const serve::Request& request,
              const std::vector<serve::ReplicaSnapshot>& replicas)
        override;

    void Reset() override { routed_.clear(); }

    std::string Name() const override { return "prefix-affinity"; }

  private:
    int block_size_;

    /** Per-replica set of block hashes ever routed there. Chained
     * hashes make sequential membership a prefix-length probe. */
    std::vector<std::unordered_set<uint64_t>> routed_;
};

/**
 * Build a router by policy name: "round-robin", "least-outstanding",
 * "least-kv", "prefill-aware", "preemption-aware" or
 * "prefix-affinity". Fatal on unknown names.
 */
std::unique_ptr<Router> MakeRouter(const std::string& name);

/** All policy names accepted by MakeRouter. */
std::vector<std::string> RouterNames();

}  // namespace pod::cluster

#endif  // POD_CLUSTER_ROUTER_H
