/**
 * @file
 * Fleet-level serving metrics: per-replica and aggregate latency /
 * throughput reports, load-imbalance coefficients and per-replica KV
 * utilization, layered on serve/metrics.* (docs/DESIGN.md S8).
 */
#ifndef POD_CLUSTER_CLUSTER_METRICS_H
#define POD_CLUSTER_CLUSTER_METRICS_H

#include <string>
#include <vector>

#include "serve/metrics.h"

namespace pod::cluster {

/** Per-replica utilization accumulated while the cluster ran. */
struct ReplicaUtilization
{
    /** Peak KV pool utilization observed after any iteration. */
    double kv_peak = 0.0;

    /** Mean KV pool utilization over the replica's iterations. */
    double kv_mean = 0.0;

    /** Total time the replica spent executing iterations (s). */
    double busy_time = 0.0;

    /** Requests routed to this replica. */
    int requests_routed = 0;

    /** Tokens the replica processed across all iterations. */
    double tokens_processed = 0.0;

    // Attention memo-cache statistics (docs/DESIGN.md S5.4): each
    // replica owns its cache, so per-replica hit rates show how much
    // of the fleet's iteration costing was memoized vs simulated.
    // `entries` is a gauge (cache size after the run; the cache
    // survives Reset()); hits/misses count only this Run()'s lookups.
    long attn_cache_entries = 0;
    long attn_cache_hits = 0;
    long attn_cache_misses = 0;

    // Sim-core telemetry (docs/DESIGN.md S3.2): events this Run()'s
    // attention simulations handled in the closed-form analytic core
    // vs the stepwise oracle (fallbacks or ExactOracle replicas).
    long sim_fastpath_events = 0;
    long sim_fallback_events = 0;

    /** Cache hits / (hits + misses); 0 when no lookups happened. */
    double AttnCacheHitRate() const;
};

/** Aggregate report of one cluster serving run. */
struct ClusterMetricsReport
{
    std::string router = "router";
    std::string workload = "workload";
    int num_replicas = 0;

    /**
     * Fleet-wide metrics over every request: TTFT/TBT/latency samples
     * pooled across replicas, requests_per_minute over the fleet
     * makespan (the time the last replica finished).
     */
    serve::MetricsReport fleet;

    /** Per-replica reports, indexed by replica id. */
    std::vector<serve::MetricsReport> per_replica;

    /** Per-replica utilization, indexed by replica id. */
    std::vector<ReplicaUtilization> utilization;

    /**
     * Load-imbalance coefficient: the coefficient of variation
     * (stddev / mean) of per-replica routed-request counts. 0 means a
     * perfectly even split.
     */
    double request_imbalance_cv = 0.0;

    /**
     * Coefficient of variation of per-replica processed-token counts
     * — the imbalance measure that matters under heavy-tailed prompt
     * lengths, where request counts can balance while token load
     * does not.
     */
    double token_imbalance_cv = 0.0;

    // Fleet-wide attention memo-cache rollup (sums of the per-replica
    // counters in `utilization`).
    long attn_cache_entries = 0;
    long attn_cache_hits = 0;
    long attn_cache_misses = 0;

    // Fleet-wide sim-core rollup (sums of the per-replica counters in
    // `utilization`).
    long sim_fastpath_events = 0;
    long sim_fallback_events = 0;

    // Fleet-wide request-lifecycle rollup (sums of the per-replica
    // MetricsReport counters; docs/DESIGN.md S2). Nonzero only when
    // replicas run the watermark KV allocator.
    long preemptions = 0;
    long preemptions_recompute = 0;
    long preemptions_swap = 0;
    double swap_time_total = 0.0;

    // Fleet-wide prefix-cache and processed-token rollup (sums of
    // the per-replica MetricsReport counters; docs/DESIGN.md S2.6).
    // The prefix_* counters stay zero unless replicas enable
    // ServingConfig::prefix_cache_enabled.
    long prefix_hits = 0;
    long prefix_misses = 0;
    long prefix_hit_blocks = 0;
    long prefix_evicted_blocks = 0;
    long prefix_cached_blocks = 0;
    long prefix_shared_blocks = 0;
    long prefix_tokens_saved = 0;
    long prefill_tokens_processed = 0;
    long decode_tokens_processed = 0;

    /** Fleet cache hits / (hits + misses); 0 when no lookups. */
    double AttnCacheHitRate() const;

    /** Fleet prefix-cache hits / (hits + misses); 0 when no
     * hashable admissions happened. */
    double PrefixHitRate() const;
};

/**
 * Coefficient of variation (population stddev / mean) of a sample
 * set; 0 for empty input or zero mean.
 */
double CoefficientOfVariation(const std::vector<double>& values);

/**
 * Publish a cluster report into a metric registry under `prefix`
 * (default "cluster."): the fleet rollup under `<prefix>fleet.`, each
 * replica's report under `<prefix>replica<r>.` plus its utilization
 * gauges, and the imbalance / cache / preemption rollups at the top
 * level. Names follow docs/OBSERVABILITY.md; enumeration via
 * MetricRegistry::Rows() is name-sorted and deterministic.
 */
void FillRegistry(const ClusterMetricsReport& report,
                  telemetry::MetricRegistry& registry,
                  const std::string& prefix = "cluster.");

}  // namespace pod::cluster

#endif  // POD_CLUSTER_CLUSTER_METRICS_H
