/**
 * @file
 * Implementation of fleet-level metric helpers.
 */
#include "cluster/cluster_metrics.h"

#include "common/stats.h"

namespace pod::cluster {

double
CoefficientOfVariation(const std::vector<double>& values)
{
    SampleStats stats;
    stats.AddAll(values);
    double mean = stats.Mean();
    if (mean == 0.0) return 0.0;
    return stats.Stddev() / mean;
}

}  // namespace pod::cluster
