/**
 * @file
 * Implementation of fleet-level metric helpers.
 */
#include "cluster/cluster_metrics.h"

#include "common/stats.h"

namespace pod::cluster {

namespace {

double
HitRate(long hits, long misses)
{
    long lookups = hits + misses;
    if (lookups <= 0) return 0.0;
    return static_cast<double>(hits) / static_cast<double>(lookups);
}

}  // namespace

double
ReplicaUtilization::AttnCacheHitRate() const
{
    return HitRate(attn_cache_hits, attn_cache_misses);
}

double
ClusterMetricsReport::AttnCacheHitRate() const
{
    return HitRate(attn_cache_hits, attn_cache_misses);
}

double
CoefficientOfVariation(const std::vector<double>& values)
{
    SampleStats stats;
    stats.AddAll(values);
    double mean = stats.Mean();
    if (mean == 0.0) return 0.0;
    return stats.Stddev() / mean;
}

}  // namespace pod::cluster
