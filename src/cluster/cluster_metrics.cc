/**
 * @file
 * Implementation of fleet-level metric helpers.
 */
#include "cluster/cluster_metrics.h"

#include "common/stats.h"

namespace pod::cluster {

namespace {

double
HitRate(long hits, long misses)
{
    long lookups = hits + misses;
    if (lookups <= 0) return 0.0;
    return static_cast<double>(hits) / static_cast<double>(lookups);
}

}  // namespace

double
ReplicaUtilization::AttnCacheHitRate() const
{
    return HitRate(attn_cache_hits, attn_cache_misses);
}

double
ClusterMetricsReport::AttnCacheHitRate() const
{
    return HitRate(attn_cache_hits, attn_cache_misses);
}

double
ClusterMetricsReport::PrefixHitRate() const
{
    return HitRate(prefix_hits, prefix_misses);
}

double
CoefficientOfVariation(const std::vector<double>& values)
{
    SampleStats stats;
    stats.AddAll(values);
    double mean = stats.Mean();
    if (mean == 0.0) return 0.0;
    return stats.Stddev() / mean;
}

void
FillRegistry(const ClusterMetricsReport& report,
             telemetry::MetricRegistry& registry,
             const std::string& prefix)
{
    registry.AddCounter(prefix + "replicas", report.num_replicas);
    registry.SetGauge(prefix + "imbalance.requests_cv",
                      report.request_imbalance_cv);
    registry.SetGauge(prefix + "imbalance.tokens_cv",
                      report.token_imbalance_cv);
    registry.AddCounter(prefix + "attn_cache.entries",
                        report.attn_cache_entries);
    registry.AddCounter(prefix + "attn_cache.hits",
                        report.attn_cache_hits);
    registry.AddCounter(prefix + "attn_cache.misses",
                        report.attn_cache_misses);
    registry.SetGauge(prefix + "attn_cache.hit_rate",
                      report.AttnCacheHitRate());
    registry.AddCounter(prefix + "sim_core.fastpath_events",
                        report.sim_fastpath_events);
    registry.AddCounter(prefix + "sim_core.fallback_events",
                        report.sim_fallback_events);
    registry.AddCounter(prefix + "preempt.total", report.preemptions);
    registry.AddCounter(prefix + "preempt.recompute",
                        report.preemptions_recompute);
    registry.AddCounter(prefix + "preempt.swap",
                        report.preemptions_swap);
    registry.SetGauge(prefix + "swap.total_seconds",
                      report.swap_time_total);
    registry.AddCounter(prefix + "kv_prefix.hits", report.prefix_hits);
    registry.AddCounter(prefix + "kv_prefix.misses",
                        report.prefix_misses);
    registry.AddCounter(prefix + "kv_prefix.hit_blocks",
                        report.prefix_hit_blocks);
    registry.AddCounter(prefix + "kv_prefix.evicted_blocks",
                        report.prefix_evicted_blocks);
    registry.AddCounter(prefix + "kv_prefix.tokens_saved",
                        report.prefix_tokens_saved);
    registry.SetGauge(prefix + "kv_prefix.cached_blocks",
                      static_cast<double>(report.prefix_cached_blocks));
    registry.SetGauge(prefix + "kv_prefix.shared_blocks",
                      static_cast<double>(report.prefix_shared_blocks));
    registry.SetGauge(prefix + "kv_prefix.hit_rate",
                      report.PrefixHitRate());
    registry.AddCounter(prefix + "tokens.prefill_processed",
                        report.prefill_tokens_processed);
    registry.AddCounter(prefix + "tokens.decode_processed",
                        report.decode_tokens_processed);

    serve::FillRegistry(report.fleet, registry, prefix + "fleet.");

    for (size_t r = 0; r < report.per_replica.size(); ++r) {
        const std::string rp =
            prefix + "replica" + std::to_string(r) + ".";
        serve::FillRegistry(report.per_replica[r], registry, rp);
        if (r < report.utilization.size()) {
            const ReplicaUtilization& u = report.utilization[r];
            registry.SetGauge(rp + "kv.peak_utilization", u.kv_peak);
            registry.SetGauge(rp + "kv.mean_utilization", u.kv_mean);
            registry.SetGauge(rp + "busy_seconds", u.busy_time);
            registry.AddCounter(rp + "routed", u.requests_routed);
            registry.SetGauge(rp + "tokens_processed",
                              u.tokens_processed);
            registry.SetGauge(rp + "attn_cache.hit_rate",
                              u.AttnCacheHitRate());
        }
    }
}

}  // namespace pod::cluster
