/**
 * @file
 * Data-parallel cluster serving: N replica ServingEngines advanced
 * over one shared arrival stream, with arriving requests assigned to
 * replicas by a pluggable Router (docs/DESIGN.md S8).
 *
 * Each replica is a full ServingEngine — its own scheduler, KV
 * manager and attention memo cache — so fleets may mix GPU specs,
 * tensor-parallel degrees and scheduler policies freely.
 *
 * Execution is phase-structured (docs/DESIGN.md S8): replicas only
 * interact at routing events, so between consecutive arrivals every
 * replica's Step()s are independent and are advanced on a persistent
 * worker pool (common/thread_pool.h) behind a deterministic barrier
 * — conservative time-window parallel discrete-event simulation.
 * Results are bit-identical to the serial loop at every thread
 * count; tests/cluster/parallel_regression_test.cc and the
 * randomized equivalence stress test pin that claim.
 */
#ifndef POD_CLUSTER_CLUSTER_ENGINE_H
#define POD_CLUSTER_CLUSTER_ENGINE_H

#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "cluster/cluster_metrics.h"
#include "cluster/router.h"
#include "common/rng.h"
#include "common/telemetry/profiler.h"
#include "common/telemetry/trace.h"
#include "common/thread_pool.h"
#include "serve/engine.h"

namespace pod::cluster {

/**
 * How the parallel-advance phase schedules replica work across pool
 * threads (docs/DESIGN.md S8.4). Scheduling only: both modes produce
 * bit-identical results at every thread count — the mode changes
 * which thread runs which part of a replica's window, never the order
 * of any replica's events.
 */
enum class AdvanceMode
{
    /**
     * PR 6 baseline: one indivisible task per replica, claimed
     * dynamically in index order. A fat replica claimed last leaves
     * the other threads idling at the barrier.
     */
    kSingleShot,

    /**
     * Each replica's window is split into bounded event-count slices
     * executed from per-thread deques, seeded fattest-first
     * (longest-processing-time-first on the pending-token estimate)
     * with idle threads stealing queued work.
     */
    kWorkStealing,
};

/** Fleet composition: one ServingConfig per replica. */
struct ClusterConfig
{
    std::vector<serve::ServingConfig> replicas;

    /**
     * Cluster-level seed. Every replica-scoped RNG stream is derived
     * from this deterministically by replica index (see
     * ClusterEngine::ReplicaRng), never from thread identity, so
     * stochastic policies stay reproducible under parallel execution.
     */
    uint64_t seed = 0x9E3779B97F4A7C15ull;

    /** Advance-phase scheduling policy (single-threaded engines run
     * the plain serial loop regardless). */
    AdvanceMode advance_mode = AdvanceMode::kWorkStealing;

    /**
     * Max Step() calls per work-stealing slice; <= 0 means unbounded
     * (a replica's whole window is one slice). Granularity knob for
     * scheduling/preemption only — never affects results.
     */
    int advance_slice_events = 64;

    /** N identical replicas of one base config. */
    static ClusterConfig Homogeneous(const serve::ServingConfig& base,
                                     int num_replicas);
};

/**
 * Builds the scheduler for one replica (each replica needs its own
 * instance; schedulers are stateless today but own their knobs).
 */
using SchedulerFactory =
    std::function<std::unique_ptr<serve::Scheduler>(int replica_index)>;

/**
 * Owns the replica engines and simulates the fleet.
 *
 * The run loop is organized as three phases per arrival
 * (docs/DESIGN.md S8):
 *
 *  1. *Plan arrivals*: the next trace arrival defines the time
 *     horizon T (+inf once the trace is drained).
 *  2. *Parallel advance*: every replica whose NextEventTime() is
 *     strictly before T is advanced Step() by Step() up to T on the
 *     worker pool — either as one task per replica
 *     (AdvanceMode::kSingleShot) or as bounded event-count slices on
 *     work-stealing deques seeded fattest-first
 *     (AdvanceMode::kWorkStealing, the default; docs/DESIGN.md S8.4).
 *     Replicas never read each other's state, so any thread schedule
 *     produces the same per-replica result; metrics fold into
 *     per-replica buffers, so no write is shared either.
 *  3. *Barrier route*: after the pool barrier, every replica's
 *     NextEventTime() is >= T — exactly the serial loop's routing
 *     condition — so the router sees the same ReplicaSnapshots the
 *     serial loop would and the arrival is routed identically.
 *
 * Arrivals are always routed before any replica *forms a batch* they
 * could have joined (iterations are non-preemptive, so an arrival
 * landing mid-iteration could not have joined it anyway). Snapshots
 * are end-of-last-iteration views: for an arrival that lands inside
 * another replica's in-flight iteration, that replica's snapshot can
 * lead the arrival instant by up to one iteration (~tens of ms) —
 * the standard iteration-level simplification, mirroring a router
 * that polls replica state at batch boundaries.
 *
 * With num_threads == 1 the pool runs inline and the loop *is* the
 * serial discrete-event loop, just phase-factored.
 */
class ClusterEngine
{
  public:
    /**
     * @param config fleet composition (>= 1 replica).
     * @param make_scheduler called once per replica index.
     * @param router routing policy (consulted once per request).
     * @param num_threads executing threads for the parallel-advance
     *        phase; 1 (default) is the serial loop, 0 means all
     *        hardware threads. Thread count never changes results,
     *        only wall-clock time.
     */
    ClusterEngine(ClusterConfig config, SchedulerFactory make_scheduler,
                  std::unique_ptr<Router> router, int num_threads = 1);

    /**
     * Simulate all requests to completion across the fleet.
     * Requests are sorted by arrival internally.
     */
    ClusterMetricsReport Run(std::vector<serve::Request> requests);

    int NumReplicas() const
    {
        return static_cast<int>(replicas_.size());
    }

    /** Executing threads used by the parallel-advance phase. */
    int NumThreads() const { return pool_.NumThreads(); }

    const serve::ServingEngine& Replica(int index) const;

    const Router& RouterPolicy() const { return *router_; }

    /**
     * The replica-scoped RNG stream (docs/DESIGN.md S8). This is the
     * only sanctioned randomness source for per-replica policy code
     * under parallel execution: each stream is owned by exactly one
     * replica (so one worker thread at a time), and Run() reseeds all
     * streams serially in replica-index order from
     * ClusterConfig::seed before the first phase — never from the
     * thread schedule. Routers run in the serial barrier-route phase
     * and must not draw from these.
     */
    Rng& ReplicaRng(int index);

    // ---- observability (docs/OBSERVABILITY.md) ----

    /**
     * Allocate per-replica sim-time trace recorders (pid 0 = the
     * router, pid r+1 = replica r) and attach them to the engines.
     * Each recorder is written only by the worker advancing its
     * replica, so tracing adds no synchronization; buffers are cleared
     * at the start of every Run(). Idempotent.
     */
    void EnableTracing(size_t reserve_events = 4096);

    bool TracingEnabled() const { return !recorders_.empty(); }

    /**
     * Merge all recorders into one Chrome trace-event JSON document.
     * Deterministic: identical bytes at every thread count (the trace
     * is a function of the simulated scenario alone).
     */
    void WriteChromeTrace(std::ostream& out) const;

    /** Recorders (index 0 = router, r+1 = replica r); empty unless
     * EnableTracing() was called. */
    const std::vector<telemetry::TraceRecorder>& Recorders() const
    {
        return recorders_;
    }

    /**
     * Toggle wall-clock phase/thread profiling of the run loop (host
     * time; see common/telemetry/profiler.h — kept out of the
     * sim-time trace). Off by default: no clock reads on the hot path.
     */
    void EnableProfiling(bool on);

    /** Profile of the most recent Run() (empty unless enabled). */
    const telemetry::ClusterProfile& Profile() const
    {
        return profile_;
    }

  private:
    /** Per-replica metric accumulation, private to one worker during
     * the parallel-advance phase and folded into the report after the
     * final barrier. Padded so neighbouring replicas' buffers never
     * share a cache line. */
    struct alignas(64) ReplicaAccum
    {
        double busy_time = 0.0;
        double tokens_processed = 0.0;
        double kv_peak = 0.0;
        double kv_util_sum = 0.0;
        long kv_util_samples = 0;
        int requests_routed = 0;
    };

    /**
     * Phase 2: advance one replica toward (strictly before) the
     * horizon, folding step results into its accumulator; stops early
     * after `max_events` Step() calls when max_events > 0. Returns
     * true when the replica reached the horizon (false = more slices
     * needed). The slice boundary carries no state — the loop resumes
     * exactly where it stopped — so slicing is invisible to results.
     */
    bool AdvanceReplica(size_t r, double horizon, long max_events,
                        ReplicaAccum& accum);

    uint64_t seed_;
    std::vector<serve::ServingEngine> replicas_;
    std::unique_ptr<Router> router_;
    std::vector<Rng> replica_rngs_;
    ThreadPool pool_;
    AdvanceMode advance_mode_;
    long advance_slice_events_;
    std::vector<ThreadPool::SeededTask> seed_scratch_;

    /** [0] = router recorder, [r+1] = replica r's recorder. Sized
     * once by EnableTracing(); engines hold stable pointers in. */
    std::vector<telemetry::TraceRecorder> recorders_;

    bool profiling_ = false;
    telemetry::ClusterProfile profile_;
};

}  // namespace pod::cluster

#endif  // POD_CLUSTER_CLUSTER_ENGINE_H
