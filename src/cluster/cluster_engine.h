/**
 * @file
 * Data-parallel cluster serving: N replica ServingEngines advanced in
 * lock-step over one shared arrival stream by a small discrete-event
 * loop, with arriving requests assigned to replicas by a pluggable
 * Router (docs/DESIGN.md S8).
 *
 * Each replica is a full ServingEngine — its own scheduler, KV
 * manager and attention memo cache — so fleets may mix GPU specs,
 * tensor-parallel degrees and scheduler policies freely.
 */
#ifndef POD_CLUSTER_CLUSTER_ENGINE_H
#define POD_CLUSTER_CLUSTER_ENGINE_H

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster_metrics.h"
#include "cluster/router.h"
#include "serve/engine.h"

namespace pod::cluster {

/** Fleet composition: one ServingConfig per replica. */
struct ClusterConfig
{
    std::vector<serve::ServingConfig> replicas;

    /** N identical replicas of one base config. */
    static ClusterConfig Homogeneous(const serve::ServingConfig& base,
                                     int num_replicas);
};

/**
 * Builds the scheduler for one replica (each replica needs its own
 * instance; schedulers are stateless today but own their knobs).
 */
using SchedulerFactory =
    std::function<std::unique_ptr<serve::Scheduler>(int replica_index)>;

/**
 * Owns the replica engines and simulates the fleet.
 *
 * The event loop maintains one clock per replica (the time its last
 * iteration finished) and repeatedly services the earliest event:
 * either the next trace arrival — routed to a replica chosen from
 * fresh ReplicaSnapshots — or a step of the replica whose next
 * actionable instant is earliest. Arrivals are always routed before
 * any replica *forms a batch* they could have joined (iterations are
 * non-preemptive, so an arrival landing mid-iteration could not have
 * joined it anyway). Snapshots are end-of-last-iteration views: for
 * an arrival that lands inside another replica's in-flight
 * iteration, that replica's snapshot can lead the arrival instant by
 * up to one iteration (~tens of ms) — the standard iteration-level
 * simplification, mirroring a router that polls replica state at
 * batch boundaries.
 */
class ClusterEngine
{
  public:
    /**
     * @param config fleet composition (>= 1 replica).
     * @param make_scheduler called once per replica index.
     * @param router routing policy (consulted once per request).
     */
    ClusterEngine(ClusterConfig config, SchedulerFactory make_scheduler,
                  std::unique_ptr<Router> router);

    /**
     * Simulate all requests to completion across the fleet.
     * Requests are sorted by arrival internally.
     */
    ClusterMetricsReport Run(std::vector<serve::Request> requests);

    int NumReplicas() const
    {
        return static_cast<int>(replicas_.size());
    }

    const serve::ServingEngine& Replica(int index) const;

    const Router& RouterPolicy() const { return *router_; }

  private:
    std::vector<serve::ServingEngine> replicas_;
    std::unique_ptr<Router> router_;
};

}  // namespace pod::cluster

#endif  // POD_CLUSTER_CLUSTER_ENGINE_H
