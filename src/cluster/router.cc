/**
 * @file
 * Implementation of the routing policies.
 */
#include "cluster/router.h"

#include <utility>

#include "common/logging.h"

namespace pod::cluster {

namespace {

/**
 * Index of the replica minimizing a (primary, secondary) score pair
 * lexicographically, lowest index on remaining ties. The secondary
 * key keeps policies sensible when the primary signal is degenerate
 * (e.g. every replica reports zero decode load at t=0).
 */
template <typename ScoreFn>
int
ArgMin(const std::vector<serve::ReplicaSnapshot>& replicas,
       ScoreFn score)
{
    POD_CHECK_ARG(!replicas.empty(), "router needs at least one replica");
    int best = 0;
    std::pair<double, double> best_score = score(replicas[0]);
    for (size_t i = 1; i < replicas.size(); ++i) {
        std::pair<double, double> s = score(replicas[i]);
        if (s < best_score) {
            best = static_cast<int>(i);
            best_score = s;
        }
    }
    return best;
}

}  // namespace

int
RoundRobinRouter::Route(const serve::Request& request,
                        const std::vector<serve::ReplicaSnapshot>&
                            replicas)
{
    (void)request;
    POD_CHECK_ARG(!replicas.empty(), "router needs at least one replica");
    int pick = static_cast<int>(next_ % replicas.size());
    ++next_;
    return pick;
}

int
LeastOutstandingRouter::Route(const serve::Request& request,
                              const std::vector<serve::ReplicaSnapshot>&
                                  replicas)
{
    (void)request;
    return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
        return std::make_pair(static_cast<double>(r.outstanding),
                              r.kv_pressure);
    });
}

int
LeastKvPressureRouter::Route(const serve::Request& request,
                             const std::vector<serve::ReplicaSnapshot>&
                                 replicas)
{
    (void)request;
    return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
        return std::make_pair(r.kv_pressure,
                              static_cast<double>(r.outstanding));
    });
}

PrefillAwareRouter::PrefillAwareRouter(int long_prompt_threshold)
    : long_prompt_threshold_(long_prompt_threshold)
{
    POD_CHECK_ARG(long_prompt_threshold >= 1,
                  "long-prompt threshold must be >= 1");
}

int
PrefillAwareRouter::Route(const serve::Request& request,
                          const std::vector<serve::ReplicaSnapshot>&
                              replicas)
{
    if (request.prefill_tokens >= long_prompt_threshold_) {
        return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
            return std::make_pair(
                static_cast<double>(r.decode_tokens_pending),
                static_cast<double>(r.outstanding));
        });
    }
    return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
        return std::make_pair(static_cast<double>(r.outstanding),
                              static_cast<double>(
                                  r.decode_tokens_pending));
    });
}

int
PreemptionAwareRouter::Route(const serve::Request& request,
                             const std::vector<serve::ReplicaSnapshot>&
                                 replicas)
{
    (void)request;
    return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
        // Fewest currently-preempted requests first; ties go to the
        // replica with the most admission headroom (ArgMin, so
        // negate).
        return std::make_pair(static_cast<double>(r.preempted),
                              -r.kv_watermark_headroom);
    });
}

std::unique_ptr<Router>
MakeRouter(const std::string& name)
{
    if (name == "round-robin") {
        return std::make_unique<RoundRobinRouter>();
    }
    if (name == "least-outstanding") {
        return std::make_unique<LeastOutstandingRouter>();
    }
    if (name == "least-kv") {
        return std::make_unique<LeastKvPressureRouter>();
    }
    if (name == "prefill-aware") {
        return std::make_unique<PrefillAwareRouter>();
    }
    if (name == "preemption-aware") {
        return std::make_unique<PreemptionAwareRouter>();
    }
    Fatal("unknown router policy '%s'", name.c_str());
}

std::vector<std::string>
RouterNames()
{
    return {"round-robin", "least-outstanding", "least-kv",
            "prefill-aware", "preemption-aware"};
}

}  // namespace pod::cluster
