/**
 * @file
 * Implementation of the routing policies.
 */
#include "cluster/router.h"

#include <utility>

#include "common/logging.h"
#include "serve/prefix/block_hash.h"

namespace pod::cluster {

namespace {

/**
 * Index of the replica minimizing a (primary, secondary) score pair
 * lexicographically, lowest index on remaining ties. The secondary
 * key keeps policies sensible when the primary signal is degenerate
 * (e.g. every replica reports zero decode load at t=0).
 */
template <typename ScoreFn>
int
ArgMin(const std::vector<serve::ReplicaSnapshot>& replicas,
       ScoreFn score)
{
    POD_CHECK_ARG(!replicas.empty(), "router needs at least one replica");
    int best = 0;
    std::pair<double, double> best_score = score(replicas[0]);
    for (size_t i = 1; i < replicas.size(); ++i) {
        std::pair<double, double> s = score(replicas[i]);
        if (s < best_score) {
            best = static_cast<int>(i);
            best_score = s;
        }
    }
    return best;
}

}  // namespace

int
RoundRobinRouter::Route(const serve::Request& request,
                        const std::vector<serve::ReplicaSnapshot>&
                            replicas)
{
    (void)request;
    POD_CHECK_ARG(!replicas.empty(), "router needs at least one replica");
    int pick = static_cast<int>(next_ % replicas.size());
    ++next_;
    return pick;
}

int
LeastOutstandingRouter::Route(const serve::Request& request,
                              const std::vector<serve::ReplicaSnapshot>&
                                  replicas)
{
    (void)request;
    return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
        return std::make_pair(static_cast<double>(r.outstanding),
                              r.kv_pressure);
    });
}

int
LeastKvPressureRouter::Route(const serve::Request& request,
                             const std::vector<serve::ReplicaSnapshot>&
                                 replicas)
{
    (void)request;
    return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
        return std::make_pair(r.kv_pressure,
                              static_cast<double>(r.outstanding));
    });
}

PrefillAwareRouter::PrefillAwareRouter(int long_prompt_threshold)
    : long_prompt_threshold_(long_prompt_threshold)
{
    POD_CHECK_ARG(long_prompt_threshold >= 1,
                  "long-prompt threshold must be >= 1");
}

int
PrefillAwareRouter::Route(const serve::Request& request,
                          const std::vector<serve::ReplicaSnapshot>&
                              replicas)
{
    if (request.prefill_tokens >= long_prompt_threshold_) {
        return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
            return std::make_pair(
                static_cast<double>(r.decode_tokens_pending),
                static_cast<double>(r.outstanding));
        });
    }
    return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
        return std::make_pair(static_cast<double>(r.outstanding),
                              static_cast<double>(
                                  r.decode_tokens_pending));
    });
}

int
PreemptionAwareRouter::Route(const serve::Request& request,
                             const std::vector<serve::ReplicaSnapshot>&
                                 replicas)
{
    (void)request;
    return ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
        // Fewest currently-preempted requests first; ties go to the
        // replica with the most admission headroom (ArgMin, so
        // negate).
        return std::make_pair(static_cast<double>(r.preempted),
                              -r.kv_watermark_headroom);
    });
}

PrefixAffinityRouter::PrefixAffinityRouter(int block_size)
    : block_size_(block_size)
{
    POD_CHECK_ARG(block_size >= 1, "block size must be >= 1");
}

int
PrefixAffinityRouter::Route(const serve::Request& request,
                            const std::vector<serve::ReplicaSnapshot>&
                                replicas)
{
    POD_CHECK_ARG(!replicas.empty(), "router needs at least one replica");
    routed_.resize(replicas.size());

    std::vector<uint64_t> hashes =
        serve::prefix::BlockHashes(request, block_size_);

    // Longest-prefix probe per replica: chained hashes mean the
    // replica's set contains hashes[0..k) exactly when it saw a
    // prompt sharing at least that prefix, so the first miss ends
    // the match.
    int best = -1;
    size_t best_match = 0;
    for (size_t r = 0; r < replicas.size(); ++r) {
        const std::unordered_set<uint64_t>& seen = routed_[r];
        size_t match = 0;
        while (match < hashes.size() &&
               seen.count(hashes[match]) > 0) {
            ++match;
        }
        if (match == 0) continue;
        if (best < 0 || match > best_match ||
            (match == best_match &&
             replicas[r].kv_pressure <
                 replicas[static_cast<size_t>(best)].kv_pressure)) {
            best = static_cast<int>(r);
            best_match = match;
        }
    }
    if (best < 0) {
        // Opaque prompt or cold prefix: place by KV pressure, like
        // the least-kv baseline.
        best = ArgMin(replicas, [](const serve::ReplicaSnapshot& r) {
            return std::make_pair(r.kv_pressure,
                                  static_cast<double>(r.outstanding));
        });
    }
    routed_[static_cast<size_t>(best)].insert(hashes.begin(),
                                              hashes.end());
    return best;
}

std::unique_ptr<Router>
MakeRouter(const std::string& name)
{
    if (name == "round-robin") {
        return std::make_unique<RoundRobinRouter>();
    }
    if (name == "least-outstanding") {
        return std::make_unique<LeastOutstandingRouter>();
    }
    if (name == "least-kv") {
        return std::make_unique<LeastKvPressureRouter>();
    }
    if (name == "prefill-aware") {
        return std::make_unique<PrefillAwareRouter>();
    }
    if (name == "preemption-aware") {
        return std::make_unique<PreemptionAwareRouter>();
    }
    if (name == "prefix-affinity") {
        return std::make_unique<PrefixAffinityRouter>();
    }
    Fatal("unknown router policy '%s'", name.c_str());
}

std::vector<std::string>
RouterNames()
{
    return {"round-robin",   "least-outstanding", "least-kv",
            "prefill-aware", "preemption-aware",  "prefix-affinity"};
}

}  // namespace pod::cluster
