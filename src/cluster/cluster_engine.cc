/**
 * @file
 * Implementation of the phase-structured cluster run loop
 * (docs/DESIGN.md S8): plan arrivals, advance replicas in parallel
 * to the arrival horizon, route at the barrier.
 */
#include "cluster/cluster_engine.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <string>

#include "common/logging.h"

namespace pod::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * SplitMix64 finalizer: derives statistically independent per-replica
 * seeds from (cluster seed, replica index). A plain `seed + index`
 * would hand adjacent mt19937_64 engines correlated states.
 */
uint64_t
DeriveSeed(uint64_t seed, uint64_t index)
{
    uint64_t z = seed + (index + 1) * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

}  // namespace

ClusterConfig
ClusterConfig::Homogeneous(const serve::ServingConfig& base,
                           int num_replicas)
{
    POD_CHECK_ARG(num_replicas >= 1, "fleet needs at least one replica");
    ClusterConfig config;
    config.replicas.assign(static_cast<size_t>(num_replicas), base);
    return config;
}

ClusterEngine::ClusterEngine(ClusterConfig config,
                             SchedulerFactory make_scheduler,
                             std::unique_ptr<Router> router,
                             int num_threads)
    : seed_(config.seed),
      router_(std::move(router)),
      pool_(ThreadPool::ResolveThreads(num_threads)),
      advance_mode_(config.advance_mode),
      advance_slice_events_(config.advance_slice_events)
{
    POD_CHECK_ARG(!config.replicas.empty(),
                  "fleet needs at least one replica");
    POD_CHECK_ARG(make_scheduler != nullptr,
                  "cluster needs a scheduler factory");
    POD_CHECK_ARG(router_ != nullptr, "cluster needs a router");
    replicas_.reserve(config.replicas.size());
    replica_rngs_.reserve(config.replicas.size());
    for (size_t i = 0; i < config.replicas.size(); ++i) {
        auto scheduler = make_scheduler(static_cast<int>(i));
        POD_CHECK_ARG(scheduler != nullptr,
                      "scheduler factory returned null");
        replicas_.emplace_back(config.replicas[i], std::move(scheduler));
        replica_rngs_.emplace_back(DeriveSeed(seed_, i));
    }
}

const serve::ServingEngine&
ClusterEngine::Replica(int index) const
{
    POD_CHECK_ARG(index >= 0 &&
                      index < static_cast<int>(replicas_.size()),
                  "replica index out of range");
    return replicas_[static_cast<size_t>(index)];
}

Rng&
ClusterEngine::ReplicaRng(int index)
{
    POD_CHECK_ARG(index >= 0 &&
                      index < static_cast<int>(replica_rngs_.size()),
                  "replica index out of range");
    return replica_rngs_[static_cast<size_t>(index)];
}

void
ClusterEngine::EnableTracing(size_t reserve_events)
{
    if (!recorders_.empty()) return;
    recorders_.reserve(replicas_.size() + 1);
    recorders_.emplace_back(0, "cluster", reserve_events);
    for (size_t r = 0; r < replicas_.size(); ++r) {
        recorders_.emplace_back(
            static_cast<int>(r) + 1,
            "replica" + std::to_string(r) + " (" +
                replicas_[r].Config().gpu.name + ")",
            reserve_events);
        // The vector never grows past this reserve, so the pointer
        // handed to the engine stays valid for the engine's lifetime.
        replicas_[r].SetTraceRecorder(&recorders_[r + 1]);
    }
}

void
ClusterEngine::WriteChromeTrace(std::ostream& out) const
{
    std::vector<const telemetry::TraceRecorder*> recorders;
    recorders.reserve(recorders_.size());
    for (const auto& recorder : recorders_) {
        recorders.push_back(&recorder);
    }
    telemetry::WriteChromeTrace(out, recorders);
}

void
ClusterEngine::EnableProfiling(bool on)
{
    profiling_ = on;
    pool_.EnableProfiling(on);
}

bool
ClusterEngine::AdvanceReplica(size_t r, double horizon,
                              long max_events, ReplicaAccum& accum)
{
    // Strictly-before: an event *at* the horizon belongs after the
    // routing decision, matching the serial loop's
    // `arrival_time <= t_step` routing condition. The replica touches
    // only its own engine, RNG stream and accumulator, so this body
    // is race-free and schedule-independent by construction. A slice
    // boundary (max_events reached) carries no loop state: re-entry
    // re-evaluates NextEventTime() and continues the identical Step()
    // sequence, so slice size can never change results.
    serve::ServingEngine& replica = replicas_[r];
    long events = 0;
    while (replica.NextEventTime() < horizon) {
        if (max_events > 0 && events == max_events) return false;
        ++events;
        serve::StepResult result = replica.Step();
        if (!result.progressed) continue;
        accum.busy_time += result.duration;
        accum.tokens_processed += result.batch_tokens;
        accum.kv_peak = std::max(accum.kv_peak, result.kv_utilization);
        accum.kv_util_sum += result.kv_utilization;
        accum.kv_util_samples += 1;
    }
    return true;
}

ClusterMetricsReport
ClusterEngine::Run(std::vector<serve::Request> requests)
{
    POD_CHECK_ARG(!requests.empty(), "need at least one request");
    std::sort(requests.begin(), requests.end(), serve::ArrivalOrder);

    const size_t num_replicas = replicas_.size();
    for (auto& replica : replicas_) replica.Reset();
    router_->Reset();
    for (auto& recorder : recorders_) recorder.Clear();
    const bool prof = profiling_;
    if (prof) {
        profile_ = telemetry::ClusterProfile{};
        pool_.ResetProfile();
    }
    const double run_start = prof ? telemetry::WallSeconds() : 0.0;
    // Reseed the replica streams serially, in replica-index order,
    // before any worker runs: stream state is a function of
    // (cluster seed, replica index) alone, never of which thread
    // advanced which replica last run.
    for (size_t r = 0; r < num_replicas; ++r) {
        replica_rngs_[r] = Rng(DeriveSeed(seed_, r));
    }

    // Memo caches (and their lifetime hit/miss counters) survive
    // Reset() deliberately; baseline them so the per-run report only
    // contains this run's lookups.
    std::vector<long> cache_hits_base(num_replicas, 0);
    std::vector<long> cache_misses_base(num_replicas, 0);
    std::vector<long> fastpath_base(num_replicas, 0);
    std::vector<long> fallback_base(num_replicas, 0);
    for (size_t r = 0; r < num_replicas; ++r) {
        cache_hits_base[r] = replicas_[r].AttnCacheHits();
        cache_misses_base[r] = replicas_[r].AttnCacheMisses();
        fastpath_base[r] = replicas_[r].SimFastpathEvents();
        fallback_base[r] = replicas_[r].SimFallbackEvents();
    }

    std::vector<ReplicaAccum> accum(num_replicas);
    std::vector<serve::ReplicaSnapshot> snapshots(num_replicas);
    size_t next_arrival = 0;

    // Per-event probes are O(1) per replica (PR 3), so the serial
    // phases cost O(R) per arrival; all Step() work — the actual
    // simulation cost — happens inside the parallel-advance phase.
    while (true) {
        // ---- Phase 1: plan arrivals (the time horizon). ----
        const double horizon = next_arrival < requests.size()
                                   ? requests[next_arrival].arrival_time
                                   : kInf;

        // ---- Phase 2: parallel advance to the horizon. ----
        // Cheap serial pre-scan: most arrivals land with no replica
        // event before them (e.g. offline traces queue everything at
        // t=0), and skipping the pool round keeps routing-bound
        // phases at O(R) instead of a barrier per request.
        bool any_work = false;
        for (size_t r = 0; r < num_replicas; ++r) {
            if (replicas_[r].NextEventTime() < horizon) {
                any_work = true;
                break;
            }
        }
        if (any_work) {
            const double t0 = prof ? telemetry::WallSeconds() : 0.0;
            if (advance_mode_ == AdvanceMode::kWorkStealing &&
                pool_.NumThreads() > 1) {
                // Seed only replicas with pre-horizon work, costed by
                // their pending token backlog — a pure scheduling
                // hint (docs/DESIGN.md S8.4): it biases which deque a
                // replica lands on, never what it computes.
                seed_scratch_.clear();
                for (size_t r = 0; r < num_replicas; ++r) {
                    if (replicas_[r].NextEventTime() < horizon) {
                        seed_scratch_.push_back(
                            {static_cast<int>(r),
                             static_cast<double>(
                                 replicas_[r].PendingWorkTokens())});
                    }
                }
                pool_.ParallelForTasks(
                    seed_scratch_, [&](int r) {
                        return AdvanceReplica(
                            static_cast<size_t>(r), horizon,
                            advance_slice_events_,
                            accum[static_cast<size_t>(r)]);
                    });
            } else {
                // Single-shot baseline (and the 1-thread serial loop,
                // where slicing would only add bookkeeping).
                pool_.ParallelFor(
                    static_cast<int>(num_replicas), [&](int r) {
                        AdvanceReplica(static_cast<size_t>(r), horizon,
                                       0,
                                       accum[static_cast<size_t>(r)]);
                    });
            }
            if (prof) {
                profile_.advance.Accumulate(t0);
                ++profile_.pool_rounds;
            }
        }

        // ---- Phase 3: barrier route. ----
        // Every replica's next event is now >= horizon, which is the
        // serial loop's routing condition (route every arrival not
        // later than the earliest replica event, so no replica forms
        // a batch an unrouted request could have joined).
        if (next_arrival >= requests.size()) break;  // fleet drained
        const double route_start = prof ? telemetry::WallSeconds() : 0.0;
        const serve::Request& request = requests[next_arrival];
        for (size_t r = 0; r < num_replicas; ++r) {
            snapshots[r] = replicas_[r].Snapshot();
            snapshots[r].replica_id = static_cast<int>(r);
        }
        int pick = router_->Route(request, snapshots);
        POD_CHECK_ARG(pick >= 0 &&
                          pick < static_cast<int>(num_replicas),
                      "router returned an invalid replica index");
        if (!recorders_.empty()) {
            // Routing happens serially at the barrier, so the router
            // recorder has exactly one writer.
            recorders_[0].Instant(telemetry::EventKind::kRoute,
                                  request.arrival_time,
                                  telemetry::TraceRecorder::kEngineTrack,
                                  request.id, pick);
        }
        replicas_[static_cast<size_t>(pick)].Submit(request);
        accum[static_cast<size_t>(pick)].requests_routed += 1;
        if (prof) profile_.route.Accumulate(route_start);
        ++next_arrival;
    }

    POD_ASSERT(next_arrival == requests.size());
    for (auto& replica : replicas_) POD_ASSERT(replica.Done());

    // ---- assemble the report (serial; after the final barrier) ----
    std::vector<ReplicaUtilization> util(num_replicas);
    for (size_t r = 0; r < num_replicas; ++r) {
        util[r].busy_time = accum[r].busy_time;
        util[r].tokens_processed = accum[r].tokens_processed;
        util[r].kv_peak = accum[r].kv_peak;
        util[r].requests_routed = accum[r].requests_routed;
    }

    ClusterMetricsReport report;
    report.router = router_->Name();
    report.num_replicas = static_cast<int>(num_replicas);
    report.utilization = std::move(util);

    std::vector<serve::RequestState> fleet_states;
    fleet_states.reserve(requests.size());
    double fleet_makespan = 0.0;
    long fleet_iterations = 0;
    double fleet_tokens = 0.0;
    std::vector<double> request_counts;
    std::vector<double> token_counts;
    request_counts.reserve(num_replicas);
    token_counts.reserve(num_replicas);

    for (size_t r = 0; r < num_replicas; ++r) {
        const serve::ServingEngine& replica = replicas_[r];
        report.per_replica.push_back(replica.Report());
        report.utilization[r].kv_mean =
            accum[r].kv_util_samples > 0
                ? accum[r].kv_util_sum /
                      static_cast<double>(accum[r].kv_util_samples)
                : 0.0;
        report.utilization[r].attn_cache_entries =
            static_cast<long>(replica.AttnCacheSize());
        report.utilization[r].attn_cache_hits =
            replica.AttnCacheHits() - cache_hits_base[r];
        report.utilization[r].attn_cache_misses =
            replica.AttnCacheMisses() - cache_misses_base[r];
        report.attn_cache_entries +=
            report.utilization[r].attn_cache_entries;
        report.attn_cache_hits += report.utilization[r].attn_cache_hits;
        report.attn_cache_misses +=
            report.utilization[r].attn_cache_misses;
        report.utilization[r].sim_fastpath_events =
            replica.SimFastpathEvents() - fastpath_base[r];
        report.utilization[r].sim_fallback_events =
            replica.SimFallbackEvents() - fallback_base[r];
        report.sim_fastpath_events +=
            report.utilization[r].sim_fastpath_events;
        report.sim_fallback_events +=
            report.utilization[r].sim_fallback_events;
        report.preemptions += report.per_replica[r].preemptions;
        report.preemptions_recompute +=
            report.per_replica[r].preemptions_recompute;
        report.preemptions_swap += report.per_replica[r].preemptions_swap;
        report.swap_time_total += report.per_replica[r].swap_time_total;
        report.prefix_hits += report.per_replica[r].prefix_hits;
        report.prefix_misses += report.per_replica[r].prefix_misses;
        report.prefix_hit_blocks +=
            report.per_replica[r].prefix_hit_blocks;
        report.prefix_evicted_blocks +=
            report.per_replica[r].prefix_evicted_blocks;
        report.prefix_cached_blocks +=
            report.per_replica[r].prefix_cached_blocks;
        report.prefix_shared_blocks +=
            report.per_replica[r].prefix_shared_blocks;
        report.prefix_tokens_saved +=
            report.per_replica[r].prefix_tokens_saved;
        report.prefill_tokens_processed +=
            report.per_replica[r].prefill_tokens_processed;
        report.decode_tokens_processed +=
            report.per_replica[r].decode_tokens_processed;
        fleet_states.insert(fleet_states.end(),
                            replica.States().begin(),
                            replica.States().end());
        fleet_makespan = std::max(fleet_makespan, replica.Now());
        fleet_iterations += replica.Iterations();
        fleet_tokens += replica.TotalBatchTokens();
        request_counts.push_back(
            static_cast<double>(report.utilization[r].requests_routed));
        token_counts.push_back(
            report.utilization[r].tokens_processed);
    }

    report.fleet = serve::CollectMetrics(fleet_states, fleet_makespan,
                                         fleet_iterations, fleet_tokens);
    report.fleet.system = router_->Name();
    // CollectMetrics recovers the per-request preemption counts from
    // the pooled states; the mode split and transfer time only exist
    // in the per-replica engine counters, so roll those up.
    report.fleet.preemptions_recompute = report.preemptions_recompute;
    report.fleet.preemptions_swap = report.preemptions_swap;
    report.fleet.swap_time_total = report.swap_time_total;
    // Sim-core event counts likewise live only in the engines.
    report.fleet.sim_fastpath_events = report.sim_fastpath_events;
    report.fleet.sim_fallback_events = report.sim_fallback_events;
    // Prefix-cache and processed-token counters likewise.
    report.fleet.prefix_hits = report.prefix_hits;
    report.fleet.prefix_misses = report.prefix_misses;
    report.fleet.prefix_hit_blocks = report.prefix_hit_blocks;
    report.fleet.prefix_evicted_blocks = report.prefix_evicted_blocks;
    report.fleet.prefix_cached_blocks = report.prefix_cached_blocks;
    report.fleet.prefix_shared_blocks = report.prefix_shared_blocks;
    report.fleet.prefix_tokens_saved = report.prefix_tokens_saved;
    report.fleet.prefill_tokens_processed =
        report.prefill_tokens_processed;
    report.fleet.decode_tokens_processed =
        report.decode_tokens_processed;
    report.request_imbalance_cv = CoefficientOfVariation(request_counts);
    report.token_imbalance_cv = CoefficientOfVariation(token_counts);
    if (prof) {
        profile_.run.Accumulate(run_start);
        profile_.threads = pool_.Profile();
    }
    return report;
}

}  // namespace pod::cluster
