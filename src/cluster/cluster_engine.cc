/**
 * @file
 * Implementation of the cluster discrete-event loop.
 */
#include "cluster/cluster_engine.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace pod::cluster {

ClusterConfig
ClusterConfig::Homogeneous(const serve::ServingConfig& base,
                           int num_replicas)
{
    POD_CHECK_ARG(num_replicas >= 1, "fleet needs at least one replica");
    ClusterConfig config;
    config.replicas.assign(static_cast<size_t>(num_replicas), base);
    return config;
}

ClusterEngine::ClusterEngine(ClusterConfig config,
                             SchedulerFactory make_scheduler,
                             std::unique_ptr<Router> router)
    : router_(std::move(router))
{
    POD_CHECK_ARG(!config.replicas.empty(),
                  "fleet needs at least one replica");
    POD_CHECK_ARG(make_scheduler != nullptr,
                  "cluster needs a scheduler factory");
    POD_CHECK_ARG(router_ != nullptr, "cluster needs a router");
    replicas_.reserve(config.replicas.size());
    for (size_t i = 0; i < config.replicas.size(); ++i) {
        auto scheduler = make_scheduler(static_cast<int>(i));
        POD_CHECK_ARG(scheduler != nullptr,
                      "scheduler factory returned null");
        replicas_.emplace_back(config.replicas[i], std::move(scheduler));
    }
}

const serve::ServingEngine&
ClusterEngine::Replica(int index) const
{
    POD_CHECK_ARG(index >= 0 &&
                      index < static_cast<int>(replicas_.size()),
                  "replica index out of range");
    return replicas_[static_cast<size_t>(index)];
}

ClusterMetricsReport
ClusterEngine::Run(std::vector<serve::Request> requests)
{
    POD_CHECK_ARG(!requests.empty(), "need at least one request");
    std::sort(requests.begin(), requests.end(), serve::ArrivalOrder);

    const size_t num_replicas = replicas_.size();
    for (auto& replica : replicas_) replica.Reset();
    router_->Reset();

    // Memo caches (and their lifetime hit/miss counters) survive
    // Reset() deliberately; baseline them so the per-run report only
    // contains this run's lookups.
    std::vector<long> cache_hits_base(num_replicas, 0);
    std::vector<long> cache_misses_base(num_replicas, 0);
    for (size_t r = 0; r < num_replicas; ++r) {
        cache_hits_base[r] = replicas_[r].AttnCacheHits();
        cache_misses_base[r] = replicas_[r].AttnCacheMisses();
    }

    std::vector<ReplicaUtilization> util(num_replicas);
    std::vector<serve::ReplicaSnapshot> snapshots(num_replicas);
    std::vector<double> kv_util_sum(num_replicas, 0.0);
    std::vector<long> kv_util_samples(num_replicas, 0);

    constexpr double kInf = std::numeric_limits<double>::infinity();
    size_t next_arrival = 0;

    // Both per-event probes below are O(1) per replica since PR 3:
    // NextEventTime() reads the running counters and Snapshot()
    // assembles the counter set, so the loop costs O(R) per event
    // and O(R) per arrival instead of rescanning every submitted
    // request -- the O(N^2 * R) behaviour the ROADMAP called out.
    while (true) {
        // Earliest actionable replica event.
        double t_step = kInf;
        size_t step_replica = 0;
        for (size_t r = 0; r < num_replicas; ++r) {
            double t = replicas_[r].NextEventTime();
            if (t < t_step) {
                t_step = t;
                step_replica = r;
            }
        }

        // Route every arrival not later than that event, so no
        // replica forms a batch while an unrouted request that could
        // have joined it is still pending.
        if (next_arrival < requests.size() &&
            requests[next_arrival].arrival_time <= t_step) {
            const serve::Request& request = requests[next_arrival];
            for (size_t r = 0; r < num_replicas; ++r) {
                snapshots[r] = replicas_[r].Snapshot();
                snapshots[r].replica_id = static_cast<int>(r);
            }
            int pick = router_->Route(request, snapshots);
            POD_CHECK_ARG(pick >= 0 &&
                              pick < static_cast<int>(num_replicas),
                          "router returned an invalid replica index");
            replicas_[static_cast<size_t>(pick)].Submit(request);
            util[static_cast<size_t>(pick)].requests_routed += 1;
            ++next_arrival;
            continue;
        }

        if (t_step == kInf) break;  // fleet drained

        serve::StepResult result = replicas_[step_replica].Step();
        if (result.progressed) {
            ReplicaUtilization& u = util[step_replica];
            u.busy_time += result.duration;
            u.tokens_processed += result.batch_tokens;
            u.kv_peak = std::max(u.kv_peak, result.kv_utilization);
            kv_util_sum[step_replica] += result.kv_utilization;
            kv_util_samples[step_replica] += 1;
        }
    }

    POD_ASSERT(next_arrival == requests.size());
    for (auto& replica : replicas_) POD_ASSERT(replica.Done());

    // ---- assemble the report ----
    ClusterMetricsReport report;
    report.router = router_->Name();
    report.num_replicas = static_cast<int>(num_replicas);
    report.utilization = std::move(util);

    std::vector<serve::RequestState> fleet_states;
    fleet_states.reserve(requests.size());
    double fleet_makespan = 0.0;
    long fleet_iterations = 0;
    double fleet_tokens = 0.0;
    std::vector<double> request_counts;
    std::vector<double> token_counts;
    request_counts.reserve(num_replicas);
    token_counts.reserve(num_replicas);

    for (size_t r = 0; r < num_replicas; ++r) {
        const serve::ServingEngine& replica = replicas_[r];
        report.per_replica.push_back(replica.Report());
        report.utilization[r].kv_mean =
            kv_util_samples[r] > 0
                ? kv_util_sum[r] /
                      static_cast<double>(kv_util_samples[r])
                : 0.0;
        report.utilization[r].attn_cache_entries =
            static_cast<long>(replica.AttnCacheSize());
        report.utilization[r].attn_cache_hits =
            replica.AttnCacheHits() - cache_hits_base[r];
        report.utilization[r].attn_cache_misses =
            replica.AttnCacheMisses() - cache_misses_base[r];
        report.attn_cache_entries +=
            report.utilization[r].attn_cache_entries;
        report.attn_cache_hits += report.utilization[r].attn_cache_hits;
        report.attn_cache_misses +=
            report.utilization[r].attn_cache_misses;
        report.preemptions += report.per_replica[r].preemptions;
        report.preemptions_recompute +=
            report.per_replica[r].preemptions_recompute;
        report.preemptions_swap += report.per_replica[r].preemptions_swap;
        report.swap_time_total += report.per_replica[r].swap_time_total;
        fleet_states.insert(fleet_states.end(),
                            replica.States().begin(),
                            replica.States().end());
        fleet_makespan = std::max(fleet_makespan, replica.Now());
        fleet_iterations += replica.Iterations();
        fleet_tokens += replica.TotalBatchTokens();
        request_counts.push_back(
            static_cast<double>(report.utilization[r].requests_routed));
        token_counts.push_back(
            report.utilization[r].tokens_processed);
    }

    report.fleet = serve::CollectMetrics(fleet_states, fleet_makespan,
                                         fleet_iterations, fleet_tokens);
    report.fleet.system = router_->Name();
    // CollectMetrics recovers the per-request preemption counts from
    // the pooled states; the mode split and transfer time only exist
    // in the per-replica engine counters, so roll those up.
    report.fleet.preemptions_recompute = report.preemptions_recompute;
    report.fleet.preemptions_swap = report.preemptions_swap;
    report.fleet.swap_time_total = report.swap_time_total;
    report.request_imbalance_cv = CoefficientOfVariation(request_counts);
    report.token_imbalance_cv = CoefficientOfVariation(token_counts);
    return report;
}

}  // namespace pod::cluster
