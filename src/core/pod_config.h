/**
 * @file
 * Configuration knobs of POD-Attention (paper S4.2).
 */
#ifndef POD_CORE_POD_CONFIG_H
#define POD_CORE_POD_CONFIG_H

namespace pod::core {

/** Intra-SM CTA scheduling policy (paper S4.1, S5.4.2). */
enum class SchedPolicy : int {
    kProportional = 0,  ///< Tickets proportional to CTA counts.
    kFiftyFifty = 1,    ///< Alternate prefill/decode per SM.
};

/** Concurrent CTAs per SM (paper S4.2.2). */
enum class CtasPerSm : int {
    kAuto = 0,        ///< Runtime heuristic (prefill-dominant -> 2).
    kTwo = 2,         ///< 2 CTAs/SM: large prefill tiles.
    kFour = 4,        ///< 4 CTAs/SM: finer co-location ratios.
    kExhaustive = -1, ///< Simulate both and keep the faster (ablation).
};

/** Prefill KV-split policy (paper S4.2.4). */
enum class SplitPolicy : int {
    kLimited = 0,  ///< POD: at most two full waves of prefill CTAs.
    kVanilla = 1,  ///< FlashAttention's aggressive splitting.
};

/** POD-Attention configuration. */
struct PodOptions
{
    SchedPolicy policy = SchedPolicy::kProportional;
    CtasPerSm ctas_per_sm = CtasPerSm::kAuto;
    SplitPolicy split_policy = SplitPolicy::kLimited;

    /** Virtual decode CTAs packed into one physical CTA (S4.2.3). */
    int virtual_ctas_per_physical = 4;

    /**
     * Use the persistent-threads alternative (paper S4.4): launch
     * only enough CTAs to fill the device once; lanes pull queued
     * work items of their op as they finish. The paper reports this
     * performs on par with CTA-parallel fusion once combined with
     * SM-aware scheduling.
     */
    bool persistent = false;
};

/** Printable names. */
const char* SchedPolicyName(SchedPolicy policy);
const char* SplitPolicyName(SplitPolicy policy);

}  // namespace pod::core

#endif  // POD_CORE_POD_CONFIG_H
