/**
 * @file
 * POD-Attention fused kernel assembly (paper S4).
 *
 * Combines all of the paper's mechanisms: CTA-parallel fusion of the
 * prefill and decode device functions, SM-aware CTA scheduling,
 * shrunken decode tiles, virtual decode CTAs, limited prefill splits
 * and the 2-vs-4 CTAs/SM configuration.
 */
#ifndef POD_CORE_POD_KERNEL_H
#define POD_CORE_POD_KERNEL_H

#include "core/pod_config.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/work.h"
#include "kernels/attn_types.h"
#include "kernels/flash_geometry.h"
#include "kernels/sm_aware.h"
#include "kernels/tile.h"

namespace pod::core {

/** The resolved launch plan for one hybrid batch. */
struct PodPlan
{
    /** Chosen CTAs/SM configuration (2 or 4). */
    int ctas_per_sm = 2;

    /** Prefill tile for the chosen configuration. */
    kernels::TileConfig prefill_tile;

    /** Prefill KV splits after the split policy. */
    int prefill_splits = 1;

    /** Decode KV splits. */
    int decode_splits = 1;

    /** Prefill CTAs in the fused grid. */
    int prefill_ctas = 0;

    /** Decode work units (virtual CTAs). */
    int decode_virtual_units = 0;

    /** Physical decode CTAs (virtual units packed 4-per-CTA). */
    int decode_physical_ctas = 0;

    /** Ticket policy instantiated from PodOptions. */
    kernels::SmAwarePolicy policy;

    /** Per-CTA footprint of the fused kernel. */
    gpusim::CtaResources resources;

    /** Work totals (for utilization reporting). */
    double useful_tensor_flops = 0.0;
    double issued_tensor_flops = 0.0;
    double mem_bytes = 0.0;

    /** Total CTAs launched. */
    int TotalCtas() const { return prefill_ctas + decode_physical_ctas; }
};

/**
 * Decide the CTAs/SM configuration for a batch (paper S4.2.2):
 * prefill-dominant batches prefer 2 CTAs/SM (larger tiles); decode-
 * dominant batches prefer 4 (finer-grained co-location).
 * Returns 2 or 4. Honors a forced setting in `options`.
 */
int ChooseCtasPerSm(const kernels::HybridBatch& batch,
                    const gpusim::GpuSpec& spec, const PodOptions& options);

/**
 * Build the fused POD-Attention kernel for a hybrid batch.
 *
 * @param batch hybrid batch (must contain both prefill and decode;
 *        degenerate batches are handled by the backend dispatcher).
 * @param spec target device.
 * @param options POD configuration.
 * @param plan_out optional: receives the resolved plan.
 */
gpusim::KernelDesc BuildPodKernel(const kernels::HybridBatch& batch,
                                  const gpusim::GpuSpec& spec,
                                  const PodOptions& options,
                                  PodPlan* plan_out = nullptr);

}  // namespace pod::core

#endif  // POD_CORE_POD_KERNEL_H
