/**
 * @file
 * Implementation of the attention backend dispatcher.
 */
#include "core/attention.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"
#include "kernels/attn_kernels.h"
#include "kernels/flash_geometry.h"
#include "kernels/tile.h"

namespace pod::core {

namespace {

using kernels::GeomOptions;
using kernels::HybridBatch;
using kernels::UnitGeometry;

/** Aggregate geometry for (possibly several) prefill items. */
UnitGeometry
BuildPrefillGeom(const HybridBatch& batch, const gpusim::GpuSpec& spec,
                 bool vanilla_splits)
{
    UnitGeometry all;
    kernels::TileConfig tile = kernels::PrefillTileLarge();
    for (const auto& p : batch.prefills) {
        int base =
            batch.shape.num_q_heads * CeilDiv(p.chunk_len, tile.tile_q);
        GeomOptions opts;
        opts.tile = tile;
        opts.num_splits =
            vanilla_splits
                ? kernels::VanillaPrefillSplits(base, p.kv_len, spec.num_sms)
                : kernels::LimitedPrefillSplits(base, p.kv_len,
                                                spec.num_sms);
        UnitGeometry geom =
            kernels::BuildPrefillUnits(batch.shape, p, opts);
        all.resources = geom.resources;
        all.useful_tensor_flops += geom.useful_tensor_flops;
        all.issued_tensor_flops += geom.issued_tensor_flops;
        all.mem_bytes += geom.mem_bytes;
        for (auto& unit : geom.units) {
            all.units.push_back(std::move(unit));
        }
    }
    return all;
}

/** FlashAttention (FlashDecoding) decode geometry. */
UnitGeometry
BuildFaDecodeGeom(const HybridBatch& batch, const gpusim::GpuSpec& spec)
{
    GeomOptions opts;
    opts.tile = kernels::DecodeTileFa();
    int base = batch.decode.BatchSize() * batch.shape.num_kv_heads;
    int min_ctx = *std::min_element(batch.decode.context_lens.begin(),
                                    batch.decode.context_lens.end());
    opts.num_splits =
        kernels::FlashDecodingSplits(base, min_ctx, spec.num_sms);
    return kernels::BuildDecodeUnits(batch.shape, batch.decode, opts);
}

/**
 * FlashInfer decode geometry: tighter GQA packing (QSL tile 16, so
 * almost no padded compute) and slightly better memory pipelining --
 * the paper's "FI_Serial has better optimized decode kernels".
 */
UnitGeometry
BuildFiDecodeGeom(const HybridBatch& batch, const gpusim::GpuSpec& spec)
{
    GeomOptions opts;
    opts.tile = kernels::DecodeTilePod();
    opts.unit_mem_bw_cap = 17e9;
    int base = batch.decode.BatchSize() * batch.shape.num_kv_heads;
    int min_ctx = *std::min_element(batch.decode.context_lens.begin(),
                                    batch.decode.context_lens.end());
    opts.num_splits =
        kernels::FlashDecodingSplits(base, min_ctx, 2 * spec.num_sms);
    return kernels::BuildDecodeUnits(batch.shape, batch.decode, opts);
}

/** Convert a SimResult into an AttnRunResult. */
AttnRunResult
MakeResult(Backend backend, const gpusim::SimResult& sim,
           const gpusim::GpuSpec& spec, double useful_flops)
{
    AttnRunResult result;
    result.backend = backend;
    result.total_time = sim.total_time;
    result.prefill_time = sim.Op(gpusim::OpClass::kPrefill).finish_time;
    result.decode_time = sim.Op(gpusim::OpClass::kDecode).finish_time;
    result.tensor_util = sim.tensor_util;
    result.mem_util = sim.mem_util;
    result.energy_joules = sim.energy_joules;
    result.total_ctas = sim.total_ctas;
    result.analytic_fastpath_events = sim.analytic_fastpath_events;
    result.oracle_fallback_events = sim.oracle_fallback_events;
    if (sim.total_time > 0.0) {
        result.useful_tensor_util =
            useful_flops / (sim.total_time * spec.TotalTensorFlops());
    }
    return result;
}

/** Run the POD backend (full hybrid batch). */
AttnRunResult
RunPod(const HybridBatch& batch, const gpusim::GpuSpec& spec,
       const AttnRunOptions& options)
{
    PodOptions pod_options = options.pod;
    if (pod_options.ctas_per_sm == CtasPerSm::kExhaustive ||
        pod_options.ctas_per_sm == CtasPerSm::kAuto) {
        // "POD-Attention automatically picks the most suitable
        // configuration at runtime" (paper S4.2.2). Simulation makes
        // trying both configurations free, which also preserves the
        // never-worse-than-serial property the paper reports; the
        // pure heuristic remains available via ChooseCtasPerSm and
        // the forced kTwo/kFour settings.
        AttnRunOptions two = options;
        two.pod.ctas_per_sm = CtasPerSm::kTwo;
        AttnRunOptions four = options;
        four.pod.ctas_per_sm = CtasPerSm::kFour;
        AttnRunResult r2 = RunPod(batch, spec, two);
        AttnRunResult r4 = RunPod(batch, spec, four);
        return r2.total_time <= r4.total_time ? r2 : r4;
    }

    PodPlan plan;
    gpusim::KernelDesc kernel =
        BuildPodKernel(batch, spec, pod_options, &plan);
    gpusim::FluidEngine engine(spec, options.sim);
    AttnRunResult result =
        MakeResult(Backend::kPod, engine.RunKernel(kernel), spec,
                   plan.useful_tensor_flops);
    result.pod_plan = plan;
    return result;
}

}  // namespace

std::vector<Backend>
AllBackends()
{
    return {Backend::kFaSerial,  Backend::kFaStreams, Backend::kFaHFuse,
            Backend::kFiSerial,  Backend::kFiBatched, Backend::kPod};
}

const char*
BackendName(Backend backend)
{
    switch (backend) {
      case Backend::kFaSerial: return "FA_Serial";
      case Backend::kFaStreams: return "FA_Streams";
      case Backend::kFaHFuse: return "FA_HFuse";
      case Backend::kFiSerial: return "FI_Serial";
      case Backend::kFiBatched: return "FI_Batched";
      case Backend::kPod: return "POD";
    }
    return "unknown";
}

AttnRunResult
RunAttention(Backend backend, const HybridBatch& batch,
             const gpusim::GpuSpec& spec, const AttnRunOptions& options)
{
    batch.Validate();
    gpusim::FluidEngine engine(spec, options.sim);

    // ---- degenerate batches: a single standalone kernel ----
    if (!batch.HasDecode()) {
        UnitGeometry geom = BuildPrefillGeom(batch, spec,
                                             /*vanilla_splits=*/true);
        gpusim::KernelDesc kernel =
            kernels::MakeSimpleKernel("prefill_attention", geom);
        AttnRunResult result =
            MakeResult(backend, engine.RunKernel(kernel), spec,
                       geom.useful_tensor_flops);
        return result;
    }
    if (!batch.HasPrefill()) {
        UnitGeometry geom;
        switch (backend) {
          case Backend::kFiSerial:
          case Backend::kFiBatched:
          case Backend::kPod:
            geom = BuildFiDecodeGeom(batch, spec);
            break;
          default:
            geom = BuildFaDecodeGeom(batch, spec);
            break;
        }
        gpusim::KernelDesc kernel =
            kernels::MakeSimpleKernel("decode_attention", geom);
        return MakeResult(backend, engine.RunKernel(kernel), spec,
                          geom.useful_tensor_flops);
    }

    // ---- full hybrid batches ----
    switch (backend) {
      case Backend::kFaSerial: {
        UnitGeometry prefill = BuildPrefillGeom(batch, spec, true);
        UnitGeometry decode = BuildFaDecodeGeom(batch, spec);
        gpusim::SimResult sim = engine.Run(
            {gpusim::KernelLaunch{
                 kernels::MakeSimpleKernel("fa_prefill", prefill), 0},
             gpusim::KernelLaunch{
                 kernels::MakeSimpleKernel("fa_decode", decode), 0}});
        return MakeResult(backend, sim, spec,
                          prefill.useful_tensor_flops +
                              decode.useful_tensor_flops);
      }
      case Backend::kFaStreams: {
        UnitGeometry prefill = BuildPrefillGeom(batch, spec, true);
        UnitGeometry decode = BuildFaDecodeGeom(batch, spec);
        gpusim::SimResult sim = engine.Run(
            {gpusim::KernelLaunch{
                 kernels::MakeSimpleKernel("fa_prefill", prefill), 0},
             gpusim::KernelLaunch{
                 kernels::MakeSimpleKernel("fa_decode", decode), 1}});
        return MakeResult(backend, sim, spec,
                          prefill.useful_tensor_flops +
                              decode.useful_tensor_flops);
      }
      case Backend::kFaHFuse: {
        UnitGeometry prefill = BuildPrefillGeom(batch, spec, true);
        UnitGeometry decode = BuildFaDecodeGeom(batch, spec);
        gpusim::KernelDesc kernel =
            kernels::MakeHFuseKernel("fa_hfuse", prefill, decode);
        return MakeResult(backend, engine.RunKernel(kernel), spec,
                          prefill.useful_tensor_flops +
                              decode.useful_tensor_flops);
      }
      case Backend::kFiSerial: {
        UnitGeometry prefill = BuildPrefillGeom(batch, spec, true);
        UnitGeometry decode = BuildFiDecodeGeom(batch, spec);
        gpusim::SimResult sim = engine.Run(
            {gpusim::KernelLaunch{
                 kernels::MakeSimpleKernel("fi_prefill", prefill), 0},
             gpusim::KernelLaunch{
                 kernels::MakeSimpleKernel("fi_decode", decode), 0}});
        return MakeResult(backend, sim, spec,
                          prefill.useful_tensor_flops +
                              decode.useful_tensor_flops);
      }
      case Backend::kFiBatched: {
        UnitGeometry prefill = BuildPrefillGeom(batch, spec, true);
        GeomOptions opts;
        // FlashInfer's prefill kernel processes the single-token
        // ragged rows with a 64-row tile: heavily padded compute plus
        // per-q-head KV re-reads (partly L2-absorbed).
        opts.tile = kernels::TileConfig{64, 64, 4};
        UnitGeometry decode = kernels::BuildDecodeAsPrefillUnits(
            batch.shape, batch.decode, opts);
        gpusim::KernelDesc kernel = kernels::MakeBatchedPrefillKernel(
            "fi_batched", prefill, decode);
        return MakeResult(backend, engine.RunKernel(kernel), spec,
                          prefill.useful_tensor_flops +
                              decode.useful_tensor_flops);
      }
      case Backend::kPod:
        return RunPod(batch, spec, options);
    }
    Panic("unknown attention backend");
}

PodAttention::PodAttention(gpusim::GpuSpec spec, AttnRunOptions options)
    : spec_(std::move(spec)), options_(options)
{
    spec_.Validate();
}

AttnRunResult
PodAttention::Run(const HybridBatch& batch, Backend backend) const
{
    return RunAttention(backend, batch, spec_, options_);
}

double
PodAttention::SpeedupOverSerial(const HybridBatch& batch) const
{
    AttnRunResult pod = Run(batch, Backend::kPod);
    AttnRunResult serial = Run(batch, Backend::kFaSerial);
    POD_ASSERT(pod.total_time > 0.0);
    return serial.total_time / pod.total_time;
}

}  // namespace pod::core
