/**
 * @file
 * The public attention API: run a hybrid batch with any of the
 * paper's attention execution strategies and report timing,
 * utilization and energy.
 *
 * Backends (paper Table 3 and S5.1):
 *  - FA_Serial: FlashAttention prefill kernel, then FlashDecoding
 *    decode kernel, one stream.
 *  - FA_Streams: the same two kernels on two CUDA streams.
 *  - FA_HFuse: warp-parallel (horizontally) fused kernels.
 *  - FI_Serial: FlashInfer kernels, serial (better decode).
 *  - FI_Batched: prefill and decode both through FlashInfer's
 *    prefill kernel (the "easiest" fusion; degrades at long context).
 *  - POD: this paper's fused kernel with SM-aware CTA scheduling.
 */
#ifndef POD_CORE_ATTENTION_H
#define POD_CORE_ATTENTION_H

#include <string>
#include <vector>

#include "core/pod_config.h"
#include "core/pod_kernel.h"
#include "gpusim/engine.h"
#include "gpusim/gpu_spec.h"
#include "kernels/attn_types.h"

namespace pod::core {

/** Attention execution strategies compared in the paper. */
enum class Backend : int {
    kFaSerial = 0,
    kFaStreams = 1,
    kFaHFuse = 2,
    kFiSerial = 3,
    kFiBatched = 4,
    kPod = 5,
};

/** All backends, in the paper's reporting order. */
std::vector<Backend> AllBackends();

/** Printable backend name (paper notation). */
const char* BackendName(Backend backend);

/** Options for RunAttention. */
struct AttnRunOptions
{
    /** POD-specific configuration. */
    PodOptions pod;

    /** Simulator options (seed, jitter, launch overhead). */
    gpusim::SimOptions sim;
};

/** Result of executing one hybrid batch's attention. */
struct AttnRunResult
{
    Backend backend = Backend::kFaSerial;

    /** End-to-end attention time for the batch (seconds). */
    double total_time = 0.0;

    /** Completion time of the prefill portion (0 if none). */
    double prefill_time = 0.0;

    /** Completion time of the decode portion (0 if none). */
    double decode_time = 0.0;

    /** Issued tensor-core utilization (profiler view, padding incl.). */
    double tensor_util = 0.0;

    /** Useful tensor utilization (causally necessary FLOPs only). */
    double useful_tensor_util = 0.0;

    /** HBM bandwidth utilization. */
    double mem_util = 0.0;

    /** Energy in joules (S5.1 power model). */
    double energy_joules = 0.0;

    /** CTAs launched. */
    int total_ctas = 0;

    /** Sim-core telemetry: events handled by the closed-form analytic
     *  core vs stepwise-oracle events (fallbacks or ExactOracle runs).
     *  Mirrors gpusim::SimResult; summed over the kernels this run
     *  simulated. */
    long analytic_fastpath_events = 0;
    long oracle_fallback_events = 0;

    /** Resolved POD plan (valid when backend == kPod). */
    PodPlan pod_plan;
};

/**
 * Execute one hybrid batch's attention with a backend.
 * Handles degenerate (prefill-only / decode-only) batches by running
 * the corresponding standalone kernel.
 */
AttnRunResult RunAttention(Backend backend,
                           const kernels::HybridBatch& batch,
                           const gpusim::GpuSpec& spec,
                           const AttnRunOptions& options = AttnRunOptions());

/**
 * High-level convenience wrapper bound to one device: the library's
 * main entry point.
 *
 * Typical use:
 * @code
 *   PodAttention pod(gpusim::GpuSpec::A100Sxm80GB());
 *   auto batch = kernels::HybridBatch::Make(shape, 1024, 12288, 80,
 *                                           12288);
 *   auto result = pod.Run(batch);               // POD backend
 *   auto serial = pod.Run(batch, Backend::kFaSerial);
 * @endcode
 */
class PodAttention
{
  public:
    explicit PodAttention(gpusim::GpuSpec spec,
                          AttnRunOptions options = AttnRunOptions());

    /** Run a hybrid batch with the POD backend (or any other). */
    AttnRunResult Run(const kernels::HybridBatch& batch,
                      Backend backend = Backend::kPod) const;

    /** Speedup of POD over FA_Serial for a batch (1.0 = parity). */
    double SpeedupOverSerial(const kernels::HybridBatch& batch) const;

    const gpusim::GpuSpec& Spec() const { return spec_; }
    AttnRunOptions& Options() { return options_; }

  private:
    gpusim::GpuSpec spec_;
    AttnRunOptions options_;
};

}  // namespace pod::core

#endif  // POD_CORE_ATTENTION_H
