/**
 * @file
 * Implementation of POD-Attention kernel assembly.
 */
#include "core/pod_kernel.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/math_util.h"

namespace pod::core {

namespace {

using kernels::GeomOptions;
using kernels::TileConfig;
using kernels::UnitGeometry;

/** Prefill base CTA count (before splits) for a tile choice. */
int
PrefillBaseCtas(const kernels::HybridBatch& batch, const TileConfig& tile)
{
    if (!batch.HasPrefill()) return 0;
    int ctas = 0;
    for (const auto& p : batch.prefills) {
        ctas += batch.shape.num_q_heads * CeilDiv(p.chunk_len, tile.tile_q);
    }
    return ctas;
}

/**
 * Build the persistent-threads variant of the fused kernel (paper
 * S4.4): only enough CTAs to fill the device once; SM-aware tickets
 * decide each CTA's initial op; as a lane's work item completes it
 * pulls the next queued item of the same op. The paper reports this
 * performs on par with CTA-parallel fusion once combined with
 * SM-aware scheduling.
 */
gpusim::KernelDesc
MakePersistentPodKernel(const PodPlan& plan, const gpusim::GpuSpec& spec,
                        std::vector<gpusim::CtaWork> prefill_works,
                        std::vector<gpusim::CtaWork> decode_works)
{
    struct State
    {
        /** Flat per-op unit queues: [0] prefill, [1] decode. */
        std::vector<gpusim::WorkUnit> units[2];
        size_t next[2] = {0, 0};
        /** Units a CTA of each op hosts (prefill 1, decode lanes). */
        size_t lanes[2] = {1, 1};
        std::vector<int> sm_counter;
        kernels::SmAwarePolicy policy;

        /** Pop one unit of `op`, or of the other op if drained. */
        bool
        Pop(int op, gpusim::WorkUnit* out)
        {
            if (next[op] >= units[op].size()) return false;
            *out = std::move(units[op][next[op]++]);
            return true;
        }
    };
    auto state = std::make_shared<State>();
    for (auto& work : prefill_works) {
        for (auto& unit : work.units) {
            state->units[0].push_back(std::move(unit));
        }
    }
    size_t decode_lanes = 1;
    for (auto& work : decode_works) {
        decode_lanes = std::max(decode_lanes, work.units.size());
        for (auto& unit : work.units) {
            state->units[1].push_back(std::move(unit));
        }
    }
    state->lanes[1] = decode_lanes;
    state->sm_counter.assign(static_cast<size_t>(spec.num_sms), 0);
    // The ticket cycle must fit within one SM's slot count, or the
    // minority op would never receive an initial CTA.
    state->policy = kernels::SmAwarePolicy::Proportional(
        plan.policy.ratio_a, plan.policy.ratio_b,
        std::max(2, plan.ctas_per_sm));

    int total_work_ctas =
        static_cast<int>(prefill_works.size() + decode_works.size());
    int slots = spec.num_sms * plan.ctas_per_sm;

    gpusim::KernelDesc kernel;
    kernel.name = "pod_attention_persistent";
    kernel.resources = plan.resources;
    kernel.cta_count = std::min(slots, total_work_ctas);
    kernel.max_ctas_per_sm = plan.ctas_per_sm;
    kernel.assign = [state](int /*idx*/, int sm_id) -> gpusim::CtaWork {
        State& s = *state;
        int ratio = s.policy.ratio_a + s.policy.ratio_b;
        int ticket = s.sm_counter[static_cast<size_t>(sm_id)]++ % ratio;
        int op = (ticket < s.policy.ratio_a) ? 0 : 1;
        if (s.next[op] >= s.units[op].size()) op = 1 - op;
        gpusim::CtaWork work;
        for (size_t lane = 0; lane < s.lanes[op]; ++lane) {
            gpusim::WorkUnit unit;
            if (!s.Pop(op, &unit)) break;
            work.units.push_back(std::move(unit));
        }
        return work;  // may be empty if queues drained (retires at once)
    };
    kernel.refill = [state](int /*sm_id*/, gpusim::OpClass lane_op,
                            gpusim::WorkUnit* next) -> bool {
        State& s = *state;
        int op = lane_op == gpusim::OpClass::kPrefill ? 0 : 1;
        // Pull the lane's own op first; fall through to the other op
        // when drained ("persistent threads pull the right type of
        // work as necessary", paper S4.4) so no work is stranded.
        if (s.Pop(op, next)) return true;
        return s.Pop(1 - op, next);
    };
    return kernel;
}

}  // namespace

const char*
SchedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::kProportional: return "proportional";
      case SchedPolicy::kFiftyFifty: return "50:50";
    }
    return "unknown";
}

const char*
SplitPolicyName(SplitPolicy policy)
{
    switch (policy) {
      case SplitPolicy::kLimited: return "limited";
      case SplitPolicy::kVanilla: return "vanilla";
    }
    return "unknown";
}

int
ChooseCtasPerSm(const kernels::HybridBatch& batch,
                const gpusim::GpuSpec& spec, const PodOptions& options)
{
    if (options.ctas_per_sm == CtasPerSm::kTwo) return 2;
    if (options.ctas_per_sm == CtasPerSm::kFour) return 4;

    // Heuristic (paper S4.2.2): compare the prefill's tensor-bound
    // runtime against the decode's bandwidth-bound runtime. Long
    // contexts make prefill dominate -> larger tiles (2 CTAs/SM);
    // decode-heavy batches benefit from finer co-location (4).
    double prefill_flops = 0.0;
    for (const auto& p : batch.prefills) {
        // Causal FLOPs of the chunk against its full context.
        double scores =
            static_cast<double>(p.chunk_len) * p.QueryOffset() +
            0.5 * static_cast<double>(p.chunk_len) * p.chunk_len;
        prefill_flops +=
            4.0 * scores * batch.shape.head_dim * batch.shape.num_q_heads;
    }
    double decode_bytes = static_cast<double>(batch.decode.TotalContext()) *
                          batch.shape.head_dim * 2.0 * kernels::kElemBytes *
                          batch.shape.num_kv_heads;
    double prefill_time = prefill_flops / spec.TotalTensorFlops();
    double decode_time = decode_bytes / spec.hbm_bandwidth;
    return prefill_time > decode_time ? 2 : 4;
}

gpusim::KernelDesc
BuildPodKernel(const kernels::HybridBatch& batch,
               const gpusim::GpuSpec& spec, const PodOptions& options,
               PodPlan* plan_out)
{
    batch.Validate();
    POD_CHECK_ARG(batch.HasPrefill() && batch.HasDecode(),
                  "POD fused kernel needs both prefill and decode work; "
                  "use the backend dispatcher for degenerate batches");
    POD_CHECK_ARG(options.virtual_ctas_per_physical >= 1,
                  "need at least one virtual CTA per physical CTA");

    PodPlan plan;
    plan.ctas_per_sm = ChooseCtasPerSm(batch, spec, options);
    plan.prefill_tile = plan.ctas_per_sm == 2 ? kernels::PrefillTileLarge()
                                              : kernels::PrefillTileSmall();

    // ---- prefill side: limited KV splits (S4.2.4) ----
    int base = PrefillBaseCtas(batch, plan.prefill_tile);
    int max_kv = 0;
    for (const auto& p : batch.prefills) max_kv = std::max(max_kv, p.kv_len);
    plan.prefill_splits =
        options.split_policy == SplitPolicy::kLimited
            ? kernels::LimitedPrefillSplits(base, max_kv, spec.num_sms)
            : kernels::VanillaPrefillSplits(base, max_kv, spec.num_sms);

    GeomOptions prefill_opts;
    prefill_opts.tile = plan.prefill_tile;
    prefill_opts.num_splits = plan.prefill_splits;

    std::vector<gpusim::CtaWork> prefill_works;
    for (const auto& p : batch.prefills) {
        UnitGeometry geom =
            kernels::BuildPrefillUnits(batch.shape, p, prefill_opts);
        plan.useful_tensor_flops += geom.useful_tensor_flops;
        plan.issued_tensor_flops += geom.issued_tensor_flops;
        plan.mem_bytes += geom.mem_bytes;
        for (auto& unit : geom.units) {
            gpusim::CtaWork work;
            work.units.push_back(std::move(unit));
            prefill_works.push_back(std::move(work));
        }
    }
    plan.prefill_ctas = static_cast<int>(prefill_works.size());

    // ---- decode side: shrunken tile, virtual CTAs (S4.2.1/S4.2.3) ----
    int decode_base = batch.decode.BatchSize() * batch.shape.num_kv_heads;
    int min_ctx = *std::min_element(batch.decode.context_lens.begin(),
                                    batch.decode.context_lens.end());
    // Fill the slots prefill leaves free, counting virtual units.
    int slots = spec.num_sms * plan.ctas_per_sm;
    int free_slots = std::max(slots - plan.prefill_ctas, spec.num_sms);
    plan.decode_splits = kernels::PodDecodeSplits(
        decode_base, min_ctx,
        free_slots * options.virtual_ctas_per_physical);

    GeomOptions decode_opts;
    decode_opts.tile = kernels::DecodeTileVirtual();
    decode_opts.num_splits = plan.decode_splits;

    UnitGeometry decode_geom =
        kernels::BuildDecodeUnits(batch.shape, batch.decode, decode_opts);
    plan.useful_tensor_flops += decode_geom.useful_tensor_flops;
    plan.issued_tensor_flops += decode_geom.issued_tensor_flops;
    plan.mem_bytes += decode_geom.mem_bytes;
    plan.decode_virtual_units = static_cast<int>(decode_geom.units.size());

    std::vector<gpusim::CtaWork> decode_works;
    int per_cta = options.virtual_ctas_per_physical;
    for (size_t i = 0; i < decode_geom.units.size();
         i += static_cast<size_t>(per_cta)) {
        gpusim::CtaWork work;
        size_t end = std::min(i + static_cast<size_t>(per_cta),
                              decode_geom.units.size());
        for (size_t j = i; j < end; ++j) {
            work.units.push_back(std::move(decode_geom.units[j]));
        }
        decode_works.push_back(std::move(work));
    }
    plan.decode_physical_ctas = static_cast<int>(decode_works.size());

    // ---- uniform footprint: decode's virtual CTAs are sized so the
    // physical CTA matches the prefill footprint (S4.2.3/S4.3) ----
    plan.resources.threads =
        std::max(plan.prefill_tile.Threads(), per_cta * 32);
    plan.resources.shared_mem_bytes =
        plan.prefill_tile.SmemBytes(batch.shape.head_dim);

    plan.policy = options.policy == SchedPolicy::kFiftyFifty
                      ? kernels::SmAwarePolicy::FiftyFifty()
                      : kernels::SmAwarePolicy::Proportional(
                            plan.prefill_ctas, plan.decode_physical_ctas,
                            std::max(4, plan.ctas_per_sm));

    gpusim::KernelDesc kernel;
    if (options.persistent) {
        kernel = MakePersistentPodKernel(plan, spec,
                                         std::move(prefill_works),
                                         std::move(decode_works));
    } else {
        kernel = kernels::MakeSmAwareKernel(
            "pod_attention", plan.resources, std::move(prefill_works),
            std::move(decode_works), plan.policy, spec.num_sms,
            plan.ctas_per_sm);
    }

    if (plan_out != nullptr) {
        *plan_out = plan;
    }
    return kernel;
}

}  // namespace pod::core
