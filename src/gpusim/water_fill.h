/**
 * @file
 * Max-min fair (water-filling) allocation, the rate-sharing primitive
 * of the fluid engine. Exposed in its own header so the fairness
 * edge cases (zero demands, capacity exhaustion, equal caps) are
 * directly testable instead of only through full simulations.
 */
#ifndef POD_GPUSIM_WATER_FILL_H
#define POD_GPUSIM_WATER_FILL_H

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace pod::gpusim {

/**
 * Max-min fair allocation of a capacity among demands with caps.
 *
 * Walking the caps in ascending order, each demand receives
 * min(cap, remaining / demands_left): a demand smaller than the fair
 * share is fully served and its slack raises everyone else's share; a
 * demand at or above the share is clipped to it.
 *
 * @param caps (cap, unit id) pairs, sorted ascending by cap.
 * @param capacity total capacity to distribute.
 * @param set_rate callback invoked as set_rate(unit_id, allocation).
 */
template <typename SetRate>
void
WaterFill(const std::vector<std::pair<double, int>>& caps, double capacity,
          SetRate set_rate)
{
    std::size_t n = caps.size();
    for (std::size_t i = 0; i < n; ++i) {
        double share = capacity / static_cast<double>(n - i);
        double give = std::min(caps[i].first, share);
        set_rate(caps[i].second, give);
        capacity -= give;
    }
}

/**
 * Sort (cap, unit id) pairs ascending. Keys are unique (unit ids
 * differ), so any comparison sort yields the identical sequence;
 * insertion sort beats std::sort at the handful-of-residents sizes
 * the per-SM water-fill sees every event.
 */
inline void
SortCaps(std::vector<std::pair<double, int>>& caps)
{
    if (caps.size() > 24) {
        std::sort(caps.begin(), caps.end());
        return;
    }
    for (std::size_t i = 1; i < caps.size(); ++i) {
        std::pair<double, int> key = caps[i];
        std::size_t j = i;
        for (; j > 0 && key < caps[j - 1]; --j) {
            caps[j] = caps[j - 1];
        }
        caps[j] = key;
    }
}

/**
 * Max-min allocation with the under-subscribed shortcut both engine
 * cores use: when the summed demand clears the capacity with margin,
 * every demand receives its cap — exactly what the sequential
 * water-fill would compute — and the sort is skipped. Near or above
 * capacity the exact sorted water-fill runs, so shares perturbed by
 * summation rounding can never flip an allocation.
 *
 * @param caps (cap, unit id) pairs in any order; sorted in place when
 *        the water-fill runs.
 * @param demand_sum sum of all caps (accumulated by the caller while
 *        building the list).
 * @param capacity total capacity to distribute.
 * @param undersubscribed_margin relative margin (< 1) under which the
 *        shortcut is trusted.
 * @param set_rate callback invoked as set_rate(unit_id, allocation).
 */
template <typename SetRate>
void
AllocateMaxMin(std::vector<std::pair<double, int>>& caps, double demand_sum,
               double capacity, double undersubscribed_margin,
               SetRate set_rate)
{
    if (demand_sum <= capacity * undersubscribed_margin) {
        for (const auto& [cap, uid] : caps) {
            set_rate(uid, cap);
        }
        return;
    }
    SortCaps(caps);
    WaterFill(caps, capacity, set_rate);
}

}  // namespace pod::gpusim

#endif  // POD_GPUSIM_WATER_FILL_H
