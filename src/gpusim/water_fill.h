/**
 * @file
 * Max-min fair (water-filling) allocation, the rate-sharing primitive
 * of the fluid engine. Exposed in its own header so the fairness
 * edge cases (zero demands, capacity exhaustion, equal caps) are
 * directly testable instead of only through full simulations.
 */
#ifndef POD_GPUSIM_WATER_FILL_H
#define POD_GPUSIM_WATER_FILL_H

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace pod::gpusim {

/**
 * Max-min fair allocation of a capacity among demands with caps.
 *
 * Walking the caps in ascending order, each demand receives
 * min(cap, remaining / demands_left): a demand smaller than the fair
 * share is fully served and its slack raises everyone else's share; a
 * demand at or above the share is clipped to it.
 *
 * @param caps (cap, unit id) pairs, sorted ascending by cap.
 * @param capacity total capacity to distribute.
 * @param set_rate callback invoked as set_rate(unit_id, allocation).
 */
template <typename SetRate>
void
WaterFill(const std::vector<std::pair<double, int>>& caps, double capacity,
          SetRate set_rate)
{
    std::size_t n = caps.size();
    for (std::size_t i = 0; i < n; ++i) {
        double share = capacity / static_cast<double>(n - i);
        double give = std::min(caps[i].first, share);
        set_rate(caps[i].second, give);
        capacity -= give;
    }
}

}  // namespace pod::gpusim

#endif  // POD_GPUSIM_WATER_FILL_H
