/**
 * @file
 * Export gpusim kernel timings as sim-time trace spans
 * (docs/OBSERVABILITY.md). The GPU simulator already records
 * per-launch start/end times in SimResult; this adapter replays them
 * into a TraceRecorder so a kernel-level run can sit on a Perfetto
 * timeline next to the serving layers — no hot-path hooks, zero cost
 * unless called.
 */
#ifndef POD_GPUSIM_TRACE_EXPORT_H
#define POD_GPUSIM_TRACE_EXPORT_H

#include "common/telemetry/trace.h"
#include "gpusim/sim_result.h"

namespace pod::gpusim {

/**
 * Record one span per kernel launch (submission order, interned
 * kernel names) onto the recorder's engine track, offset by
 * `t0_seconds` (e.g. the iteration's start time when nesting a
 * kernel-level result under a serving trace).
 */
void ExportKernelSpans(const SimResult& result,
                       telemetry::TraceRecorder& recorder,
                       double t0_seconds = 0.0);

}  // namespace pod::gpusim

#endif  // POD_GPUSIM_TRACE_EXPORT_H
