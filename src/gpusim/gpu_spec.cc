/**
 * @file
 * GpuSpec presets and validation.
 */
#include "gpusim/gpu_spec.h"

#include "common/logging.h"

namespace pod::gpusim {

void
GpuSpec::Validate() const
{
    POD_CHECK_ARG(num_sms > 0, "GPU must have at least one SM");
    POD_CHECK_ARG(tensor_flops_per_sm > 0, "tensor throughput must be > 0");
    POD_CHECK_ARG(cuda_flops_per_sm > 0, "CUDA throughput must be > 0");
    POD_CHECK_ARG(hbm_bandwidth > 0, "HBM bandwidth must be > 0");
    POD_CHECK_ARG(sm_bandwidth_cap > 0, "per-SM bandwidth cap must be > 0");
    POD_CHECK_ARG(warp_bandwidth_cap > 0,
                  "per-warp bandwidth cap must be > 0");
    POD_CHECK_ARG(shared_mem_per_sm > 0, "shared memory must be > 0");
    POD_CHECK_ARG(max_threads_per_sm >= 32, "SM must host at least a warp");
    POD_CHECK_ARG(max_ctas_per_sm > 0, "SM must host at least one CTA");
    POD_CHECK_ARG(warps_per_tensor_saturation > 0,
                  "tensor saturation warp count must be > 0");
    POD_CHECK_ARG(warps_per_cuda_saturation > 0,
                  "CUDA saturation warp count must be > 0");
    POD_CHECK_ARG(pcie_bandwidth > 0, "PCIe bandwidth must be > 0");
}

GpuSpec
GpuSpec::A100Sxm80GB()
{
    GpuSpec spec;
    spec.name = "A100-SXM4-80GB";
    // Defaults in the struct already describe the A100; restated here
    // explicitly so the preset is self-contained even if defaults move.
    spec.num_sms = 108;
    spec.tensor_flops_per_sm = 312e12 * 0.65 / 108.0;
    spec.cuda_flops_per_sm = 19.5e12 * 0.7 / 108.0;
    spec.hbm_bandwidth = 2039e9 * 0.85;
    spec.sm_bandwidth_cap = 48e9;
    spec.warp_bandwidth_cap = 6e9;
    spec.shared_mem_per_sm = 163.0 * 1024.0;
    spec.max_threads_per_sm = 2048;
    spec.max_ctas_per_sm = 32;
    spec.hbm_capacity = 80.0 * 1024.0 * 1024.0 * 1024.0;
    spec.nvlink_bandwidth = 600e9;
    spec.pcie_bandwidth = 32e9 * 0.8;  // PCIe Gen4 x16
    return spec;
}

GpuSpec
GpuSpec::H100Sxm80GB()
{
    GpuSpec spec;
    spec.name = "H100-SXM5-80GB";
    spec.num_sms = 132;
    // Same achievable-efficiency factors as the A100 preset so the
    // specs stay comparable: 0.65 on dense tensor peak (989 TFLOPS
    // FP16), 0.7 on FP32 peak (67 TFLOPS), 0.85 on HBM3 peak
    // (3352 GB/s).
    spec.tensor_flops_per_sm = 989e12 * 0.65 / 132.0;
    spec.cuda_flops_per_sm = 67e12 * 0.7 / 132.0;
    spec.hbm_bandwidth = 3352e9 * 0.85;
    // Per-SM/per-warp caps scaled from the A100 values by the HBM
    // bandwidth ratio (Hopper widens the LSU path with the memory).
    spec.sm_bandwidth_cap = 75e9;
    spec.warp_bandwidth_cap = 8e9;
    spec.shared_mem_per_sm = 227.0 * 1024.0;
    spec.max_threads_per_sm = 2048;
    spec.max_ctas_per_sm = 32;
    spec.hbm_capacity = 80.0 * 1024.0 * 1024.0 * 1024.0;
    spec.nvlink_bandwidth = 900e9;
    spec.pcie_bandwidth = 64e9 * 0.8;  // PCIe Gen5 x16
    // Component split of the 700 W SXM5 TDP, same proportions as the
    // A100 model.
    spec.idle_power_w = 110.0;
    spec.tensor_power_w = 330.0;
    spec.cuda_power_w = 70.0;
    spec.hbm_power_w = 190.0;
    return spec;
}

GpuSpec
GpuSpec::RtxA6000()
{
    GpuSpec spec;
    spec.name = "RTX-A6000";
    spec.num_sms = 84;
    // 154.8 TFLOPS dense FP16 tensor (FP32 accumulate) and 38.7
    // TFLOPS FP32 per the datasheet, with the shared efficiency
    // factors; 768 GB/s GDDR6 (GDDR achieves a slightly lower
    // fraction of peak than HBM -- 0.8).
    spec.tensor_flops_per_sm = 154.8e12 * 0.65 / 84.0;
    spec.cuda_flops_per_sm = 38.7e12 * 0.7 / 84.0;
    spec.hbm_bandwidth = 768e9 * 0.80;
    spec.sm_bandwidth_cap = 18e9;
    spec.warp_bandwidth_cap = 4e9;
    // GA102 keeps 128 KiB unified L1/shared per SM; up to 100 KiB is
    // configurable as shared memory.
    spec.shared_mem_per_sm = 100.0 * 1024.0;
    spec.max_threads_per_sm = 1536;
    spec.max_ctas_per_sm = 16;
    spec.hbm_capacity = 48.0 * 1024.0 * 1024.0 * 1024.0;
    // NVLink3 bridge between a pair of A6000s.
    spec.nvlink_bandwidth = 112.5e9;
    spec.pcie_bandwidth = 32e9 * 0.8;  // PCIe Gen4 x16
    // Component split of the 300 W TDP.
    spec.idle_power_w = 60.0;
    spec.tensor_power_w = 130.0;
    spec.cuda_power_w = 40.0;
    spec.hbm_power_w = 70.0;
    return spec;
}

GpuSpec
GpuSpec::TestGpu8Sm()
{
    GpuSpec spec;
    spec.name = "test-8sm";
    spec.num_sms = 8;
    // Round numbers so tests can assert exact times:
    // 1 TFLOP/s tensor, 0.25 TFLOP/s CUDA per SM; 64 GB/s HBM total.
    spec.tensor_flops_per_sm = 1e12;
    spec.cuda_flops_per_sm = 0.25e12;
    spec.hbm_bandwidth = 64e9;
    spec.sm_bandwidth_cap = 16e9;
    spec.warp_bandwidth_cap = 4e9;
    spec.shared_mem_per_sm = 128.0 * 1024.0;
    spec.max_threads_per_sm = 1024;
    spec.max_ctas_per_sm = 8;
    spec.hbm_capacity = 16.0 * 1024.0 * 1024.0 * 1024.0;
    spec.pcie_bandwidth = 8e9;  // round number for exact-time tests
    return spec;
}

}  // namespace pod::gpusim
