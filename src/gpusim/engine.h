/**
 * @file
 * The fluid GPU execution engine.
 *
 * An event-driven simulator that models kernel execution at CTA
 * granularity. Between events, every resident work unit draws
 * tensor-core throughput, CUDA-core throughput and HBM bandwidth at
 * rates determined by water-filling the resource hierarchy:
 *
 *  - per-SM tensor/CUDA capacity shared max-min among resident units
 *    (capped by each unit's warp count);
 *  - HBM bandwidth limited per warp (outstanding loads), per SM, and
 *    globally, shared proportionally.
 *
 * The hardware CTA scheduler dispatches CTAs in stream-priority order
 * to SMs chosen round-robin among those with room (first-fit from a
 * rotating pointer), which reproduces the real scheduler's wave
 * behaviour: wave quantization, backfill, and the *absence* of any
 * SM-level co-location guarantee that motivates POD-Attention's
 * SM-aware scheduling.
 */
#ifndef POD_GPUSIM_ENGINE_H
#define POD_GPUSIM_ENGINE_H

#include <vector>

#include "common/rng.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/sim_result.h"
#include "gpusim/work.h"

namespace pod::gpusim {

/**
 * Which event core executes the simulation (docs/DESIGN.md S3).
 *
 * Both cores share every discrete decision (placement, dispatch order,
 * phase/refill transitions); they differ only in how unit progress is
 * advanced between events:
 *
 *  - kAnalytic (default): closed-form integration. Rates are frozen
 *    per interval and completion times come from two event heaps, so
 *    an event costs O(touched SM) instead of O(active units). Pacing
 *    caps refresh at every transition on the unit's SM rather than at
 *    every global event -- a deliberate, tolerance-banded model
 *    relaxation (docs/DESIGN.md S3.2).
 *  - kExactOracle: the stepwise PR-3 engine, bit-identical to the
 *    seed simulator. Every exact golden in the regression suites pins
 *    this core, and the analytic core is cross-checked against it.
 */
enum class EngineCore
{
    kAnalytic = 0,
    kExactOracle = 1,
};

/** Engine configuration. */
struct SimOptions
{
    /** Seed for placement tie-breaking. */
    uint64_t seed = 1;

    /** Record per-CTA completion times in the result. */
    bool record_cta_times = false;

    /**
     * Probability that the hardware scheduler skips an otherwise
     * chosen SM, modelling placement nondeterminism. 0 disables.
     */
    double placement_jitter = 0.0;

    /**
     * Fixed per-kernel launch overhead in seconds, charged when a
     * kernel begins dispatching after all prior work in its stream.
     */
    double kernel_launch_overhead = 3e-6;

    /** Event core to run (see EngineCore). */
    EngineCore core = EngineCore::kAnalytic;
};

/**
 * Runs kernel launches on a simulated GPU and reports timing,
 * utilization and energy.
 *
 * The engine is stateless across Run() calls; each call simulates an
 * idle GPU executing the given launches to completion.
 */
class FluidEngine
{
  public:
    /** Construct for a device; the spec is validated. */
    explicit FluidEngine(GpuSpec spec, SimOptions options = SimOptions());

    /**
     * Simulate the launches to completion.
     * @param launches kernels with stream assignments; kernels within
     *        a stream serialize, different streams may overlap.
     */
    SimResult Run(const std::vector<KernelLaunch>& launches);

    /** Convenience: run a single kernel on stream 0. */
    SimResult RunKernel(const KernelDesc& kernel);

    /** Device spec in use. */
    const GpuSpec& Spec() const { return spec_; }

  private:
    GpuSpec spec_;
    SimOptions options_;
};

}  // namespace pod::gpusim

#endif  // POD_GPUSIM_ENGINE_H
