/**
 * @file
 * Implementation of the fluid GPU execution engine.
 */
#include "gpusim/engine.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace pod::gpusim {

namespace {

/** Work below this many FLOPs/bytes counts as finished. */
constexpr double kDoneEps = 1e-3;

/** Upper bound on simulation events, guards against engine bugs. */
constexpr long kMaxEvents = 200'000'000;

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Mutable execution state of one work unit. */
struct UnitState
{
    int cta = -1;
    int sm = -1;
    OpClass op = OpClass::kOther;
    int warps = 4;
    double mem_bw_cap = 0.0;
    std::vector<Phase> phases;
    size_t phase_idx = 0;
    double rem_tensor = 0.0;
    double rem_cuda = 0.0;
    double rem_mem = 0.0;
    bool done = false;
    // Rates allocated for the current interval (scratch).
    double r_tensor = 0.0;
    double r_cuda = 0.0;
    double r_mem = 0.0;

    /** Load phase work into the remaining counters; false if no more
     * non-empty phases. */
    bool
    LoadNextPhase()
    {
        while (phase_idx < phases.size()) {
            const Phase& p = phases[phase_idx];
            ++phase_idx;
            if (!p.Empty()) {
                rem_tensor = p.tensor_flops;
                rem_cuda = p.cuda_flops;
                rem_mem = p.mem_bytes;
                return true;
            }
        }
        return false;
    }

    /** True if the current phase is fully served. */
    bool
    PhaseComplete() const
    {
        return rem_tensor <= kDoneEps && rem_cuda <= kDoneEps &&
               rem_mem <= kDoneEps;
    }
};

/** Mutable execution state of one CTA. */
struct CtaState
{
    int kernel = -1;
    int sm = -1;
    int threads = 0;
    double smem = 0.0;
    int remaining_units = 0;
};

/** Mutable state of one SM. */
struct SmState
{
    int free_threads = 0;
    double free_smem = 0.0;
    int resident_ctas = 0;
    /** Resident CTA count per kernel (indexed by kernel id). */
    std::vector<int> kernel_resident;
    /** Ids of active (not done) units on this SM. */
    std::vector<int> active_units;
};

/** Mutable state of one kernel launch. */
struct KernelState
{
    const KernelDesc* desc = nullptr;
    int stream = 0;
    int dispatched = 0;
    int completed_ctas = 0;
    bool started = false;
    bool finished = false;
    double ready_time = kInf;
    double start_time = 0.0;
    double end_time = 0.0;
};

/** One in-order stream of kernels. */
struct StreamState
{
    std::vector<int> kernels;
    size_t head = 0;
};

/**
 * Max-min fair allocation of a capacity among demands with caps.
 * @param caps (cap, unit id) pairs, sorted ascending by cap.
 * @param capacity total capacity to distribute.
 * @param set_rate callback invoked as set_rate(unit_id, allocation).
 */
template <typename SetRate>
void
WaterFill(const std::vector<std::pair<double, int>>& caps, double capacity,
          SetRate set_rate)
{
    size_t n = caps.size();
    for (size_t i = 0; i < n; ++i) {
        double share = capacity / static_cast<double>(n - i);
        double give = std::min(caps[i].first, share);
        set_rate(caps[i].second, give);
        capacity -= give;
    }
}

/** Full simulation state; one instance per FluidEngine::Run call. */
class Simulation
{
  public:
    Simulation(const GpuSpec& spec, const SimOptions& options,
               const std::vector<KernelLaunch>& launches)
        : spec_(spec), options_(options), rng_(options.seed)
    {
        sms_.resize(static_cast<size_t>(spec_.num_sms));
        for (auto& sm : sms_) {
            sm.free_threads = spec_.max_threads_per_sm;
            sm.free_smem = spec_.shared_mem_per_sm;
            sm.kernel_resident.assign(launches.size(), 0);
        }
        kernels_.reserve(launches.size());
        int max_stream = 0;
        for (const auto& launch : launches) {
            max_stream = std::max(max_stream, launch.stream);
        }
        streams_.resize(static_cast<size_t>(max_stream) + 1);
        for (size_t i = 0; i < launches.size(); ++i) {
            KernelState ks;
            ks.desc = &launches[i].kernel;
            ks.stream = launches[i].stream;
            POD_CHECK_ARG(ks.desc->cta_count >= 0,
                          "kernel CTA count must be >= 0");
            POD_CHECK_ARG(ks.desc->cta_count == 0 || ks.desc->assign,
                          "kernel with CTAs needs an assign function");
            kernels_.push_back(ks);
            streams_[static_cast<size_t>(launches[i].stream)]
                .kernels.push_back(static_cast<int>(i));
        }
        // Arm the head kernel of every stream.
        for (auto& stream : streams_) {
            ArmHead(stream, 0.0);
        }
    }

    SimResult Run();

  private:
    /** Make the stream-head kernel dispatchable after launch overhead. */
    void
    ArmHead(StreamState& stream, double now)
    {
        while (stream.head < stream.kernels.size()) {
            KernelState& ks =
                kernels_[static_cast<size_t>(stream.kernels[stream.head])];
            ks.ready_time = now + options_.kernel_launch_overhead;
            if (ks.desc->cta_count > 0) {
                break;
            }
            // Empty kernel: completes as soon as it becomes ready.
            ks.started = true;
            ks.finished = true;
            ks.start_time = ks.ready_time;
            ks.end_time = ks.ready_time;
            ++stream.head;
        }
    }

    /** True if the CTA footprint fits on the SM right now. */
    bool
    Fits(const SmState& sm, const KernelDesc& desc, int kernel_id) const
    {
        if (sm.free_threads < desc.resources.threads) return false;
        if (sm.free_smem < desc.resources.shared_mem_bytes) return false;
        if (sm.resident_ctas >= spec_.max_ctas_per_sm) return false;
        if (desc.max_ctas_per_sm > 0 &&
            sm.kernel_resident[static_cast<size_t>(kernel_id)] >=
                desc.max_ctas_per_sm) {
            return false;
        }
        return true;
    }

    /**
     * Choose an SM for the next CTA: first fit scanning round-robin
     * from a rotating pointer (models the hardware work distributor),
     * optionally skipping to the next fit with placement_jitter
     * probability. Returns -1 if nothing fits.
     */
    int
    PickSm(const KernelDesc& desc, int kernel_id)
    {
        int first_fit = -1;
        int second_fit = -1;
        for (int off = 0; off < spec_.num_sms; ++off) {
            int sm = (rr_pointer_ + off) % spec_.num_sms;
            if (Fits(sms_[static_cast<size_t>(sm)], desc, kernel_id)) {
                if (first_fit < 0) {
                    first_fit = sm;
                    if (options_.placement_jitter <= 0.0) break;
                } else {
                    second_fit = sm;
                    break;
                }
            }
        }
        if (first_fit < 0) return -1;
        int chosen = first_fit;
        if (second_fit >= 0 && rng_.Bernoulli(options_.placement_jitter)) {
            chosen = second_fit;
        }
        rr_pointer_ = (chosen + 1) % spec_.num_sms;
        return chosen;
    }

    /** Place one CTA of the kernel; false if no SM has room. */
    bool
    DispatchOne(int kernel_id, double now)
    {
        KernelState& ks = kernels_[static_cast<size_t>(kernel_id)];
        const KernelDesc& desc = *ks.desc;
        int sm_id = PickSm(desc, kernel_id);
        if (sm_id < 0) return false;

        SmState& sm = sms_[static_cast<size_t>(sm_id)];
        sm.free_threads -= desc.resources.threads;
        sm.free_smem -= desc.resources.shared_mem_bytes;
        sm.resident_ctas += 1;
        sm.kernel_resident[static_cast<size_t>(kernel_id)] += 1;

        if (!ks.started) {
            ks.started = true;
            ks.start_time = now;
        }

        CtaWork work = desc.assign(ks.dispatched, sm_id);
        ks.dispatched += 1;

        int cta_id = static_cast<int>(ctas_.size());
        CtaState cta;
        cta.kernel = kernel_id;
        cta.sm = sm_id;
        cta.threads = desc.resources.threads;
        cta.smem = desc.resources.shared_mem_bytes;
        cta.remaining_units = 0;
        ctas_.push_back(cta);
        ++total_ctas_;

        for (auto& unit : work.units) {
            UnitState us;
            us.cta = cta_id;
            us.sm = sm_id;
            us.op = unit.op;
            us.warps = std::max(1, unit.warps);
            us.mem_bw_cap = unit.mem_bw_cap;
            us.phases = std::move(unit.phases);
            result_.per_op[static_cast<size_t>(us.op)].unit_count += 1;
            if (!us.LoadNextPhase()) {
                // Unit with no work: completes immediately.
                continue;
            }
            int unit_id = static_cast<int>(units_.size());
            units_.push_back(std::move(us));
            active_units_.push_back(unit_id);
            sms_[static_cast<size_t>(sm_id)].active_units.push_back(unit_id);
            ctas_[static_cast<size_t>(cta_id)].remaining_units += 1;
            op_active_[static_cast<size_t>(units_.back().op)] += 1;
        }

        if (ctas_[static_cast<size_t>(cta_id)].remaining_units == 0) {
            // CTA carried no work at all; retire it on the spot.
            RetireCta(cta_id, now);
        }
        return true;
    }

    /**
     * Dispatch as many ready CTAs as fit, draining streams in
     * submission order (earlier streams get priority, later streams
     * backfill) -- the behaviour the paper observes for CUDA streams.
     */
    void
    DispatchAll(double now)
    {
        for (auto& stream : streams_) {
            while (stream.head < stream.kernels.size()) {
                int kid = stream.kernels[stream.head];
                KernelState& ks = kernels_[static_cast<size_t>(kid)];
                if (now + 1e-15 < ks.ready_time) break;
                if (ks.dispatched >= ks.desc->cta_count) break;
                if (!DispatchOne(kid, now)) break;
            }
        }
    }

    /** Free a finished CTA's resources and advance kernel/stream state. */
    void
    RetireCta(int cta_id, double now)
    {
        CtaState& cta = ctas_[static_cast<size_t>(cta_id)];
        SmState& sm = sms_[static_cast<size_t>(cta.sm)];
        sm.free_threads += cta.threads;
        sm.free_smem += cta.smem;
        sm.resident_ctas -= 1;
        sm.kernel_resident[static_cast<size_t>(cta.kernel)] -= 1;
        if (options_.record_cta_times) {
            result_.cta_finish_times.push_back(now);
        }

        KernelState& ks = kernels_[static_cast<size_t>(cta.kernel)];
        ks.completed_ctas += 1;
        if (ks.completed_ctas == ks.desc->cta_count) {
            ks.finished = true;
            ks.end_time = now;
            StreamState& stream = streams_[static_cast<size_t>(ks.stream)];
            // The finished kernel must be the stream head.
            POD_ASSERT(stream.head < stream.kernels.size());
            ++stream.head;
            ArmHead(stream, now);
        }
    }

    /** Compute resource rates for all active units (water-filling). */
    void ComputeRates();

    /** Earliest completion time delta at current rates (may be inf). */
    double NextEventDelta() const;

    /** Earliest pending kernel ready time (absolute; may be inf). */
    double
    NextReadyTime() const
    {
        double t = kInf;
        for (const auto& stream : streams_) {
            if (stream.head < stream.kernels.size()) {
                const KernelState& ks = kernels_[static_cast<size_t>(
                    stream.kernels[stream.head])];
                if (!ks.finished && ks.dispatched < ks.desc->cta_count) {
                    t = std::min(t, ks.ready_time);
                }
            }
        }
        return t;
    }

    /** Advance all active units by dt, accumulating accounting. */
    void Advance(double dt);

    /** Handle all units whose current phase just completed. */
    void ProcessCompletions(double now);

    const GpuSpec& spec_;
    const SimOptions& options_;
    Rng rng_;

    std::vector<SmState> sms_;
    std::vector<KernelState> kernels_;
    std::vector<StreamState> streams_;
    std::vector<CtaState> ctas_;
    std::vector<UnitState> units_;
    std::vector<int> active_units_;
    int rr_pointer_ = 0;
    int total_ctas_ = 0;

    /** Active unit count per op class (for busy-time accounting). */
    std::array<int, kNumOpClasses> op_active_ = {};

    // Served-work integrals for utilization accounting.
    double served_tensor_ = 0.0;
    double served_cuda_ = 0.0;
    double served_mem_ = 0.0;
    double energy_ = 0.0;

    SimResult result_;
};

void
Simulation::ComputeRates()
{
    // Reset rates.
    for (int uid : active_units_) {
        UnitState& u = units_[static_cast<size_t>(uid)];
        u.r_tensor = 0.0;
        u.r_cuda = 0.0;
        u.r_mem = 0.0;
    }

    // --- memory bandwidth first: per-warp cap, per-SM cap, global
    // cap. Compute allocation below is demand-aware and needs the
    // memory rates. ---
    double global_want = 0.0;
    for (auto& sm : sms_) {
        if (sm.active_units.empty()) continue;
        double sm_want = 0.0;
        for (int uid : sm.active_units) {
            UnitState& u = units_[static_cast<size_t>(uid)];
            if (u.rem_mem > kDoneEps) {
                u.r_mem = u.mem_bw_cap > 0.0
                              ? u.mem_bw_cap
                              : static_cast<double>(u.warps) *
                                    spec_.warp_bandwidth_cap;
                sm_want += u.r_mem;
            }
        }
        if (sm_want > spec_.sm_bandwidth_cap) {
            double scale = spec_.sm_bandwidth_cap / sm_want;
            for (int uid : sm.active_units) {
                units_[static_cast<size_t>(uid)].r_mem *= scale;
            }
            sm_want = spec_.sm_bandwidth_cap;
        }
        global_want += sm_want;
    }
    if (global_want > spec_.hbm_bandwidth) {
        double scale = spec_.hbm_bandwidth / global_want;
        for (int uid : active_units_) {
            units_[static_cast<size_t>(uid)].r_mem *= scale;
        }
    }

    // --- per-SM compute allocation (tensor + CUDA cores) ---
    // Demand-aware: a unit that is still streaming memory in this
    // phase only *wants* the compute rate that keeps pace with its
    // memory (its math interleaves with memory stalls); purely
    // compute-bound units want their full cap. Max-min water-fill
    // over those wants lets prefill soak the tensor cores while
    // co-located decode sips them -- the behaviour POD relies on.
    std::vector<std::pair<double, int>> caps;
    for (auto& sm : sms_) {
        if (sm.active_units.empty()) continue;

        // Tensor cores.
        caps.clear();
        for (int uid : sm.active_units) {
            UnitState& u = units_[static_cast<size_t>(uid)];
            if (u.rem_tensor > kDoneEps) {
                double cap =
                    spec_.tensor_flops_per_sm *
                    std::min(1.0, static_cast<double>(u.warps) /
                                      spec_.warps_per_tensor_saturation);
                if (u.rem_mem > kDoneEps && u.r_mem > 0.0) {
                    double paced =
                        1.1 * u.rem_tensor * u.r_mem / u.rem_mem;
                    cap = std::min(cap, paced);
                }
                caps.emplace_back(cap, uid);
            }
        }
        if (!caps.empty()) {
            std::sort(caps.begin(), caps.end());
            WaterFill(caps, spec_.tensor_flops_per_sm,
                      [this](int uid, double rate) {
                          units_[static_cast<size_t>(uid)].r_tensor = rate;
                      });
        }

        // CUDA cores.
        caps.clear();
        for (int uid : sm.active_units) {
            UnitState& u = units_[static_cast<size_t>(uid)];
            if (u.rem_cuda > kDoneEps) {
                double cap =
                    spec_.cuda_flops_per_sm *
                    std::min(1.0, static_cast<double>(u.warps) /
                                      spec_.warps_per_cuda_saturation);
                if (u.rem_mem > kDoneEps && u.r_mem > 0.0) {
                    double paced = 1.1 * u.rem_cuda * u.r_mem / u.rem_mem;
                    cap = std::min(cap, paced);
                }
                caps.emplace_back(cap, uid);
            }
        }
        if (!caps.empty()) {
            std::sort(caps.begin(), caps.end());
            WaterFill(caps, spec_.cuda_flops_per_sm,
                      [this](int uid, double rate) {
                          units_[static_cast<size_t>(uid)].r_cuda = rate;
                      });
        }
    }
}

double
Simulation::NextEventDelta() const
{
    double dt = kInf;
    for (int uid : active_units_) {
        const UnitState& u = units_[static_cast<size_t>(uid)];
        if (u.rem_tensor > kDoneEps && u.r_tensor > 0.0) {
            dt = std::min(dt, u.rem_tensor / u.r_tensor);
        }
        if (u.rem_cuda > kDoneEps && u.r_cuda > 0.0) {
            dt = std::min(dt, u.rem_cuda / u.r_cuda);
        }
        if (u.rem_mem > kDoneEps && u.r_mem > 0.0) {
            dt = std::min(dt, u.rem_mem / u.r_mem);
        }
    }
    return dt;
}

void
Simulation::Advance(double dt)
{
    double rate_tensor = 0.0;
    double rate_cuda = 0.0;
    double rate_mem = 0.0;
    for (int uid : active_units_) {
        UnitState& u = units_[static_cast<size_t>(uid)];
        auto& op = result_.per_op[static_cast<size_t>(u.op)];
        if (u.rem_tensor > kDoneEps) {
            double amount = u.r_tensor * dt;
            u.rem_tensor -= amount;
            op.tensor_flops += amount;
            rate_tensor += u.r_tensor;
        }
        if (u.rem_cuda > kDoneEps) {
            double amount = u.r_cuda * dt;
            u.rem_cuda -= amount;
            op.cuda_flops += amount;
            rate_cuda += u.r_cuda;
        }
        if (u.rem_mem > kDoneEps) {
            double amount = u.r_mem * dt;
            u.rem_mem -= amount;
            op.mem_bytes += amount;
            rate_mem += u.r_mem;
        }
    }
    served_tensor_ += rate_tensor * dt;
    served_cuda_ += rate_cuda * dt;
    served_mem_ += rate_mem * dt;

    for (int op = 0; op < kNumOpClasses; ++op) {
        if (op_active_[static_cast<size_t>(op)] > 0) {
            result_.per_op[static_cast<size_t>(op)].busy_time += dt;
        }
    }

    double tensor_util = rate_tensor / spec_.TotalTensorFlops();
    double cuda_util = rate_cuda / spec_.TotalCudaFlops();
    double mem_util = rate_mem / spec_.hbm_bandwidth;
    double power = spec_.idle_power_w + spec_.tensor_power_w * tensor_util +
                   spec_.cuda_power_w * cuda_util +
                   spec_.hbm_power_w * mem_util;
    energy_ += power * dt;
}

void
Simulation::ProcessCompletions(double now)
{
    for (size_t i = 0; i < active_units_.size();) {
        int uid = active_units_[i];
        UnitState& u = units_[static_cast<size_t>(uid)];
        if (!u.PhaseComplete()) {
            ++i;
            continue;
        }
        if (u.LoadNextPhase()) {
            ++i;
            continue;
        }
        // Unit finished entirely. Persistent kernels may refill the
        // lane with the next queued work item (paper S4.4).
        const KernelDesc* desc =
            kernels_[static_cast<size_t>(
                         ctas_[static_cast<size_t>(u.cta)].kernel)]
                .desc;
        if (desc->refill) {
            WorkUnit next;
            if (desc->refill(u.sm, u.op, &next) &&
                !next.phases.empty()) {
                auto& old_op = result_.per_op[static_cast<size_t>(u.op)];
                old_op.finish_time = std::max(old_op.finish_time, now);
                op_active_[static_cast<size_t>(u.op)] -= 1;
                u.op = next.op;
                u.warps = std::max(1, next.warps);
                u.mem_bw_cap = next.mem_bw_cap;
                u.phases = std::move(next.phases);
                u.phase_idx = 0;
                result_.per_op[static_cast<size_t>(u.op)].unit_count += 1;
                op_active_[static_cast<size_t>(u.op)] += 1;
                if (u.LoadNextPhase()) {
                    ++i;
                    continue;
                }
                // Refilled with an empty unit: fall through to the
                // retire path (it handles the new op's accounting).
            }
        }
        u.done = true;
        auto& op = result_.per_op[static_cast<size_t>(u.op)];
        op.finish_time = std::max(op.finish_time, now);
        op_active_[static_cast<size_t>(u.op)] -= 1;

        // Remove from the SM's active list.
        auto& sm_units = sms_[static_cast<size_t>(u.sm)].active_units;
        auto it = std::find(sm_units.begin(), sm_units.end(), uid);
        POD_ASSERT(it != sm_units.end());
        *it = sm_units.back();
        sm_units.pop_back();

        // Remove from the global active list (swap-erase).
        active_units_[i] = active_units_.back();
        active_units_.pop_back();

        CtaState& cta = ctas_[static_cast<size_t>(u.cta)];
        cta.remaining_units -= 1;
        if (cta.remaining_units == 0) {
            RetireCta(u.cta, now);
        }
    }
}

SimResult
Simulation::Run()
{
    double now = 0.0;
    long events = 0;

    DispatchAll(now);
    while (true) {
        bool all_done = true;
        for (const auto& ks : kernels_) {
            if (!ks.finished) {
                all_done = false;
                break;
            }
        }
        if (all_done) break;

        POD_ASSERT_MSG(++events < kMaxEvents,
                       "simulation exceeded %ld events", kMaxEvents);

        if (active_units_.empty()) {
            // Nothing resident: jump to the next kernel-ready time.
            double ready = NextReadyTime();
            POD_ASSERT_MSG(ready < kInf,
                           "deadlock: no active units at t=%g", now);
            now = std::max(now, ready);
            DispatchAll(now);
            continue;
        }

        ComputeRates();
        double dt = NextEventDelta();
        POD_ASSERT_MSG(dt < kInf,
                       "starvation: active units with zero rates at t=%g",
                       now);
        // Stop early at the next kernel-ready boundary, but only if it
        // is strictly in the future; a kernel that is already ready
        // and merely waiting for SM resources must not stall time.
        double ready = NextReadyTime();
        if (ready > now + 1e-15 && now + dt > ready) {
            dt = ready - now;
        }
        Advance(dt);
        now += dt;
        ProcessCompletions(now);
        DispatchAll(now);
    }

    result_.total_time = now;
    result_.total_ctas = total_ctas_;
    result_.kernels.reserve(kernels_.size());
    for (const auto& ks : kernels_) {
        KernelTiming kt;
        kt.name = ks.desc->name;
        kt.start_time = ks.start_time;
        kt.end_time = ks.end_time;
        result_.kernels.push_back(kt);
    }
    if (now > 0.0) {
        result_.tensor_util =
            served_tensor_ / (now * spec_.TotalTensorFlops());
        result_.cuda_util = served_cuda_ / (now * spec_.TotalCudaFlops());
        result_.mem_util = served_mem_ / (now * spec_.hbm_bandwidth);
    }
    result_.energy_joules = energy_;
    return result_;
}

}  // namespace

FluidEngine::FluidEngine(GpuSpec spec, SimOptions options)
    : spec_(std::move(spec)), options_(options)
{
    spec_.Validate();
    POD_CHECK_ARG(options_.placement_jitter >= 0.0 &&
                      options_.placement_jitter <= 1.0,
                  "placement jitter must be a probability");
    POD_CHECK_ARG(options_.kernel_launch_overhead >= 0.0,
                  "launch overhead must be >= 0");
}

SimResult
FluidEngine::Run(const std::vector<KernelLaunch>& launches)
{
    POD_CHECK_ARG(!launches.empty(), "need at least one kernel launch");
    Simulation sim(spec_, options_, launches);
    return sim.Run();
}

SimResult
FluidEngine::RunKernel(const KernelDesc& kernel)
{
    std::vector<KernelLaunch> launches;
    launches.push_back(KernelLaunch{kernel, 0});
    return Run(launches);
}

}  // namespace pod::gpusim
