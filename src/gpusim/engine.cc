/**
 * @file
 * Implementation of the fluid GPU execution engine.
 *
 * The event core is incremental (PR 3): instead of recomputing every
 * rate from scratch at each event, the simulation tracks which SMs
 * could have changed and reuses cached allocations everywhere else.
 * What may be cached is dictated by the rate model itself:
 *
 *  - Memory rates depend only on *which* units still stream memory
 *    (their per-unit caps are static), so each SM's bandwidth demand
 *    is cached and recomputed only when that membership changes
 *    (dispatch, retirement, a memory dimension draining, a phase or
 *    refill transition).
 *  - Compute rates are pinned to memory progress through the pacing
 *    cap (a unit still streaming memory only *wants* the compute rate
 *    that keeps pace with it), so any SM hosting such a coupled unit
 *    must re-run its water-fill every event; SMs whose resident units
 *    are all single-resource reuse the cached allocation. This is
 *    also why a global min-heap of unit completion times cannot drive
 *    the loop bit-identically: coupled rates drift at every event, so
 *    completion *times* are only valid for one interval.
 *
 * All caching is arithmetic-preserving: a recomputation performs the
 * exact floating-point operations of the original full rescan, in the
 * same order, so results stay bit-identical (pinned by
 * tests/gpusim/engine_regression_test.cc).
 *
 * Storage is laid out by access frequency: per-unit state touched
 * every event lives in one compact record (UnitHot); static rate
 * caps, completion flags and per-SM cache state live in small
 * parallel arrays so the per-event loops never drag the wide
 * bookkeeping structs through the cache. Phase lists live in one
 * arena, so dispatching a unit performs no per-unit allocation.
 */
#include "gpusim/engine.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "gpusim/water_fill.h"

namespace pod::gpusim {

namespace {

/** Work below this many FLOPs/bytes counts as finished. */
constexpr double kDoneEps = 1e-3;

/** Upper bound on simulation events, guards against engine bugs. */
constexpr long kMaxEvents = 200'000'000;

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Relative margin under which the closed-form "everyone gets their
 * cap" shortcut for an under-subscribed water-fill is not trusted:
 * within it, the exact sequential water-fill runs instead, so shares
 * perturbed by summation rounding can never flip an allocation.
 */
constexpr double kUndersubscribedMargin = 1.0 - 1e-12;

/**
 * Safety factor for multiply-compare filters that avoid divisions:
 * `a/b < c` is decided without dividing only when `a` clears
 * `b * c * kFilterMargin`, which over-covers the at-most-4-ulp
 * relative error of the product-vs-quotient comparison. Inside the
 * band, the exact division runs, so filtered decisions are always
 * bit-identical to dividing.
 */
constexpr double kFilterMargin = 1.0 + 1e-12;

/**
 * Sort (cap, unit id) pairs ascending. Keys are unique (unit ids
 * differ), so any comparison sort yields the identical sequence;
 * insertion sort beats std::sort at the handful-of-residents sizes
 * the per-SM water-fill sees every event.
 */
inline void
SortCaps(std::vector<std::pair<double, int>>& caps)
{
    if (caps.size() > 24) {
        std::sort(caps.begin(), caps.end());
        return;
    }
    for (size_t i = 1; i < caps.size(); ++i) {
        std::pair<double, int> key = caps[i];
        size_t j = i;
        for (; j > 0 && key < caps[j - 1]; --j) {
            caps[j] = caps[j - 1];
        }
        caps[j] = key;
    }
}

/**
 * Per-unit state touched every event: six doubles + bookkeeping in a
 * packed 56-byte record. Measured faster than padding to a full
 * 64-byte line — the per-event sweeps are bandwidth-bound, so 12%
 * less traffic beats the occasional straddled line.
 */
struct UnitHot
{
    double rem_tensor = 0.0;
    double rem_cuda = 0.0;
    double rem_mem = 0.0;
    // Rates allocated for the current interval. Rates of a drained
    // dimension may be stale; every reader gates on rem > kDoneEps.
    // The final memory rate is r_mem_pre * global_mem_scale_.
    double r_tensor = 0.0;
    double r_cuda = 0.0;
    double r_mem_pre = 0.0;
    /** Home SM (duplicated from UnitState for the hot loops). */
    int sm = -1;
    /** Op class (duplicated from UnitState for the hot loops). */
    OpClass op = OpClass::kOther;
};

/** Static per-unit rate caps, derived once per dispatch/refill. */
struct UnitCaps
{
    double tensor_cap = 0.0;
    double cuda_cap = 0.0;
    double mem_base = 0.0;
};

/** Per-unit bookkeeping read at transitions, not every event. */
struct UnitState
{
    int cta = -1;
    int sm = -1;
    OpClass op = OpClass::kOther;
    int warps = 4;
    double mem_bw_cap = 0.0;
    /** Remaining phases: arena range [phase_next, phase_end). */
    uint32_t phase_next = 0;
    uint32_t phase_end = 0;
    bool done = false;
};

/** Mutable execution state of one CTA. */
struct CtaState
{
    int kernel = -1;
    int sm = -1;
    int threads = 0;
    double smem = 0.0;
    int remaining_units = 0;
};

/** Mutable state of one SM (occupancy; rate caches live in arrays). */
struct SmState
{
    int free_threads = 0;
    double free_smem = 0.0;
    int resident_ctas = 0;
    /** Resident CTA count per kernel (indexed by kernel id). */
    std::vector<int> kernel_resident;
    /** Ids of active (not done) units on this SM. */
    std::vector<int> active_units;
};

/** Mutable state of one kernel launch. */
struct KernelState
{
    const KernelDesc* desc = nullptr;
    int stream = 0;
    int dispatched = 0;
    int completed_ctas = 0;
    bool started = false;
    bool finished = false;
    double ready_time = kInf;
    double start_time = 0.0;
    double end_time = 0.0;
};

/** One in-order stream of kernels. */
struct StreamState
{
    std::vector<int> kernels;
    size_t head = 0;
};

/** Full simulation state; one instance per FluidEngine::Run call. */
class Simulation
{
  public:
    Simulation(const GpuSpec& spec, const SimOptions& options,
               const std::vector<KernelLaunch>& launches)
        : spec_(spec), options_(options), rng_(options.seed)
    {
        size_t num_sms = static_cast<size_t>(spec_.num_sms);
        sms_.resize(num_sms);
        for (auto& sm : sms_) {
            sm.free_threads = spec_.max_threads_per_sm;
            sm.free_smem = spec_.shared_mem_per_sm;
            sm.kernel_resident.assign(launches.size(), 0);
        }
        sm_active_count_.assign(num_sms, 0);
        sm_mem_want_.assign(num_sms, 0.0);
        sm_mem_dirty_.assign(num_sms, 0);
        sm_compute_dirty_.assign(num_sms, 0);
        sm_coupled_.assign(num_sms, 0);

        kernels_.reserve(launches.size());
        int max_stream = 0;
        for (const auto& launch : launches) {
            max_stream = std::max(max_stream, launch.stream);
        }
        streams_.resize(static_cast<size_t>(max_stream) + 1);
        for (size_t i = 0; i < launches.size(); ++i) {
            KernelState ks;
            ks.desc = &launches[i].kernel;
            ks.stream = launches[i].stream;
            POD_CHECK_ARG(ks.desc->cta_count >= 0,
                          "kernel CTA count must be >= 0");
            POD_CHECK_ARG(ks.desc->cta_count == 0 || ks.desc->assign,
                          "kernel with CTAs needs an assign function");
            kernels_.push_back(ks);
            streams_[static_cast<size_t>(launches[i].stream)]
                .kernels.push_back(static_cast<int>(i));
        }
        // Arm the head kernel of every stream.
        for (auto& stream : streams_) {
            ArmHead(stream, 0.0);
        }
    }

    SimResult Run();

  private:
    /** Make the stream-head kernel dispatchable after launch overhead. */
    void
    ArmHead(StreamState& stream, double now)
    {
        while (stream.head < stream.kernels.size()) {
            KernelState& ks =
                kernels_[static_cast<size_t>(stream.kernels[stream.head])];
            ks.ready_time = now + options_.kernel_launch_overhead;
            if (ks.desc->cta_count > 0) {
                break;
            }
            // Empty kernel: completes as soon as it becomes ready.
            ks.started = true;
            ks.finished = true;
            ++finished_kernels_;
            ks.start_time = ks.ready_time;
            ks.end_time = ks.ready_time;
            ++stream.head;
        }
    }

    /** True if the CTA footprint fits on the SM right now. */
    bool
    Fits(const SmState& sm, const KernelDesc& desc, int kernel_id) const
    {
        if (sm.free_threads < desc.resources.threads) return false;
        if (sm.free_smem < desc.resources.shared_mem_bytes) return false;
        if (sm.resident_ctas >= spec_.max_ctas_per_sm) return false;
        if (desc.max_ctas_per_sm > 0 &&
            sm.kernel_resident[static_cast<size_t>(kernel_id)] >=
                desc.max_ctas_per_sm) {
            return false;
        }
        return true;
    }

    /**
     * Choose an SM for the next CTA: first fit scanning round-robin
     * from a rotating pointer (models the hardware work distributor),
     * optionally skipping to the next fit with placement_jitter
     * probability. Returns -1 if nothing fits.
     */
    int
    PickSm(const KernelDesc& desc, int kernel_id)
    {
        int first_fit = -1;
        int second_fit = -1;
        for (int off = 0; off < spec_.num_sms; ++off) {
            int sm = (rr_pointer_ + off) % spec_.num_sms;
            if (Fits(sms_[static_cast<size_t>(sm)], desc, kernel_id)) {
                if (first_fit < 0) {
                    first_fit = sm;
                    if (options_.placement_jitter <= 0.0) break;
                } else {
                    second_fit = sm;
                    break;
                }
            }
        }
        if (first_fit < 0) return -1;
        int chosen = first_fit;
        if (second_fit >= 0 && rng_.Bernoulli(options_.placement_jitter)) {
            chosen = second_fit;
        }
        rr_pointer_ = (chosen + 1) % spec_.num_sms;
        return chosen;
    }

    /**
     * Load phase work into the unit's remaining counters; false if no
     * more non-empty phases.
     */
    bool
    LoadNextPhase(UnitState& u, UnitHot& h)
    {
        while (u.phase_next < u.phase_end) {
            const Phase& p = phase_arena_[u.phase_next];
            ++u.phase_next;
            if (!p.Empty()) {
                h.rem_tensor = p.tensor_flops;
                h.rem_cuda = p.cuda_flops;
                h.rem_mem = p.mem_bytes;
                return true;
            }
        }
        return false;
    }

    /** Append a work list's phases to the arena; returns the range. */
    std::pair<uint32_t, uint32_t>
    StorePhases(const std::vector<Phase>& phases)
    {
        uint32_t begin = static_cast<uint32_t>(phase_arena_.size());
        phase_arena_.insert(phase_arena_.end(), phases.begin(),
                            phases.end());
        return {begin, static_cast<uint32_t>(phase_arena_.size())};
    }

    /** Derive the static per-unit rate caps from warps and the spec. */
    void
    SetStaticCaps(const UnitState& u, UnitCaps& caps) const
    {
        caps.tensor_cap =
            spec_.tensor_flops_per_sm *
            std::min(1.0, static_cast<double>(u.warps) /
                              spec_.warps_per_tensor_saturation);
        caps.cuda_cap =
            spec_.cuda_flops_per_sm *
            std::min(1.0, static_cast<double>(u.warps) /
                              spec_.warps_per_cuda_saturation);
        caps.mem_base = u.mem_bw_cap > 0.0
                            ? u.mem_bw_cap
                            : static_cast<double>(u.warps) *
                                  spec_.warp_bandwidth_cap;
    }

    /** Mark an SM's cached rates stale after a membership change. */
    void
    MarkDirty(int sm_id)
    {
        sm_mem_dirty_[static_cast<size_t>(sm_id)] = 1;
        sm_compute_dirty_[static_cast<size_t>(sm_id)] = 1;
    }

    /** Place one CTA of the kernel; false if no SM has room. */
    bool
    DispatchOne(int kernel_id, double now)
    {
        KernelState& ks = kernels_[static_cast<size_t>(kernel_id)];
        const KernelDesc& desc = *ks.desc;
        int sm_id = PickSm(desc, kernel_id);
        if (sm_id < 0) return false;

        SmState& sm = sms_[static_cast<size_t>(sm_id)];
        sm.free_threads -= desc.resources.threads;
        sm.free_smem -= desc.resources.shared_mem_bytes;
        sm.resident_ctas += 1;
        sm.kernel_resident[static_cast<size_t>(kernel_id)] += 1;

        if (!ks.started) {
            ks.started = true;
            ks.start_time = now;
        }

        CtaWork work = desc.assign(ks.dispatched, sm_id);
        ks.dispatched += 1;

        int cta_id = static_cast<int>(ctas_.size());
        CtaState cta;
        cta.kernel = kernel_id;
        cta.sm = sm_id;
        cta.threads = desc.resources.threads;
        cta.smem = desc.resources.shared_mem_bytes;
        cta.remaining_units = 0;
        ctas_.push_back(cta);
        ++total_ctas_;

        for (auto& unit : work.units) {
            UnitState us;
            UnitHot hot;
            UnitCaps caps;
            us.cta = cta_id;
            us.sm = sm_id;
            us.op = unit.op;
            us.warps = std::max(1, unit.warps);
            us.mem_bw_cap = unit.mem_bw_cap;
            std::tie(us.phase_next, us.phase_end) =
                StorePhases(unit.phases);
            SetStaticCaps(us, caps);
            hot.sm = sm_id;
            hot.op = us.op;
            result_.per_op[static_cast<size_t>(us.op)].unit_count += 1;
            if (!LoadNextPhase(us, hot)) {
                // Unit with no work: completes immediately.
                continue;
            }
            int unit_id = static_cast<int>(units_.size());
            units_.push_back(us);
            hot_.push_back(hot);
            unit_caps_.push_back(caps);
            phase_done_.push_back(0);
            active_units_.push_back(unit_id);
            sms_[static_cast<size_t>(sm_id)].active_units.push_back(unit_id);
            sm_active_count_[static_cast<size_t>(sm_id)] += 1;
            ctas_[static_cast<size_t>(cta_id)].remaining_units += 1;
            op_active_[static_cast<size_t>(us.op)] += 1;
        }
        MarkDirty(sm_id);

        if (ctas_[static_cast<size_t>(cta_id)].remaining_units == 0) {
            // CTA carried no work at all; retire it on the spot.
            RetireCta(cta_id, now);
        }
        return true;
    }

    /**
     * Dispatch as many ready CTAs as fit, draining streams in
     * submission order (earlier streams get priority, later streams
     * backfill) -- the behaviour the paper observes for CUDA streams.
     */
    void
    DispatchAll(double now)
    {
        for (auto& stream : streams_) {
            while (stream.head < stream.kernels.size()) {
                int kid = stream.kernels[stream.head];
                KernelState& ks = kernels_[static_cast<size_t>(kid)];
                if (now + 1e-15 < ks.ready_time) break;
                if (ks.dispatched >= ks.desc->cta_count) break;
                if (!DispatchOne(kid, now)) break;
            }
        }
    }

    /** Free a finished CTA's resources and advance kernel/stream state. */
    void
    RetireCta(int cta_id, double now)
    {
        CtaState& cta = ctas_[static_cast<size_t>(cta_id)];
        SmState& sm = sms_[static_cast<size_t>(cta.sm)];
        sm.free_threads += cta.threads;
        sm.free_smem += cta.smem;
        sm.resident_ctas -= 1;
        sm.kernel_resident[static_cast<size_t>(cta.kernel)] -= 1;
        if (options_.record_cta_times) {
            result_.cta_finish_times.push_back(now);
        }

        KernelState& ks = kernels_[static_cast<size_t>(cta.kernel)];
        ks.completed_ctas += 1;
        if (ks.completed_ctas == ks.desc->cta_count) {
            ks.finished = true;
            ++finished_kernels_;
            ks.end_time = now;
            StreamState& stream = streams_[static_cast<size_t>(ks.stream)];
            // The finished kernel must be the stream head.
            POD_ASSERT(stream.head < stream.kernels.size());
            ++stream.head;
            ArmHead(stream, now);
        }
    }

    /** Refresh resource rates, recomputing only what could change. */
    void RefreshRates();

    /** Earliest completion delta at current rates (may be inf). */
    double NextEventDelta() const;

    /** Earliest pending kernel ready time (absolute; may be inf). */
    double
    NextReadyTime() const
    {
        double t = kInf;
        for (const auto& stream : streams_) {
            if (stream.head < stream.kernels.size()) {
                const KernelState& ks = kernels_[static_cast<size_t>(
                    stream.kernels[stream.head])];
                if (!ks.finished && ks.dispatched < ks.desc->cta_count) {
                    t = std::min(t, ks.ready_time);
                }
            }
        }
        return t;
    }

    /** Advance all active units by dt, accumulating accounting. */
    void Advance(double dt);

    /** Handle all units whose current phase just completed. */
    void ProcessCompletions(double now);

    const GpuSpec& spec_;
    const SimOptions& options_;
    Rng rng_;

    std::vector<SmState> sms_;
    std::vector<KernelState> kernels_;
    std::vector<StreamState> streams_;
    std::vector<CtaState> ctas_;
    std::vector<UnitState> units_;
    std::vector<UnitHot> hot_;
    std::vector<UnitCaps> unit_caps_;
    /** 1 when the unit's current phase fully drained (see Advance). */
    std::vector<uint8_t> phase_done_;
    std::vector<int> active_units_;
    /** Arena backing every unit's phase list (grows per dispatch). */
    std::vector<Phase> phase_arena_;
    int rr_pointer_ = 0;
    int total_ctas_ = 0;
    size_t finished_kernels_ = 0;

    // ---- per-SM incremental rate-cache state (parallel to sms_,
    // kept in flat arrays so per-event sweeps stay in-cache) ----
    std::vector<int> sm_active_count_;
    std::vector<double> sm_mem_want_;
    std::vector<uint8_t> sm_mem_dirty_;
    std::vector<uint8_t> sm_compute_dirty_;
    std::vector<int> sm_coupled_;

    /** Global HBM scale factor for the current interval. */
    double global_mem_scale_ = 1.0;

    /** Units whose phase drained in the last Advance. */
    int completions_pending_ = 0;

    // Reused per-SM water-fill scratch (cleared, never reallocated).
    std::vector<std::pair<double, int>> tensor_caps_;
    std::vector<std::pair<double, int>> cuda_caps_;

    /** Active unit count per op class (for busy-time accounting). */
    std::array<int, kNumOpClasses> op_active_ = {};

    // Served-work integrals for utilization accounting.
    double served_tensor_ = 0.0;
    double served_cuda_ = 0.0;
    double served_mem_ = 0.0;
    double energy_ = 0.0;

    SimResult result_;
};

void
Simulation::RefreshRates()
{
    const size_t num_sms = sms_.size();

    // --- memory bandwidth first: per-warp cap, per-SM cap, global
    // cap. Compute allocation below is demand-aware and needs the
    // memory rates. Per-SM demands are cached; only SMs whose memory
    // demand set changed recompute, and the global sum re-accumulates
    // cached wants in SM order (bit-identical to the full rescan). ---
    double global_want = 0.0;
    for (size_t s = 0; s < num_sms; ++s) {
        if (sm_active_count_[s] == 0) continue;
        if (sm_mem_dirty_[s]) {
            sm_mem_dirty_[s] = 0;
            const SmState& sm = sms_[s];
            double sm_want = 0.0;
            for (int uid : sm.active_units) {
                UnitHot& h = hot_[static_cast<size_t>(uid)];
                if (h.rem_mem > kDoneEps) {
                    h.r_mem_pre =
                        unit_caps_[static_cast<size_t>(uid)].mem_base;
                    sm_want += h.r_mem_pre;
                } else {
                    h.r_mem_pre = 0.0;
                }
            }
            if (sm_want > spec_.sm_bandwidth_cap) {
                double scale = spec_.sm_bandwidth_cap / sm_want;
                for (int uid : sm.active_units) {
                    hot_[static_cast<size_t>(uid)].r_mem_pre *= scale;
                }
                sm_want = spec_.sm_bandwidth_cap;
            }
            sm_mem_want_[s] = sm_want;
        }
        global_want += sm_mem_want_[s];
    }
    global_mem_scale_ = global_want > spec_.hbm_bandwidth
                            ? spec_.hbm_bandwidth / global_want
                            : 1.0;

    // --- per-SM compute allocation (tensor + CUDA cores) ---
    // Demand-aware: a unit that is still streaming memory in this
    // phase only *wants* the compute rate that keeps pace with its
    // memory (its math interleaves with memory stalls); purely
    // compute-bound units want their full cap. Max-min water-fill
    // over those wants lets prefill soak the tensor cores while
    // co-located decode sips them -- the behaviour POD relies on.
    // SMs with no coupled unit and no membership change keep the
    // cached allocation.
    for (size_t s = 0; s < num_sms; ++s) {
        if (sm_active_count_[s] == 0) continue;
        if (!sm_compute_dirty_[s] && sm_coupled_[s] == 0) continue;
        sm_compute_dirty_[s] = 0;

        // One pass builds both demand lists (tensor + CUDA).
        tensor_caps_.clear();
        cuda_caps_.clear();
        double tensor_sum = 0.0;
        double cuda_sum = 0.0;
        for (int uid : sms_[s].active_units) {
            const UnitCaps& c = unit_caps_[static_cast<size_t>(uid)];
            UnitHot& h = hot_[static_cast<size_t>(uid)];
            double r_mem = h.r_mem_pre * global_mem_scale_;
            bool paced = h.rem_mem > kDoneEps && r_mem > 0.0;
            if (h.rem_tensor > kDoneEps) {
                double cap = c.tensor_cap;
                if (paced) {
                    cap = std::min(
                        cap, 1.1 * h.rem_tensor * r_mem / h.rem_mem);
                }
                tensor_caps_.emplace_back(cap, uid);
                tensor_sum += cap;
            }
            if (h.rem_cuda > kDoneEps) {
                double cap = c.cuda_cap;
                if (paced) {
                    cap = std::min(cap,
                                   1.1 * h.rem_cuda * r_mem / h.rem_mem);
                }
                cuda_caps_.emplace_back(cap, uid);
                cuda_sum += cap;
            }
        }
        // Under-subscribed (with margin): every demand receives its
        // cap, exactly what the sequential water-fill would compute
        // -- skip the sort. Near or above capacity, run the exact
        // sorted water-fill.
        if (!tensor_caps_.empty()) {
            if (tensor_sum <=
                spec_.tensor_flops_per_sm * kUndersubscribedMargin) {
                for (const auto& [cap, uid] : tensor_caps_) {
                    hot_[static_cast<size_t>(uid)].r_tensor = cap;
                }
            } else {
                SortCaps(tensor_caps_);
                WaterFill(tensor_caps_, spec_.tensor_flops_per_sm,
                          [this](int uid, double rate) {
                              hot_[static_cast<size_t>(uid)].r_tensor =
                                  rate;
                          });
            }
        }
        if (!cuda_caps_.empty()) {
            if (cuda_sum <=
                spec_.cuda_flops_per_sm * kUndersubscribedMargin) {
                for (const auto& [cap, uid] : cuda_caps_) {
                    hot_[static_cast<size_t>(uid)].r_cuda = cap;
                }
            } else {
                SortCaps(cuda_caps_);
                WaterFill(cuda_caps_, spec_.cuda_flops_per_sm,
                          [this](int uid, double rate) {
                              hot_[static_cast<size_t>(uid)].r_cuda =
                                  rate;
                          });
            }
        }
    }
}

double
Simulation::NextEventDelta() const
{
    const double gscale = global_mem_scale_;
    // Two independent partial minima hide the FP-min latency chain;
    // min over doubles is exactly associative, so any grouping yields
    // the bit-identical result. Each candidate rem/r can lower the
    // minimum only if rem < dt*r; the filter margin over-covers the
    // comparison's rounding, so a division runs only for candidates
    // that may actually set the minimum -- the returned dt is the
    // bit-identical min of exact quotients.
    double dt_a = kInf;
    double dt_b = kInf;
    for (int uid : active_units_) {
        const UnitHot& h = hot_[static_cast<size_t>(uid)];
        if (h.rem_tensor > kDoneEps && h.r_tensor > 0.0 &&
            h.rem_tensor < dt_a * h.r_tensor * kFilterMargin) {
            dt_a = std::min(dt_a, h.rem_tensor / h.r_tensor);
        }
        if (h.rem_cuda > kDoneEps && h.r_cuda > 0.0 &&
            h.rem_cuda < dt_b * h.r_cuda * kFilterMargin) {
            dt_b = std::min(dt_b, h.rem_cuda / h.r_cuda);
        }
        if (h.rem_mem > kDoneEps) {
            double r_mem = h.r_mem_pre * gscale;
            if (r_mem > 0.0 &&
                h.rem_mem < dt_a * r_mem * kFilterMargin) {
                dt_a = std::min(dt_a, h.rem_mem / r_mem);
            }
        }
    }
    return std::min(dt_a, dt_b);
}

void
Simulation::Advance(double dt)
{
    std::fill(sm_coupled_.begin(), sm_coupled_.end(), 0);
    const double gscale = global_mem_scale_;

    double rate_tensor = 0.0;
    double rate_cuda = 0.0;
    double rate_mem = 0.0;
    int pending = 0;
    // Local per-op accumulators keep the (order-pinned) accounting
    // adds in registers instead of store-forwarding through result_.
    double acc_tensor[kNumOpClasses];
    double acc_cuda[kNumOpClasses];
    double acc_mem[kNumOpClasses];
    for (int op = 0; op < kNumOpClasses; ++op) {
        const auto& stats = result_.per_op[static_cast<size_t>(op)];
        acc_tensor[op] = stats.tensor_flops;
        acc_cuda[op] = stats.cuda_flops;
        acc_mem[op] = stats.mem_bytes;
    }
    for (int uid : active_units_) {
        UnitHot& h = hot_[static_cast<size_t>(uid)];
        const size_t opi = static_cast<size_t>(h.op);
        const bool had_tensor = h.rem_tensor > kDoneEps;
        const bool had_cuda = h.rem_cuda > kDoneEps;
        const bool had_mem = h.rem_mem > kDoneEps;
        if (had_tensor) {
            double amount = h.r_tensor * dt;
            h.rem_tensor -= amount;
            acc_tensor[opi] += amount;
            rate_tensor += h.r_tensor;
        }
        if (had_cuda) {
            double amount = h.r_cuda * dt;
            h.rem_cuda -= amount;
            acc_cuda[opi] += amount;
            rate_cuda += h.r_cuda;
        }
        if (had_mem) {
            double r_mem = h.r_mem_pre * gscale;
            double amount = r_mem * dt;
            h.rem_mem -= amount;
            acc_mem[opi] += amount;
            rate_mem += r_mem;
        }

        // Post-advance bookkeeping for the incremental rate cache:
        // a drained dimension changes the SM's demand sets, and a
        // still-coupled unit keeps its SM's water-fill live.
        const bool has_tensor = h.rem_tensor > kDoneEps;
        const bool has_cuda = h.rem_cuda > kDoneEps;
        const bool has_mem = h.rem_mem > kDoneEps;
        const size_t s = static_cast<size_t>(h.sm);
        sm_mem_dirty_[s] |=
            static_cast<uint8_t>(had_mem && !has_mem);
        sm_compute_dirty_[s] |=
            static_cast<uint8_t>(had_tensor != has_tensor ||
                                 had_cuda != has_cuda ||
                                 had_mem != has_mem);
        sm_coupled_[s] +=
            static_cast<int>(has_mem && (has_tensor || has_cuda));
        const int done =
            static_cast<int>(!has_tensor && !has_cuda && !has_mem);
        phase_done_[static_cast<size_t>(uid)] =
            static_cast<uint8_t>(done);
        pending += done;
    }
    completions_pending_ = pending;
    for (int op = 0; op < kNumOpClasses; ++op) {
        auto& stats = result_.per_op[static_cast<size_t>(op)];
        stats.tensor_flops = acc_tensor[op];
        stats.cuda_flops = acc_cuda[op];
        stats.mem_bytes = acc_mem[op];
    }
    served_tensor_ += rate_tensor * dt;
    served_cuda_ += rate_cuda * dt;
    served_mem_ += rate_mem * dt;

    for (int op = 0; op < kNumOpClasses; ++op) {
        if (op_active_[static_cast<size_t>(op)] > 0) {
            result_.per_op[static_cast<size_t>(op)].busy_time += dt;
        }
    }

    double tensor_util = rate_tensor / spec_.TotalTensorFlops();
    double cuda_util = rate_cuda / spec_.TotalCudaFlops();
    double mem_util = rate_mem / spec_.hbm_bandwidth;
    double power = spec_.idle_power_w + spec_.tensor_power_w * tensor_util +
                   spec_.cuda_power_w * cuda_util +
                   spec_.hbm_power_w * mem_util;
    energy_ += power * dt;
}

void
Simulation::ProcessCompletions(double now)
{
    if (completions_pending_ == 0) return;
    for (size_t i = 0; i < active_units_.size();) {
        int uid = active_units_[i];
        if (!phase_done_[static_cast<size_t>(uid)]) {
            ++i;
            continue;
        }
        UnitState& u = units_[static_cast<size_t>(uid)];
        UnitHot& h = hot_[static_cast<size_t>(uid)];
        if (LoadNextPhase(u, h)) {
            // New phase, new demands: the SM's cached rates are stale.
            // The stale done-flag is rewritten by the next Advance
            // before ProcessCompletions reads it again.
            MarkDirty(u.sm);
            ++i;
            continue;
        }
        // Unit finished entirely. Persistent kernels may refill the
        // lane with the next queued work item (paper S4.4).
        const KernelDesc* desc =
            kernels_[static_cast<size_t>(
                         ctas_[static_cast<size_t>(u.cta)].kernel)]
                .desc;
        if (desc->refill) {
            WorkUnit next;
            if (desc->refill(u.sm, u.op, &next) &&
                !next.phases.empty()) {
                auto& old_op = result_.per_op[static_cast<size_t>(u.op)];
                old_op.finish_time = std::max(old_op.finish_time, now);
                op_active_[static_cast<size_t>(u.op)] -= 1;
                u.op = next.op;
                u.warps = std::max(1, next.warps);
                u.mem_bw_cap = next.mem_bw_cap;
                h.op = next.op;
                std::tie(u.phase_next, u.phase_end) =
                    StorePhases(next.phases);
                SetStaticCaps(u, unit_caps_[static_cast<size_t>(uid)]);
                result_.per_op[static_cast<size_t>(u.op)].unit_count += 1;
                op_active_[static_cast<size_t>(u.op)] += 1;
                MarkDirty(u.sm);
                if (LoadNextPhase(u, h)) {
                    ++i;
                    continue;
                }
                // Refilled with an empty unit: fall through to the
                // retire path (it handles the new op's accounting).
            }
        }
        u.done = true;
        auto& op = result_.per_op[static_cast<size_t>(u.op)];
        op.finish_time = std::max(op.finish_time, now);
        op_active_[static_cast<size_t>(u.op)] -= 1;

        // Remove from the SM's active list.
        auto& sm_units = sms_[static_cast<size_t>(u.sm)].active_units;
        auto it = std::find(sm_units.begin(), sm_units.end(), uid);
        POD_ASSERT(it != sm_units.end());
        *it = sm_units.back();
        sm_units.pop_back();
        sm_active_count_[static_cast<size_t>(u.sm)] -= 1;
        MarkDirty(u.sm);

        // Remove from the global active list (swap-erase).
        active_units_[i] = active_units_.back();
        active_units_.pop_back();

        CtaState& cta = ctas_[static_cast<size_t>(u.cta)];
        cta.remaining_units -= 1;
        if (cta.remaining_units == 0) {
            RetireCta(u.cta, now);
        }
    }
}

SimResult
Simulation::Run()
{
    double now = 0.0;
    long events = 0;

    DispatchAll(now);
    while (finished_kernels_ < kernels_.size()) {
        POD_ASSERT_MSG(++events < kMaxEvents,
                       "simulation exceeded %ld events", kMaxEvents);

        if (active_units_.empty()) {
            // Nothing resident: jump to the next kernel-ready time.
            double ready = NextReadyTime();
            POD_ASSERT_MSG(ready < kInf,
                           "deadlock: no active units at t=%g", now);
            now = std::max(now, ready);
            DispatchAll(now);
            continue;
        }

        RefreshRates();
        double dt = NextEventDelta();
        POD_ASSERT_MSG(dt < kInf,
                       "starvation: active units with zero rates at t=%g",
                       now);
        // Stop early at the next kernel-ready boundary, but only if it
        // is strictly in the future; a kernel that is already ready
        // and merely waiting for SM resources must not stall time.
        double ready = NextReadyTime();
        if (ready > now + 1e-15 && now + dt > ready) {
            dt = ready - now;
        }
        Advance(dt);
        now += dt;
        ProcessCompletions(now);
        DispatchAll(now);
    }

    result_.total_time = now;
    result_.total_ctas = total_ctas_;
    result_.kernels.reserve(kernels_.size());
    for (const auto& ks : kernels_) {
        KernelTiming kt;
        kt.name = ks.desc->name;
        kt.start_time = ks.start_time;
        kt.end_time = ks.end_time;
        result_.kernels.push_back(kt);
    }
    if (now > 0.0) {
        result_.tensor_util =
            served_tensor_ / (now * spec_.TotalTensorFlops());
        result_.cuda_util = served_cuda_ / (now * spec_.TotalCudaFlops());
        result_.mem_util = served_mem_ / (now * spec_.hbm_bandwidth);
    }
    result_.energy_joules = energy_;
    return result_;
}

}  // namespace

FluidEngine::FluidEngine(GpuSpec spec, SimOptions options)
    : spec_(std::move(spec)), options_(options)
{
    spec_.Validate();
    POD_CHECK_ARG(options_.placement_jitter >= 0.0 &&
                      options_.placement_jitter <= 1.0,
                  "placement jitter must be a probability");
    POD_CHECK_ARG(options_.kernel_launch_overhead >= 0.0,
                  "launch overhead must be >= 0");
}

SimResult
FluidEngine::Run(const std::vector<KernelLaunch>& launches)
{
    POD_CHECK_ARG(!launches.empty(), "need at least one kernel launch");
    Simulation sim(spec_, options_, launches);
    return sim.Run();
}

SimResult
FluidEngine::RunKernel(const KernelDesc& kernel)
{
    std::vector<KernelLaunch> launches;
    launches.push_back(KernelLaunch{kernel, 0});
    return Run(launches);
}

}  // namespace pod::gpusim
