/**
 * @file
 * The closed-form analytic event core (EngineCore::kAnalytic) and the
 * FluidEngine entry points.
 *
 * The stepwise engine (engine_oracle.cc) pays O(active units) per
 * event: it rescans every unit to find the next completion and
 * re-runs the water-fill of every pacing-coupled SM because paced
 * compute caps drift as memory progresses. This core removes both
 * costs by freezing each unit's rates for the interval between the
 * transitions that touch its SM and integrating progress in closed
 * form (docs/DESIGN.md S5.4 derives the average-rate pacing freeze
 * and why it does not move memory-bound completion times):
 *
 *  - Progress is materialized lazily: remaining work is a linear
 *    function of time (compute dims) or of the global memory virtual
 *    time S = integral of global_mem_scale dt (memory dims), so a
 *    unit is only touched when its own SM changes.
 *  - Completions come from two min-heaps keyed by real time (compute)
 *    and by S (memory). Keying memory drains in S makes a change of
 *    the global HBM scale O(1): it re-times every pending memory
 *    completion without touching a single heap entry. The heaps hold
 *    one entry per SM (the minimum over that SM's residents), not one
 *    per unit: a recompute pushes at most two entries per dirty SM
 *    instead of two per resident, and a pop rediscovers the due units
 *    with an O(residents) scan — a cost the recompute pays anyway.
 *    Per-unit keys live in flat arrays between recomputes.
 *  - Rates are recomputed only for SMs whose demand set changed
 *    (dispatch, drain, phase/refill transition, retirement), via the
 *    same per-SM cap/water-fill arithmetic as the oracle. Per-SM
 *    generation counters lazily invalidate superseded heap entries.
 *  - Accounting is O(op classes) per event: per-op rate sums are
 *    maintained incrementally and multiplied by dt (or dS for memory
 *    terms) per interval.
 *
 * Per-unit hot state lives in flat parallel arrays (SoA), so the
 * per-SM recompute sweeps touch only the lanes they need.
 *
 * The cores share all discrete machinery (placement, dispatch,
 * occupancy, phase/refill transitions) through SimulationBase in
 * engine_internal.h, so they can never disagree on a discrete
 * decision; the analytic results are cross-checked against the oracle
 * by tests/gpusim/analytic_oracle_test.cc within the tolerance bands
 * documented in docs/DESIGN.md S3.2.
 */
#include "gpusim/engine.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "gpusim/engine_internal.h"
#include "gpusim/water_fill.h"

namespace pod::gpusim {

namespace detail {

namespace {

/** One pending SM event: min key (time or S) over residents. */
struct HeapEntry
{
    double key = 0.0;
    int sm = -1;
    uint32_t gen = 0;
};

/** Min-heap order on (key, sm): deterministic for equal keys. */
struct EntryAfter
{
    bool
    operator()(const HeapEntry& a, const HeapEntry& b) const
    {
        if (a.key != b.key) return a.key > b.key;
        return a.sm > b.sm;
    }
};

using EventHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, EntryAfter>;

/** Full analytic-core state; one instance per Run call. */
class AnalyticSimulation : public SimulationBase<AnalyticSimulation>
{
    using Base = SimulationBase<AnalyticSimulation>;
    friend Base;

  public:
    AnalyticSimulation(const GpuSpec& spec, const SimOptions& options,
                       const std::vector<KernelLaunch>& launches)
        : Base(spec, options, launches)
    {
        size_t num_sms = static_cast<size_t>(spec_.num_sms);
        sm_mem_want_.assign(num_sms, 0.0);
        sm_dirty_.assign(num_sms, 0);
        sm_gen_.assign(num_sms, 1);
        dirty_sms_.reserve(num_sms);
    }

    SimResult Run();

  private:
    // ---- SimulationBase hooks ----

    /** Append the unit's SoA lanes; false if it has no work. */
    bool
    AddUnit(UnitState& us, const UnitCaps& caps)
    {
        double rt = 0.0;
        double rc = 0.0;
        double rm = 0.0;
        if (!LoadNextPhase(us, rt, rc, rm)) {
            // Unit with no work: completes immediately.
            return false;
        }
        int uid = static_cast<int>(units_.size());
        units_.push_back(us);
        rem_t_.push_back(rt);
        rem_c_.push_back(rc);
        rem_m_.push_back(rm);
        old_t_.push_back(0.0);
        old_c_.push_back(0.0);
        old_mp_.push_back(0.0);
        comp_key_.push_back(kInf);
        mem_key_.push_back(kInf);
        r_t_.push_back(0.0);
        r_c_.push_back(0.0);
        r_mp_.push_back(0.0);
        ar_t_.push_back(0.0);
        ar_c_.push_back(0.0);
        ar_mp_.push_back(0.0);
        cap_t_.push_back(caps.tensor_cap);
        cap_c_.push_back(caps.cuda_cap);
        cap_m_.push_back(caps.mem_base);
        unit_sm_.push_back(us.sm);
        unit_op_.push_back(us.op);
        last_t_.push_back(now_);
        last_s_.push_back(s_time_);
        sms_[static_cast<size_t>(us.sm)].active_units.push_back(uid);
        ++num_active_;
        // Rates and heap entries come from the RecomputeDirty pass
        // that follows every dispatch (OnSmTouched below).
        return true;
    }

    /** Queue the SM for a rate recompute before time advances again. */
    void
    OnSmTouched(int sm_id)
    {
        if (!sm_dirty_[static_cast<size_t>(sm_id)]) {
            sm_dirty_[static_cast<size_t>(sm_id)] = 1;
            dirty_sms_.push_back(sm_id);
        }
    }

    /** Re-derive static caps after a refill swapped the lane's work. */
    void
    SetUnitCaps(int uid, const UnitState& u)
    {
        UnitCaps caps;
        SetStaticCaps(u, caps);
        cap_t_[static_cast<size_t>(uid)] = caps.tensor_cap;
        cap_c_[static_cast<size_t>(uid)] = caps.cuda_cap;
        cap_m_[static_cast<size_t>(uid)] = caps.mem_base;
    }

    void
    OnUnitRetired(int /*uid*/, int /*sm_id*/)
    {
        --num_active_;
    }

    // ---- closed-form integration ----

    /**
     * Bring the unit's remaining work up to (now_, s_time_) under its
     * frozen rates. Rates of drained dimensions are kept at exactly 0
     * by RecomputeSmRates, so no liveness gate is needed here.
     */
    void
    Materialize(int uid)
    {
        const size_t i = static_cast<size_t>(uid);
        double dt = now_ - last_t_[i];
        if (dt > 0.0) {
            rem_t_[i] -= r_t_[i] * dt;
            rem_c_[i] -= r_c_[i] * dt;
            last_t_[i] = now_;
        }
        double ds = s_time_ - last_s_[i];
        if (ds > 0.0) {
            rem_m_[i] -= r_mp_[i] * ds;
            last_s_[i] = s_time_;
        }
    }

    /** Drop the unit's contribution to the per-op rate sums. */
    void
    RemoveFromAggregates(int uid)
    {
        const size_t i = static_cast<size_t>(uid);
        const size_t op = static_cast<size_t>(unit_op_[i]);
        sum_rt_[op] -= ar_t_[i];
        sum_rc_[op] -= ar_c_[i];
        sum_mp_[op] -= ar_mp_[i];
        ar_t_[i] = 0.0;
        ar_c_[i] = 0.0;
        ar_mp_[i] = 0.0;
    }

    /**
     * Recompute rates, per-op sums and heap entries for every queued
     * dirty SM: materialize residents, redo the memory split (per-unit
     * cap, per-SM cap, incremental global want), then the demand-aware
     * compute water-fill — the same arithmetic the oracle runs, just
     * only for SMs whose demand set actually changed.
     */
    void
    RecomputeDirty()
    {
        if (dirty_sms_.empty()) return;

        // Pass A: memory demand per dirty SM; global want updated
        // incrementally so untouched SMs cost nothing.
        for (int s : dirty_sms_) {
            const auto& list = sms_[static_cast<size_t>(s)].active_units;
            double want = 0.0;
            for (int uid : list) {
                Materialize(uid);
                const size_t i = static_cast<size_t>(uid);
                old_mp_[i] = r_mp_[i];
                double r =
                    rem_m_[i] > kDoneEps ? cap_m_[i] : 0.0;
                r_mp_[i] = r;
                want += r;
            }
            if (want > spec_.sm_bandwidth_cap) {
                double scale = spec_.sm_bandwidth_cap / want;
                for (int uid : list) {
                    r_mp_[static_cast<size_t>(uid)] *= scale;
                }
                want = spec_.sm_bandwidth_cap;
            }
            global_want_ +=
                want - sm_mem_want_[static_cast<size_t>(s)];
            sm_mem_want_[static_cast<size_t>(s)] = want;
        }
        if (global_want_ < 0.0) global_want_ = 0.0;  // rounding drift
        global_mem_scale_ = global_want_ > spec_.hbm_bandwidth
                                ? spec_.hbm_bandwidth / global_want_
                                : 1.0;

        // Pass B: compute water-fill per dirty SM (needs the new
        // global scale for the pacing caps), then refresh each
        // resident's aggregate contribution and heap entries.
        for (int s : dirty_sms_) {
            sm_dirty_[static_cast<size_t>(s)] = 0;
            const auto& list = sms_[static_cast<size_t>(s)].active_units;
            tensor_caps_.clear();
            cuda_caps_.clear();
            double tensor_sum = 0.0;
            double cuda_sum = 0.0;
            for (int uid : list) {
                const size_t i = static_cast<size_t>(uid);
                old_t_[i] = r_t_[i];
                old_c_[i] = r_c_[i];
                r_t_[i] = 0.0;
                r_c_[i] = 0.0;
                // Pacing cap, average-rate form. The oracle freezes
                // the instantaneous cap 1.1*rem_x*r_mem/rem_m and
                // re-derives it every global event; integrating those
                // dynamics gives rem_x ~ rem_m^1.1, i.e. a paced dim
                // completes exactly at the memory horizon, never
                // before. Freezing the instantaneous cap at OUR event
                // density would instead drain the dim linearly and
                // finish it 1/1.1 early, cascading spurious events.
                // So this core freezes the trajectory's average rate
                // rem_x*r_mem/rem_m — the unique constant rate that
                // reproduces the continuum completion time and the
                // exact served-work total (docs/DESIGN.md S3.2).
                double r_mem = r_mp_[i] * global_mem_scale_;
                bool paced = rem_m_[i] > kDoneEps && r_mem > 0.0;
                if (rem_t_[i] > kDoneEps) {
                    double cap = cap_t_[i];
                    if (paced) {
                        cap = std::min(
                            cap, rem_t_[i] * r_mem / rem_m_[i]);
                    }
                    tensor_caps_.emplace_back(cap, uid);
                    tensor_sum += cap;
                }
                if (rem_c_[i] > kDoneEps) {
                    double cap = cap_c_[i];
                    if (paced) {
                        cap = std::min(
                            cap, rem_c_[i] * r_mem / rem_m_[i]);
                    }
                    cuda_caps_.emplace_back(cap, uid);
                    cuda_sum += cap;
                }
            }
            if (!tensor_caps_.empty()) {
                AllocateMaxMin(tensor_caps_, tensor_sum,
                               spec_.tensor_flops_per_sm,
                               kUndersubscribedMargin,
                               [this](int uid, double rate) {
                                   r_t_[static_cast<size_t>(uid)] = rate;
                               });
            }
            if (!cuda_caps_.empty()) {
                AllocateMaxMin(cuda_caps_, cuda_sum,
                               spec_.cuda_flops_per_sm,
                               kUndersubscribedMargin,
                               [this](int uid, double rate) {
                                   r_c_[static_cast<size_t>(uid)] = rate;
                               });
            }

            uint32_t g = ++sm_gen_[static_cast<size_t>(s)];
            double sm_ckey = kInf;
            double sm_mkey = kInf;
            for (int uid : list) {
                const size_t i = static_cast<size_t>(uid);
                // Rates identical to the previous interval: the
                // unit's stored keys (derived when those rates were
                // first frozen) still describe the same linear
                // trajectory, so keep them instead of re-deriving.
                // This is exact, not a relaxation — it only skips
                // work when the water-fill reproduced the same
                // allocation bit-for-bit.
                if (r_t_[i] != old_t_[i] || r_c_[i] != old_c_[i] ||
                    r_mp_[i] != old_mp_[i]) {
                    const size_t op = static_cast<size_t>(unit_op_[i]);
                    sum_rt_[op] += r_t_[i] - ar_t_[i];
                    sum_rc_[op] += r_c_[i] - ar_c_[i];
                    sum_mp_[op] += r_mp_[i] - ar_mp_[i];
                    ar_t_[i] = r_t_[i];
                    ar_c_[i] = r_c_[i];
                    ar_mp_[i] = r_mp_[i];

                    double tkey = kInf;
                    if (rem_t_[i] > kDoneEps && r_t_[i] > 0.0) {
                        tkey = now_ + rem_t_[i] / r_t_[i];
                    }
                    if (rem_c_[i] > kDoneEps && r_c_[i] > 0.0) {
                        tkey = std::min(tkey, now_ + rem_c_[i] / r_c_[i]);
                    }
                    double mkey =
                        rem_m_[i] > kDoneEps && r_mp_[i] > 0.0
                            ? s_time_ + rem_m_[i] / r_mp_[i]
                            : kInf;
                    if (tkey == kInf && mkey == kInf) {
                        // No dimension can progress. If every
                        // dimension already drained (a neighbour's
                        // event landed in the unit's sub-epsilon
                        // residue window), schedule an immediate
                        // completion; a live-but-rateless unit would
                        // never finish — fail loudly, exactly as the
                        // oracle's starvation assert would.
                        bool all_drained = rem_t_[i] <= kDoneEps &&
                                           rem_c_[i] <= kDoneEps &&
                                           rem_m_[i] <= kDoneEps;
                        POD_ASSERT_MSG(all_drained,
                                       "starved unit %d on SM %d at "
                                       "t=%g",
                                       uid, s, now_);
                        tkey = now_;
                    }
                    comp_key_[i] = tkey;
                    mem_key_[i] = mkey;
                }
                sm_ckey = std::min(sm_ckey, comp_key_[i]);
                sm_mkey = std::min(sm_mkey, mem_key_[i]);
            }
            if (sm_ckey < kInf) {
                comp_heap_.push(HeapEntry{sm_ckey, s, g});
            }
            if (sm_mkey < kInf) {
                mem_heap_.push(HeapEntry{sm_mkey, s, g});
            }
        }
        dirty_sms_.clear();

        if (++recompute_batches_ % kResumPeriod == 0) {
            ResumAggregates();
        }
    }

    /**
     * Replace the incrementally-maintained sums with exact re-sums.
     * The increments drift by one rounding step per update; at the
     * default period the drift stays far below the tolerance bands,
     * and this keeps it bounded on arbitrarily long runs.
     */
    void
    ResumAggregates()
    {
        sum_rt_.fill(0.0);
        sum_rc_.fill(0.0);
        sum_mp_.fill(0.0);
        global_want_ = 0.0;
        for (const auto& sm : sms_) {
            for (int uid : sm.active_units) {
                const size_t i = static_cast<size_t>(uid);
                const size_t op = static_cast<size_t>(unit_op_[i]);
                sum_rt_[op] += ar_t_[i];
                sum_rc_[op] += ar_c_[i];
                sum_mp_[op] += ar_mp_[i];
            }
        }
        for (double want : sm_mem_want_) {
            global_want_ += want;
        }
    }

    /**
     * Integrate all accounting over [now_, now_ + dt] at the frozen
     * rates: per-op served work and busy time, utilization integrals,
     * energy, and the memory virtual time S.
     */
    void
    AccumulateInterval(double dt)
    {
        if (dt <= 0.0) return;
        const double ds = global_mem_scale_ * dt;
        double rate_tensor = 0.0;
        double rate_cuda = 0.0;
        double rate_mem_pre = 0.0;
        for (int op = 0; op < kNumOpClasses; ++op) {
            auto& stats = result_.per_op[static_cast<size_t>(op)];
            stats.tensor_flops += sum_rt_[static_cast<size_t>(op)] * dt;
            stats.cuda_flops += sum_rc_[static_cast<size_t>(op)] * dt;
            stats.mem_bytes += sum_mp_[static_cast<size_t>(op)] * ds;
            if (op_active_[static_cast<size_t>(op)] > 0) {
                stats.busy_time += dt;
            }
            rate_tensor += sum_rt_[static_cast<size_t>(op)];
            rate_cuda += sum_rc_[static_cast<size_t>(op)];
            rate_mem_pre += sum_mp_[static_cast<size_t>(op)];
        }
        served_tensor_ += rate_tensor * dt;
        served_cuda_ += rate_cuda * dt;
        served_mem_ += rate_mem_pre * ds;

        double rate_mem = rate_mem_pre * global_mem_scale_;
        double tensor_util = rate_tensor / spec_.TotalTensorFlops();
        double cuda_util = rate_cuda / spec_.TotalCudaFlops();
        double mem_util = rate_mem / spec_.hbm_bandwidth;
        double power = spec_.idle_power_w +
                       spec_.tensor_power_w * tensor_util +
                       spec_.cuda_power_w * cuda_util +
                       spec_.hbm_power_w * mem_util;
        energy_ += power * dt;

        s_time_ += ds;
    }

    /** Next valid compute-drain time (pops stale entries). */
    double
    PeekCompKey()
    {
        while (!comp_heap_.empty() &&
               comp_heap_.top().gen !=
                   sm_gen_[static_cast<size_t>(comp_heap_.top().sm)]) {
            comp_heap_.pop();
        }
        return comp_heap_.empty() ? kInf : comp_heap_.top().key;
    }

    /** Next valid memory-drain S key (pops stale entries). */
    double
    PeekMemKey()
    {
        while (!mem_heap_.empty() &&
               mem_heap_.top().gen !=
                   sm_gen_[static_cast<size_t>(mem_heap_.top().sm)]) {
            mem_heap_.pop();
        }
        return mem_heap_.empty() ? kInf : mem_heap_.top().key;
    }

    /**
     * A due unit (own key reached): materialize it and either advance
     * it past the drained phase or leave the partial drain for the
     * caller's SM recompute to re-rate and re-key.
     */
    void
    HandleUnitDue(int uid)
    {
        const size_t i = static_cast<size_t>(uid);
        comp_key_[i] = kInf;
        mem_key_[i] = kInf;
        Materialize(uid);
        if (rem_t_[i] > kDoneEps || rem_c_[i] > kDoneEps ||
            rem_m_[i] > kDoneEps) {
            // One dimension drained, others remain: the SM's demand
            // sets changed; the caller already queued the recompute
            // that zeroes the drained rate and re-keys the rest.
            return;
        }
        // Phase fully drained. Its rates leave the aggregates either
        // way: a continuing unit is re-added by the recompute
        // (possibly under a refilled op class).
        RemoveFromAggregates(uid);
        r_t_[i] = 0.0;
        r_c_[i] = 0.0;
        r_mp_[i] = 0.0;
        if (TryContinueUnit(uid, now_, rem_t_[i], rem_c_[i], rem_m_[i],
                            unit_op_[i])) {
            return;
        }
        ReleaseUnitCta(uid, now_);
    }

    /**
     * An SM's heap entry came due: scan its residents for units whose
     * own key is due and handle each. The SM's rates are stale
     * afterwards, so its entries are invalidated and re-pushed by the
     * recompute queued below.
     */
    void
    HandleSmEvent(int s)
    {
        ++sm_gen_[static_cast<size_t>(s)];  // stale the sibling entry
        const auto& list = sms_[static_cast<size_t>(s)].active_units;
        due_scratch_.clear();
        for (int uid : list) {
            const size_t i = static_cast<size_t>(uid);
            if (comp_key_[i] <= now_ || mem_key_[i] <= s_time_) {
                due_scratch_.push_back(uid);
            }
        }
        // Two loops: handling a due unit can retire it, which
        // swap-erases the SM list being scanned above.
        for (int uid : due_scratch_) {
            HandleUnitDue(uid);
        }
        OnSmTouched(s);
    }

    /** Pop and handle every SM entry due at (now, s_time_). */
    void
    ProcessDueEvents()
    {
        for (;;) {
            if (!comp_heap_.empty()) {
                HeapEntry top = comp_heap_.top();
                if (top.gen != sm_gen_[static_cast<size_t>(top.sm)]) {
                    comp_heap_.pop();
                    continue;
                }
                if (top.key <= now_) {
                    comp_heap_.pop();
                    HandleSmEvent(top.sm);
                    continue;
                }
            }
            if (!mem_heap_.empty()) {
                HeapEntry top = mem_heap_.top();
                if (top.gen != sm_gen_[static_cast<size_t>(top.sm)]) {
                    mem_heap_.pop();
                    continue;
                }
                if (top.key <= s_time_) {
                    mem_heap_.pop();
                    HandleSmEvent(top.sm);
                    continue;
                }
            }
            break;
        }
    }

    /**
     * Defensive recovery: re-derive every SM's rates from scratch.
     * Runs only if the incremental state loses a pending completion
     * (an engine bug, not a workload property); counted so the
     * telemetry surfaces it.
     */
    void
    ForceGlobalRecompute()
    {
        ++result_.oracle_fallback_events;
        for (size_t s = 0; s < sms_.size(); ++s) {
            if (!sms_[s].active_units.empty()) {
                OnSmTouched(static_cast<int>(s));
            }
        }
        ResumAggregates();
        RecomputeDirty();
    }

    // ---- SoA per-unit hot state (parallel arrays indexed by uid) ----
    std::vector<double> rem_t_;
    std::vector<double> rem_c_;
    std::vector<double> rem_m_;
    /** Frozen rates for the current interval (0 for drained dims). */
    std::vector<double> r_t_;
    std::vector<double> r_c_;
    std::vector<double> r_mp_;
    /** Rates currently folded into the per-op sums (the invariant
     *  sum_* == sum of ar_* over active units backs all accounting). */
    std::vector<double> ar_t_;
    std::vector<double> ar_c_;
    std::vector<double> ar_mp_;
    /** Static caps (SoA mirror of UnitCaps). */
    std::vector<double> cap_t_;
    std::vector<double> cap_c_;
    std::vector<double> cap_m_;
    std::vector<int> unit_sm_;
    std::vector<OpClass> unit_op_;
    /** Materialization stamps: real time and S. */
    std::vector<double> last_t_;
    std::vector<double> last_s_;
    /** Previous-interval rates (keep-keys test in RecomputeDirty). */
    std::vector<double> old_t_;
    std::vector<double> old_c_;
    std::vector<double> old_mp_;
    /** Pending per-unit keys: next compute drain (time) and next
     *  memory drain (S); kInf when none. The heaps carry only the
     *  per-SM minima of these. */
    std::vector<double> comp_key_;
    std::vector<double> mem_key_;

    // ---- per-SM rate-cache state ----
    std::vector<double> sm_mem_want_;
    std::vector<uint8_t> sm_dirty_;
    /** Heap-entry validity generation per SM. */
    std::vector<uint32_t> sm_gen_;
    std::vector<int> dirty_sms_;
    /** Scratch for HandleSmEvent (cleared, never reallocated). */
    std::vector<int> due_scratch_;

    /** Sum of per-SM memory wants (incremental; re-summed periodically). */
    double global_want_ = 0.0;

    /** Global HBM scale factor for the current interval. */
    double global_mem_scale_ = 1.0;

    /** Memory virtual time: S(t) = integral of global_mem_scale dt. */
    double s_time_ = 0.0;

    /** Current simulation time (mirrors Run's `now` for the hooks). */
    double now_ = 0.0;

    int num_active_ = 0;

    EventHeap comp_heap_;
    EventHeap mem_heap_;

    // Per-op rate sums for O(op classes) interval accounting.
    std::array<double, kNumOpClasses> sum_rt_ = {};
    std::array<double, kNumOpClasses> sum_rc_ = {};
    std::array<double, kNumOpClasses> sum_mp_ = {};

    long recompute_batches_ = 0;
    static constexpr long kResumPeriod = 4096;

    // Reused per-SM water-fill scratch (cleared, never reallocated).
    std::vector<std::pair<double, int>> tensor_caps_;
    std::vector<std::pair<double, int>> cuda_caps_;
};

SimResult
AnalyticSimulation::Run()
{
    double now = 0.0;
    long events = 0;

    DispatchAll(now);
    RecomputeDirty();
    while (finished_kernels_ < kernels_.size()) {
        POD_ASSERT_MSG(++events < kMaxEvents,
                       "simulation exceeded %ld events", kMaxEvents);

        if (num_active_ == 0) {
            // Nothing resident: jump to the next kernel-ready time.
            // Zero the rate sums outright — they are all-retired
            // remainders of incremental updates, i.e. pure drift.
            sum_rt_.fill(0.0);
            sum_rc_.fill(0.0);
            sum_mp_.fill(0.0);
            global_want_ = 0.0;
            double ready = NextReadyTime();
            POD_ASSERT_MSG(ready < kInf,
                           "deadlock: no active units at t=%g", now);
            now = std::max(now, ready);
            now_ = now;
            DispatchAll(now);
            RecomputeDirty();
            continue;
        }

        double t_comp = PeekCompKey();
        double s_next = PeekMemKey();
        double t_mem = kInf;
        if (s_next < kInf) {
            t_mem = s_next <= s_time_
                        ? now
                        : now + (s_next - s_time_) / global_mem_scale_;
        }
        double t_drain = std::min(t_comp, t_mem);
        if (t_drain == kInf) {
            // Active units but no pending completion: recover with a
            // full rescan (counted), then fail loudly if still stuck.
            ForceGlobalRecompute();
            t_comp = PeekCompKey();
            s_next = PeekMemKey();
            POD_ASSERT_MSG(std::min(t_comp, s_next) < kInf,
                           "starvation: active units with zero rates "
                           "at t=%g",
                           now);
            continue;
        }

        // Stop early at the next kernel-ready boundary, but only if it
        // is strictly in the future; a kernel that is already ready
        // and merely waiting for SM resources must not stall time.
        double t = t_drain;
        double ready = NextReadyTime();
        if (ready > now + 1e-15 && t > ready) {
            t = ready;
        }
        if (t < now) t = now;

        AccumulateInterval(t - now);
        now = t;
        now_ = now;
        if (t == t_mem && s_next > s_time_) {
            // Land exactly on the memory key: the back-conversion
            // through global_mem_scale_ rounds, and snapping S to the
            // key keeps the due-entry test exact.
            s_time_ = s_next;
        }
        ++result_.analytic_fastpath_events;
        ProcessDueEvents();
        DispatchAll(now);
        RecomputeDirty();
    }

    FinalizeResult(now);
    return result_;
}

}  // namespace

SimResult
RunAnalyticSimulation(const GpuSpec& spec, const SimOptions& options,
                      const std::vector<KernelLaunch>& launches)
{
    AnalyticSimulation sim(spec, options, launches);
    return sim.Run();
}

}  // namespace detail

FluidEngine::FluidEngine(GpuSpec spec, SimOptions options)
    : spec_(std::move(spec)), options_(options)
{
    spec_.Validate();
    POD_CHECK_ARG(options_.placement_jitter >= 0.0 &&
                      options_.placement_jitter <= 1.0,
                  "placement jitter must be a probability");
    POD_CHECK_ARG(options_.kernel_launch_overhead >= 0.0,
                  "launch overhead must be >= 0");
}

SimResult
FluidEngine::Run(const std::vector<KernelLaunch>& launches)
{
    POD_CHECK_ARG(!launches.empty(), "need at least one kernel launch");
    if (options_.core == EngineCore::kExactOracle) {
        return detail::RunOracleSimulation(spec_, options_, launches);
    }
    return detail::RunAnalyticSimulation(spec_, options_, launches);
}

SimResult
FluidEngine::RunKernel(const KernelDesc& kernel)
{
    std::vector<KernelLaunch> launches;
    launches.push_back(KernelLaunch{kernel, 0});
    return Run(launches);
}

}  // namespace pod::gpusim
