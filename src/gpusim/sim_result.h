/**
 * @file
 * Results reported by the fluid GPU simulator.
 */
#ifndef POD_GPUSIM_SIM_RESULT_H
#define POD_GPUSIM_SIM_RESULT_H

#include <array>
#include <string>
#include <vector>

#include "gpusim/work.h"

namespace pod::gpusim {

/** Timing of one kernel launch. */
struct KernelTiming
{
    std::string name;

    /** Time the first CTA of the kernel was dispatched. */
    double start_time = 0.0;

    /** Time the last CTA of the kernel completed. */
    double end_time = 0.0;

    /** Kernel duration. */
    double Duration() const { return end_time - start_time; }
};

/** Per-OpClass accounting. */
struct OpStats
{
    /** Tensor FLOPs served to units of this class. */
    double tensor_flops = 0.0;

    /** CUDA FLOPs served to units of this class. */
    double cuda_flops = 0.0;

    /** DRAM bytes served to units of this class. */
    double mem_bytes = 0.0;

    /** Wall time during which >= 1 unit of this class was resident. */
    double busy_time = 0.0;

    /** Completion time of the last unit of this class (0 if none). */
    double finish_time = 0.0;

    /** Number of work units of this class. */
    int unit_count = 0;
};

/** Complete result of one simulation run. */
struct SimResult
{
    /** Total elapsed time until the last CTA retired. */
    double total_time = 0.0;

    /** Per-launch timings, in submission order. */
    std::vector<KernelTiming> kernels;

    /**
     * Average tensor-core utilization over the run, relative to the
     * device's effective tensor throughput (0..1).
     */
    double tensor_util = 0.0;

    /** Average CUDA-core utilization over the run (0..1). */
    double cuda_util = 0.0;

    /** Average HBM bandwidth utilization over the run (0..1). */
    double mem_util = 0.0;

    /** Energy consumed in joules (utilization-weighted power model). */
    double energy_joules = 0.0;

    /** Per-operation-class accounting. */
    std::array<OpStats, kNumOpClasses> per_op;

    /** CTA completion times (only if SimOptions::record_cta_times). */
    std::vector<double> cta_finish_times;

    /** Total CTAs dispatched. */
    int total_ctas = 0;

    /**
     * Events the analytic core advanced with closed-form integration
     * (one per heap-driven event-loop iteration). Zero under the
     * ExactOracle core.
     */
    long analytic_fastpath_events = 0;

    /**
     * Events that fell back to stepwise/full-rescan handling: every
     * event under the ExactOracle core, plus the analytic core's
     * defensive full-rescan recoveries (expected 0 in normal runs --
     * nonzero values flag an analytic-core bug worth reporting).
     */
    long oracle_fallback_events = 0;

    /** Access accounting for one op class. */
    const OpStats&
    Op(OpClass op) const
    {
        return per_op[static_cast<size_t>(op)];
    }
};

}  // namespace pod::gpusim

#endif  // POD_GPUSIM_SIM_RESULT_H
