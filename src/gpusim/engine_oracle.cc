/**
 * @file
 * The stepwise exact-oracle event core (EngineCore::kExactOracle).
 *
 * This is the PR-3 incremental engine, kept alive verbatim as the
 * ground truth the analytic core (engine.cc) is validated against:
 * every floating-point operation runs in the same order as the seed
 * simulator, so the exact hex-literal goldens in
 * tests/gpusim/engine_regression_test.cc still pin it bit-identically.
 *
 * Why it is the slow path: compute rates are pinned to memory
 * progress through the pacing cap (a unit still streaming memory only
 * *wants* the compute rate that keeps pace with it), so any SM
 * hosting such a coupled unit must re-run its water-fill at every
 * event, and the next event is found by scanning every active unit.
 * That makes an event O(active units + coupled SMs * residents) --
 * the cost profile the analytic core exists to remove. See
 * docs/DESIGN.md S3.1/S3.2 for the full comparison.
 *
 * Only the rate model lives here; placement, dispatch, occupancy and
 * phase/refill transitions are shared with the analytic core through
 * SimulationBase (engine_internal.h), so the two cores can never
 * disagree on a discrete decision.
 */
#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "gpusim/engine_internal.h"
#include "gpusim/water_fill.h"

namespace pod::gpusim::detail {

namespace {

/**
 * Safety factor for multiply-compare filters that avoid divisions:
 * `a/b < c` is decided without dividing only when `a` clears
 * `b * c * kFilterMargin`, which over-covers the at-most-4-ulp
 * relative error of the product-vs-quotient comparison. Inside the
 * band, the exact division runs, so filtered decisions are always
 * bit-identical to dividing.
 */
constexpr double kFilterMargin = 1.0 + 1e-12;

/**
 * Per-unit state touched every event: six doubles + bookkeeping in a
 * packed 56-byte record. Measured faster than padding to a full
 * 64-byte line — the per-event sweeps are bandwidth-bound, so 12%
 * less traffic beats the occasional straddled line.
 */
struct UnitHot
{
    double rem_tensor = 0.0;
    double rem_cuda = 0.0;
    double rem_mem = 0.0;
    // Rates allocated for the current interval. Rates of a drained
    // dimension may be stale; every reader gates on rem > kDoneEps.
    // The final memory rate is r_mem_pre * global_mem_scale_.
    double r_tensor = 0.0;
    double r_cuda = 0.0;
    double r_mem_pre = 0.0;
    /** Home SM (duplicated from UnitState for the hot loops). */
    int sm = -1;
    /** Op class (duplicated from UnitState for the hot loops). */
    OpClass op = OpClass::kOther;
};

/** Full oracle-core state; one instance per Run call. */
class OracleSimulation : public SimulationBase<OracleSimulation>
{
    using Base = SimulationBase<OracleSimulation>;
    friend Base;

  public:
    OracleSimulation(const GpuSpec& spec, const SimOptions& options,
                     const std::vector<KernelLaunch>& launches)
        : Base(spec, options, launches)
    {
        size_t num_sms = static_cast<size_t>(spec_.num_sms);
        sm_active_count_.assign(num_sms, 0);
        sm_mem_want_.assign(num_sms, 0.0);
        sm_mem_dirty_.assign(num_sms, 0);
        sm_compute_dirty_.assign(num_sms, 0);
        sm_coupled_.assign(num_sms, 0);
    }

    SimResult Run();

  private:
    // ---- SimulationBase hooks ----

    /** Store the hot record for a new unit; false if it has no work. */
    bool
    AddUnit(UnitState& us, const UnitCaps& caps)
    {
        UnitHot hot;
        hot.sm = us.sm;
        hot.op = us.op;
        if (!LoadNextPhase(us, hot.rem_tensor, hot.rem_cuda,
                           hot.rem_mem)) {
            // Unit with no work: completes immediately.
            return false;
        }
        int unit_id = static_cast<int>(units_.size());
        units_.push_back(us);
        hot_.push_back(hot);
        unit_caps_.push_back(caps);
        phase_done_.push_back(0);
        active_units_.push_back(unit_id);
        sms_[static_cast<size_t>(us.sm)].active_units.push_back(unit_id);
        sm_active_count_[static_cast<size_t>(us.sm)] += 1;
        return true;
    }

    /** Mark an SM's cached rates stale after a membership change. */
    void
    OnSmTouched(int sm_id)
    {
        sm_mem_dirty_[static_cast<size_t>(sm_id)] = 1;
        sm_compute_dirty_[static_cast<size_t>(sm_id)] = 1;
    }

    /** Re-derive static caps after a refill swapped the lane's work. */
    void
    SetUnitCaps(int uid, const UnitState& u)
    {
        SetStaticCaps(u, unit_caps_[static_cast<size_t>(uid)]);
    }

    void
    OnUnitRetired(int /*uid*/, int sm_id)
    {
        sm_active_count_[static_cast<size_t>(sm_id)] -= 1;
    }

    // ---- the stepwise rate model ----

    /** Refresh resource rates, recomputing only what could change. */
    void RefreshRates();

    /** Earliest completion delta at current rates (may be inf). */
    double NextEventDelta() const;

    /** Advance all active units by dt, accumulating accounting. */
    void Advance(double dt);

    /** Handle all units whose current phase just completed. */
    void ProcessCompletions(double now);

    std::vector<UnitHot> hot_;
    std::vector<UnitCaps> unit_caps_;
    /** 1 when the unit's current phase fully drained (see Advance). */
    std::vector<uint8_t> phase_done_;
    std::vector<int> active_units_;

    // ---- per-SM incremental rate-cache state (parallel to sms_,
    // kept in flat arrays so per-event sweeps stay in-cache) ----
    std::vector<int> sm_active_count_;
    std::vector<double> sm_mem_want_;
    std::vector<uint8_t> sm_mem_dirty_;
    std::vector<uint8_t> sm_compute_dirty_;
    std::vector<int> sm_coupled_;

    /** Global HBM scale factor for the current interval. */
    double global_mem_scale_ = 1.0;

    /** Units whose phase drained in the last Advance. */
    int completions_pending_ = 0;

    // Reused per-SM water-fill scratch (cleared, never reallocated).
    std::vector<std::pair<double, int>> tensor_caps_;
    std::vector<std::pair<double, int>> cuda_caps_;
};

void
OracleSimulation::RefreshRates()
{
    const size_t num_sms = sms_.size();

    // --- memory bandwidth first: per-warp cap, per-SM cap, global
    // cap. Compute allocation below is demand-aware and needs the
    // memory rates. Per-SM demands are cached; only SMs whose memory
    // demand set changed recompute, and the global sum re-accumulates
    // cached wants in SM order (bit-identical to the full rescan). ---
    double global_want = 0.0;
    for (size_t s = 0; s < num_sms; ++s) {
        if (sm_active_count_[s] == 0) continue;
        if (sm_mem_dirty_[s]) {
            sm_mem_dirty_[s] = 0;
            const SmState& sm = sms_[s];
            double sm_want = 0.0;
            for (int uid : sm.active_units) {
                UnitHot& h = hot_[static_cast<size_t>(uid)];
                if (h.rem_mem > kDoneEps) {
                    h.r_mem_pre =
                        unit_caps_[static_cast<size_t>(uid)].mem_base;
                    sm_want += h.r_mem_pre;
                } else {
                    h.r_mem_pre = 0.0;
                }
            }
            if (sm_want > spec_.sm_bandwidth_cap) {
                double scale = spec_.sm_bandwidth_cap / sm_want;
                for (int uid : sm.active_units) {
                    hot_[static_cast<size_t>(uid)].r_mem_pre *= scale;
                }
                sm_want = spec_.sm_bandwidth_cap;
            }
            sm_mem_want_[s] = sm_want;
        }
        global_want += sm_mem_want_[s];
    }
    global_mem_scale_ = global_want > spec_.hbm_bandwidth
                            ? spec_.hbm_bandwidth / global_want
                            : 1.0;

    // --- per-SM compute allocation (tensor + CUDA cores) ---
    // Demand-aware: a unit that is still streaming memory in this
    // phase only *wants* the compute rate that keeps pace with its
    // memory (its math interleaves with memory stalls); purely
    // compute-bound units want their full cap. Max-min water-fill
    // over those wants lets prefill soak the tensor cores while
    // co-located decode sips them -- the behaviour POD relies on.
    // SMs with no coupled unit and no membership change keep the
    // cached allocation.
    for (size_t s = 0; s < num_sms; ++s) {
        if (sm_active_count_[s] == 0) continue;
        if (!sm_compute_dirty_[s] && sm_coupled_[s] == 0) continue;
        sm_compute_dirty_[s] = 0;

        // One pass builds both demand lists (tensor + CUDA).
        tensor_caps_.clear();
        cuda_caps_.clear();
        double tensor_sum = 0.0;
        double cuda_sum = 0.0;
        for (int uid : sms_[s].active_units) {
            const UnitCaps& c = unit_caps_[static_cast<size_t>(uid)];
            UnitHot& h = hot_[static_cast<size_t>(uid)];
            double r_mem = h.r_mem_pre * global_mem_scale_;
            bool paced = h.rem_mem > kDoneEps && r_mem > 0.0;
            if (h.rem_tensor > kDoneEps) {
                double cap = c.tensor_cap;
                if (paced) {
                    cap = std::min(
                        cap, 1.1 * h.rem_tensor * r_mem / h.rem_mem);
                }
                tensor_caps_.emplace_back(cap, uid);
                tensor_sum += cap;
            }
            if (h.rem_cuda > kDoneEps) {
                double cap = c.cuda_cap;
                if (paced) {
                    cap = std::min(cap,
                                   1.1 * h.rem_cuda * r_mem / h.rem_mem);
                }
                cuda_caps_.emplace_back(cap, uid);
                cuda_sum += cap;
            }
        }
        if (!tensor_caps_.empty()) {
            AllocateMaxMin(tensor_caps_, tensor_sum,
                           spec_.tensor_flops_per_sm,
                           kUndersubscribedMargin,
                           [this](int uid, double rate) {
                               hot_[static_cast<size_t>(uid)].r_tensor =
                                   rate;
                           });
        }
        if (!cuda_caps_.empty()) {
            AllocateMaxMin(cuda_caps_, cuda_sum, spec_.cuda_flops_per_sm,
                           kUndersubscribedMargin,
                           [this](int uid, double rate) {
                               hot_[static_cast<size_t>(uid)].r_cuda =
                                   rate;
                           });
        }
    }
}

double
OracleSimulation::NextEventDelta() const
{
    const double gscale = global_mem_scale_;
    // Two independent partial minima hide the FP-min latency chain;
    // min over doubles is exactly associative, so any grouping yields
    // the bit-identical result. Each candidate rem/r can lower the
    // minimum only if rem < dt*r; the filter margin over-covers the
    // comparison's rounding, so a division runs only for candidates
    // that may actually set the minimum -- the returned dt is the
    // bit-identical min of exact quotients.
    double dt_a = kInf;
    double dt_b = kInf;
    for (int uid : active_units_) {
        const UnitHot& h = hot_[static_cast<size_t>(uid)];
        if (h.rem_tensor > kDoneEps && h.r_tensor > 0.0 &&
            h.rem_tensor < dt_a * h.r_tensor * kFilterMargin) {
            dt_a = std::min(dt_a, h.rem_tensor / h.r_tensor);
        }
        if (h.rem_cuda > kDoneEps && h.r_cuda > 0.0 &&
            h.rem_cuda < dt_b * h.r_cuda * kFilterMargin) {
            dt_b = std::min(dt_b, h.rem_cuda / h.r_cuda);
        }
        if (h.rem_mem > kDoneEps) {
            double r_mem = h.r_mem_pre * gscale;
            if (r_mem > 0.0 &&
                h.rem_mem < dt_a * r_mem * kFilterMargin) {
                dt_a = std::min(dt_a, h.rem_mem / r_mem);
            }
        }
    }
    return std::min(dt_a, dt_b);
}

void
OracleSimulation::Advance(double dt)
{
    std::fill(sm_coupled_.begin(), sm_coupled_.end(), 0);
    const double gscale = global_mem_scale_;

    double rate_tensor = 0.0;
    double rate_cuda = 0.0;
    double rate_mem = 0.0;
    int pending = 0;
    // Local per-op accumulators keep the (order-pinned) accounting
    // adds in registers instead of store-forwarding through result_.
    double acc_tensor[kNumOpClasses];
    double acc_cuda[kNumOpClasses];
    double acc_mem[kNumOpClasses];
    for (int op = 0; op < kNumOpClasses; ++op) {
        const auto& stats = result_.per_op[static_cast<size_t>(op)];
        acc_tensor[op] = stats.tensor_flops;
        acc_cuda[op] = stats.cuda_flops;
        acc_mem[op] = stats.mem_bytes;
    }
    for (int uid : active_units_) {
        UnitHot& h = hot_[static_cast<size_t>(uid)];
        const size_t opi = static_cast<size_t>(h.op);
        const bool had_tensor = h.rem_tensor > kDoneEps;
        const bool had_cuda = h.rem_cuda > kDoneEps;
        const bool had_mem = h.rem_mem > kDoneEps;
        if (had_tensor) {
            double amount = h.r_tensor * dt;
            h.rem_tensor -= amount;
            acc_tensor[opi] += amount;
            rate_tensor += h.r_tensor;
        }
        if (had_cuda) {
            double amount = h.r_cuda * dt;
            h.rem_cuda -= amount;
            acc_cuda[opi] += amount;
            rate_cuda += h.r_cuda;
        }
        if (had_mem) {
            double r_mem = h.r_mem_pre * gscale;
            double amount = r_mem * dt;
            h.rem_mem -= amount;
            acc_mem[opi] += amount;
            rate_mem += r_mem;
        }

        // Post-advance bookkeeping for the incremental rate cache:
        // a drained dimension changes the SM's demand sets, and a
        // still-coupled unit keeps its SM's water-fill live.
        const bool has_tensor = h.rem_tensor > kDoneEps;
        const bool has_cuda = h.rem_cuda > kDoneEps;
        const bool has_mem = h.rem_mem > kDoneEps;
        const size_t s = static_cast<size_t>(h.sm);
        sm_mem_dirty_[s] |=
            static_cast<uint8_t>(had_mem && !has_mem);
        sm_compute_dirty_[s] |=
            static_cast<uint8_t>(had_tensor != has_tensor ||
                                 had_cuda != has_cuda ||
                                 had_mem != has_mem);
        sm_coupled_[s] +=
            static_cast<int>(has_mem && (has_tensor || has_cuda));
        const int done =
            static_cast<int>(!has_tensor && !has_cuda && !has_mem);
        phase_done_[static_cast<size_t>(uid)] =
            static_cast<uint8_t>(done);
        pending += done;
    }
    completions_pending_ = pending;
    for (int op = 0; op < kNumOpClasses; ++op) {
        auto& stats = result_.per_op[static_cast<size_t>(op)];
        stats.tensor_flops = acc_tensor[op];
        stats.cuda_flops = acc_cuda[op];
        stats.mem_bytes = acc_mem[op];
    }
    served_tensor_ += rate_tensor * dt;
    served_cuda_ += rate_cuda * dt;
    served_mem_ += rate_mem * dt;

    for (int op = 0; op < kNumOpClasses; ++op) {
        if (op_active_[static_cast<size_t>(op)] > 0) {
            result_.per_op[static_cast<size_t>(op)].busy_time += dt;
        }
    }

    double tensor_util = rate_tensor / spec_.TotalTensorFlops();
    double cuda_util = rate_cuda / spec_.TotalCudaFlops();
    double mem_util = rate_mem / spec_.hbm_bandwidth;
    double power = spec_.idle_power_w + spec_.tensor_power_w * tensor_util +
                   spec_.cuda_power_w * cuda_util +
                   spec_.hbm_power_w * mem_util;
    energy_ += power * dt;
}

void
OracleSimulation::ProcessCompletions(double now)
{
    if (completions_pending_ == 0) return;
    for (size_t i = 0; i < active_units_.size();) {
        int uid = active_units_[i];
        if (!phase_done_[static_cast<size_t>(uid)]) {
            ++i;
            continue;
        }
        UnitHot& h = hot_[static_cast<size_t>(uid)];
        // The stale done-flag of a continuing unit is rewritten by the
        // next Advance before ProcessCompletions reads it again.
        if (TryContinueUnit(uid, now, h.rem_tensor, h.rem_cuda,
                            h.rem_mem, h.op)) {
            ++i;
            continue;
        }
        // Remove from the global active list (swap-erase).
        active_units_[i] = active_units_.back();
        active_units_.pop_back();
        ReleaseUnitCta(uid, now);
    }
}

SimResult
OracleSimulation::Run()
{
    double now = 0.0;
    long events = 0;

    DispatchAll(now);
    while (finished_kernels_ < kernels_.size()) {
        POD_ASSERT_MSG(++events < kMaxEvents,
                       "simulation exceeded %ld events", kMaxEvents);

        if (active_units_.empty()) {
            // Nothing resident: jump to the next kernel-ready time.
            double ready = NextReadyTime();
            POD_ASSERT_MSG(ready < kInf,
                           "deadlock: no active units at t=%g", now);
            now = std::max(now, ready);
            DispatchAll(now);
            continue;
        }

        RefreshRates();
        double dt = NextEventDelta();
        POD_ASSERT_MSG(dt < kInf,
                       "starvation: active units with zero rates at t=%g",
                       now);
        // Stop early at the next kernel-ready boundary, but only if it
        // is strictly in the future; a kernel that is already ready
        // and merely waiting for SM resources must not stall time.
        double ready = NextReadyTime();
        if (ready > now + 1e-15 && now + dt > ready) {
            dt = ready - now;
        }
        Advance(dt);
        now += dt;
        result_.oracle_fallback_events += 1;
        ProcessCompletions(now);
        DispatchAll(now);
    }

    FinalizeResult(now);
    return result_;
}

}  // namespace

SimResult
RunOracleSimulation(const GpuSpec& spec, const SimOptions& options,
                    const std::vector<KernelLaunch>& launches)
{
    OracleSimulation sim(spec, options, launches);
    return sim.Run();
}

}  // namespace pod::gpusim::detail
