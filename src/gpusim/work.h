/**
 * @file
 * Work descriptions consumed by the fluid GPU simulator.
 *
 * A kernel is a set of CTAs; a CTA hosts one or more independent
 * WorkUnits (one for normal kernels; several for POD's virtual decode
 * CTAs and for HFuse-style warp-parallel fusion, where the CTA only
 * retires when its slowest unit finishes -- the straggler effect).
 * A WorkUnit is a sequence of Phases separated by CTA/warp-level
 * barriers; within a phase, tensor-core work, CUDA-core work and HBM
 * traffic proceed concurrently (flash kernels double-buffer), and the
 * phase completes when all three are served.
 */
#ifndef POD_GPUSIM_WORK_H
#define POD_GPUSIM_WORK_H

#include <functional>
#include <string>
#include <vector>

namespace pod::gpusim {

/** Operation class, used for accounting and scheduling policies. */
enum class OpClass : int {
    kPrefill = 0,   ///< Prefill attention work.
    kDecode = 1,    ///< Decode attention work.
    kCompute = 2,   ///< Generic compute-bound work (micro kernels).
    kMemory = 3,    ///< Generic memory-bound work (micro kernels).
    kOther = 4,     ///< Anything else.
};

/** Number of OpClass values (for array-indexed accounting). */
inline constexpr int kNumOpClasses = 5;

/** Printable name of an OpClass. */
const char* OpClassName(OpClass op);

/**
 * One barrier-delimited slice of a WorkUnit's execution.
 * All demands within a phase are served concurrently.
 */
struct Phase
{
    /** Tensor-core work in FLOPs. */
    double tensor_flops = 0.0;

    /** CUDA-core (scalar/vector ALU) work in FLOPs. */
    double cuda_flops = 0.0;

    /** DRAM traffic in bytes. */
    double mem_bytes = 0.0;

    /** True if the phase carries no work at all. */
    bool
    Empty() const
    {
        return tensor_flops <= 0.0 && cuda_flops <= 0.0 && mem_bytes <= 0.0;
    }
};

/**
 * An independently progressing strand of work inside a CTA.
 *
 * The warp count bounds how much of each SM resource the unit can
 * draw: memory bandwidth scales with warps (outstanding loads) and a
 * few warps saturate the tensor cores.
 */
struct WorkUnit
{
    /** Barrier-delimited phases, executed in order. */
    std::vector<Phase> phases;

    /** Warps executing this unit. */
    int warps = 4;

    /** Operation class for accounting. */
    OpClass op = OpClass::kOther;

    /**
     * Optional memory-bandwidth cap for this unit in bytes/s,
     * modelling its achievable memory-level parallelism. 0 derives
     * the cap from the warp count (warps x GpuSpec::warp_bandwidth_cap);
     * kernels using async copies can sustain more outstanding loads
     * per warp and set this explicitly.
     */
    double mem_bw_cap = 0.0;

    /** Total tensor FLOPs over all phases. */
    double TotalTensorFlops() const;

    /** Total CUDA FLOPs over all phases. */
    double TotalCudaFlops() const;

    /** Total DRAM bytes over all phases. */
    double TotalMemBytes() const;
};

/**
 * Per-CTA resource footprint, fixed at kernel launch time
 * (as on real hardware).
 */
struct CtaResources
{
    /** Threads per CTA. */
    int threads = 128;

    /** Shared memory per CTA in bytes. */
    double shared_mem_bytes = 0.0;
};

/** The work a dispatched CTA performs. */
struct CtaWork
{
    /** Independent work strands hosted by this CTA. */
    std::vector<WorkUnit> units;

    /** Aggregate tensor FLOPs of all units. */
    double TotalTensorFlops() const;

    /** Aggregate CUDA FLOPs of all units. */
    double TotalCudaFlops() const;

    /** Aggregate DRAM bytes of all units. */
    double TotalMemBytes() const;
};

/**
 * Kernel description: a grid of CTAs with a uniform resource
 * footprint and a work-assignment function.
 *
 * Static kernels capture their CTA work lists in the closure and
 * ignore the SM id. SM-aware kernels (POD-Attention) inspect the SM
 * id at dispatch time -- the simulator calls `assign` exactly when the
 * hardware scheduler places the CTA, mirroring runtime operation
 * binding (paper Fig. 9).
 */
struct KernelDesc
{
    /** Kernel name for reporting. */
    std::string name = "kernel";

    /** Uniform per-CTA resource footprint. */
    CtaResources resources;

    /** Number of CTAs in the grid. */
    int cta_count = 0;

    /**
     * Work assignment, invoked once per CTA at dispatch.
     * @param cta_index dispatch sequence number in [0, cta_count).
     * @param sm_id SM the hardware scheduler placed this CTA on.
     */
    std::function<CtaWork(int cta_index, int sm_id)> assign;

    /**
     * Optional cap on resident CTAs of this kernel per SM
     * (0 = limited only by threads/shared memory/slot limits).
     */
    int max_ctas_per_sm = 0;

    /**
     * Optional persistent-threads refill (paper S4.4): when a work
     * unit of this kernel completes, the engine invokes
     * refill(sm_id, lane_op, &next); if it returns true, the same
     * lane continues with `next` instead of retiring -- the CTA's
     * resources are never released between work items. lane_op is the
     * op class of the unit that just finished, so lanes pull work
     * matching their warp shape.
     */
    std::function<bool(int sm_id, OpClass lane_op, WorkUnit* next)> refill;

    /** Convenience: build a static kernel from a list of CTA works. */
    static KernelDesc FromWorks(std::string name, CtaResources res,
                                std::vector<CtaWork> works);
};

/** A kernel submitted to a stream. */
struct KernelLaunch
{
    KernelDesc kernel;

    /** Stream id; kernels in a stream serialize, streams may overlap. */
    int stream = 0;
};

}  // namespace pod::gpusim

#endif  // POD_GPUSIM_WORK_H
