/**
 * @file
 * Implementation of the gpusim -> trace-span adapter.
 */
#include "gpusim/trace_export.h"

namespace pod::gpusim {

void
ExportKernelSpans(const SimResult& result,
                  telemetry::TraceRecorder& recorder, double t0_seconds)
{
    for (const KernelTiming& kernel : result.kernels) {
        int name_ref = recorder.InternName(kernel.name);
        recorder.NamedSpan(telemetry::EventKind::kKernel, name_ref,
                           t0_seconds + kernel.start_time,
                           kernel.Duration(),
                           telemetry::TraceRecorder::kEngineTrack);
    }
}

}  // namespace pod::gpusim
