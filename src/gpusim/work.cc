/**
 * @file
 * Implementation of work-description helpers.
 */
#include "gpusim/work.h"

#include <memory>

#include "common/logging.h"

namespace pod::gpusim {

const char*
OpClassName(OpClass op)
{
    switch (op) {
      case OpClass::kPrefill: return "prefill";
      case OpClass::kDecode: return "decode";
      case OpClass::kCompute: return "compute";
      case OpClass::kMemory: return "memory";
      case OpClass::kOther: return "other";
    }
    return "unknown";
}

double
WorkUnit::TotalTensorFlops() const
{
    double total = 0.0;
    for (const auto& p : phases) total += p.tensor_flops;
    return total;
}

double
WorkUnit::TotalCudaFlops() const
{
    double total = 0.0;
    for (const auto& p : phases) total += p.cuda_flops;
    return total;
}

double
WorkUnit::TotalMemBytes() const
{
    double total = 0.0;
    for (const auto& p : phases) total += p.mem_bytes;
    return total;
}

double
CtaWork::TotalTensorFlops() const
{
    double total = 0.0;
    for (const auto& u : units) total += u.TotalTensorFlops();
    return total;
}

double
CtaWork::TotalCudaFlops() const
{
    double total = 0.0;
    for (const auto& u : units) total += u.TotalCudaFlops();
    return total;
}

double
CtaWork::TotalMemBytes() const
{
    double total = 0.0;
    for (const auto& u : units) total += u.TotalMemBytes();
    return total;
}

KernelDesc
KernelDesc::FromWorks(std::string name, CtaResources res,
                      std::vector<CtaWork> works)
{
    KernelDesc desc;
    desc.name = std::move(name);
    desc.resources = res;
    desc.cta_count = static_cast<int>(works.size());
    auto shared = std::make_shared<std::vector<CtaWork>>(std::move(works));
    desc.assign = [shared](int cta_index, int /*sm_id*/) {
        POD_ASSERT(cta_index >= 0 &&
                   cta_index < static_cast<int>(shared->size()));
        return (*shared)[static_cast<size_t>(cta_index)];
    };
    return desc;
}

}  // namespace pod::gpusim
