/**
 * @file
 * Shared machinery of the two fluid-engine cores (docs/DESIGN.md S3).
 *
 * The analytic core (engine.cc) and the stepwise exact oracle
 * (engine_oracle.cc) must agree on everything that is *not* rate
 * arithmetic: kernel/stream sequencing, CTA placement (PickSm and its
 * RNG draws), occupancy accounting, phase/refill transitions and
 * result assembly. Any drift there would turn placement differences
 * into unbounded divergence between the cores, so that machinery
 * lives here once, as a CRTP base, and each core supplies only its
 * rate model through small hooks:
 *
 *  - AddUnit(unit_state, caps): store the core's hot state for a new
 *    unit, load its first phase, register it in the active sets.
 *    Returns false for a unit with no work.
 *  - OnSmTouched(sm): an SM's resident-demand set changed (dispatch,
 *    phase transition, refill, retirement) -- invalidate whatever the
 *    core caches about it.
 *  - SetUnitCaps(uid, unit_state): (re)derive the static per-unit
 *    rate caps after a refill swapped the lane's work.
 *  - OnUnitRetired(uid, sm): the unit left the active sets.
 *
 * The base is header-only and CRTP (no virtual dispatch), so the
 * oracle compiles to exactly the pre-split code: its bit-identical
 * regression pins (tests/gpusim/engine_regression_test.cc) still hold.
 */
#ifndef POD_GPUSIM_ENGINE_INTERNAL_H
#define POD_GPUSIM_ENGINE_INTERNAL_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "gpusim/engine.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/sim_result.h"
#include "gpusim/water_fill.h"
#include "gpusim/work.h"

namespace pod::gpusim::detail {

/** Work below this many FLOPs/bytes counts as finished. */
constexpr double kDoneEps = 1e-3;

/** Upper bound on simulation events, guards against engine bugs. */
constexpr long kMaxEvents = 200'000'000;

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Relative margin under which the closed-form "everyone gets their
 * cap" shortcut for an under-subscribed water-fill is not trusted:
 * within it, the exact sequential water-fill runs instead, so shares
 * perturbed by summation rounding can never flip an allocation.
 */
constexpr double kUndersubscribedMargin = 1.0 - 1e-12;

/** Static per-unit rate caps, derived once per dispatch/refill. */
struct UnitCaps
{
    double tensor_cap = 0.0;
    double cuda_cap = 0.0;
    double mem_base = 0.0;
};

/** Per-unit bookkeeping read at transitions, not every event. */
struct UnitState
{
    int cta = -1;
    int sm = -1;
    OpClass op = OpClass::kOther;
    int warps = 4;
    double mem_bw_cap = 0.0;
    /** Remaining phases: arena range [phase_next, phase_end). */
    uint32_t phase_next = 0;
    uint32_t phase_end = 0;
    bool done = false;
};

/** Mutable execution state of one CTA. */
struct CtaState
{
    int kernel = -1;
    int sm = -1;
    int threads = 0;
    double smem = 0.0;
    int remaining_units = 0;
};

/** Mutable state of one SM (occupancy; rate state lives per-core). */
struct SmState
{
    int free_threads = 0;
    double free_smem = 0.0;
    int resident_ctas = 0;
    /** Resident CTA count per kernel (indexed by kernel id). */
    std::vector<int> kernel_resident;
    /** Ids of active (not done) units on this SM. */
    std::vector<int> active_units;
};

/** Mutable state of one kernel launch. */
struct KernelState
{
    const KernelDesc* desc = nullptr;
    int stream = 0;
    int dispatched = 0;
    int completed_ctas = 0;
    bool started = false;
    bool finished = false;
    double ready_time = kInf;
    double start_time = 0.0;
    double end_time = 0.0;
};

/** One in-order stream of kernels. */
struct StreamState
{
    std::vector<int> kernels;
    size_t head = 0;
};

/**
 * Engine-core-independent simulation state and transitions; one
 * instance per FluidEngine::Run call. `Derived` supplies the rate
 * model (see file header).
 */
template <class Derived>
class SimulationBase
{
  protected:
    SimulationBase(const GpuSpec& spec, const SimOptions& options,
                   const std::vector<KernelLaunch>& launches)
        : spec_(spec), options_(options), rng_(options.seed)
    {
        size_t num_sms = static_cast<size_t>(spec_.num_sms);
        sms_.resize(num_sms);
        for (auto& sm : sms_) {
            sm.free_threads = spec_.max_threads_per_sm;
            sm.free_smem = spec_.shared_mem_per_sm;
            sm.kernel_resident.assign(launches.size(), 0);
        }

        kernels_.reserve(launches.size());
        int max_stream = 0;
        for (const auto& launch : launches) {
            max_stream = std::max(max_stream, launch.stream);
        }
        streams_.resize(static_cast<size_t>(max_stream) + 1);
        for (size_t i = 0; i < launches.size(); ++i) {
            KernelState ks;
            ks.desc = &launches[i].kernel;
            ks.stream = launches[i].stream;
            POD_CHECK_ARG(ks.desc->cta_count >= 0,
                          "kernel CTA count must be >= 0");
            POD_CHECK_ARG(ks.desc->cta_count == 0 || ks.desc->assign,
                          "kernel with CTAs needs an assign function");
            kernels_.push_back(ks);
            streams_[static_cast<size_t>(launches[i].stream)]
                .kernels.push_back(static_cast<int>(i));
        }
        // Arm the head kernel of every stream.
        for (auto& stream : streams_) {
            ArmHead(stream, 0.0);
        }
    }

    Derived&
    self()
    {
        return static_cast<Derived&>(*this);
    }

    /** Make the stream-head kernel dispatchable after launch overhead. */
    void
    ArmHead(StreamState& stream, double now)
    {
        while (stream.head < stream.kernels.size()) {
            KernelState& ks =
                kernels_[static_cast<size_t>(stream.kernels[stream.head])];
            ks.ready_time = now + options_.kernel_launch_overhead;
            if (ks.desc->cta_count > 0) {
                break;
            }
            // Empty kernel: completes as soon as it becomes ready.
            ks.started = true;
            ks.finished = true;
            ++finished_kernels_;
            ks.start_time = ks.ready_time;
            ks.end_time = ks.ready_time;
            ++stream.head;
        }
    }

    /** True if the CTA footprint fits on the SM right now. */
    bool
    Fits(const SmState& sm, const KernelDesc& desc, int kernel_id) const
    {
        if (sm.free_threads < desc.resources.threads) return false;
        if (sm.free_smem < desc.resources.shared_mem_bytes) return false;
        if (sm.resident_ctas >= spec_.max_ctas_per_sm) return false;
        if (desc.max_ctas_per_sm > 0 &&
            sm.kernel_resident[static_cast<size_t>(kernel_id)] >=
                desc.max_ctas_per_sm) {
            return false;
        }
        return true;
    }

    /**
     * Choose an SM for the next CTA: first fit scanning round-robin
     * from a rotating pointer (models the hardware work distributor),
     * optionally skipping to the next fit with placement_jitter
     * probability. Returns -1 if nothing fits.
     */
    int
    PickSm(const KernelDesc& desc, int kernel_id)
    {
        int first_fit = -1;
        int second_fit = -1;
        for (int off = 0; off < spec_.num_sms; ++off) {
            int sm = (rr_pointer_ + off) % spec_.num_sms;
            if (Fits(sms_[static_cast<size_t>(sm)], desc, kernel_id)) {
                if (first_fit < 0) {
                    first_fit = sm;
                    if (options_.placement_jitter <= 0.0) break;
                } else {
                    second_fit = sm;
                    break;
                }
            }
        }
        if (first_fit < 0) return -1;
        int chosen = first_fit;
        if (second_fit >= 0 && rng_.Bernoulli(options_.placement_jitter)) {
            chosen = second_fit;
        }
        rr_pointer_ = (chosen + 1) % spec_.num_sms;
        return chosen;
    }

    /**
     * Load the unit's next phase work into the given remaining-work
     * slots (the core's hot storage); false if no more non-empty
     * phases.
     */
    bool
    LoadNextPhase(UnitState& u, double& rem_tensor, double& rem_cuda,
                  double& rem_mem)
    {
        while (u.phase_next < u.phase_end) {
            const Phase& p = phase_arena_[u.phase_next];
            ++u.phase_next;
            if (!p.Empty()) {
                rem_tensor = p.tensor_flops;
                rem_cuda = p.cuda_flops;
                rem_mem = p.mem_bytes;
                return true;
            }
        }
        return false;
    }

    /** Append a work list's phases to the arena; returns the range. */
    std::pair<uint32_t, uint32_t>
    StorePhases(const std::vector<Phase>& phases)
    {
        uint32_t begin = static_cast<uint32_t>(phase_arena_.size());
        phase_arena_.insert(phase_arena_.end(), phases.begin(),
                            phases.end());
        return {begin, static_cast<uint32_t>(phase_arena_.size())};
    }

    /** Derive the static per-unit rate caps from warps and the spec. */
    void
    SetStaticCaps(const UnitState& u, UnitCaps& caps) const
    {
        caps.tensor_cap =
            spec_.tensor_flops_per_sm *
            std::min(1.0, static_cast<double>(u.warps) /
                              spec_.warps_per_tensor_saturation);
        caps.cuda_cap =
            spec_.cuda_flops_per_sm *
            std::min(1.0, static_cast<double>(u.warps) /
                              spec_.warps_per_cuda_saturation);
        caps.mem_base = u.mem_bw_cap > 0.0
                            ? u.mem_bw_cap
                            : static_cast<double>(u.warps) *
                                  spec_.warp_bandwidth_cap;
    }

    /** Place one CTA of the kernel; false if no SM has room. */
    bool
    DispatchOne(int kernel_id, double now)
    {
        KernelState& ks = kernels_[static_cast<size_t>(kernel_id)];
        const KernelDesc& desc = *ks.desc;
        int sm_id = PickSm(desc, kernel_id);
        if (sm_id < 0) return false;

        SmState& sm = sms_[static_cast<size_t>(sm_id)];
        sm.free_threads -= desc.resources.threads;
        sm.free_smem -= desc.resources.shared_mem_bytes;
        sm.resident_ctas += 1;
        sm.kernel_resident[static_cast<size_t>(kernel_id)] += 1;

        if (!ks.started) {
            ks.started = true;
            ks.start_time = now;
        }

        CtaWork work = desc.assign(ks.dispatched, sm_id);
        ks.dispatched += 1;

        int cta_id = static_cast<int>(ctas_.size());
        CtaState cta;
        cta.kernel = kernel_id;
        cta.sm = sm_id;
        cta.threads = desc.resources.threads;
        cta.smem = desc.resources.shared_mem_bytes;
        cta.remaining_units = 0;
        ctas_.push_back(cta);
        ++total_ctas_;

        for (auto& unit : work.units) {
            UnitState us;
            UnitCaps caps;
            us.cta = cta_id;
            us.sm = sm_id;
            us.op = unit.op;
            us.warps = std::max(1, unit.warps);
            us.mem_bw_cap = unit.mem_bw_cap;
            std::tie(us.phase_next, us.phase_end) =
                StorePhases(unit.phases);
            SetStaticCaps(us, caps);
            result_.per_op[static_cast<size_t>(us.op)].unit_count += 1;
            // The hook loads the first phase and registers the unit;
            // a unit with no work completes immediately (not added).
            if (self().AddUnit(us, caps)) {
                ctas_[static_cast<size_t>(cta_id)].remaining_units += 1;
                op_active_[static_cast<size_t>(us.op)] += 1;
            }
        }
        self().OnSmTouched(sm_id);

        if (ctas_[static_cast<size_t>(cta_id)].remaining_units == 0) {
            // CTA carried no work at all; retire it on the spot.
            RetireCta(cta_id, now);
        }
        return true;
    }

    /**
     * Dispatch as many ready CTAs as fit, draining streams in
     * submission order (earlier streams get priority, later streams
     * backfill) -- the behaviour the paper observes for CUDA streams.
     */
    void
    DispatchAll(double now)
    {
        for (auto& stream : streams_) {
            while (stream.head < stream.kernels.size()) {
                int kid = stream.kernels[stream.head];
                KernelState& ks = kernels_[static_cast<size_t>(kid)];
                if (now + 1e-15 < ks.ready_time) break;
                if (ks.dispatched >= ks.desc->cta_count) break;
                if (!DispatchOne(kid, now)) break;
            }
        }
    }

    /** Free a finished CTA's resources and advance kernel/stream state. */
    void
    RetireCta(int cta_id, double now)
    {
        CtaState& cta = ctas_[static_cast<size_t>(cta_id)];
        SmState& sm = sms_[static_cast<size_t>(cta.sm)];
        sm.free_threads += cta.threads;
        sm.free_smem += cta.smem;
        sm.resident_ctas -= 1;
        sm.kernel_resident[static_cast<size_t>(cta.kernel)] -= 1;
        if (options_.record_cta_times) {
            result_.cta_finish_times.push_back(now);
        }

        KernelState& ks = kernels_[static_cast<size_t>(cta.kernel)];
        ks.completed_ctas += 1;
        if (ks.completed_ctas == ks.desc->cta_count) {
            ks.finished = true;
            ++finished_kernels_;
            ks.end_time = now;
            StreamState& stream = streams_[static_cast<size_t>(ks.stream)];
            // The finished kernel must be the stream head.
            POD_ASSERT(stream.head < stream.kernels.size());
            ++stream.head;
            ArmHead(stream, now);
        }
    }

    /** Earliest pending kernel ready time (absolute; may be inf). */
    double
    NextReadyTime() const
    {
        double t = kInf;
        for (const auto& stream : streams_) {
            if (stream.head < stream.kernels.size()) {
                const KernelState& ks = kernels_[static_cast<size_t>(
                    stream.kernels[stream.head])];
                if (!ks.finished && ks.dispatched < ks.desc->cta_count) {
                    t = std::min(t, ks.ready_time);
                }
            }
        }
        return t;
    }

    /**
     * Advance a unit whose current phase fully drained: load the next
     * phase, or (for persistent kernels) refill the lane with the next
     * queued work item (paper S4.4), or retire the unit.
     *
     * Returns true if the unit continues (new phase loaded into the
     * given hot slots); false if it retired -- in that case all
     * bookkeeping except the caller's own active-list removal and the
     * CTA release (ReleaseUnitCta) has been performed.
     */
    bool
    TryContinueUnit(int uid, double now, double& rem_tensor,
                    double& rem_cuda, double& rem_mem, OpClass& hot_op)
    {
        UnitState& u = units_[static_cast<size_t>(uid)];
        if (LoadNextPhase(u, rem_tensor, rem_cuda, rem_mem)) {
            // New phase, new demands: the SM's cached rates are stale.
            self().OnSmTouched(u.sm);
            return true;
        }
        const KernelDesc* desc =
            kernels_[static_cast<size_t>(
                         ctas_[static_cast<size_t>(u.cta)].kernel)]
                .desc;
        if (desc->refill) {
            WorkUnit next;
            if (desc->refill(u.sm, u.op, &next) &&
                !next.phases.empty()) {
                auto& old_op = result_.per_op[static_cast<size_t>(u.op)];
                old_op.finish_time = std::max(old_op.finish_time, now);
                op_active_[static_cast<size_t>(u.op)] -= 1;
                u.op = next.op;
                u.warps = std::max(1, next.warps);
                u.mem_bw_cap = next.mem_bw_cap;
                hot_op = next.op;
                std::tie(u.phase_next, u.phase_end) =
                    StorePhases(next.phases);
                self().SetUnitCaps(uid, u);
                result_.per_op[static_cast<size_t>(u.op)].unit_count += 1;
                op_active_[static_cast<size_t>(u.op)] += 1;
                self().OnSmTouched(u.sm);
                if (LoadNextPhase(u, rem_tensor, rem_cuda, rem_mem)) {
                    return true;
                }
                // Refilled with an empty unit: fall through to the
                // retire path (it handles the new op's accounting).
            }
        }
        u.done = true;
        auto& op = result_.per_op[static_cast<size_t>(u.op)];
        op.finish_time = std::max(op.finish_time, now);
        op_active_[static_cast<size_t>(u.op)] -= 1;

        // Remove from the SM's active list.
        auto& sm_units = sms_[static_cast<size_t>(u.sm)].active_units;
        auto it = std::find(sm_units.begin(), sm_units.end(), uid);
        POD_ASSERT(it != sm_units.end());
        *it = sm_units.back();
        sm_units.pop_back();
        self().OnUnitRetired(uid, u.sm);
        self().OnSmTouched(u.sm);
        return false;
    }

    /** Release a retired unit's CTA slot (last unit retires the CTA). */
    void
    ReleaseUnitCta(int uid, double now)
    {
        UnitState& u = units_[static_cast<size_t>(uid)];
        CtaState& cta = ctas_[static_cast<size_t>(u.cta)];
        cta.remaining_units -= 1;
        if (cta.remaining_units == 0) {
            RetireCta(u.cta, now);
        }
    }

    /** Assemble the run-wide result fields (timings, utils, energy). */
    void
    FinalizeResult(double now)
    {
        result_.total_time = now;
        result_.total_ctas = total_ctas_;
        result_.kernels.reserve(kernels_.size());
        for (const auto& ks : kernels_) {
            KernelTiming kt;
            kt.name = ks.desc->name;
            kt.start_time = ks.start_time;
            kt.end_time = ks.end_time;
            result_.kernels.push_back(kt);
        }
        if (now > 0.0) {
            result_.tensor_util =
                served_tensor_ / (now * spec_.TotalTensorFlops());
            result_.cuda_util =
                served_cuda_ / (now * spec_.TotalCudaFlops());
            result_.mem_util = served_mem_ / (now * spec_.hbm_bandwidth);
        }
        result_.energy_joules = energy_;
    }

    const GpuSpec& spec_;
    const SimOptions& options_;
    Rng rng_;

    std::vector<SmState> sms_;
    std::vector<KernelState> kernels_;
    std::vector<StreamState> streams_;
    std::vector<CtaState> ctas_;
    std::vector<UnitState> units_;
    /** Arena backing every unit's phase list (grows per dispatch). */
    std::vector<Phase> phase_arena_;
    int rr_pointer_ = 0;
    int total_ctas_ = 0;
    size_t finished_kernels_ = 0;

    /** Active unit count per op class (for busy-time accounting). */
    std::array<int, kNumOpClasses> op_active_ = {};

    // Served-work integrals for utilization accounting.
    double served_tensor_ = 0.0;
    double served_cuda_ = 0.0;
    double served_mem_ = 0.0;
    double energy_ = 0.0;

    SimResult result_;
};

/** Run one simulation on the stepwise exact-oracle core. */
SimResult RunOracleSimulation(const GpuSpec& spec, const SimOptions& options,
                              const std::vector<KernelLaunch>& launches);

/** Run one simulation on the closed-form analytic core. */
SimResult RunAnalyticSimulation(const GpuSpec& spec,
                                const SimOptions& options,
                                const std::vector<KernelLaunch>& launches);

}  // namespace pod::gpusim::detail

#endif  // POD_GPUSIM_ENGINE_INTERNAL_H
