/**
 * @file
 * GPU hardware specification used by the fluid execution simulator.
 *
 * The spec captures exactly the resources the POD-Attention paper
 * reasons about: SM count, per-SM tensor-core and CUDA-core
 * throughput, shared-memory and thread occupancy limits, and the HBM
 * bandwidth hierarchy (per-warp, per-SM, global). Power coefficients
 * support the paper's energy-consumption measurements (S5.1).
 */
#ifndef POD_GPUSIM_GPU_SPEC_H
#define POD_GPUSIM_GPU_SPEC_H

#include <string>

namespace pod::gpusim {

/**
 * Hardware description of one GPU.
 *
 * All throughput numbers are *effective* (peak multiplied by an
 * achievable-efficiency factor, documented per field). Utilization
 * figures reported by the simulator are relative to these effective
 * capacities, matching how profiler-reported utilization behaves for
 * well-tuned kernels.
 */
struct GpuSpec
{
    /** Human-readable device name. */
    std::string name = "generic";

    /** Number of streaming multiprocessors. */
    int num_sms = 108;

    /**
     * Effective tensor-core throughput per SM in FLOP/s.
     * A100: 312 TFLOPS FP16 peak x 0.65 attention-shape efficiency
     * / 108 SMs.
     */
    double tensor_flops_per_sm = 312e12 * 0.65 / 108.0;

    /**
     * Effective CUDA-core (FP32) throughput per SM in FLOP/s.
     * A100: 19.5 TFLOPS x 0.7 / 108.
     */
    double cuda_flops_per_sm = 19.5e12 * 0.7 / 108.0;

    /**
     * Achievable global HBM bandwidth in bytes/s.
     * A100-80GB: 2039 GB/s peak x 0.85 achievable.
     */
    double hbm_bandwidth = 2039e9 * 0.85;

    /**
     * Maximum memory bandwidth a single SM can draw (bytes/s).
     * Single-SM streaming on A100 measures well above the fair share
     * (hbm/num_sms ~ 16 GB/s); 48 GB/s models the LSU/sector limits.
     */
    double sm_bandwidth_cap = 48e9;

    /**
     * Maximum memory bandwidth one warp can sustain (bytes/s), set by
     * the number of outstanding loads a warp can keep in flight. This
     * is why decode kernels need many CTAs to saturate HBM (Fig. 10b).
     */
    double warp_bandwidth_cap = 6e9;

    /** Number of warps needed to saturate an SM's tensor cores. */
    int warps_per_tensor_saturation = 4;

    /** Number of warps needed to saturate an SM's CUDA cores. */
    int warps_per_cuda_saturation = 8;

    /** Usable shared memory per SM in bytes (A100: 164 KiB - 1 KiB). */
    double shared_mem_per_sm = 163.0 * 1024.0;

    /** Maximum resident threads per SM. */
    int max_threads_per_sm = 2048;

    /** Maximum resident CTAs per SM (hardware slot limit). */
    int max_ctas_per_sm = 32;

    /** HBM capacity in bytes (for KV-cache sizing in serving). */
    double hbm_capacity = 80.0 * 1024.0 * 1024.0 * 1024.0;

    /** NVLink bandwidth per GPU in bytes/s (for TP all-reduce). */
    double nvlink_bandwidth = 600e9;

    /**
     * Achievable host-device PCIe bandwidth in bytes/s (for KV swap
     * traffic under preemption). A100: PCIe Gen4 x16, 32 GB/s peak
     * x 0.8 achievable.
     */
    double pcie_bandwidth = 32e9 * 0.8;

    // -------- power model (S5.1 energy evaluation) --------

    /** Static/idle power draw in watts. */
    double idle_power_w = 90.0;

    /** Additional watts at 100% tensor-core utilization. */
    double tensor_power_w = 190.0;

    /** Additional watts at 100% CUDA-core utilization. */
    double cuda_power_w = 50.0;

    /** Additional watts at 100% HBM bandwidth utilization. */
    double hbm_power_w = 120.0;

    /** Total effective tensor throughput of the device (FLOP/s). */
    double TotalTensorFlops() const { return tensor_flops_per_sm * num_sms; }

    /** Total effective CUDA-core throughput of the device (FLOP/s). */
    double TotalCudaFlops() const { return cuda_flops_per_sm * num_sms; }

    /** Validate internal consistency; Fatal() on nonsensical values. */
    void Validate() const;

    /** NVIDIA A100-SXM4-80GB preset (the paper's testbed GPU). */
    static GpuSpec A100Sxm80GB();

    /**
     * NVIDIA H100-SXM5-80GB preset (Hopper). Peak numbers from the
     * NVIDIA H100 datasheet / Hopper whitepaper: 132 SMs, 989 TFLOPS
     * dense FP16 tensor, 67 TFLOPS FP32, 3.35 TB/s HBM3, 228 KiB
     * shared memory per SM (227 KiB usable per CTA, as modeled),
     * 900 GB/s NVLink4.
     */
    static GpuSpec H100Sxm80GB();

    /**
     * NVIDIA RTX A6000 preset (Ampere GA102, workstation). Peak
     * numbers from the NVIDIA RTX A6000 datasheet: 84 SMs, 154.8
     * TFLOPS dense FP16 tensor (FP32 accumulate), 38.7 TFLOPS FP32,
     * 768 GB/s GDDR6, 48 GiB, 112.5 GB/s NVLink3 bridge.
     */
    static GpuSpec RtxA6000();

    /**
     * A small 8-SM toy GPU, convenient for fast unit tests that need
     * to reason about exact wave/occupancy behaviour.
     */
    static GpuSpec TestGpu8Sm();
};

}  // namespace pod::gpusim

#endif  // POD_GPUSIM_GPU_SPEC_H
