/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the
 * paper's tables and figures.
 */
#ifndef POD_BENCH_BENCH_UTIL_H
#define POD_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>

#include "common/telemetry/registry.h"
#include "gpusim/gpu_spec.h"
#include "kernels/attn_types.h"
#include "model/model_config.h"

namespace pod::bench {

/**
 * Global scale knob for long-running benches: POD_BENCH_SCALE
 * multiplies request counts / sweep densities (default 1.0 = the
 * scaled-down defaults documented in docs/EXPERIMENTS.md).
 */
inline double
ScaleFactor()
{
    const char* env = std::getenv("POD_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
}

/** Scale an integer count by POD_BENCH_SCALE (at least 1). */
inline int
Scaled(int base)
{
    return std::max(1, static_cast<int>(base * ScaleFactor()));
}

/** Per-GPU attention shape of Yi-6B on one A100 (paper Table 4). */
inline kernels::AttnShape
Yi6BShape()
{
    return model::ModelConfig::Yi6B().ShapePerGpu(1);
}

/** Per-GPU shape of Llama-2-7B under TP-2. */
inline kernels::AttnShape
Llama2Tp2Shape()
{
    return model::ModelConfig::Llama2_7B().ShapePerGpu(2);
}

/** Per-GPU shape of Llama-3-8B under TP-2. */
inline kernels::AttnShape
Llama3Tp2Shape()
{
    return model::ModelConfig::Llama3_8B().ShapePerGpu(2);
}

/** The paper's testbed GPU. */
inline gpusim::GpuSpec
A100()
{
    return gpusim::GpuSpec::A100Sxm80GB();
}

/**
 * The google-benchmark min-time flag in the spelling system benchmark
 * 1.7.x accepts: a plain double, no unit suffix. Newer benchmark
 * releases print the flag back with an "s" suffix
 * ("--benchmark_min_time=0.1s"), and pasting that into a 1.7.x binary
 * errors out -- always emit this form.
 */
inline const char*
GbenchMinTimeFlag()
{
    return "--benchmark_min_time=0.1";
}

/**
 * Shared telemetry output flags (docs/OBSERVABILITY.md):
 *   --json-out PATH   dump the metric registry (.csv extension -> CSV)
 *   --trace-out PATH  dump a Chrome trace-event JSON timeline
 * Parsed by StripTelemetryFlags so each bench's own argv loop never
 * sees them.
 */
struct TelemetryOptions
{
    std::string json_out;
    std::string trace_out;

    bool Enabled() const
    {
        return !json_out.empty() || !trace_out.empty();
    }
};

/**
 * Remove `--json-out PATH` / `--trace-out PATH` from argv (compacting
 * it in place and updating argc), returning the parsed options.
 */
inline TelemetryOptions
StripTelemetryFlags(int& argc, char** argv)
{
    TelemetryOptions opts;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
            opts.json_out = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            opts.trace_out = argv[++i];
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    return opts;
}

/** Open `path` and hand the stream to `writer`; warn on I/O failure. */
inline bool
WriteOutputFile(const std::string& path,
                const std::function<void(std::ostream&)>& writer)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warning: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    writer(out);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

/**
 * Dump a metric registry to opts.json_out if set; a `.csv` extension
 * selects the CSV exporter, anything else the JSON one.
 */
inline void
WriteMetricsFile(const TelemetryOptions& opts,
                 const telemetry::MetricRegistry& registry)
{
    if (opts.json_out.empty()) return;
    const std::string& path = opts.json_out;
    bool csv = path.size() >= 4 &&
               path.compare(path.size() - 4, 4, ".csv") == 0;
    WriteOutputFile(path, [&](std::ostream& out) {
        if (csv) {
            registry.WriteCsv(out);
        } else {
            registry.WriteJson(out);
        }
    });
}

/** Print the standard bench header. */
inline void
Header(const char* id, const char* description)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id, description);
    std::printf("(simulated A100-SXM4-80GB; see docs/EXPERIMENTS.md for the\n");
    std::printf(" paper-vs-measured comparison)\n");
    std::printf("==============================================================\n\n");
}

}  // namespace pod::bench

#endif  // POD_BENCH_BENCH_UTIL_H
