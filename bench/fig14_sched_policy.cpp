/**
 * @file
 * Reproduces paper Figure 14: effect of the intra-SM scheduling
 * policy (50:50 vs proportional) on POD-Attention latency at 8K
 * context for growing decode batch sizes, on Yi-6B and Llama-3-8B.
 * Proportional allocation wins as load grows (paper: up to 14%).
 */
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/attention.h"

using namespace pod;
using namespace pod::core;
using namespace pod::bench;

namespace {

void
RunModel(const char* name, const kernels::AttnShape& shape)
{
    gpusim::GpuSpec gpu = bench::A100();
    const int ctx = 8192;
    const int chunk = 2048;

    Table t({"batch", "50:50 (ms)", "proportional (ms)", "prop. benefit"});
    for (int bs : {32, 64, 96, 128, 192}) {
        auto batch = kernels::HybridBatch::Make(shape, chunk, ctx, bs, ctx);
        AttnRunOptions fifty;
        fifty.pod.policy = SchedPolicy::kFiftyFifty;
        fifty.pod.ctas_per_sm = CtasPerSm::kFour;
        AttnRunOptions prop;
        prop.pod.policy = SchedPolicy::kProportional;
        prop.pod.ctas_per_sm = CtasPerSm::kFour;
        double t50 =
            RunAttention(Backend::kPod, batch, gpu, fifty).total_time;
        double tp =
            RunAttention(Backend::kPod, batch, gpu, prop).total_time;
        t.AddRow({Table::Int(bs), Table::Num(ToMs(t50), 3),
                  Table::Num(ToMs(tp), 3), Table::Pct(t50 / tp - 1.0)});
    }
    std::printf("%s (context 8K, chunk %d, 4 CTAs/SM):\n", name, chunk);
    t.Print(std::cout);
    std::printf("\n");
}

}  // namespace

int
main()
{
    Header("Figure 14", "50:50 vs proportional CTA scheduling policy");
    RunModel("Yi-6B", Yi6BShape());
    RunModel("Llama-3-8B (TP-2)", Llama3Tp2Shape());
    std::printf("Paper: proportional performs up to 14%% better at large "
                "batch sizes.\n");
    return 0;
}
