/**
 * @file
 * Reproduces paper Figure 4: contribution of each operation to
 * iteration runtime with hybrid batching (Llama-3-8B, batch size 60,
 * chunk 1K), for the iteration processing the last chunk of a prompt
 * at context lengths 1K / 8K / 16K.
 */
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "model/iteration_cost.h"

using namespace pod;
using namespace pod::bench;

int
main()
{
    Header("Figure 4", "iteration runtime breakdown with hybrid batching");
    model::IterationCostModel cost(model::ModelConfig::Llama3_8B(), A100(),
                                   /*tensor_parallel=*/2,
                                   core::Backend::kFaSerial);
    kernels::AttnShape shape = Llama3Tp2Shape();

    Table t({"context", "PreProj", "PrefillAttn", "DecodeAttn", "PostProj",
             "FFN", "Others", "total (ms)"});
    for (int ctx : {16384, 8192, 1024}) {
        // Last chunk of the prompt: chunk 1K attending the full ctx.
        auto batch = kernels::HybridBatch::Make(shape, 1024, ctx, 60, ctx);
        model::IterationBreakdown b = cost.Cost(batch, 61);
        double others = b.others + b.comm;
        auto pct = [&](double v) { return Table::Pct(v / b.total); };
        t.AddRow({std::to_string(ctx / 1024) + "K", pct(b.pre_proj),
                  pct(b.prefill_attn), pct(b.decode_attn),
                  pct(b.post_proj), pct(b.ffn), pct(others),
                  Table::Num(b.total * 1e3, 2)});
    }
    t.Print(std::cout);
    std::printf("\nPaper reference (16K row): Pre 3.8%%, PrefillAttn 34.0%%, "
                "DecodeAttn 26.2%%, Post 4.7%%, FFN 28.2%%, Others 3.1%%\n");
    return 0;
}
